// Calibration-transparency ablation: sweeps the indirect (cache/TLB
// pollution) component of the exit cost model and shows how the
// Figure 5 aggregate responds. Documents that the paper-matching
// calibration is a one-knob choice, not a per-benchmark fit.
//
// Runs on the deterministic parallel sweep runner; shared CLI flags in
// core/sweep.hpp.
#include <cstdio>

#include "bench_common.hpp"
#include "core/sweep.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

namespace {

constexpr std::int64_t kIndirect[] = {0, 5'000, 13'000, 25'000};
constexpr const char* kBenchmarks[] = {"fluidanimate", "dedup"};

std::string variant_name(std::int64_t indirect, const char* bench) {
  return metrics::format("ind=%lld/%s", static_cast<long long>(indirect), bench);
}

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);

  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(4);
  cfg.base.vcpus = 4;
  cfg.base.attach_disk = true;
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  for (const std::int64_t indirect : kIndirect) {
    for (const char* name : kBenchmarks) {
      const auto& profile = workload::parsec_profile(name);
      cfg.variants.push_back(
          {variant_name(indirect, name),
           [indirect, &profile](core::ExperimentSpec& exp) {
             exp.host.exit_costs.indirect = sim::Cycles{indirect};
             exp.setup = [&profile](guest::GuestKernel& k) {
               workload::install_parsec(k, profile, 4);
             };
           }});
    }
  }
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_ablation_costmodel");

  if (!cli.csv) {
    std::printf("==== Ablation: indirect exit-cost sweep (fluidanimate + dedup, "
                "4 vCPUs) ====\n(%zu runs, %.2fs wall on %u threads)\n\n",
                res.runs.size(), res.wall_seconds, res.threads_used);
  }
  metrics::Table t({"indirect cycles", "benchmark", "VM exits", "throughput",
                    "exec time"});
  for (const std::int64_t indirect : kIndirect) {
    for (const char* name : kBenchmarks) {
      const metrics::Comparison c =
          res.compare(variant_name(indirect, name), guest::TickMode::kDynticksIdle,
                      guest::TickMode::kParatick);
      t.add_row({metrics::format("%lld", static_cast<long long>(indirect)), name,
                 metrics::pct(c.exit_delta_pct), metrics::pct(c.throughput_gain_pct),
                 metrics::pct(c.exec_time_delta_pct)});
    }
  }
  if (cli.csv) {
    std::fputs(t.to_csv().c_str(), stdout);
    return 0;
  }
  t.print();
  std::printf("\nExit *counts* are cost-model independent; only the throughput/time\n"
              "magnitudes scale with the pollution term (calibrated to 13k cycles,\n"
              "see EXPERIMENTS.md).\n");
  return 0;
}
