// Calibration-transparency ablation: sweeps the indirect (cache/TLB
// pollution) component of the exit cost model and shows how the
// Figure 5 aggregate responds. Documents that the paper-matching
// calibration is a one-knob choice, not a per-benchmark fit.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

int main() {
  std::printf("==== Ablation: indirect exit-cost sweep (fluidanimate + dedup, 4 vCPUs) ====\n");
  metrics::Table t({"indirect cycles", "benchmark", "VM exits", "throughput",
                    "exec time"});

  for (std::int64_t indirect : {0LL, 5'000LL, 13'000LL, 25'000LL}) {
    for (const char* name : {"fluidanimate", "dedup"}) {
      core::ExperimentSpec exp;
      exp.machine = hw::MachineSpec::small(4);
      exp.vcpus = 4;
      exp.attach_disk = true;
      exp.host.exit_costs.indirect = sim::Cycles{indirect};
      const auto& profile = workload::parsec_profile(name);
      exp.setup = [&profile](guest::GuestKernel& k) {
        workload::install_parsec(k, profile, 4);
      };
      const core::AbResult ab = core::run_paratick_vs_dynticks(exp);
      t.add_row({metrics::format("%lld", (long long)indirect), name,
                 metrics::pct(ab.comparison.exit_delta_pct),
                 metrics::pct(ab.comparison.throughput_gain_pct),
                 metrics::pct(ab.comparison.exec_time_delta_pct)});
      std::fflush(stdout);
    }
  }
  t.print();
  std::printf("\nExit *counts* are cost-model independent; only the throughput/time\n"
              "magnitudes scale with the pollution term (calibrated to 13k cycles,\n"
              "see EXPERIMENTS.md).\n");
  return 0;
}
