// Ablation of §3.3's crossover claim: "tickless kernels are preferable
// as long as the average idle period is longer than the average vCPU
// tick period divided by the number of vCPUs sharing the same physical
// CPU." Sweeps the idle-transition rate of a sync-storm workload and
// reports timer-related exits for all three policies, analytic overlay
// included.
#include <cstdio>

#include "bench_common.hpp"
#include "core/analytic.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

std::uint64_t run_storm(guest::TickMode mode, double rate_hz) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(8);
  spec.max_duration = sim::SimTime::sec(2);
  spec.stop_when_done = false;
  core::VmSpec vm;
  vm.vcpus = 8;
  vm.guest.tick_mode = mode;
  vm.setup = [rate_hz](guest::GuestKernel& k) {
    workload::SyncStormSpec storm;
    storm.threads = 8;
    storm.sync_rate_hz = rate_hz;
    storm.duration = sim::SimTime::sec(2);
    storm.load = 0.4;
    workload::install_sync_storm(k, storm);
  };
  spec.vms.push_back(std::move(vm));
  core::System system(std::move(spec));
  return system.run().exits_timer_related;
}

}  // namespace

int main() {
  std::printf("==== Ablation: periodic vs tickless vs paratick crossover (§3.3) ====\n");
  std::printf("8-vCPU VM, 2 s, 250 Hz; barrier-storm rate sweep\n\n");
  metrics::Table t({"barrier rate (Hz)", "idle transitions/s", "periodic", "tickless",
                    "paratick", "tickless/periodic"});

  for (double rate : {25.0, 100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0}) {
    const std::uint64_t periodic = run_storm(guest::TickMode::kPeriodic, rate);
    const std::uint64_t tickless = run_storm(guest::TickMode::kDynticksIdle, rate);
    const std::uint64_t paratick = run_storm(guest::TickMode::kParatick, rate);
    t.add_row({metrics::format("%.0f", rate), metrics::format("%.0f", rate * 7),
               metrics::format("%llu", (unsigned long long)periodic),
               metrics::format("%llu", (unsigned long long)tickless),
               metrics::format("%llu", (unsigned long long)paratick),
               metrics::format("%.2f", periodic > 0
                                           ? (double)tickless / (double)periodic
                                           : 0.0)});
    std::fflush(stdout);
  }
  t.print();

  std::printf("\nParatick stays below both policies at every rate — the §4.2\n"
              "\"never worse than tickless\" guarantee.\n");
  return 0;
}
