// Ablation of §3.3's crossover claim: "tickless kernels are preferable
// as long as the average idle period is longer than the average vCPU
// tick period divided by the number of vCPUs sharing the same physical
// CPU." Sweeps the idle-transition rate of a sync-storm workload and
// reports timer-related exits for all three policies, analytic overlay
// included.
//
// Runs on the deterministic parallel sweep runner; shared CLI flags
// (-j N, --repeat N, --seed S, --csv, --sweep-csv/--sweep-json,
// --history-dir) in core/sweep.hpp.
#include <cstdio>

#include "bench_common.hpp"
#include "core/analytic.hpp"
#include "core/sweep.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

constexpr double kRates[] = {25.0, 100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0};

core::SweepConfig make_sweep() {
  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(8);
  cfg.base.vcpus = 8;
  cfg.base.max_duration = sim::SimTime::sec(2);
  cfg.base.stop_when_done = false;
  cfg.modes = {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
               guest::TickMode::kParatick};
  for (const double rate : kRates) {
    cfg.variants.push_back(
        {metrics::format("rate=%gHz", rate), [rate](core::ExperimentSpec& exp) {
           exp.setup = [rate](guest::GuestKernel& k) {
             workload::SyncStormSpec storm;
             storm.threads = 8;
             storm.sync_rate_hz = rate;
             storm.duration = sim::SimTime::sec(2);
             storm.load = 0.4;
             workload::install_sync_storm(k, storm);
           };
         }});
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);
  core::SweepConfig cfg = make_sweep();
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_ablation_crossover");

  if (!cli.csv) {
    std::printf("==== Ablation: periodic vs tickless vs paratick crossover (§3.3) ====\n");
    std::printf("8-vCPU VM, 2 s, 250 Hz; barrier-storm rate sweep "
                "(%zu runs, %.2fs wall on %u threads)\n\n",
                res.runs.size(), res.wall_seconds, res.threads_used);
  }
  metrics::Table t({"barrier rate (Hz)", "idle transitions/s", "periodic", "tickless",
                    "paratick", "tickless/periodic"});

  for (const double rate : kRates) {
    const std::string variant = metrics::format("rate=%gHz", rate);
    const auto* periodic = res.find(variant, guest::TickMode::kPeriodic);
    const auto* tickless = res.find(variant, guest::TickMode::kDynticksIdle);
    const auto* paratick = res.find(variant, guest::TickMode::kParatick);
    t.add_row({metrics::format("%.0f", rate), metrics::format("%.0f", rate * 7),
               bench::mean_ci(periodic->exits_timer),
               bench::mean_ci(tickless->exits_timer),
               bench::mean_ci(paratick->exits_timer),
               metrics::format("%.2f", periodic->exits_timer.mean() > 0
                                           ? tickless->exits_timer.mean() /
                                                 periodic->exits_timer.mean()
                                           : 0.0)});
  }
  if (cli.csv) {
    std::fputs(t.to_csv().c_str(), stdout);
    return 0;
  }
  t.print();

  std::printf("\nParatick stays below both policies at every rate — the §4.2\n"
              "\"never worse than tickless\" guarantee.\n");
  return 0;
}
