// Ablation of §6.3's outlook: "paratick's performance benefits will only
// increase as time goes on, since state-of-the-art storage devices sport
// much lower access latencies." Runs the fio job against three device
// classes and a latency sweep, reporting the paratick gain per class.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/fio.hpp"

using namespace paratick;

namespace {

core::AbResult run_device(const hw::BlockDeviceSpec& dev, std::uint32_t block) {
  core::ExperimentSpec exp;
  exp.machine = hw::MachineSpec::small(1);
  exp.vcpus = 1;
  exp.attach_disk = true;
  exp.disk = dev;
  exp.max_duration = sim::SimTime::sec(120);
  exp.setup = [block](guest::GuestKernel& k) {
    workload::FioSpec spec;
    spec.pattern = hw::IoPattern::kRandom;
    spec.block_bytes = block;
    spec.ops = 1000;
    workload::install_fio(k, spec);
  };
  return core::run_paratick_vs_dynticks(exp);
}

}  // namespace

int main() {
  std::printf("==== Ablation: device latency vs paratick benefit (fio 4k rndr) ====\n");
  metrics::Table t({"device", "read latency", "exits", "exec time",
                    "wake latency (dyn->para)"});

  struct Device {
    const char* name;
    hw::BlockDeviceSpec spec;
  };
  std::vector<Device> devices = {
      {"HDD", hw::BlockDeviceSpec::hdd()},
      {"SATA SSD", hw::BlockDeviceSpec::sata_ssd()},
      {"NVMe", hw::BlockDeviceSpec::nvme()},
  };
  // Synthetic sweep below NVMe latencies (the paper's "killer
  // microseconds" trajectory, §3.3 [8]).
  for (std::int64_t us : {6, 3}) {
    hw::BlockDeviceSpec fast = hw::BlockDeviceSpec::nvme();
    fast.read_latency = sim::SimTime::us(us);
    fast.write_latency = sim::SimTime::us(us * 2);
    fast.random_read_penalty = sim::SimTime::us(1);
    devices.push_back({us == 6 ? "future-6us" : "future-3us", fast});
  }

  for (const auto& dev : devices) {
    const core::AbResult ab = run_device(dev.spec, 4096);
    t.add_row(
        {dev.name, metrics::format("%.0f us", dev.spec.read_latency.microseconds()),
         metrics::pct(ab.comparison.exit_delta_pct),
         metrics::pct(ab.comparison.exec_time_delta_pct),
         metrics::format("%.1f -> %.1f us",
                         ab.baseline.vms[0].wakeup_latency_us.mean(),
                         ab.treatment.vms[0].wakeup_latency_us.mean())});
    std::fflush(stdout);
  }
  t.print();
  std::printf("\nThe execution-time gain grows monotonically as device latency falls:\n"
              "timer-management exits are a fixed per-operation tax (§6.3).\n");
  return 0;
}
