// Ablation of §6.3's outlook: "paratick's performance benefits will only
// increase as time goes on, since state-of-the-art storage devices sport
// much lower access latencies." Runs the fio job against three device
// classes and a latency sweep, reporting the paratick gain per class.
//
// Runs on the deterministic parallel sweep runner; shared CLI flags in
// core/sweep.hpp.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/sweep.hpp"
#include "workload/fio.hpp"

using namespace paratick;

namespace {

struct Device {
  std::string name;
  hw::BlockDeviceSpec spec;
};

std::vector<Device> device_classes() {
  std::vector<Device> devices = {
      {"HDD", hw::BlockDeviceSpec::hdd()},
      {"SATA SSD", hw::BlockDeviceSpec::sata_ssd()},
      {"NVMe", hw::BlockDeviceSpec::nvme()},
  };
  // Synthetic sweep below NVMe latencies (the paper's "killer
  // microseconds" trajectory, §3.3 [8]).
  for (const std::int64_t us : {6, 3}) {
    hw::BlockDeviceSpec fast = hw::BlockDeviceSpec::nvme();
    fast.read_latency = sim::SimTime::us(us);
    fast.write_latency = sim::SimTime::us(us * 2);
    fast.random_read_penalty = sim::SimTime::us(1);
    devices.push_back({metrics::format("future-%lldus", static_cast<long long>(us)), fast});
  }
  return devices;
}

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);
  const std::vector<Device> devices = device_classes();

  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(1);
  cfg.base.vcpus = 1;
  cfg.base.attach_disk = true;
  cfg.base.max_duration = sim::SimTime::sec(120);
  cfg.base.setup = [](guest::GuestKernel& k) {
    workload::FioSpec spec;
    spec.pattern = hw::IoPattern::kRandom;
    spec.block_bytes = 4096;
    spec.ops = 1000;
    workload::install_fio(k, spec);
  };
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  for (const Device& dev : devices) {
    cfg.variants.push_back(
        {dev.name, [&dev](core::ExperimentSpec& exp) { exp.disk = dev.spec; }});
  }
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_ablation_device");

  if (!cli.csv) {
    std::printf("==== Ablation: device latency vs paratick benefit (fio 4k rndr) ====\n");
    std::printf("(%zu runs, %.2fs wall on %u threads)\n\n", res.runs.size(),
                res.wall_seconds, res.threads_used);
  }
  metrics::Table t({"device", "read latency", "exits", "exec time",
                    "wake latency (dyn->para)"});
  for (const Device& dev : devices) {
    const metrics::Comparison c = res.compare(dev.name, guest::TickMode::kDynticksIdle,
                                              guest::TickMode::kParatick);
    const auto* base = res.find(dev.name, guest::TickMode::kDynticksIdle);
    const auto* treat = res.find(dev.name, guest::TickMode::kParatick);
    t.add_row({dev.name,
               metrics::format("%.0f us", dev.spec.read_latency.microseconds()),
               metrics::pct(c.exit_delta_pct), metrics::pct(c.exec_time_delta_pct),
               metrics::format("%.1f -> %.1f us", base->wakeup_latency_us.mean(),
                               treat->wakeup_latency_us.mean())});
  }
  if (cli.csv) {
    std::fputs(t.to_csv().c_str(), stdout);
    return 0;
  }
  t.print();
  std::printf("\nThe execution-time gain grows monotonically as device latency falls:\n"
              "timer-management exits are a fixed per-operation tax (§6.3).\n");
  return 0;
}
