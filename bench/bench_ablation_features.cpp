// Ablation of the paper's §6 host-feature choices: halt polling and
// pause-loop exiting were disabled in the evaluation; this bench shows
// what each feature does to the three metrics under dynticks and
// paratick, justifying that setup.
//
// Runs on the deterministic parallel sweep runner; shared CLI flags in
// core/sweep.hpp.
#include <cstdio>

#include "bench_common.hpp"
#include "core/sweep.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

namespace {

constexpr const char* kHaltPollNames[] = {"off", "fixed", "adaptive"};

std::string variant_name(int halt_poll, bool ple) {
  return metrics::format("hp=%s/ple=%s", kHaltPollNames[halt_poll],
                         ple ? "on" : "off");
}

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);

  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(4);
  cfg.base.vcpus = 4;
  cfg.base.attach_disk = true;
  // Spin long enough for PLE's window to matter (lock-holder wait-out),
  // as an aggressively adaptive mutex would.
  cfg.base.guest_costs.spin_before_block = sim::Cycles{20'000};
  cfg.base.setup = [](guest::GuestKernel& k) {
    workload::install_parsec(k, workload::parsec_profile("fluidanimate"), 4);
  };
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  for (int hp : {0, 1, 2}) {
    for (bool ple : {false, true}) {
      cfg.variants.push_back(
          {variant_name(hp, ple), [hp, ple](core::ExperimentSpec& exp) {
             // hp: 0 = off, 1 = fixed window, 2 = adaptive (KVM halt_poll_ns)
             exp.host.halt_polling = hp > 0;
             exp.host.halt_poll_adaptive = hp == 2;
             exp.host.pause_loop_exiting = ple;
           }});
    }
  }
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_ablation_features");

  if (!cli.csv) {
    std::printf("==== Ablation: halt polling / PLE (fluidanimate, 4 vCPUs) ====\n");
    std::printf("(%zu runs, %.2fs wall on %u threads)\n\n", res.runs.size(),
                res.wall_seconds, res.threads_used);
  }
  metrics::Table t({"mode", "halt-poll", "PLE", "exits", "busy Mcycles",
                    "halt-poll Mcycles", "exec ms"});
  for (auto mode : {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick}) {
    for (int hp : {0, 1, 2}) {
      for (bool ple : {false, true}) {
        const auto* cell = res.find(variant_name(hp, ple), mode);
        const sim::Accumulator poll_mcycles = res.metric_over_runs(
            res.index_of(*cell), [](const metrics::RunResult& r) {
              return static_cast<double>(
                         r.cycles.total(hw::CycleCategory::kHaltPoll).count()) /
                     1e6;
            });
        t.add_row({std::string(guest::to_string(mode)), kHaltPollNames[hp],
                   ple ? "on" : "off", bench::mean_ci(cell->exits_total),
                   metrics::format("%.1f", cell->busy_cycles.mean() / 1e6),
                   bench::mean_ci(poll_mcycles, 1),
                   bench::mean_ci(cell->exec_time_ms, 2)});
      }
    }
  }
  if (cli.csv) {
    std::fputs(t.to_csv().c_str(), stdout);
    return 0;
  }
  t.print();
  std::printf(
      "\nHalt polling trades exits for burned CPU (paper §6: disabled because the\n"
      "polled cycles mask the effect under study); PLE adds pause exits during\n"
      "adaptive-mutex spins without helping in non-overcommitted runs.\n");
  return 0;
}
