// Ablation of the paper's §6 host-feature choices: halt polling and
// pause-loop exiting were disabled in the evaluation; this bench shows
// what each feature does to the three metrics under dynticks and
// paratick, justifying that setup.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

namespace {

metrics::RunResult run_one(guest::TickMode mode, int halt_poll, bool ple) {
  // halt_poll: 0 = off, 1 = fixed window, 2 = adaptive (KVM halt_poll_ns)
  core::ExperimentSpec exp;
  exp.machine = hw::MachineSpec::small(4);
  exp.vcpus = 4;
  exp.attach_disk = true;
  exp.host.halt_polling = halt_poll > 0;
  exp.host.halt_poll_adaptive = halt_poll == 2;
  exp.host.pause_loop_exiting = ple;
  // Spin long enough for PLE's window to matter (lock-holder wait-out),
  // as an aggressively adaptive mutex would.
  exp.guest_costs.spin_before_block = sim::Cycles{20'000};
  exp.setup = [](guest::GuestKernel& k) {
    workload::install_parsec(k, workload::parsec_profile("fluidanimate"), 4);
  };
  return core::run_mode(exp, mode);
}

}  // namespace

int main() {
  std::printf("==== Ablation: halt polling / PLE (fluidanimate, 4 vCPUs) ====\n");
  metrics::Table t({"mode", "halt-poll", "PLE", "exits", "busy Mcycles",
                    "halt-poll Mcycles", "exec ms"});
  const char* hp_names[] = {"off", "fixed", "adaptive"};
  for (auto mode : {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick}) {
    for (int hp : {0, 1, 2}) {
      for (bool ple : {false, true}) {
        const metrics::RunResult r = run_one(mode, hp, ple);
        const auto ct = r.completion_time();
        t.add_row({std::string(guest::to_string(mode)), hp_names[hp],
                   ple ? "on" : "off",
                   metrics::format("%llu", (unsigned long long)r.exits_total),
                   metrics::format("%.1f", (double)r.busy_cycles().count() / 1e6),
                   metrics::format(
                       "%.1f",
                       (double)r.cycles.total(hw::CycleCategory::kHaltPoll).count() / 1e6),
                   metrics::format("%.2f", ct ? ct->milliseconds() : -1.0)});
        std::fflush(stdout);
      }
    }
  }
  t.print();
  std::printf(
      "\nHalt polling trades exits for burned CPU (paper §6: disabled because the\n"
      "polled cycles mask the effect under study); PLE adds pause exits during\n"
      "adaptive-mutex spins without helping in non-overcommitted runs.\n");
  return 0;
}
