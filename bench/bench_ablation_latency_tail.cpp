// Extension: request-latency tails. §3.3 argues demand for handling
// "microsecond-level idle periods" keeps rising (datacenter networking,
// NVMe, accelerator offloads). For a request/response server, every
// request wake-up crosses the idle-exit path — so tick management sits
// directly on the service-latency tail. This bench reports mean/p99
// wake-to-run latency per tick policy.
//
// Runs on the deterministic parallel sweep runner; shared CLI flags in
// core/sweep.hpp. p99 is computed from the wake-latency histograms
// merged across --repeat replicas.
#include <cstdio>

#include "bench_common.hpp"
#include "core/sweep.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

const sim::SimTime kInterarrivals[] = {sim::SimTime::us(200), sim::SimTime::ms(2)};

std::string variant_name(sim::SimTime interarrival) {
  return metrics::format("ia=%.1fms", interarrival.milliseconds());
}

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);

  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(2);
  cfg.base.vcpus = 2;
  cfg.base.max_duration = sim::SimTime::sec(20);
  cfg.modes = {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
               guest::TickMode::kFullDynticks, guest::TickMode::kParatick};
  for (const sim::SimTime interarrival : kInterarrivals) {
    cfg.variants.push_back(
        {variant_name(interarrival), [interarrival](core::ExperimentSpec& exp) {
           exp.setup = [interarrival](guest::GuestKernel& k) {
             workload::ServerSpec server;
             server.workers = 2;
             server.mean_interarrival = interarrival;
             server.requests_per_worker = 3000;
             workload::install_server(k, server);
           };
         }});
  }
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_ablation_latency_tail");

  if (!cli.csv) {
    std::printf("==== Ablation: request wake-latency tail (2-worker server) ====\n");
    std::printf("(%zu runs, %.2fs wall on %u threads)\n\n", res.runs.size(),
                res.wall_seconds, res.threads_used);
  }
  metrics::Table t({"interarrival", "policy", "wakes", "mean us", "p99 us",
                    "max us", "exits"});
  for (const sim::SimTime interarrival : kInterarrivals) {
    for (auto mode : {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
                      guest::TickMode::kFullDynticks, guest::TickMode::kParatick}) {
      const auto* cell = res.find(variant_name(interarrival), mode);
      const std::size_t idx = res.index_of(*cell);
      const sim::LogHistogram hist = res.merged_over_runs(
          idx, [](const metrics::RunResult& r) -> const sim::LogHistogram& {
            return r.vms[0].wakeup_latency_hist_us;
          });
      const sim::Accumulator wakes_per_run = res.metric_over_runs(
          idx, [](const metrics::RunResult& r) {
            return r.vms[0].wakeup_latency_us.count();
          });
      t.add_row({metrics::format("%.1f ms", interarrival.milliseconds()),
                 std::string(guest::to_string(mode)), bench::mean_ci(wakes_per_run),
                 metrics::format("%.1f", cell->wakeup_latency_us.mean()),
                 metrics::format("%.1f", hist.percentile(99.0)),
                 metrics::format("%.1f", cell->wakeup_latency_us.max()),
                 bench::mean_ci(cell->exits_total)});
    }
  }
  if (cli.csv) {
    std::fputs(t.to_csv().c_str(), stdout);
    return 0;
  }
  t.print();
  std::printf(
      "\nEvery request service starts with an idle exit; dynticks adds a tick\n"
      "restart (MSR-write exit) to that path while paratick adds nothing — the\n"
      "mean shifts by one exit cost and the tail follows (§3.3, §4.2).\n");
  return 0;
}
