// Extension: request-latency tails. §3.3 argues demand for handling
// "microsecond-level idle periods" keeps rising (datacenter networking,
// NVMe, accelerator offloads). For a request/response server, every
// request wake-up crosses the idle-exit path — so tick management sits
// directly on the service-latency tail. This bench reports mean/p99
// wake-to-run latency per tick policy.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

metrics::RunResult run_server(guest::TickMode mode, sim::SimTime interarrival) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(2);
  spec.max_duration = sim::SimTime::sec(20);
  core::VmSpec vm;
  vm.vcpus = 2;
  vm.guest.tick_mode = mode;
  vm.setup = [interarrival](guest::GuestKernel& k) {
    workload::ServerSpec server;
    server.workers = 2;
    server.mean_interarrival = interarrival;
    server.requests_per_worker = 3000;
    workload::install_server(k, server);
  };
  spec.vms.push_back(std::move(vm));
  core::System system(std::move(spec));
  return system.run();
}

}  // namespace

int main() {
  std::printf("==== Ablation: request wake-latency tail (2-worker server) ====\n");
  metrics::Table t({"interarrival", "policy", "wakes", "mean us", "p99 us",
                    "max us", "exits"});
  for (auto interarrival : {sim::SimTime::us(200), sim::SimTime::ms(2)}) {
    for (auto mode : {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
                      guest::TickMode::kFullDynticks, guest::TickMode::kParatick}) {
      const metrics::RunResult r = run_server(mode, interarrival);
      const auto& acc = r.vms[0].wakeup_latency_us;
      const auto& hist = r.vms[0].wakeup_latency_hist_us;
      t.add_row({metrics::format("%.1f ms", interarrival.milliseconds()),
                 std::string(guest::to_string(mode)),
                 metrics::format("%llu", (unsigned long long)acc.count()),
                 metrics::format("%.1f", acc.mean()),
                 metrics::format("%.1f", hist.percentile(99.0)),
                 metrics::format("%.1f", acc.max()),
                 metrics::format("%llu", (unsigned long long)r.exits_total)});
      std::fflush(stdout);
    }
  }
  t.print();
  std::printf(
      "\nEvery request service starts with an idle exit; dynticks adds a tick\n"
      "restart (MSR-write exit) to that path while paratick adds nothing — the\n"
      "mean shifts by one exit cost and the tail follows (§3.3, §4.2).\n");
  return 0;
}
