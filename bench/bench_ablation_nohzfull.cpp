// Extension ablation: the paper's §2 dismisses NO_HZ_FULL ("full
// dynticks") as a niche mode; this bench quantifies why it is not a
// substitute for paratick in VMs. Four policies across three workload
// classes: a pinned single-task compute guest (NO_HZ_FULL's best case),
// a sync-heavy multithreaded guest, and a sync-I/O guest.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/fio.hpp"
#include "workload/micro.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

namespace {

metrics::RunResult run_case(const char* workload, guest::TickMode mode) {
  core::ExperimentSpec exp;
  if (std::string_view(workload) == "single-task compute") {
    exp.machine = hw::MachineSpec::small(1);
    exp.vcpus = 1;
    exp.setup = [](guest::GuestKernel& k) {
      workload::PureComputeSpec pc;
      pc.total_cycles = 800'000'000;  // 400 ms
      pc.chunks = 800;
      workload::install_pure_compute(k, pc);
    };
  } else if (std::string_view(workload) == "sync-heavy (fluidanimate)") {
    exp.machine = hw::MachineSpec::small(4);
    exp.vcpus = 4;
    exp.attach_disk = true;
    exp.setup = [](guest::GuestKernel& k) {
      workload::install_parsec(k, workload::parsec_profile("fluidanimate"), 4);
    };
  } else {
    exp.machine = hw::MachineSpec::small(1);
    exp.vcpus = 1;
    exp.attach_disk = true;
    exp.setup = [](guest::GuestKernel& k) {
      workload::FioSpec spec;
      spec.ops = 1500;
      workload::install_fio(k, spec);
    };
  }
  return core::run_mode(exp, mode);
}

}  // namespace

int main() {
  std::printf("==== Ablation: NO_HZ_FULL vs the paper's policies ====\n");
  metrics::Table t({"workload", "policy", "exits", "timer exits", "busy Mcycles",
                    "exec ms"});
  for (const char* workload :
       {"single-task compute", "sync-heavy (fluidanimate)", "sync I/O (fio)"}) {
    for (auto mode : {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
                      guest::TickMode::kFullDynticks, guest::TickMode::kParatick}) {
      const metrics::RunResult r = run_case(workload, mode);
      const auto ct = r.completion_time();
      t.add_row({workload, std::string(guest::to_string(mode)),
                 metrics::format("%llu", (unsigned long long)r.exits_total),
                 metrics::format("%llu", (unsigned long long)r.exits_timer_related),
                 metrics::format("%.1f", (double)r.busy_cycles().count() / 1e6),
                 metrics::format("%.2f", ct ? ct->milliseconds() : -1.0)});
      std::fflush(stdout);
    }
  }
  t.print();
  std::printf(
      "\nNO_HZ_FULL matches paratick only for pinned single-task guests (its design\n"
      "target); under blocking sync or sync I/O it degenerates to dynticks-idle\n"
      "because every adaptive tick decision is still a TSC_DEADLINE write — i.e.\n"
      "a VM exit. Paratick is the only policy whose cost does not scale with the\n"
      "idle-transition rate (paper §4.2).\n");
  return 0;
}
