// Extension ablation: the paper's §2 dismisses NO_HZ_FULL ("full
// dynticks") as a niche mode; this bench quantifies why it is not a
// substitute for paratick in VMs. Four policies across three workload
// classes: a pinned single-task compute guest (NO_HZ_FULL's best case),
// a sync-heavy multithreaded guest, and a sync-I/O guest.
//
// Runs on the deterministic parallel sweep runner; shared CLI flags in
// core/sweep.hpp. The workload classes resize the machine per variant,
// so the grid's vcpus key self-describes each row.
#include <cstdio>

#include "bench_common.hpp"
#include "core/sweep.hpp"
#include "workload/fio.hpp"
#include "workload/micro.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

namespace {

constexpr const char* kWorkloads[] = {"single-task compute",
                                      "sync-heavy (fluidanimate)",
                                      "sync I/O (fio)"};

void apply_workload(const char* workload, core::ExperimentSpec& exp) {
  if (std::string_view(workload) == "single-task compute") {
    exp.machine = hw::MachineSpec::small(1);
    exp.vcpus = 1;
    exp.setup = [](guest::GuestKernel& k) {
      workload::PureComputeSpec pc;
      pc.total_cycles = 800'000'000;  // 400 ms
      pc.chunks = 800;
      workload::install_pure_compute(k, pc);
    };
  } else if (std::string_view(workload) == "sync-heavy (fluidanimate)") {
    exp.machine = hw::MachineSpec::small(4);
    exp.vcpus = 4;
    exp.attach_disk = true;
    exp.setup = [](guest::GuestKernel& k) {
      workload::install_parsec(k, workload::parsec_profile("fluidanimate"), 4);
    };
  } else {
    exp.machine = hw::MachineSpec::small(1);
    exp.vcpus = 1;
    exp.attach_disk = true;
    exp.setup = [](guest::GuestKernel& k) {
      workload::FioSpec spec;
      spec.ops = 1500;
      workload::install_fio(k, spec);
    };
  }
}

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);

  core::SweepConfig cfg;
  cfg.modes = {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
               guest::TickMode::kFullDynticks, guest::TickMode::kParatick};
  for (const char* workload : kWorkloads) {
    cfg.variants.push_back({workload, [workload](core::ExperimentSpec& exp) {
                              apply_workload(workload, exp);
                            }});
  }
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_ablation_nohzfull");

  if (!cli.csv) {
    std::printf("==== Ablation: NO_HZ_FULL vs the paper's policies ====\n");
    std::printf("(%zu runs, %.2fs wall on %u threads)\n\n", res.runs.size(),
                res.wall_seconds, res.threads_used);
  }
  metrics::Table t({"workload", "policy", "exits", "timer exits", "busy Mcycles",
                    "exec ms"});
  for (const char* workload : kWorkloads) {
    for (auto mode : {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
                      guest::TickMode::kFullDynticks, guest::TickMode::kParatick}) {
      const auto* cell = res.find(workload, mode);
      t.add_row({workload, std::string(guest::to_string(mode)),
                 bench::mean_ci(cell->exits_total),
                 bench::mean_ci(cell->exits_timer),
                 metrics::format("%.1f", cell->busy_cycles.mean() / 1e6),
                 cell->exec_time_ms.count() > 0
                     ? bench::mean_ci(cell->exec_time_ms, 2)
                     : std::string("-")});
    }
  }
  if (cli.csv) {
    std::fputs(t.to_csv().c_str(), stdout);
    return 0;
  }
  t.print();
  std::printf(
      "\nNO_HZ_FULL matches paratick only for pinned single-task guests (its design\n"
      "target); under blocking sync or sync I/O it degenerates to dynticks-idle\n"
      "because every adaptive tick decision is still a TSC_DEADLINE write — i.e.\n"
      "a VM exit. Paratick is the only policy whose cost does not scale with the\n"
      "idle-transition rate (paper §4.2).\n");
  return 0;
}
