// Ablation of §3.1's overcommit claim: with physical CPUs time-shared
// between vCPUs, periodic-tick guests drown the host in exits for idle
// vCPUs. Sweeps the overcommit factor with mostly-idle sync VMs and
// reports exits and useful-work throughput for the three policies.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

struct Result {
  std::uint64_t exits;
  double guest_user_mcycles;
};

Result run_overcommit(guest::TickMode mode, int vms) {
  constexpr int kPhysCpus = 8;
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(kPhysCpus);
  spec.host.sched_mode = vms > 1 ? hv::SchedMode::kShared : hv::SchedMode::kPinned;
  spec.max_duration = sim::SimTime::sec(2);
  spec.stop_when_done = false;
  for (int i = 0; i < vms; ++i) {
    core::VmSpec vm;
    vm.vcpus = kPhysCpus;
    vm.guest.tick_mode = mode;
    vm.guest.seed = 77 + static_cast<std::uint64_t>(i);
    vm.setup = [](guest::GuestKernel& k) {
      workload::SyncStormSpec storm;
      storm.threads = 8;
      storm.sync_rate_hz = 200.0;
      storm.duration = sim::SimTime::sec(2);
      storm.load = 0.2;  // mostly idle: the consolidation case of §3.1
      workload::install_sync_storm(k, storm);
    };
    spec.vms.push_back(std::move(vm));
  }
  core::System system(std::move(spec));
  const metrics::RunResult r = system.run();
  return {r.exits_total,
          (double)r.cycles.total(hw::CycleCategory::kGuestUser).count() / 1e6};
}

}  // namespace

int main() {
  std::printf("==== Ablation: overcommit (8 pCPUs, 8-vCPU VMs at 20%% load) ====\n");
  metrics::Table t({"VMs", "overcommit", "policy", "total exits", "useful Mcycles"});
  for (int vms : {1, 2, 3, 4}) {
    for (auto mode : {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
                      guest::TickMode::kParatick}) {
      const Result r = run_overcommit(mode, vms);
      t.add_row({metrics::format("%d", vms), metrics::format("%dx", vms),
                 std::string(guest::to_string(mode)),
                 metrics::format("%llu", (unsigned long long)r.exits),
                 metrics::format("%.1f", r.guest_user_mcycles)});
      std::fflush(stdout);
    }
  }
  t.print();
  return 0;
}
