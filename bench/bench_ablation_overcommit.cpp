// Ablation of §3.1's overcommit claim: with physical CPUs time-shared
// between vCPUs, periodic-tick guests drown the host in exits for idle
// vCPUs. Sweeps the VM count (8 pCPUs, 8-vCPU copies, so overcommit =
// copies) with mostly-idle sync VMs and reports exits and useful-work
// throughput for the three policies.
//
// Runs on the deterministic parallel sweep runner; shared CLI flags in
// core/sweep.hpp. The grid key's overcommit column is derived from the
// materialized spec, so the exported rows self-describe the ratio.
#include <cstdio>

#include "bench_common.hpp"
#include "core/sweep.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

constexpr int kVmCounts[] = {1, 2, 3, 4};

std::string variant_name(int vms) { return metrics::format("vms=%d", vms); }

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);

  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(8);
  cfg.base.vcpus = 8;
  cfg.base.max_duration = sim::SimTime::sec(2);
  cfg.base.stop_when_done = false;
  cfg.base.setup = [](guest::GuestKernel& k) {
    workload::SyncStormSpec storm;
    storm.threads = 8;
    storm.sync_rate_hz = 200.0;
    storm.duration = sim::SimTime::sec(2);
    storm.load = 0.2;  // mostly idle: the consolidation case of §3.1
    workload::install_sync_storm(k, storm);
  };
  cfg.modes = {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
               guest::TickMode::kParatick};
  for (const int vms : kVmCounts) {
    // 8N vCPUs on 8 pCPUs: >1 copy auto-upgrades the host to shared
    // scheduling (see ScenarioSpec::sched_mode).
    cfg.variants.push_back({variant_name(vms), [vms](core::ExperimentSpec& exp) {
                              exp.scenario.vm_copies = vms;
                            }});
  }
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_ablation_overcommit");

  if (!cli.csv) {
    std::printf("==== Ablation: overcommit (8 pCPUs, 8-vCPU VMs at 20%% load) ====\n");
    std::printf("(%zu runs, %.2fs wall on %u threads)\n\n", res.runs.size(),
                res.wall_seconds, res.threads_used);
  }
  metrics::Table t({"VMs", "overcommit", "policy", "total exits", "useful Mcycles"});
  for (const int vms : kVmCounts) {
    for (auto mode : {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
                      guest::TickMode::kParatick}) {
      const auto* cell = res.find(variant_name(vms), mode);
      const sim::Accumulator useful = res.metric_over_runs(
          res.index_of(*cell), [](const metrics::RunResult& r) {
            return static_cast<double>(
                       r.cycles.total(hw::CycleCategory::kGuestUser).count()) /
                   1e6;
          });
      t.add_row({metrics::format("%d", vms), metrics::format("%dx", vms),
                 std::string(guest::to_string(mode)),
                 bench::mean_ci(cell->exits_total), bench::mean_ci(useful, 1)});
    }
  }
  if (cli.csv) {
    std::fputs(t.to_csv().c_str(), stdout);
    return 0;
  }
  t.print();
  std::printf("\nPeriodic exits grow linearly with the VM count while useful cycles\n"
              "stay flat; paratick's exit count is load-, not tick-, driven (§3.1).\n");
  return 0;
}
