// Extension: virtual-tick timing quality. Paratick delivers ticks at VM
// entries rather than from a programmed timer, so tick arrival inherits
// the jitter of exit opportunities — a timekeeping aspect the paper does
// not evaluate. This bench measures observed tick-interval statistics per
// policy on a busy guest and on a bursty guest.
//
// Runs on the deterministic parallel sweep runner; shared CLI flags in
// core/sweep.hpp. Interval accumulators are merged across --repeat
// replicas (metrics::VmResult::tick_intervals_us).
#include <cstdio>

#include "bench_common.hpp"
#include "core/sweep.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

constexpr const char* kBusy = "fully busy";
constexpr const char* kBursty = "bursty (1.5 ms on / 0.8 ms off)";

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);

  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(1);
  cfg.base.vcpus = 1;
  cfg.base.max_duration = sim::SimTime::sec(4);
  cfg.modes = {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
               guest::TickMode::kParatick};
  cfg.variants.push_back({kBusy, [](core::ExperimentSpec& exp) {
                            exp.setup = [](guest::GuestKernel& k) {
                              workload::PureComputeSpec pc;
                              pc.total_cycles = 8'000'000'000;
                              pc.chunks = 8000;
                              workload::install_pure_compute(k, pc);
                            };
                          }});
  cfg.variants.push_back({kBursty, [](core::ExperimentSpec& exp) {
                            exp.setup = [](guest::GuestKernel& k) {
                              workload::TickStormSpec storm;
                              storm.iterations = 1500;
                              storm.sleep_interval = sim::SimTime::us(800);
                              storm.think_cycles = 3'000'000;  // 1.5 ms bursts
                              workload::install_tick_storm(k, storm);
                            };
                          }});
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_ablation_tick_jitter");

  if (!cli.csv) {
    std::printf("==== Ablation: tick-interval jitter (guest declares 250 Hz = 4000 us) ====\n");
    std::printf("(%zu runs, %.2fs wall on %u threads)\n\n", res.runs.size(),
                res.wall_seconds, res.threads_used);
  }
  metrics::Table t({"workload", "policy", "ticks", "mean us", "stddev us", "max us"});
  for (const char* workload : {kBusy, kBursty}) {
    for (auto mode : {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
                      guest::TickMode::kParatick}) {
      const auto* cell = res.find(workload, mode);
      const std::size_t idx = res.index_of(*cell);
      const sim::Accumulator ticks = res.metric_over_runs(
          idx, [](const metrics::RunResult& r) {
            return r.vms[0].policy.ticks_handled;
          });
      const sim::Accumulator intervals = res.merged_over_runs(
          idx, [](const metrics::RunResult& r) -> const sim::Accumulator& {
            return r.vms[0].tick_intervals_us;
          });
      t.add_row({workload, std::string(guest::to_string(mode)),
                 bench::mean_ci(ticks),
                 metrics::format("%.1f", intervals.mean()),
                 metrics::format("%.1f", intervals.stddev()),
                 metrics::format("%.1f", intervals.max())});
    }
  }
  if (cli.csv) {
    std::fputs(t.to_csv().c_str(), stdout);
    return 0;
  }
  t.print();
  std::printf(
      "\nParatick's ticks ride on VM-entry opportunities: on a fully busy guest the\n"
      "interval tracks the host tick closely; on bursty guests idle periods stretch\n"
      "individual intervals (idle vCPUs deliberately receive no virtual ticks,\n"
      "§4.1) — time is recovered on wake-up, but periodic bookkeeping is coarser.\n"
      "This is the quantified cost of the paper's design choice.\n");
  return 0;
}
