// Extension: virtual-tick timing quality. Paratick delivers ticks at VM
// entries rather than from a programmed timer, so tick arrival inherits
// the jitter of exit opportunities — a timekeeping aspect the paper does
// not evaluate. This bench measures observed tick-interval statistics per
// policy on a busy guest and on a bursty guest.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

struct Row {
  sim::Accumulator intervals;
  std::uint64_t ticks;
};

Row run_jitter(guest::TickMode mode, bool bursty) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  spec.max_duration = sim::SimTime::sec(4);
  core::VmSpec vm;
  vm.vcpus = 1;
  vm.guest.tick_mode = mode;
  vm.setup = [bursty](guest::GuestKernel& k) {
    if (bursty) {
      workload::TickStormSpec storm;
      storm.iterations = 1500;
      storm.sleep_interval = sim::SimTime::us(800);
      storm.think_cycles = 3'000'000;  // 1.5 ms bursts
      workload::install_tick_storm(k, storm);
    } else {
      workload::PureComputeSpec pc;
      pc.total_cycles = 8'000'000'000;
      pc.chunks = 8000;
      workload::install_pure_compute(k, pc);
    }
  };
  spec.vms.push_back(std::move(vm));
  core::System system(std::move(spec));
  system.run();
  const auto& policy = system.kernel(0).cpu(0).policy();
  return {policy.tick_intervals_us(), policy.stats().ticks_handled};
}

}  // namespace

int main() {
  std::printf("==== Ablation: tick-interval jitter (guest declares 250 Hz = 4000 us) ====\n");
  metrics::Table t({"workload", "policy", "ticks", "mean us", "stddev us", "max us"});
  for (bool bursty : {false, true}) {
    for (auto mode : {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
                      guest::TickMode::kParatick}) {
      const Row row = run_jitter(mode, bursty);
      t.add_row({bursty ? "bursty (1.5 ms on / 0.8 ms off)" : "fully busy",
                 std::string(guest::to_string(mode)),
                 metrics::format("%llu", (unsigned long long)row.ticks),
                 metrics::format("%.1f", row.intervals.mean()),
                 metrics::format("%.1f", row.intervals.stddev()),
                 metrics::format("%.1f", row.intervals.max())});
      std::fflush(stdout);
    }
  }
  t.print();
  std::printf(
      "\nParatick's ticks ride on VM-entry opportunities: on a fully busy guest the\n"
      "interval tracks the host tick closely; on bursty guests idle periods stretch\n"
      "individual intervals (idle vCPUs deliberately receive no virtual ticks,\n"
      "§4.1) — time is recovered on wake-up, but periodic bookkeeping is coarser.\n"
      "This is the quantified cost of the paper's design choice.\n");
  return 0;
}
