// Ablation of §4.1's frequency-mismatch handling — the feature the paper
// left as future work ("if the host tick frequency is a multiple of that
// of the guest, no further actions are needed; if not, the host should
// program the guest preemption timer").
//
// Sweeps the host tick frequency against a 250 Hz guest and reports the
// virtual-tick rate the guest actually receives plus the exit cost of
// the auxiliary preemption timer.
//
// Runs on the deterministic parallel sweep runner; shared CLI flags in
// core/sweep.hpp. Note the sweep grid's tick_freqs_hz axis varies the
// *guest* frequency; the host frequency under study here is a variant.
#include <cstdio>

#include "bench_common.hpp"
#include "core/sweep.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

constexpr double kHostHz[] = {100.0, 250.0, 300.0, 500.0, 625.0, 1000.0};

std::string variant_name(double host_hz) {
  return metrics::format("host=%gHz", host_hz);
}

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);

  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(1);
  cfg.base.vcpus = 1;
  cfg.base.max_duration = sim::SimTime::sec(2);
  cfg.base.setup = [](guest::GuestKernel& k) {
    workload::PureComputeSpec spec;
    spec.total_cycles = 4'000'000'000;  // saturate the 2 s window
    spec.chunks = 4000;
    workload::install_pure_compute(k, spec);
  };
  cfg.modes = {guest::TickMode::kParatick};
  for (const double host_hz : kHostHz) {
    cfg.variants.push_back(
        {variant_name(host_hz), [host_hz](core::ExperimentSpec& exp) {
           exp.host.host_tick_freq = sim::Frequency{host_hz};
         }});
  }
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_ablation_tickfreq");

  if (!cli.csv) {
    std::printf("==== Ablation: host/guest tick-frequency mismatch (guest 250 Hz) ====\n");
    std::printf("(%zu runs, %.2fs wall on %u threads)\n\n", res.runs.size(),
                res.wall_seconds, res.threads_used);
  }
  metrics::Table t({"host Hz", "compatible", "virtual ticks/s", "aux-timer exits",
                    "timer exits", "total exits"});
  for (const double host_hz : kHostHz) {
    const auto* cell = res.find(variant_name(host_hz), guest::TickMode::kParatick);
    const std::size_t idx = res.index_of(*cell);
    const sim::Accumulator vticks_per_s = res.metric_over_runs(
        idx, [](const metrics::RunResult& r) {
          return static_cast<double>(r.vms[0].policy.virtual_ticks) /
                 r.wall.seconds();
        });
    const sim::Accumulator aux_exits = res.metric_over_runs(
        idx, [](const metrics::RunResult& r) {
          return r.exits_by_cause[static_cast<std::size_t>(
              hw::ExitCause::kAuxParatickTimer)];
        });
    const std::int64_t host_p = sim::Frequency{host_hz}.period().nanoseconds();
    const std::int64_t guest_p = sim::Frequency{250.0}.period().nanoseconds();
    const bool compatible = host_p <= guest_p && guest_p % host_p == 0;
    t.add_row({metrics::format("%.0f", host_hz), compatible ? "yes" : "no",
               bench::mean_ci(vticks_per_s, 1), bench::mean_ci(aux_exits),
               bench::mean_ci(cell->exits_timer),
               bench::mean_ci(cell->exits_total)});
  }
  if (cli.csv) {
    std::fputs(t.to_csv().c_str(), stdout);
    return 0;
  }
  t.print();
  std::printf(
      "\nCompatible hosts deliver ~250 virtual ticks/s for free (piggybacking on\n"
      "host-tick exits); incompatible hosts fall back to the auxiliary preemption\n"
      "timer, costing roughly one extra exit per guest tick — the same price a\n"
      "vanilla guest pays to run its own tick (§4.1).\n");
  return 0;
}
