// Ablation of §4.1's frequency-mismatch handling — the feature the paper
// left as future work ("if the host tick frequency is a multiple of that
// of the guest, no further actions are needed; if not, the host should
// program the guest preemption timer").
//
// Sweeps the host tick frequency against a 250 Hz guest and reports the
// virtual-tick rate the guest actually receives plus the exit cost of
// the auxiliary preemption timer.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/micro.hpp"

using namespace paratick;

int main() {
  std::printf("==== Ablation: host/guest tick-frequency mismatch (guest 250 Hz) ====\n");
  metrics::Table t({"host Hz", "compatible", "virtual ticks/s", "aux-timer exits",
                    "timer exits", "total exits"});

  const sim::SimTime duration = sim::SimTime::sec(2);
  for (double host_hz : {100.0, 250.0, 300.0, 500.0, 625.0, 1000.0}) {
    core::ExperimentSpec exp;
    exp.machine = hw::MachineSpec::small(1);
    exp.vcpus = 1;
    exp.host.host_tick_freq = sim::Frequency{host_hz};
    exp.max_duration = duration;
    exp.setup = [](guest::GuestKernel& k) {
      workload::PureComputeSpec spec;
      spec.total_cycles = 4'000'000'000;  // saturate the 2 s window
      spec.chunks = 4000;
      workload::install_pure_compute(k, spec);
    };
    const metrics::RunResult r = core::run_mode(exp, guest::TickMode::kParatick);

    const std::int64_t host_p = sim::Frequency{host_hz}.period().nanoseconds();
    const std::int64_t guest_p = sim::Frequency{250.0}.period().nanoseconds();
    const bool compatible = host_p <= guest_p && guest_p % host_p == 0;
    const double vticks_per_s =
        static_cast<double>(r.vms[0].policy.virtual_ticks) / r.wall.seconds();
    t.add_row(
        {metrics::format("%.0f", host_hz), compatible ? "yes" : "no",
         metrics::format("%.1f", vticks_per_s),
         metrics::format("%llu",
                         (unsigned long long)
                             r.exits_by_cause[static_cast<std::size_t>(
                                 hw::ExitCause::kAuxParatickTimer)]),
         metrics::format("%llu", (unsigned long long)r.exits_timer_related),
         metrics::format("%llu", (unsigned long long)r.exits_total)});
    std::fflush(stdout);
  }
  t.print();
  std::printf(
      "\nCompatible hosts deliver ~250 virtual ticks/s for free (piggybacking on\n"
      "host-tick exits); incompatible hosts fall back to the auxiliary preemption\n"
      "timer, costing roughly one extra exit per guest tick — the same price a\n"
      "vanilla guest pays to run its own tick (§4.1).\n");
  return 0;
}
