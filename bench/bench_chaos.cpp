// Chaos sweeps: run a registered fault-injection scenario across tick
// modes with crash-isolated runs, an invariant watchdog, and replay
// bundles for every failure (ROADMAP: deterministic chaos layer).
//
// Scenarios (core/scenarios.cpp): timer-storm, sync-storm, io-storm.
// The default chaos fault mix is applied automatically; individual
// rates can be overridden with --fault-<knob> X, e.g.
//
//   bench_chaos timer-storm --repeat 4 --fault-timer-drop 0.05
//               --failure-dir results/failures
//
// The sweep completes the full grid even when runs fail: failed
// replicas are reported per cell as "degraded" and excluded from the
// aggregates. Each failure writes a replay bundle under --failure-dir
// (default results/failures) which `bench_replay <bundle.json>`
// re-executes deterministically to the same failing event.
//
// Exit code 0 even with degraded cells — chaos failures are data, not
// bench errors. Shared CLI flags in core/sweep.hpp.
#include <cstdio>
#include <string>

#include "core/scenarios.hpp"
#include "core/sweep.hpp"
#include "metrics/report.hpp"

using namespace paratick;

namespace {

int usage() {
  std::fputs("usage: bench_chaos <scenario> [sweep flags]\nscenarios:", stderr);
  for (const char* name : core::chaos_scenario_names()) {
    std::fprintf(stderr, " %s", name);
  }
  std::fputc('\n', stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);
  if (cli.positional.size() != 1 || !core::is_chaos_scenario(cli.positional[0])) {
    return usage();
  }
  const std::string& scenario = cli.positional[0];

  core::SweepConfig cfg = core::build_chaos_scenario(scenario);
  cli.apply(cfg);
  if (cfg.failure_dir.empty()) cfg.failure_dir = "results/failures";

  const core::SweepResult res = cli.run_sweep(std::move(cfg));

  if (cli.csv) {
    std::fputs(res.to_csv().c_str(), stdout);
  } else {
    std::printf("chaos scenario %s: %zu runs (%zu ok, %zu failed, %zu cells"
                " degraded), %.2fs on %u threads\n",
                scenario.c_str(), res.runs.size(), res.ok_run_count(),
                res.failed_runs().size(), res.degraded_cell_count(),
                res.wall_seconds, res.threads_used);
    std::printf("%-42s %8s %8s %8s %10s %10s\n", "cell", "ok", "failed",
                "timedout", "exits", "wake_us");
    for (const auto& cell : res.cells) {
      std::printf("%-42s %8llu %8llu %8llu %10.0f %10.3f%s\n",
                  cell.key.label().c_str(),
                  static_cast<unsigned long long>(cell.exits_total.count()),
                  static_cast<unsigned long long>(cell.replicas_failed),
                  static_cast<unsigned long long>(cell.replicas_timed_out),
                  cell.exits_total.mean(), cell.wakeup_latency_us.mean(),
                  cell.degraded() ? "  DEGRADED" : "");
    }
    for (const core::SweepRun* run : res.failed_runs()) {
      const core::RunFailure& f = *run->failure;
      std::printf("failure run=%zu %s: %s %s%s%s [sim t=%lldns]%s%s\n",
                  run->run_index, res.cells[run->cell].key.label().c_str(),
                  core::RunFailure::kind_name(f.kind), f.expr.c_str(),
                  f.message.empty() ? "" : " — ", f.message.c_str(),
                  static_cast<long long>(f.sim_time_ns),
                  run->bundle_path.empty() ? "" : " bundle=",
                  run->bundle_path.c_str());
    }
  }
  cli.export_results(res, "bench_chaos_" + scenario);
  return 0;
}
