// Consolidation at cluster scale: N hosts × M tenant VMs of bursty
// diurnal traffic, steal-aware rebalancing, and the paratick-vs-dynticks
// timer-overhead gap per overcommit ratio.
//
// Each grid cell runs a core::Cluster — one System per host, coupled
// through the parallel engine with the host boundary as the partition
// boundary, so --engine-threads N parallelizes the cell across hosts
// while -j fans cells out across the grid. Both knobs, and the backend,
// leave every exported byte unchanged (the cluster-smoke CI job cmp's
// them). The overcommit axis resizes the per-host machine exactly like
// the single-host benches, so rows self-describe the vCPU:pCPU ratio.
//
// Cluster flags (strict numeric parsing, exit 2 on garbage):
//   --hosts N                  single hosts-axis point (default: 2 and 4)
//   --vms-per-host M           VMs per host (default 4)
//   --overcommit X             single overcommit point (default: 1 and 2)
//   --rebalance-period MS      steal-aware rebalance barrier period in ms;
//                              0 disables rebalancing (default 10)
//   --migration-blackout-us U  stop-and-copy blackout (default 500)
//   --migration-dirty-mcycles C dirty-page copy cost per end (default 2)
//   --duration-ms MS           simulated time per run (default 100)
//   --telemetry-period-us U    hosts 1..N-1 stream a load report to host 0
//                              every U us over a dedicated low-latency
//                              link; 0 disables the star (default 0). The
//                              heterogeneous-link topology is where
//                              --lookahead-mode topology beats global.
//   --telemetry-latency-us U   declared latency of those links (default 50)
// Plus the shared sweep CLI (core/sweep.hpp): -j, --engine-threads,
// --lookahead-mode, --max-horizon-windows, --repeat, --seed, --backend,
// --sweep-csv/json, --history-dir, ...
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/cli_parse.hpp"
#include "core/cluster/cluster.hpp"
#include "core/sweep.hpp"
#include "sim/check.hpp"
#include "sim/error.hpp"
#include "workload/tenant_traffic.hpp"

using namespace paratick;

namespace {

[[noreturn]] void usage_error(const std::string& msg) {
  PARATICK_CHECK_MSG(false, msg.c_str());
  std::abort();  // unreachable; PARATICK_CHECK_MSG throws
}

struct ClusterOpts {
  std::vector<int> hosts = {2, 4};
  int vms_per_host = 4;
  std::vector<double> overcommit = {1.0, 2.0};
  sim::SimTime rebalance_period = sim::SimTime::ms(10);
  sim::SimTime migration_blackout = sim::SimTime::us(500);
  std::int64_t migration_dirty_mcycles = 2;
  sim::SimTime duration = sim::SimTime::ms(100);
  sim::SimTime telemetry_period;  // zero = no telemetry star
  sim::SimTime telemetry_latency = sim::SimTime::us(50);
};

/// Consume the bench's own flags from the sweep CLI's positional residue.
/// Anything left over is an unknown flag — reject it loudly instead of
/// silently benchmarking a different cluster than the user asked for.
ClusterOpts parse_cluster_opts(const std::vector<std::string>& args) {
  ClusterOpts opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&](const char* flag) -> const std::string& {
      if (i + 1 >= args.size()) {
        usage_error(std::string(flag) + " requires a value");
      }
      return args[++i];
    };
    if (a == "--hosts") {
      opts.hosts = {static_cast<int>(core::parse_u64_flag("--hosts", value(a.c_str()), 64))};
      if (opts.hosts.front() < 1) usage_error("--hosts must be >= 1");
    } else if (a == "--vms-per-host") {
      opts.vms_per_host = static_cast<int>(
          core::parse_u64_flag("--vms-per-host", value(a.c_str()), 256));
      if (opts.vms_per_host < 1) usage_error("--vms-per-host must be >= 1");
    } else if (a == "--overcommit") {
      opts.overcommit = {
          core::parse_double_flag("--overcommit", value(a.c_str()), 0.01)};
    } else if (a == "--rebalance-period") {
      opts.rebalance_period = sim::SimTime::from_seconds(
          core::parse_double_flag("--rebalance-period", value(a.c_str()), 0.0) /
          1e3);
    } else if (a == "--migration-blackout-us") {
      opts.migration_blackout = sim::SimTime::us(static_cast<std::int64_t>(
          core::parse_u64_flag("--migration-blackout-us", value(a.c_str()),
                               1'000'000)));
    } else if (a == "--migration-dirty-mcycles") {
      opts.migration_dirty_mcycles = static_cast<std::int64_t>(
          core::parse_u64_flag("--migration-dirty-mcycles", value(a.c_str()),
                               1'000'000));
    } else if (a == "--duration-ms") {
      opts.duration = sim::SimTime::from_seconds(
          core::parse_double_flag("--duration-ms", value(a.c_str()), 0.001) /
          1e3);
    } else if (a == "--telemetry-period-us") {
      opts.telemetry_period = sim::SimTime::us(static_cast<std::int64_t>(
          core::parse_u64_flag("--telemetry-period-us", value(a.c_str()),
                               1'000'000'000)));
    } else if (a == "--telemetry-latency-us") {
      opts.telemetry_latency = sim::SimTime::us(static_cast<std::int64_t>(
          core::parse_u64_flag("--telemetry-latency-us", value(a.c_str()),
                               1'000'000'000)));
    } else {
      usage_error("unknown bench_cluster flag: " + a);
    }
  }
  if (opts.migration_blackout <= sim::SimTime::zero()) {
    usage_error("--migration-blackout-us must be >= 1");
  }
  if (opts.telemetry_period > sim::SimTime::zero()) {
    if (opts.telemetry_latency <= sim::SimTime::zero()) {
      usage_error("--telemetry-latency-us must be >= 1");
    }
    if (opts.telemetry_period < opts.telemetry_latency) {
      usage_error(
          "--telemetry-period-us below --telemetry-latency-us would queue "
          "unbounded in-flight reports");
    }
  }
  return opts;
}

/// The scenario factory one hosts-axis variant plugs into the sweep: the
/// materialized experiment (machine sized by the overcommit axis, per-run
/// seed derived) becomes a ClusterSpec.
std::function<metrics::RunResult(const core::ExperimentSpec&, guest::TickMode)>
make_cluster_runner(int hosts, const ClusterOpts& opts, unsigned engine_threads,
                    sim::LookaheadMode lookahead_mode,
                    std::uint64_t max_horizon_windows) {
  return [hosts, opts, engine_threads, lookahead_mode,
          max_horizon_windows](const core::ExperimentSpec& exp,
                               guest::TickMode mode) {
    core::ClusterSpec cs;
    cs.hosts = hosts;
    cs.vms_per_host = exp.scenario.effective_copies();
    cs.vcpus_per_vm = exp.vcpus;
    cs.machine = exp.machine;  // per-host; already overcommit-resized
    cs.host = exp.host;
    cs.guest.tick_mode = mode;
    cs.guest.tick_freq = exp.guest_tick_freq;
    cs.guest.costs = exp.guest_costs;
    // The guests' own estimators feed the scheduler AND the exported
    // estimator-error metric (steal_est_err columns).
    cs.guest.steal.enabled = true;
    cs.duration = exp.max_duration;
    cs.seed = exp.guest_seed;  // pure in (root_seed, run_index)
    cs.engine_threads = engine_threads;
    cs.lookahead_mode = lookahead_mode;
    cs.max_horizon_windows = max_horizon_windows;
    cs.telemetry_period = opts.telemetry_period;
    cs.telemetry_latency = opts.telemetry_latency;
    cs.rebalance_period = opts.rebalance_period;
    cs.migration_blackout = opts.migration_blackout;
    cs.migration_dirty_cycles =
        sim::Cycles{opts.migration_dirty_mcycles * 1'000'000};
    cs.workload = [until = exp.max_duration,
                   seed = exp.guest_seed](guest::GuestKernel& k, int g) {
      workload::TenantTrafficSpec traffic;
      traffic.workers = 2;
      traffic.until = until;
      // Per-tenant flash-crowd placement, pure in (run seed, global VM).
      traffic.seed = core::derive_seed(seed, 0x74726166u + static_cast<std::uint64_t>(g));
      workload::install_tenant_traffic(k, traffic);
    };
    core::Cluster cluster(std::move(cs));
    return cluster.run().merged;
  };
}

std::string variant_name(int hosts) { return metrics::format("hosts=%d", hosts); }

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);
  ClusterOpts opts;
  try {
    opts = parse_cluster_opts(cli.positional);
  } catch (const sim::SimError& e) {
    std::fprintf(stderr, "bench_cluster: %s\n", e.what());
    return 2;
  }

  core::SweepConfig cfg;
  cfg.base.vcpus = 2;
  cfg.base.machine = hw::MachineSpec::small(
      static_cast<std::uint32_t>(2 * opts.vms_per_host));
  cfg.base.scenario.vm_copies = opts.vms_per_host;
  cfg.base.max_duration = opts.duration;
  cfg.base.stop_when_done = false;
  cfg.overcommit = opts.overcommit;
  cfg.root_seed = 4242;
  for (const int hosts : opts.hosts) {
    cfg.variants.push_back(
        {variant_name(hosts), [hosts, &opts, &cli](core::ExperimentSpec& exp) {
           exp.scenario.run =
               make_cluster_runner(hosts, opts, cli.engine_threads,
                                   cli.lookahead_mode, cli.max_horizon_windows);
         }});
  }
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_cluster");

  if (!cli.csv) {
    std::printf("==== Cluster consolidation: hosts x %d tenant VMs/host, "
                "%.0f ms, rebalance %.1f ms ====\n",
                opts.vms_per_host, opts.duration.milliseconds(),
                opts.rebalance_period.milliseconds());
    std::printf("(%zu runs, %.2fs wall on %u threads, engine-threads %u)\n\n",
                res.runs.size(), res.wall_seconds, res.threads_used,
                cli.engine_threads);
  }

  metrics::Table t({"hosts", "overcommit", "policy", "total exits",
                    "timer exits", "steal ms", "est err ms", "wake p99 us"});
  for (const auto& cell : res.cells) {
    t.add_row({cell.key.variant, metrics::format("%g", cell.key.overcommit),
               std::string(guest::to_string(cell.key.mode)),
               bench::mean_ci(cell.exits_total),
               bench::mean_ci(cell.exits_timer),
               bench::mean_ci(cell.steal_ms, 2),
               bench::mean_ci(cell.steal_est_err_ms, 2),
               metrics::format("%.1f", cell.wake_hist_us.percentile(99.0))});
  }
  if (cli.csv) {
    std::fputs(t.to_csv().c_str(), stdout);
    return 0;
  }
  t.print();

  // The paper's question at cluster scale: how much timer overhead does
  // paratick shave per overcommit ratio?
  std::printf("\nparatick vs dynticks (timer-related exits):\n");
  for (const auto& base : res.cells) {
    if (base.key.mode != guest::TickMode::kDynticksIdle) continue;
    for (const auto& treat : res.cells) {
      if (treat.key.mode != guest::TickMode::kParatick ||
          treat.key.variant != base.key.variant ||
          treat.key.overcommit != base.key.overcommit) {
        continue;
      }
      const metrics::Comparison c = core::SweepResult::compare_cells(base, treat);
      std::printf("  %s oc=%g: exits %+.1f%%, timer exits %+.1f%%\n",
                  base.key.variant.c_str(), base.key.overcommit,
                  c.exit_delta_pct, c.timer_exit_delta_pct);
    }
  }
  std::printf("\nSteal columns: hv ground truth summed over tenant VMs; est err\n"
              "is the guests' platform-agnostic estimator minus that truth —\n"
              "the signal the consolidation scheduler actually acted on.\n");
  return 0;
}
