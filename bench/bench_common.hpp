// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "metrics/report.hpp"
#include "metrics/run_metrics.hpp"
#include "sim/stats.hpp"

namespace paratick::bench {

/// "mean ±hw" table cell: the ±95% confidence half-width appears only
/// when the accumulator has >= 2 samples (--repeat), so single runs show
/// a bare mean instead of ±0 noise (and never ±NaN).
inline std::string mean_ci(const sim::Accumulator& a, int precision = 0) {
  if (a.count() < 2) return metrics::format("%.*f", precision, a.mean());
  return metrics::format("%.*f ±%.*f", precision, a.mean(),
                         precision > 0 ? precision : 1, a.ci95_half_width());
}

/// Paper-vs-measured aggregate row (used by EXPERIMENTS.md).
struct PaperRow {
  const char* label;
  double paper_exits_pct;
  double paper_throughput_pct;
  double paper_time_pct;
};

inline void print_aggregate(const char* title, const PaperRow& paper,
                            const metrics::Comparison& measured) {
  std::printf("\n%s\n", title);
  metrics::Table t({"source", "VM exits", "System throughput", "Execution time"});
  t.add_row({"paper", metrics::pct(paper.paper_exits_pct),
             metrics::pct(paper.paper_throughput_pct), metrics::pct(paper.paper_time_pct)});
  t.add_row({"measured", metrics::pct(measured.exit_delta_pct),
             metrics::pct(measured.throughput_gain_pct),
             metrics::pct(measured.exec_time_delta_pct)});
  t.print();
}

/// Per-benchmark relative row (the bars of Figures 4/5/6).
inline std::vector<std::string> figure_row(const std::string& name,
                                           const metrics::Comparison& c) {
  return {name, metrics::pct(c.exit_delta_pct), metrics::pct(c.throughput_gain_pct),
          metrics::pct(c.exec_time_delta_pct)};
}

}  // namespace paratick::bench
