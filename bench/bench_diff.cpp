// Bench trajectory regression gate: compare two sweep history snapshots
// (SweepResult::to_json() documents, e.g. results/history/<bench>/<sha>.json)
// and exit nonzero when any per-cell metric mean shifted beyond a
// stddev-aware threshold. Wired into CI against the committed baseline;
// see EXPERIMENTS.md ("Refreshing the bench baseline").
//
// Usage: bench_diff <baseline.json> <current.json>
//                   [--z T]        Welch z-score threshold (default 4.0)
//                   [--rel-min R]  relative-change floor (default 0.001)
//                   [--ks D]       wake_us histogram KS threshold (default 0.15)
//                   [--metric M]   compare only metric M (repeatable;
//                                  default: all, "wake_us_hist" = KS gate)
//                   [--allow-grid-drift]  added/removed cells don't fail
//                   [--quiet]      findings only, no summary on success
//
// Exit codes: 0 clean, 1 regression, 2 usage or unreadable/corrupt input
// (with a hint to regenerate the baseline — see EXPERIMENTS.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/history.hpp"

using namespace paratick;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json> [--z T] [--rel-min R]\n"
               "          [--ks D] [--metric M]... [--allow-grid-drift] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  core::DiffConfig cfg;
  bool quiet = false;
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--z") == 0) {
      cfg.z_threshold = std::strtod(need_value("--z"), nullptr);
    } else if (std::strcmp(arg, "--rel-min") == 0) {
      cfg.rel_min = std::strtod(need_value("--rel-min"), nullptr);
    } else if (std::strcmp(arg, "--ks") == 0) {
      cfg.ks_threshold = std::strtod(need_value("--ks"), nullptr);
    } else if (std::strcmp(arg, "--metric") == 0) {
      cfg.metrics.emplace_back(need_value("--metric"));
    } else if (std::strcmp(arg, "--allow-grid-drift") == 0) {
      cfg.grid_must_match = false;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (baseline_path == nullptr) {
      baseline_path = arg;
    } else if (current_path == nullptr) {
      current_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) return usage(argv[0]);

  // A missing or corrupt snapshot is an infrastructure problem, not a
  // regression: report what is wrong and how to fix it, and exit 2 so CI
  // can distinguish the two cases.
  std::string error;
  const auto baseline = core::try_load_snapshot(baseline_path, &error);
  if (!baseline) {
    std::fprintf(stderr,
                 "bench_diff: bad baseline snapshot — %s\n"
                 "bench_diff: regenerate it by running the bench with "
                 "--repeat N --history-dir results/history and committing "
                 "the snapshot as baseline.json (see EXPERIMENTS.md, "
                 "\"Refreshing the bench baseline\")\n",
                 error.c_str());
    return 2;
  }
  const auto current = core::try_load_snapshot(current_path, &error);
  if (!current) {
    std::fprintf(stderr,
                 "bench_diff: bad current snapshot — %s\n"
                 "bench_diff: re-run the bench with --history-dir to produce "
                 "a fresh snapshot\n",
                 error.c_str());
    return 2;
  }
  const core::DiffResult diff = core::diff_snapshots(*baseline, *current, cfg);

  if (!diff.clean() || !quiet) {
    std::fputs(core::describe(diff, cfg).c_str(), diff.clean() ? stdout : stderr);
  }
  if (!diff.clean()) {
    std::fprintf(stderr, "bench_diff: REGRESSION — %s vs %s\n", current_path,
                 baseline_path);
    return 1;
  }
  return 0;
}
