// Bench trajectory regression gate: compare two sweep history snapshots
// (SweepResult::to_json() documents, e.g. results/history/<bench>/<sha>.json)
// and exit nonzero when any per-cell metric mean shifted beyond a
// stddev-aware threshold. Wired into CI against the committed baseline;
// see EXPERIMENTS.md ("Refreshing the bench baseline").
//
// Usage: bench_diff <baseline.json> <current.json>
//                   [--z T]        Welch z-score threshold (default 4.0)
//                   [--rel-min R]  relative-change floor (default 0.001)
//                   [--allow-grid-drift]  added/removed cells don't fail
//                   [--quiet]      findings only, no summary on success
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/history.hpp"

using namespace paratick;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json> [--z T] [--rel-min R]\n"
               "          [--allow-grid-drift] [--quiet]\n",
               argv0);
  return 2;
}

bool readable(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  core::DiffConfig cfg;
  bool quiet = false;
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--z") == 0) {
      cfg.z_threshold = std::strtod(need_value("--z"), nullptr);
    } else if (std::strcmp(arg, "--rel-min") == 0) {
      cfg.rel_min = std::strtod(need_value("--rel-min"), nullptr);
    } else if (std::strcmp(arg, "--allow-grid-drift") == 0) {
      cfg.grid_must_match = false;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (baseline_path == nullptr) {
      baseline_path = arg;
    } else if (current_path == nullptr) {
      current_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) return usage(argv[0]);
  for (const char* p : {baseline_path, current_path}) {
    if (!readable(p)) {
      std::fprintf(stderr, "bench_diff: cannot read %s\n", p);
      return 2;
    }
  }

  const core::Snapshot baseline = core::load_snapshot(baseline_path);
  const core::Snapshot current = core::load_snapshot(current_path);
  const core::DiffResult diff = core::diff_snapshots(baseline, current, cfg);

  if (!diff.clean() || !quiet) {
    std::fputs(core::describe(diff, cfg).c_str(), diff.clean() ? stdout : stderr);
  }
  if (!diff.clean()) {
    std::fprintf(stderr, "bench_diff: REGRESSION — %s vs %s\n", current_path,
                 baseline_path);
    return 1;
  }
  return 0;
}
