// Reproduces paper Figure 4 + Table 2: sequential PARSEC (1 vCPU) under
// paratick vs vanilla dynticks. Sequential workloads are the gross-cost
// floor: paratick should slash exits without hurting anything.
//
// Usage: bench_fig4_sequential [benchmark]
#include <cstdio>
#include <string_view>
#include <string>

#include "bench_common.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

int main(int argc, char** argv) {
  bool csv = false;
  const char* only = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--csv") {
      csv = true;
    } else {
      only = argv[i];
    }
  }

  if (!csv) std::printf("==== Figure 4 / Table 2: sequential PARSEC (1 vCPU) ====\n");
  metrics::Table fig({"benchmark", "VM exits", "throughput", "exec time"});
  std::vector<metrics::Comparison> comparisons;

  for (const auto& profile : workload::parsec_suite()) {
    if (only != nullptr && profile.name != only) continue;
    core::ExperimentSpec exp;
    exp.machine = hw::MachineSpec::small(1);
    exp.vcpus = 1;
    exp.attach_disk = true;
    exp.setup = [&profile](guest::GuestKernel& k) {
      workload::install_parsec(k, profile, 1);
    };
    const core::AbResult ab = core::run_paratick_vs_dynticks(exp);
    fig.add_row(bench::figure_row(std::string(profile.name), ab.comparison));
    comparisons.push_back(ab.comparison);
    std::fflush(stdout);
  }

  if (csv) {
    std::fputs(fig.to_csv().c_str(), stdout);
  } else {
    fig.print();
    bench::print_aggregate("Aggregate (Table 2)", {"Table 2", -50.0, +7.0, -2.0},
                           metrics::average(comparisons));
  }
  return 0;
}
