// Reproduces paper Figure 4 + Table 2: sequential PARSEC (1 vCPU) under
// paratick vs vanilla dynticks. Sequential workloads are the gross-cost
// floor: paratick should slash exits without hurting anything.
//
// Runs on the deterministic parallel sweep runner (see core/sweep.hpp).
// Usage: bench_fig4_sequential [benchmark] [--csv] [-j N] [--repeat N]
//                              [--seed S] [--sweep-csv P] [--sweep-json P]
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/sweep.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);
  const char* only = cli.positional.empty() ? nullptr : cli.positional.front().c_str();

  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(1);
  cfg.base.vcpus = 1;
  cfg.base.attach_disk = true;
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  cfg.root_seed = 1234;

  std::vector<std::string> names;
  for (const auto& profile : workload::parsec_suite()) {
    if (only != nullptr && profile.name != only) continue;
    names.emplace_back(profile.name);
    cfg.variants.push_back(
        {std::string(profile.name), [&profile](core::ExperimentSpec& exp) {
           exp.setup = [&profile](guest::GuestKernel& k) {
             workload::install_parsec(k, profile, 1);
           };
         }});
  }
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_fig4_sequential");

  if (!cli.csv) {
    std::printf("==== Figure 4 / Table 2: sequential PARSEC (1 vCPU) ====\n");
    std::printf("(%zu runs, %.2fs wall on %u threads)\n", res.runs.size(),
                res.wall_seconds, res.threads_used);
  }
  metrics::Table fig({"benchmark", "VM exits", "throughput", "exec time"});
  std::vector<metrics::Comparison> comparisons;
  for (const auto& name : names) {
    const metrics::Comparison c = res.compare(name, guest::TickMode::kDynticksIdle,
                                              guest::TickMode::kParatick);
    fig.add_row(bench::figure_row(name, c));
    comparisons.push_back(c);
  }

  if (cli.csv) {
    std::fputs(fig.to_csv().c_str(), stdout);
  } else {
    fig.print();
    bench::print_aggregate("Aggregate (Table 2)", {"Table 2", -50.0, +7.0, -2.0},
                           metrics::average(comparisons));
  }
  return 0;
}
