// Reproduces paper Figure 5 + Table 3: multithreaded PARSEC under
// paratick vs vanilla dynticks, in three VM sizes:
//   small  = 4 vCPUs  (1 NUMA socket)
//   medium = 16 vCPUs (2 sockets)
//   large  = 64 vCPUs (4 sockets)
//
// Prints one figure row per benchmark (relative VM exits / throughput /
// execution time) and the Table 3 aggregate per size. All sizes run in a
// single deterministic parallel sweep (variant = "<size>/<benchmark>").
//
// Usage: bench_fig5_multithreaded [small|medium|large|all] [benchmark]
//        [--csv] [-j N] [--repeat N] [--seed S] [--sweep-csv P] [--sweep-json P]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sweep.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

namespace {

struct SizeSpec {
  const char* name;
  int vcpus;
  std::uint32_t sockets;
  bench::PaperRow paper;
};

constexpr SizeSpec kSizes[] = {
    {"small", 4, 1, {"Table 3 small", -42.0, +12.0, -1.0}},
    {"medium", 16, 2, {"Table 3 medium", -47.0, +13.0, -3.0}},
    {"large", 64, 4, {"Table 3 large", -44.0, +16.0, -1.0}},
};

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);
  const char* size_arg = !cli.positional.empty() ? cli.positional[0].c_str() : "all";
  const char* bench_arg =
      cli.positional.size() > 1 ? cli.positional[1].c_str() : nullptr;

  core::SweepConfig cfg;
  cfg.base.attach_disk = true;
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  cfg.root_seed = 1234;

  struct Row {
    const SizeSpec* size;
    std::string variant;
    std::string benchmark;
  };
  std::vector<Row> rows;
  for (const auto& size : kSizes) {
    if (std::strcmp(size_arg, "all") != 0 && std::strcmp(size_arg, size.name) != 0)
      continue;
    for (const auto& profile : workload::parsec_suite()) {
      if (bench_arg != nullptr && profile.name != bench_arg) continue;
      std::string variant = std::string(size.name) + "/" + std::string(profile.name);
      rows.push_back({&size, variant, std::string(profile.name)});
      cfg.variants.push_back(
          {std::move(variant), [&size, &profile](core::ExperimentSpec& exp) {
             exp.machine =
                 hw::MachineSpec{size.sockets,
                                 static_cast<std::uint32_t>(size.vcpus) / size.sockets,
                                 sim::CpuFrequency{2.0}, sim::SimTime::ns(300)};
             exp.vcpus = size.vcpus;
             exp.setup = [&profile, &size](guest::GuestKernel& k) {
               workload::install_parsec(k, profile, size.vcpus);
             };
           }});
    }
  }
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_fig5_multithreaded");

  for (const auto& size : kSizes) {
    if (std::strcmp(size_arg, "all") != 0 && std::strcmp(size_arg, size.name) != 0)
      continue;
    if (!cli.csv) {
      std::printf("\n==== Figure 5 / Table 3: %s VM (%d vCPUs) ====\n", size.name,
                  size.vcpus);
    }
    metrics::Table fig({"benchmark", "VM exits", "throughput", "exec time"});
    std::vector<metrics::Comparison> comparisons;
    for (const auto& row : rows) {
      if (row.size != &size) continue;
      const metrics::Comparison c = res.compare(
          row.variant, guest::TickMode::kDynticksIdle, guest::TickMode::kParatick);
      fig.add_row(bench::figure_row(row.benchmark, c));
      comparisons.push_back(c);
    }
    if (cli.csv) {
      std::fputs(fig.to_csv().c_str(), stdout);
      continue;
    }
    fig.print();
    bench::print_aggregate("Aggregate (Table 3 row)", size.paper,
                           metrics::average(comparisons));
  }
  return 0;
}
