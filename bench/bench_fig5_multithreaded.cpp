// Reproduces paper Figure 5 + Table 3: multithreaded PARSEC under
// paratick vs vanilla dynticks, in three VM sizes:
//   small  = 4 vCPUs  (1 NUMA socket)
//   medium = 16 vCPUs (2 sockets)
//   large  = 64 vCPUs (4 sockets)
//
// Prints one figure row per benchmark (relative VM exits / throughput /
// execution time) and the Table 3 aggregate per size.
//
// Usage: bench_fig5_multithreaded [small|medium|large|all] [benchmark]
#include <cstdio>
#include <cstring>
#include <string_view>
#include <vector>
#include <string>

#include "bench_common.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

namespace {

struct SizeSpec {
  const char* name;
  int vcpus;
  std::uint32_t sockets;
  bench::PaperRow paper;
};

constexpr SizeSpec kSizes[] = {
    {"small", 4, 1, {"Table 3 small", -42.0, +12.0, -1.0}},
    {"medium", 16, 2, {"Table 3 medium", -47.0, +13.0, -3.0}},
    {"large", 64, 4, {"Table 3 large", -44.0, +16.0, -1.0}},
};

void run_size(const SizeSpec& size, const char* only_benchmark, bool csv) {
  if (!csv) {
    std::printf("\n==== Figure 5 / Table 3: %s VM (%d vCPUs) ====\n", size.name,
                size.vcpus);
  }
  metrics::Table fig({"benchmark", "VM exits", "throughput", "exec time"});
  std::vector<metrics::Comparison> comparisons;

  for (const auto& profile : workload::parsec_suite()) {
    if (only_benchmark != nullptr && profile.name != only_benchmark) continue;
    core::ExperimentSpec exp;
    exp.machine =
        hw::MachineSpec{size.sockets,
                        static_cast<std::uint32_t>(size.vcpus) / size.sockets,
                        sim::CpuFrequency{2.0}, sim::SimTime::ns(300)};
    exp.vcpus = size.vcpus;
    exp.attach_disk = true;
    exp.setup = [&profile, &size](guest::GuestKernel& k) {
      workload::install_parsec(k, profile, size.vcpus);
    };
    const core::AbResult ab = core::run_paratick_vs_dynticks(exp);
    fig.add_row(bench::figure_row(std::string(profile.name), ab.comparison));
    comparisons.push_back(ab.comparison);
    std::fflush(stdout);
  }

  if (csv) {
    std::fputs(fig.to_csv().c_str(), stdout);
    return;
  }
  fig.print();
  bench::print_aggregate("Aggregate (Table 3 row)", size.paper,
                         metrics::average(comparisons));
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--csv") {
      csv = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const char* size_arg = !positional.empty() ? positional[0] : "all";
  const char* bench_arg = positional.size() > 1 ? positional[1] : nullptr;
  for (const auto& size : kSizes) {
    if (std::strcmp(size_arg, "all") != 0 && std::strcmp(size_arg, size.name) != 0)
      continue;
    run_size(size, bench_arg, csv);
  }
  return 0;
}
