// Reproduces paper Figure 6 + Table 4: phoronix-fio style synchronous
// block I/O in a 1-vCPU VM, four categories (seqr/seqwr/rndr/rndwr),
// each aggregated over block sizes 4k..256k.
//
// I/O throughput is measured directly (paper §6.3: "I/O operations are
// the sole system bottleneck, so I/O throughput equates to system
// throughput for this use case"); CPU-cycle throughput and execution
// time are reported alongside.
//
// Usage: bench_fig6_io [category]
#include <cstdio>
#include <string_view>
#include <string>

#include "bench_common.hpp"
#include "workload/fio.hpp"

using namespace paratick;

namespace {

struct CategoryResult {
  metrics::Comparison cycles_cmp;     // averaged per-block-size comparison
  double io_throughput_gain_pct = 0;  // MB/s gain, averaged over block sizes
};

double mbps(const metrics::RunResult& r, std::uint64_t bytes) {
  const auto t = r.completion_time();
  if (!t || t->seconds() <= 0) return 0.0;
  return static_cast<double>(bytes) / 1e6 / t->seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  const char* only = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--csv") {
      csv = true;
    } else {
      only = argv[i];
    }
  }

  if (!csv) std::printf("==== Figure 6 / Table 4: fio sync I/O (1 vCPU) ====\n");
  metrics::Table fig(
      {"category", "VM exits", "I/O throughput", "cycle throughput", "exec time"});
  std::vector<metrics::Comparison> comparisons;

  for (const auto& cat : workload::fio_categories()) {
    if (only != nullptr && cat.name != only) continue;
    std::vector<metrics::Comparison> per_bs;
    double io_gain_sum = 0.0;
    for (const std::uint32_t bs : workload::fio_block_sizes()) {
      workload::FioSpec spec;
      spec.dir = cat.dir;
      spec.pattern = cat.pattern;
      spec.block_bytes = bs;
      spec.ops = 1500;

      core::ExperimentSpec exp;
      exp.machine = hw::MachineSpec::small(1);
      exp.vcpus = 1;
      exp.attach_disk = true;
      exp.setup = [&spec](guest::GuestKernel& k) { workload::install_fio(k, spec); };

      const core::AbResult ab = core::run_paratick_vs_dynticks(exp);
      per_bs.push_back(ab.comparison);
      const std::uint64_t bytes = static_cast<std::uint64_t>(spec.ops) * bs;
      const double base = mbps(ab.baseline, bytes);
      const double treat = mbps(ab.treatment, bytes);
      if (base > 0.0) io_gain_sum += (treat / base - 1.0) * 100.0;
    }
    const auto avg = metrics::average(per_bs);
    const double io_gain =
        io_gain_sum / static_cast<double>(workload::fio_block_sizes().size());
    fig.add_row({std::string(cat.name), metrics::pct(avg.exit_delta_pct),
                 metrics::pct(io_gain), metrics::pct(avg.throughput_gain_pct),
                 metrics::pct(avg.exec_time_delta_pct)});
    comparisons.push_back(avg);
    std::fflush(stdout);
  }

  if (csv) {
    std::fputs(fig.to_csv().c_str(), stdout);
  } else {
    fig.print();
    bench::print_aggregate("Aggregate (Table 4)", {"Table 4", -34.0, +20.0, -18.0},
                           metrics::average(comparisons));
  }
  return 0;
}
