// Reproduces paper Figure 6 + Table 4: phoronix-fio style synchronous
// block I/O in a 1-vCPU VM, four categories (seqr/seqwr/rndr/rndwr),
// each aggregated over block sizes 4k..256k.
//
// I/O throughput is measured directly (paper §6.3: "I/O operations are
// the sole system bottleneck, so I/O throughput equates to system
// throughput for this use case"); CPU-cycle throughput and execution
// time are reported alongside.
//
// Runs on the deterministic parallel sweep runner; shared CLI flags in
// core/sweep.hpp. Each category x block-size pair is one sweep variant.
//
// Usage: bench_fig6_io [category]
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "core/sweep.hpp"
#include "workload/fio.hpp"

using namespace paratick;

namespace {

std::string variant_name(std::string_view category, std::uint32_t bs) {
  return metrics::format("%s/bs=%uk", std::string(category).c_str(), bs / 1024);
}

double mbps(double exec_ms, std::uint64_t bytes) {
  if (exec_ms <= 0.0) return 0.0;
  return static_cast<double>(bytes) / 1e6 / (exec_ms / 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);
  const char* only = cli.positional.empty() ? nullptr : cli.positional[0].c_str();

  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(1);
  cfg.base.vcpus = 1;
  cfg.base.attach_disk = true;
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  for (const auto& cat : workload::fio_categories()) {
    if (only != nullptr && cat.name != only) continue;
    for (const std::uint32_t bs : workload::fio_block_sizes()) {
      workload::FioSpec spec;
      spec.dir = cat.dir;
      spec.pattern = cat.pattern;
      spec.block_bytes = bs;
      spec.ops = 1500;
      cfg.variants.push_back(
          {variant_name(cat.name, bs), [spec](core::ExperimentSpec& exp) {
             exp.setup = [spec](guest::GuestKernel& k) {
               workload::install_fio(k, spec);
             };
           }});
    }
  }
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_fig6_io");

  if (!cli.csv) {
    std::printf("==== Figure 6 / Table 4: fio sync I/O (1 vCPU) ====\n");
    std::printf("(%zu runs, %.2fs wall on %u threads)\n\n", res.runs.size(),
                res.wall_seconds, res.threads_used);
  }
  metrics::Table fig(
      {"category", "VM exits", "I/O throughput", "cycle throughput", "exec time"});
  std::vector<metrics::Comparison> comparisons;

  for (const auto& cat : workload::fio_categories()) {
    if (only != nullptr && cat.name != only) continue;
    std::vector<metrics::Comparison> per_bs;
    double io_gain_sum = 0.0;
    for (const std::uint32_t bs : workload::fio_block_sizes()) {
      const std::string variant = variant_name(cat.name, bs);
      per_bs.push_back(res.compare(variant, guest::TickMode::kDynticksIdle,
                                   guest::TickMode::kParatick));
      const auto* base = res.find(variant, guest::TickMode::kDynticksIdle);
      const auto* treat = res.find(variant, guest::TickMode::kParatick);
      const std::uint64_t bytes = static_cast<std::uint64_t>(1500) * bs;
      const double base_mbps = mbps(base->exec_time_ms.mean(), bytes);
      const double treat_mbps = mbps(treat->exec_time_ms.mean(), bytes);
      if (base_mbps > 0.0) io_gain_sum += (treat_mbps / base_mbps - 1.0) * 100.0;
    }
    const auto avg = metrics::average(per_bs);
    const double io_gain =
        io_gain_sum / static_cast<double>(workload::fio_block_sizes().size());
    fig.add_row({std::string(cat.name), metrics::pct(avg.exit_delta_pct),
                 metrics::pct(io_gain), metrics::pct(avg.throughput_gain_pct),
                 metrics::pct(avg.exec_time_delta_pct)});
    comparisons.push_back(avg);
  }

  if (cli.csv) {
    std::fputs(fig.to_csv().c_str(), stdout);
  } else {
    fig.print();
    bench::print_aggregate("Aggregate (Table 4)", {"Table 4", -34.0, +20.0, -18.0},
                           metrics::average(comparisons));
  }
  return 0;
}
