// Engine hot-path microbenchmarks: no hypervisor, no guest — just the
// DES core under the three access patterns the paratick model leans on.
//
//   churn      — schedule/cancel/fire storm on the raw engine: a
//                self-rescheduling pump posts payload-carrying events and
//                cancels most of them before they fire (slot-map reuse,
//                stale-id rejection, heap compaction).
//   wheel      — timer-wheel cascade: a jiffy tick drives a TimerWheel
//                loaded with far-future timers, so entries park in high
//                levels and cascade down (InlineCallback relocation).
//   reprogram  — dynticks reprogram storm: a DeadlineTimer is re-armed
//                many times per sleep, the way NO_HZ reprograms the
//                TSC-deadline MSR (cancel+schedule pairs per re-arm).
//   partchurn  — partitioned churn on sim::ParallelEngine: four engines
//                coupled in a ring of declared links; each runs a local
//                event pump and periodically sends a cross-partition ping
//                that XORs into its successor's sink (quantum windows,
//                barrier commits, committed-order determinism).
//   barrierstorm — the sparse-barrier worst case for global lookahead:
//                eight partitions, one tight 1us link (1 -> 0) carrying a
//                10us ping stream, everyone else nearly idle. Runs the
//                SAME workload under both lookahead modes, checks the
//                state digests match, and exports both window counts —
//                the windows_global / windows_topology gap IS the
//                optimization, gated at zero tolerance in CI.
//
// Every counter except events_per_sec is a pure function of --seed, so
// the history snapshot diffs bit-exact run to run; events_per_sec is the
// host-dependent throughput figure the CI smoke gates generously.
// partchurn's counters are additionally invariant to --engine-threads —
// that is the parallel engine's contract.
//
// Usage: bench_microbench [--repeat N] [--seed S] [--json FILE]
//                         [--history-dir D] [--history-tag T]
//                         [--engine-threads N] [--profile] [--quiet]
//
// The JSON output is a SweepResult::to_json()-shaped snapshot (variant =
// case name, mode = "microbench"), so bench_diff consumes it unchanged.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/history.hpp"
#include "guest/timer_wheel.hpp"
#include "sim/check.hpp"
#include "hw/deadline_timer.hpp"
#include "metrics/report.hpp"
#include "sim/engine.hpp"
#include "sim/parallel/parallel_engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

using namespace paratick;

namespace {

/// Worker threads inside the partchurn case's parallel engine
/// (--engine-threads). Counters are bit-identical for any value.
unsigned g_engine_threads = 1;

struct CaseResult {
  sim::EngineProfile prof;
  std::uint64_t sink = 0;  // data-dependent checksum: defeats DCE, proves determinism
  double host_seconds = 0.0;
  // Parallel-engine window counters (partitioned cases only, zero
  // elsewhere). All four are pure functions of --seed.
  std::uint64_t windows_global = 0;
  std::uint64_t windows_topology = 0;
  std::uint64_t windows_skipped = 0;
  std::uint64_t barriers_elided = 0;
};

// -------------------------------------------------------------- churn ----

/// Self-rescheduling pump: every iteration posts four payload events a few
/// microseconds out and cancels three — one quarter fires. Stale EventIds
/// are left in the victim list on purpose, so a slice of the cancels hits
/// already-fired (generation-retired) slots.
struct ChurnCase {
  sim::Engine eng;
  sim::Rng rng;
  std::vector<sim::EventId> victims;
  std::uint64_t sink = 0;
  std::uint64_t remaining;

  ChurnCase(std::uint64_t seed, std::uint64_t iters) : rng(seed), remaining(iters) {}

  void pump() {
    for (int k = 0; k < 4; ++k) {
      const std::uint64_t a = rng.next_u64();
      const std::uint64_t b = rng.next_u64();
      const std::uint64_t c = rng.next_u64();
      const std::uint64_t d = rng.next_u64();
      victims.push_back(eng.schedule_after(
          sim::SimTime::ns(rng.uniform_int(100, 5000)),
          [this, a, b, c, d] { sink ^= a + (b ^ c) - d; }));
    }
    for (int k = 0; k < 3; ++k) {
      // Mostly-recent picks: usually a live event (real cancel work), but
      // the tail of the window is often already fired — those cancels must
      // bounce off the retired slot's generation check.
      const std::size_t lo = victims.size() > 16 ? victims.size() - 16 : 0;
      const auto i =
          lo + static_cast<std::size_t>(rng.uniform_int(
                   0, static_cast<std::int64_t>(victims.size() - lo) - 1));
      eng.cancel(victims[i]);
      victims[i] = victims.back();
      victims.pop_back();
    }
    if (--remaining > 0) {
      eng.schedule_after(sim::SimTime::ns(50), [this] { pump(); });
    }
  }
};

CaseResult run_churn(std::uint64_t seed) {
  ChurnCase c(seed, 250'000);
  c.eng.schedule_after(sim::SimTime::ns(1), [&c] { c.pump(); });
  c.eng.run();
  return {c.eng.profile(), c.sink, 0.0};
}

// -------------------------------------------------------------- wheel ----

/// Jiffy tick advancing a TimerWheel whose load is mostly far-future:
/// level >= 1 parking on add, cascades on advance, and a cancel-heavy
/// foreground (six of every eight adds are torn down again).
struct WheelCase {
  sim::Engine eng;
  sim::Rng rng;
  guest::TimerWheel wheel;
  std::vector<guest::TimerWheel::TimerId> ids;
  std::uint64_t sink = 0;
  std::uint64_t jiffy = 0;
  std::uint64_t last_jiffy;

  WheelCase(std::uint64_t seed, std::uint64_t jiffies)
      : rng(seed), last_jiffy(jiffies) {}

  void tick() {
    ++jiffy;
    for (int k = 0; k < 8; ++k) {
      const std::uint64_t v = rng.next_u64();
      ids.push_back(wheel.add(
          jiffy + static_cast<std::uint64_t>(rng.uniform_int(1, 100'000)),
          [this, v] { sink ^= v; }));
    }
    for (int k = 0; k < 6; ++k) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
      wheel.cancel(ids[i]);  // stale ids welcome
      ids[i] = ids.back();
      ids.pop_back();
    }
    wheel.advance(jiffy);
    sink += wheel.next_expiry().value_or(0);
    if (jiffy < last_jiffy) {
      eng.schedule_after(sim::SimTime::us(1000), [this] { tick(); });
    }
  }
};

CaseResult run_wheel(std::uint64_t seed) {
  WheelCase w(seed, 20'000);
  w.eng.schedule_after(sim::SimTime::us(1000), [&w] { w.tick(); });
  w.eng.run();
  w.sink ^= w.wheel.fired_count();
  return {w.eng.profile(), w.sink, 0.0};
}

// ---------------------------------------------------------- reprogram ----

/// NO_HZ-style reprogram storm: each "idle entry" rewrites the deadline
/// eight times (every arm() cancels the previous engine event and posts a
/// fresh one) before the sleep finally expires or the next entry starts.
struct ReprogramCase {
  sim::Engine eng;
  sim::Rng rng;
  hw::DeadlineTimer timer;
  std::uint64_t sink = 0;
  std::uint64_t remaining;

  ReprogramCase(std::uint64_t seed, std::uint64_t iters)
      : rng(seed),
        timer(eng,
              [this] {
                sink ^= static_cast<std::uint64_t>(eng.now().nanoseconds()) *
                        std::uint64_t{0x9E3779B97F4A7C15u};
              }),
        remaining(iters) {}

  void step() {
    for (int k = 0; k < 8; ++k) {
      timer.arm(eng.now() + sim::SimTime::ns(rng.uniform_int(500, 2000)));
    }
    if (--remaining > 0) {
      eng.schedule_after(sim::SimTime::ns(rng.uniform_int(100, 400)),
                         [this] { step(); });
    }
  }
};

CaseResult run_reprogram(std::uint64_t seed) {
  ReprogramCase r(seed, 150'000);
  r.eng.schedule_after(sim::SimTime::ns(1), [&r] { r.step(); });
  r.eng.run();
  r.sink ^= r.timer.fire_count();
  return {r.eng.profile(), r.sink, 0.0};
}

// ---------------------------------------------------------- partchurn ----

/// One partition's event pump: a stream of local payload events plus a
/// cross-partition ping to the ring successor every fourth iteration. The
/// pump only ever touches its own engine and sink; the ping callback runs
/// later inside the SUCCESSOR's engine, so it may write that sink freely.
struct PartPump {
  sim::Engine* eng = nullptr;
  sim::ParallelEngine* fabric = nullptr;
  sim::PartitionId self = 0;
  sim::PartitionId next = 0;
  sim::Rng rng{0};
  std::uint64_t* sink = nullptr;       // this partition's sink
  std::uint64_t* next_sink = nullptr;  // successor's (written via send only)
  std::uint64_t remaining = 0;

  void pump() {
    for (int k = 0; k < 3; ++k) {
      const std::uint64_t v = rng.next_u64();
      eng->schedule_after(sim::SimTime::ns(rng.uniform_int(100, 3000)),
                          [s = sink, v] { *s ^= v; });
    }
    if ((remaining & 3) == 0) {
      const std::uint64_t v = rng.next_u64();
      fabric->send(self, next, sim::SimTime::us(5), [s = next_sink, v] {
        *s ^= v * std::uint64_t{0x9E3779B97F4A7C15u};
      });
    }
    if (--remaining > 0) {
      eng->schedule_after(sim::SimTime::ns(200), [this] { pump(); });
    }
  }
};

CaseResult run_partchurn(std::uint64_t seed) {
  constexpr sim::PartitionId kParts = 4;
  sim::Engine engines[kParts];
  std::uint64_t sinks[kParts] = {};
  sim::ParallelEngine fabric(g_engine_threads);
  for (auto& eng : engines) fabric.add_partition(eng);
  for (sim::PartitionId p = 0; p < kParts; ++p) {
    fabric.declare_link(p, (p + 1) % kParts, sim::SimTime::us(5));
  }
  PartPump pumps[kParts];
  for (sim::PartitionId p = 0; p < kParts; ++p) {
    PartPump& pp = pumps[p];
    pp.eng = &engines[p];
    pp.fabric = &fabric;
    pp.self = p;
    pp.next = (p + 1) % kParts;
    pp.rng = sim::Rng(seed ^ (std::uint64_t{0xBF58476D1CE4E5B9u} * (p + 1)));
    pp.sink = &sinks[p];
    pp.next_sink = &sinks[pp.next];
    pp.remaining = 60'000;
    engines[p].schedule_after(sim::SimTime::ns(1), [&pp] { pp.pump(); });
  }
  fabric.run();

  const sim::ParallelProfile pp = fabric.profile();
  sim::EngineProfile prof = pp.merged;
  prof.wall_ns = pp.wall_ns;
  std::uint64_t sink = fabric.state_digest() ^ pp.cross_messages;
  for (const std::uint64_t s : sinks) sink ^= s;
  CaseResult out{prof, sink, 0.0};
  out.windows_global = pp.quanta;  // partchurn always runs global lookahead
  return out;
}

// ------------------------------------------------------- barrierstorm ----

/// One busy sender streaming pings to partition 0 over the single tight
/// link; everyone else is nearly idle. Under global lookahead the 1us
/// link latency is the quantum for ALL partitions; under topology
/// lookahead only partition 0 has an inbound link, so the idle crowd runs
/// long capped horizons and the barrier count collapses.
struct StormState {
  sim::Engine engines[8];
  std::uint64_t sinks[8] = {};
  sim::Rng rng;
  std::uint64_t pings_left = 2'000;

  explicit StormState(std::uint64_t seed) : rng(seed) {}

  void pump(sim::ParallelEngine& fabric) {
    const std::uint64_t v = rng.next_u64();
    fabric.send(1, 0, sim::SimTime::us(1), [s = &sinks[0], v] {
      *s ^= v * std::uint64_t{0x9E3779B97F4A7C15u};
    });
    if (--pings_left > 0) {
      engines[1].schedule_after(sim::SimTime::us(10),
                                [this, &fabric] { pump(fabric); });
    }
  }

  /// Sparse background work on an otherwise idle partition.
  void idle_tick(sim::PartitionId p, int remaining) {
    sinks[p] += static_cast<std::uint64_t>(engines[p].now().nanoseconds()) ^ p;
    if (remaining > 0) {
      engines[p].schedule_after(sim::SimTime::us(200), [this, p, remaining] {
        idle_tick(p, remaining - 1);
      });
    }
  }
};

CaseResult run_barrierstorm_mode(std::uint64_t seed, sim::LookaheadMode mode,
                                 std::uint64_t* digest) {
  StormState st(seed);
  sim::ParallelEngine fabric(g_engine_threads);
  fabric.set_lookahead_mode(mode);
  for (auto& eng : st.engines) fabric.add_partition(eng);
  fabric.declare_link(1, 0, sim::SimTime::us(1));  // the one tight link
  st.engines[1].schedule_after(sim::SimTime::ns(1),
                               [&st, &fabric] { st.pump(fabric); });
  for (sim::PartitionId p = 2; p < 8; ++p) {
    st.engines[p].schedule_after(sim::SimTime::us(200),
                                 [&st, p] { st.idle_tick(p, 100); });
  }
  fabric.run();

  const sim::ParallelProfile pp = fabric.profile();
  sim::EngineProfile prof = pp.merged;
  prof.wall_ns = pp.wall_ns;
  *digest = fabric.state_digest();
  std::uint64_t sink = *digest ^ pp.cross_messages;
  for (const std::uint64_t s : st.sinks) sink ^= s;
  CaseResult out{prof, sink, 0.0};
  out.windows_global = pp.quanta;  // reinterpreted by run_barrierstorm
  out.windows_skipped = pp.windows_skipped;
  out.barriers_elided = pp.barriers_elided;
  return out;
}

CaseResult run_barrierstorm(std::uint64_t seed) {
  std::uint64_t digest_global = 0, digest_topology = 0;
  const CaseResult g = run_barrierstorm_mode(
      seed, sim::LookaheadMode::kGlobal, &digest_global);
  const CaseResult t = run_barrierstorm_mode(
      seed, sim::LookaheadMode::kTopology, &digest_topology);
  // The two modes must produce the same simulation — same final state,
  // same sink, same event counts; only the window counters may differ.
  PARATICK_CHECK_MSG(digest_global == digest_topology,
                     "barrierstorm: lookahead modes diverged (state digest)");
  PARATICK_CHECK_MSG(g.sink == t.sink,
                     "barrierstorm: lookahead modes diverged (sink)");
  PARATICK_CHECK_MSG(
      g.prof.events_executed == t.prof.events_executed,
      "barrierstorm: lookahead modes diverged (events executed)");
  CaseResult out = g;
  out.windows_topology = t.windows_global;
  out.windows_skipped = t.windows_skipped;
  out.barriers_elided = t.barriers_elided;
  return out;
}

// ------------------------------------------------------------- driver ----

struct Case {
  const char* name;
  CaseResult (*run)(std::uint64_t seed);
};

constexpr Case kCases[] = {
    {"churn", run_churn},
    {"wheel", run_wheel},
    {"reprogram", run_reprogram},
    {"partchurn", run_partchurn},
    {"barrierstorm", run_barrierstorm},
};

struct CaseStats {
  const char* name = nullptr;
  int replicas = 0;
  sim::Accumulator events, events_per_sec, scheduled, cancelled;
  sim::Accumulator cb_spills, cb_spill_bytes, slot_high_water, compactions;
  sim::Accumulator windows_global, windows_topology, windows_skipped,
      barriers_elided;
  std::uint64_t sink = 0;  // replica 0's checksum
};

std::string metric_json(const char* name, const sim::Accumulator& a) {
  return metrics::format("\"%s\": {\"mean\": %.4f, \"stddev\": %.4f}", name,
                         a.mean(), a.stddev());
}

/// SweepResult::to_json()-shaped snapshot so bench_diff / parse_snapshot
/// read it without a special case.
std::string to_snapshot_json(const std::vector<CaseStats>& cases,
                             double wall_seconds) {
  std::string out = metrics::format(
      "{\"wall_seconds\": %.3f, \"threads\": 1, \"cells\": [\n", wall_seconds);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseStats& c = cases[i];
    out += metrics::format(
        "{\"variant\": \"%s\", \"mode\": \"microbench\", \"tick_freq_hz\": 0, "
        "\"vcpus\": 1, \"overcommit\": 1, \"replicas\": %d, ",
        c.name, c.replicas);
    out += metric_json("events", c.events) + ", ";
    out += metric_json("events_per_sec", c.events_per_sec) + ", ";
    out += metric_json("scheduled", c.scheduled) + ", ";
    out += metric_json("cancelled", c.cancelled) + ", ";
    out += metric_json("cb_spills", c.cb_spills) + ", ";
    out += metric_json("cb_spill_bytes", c.cb_spill_bytes) + ", ";
    out += metric_json("slot_high_water", c.slot_high_water) + ", ";
    out += metric_json("compactions", c.compactions) + ", ";
    // Parallel window counters, deterministic and gated at zero tolerance
    // like the counters above (all-zero for the single-engine cases).
    out += metric_json("windows_global", c.windows_global) + ", ";
    out += metric_json("windows_topology", c.windows_topology) + ", ";
    out += metric_json("windows_skipped", c.windows_skipped) + ", ";
    out += metric_json("barriers_elided", c.barriers_elided);
    out += metrics::format("}%s\n", i + 1 < cases.size() ? "," : "");
  }
  out += "]}\n";
  return out;
}

void write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_microbench: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--repeat N] [--seed S] [--json FILE]\n"
               "          [--history-dir D] [--history-tag T] "
               "[--engine-threads N]\n"
               "          [--profile] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int repeat = 3;
  std::uint64_t root_seed = 0x9a7a71cUL;  // "paratick"-ish; stable default
  std::string json_path, history_dir, history_tag;
  bool profile = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--repeat") == 0) {
      repeat = static_cast<int>(std::strtol(need_value("--repeat"), nullptr, 10));
    } else if (std::strcmp(arg, "--seed") == 0) {
      root_seed = std::strtoull(need_value("--seed"), nullptr, 0);
    } else if (std::strcmp(arg, "--json") == 0) {
      json_path = need_value("--json");
    } else if (std::strcmp(arg, "--history-dir") == 0) {
      history_dir = need_value("--history-dir");
    } else if (std::strcmp(arg, "--history-tag") == 0) {
      history_tag = need_value("--history-tag");
    } else if (std::strcmp(arg, "--engine-threads") == 0) {
      g_engine_threads = static_cast<unsigned>(
          std::strtoul(need_value("--engine-threads"), nullptr, 10));
      if (g_engine_threads == 0) g_engine_threads = 1;
    } else if (std::strcmp(arg, "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (repeat < 1) repeat = 1;

  const auto bench_t0 = std::chrono::steady_clock::now();
  std::vector<CaseStats> stats;
  for (const Case& cs : kCases) {
    CaseStats s;
    s.name = cs.name;
    s.replicas = repeat;
    for (int r = 0; r < repeat; ++r) {
      // Warm-up replica: first run per case pays the page-fault and cache
      // cold cost; it is measured like the rest, the replica spread shows it.
      const std::uint64_t seed =
          root_seed ^ (std::uint64_t{0x517cc1b727220a95u} *
                       static_cast<std::uint64_t>(r + 1));
      const auto t0 = std::chrono::steady_clock::now();
      const CaseResult res = cs.run(seed);
      const double host =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (r == 0) s.sink = res.sink;
      s.events.add(static_cast<double>(res.prof.events_executed));
      s.events_per_sec.add(res.prof.events_per_sec());
      s.scheduled.add(static_cast<double>(res.prof.events_scheduled));
      s.cancelled.add(static_cast<double>(res.prof.events_cancelled));
      s.cb_spills.add(static_cast<double>(res.prof.callback_spills));
      s.cb_spill_bytes.add(static_cast<double>(res.prof.callback_spill_bytes));
      s.slot_high_water.add(static_cast<double>(res.prof.slot_high_water));
      s.compactions.add(static_cast<double>(res.prof.compactions));
      s.windows_global.add(static_cast<double>(res.windows_global));
      s.windows_topology.add(static_cast<double>(res.windows_topology));
      s.windows_skipped.add(static_cast<double>(res.windows_skipped));
      s.barriers_elided.add(static_cast<double>(res.barriers_elided));
      if (!quiet) {
        std::fprintf(stderr, "[microbench] %-12s r%d  %.0f events  %.2fMev/s  %.2fs\n",
                     cs.name, r, static_cast<double>(res.prof.events_executed),
                     res.prof.events_per_sec() / 1e6, host);
      }
    }
    stats.push_back(std::move(s));
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - bench_t0)
          .count();

  std::printf("case          replicas  events/replica  Mev/s (mean±sd)  spills  highwater  compactions  sink\n");
  for (const CaseStats& s : stats) {
    std::printf("%-12s  %8d  %14.0f  %6.2f ± %5.2f  %6.0f  %9.0f  %11.0f  %016llx\n",
                s.name, s.replicas, s.events.mean(),
                s.events_per_sec.mean() / 1e6, s.events_per_sec.stddev() / 1e6,
                s.cb_spills.mean(), s.slot_high_water.mean(),
                s.compactions.mean(),
                static_cast<unsigned long long>(s.sink));
  }
  if (profile) {
    std::printf("engine profile (aggregated over %d replicas per case)\n", repeat);
    for (const CaseStats& s : stats) {
      std::printf(
          "  %-12s scheduled %.0f cancelled %.0f spills %.0f spill-bytes %.0f "
          "high-water %.0f compactions %.0f\n",
          s.name, s.scheduled.mean(), s.cancelled.mean(), s.cb_spills.mean(),
          s.cb_spill_bytes.mean(), s.slot_high_water.mean(),
          s.compactions.mean());
      if (s.windows_global.max() > 0.0) {
        std::printf(
            "  %-12s windows %.0f global / %.0f topology, skipped %.0f, "
            "barriers elided %.0f\n",
            s.name, s.windows_global.mean(), s.windows_topology.mean(),
            s.windows_skipped.mean(), s.barriers_elided.mean());
      }
    }
  }

  const std::string snapshot = to_snapshot_json(stats, wall_seconds);
  if (!json_path.empty()) write_file(json_path, snapshot);
  if (!history_dir.empty()) {
    namespace fs = std::filesystem;
    const fs::path subdir = fs::path(history_dir) / "bench_microbench";
    std::error_code ec;
    fs::create_directories(subdir, ec);
    if (ec) {
      std::fprintf(stderr, "bench_microbench: cannot create %s\n",
                   subdir.string().c_str());
      return 1;
    }
    const std::string tag =
        history_tag.empty() ? core::history_tag_now() : history_tag;
    const fs::path path = subdir / (tag + ".json");
    write_file(path.string(), snapshot);
    if (!quiet) {
      std::fprintf(stderr, "microbench: history snapshot -> %s\n",
                   path.string().c_str());
    }
  }
  return 0;
}
