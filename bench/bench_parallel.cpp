// The partitioned multi-VM scenario on sim::ParallelEngine, and the
// determinism gate that protects it: the exported CSV/JSON artifacts (and
// the committed-order trace chain digest) must be byte-identical for any
// --engine-threads value. CI runs this binary twice — sequential and
// --engine-threads 4 — and cmp's the artifacts.
//
// Usage: bench_parallel [--engine-threads N] [--seed S] [--record-trace]
//                       [--sweep-csv FILE] [--sweep-json FILE] [--quiet]
//                       [--selfcheck] [vms]
//
//   --selfcheck   run the scenario twice in-process (inline vs 4 worker
//                 threads) and fail unless every artifact matches —
//                 the single-binary form of the CI smoke job.
//   vms           partition count (positional, default 4).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/parallel_scenario.hpp"
#include "core/sweep.hpp"
#include "sim/types.hpp"

using namespace paratick;

namespace {

void write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_parallel: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

core::PartitionedScenarioSpec make_spec(int vms, std::uint64_t seed,
                                        unsigned engine_threads,
                                        bool record_trace) {
  core::PartitionedScenarioSpec spec;
  spec.vms = vms;
  spec.seed = seed;
  spec.engine_threads = engine_threads;
  spec.record_trace = record_trace;
  spec.duration = sim::SimTime::ms(20);
  spec.server.workers = 2;
  spec.server.requests_per_worker = 200;
  return spec;
}

int run_selfcheck(int vms, std::uint64_t seed) {
  const core::PartitionedRunResult a =
      core::run_partitioned_scenario(make_spec(vms, seed, 1, true));
  const core::PartitionedRunResult b =
      core::run_partitioned_scenario(make_spec(vms, seed, 4, true));
  bool ok = true;
  if (a.state_digest != b.state_digest) {
    std::fprintf(stderr, "selfcheck: state digest diverged: %016llx vs %016llx\n",
                 static_cast<unsigned long long>(a.state_digest),
                 static_cast<unsigned long long>(b.state_digest));
    ok = false;
  }
  if (a.trace_chain != b.trace_chain || a.trace_events != b.trace_events) {
    std::fprintf(stderr,
                 "selfcheck: committed-order trace diverged: "
                 "%016llx/%llu vs %016llx/%llu\n",
                 static_cast<unsigned long long>(a.trace_chain),
                 static_cast<unsigned long long>(a.trace_events),
                 static_cast<unsigned long long>(b.trace_chain),
                 static_cast<unsigned long long>(b.trace_events));
    ok = false;
  }
  if (a.to_csv() != b.to_csv() || a.to_json() != b.to_json()) {
    std::fprintf(stderr, "selfcheck: exported artifacts diverged\n");
    ok = false;
  }
  if (ok) {
    std::printf(
        "selfcheck OK: %d partitions, %llu events, %llu cross messages, "
        "digest %016llx identical at 1 and 4 engine threads\n",
        vms, static_cast<unsigned long long>(a.profile.events_committed),
        static_cast<unsigned long long>(a.profile.cross_messages),
        static_cast<unsigned long long>(a.state_digest));
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  core::SweepCli cli = core::SweepCli::parse(argc, argv);

  int vms = 4;
  bool selfcheck = false;
  for (const std::string& pos : cli.positional) {
    if (pos == "--selfcheck") {
      selfcheck = true;
    } else {
      vms = static_cast<int>(std::strtol(pos.c_str(), nullptr, 10));
      if (vms < 2) {
        std::fprintf(stderr, "bench_parallel: vms must be >= 2, got %s\n",
                     pos.c_str());
        return 2;
      }
    }
  }
  const std::uint64_t seed = cli.root_seed.value_or(1);

  if (selfcheck) return run_selfcheck(vms, seed);

  const core::PartitionedRunResult res = core::run_partitioned_scenario(
      make_spec(vms, seed, cli.engine_threads, cli.record_trace));

  if (cli.progress) {
    std::fprintf(stderr,
                 "[parallel] %d partitions, %u engine threads: %llu quanta, "
                 "%llu cross messages, %llu events\n",
                 vms, cli.engine_threads,
                 static_cast<unsigned long long>(res.profile.quanta),
                 static_cast<unsigned long long>(res.profile.cross_messages),
                 static_cast<unsigned long long>(res.profile.events_committed));
  }
  std::printf("%s", res.to_csv().c_str());
  std::printf("state_digest,%016llx\n",
              static_cast<unsigned long long>(res.state_digest));
  if (cli.record_trace) {
    std::printf("trace_chain,%016llx,%llu\n",
                static_cast<unsigned long long>(res.trace_chain),
                static_cast<unsigned long long>(res.trace_events));
  }
  if (!cli.sweep_csv.empty()) write_file(cli.sweep_csv, res.to_csv());
  if (!cli.sweep_json.empty()) write_file(cli.sweep_json, res.to_json());
  return 0;
}
