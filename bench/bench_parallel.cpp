// The partitioned multi-VM scenario on sim::ParallelEngine, and the
// determinism gate that protects it: the exported CSV/JSON artifacts (and
// the committed-order trace chain digest) must be byte-identical for any
// --engine-threads value AND any --lookahead-mode. CI runs this binary
// once per (threads, mode) combination and cmp's the artifacts; only the
// window counters printed to stderr may differ between modes.
//
// Usage: bench_parallel [--engine-threads N] [--seed S] [--record-trace]
//                       [--lookahead-mode global|topology]
//                       [--max-horizon-windows N]
//                       [--sweep-csv FILE] [--sweep-json FILE] [--quiet]
//                       [--selfcheck] [vms]
//
//   --selfcheck   run the scenario at (1, 4) engine threads x (global,
//                 topology) lookahead in-process and fail unless every
//                 artifact matches the inline-global reference — the
//                 single-binary form of the CI smoke job.
//   vms           partition count (positional, default 4).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/parallel_scenario.hpp"
#include "core/sweep.hpp"
#include "sim/types.hpp"

using namespace paratick;

namespace {

void write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_parallel: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

core::PartitionedScenarioSpec make_spec(int vms, std::uint64_t seed,
                                        unsigned engine_threads,
                                        bool record_trace,
                                        sim::LookaheadMode mode,
                                        std::uint64_t max_horizon_windows) {
  core::PartitionedScenarioSpec spec;
  spec.vms = vms;
  spec.seed = seed;
  spec.engine_threads = engine_threads;
  spec.record_trace = record_trace;
  spec.lookahead_mode = mode;
  spec.max_horizon_windows = max_horizon_windows;
  spec.duration = sim::SimTime::ms(20);
  spec.server.workers = 2;
  spec.server.requests_per_worker = 200;
  return spec;
}

int run_selfcheck(int vms, std::uint64_t seed,
                  std::uint64_t max_horizon_windows) {
  // Inline + global lookahead is the reference order; every other
  // (threads, mode) combination must reproduce it byte-for-byte.
  const core::PartitionedRunResult ref = core::run_partitioned_scenario(
      make_spec(vms, seed, 1, true, sim::LookaheadMode::kGlobal,
                max_horizon_windows));
  struct Case {
    unsigned threads;
    sim::LookaheadMode mode;
  };
  const Case cases[] = {{4, sim::LookaheadMode::kGlobal},
                        {1, sim::LookaheadMode::kTopology},
                        {4, sim::LookaheadMode::kTopology}};
  bool ok = true;
  std::uint64_t topology_windows = 0;
  for (const Case& c : cases) {
    const core::PartitionedRunResult b = core::run_partitioned_scenario(
        make_spec(vms, seed, c.threads, true, c.mode, max_horizon_windows));
    const char* label = sim::to_string(c.mode);
    if (ref.state_digest != b.state_digest) {
      std::fprintf(stderr,
                   "selfcheck (%u threads, %s): state digest diverged: "
                   "%016llx vs %016llx\n",
                   c.threads, label,
                   static_cast<unsigned long long>(ref.state_digest),
                   static_cast<unsigned long long>(b.state_digest));
      ok = false;
    }
    if (ref.trace_chain != b.trace_chain ||
        ref.trace_events != b.trace_events) {
      std::fprintf(stderr,
                   "selfcheck (%u threads, %s): committed-order trace "
                   "diverged: %016llx/%llu vs %016llx/%llu\n",
                   c.threads, label,
                   static_cast<unsigned long long>(ref.trace_chain),
                   static_cast<unsigned long long>(ref.trace_events),
                   static_cast<unsigned long long>(b.trace_chain),
                   static_cast<unsigned long long>(b.trace_events));
      ok = false;
    }
    if (ref.to_csv() != b.to_csv() || ref.to_json() != b.to_json()) {
      std::fprintf(stderr,
                   "selfcheck (%u threads, %s): exported artifacts diverged\n",
                   c.threads, label);
      ok = false;
    }
    if (c.mode == sim::LookaheadMode::kTopology) {
      topology_windows = b.profile.quanta;
    }
  }
  if (ok) {
    std::printf(
        "selfcheck OK: %d partitions, %llu events, %llu cross messages, "
        "digest %016llx identical at 1 and 4 engine threads in both "
        "lookahead modes (windows: %llu global, %llu topology)\n",
        vms, static_cast<unsigned long long>(ref.profile.events_committed),
        static_cast<unsigned long long>(ref.profile.cross_messages),
        static_cast<unsigned long long>(ref.state_digest),
        static_cast<unsigned long long>(ref.profile.quanta),
        static_cast<unsigned long long>(topology_windows));
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  core::SweepCli cli = core::SweepCli::parse(argc, argv);

  int vms = 4;
  bool selfcheck = false;
  for (const std::string& pos : cli.positional) {
    if (pos == "--selfcheck") {
      selfcheck = true;
    } else {
      vms = static_cast<int>(std::strtol(pos.c_str(), nullptr, 10));
      if (vms < 2) {
        std::fprintf(stderr, "bench_parallel: vms must be >= 2, got %s\n",
                     pos.c_str());
        return 2;
      }
    }
  }
  const std::uint64_t seed = cli.root_seed.value_or(1);

  if (selfcheck) return run_selfcheck(vms, seed, cli.max_horizon_windows);

  const core::PartitionedRunResult res = core::run_partitioned_scenario(
      make_spec(vms, seed, cli.engine_threads, cli.record_trace,
                cli.lookahead_mode, cli.max_horizon_windows));

  if (cli.progress) {
    // Window counters are lookahead-mode-dependent, so they go to stderr
    // only: stdout below must stay byte-identical across modes (CI cmp).
    std::fprintf(stderr,
                 "[parallel] %d partitions, %u engine threads, %s lookahead: "
                 "%llu quanta (%llu skipped, %llu barriers elided), "
                 "%llu cross messages, %llu events\n",
                 vms, cli.engine_threads, sim::to_string(cli.lookahead_mode),
                 static_cast<unsigned long long>(res.profile.quanta),
                 static_cast<unsigned long long>(res.profile.windows_skipped),
                 static_cast<unsigned long long>(res.profile.barriers_elided),
                 static_cast<unsigned long long>(res.profile.cross_messages),
                 static_cast<unsigned long long>(res.profile.events_committed));
  }
  std::printf("%s", res.to_csv().c_str());
  std::printf("state_digest,%016llx\n",
              static_cast<unsigned long long>(res.state_digest));
  if (cli.record_trace) {
    std::printf("trace_chain,%016llx,%llu\n",
                static_cast<unsigned long long>(res.trace_chain),
                static_cast<unsigned long long>(res.trace_events));
  }
  if (!cli.sweep_csv.empty()) write_file(cli.sweep_csv, res.to_csv());
  if (!cli.sweep_json.empty()) write_file(cli.sweep_json, res.to_json());
  return 0;
}
