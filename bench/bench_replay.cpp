// Replay a failure bundle written by a chaos sweep (core/replay.hpp):
// rebuild the sweep config from the bundle's scenario, re-execute the
// recorded run index, and verify the failure reproduces — same kind,
// same failing expression, same simulated timestamp.
//
// Usage: bench_replay <bundle.json> [--quiet]
//
// Exit codes: 0 failure reproduced exactly, 1 replay diverged (the bug
// is schedule-dependent or already fixed), 2 bad bundle / unregistered
// scenario.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "core/replay.hpp"
#include "core/scenarios.hpp"
#include "sim/error.hpp"

using namespace paratick;

int main(int argc, char** argv) {
  const char* path = nullptr;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fputs("usage: bench_replay <bundle.json> [--quiet]\n", stderr);
    return 2;
  }

  core::ReplayBundle bundle;
  try {
    bundle = core::load_replay_bundle(path);
  } catch (const sim::SimError& e) {
    std::fprintf(stderr, "bench_replay: cannot load %s: %s\n", path,
                 e.msg().c_str());
    return 2;
  }
  if (!core::is_chaos_scenario(bundle.scenario)) {
    std::fprintf(stderr,
                 "bench_replay: bundle scenario \"%s\" is not a registered "
                 "chaos scenario; replay it programmatically with "
                 "core::replay_run() and the producing sweep's config\n",
                 bundle.scenario.c_str());
    return 2;
  }

  if (!quiet) {
    std::printf("replaying %s: scenario=%s run=%zu seed=%016llx\n"
                "recorded: %s \"%s\" at sim t=%lldns (event #%llu)\n",
                path, bundle.scenario.c_str(), bundle.run_index,
                static_cast<unsigned long long>(bundle.seed),
                core::RunFailure::kind_name(bundle.failure.kind),
                bundle.failure.expr.c_str(),
                static_cast<long long>(bundle.failure.sim_time_ns),
                static_cast<unsigned long long>(bundle.failure.events_executed));
  }

  core::SweepRun replayed;
  try {
    replayed = core::replay_bundle(bundle);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_replay: replay machinery failed: %s\n", e.what());
    return 2;
  }

  std::string detail;
  const bool ok = core::reproduces(bundle, replayed, &detail);
  std::printf("%s: %s\n", ok ? "REPRODUCED" : "DIVERGED", detail.c_str());
  return ok ? 0 : 1;
}
