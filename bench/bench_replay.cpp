// Replay failure bundles written by a chaos sweep (core/replay.hpp):
// rebuild the sweep config from each bundle's scenario, re-execute the
// recorded run index, and verify the failure reproduces — same kind,
// same failing expression, same simulated timestamp. Crash bundles
// (forked child killed by a signal) are re-executed in a forked child so
// the replayer survives the reproduction.
//
// Usage: bench_replay <bundle.json | failure-dir>... [--quiet]
//
// A directory argument is scanned for bundles in both layouts:
// <dir>/<bench>/run<idx>.json (current) and <dir>/<bench>-run<idx>.json
// (pre-directory layout), so old failure archives stay replayable.
//
// Exit codes: 0 every failure reproduced exactly, 1 at least one replay
// diverged (the bug is schedule-dependent or already fixed), 2 bad
// bundle / unregistered scenario / nothing to replay.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "core/replay.hpp"
#include "core/scenarios.hpp"
#include "sim/error.hpp"

using namespace paratick;

namespace {

// Collect bundle files from an explicit file or a failure directory.
// Directories are walked recursively (covers the per-bench subdirectory
// layout) and flat "<bench>-run<idx>.json" siblings are picked up by the
// same *.json match, in sorted order for deterministic output.
std::vector<std::string> collect_bundles(const std::string& path) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  if (!fs::is_directory(path)) {
    out.push_back(path);
    return out;
  }
  for (const auto& entry : fs::recursive_directory_iterator(path)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// 0 reproduced, 1 diverged, 2 machinery error.
int replay_one(const std::string& path, bool quiet) {
  core::ReplayBundle bundle;
  try {
    bundle = core::load_replay_bundle(path);
  } catch (const sim::SimError& e) {
    std::fprintf(stderr, "bench_replay: cannot load %s: %s\n", path.c_str(),
                 e.msg().c_str());
    return 2;
  }
  if (!core::is_chaos_scenario(bundle.scenario)) {
    std::fprintf(stderr,
                 "bench_replay: bundle %s scenario \"%s\" is not a registered "
                 "chaos scenario; replay it programmatically with "
                 "core::replay_run() and the producing sweep's config\n",
                 path.c_str(), bundle.scenario.c_str());
    return 2;
  }

  if (!quiet) {
    std::printf("replaying %s: scenario=%s run=%zu seed=%016llx\n"
                "recorded: %s \"%s\" at sim t=%lldns (event #%llu)\n",
                path.c_str(), bundle.scenario.c_str(), bundle.run_index,
                static_cast<unsigned long long>(bundle.seed),
                core::RunFailure::kind_name(bundle.failure.kind),
                bundle.failure.expr.c_str(),
                static_cast<long long>(bundle.failure.sim_time_ns),
                static_cast<unsigned long long>(bundle.failure.events_executed));
  }

  core::SweepRun replayed;
  try {
    replayed = core::replay_bundle(bundle);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_replay: replay machinery failed: %s\n", e.what());
    return 2;
  }

  std::string detail;
  const bool ok = core::reproduces(bundle, replayed, &detail);
  std::printf("%s: %s: %s\n", ok ? "REPRODUCED" : "DIVERGED", path.c_str(),
              detail.c_str());
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) {
    std::fputs("usage: bench_replay <bundle.json | failure-dir>... [--quiet]\n",
               stderr);
    return 2;
  }

  std::vector<std::string> bundles;
  for (const std::string& arg : args) {
    const std::vector<std::string> found = collect_bundles(arg);
    if (found.empty()) {
      std::fprintf(stderr, "bench_replay: no bundles under %s\n", arg.c_str());
      return 2;
    }
    bundles.insert(bundles.end(), found.begin(), found.end());
  }

  int worst = 0;
  std::size_t reproduced = 0;
  for (const std::string& path : bundles) {
    const int rc = replay_one(path, quiet);
    if (rc == 0) ++reproduced;
    worst = std::max(worst, rc);
  }
  if (bundles.size() > 1) {
    std::printf("replayed %zu bundles: %zu reproduced, %zu diverged/failed\n",
                bundles.size(), reproduced, bundles.size() - reproduced);
  }
  return worst;
}
