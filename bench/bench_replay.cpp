// Replay failure bundles written by a chaos sweep (core/replay.hpp):
// rebuild the sweep config from each bundle's scenario, re-execute the
// recorded run index, and verify the failure reproduces — same kind,
// same failing expression, same simulated timestamp. Crash bundles
// (forked child killed by a signal) are re-executed in a forked child so
// the replayer survives the reproduction.
//
// When the producing sweep ran with --record-trace, the bundle carries
// an event trace of the failed run and the replay is checked against it
// event-by-event (core/record_replay): a reproduction must match every
// recorded (time, event, state digest) triple, not just the final error.
//
// Usage: bench_replay <bundle.json | failure-dir>... [options]
//   --quiet           suppress per-bundle detail
//   --bisect          on a trace mismatch, binary-search chain-digest
//                     prefixes to pin the exact first divergent event
//   --trace P         use trace file P instead of the bundle's own
//                     (single bundle only)
//   --fault-<knob> X  override one fault rate before replaying — the
//                     canonical way to force a divergence on purpose and
//                     watch --bisect find where behavior first changed
//
// A directory argument is scanned for bundles in both layouts:
// <dir>/<bench>/run<idx>.json (current) and <dir>/<bench>-run<idx>.json
// (pre-directory layout), so old failure archives stay replayable.
//
// Exit codes: 0 every failure reproduced exactly (and every checked
// trace matched, unless --bisect was asked to explain a divergence),
// 1 at least one replay diverged, 2 bad bundle / unregistered scenario /
// nothing to replay.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/record_replay/bisect.hpp"
#include "core/record_replay/trace.hpp"
#include "core/replay.hpp"
#include "core/scenarios.hpp"
#include "sim/error.hpp"

using namespace paratick;
namespace rr = paratick::core::record_replay;

namespace {

struct Options {
  bool quiet = false;
  bool bisect = false;
  std::string trace_override;
  std::vector<std::pair<std::string, double>> fault_overrides;
  std::vector<std::string> paths;
};

// Collect bundle files from an explicit file or a failure directory.
// Directories are walked recursively (covers the per-bench subdirectory
// layout) and flat "<bench>-run<idx>.json" siblings are picked up by the
// same *.json match, in sorted order for deterministic output.
std::vector<std::string> collect_bundles(const std::string& path) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  if (!fs::is_directory(path)) {
    out.push_back(path);
    return out;
  }
  for (const auto& entry : fs::recursive_directory_iterator(path)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// The trace path recorded in a bundle is relative to the sweep's CWD;
// when that does not resolve, fall back to the trace's canonical spot
// next to the bundle itself (<bundle_dir>/run<idx>.trace).
std::string resolve_trace_path(const std::string& bundle_path,
                               const core::ReplayBundle& bundle) {
  namespace fs = std::filesystem;
  if (fs::exists(bundle.trace_path)) return bundle.trace_path;
  const fs::path sibling =
      fs::path(bundle_path).parent_path() /
      ("run" + std::to_string(bundle.run_index) + ".trace");
  if (fs::exists(sibling)) return sibling.string();
  return bundle.trace_path;  // let the loader report the original path
}

void print_divergence(const rr::Divergence& d) {
  std::printf("FIRST DIVERGENCE at event #%llu: %s\n",
              static_cast<unsigned long long>(d.index), d.describe().c_str());
}

// 0 reproduced, 1 diverged, 2 machinery error.
int replay_one(const std::string& path, const Options& opt) {
  core::ReplayBundle bundle;
  try {
    bundle = core::load_replay_bundle(path);
  } catch (const sim::SimError& e) {
    std::fprintf(stderr, "bench_replay: cannot load %s: %s\n", path.c_str(),
                 e.msg().c_str());
    return 2;
  }
  if (!core::is_chaos_scenario(bundle.scenario)) {
    std::fprintf(stderr,
                 "bench_replay: bundle %s scenario \"%s\" is not a registered "
                 "chaos scenario; replay it programmatically with "
                 "core::replay_run() and the producing sweep's config\n",
                 path.c_str(), bundle.scenario.c_str());
    return 2;
  }
  // Fault overrides mutate the bundle's own fault identity (replay_run
  // re-applies it over the scenario config): the replay then legitimately
  // diverges wherever behavior first changed, which is the --bisect demo.
  for (const auto& [knob, value] : opt.fault_overrides) {
    core::set_fault_knob(bundle.fault, knob, value);
  }

  if (!opt.quiet) {
    std::printf("replaying %s: scenario=%s run=%zu seed=%016llx\n"
                "recorded: %s \"%s\" at sim t=%lldns (event #%llu)\n",
                path.c_str(), bundle.scenario.c_str(), bundle.run_index,
                static_cast<unsigned long long>(bundle.seed),
                core::RunFailure::kind_name(bundle.failure.kind),
                bundle.failure.expr.c_str(),
                static_cast<long long>(bundle.failure.sim_time_ns),
                static_cast<unsigned long long>(bundle.failure.events_executed));
  }

  const std::string trace_path =
      !opt.trace_override.empty() ? opt.trace_override
                                  : bundle.trace_path.empty()
                                        ? std::string{}
                                        : resolve_trace_path(path, bundle);

  // No trace (pre-trace bundle, or a crash that died before writing one):
  // plain disposition replay, as before.
  if (trace_path.empty()) {
    if (opt.bisect) {
      std::fprintf(stderr,
                   "bench_replay: %s carries no event trace; re-run the sweep "
                   "with --record-trace to enable --bisect\n",
                   path.c_str());
      return 2;
    }
    core::SweepRun replayed;
    try {
      replayed = core::replay_bundle(bundle);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_replay: replay machinery failed: %s\n",
                   e.what());
      return 2;
    }
    std::string detail;
    const bool ok = core::reproduces(bundle, replayed, &detail);
    std::printf("%s: %s: %s\n", ok ? "REPRODUCED" : "DIVERGED", path.c_str(),
                detail.c_str());
    return ok ? 0 : 1;
  }

  rr::EventTrace trace;
  try {
    trace = rr::load_trace_file(trace_path);
  } catch (const sim::SimError& e) {
    std::fprintf(stderr, "bench_replay: cannot load trace %s: %s\n",
                 trace_path.c_str(), e.msg().c_str());
    return 2;
  }

  try {
    const core::SweepConfig cfg = core::build_chaos_scenario(bundle.scenario);
    if (opt.bisect) {
      const rr::BisectReport rep =
          rr::bisect_divergence(cfg, bundle, trace, !opt.quiet);
      if (!rep.diverged) {
        std::printf("NO DIVERGENCE: %s: %s\n", path.c_str(), rep.note.c_str());
        std::string detail;
        const bool ok = core::reproduces(bundle, rep.run, &detail);
        std::printf("%s: %s: %s\n", ok ? "REPRODUCED" : "DIVERGED",
                    path.c_str(), detail.c_str());
        return ok ? 0 : 1;
      }
      print_divergence(*rep.first);
      std::printf("bisect: %s (%llu recorded events)\n", rep.note.c_str(),
                  static_cast<unsigned long long>(rep.recorded_events));
      // --bisect exists to explain a divergence; finding one is success.
      return 0;
    }

    const rr::ReplayCheckResult checked = rr::check_replay(cfg, bundle, trace);
    if (checked.divergence) {
      std::printf("DIVERGED: %s: replay stopped matching its trace\n",
                  path.c_str());
      print_divergence(*checked.divergence);
      std::printf("(run bench_replay --bisect on this bundle to cross-check "
                  "with a chain-digest binary search)\n");
      return 1;
    }
    std::string detail;
    const bool ok = core::reproduces(bundle, checked.run, &detail);
    std::printf("%s: %s: %s (trace verified: %llu events match)\n",
                ok ? "REPRODUCED" : "DIVERGED", path.c_str(), detail.c_str(),
                static_cast<unsigned long long>(checked.events_checked));
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_replay: replay machinery failed: %s\n",
                 e.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--quiet") == 0) {
      opt.quiet = true;
    } else if (std::strcmp(arg, "--bisect") == 0) {
      opt.bisect = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      opt.trace_override = need_value("--trace");
    } else if (std::strncmp(arg, "--fault-", 8) == 0) {
      const std::string knob = arg + 8;
      bool known = false;
      for (const char* k : core::fault_knob_names()) {
        if (knob == k) {
          known = true;
          break;
        }
      }
      if (!known) {
        std::fprintf(stderr, "unknown fault knob --fault-%s\n", knob.c_str());
        return 2;
      }
      const char* value = need_value(arg);
      char* end = nullptr;
      const double v = std::strtod(value, &end);
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "--fault-%s: not a valid number: \"%s\"\n",
                     knob.c_str(), value);
        return 2;
      }
      opt.fault_overrides.emplace_back(knob, v);
    } else {
      opt.paths.emplace_back(arg);
    }
  }
  if (opt.paths.empty()) {
    std::fputs(
        "usage: bench_replay <bundle.json | failure-dir>... "
        "[--quiet] [--bisect] [--trace file] [--fault-<knob> value]\n",
        stderr);
    return 2;
  }

  std::vector<std::string> bundles;
  for (const std::string& arg : opt.paths) {
    const std::vector<std::string> found = collect_bundles(arg);
    if (found.empty()) {
      std::fprintf(stderr, "bench_replay: no bundles under %s\n", arg.c_str());
      return 2;
    }
    bundles.insert(bundles.end(), found.begin(), found.end());
  }
  if (!opt.trace_override.empty() && bundles.size() != 1) {
    std::fprintf(stderr,
                 "--trace overrides the trace of exactly one bundle; got %zu\n",
                 bundles.size());
    return 2;
  }

  int worst = 0;
  std::size_t reproduced = 0;
  for (const std::string& path : bundles) {
    const int rc = replay_one(path, opt);
    if (rc == 0) ++reproduced;
    worst = std::max(worst, rc);
  }
  if (bundles.size() > 1) {
    std::printf("replayed %zu bundles: %zu reproduced, %zu diverged/failed\n",
                bundles.size(), reproduced, bundles.size() - reproduced);
  }
  return worst;
}
