// google-benchmark micro-benchmarks of the simulator substrate: event
// queue, deadline timers, timer wheel, hrtimer queue, RNG, and a
// whole-system events-per-second figure. These guard the simulator's own
// performance (a slow DES would make the large-VM sweeps impractical).
#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "guest/hrtimer.hpp"
#include "guest/timer_wheel.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto batch = static_cast<std::int64_t>(state.range(0));
  sim::EventQueue q;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (std::int64_t i = 0; i < batch; ++i) {
      q.schedule(sim::SimTime::ns(t + (i * 7919) % 1000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().when);
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueueCancel(benchmark::State& state) {
  sim::EventQueue q;
  for (auto _ : state) {
    auto id = q.schedule(sim::SimTime::ns(100), [] {});
    benchmark::DoNotOptimize(q.cancel(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueCancel);

void BM_TimerWheelAddAdvance(benchmark::State& state) {
  const auto horizon = static_cast<std::uint64_t>(state.range(0));
  guest::TimerWheel wheel;
  std::uint64_t now = 0;
  sim::Rng rng(7);
  for (auto _ : state) {
    for (int i = 0; i < 32; ++i) {
      wheel.add(now + 1 + static_cast<std::uint64_t>(
                              rng.uniform_int(0, static_cast<std::int64_t>(horizon))),
                [] {});
    }
    now += horizon / 2 + 1;
    wheel.advance(now);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_TimerWheelAddAdvance)->Arg(63)->Arg(4095)->Arg(262143);

void BM_HrtimerQueue(benchmark::State& state) {
  guest::HrtimerQueue q;
  sim::Rng rng(9);
  std::int64_t now = 0;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      q.add(sim::SimTime::ns(now + rng.uniform_int(1, 100000)), [] {});
    }
    now += 60000;
    q.expire(sim::SimTime::ns(now));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_HrtimerQueue);

void BM_RngDraw(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.exponential(1000.0));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngDraw);

void BM_FullSystemEventsPerSec(benchmark::State& state) {
  for (auto _ : state) {
    core::ExperimentSpec exp;
    exp.machine = hw::MachineSpec::small(4);
    exp.vcpus = 4;
    exp.attach_disk = true;
    exp.setup = [](guest::GuestKernel& k) {
      workload::install_parsec(k, workload::parsec_profile("streamcluster"), 4);
    };
    const metrics::RunResult r = core::run_mode(exp, guest::TickMode::kDynticksIdle);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(r.events_executed));
  }
}
BENCHMARK(BM_FullSystemEventsPerSec)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
