// Reproduces paper Table 1 (§3.3): timer-related VM exits induced by
// classic periodic ticks vs tickless kernels for four workloads:
//   W1: an idle VM with 16 vCPUs
//   W2: 4 idle VMs with 16 vCPUs each
//   W3: 16 threads synchronizing 1000x/s (blocking sync), one 16-vCPU VM
//   W4: 4 concurrent copies of W3
// 10 seconds on a 16-pCPU host, 250 Hz ticks.
//
// Three result sets are printed:
//   published     — the paper's Table 1 cells,
//   reconstructed — our closed-form §3.1/§3.2 evaluation (see
//                   EXPERIMENTS.md for the factor-of-two discussion),
//   simulated     — full-system simulation, also including paratick.
#include <cstdio>

#include "core/analytic.hpp"
#include "core/system.hpp"
#include "metrics/report.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

struct Scenario {
  const char* name;
  int vm_copies;
  bool sync_storm;  // false = idle VM
};

constexpr Scenario kScenarios[] = {
    {"W1", 1, false},
    {"W2", 4, false},
    {"W3", 1, true},
    {"W4", 4, true},
};

constexpr int kVcpusPerVm = 16;
constexpr int kPhysCpus = 16;
const sim::SimTime kDuration = sim::SimTime::sec(10);

std::uint64_t simulate(const Scenario& sc, guest::TickMode mode) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(kPhysCpus);
  spec.host.sched_mode =
      sc.vm_copies * kVcpusPerVm > kPhysCpus ? hv::SchedMode::kShared
                                             : hv::SchedMode::kPinned;
  spec.max_duration = kDuration;
  spec.stop_when_done = false;  // fixed 10 s window, like the paper's table

  for (int i = 0; i < sc.vm_copies; ++i) {
    core::VmSpec vm;
    vm.vcpus = kVcpusPerVm;
    vm.guest.tick_mode = mode;
    vm.guest.seed = 1234 + static_cast<std::uint64_t>(i);
    if (sc.sync_storm) {
      vm.setup = [](guest::GuestKernel& k) {
        workload::SyncStormSpec storm;
        storm.threads = kVcpusPerVm;
        // "Synchronizing 1000x/s" in the paper's §3.3 reconstruction means
        // 1000 idle transitions per second for the whole workload; a
        // 16-party barrier produces (threads-1) blocked waiters per episode.
        storm.sync_rate_hz = 1000.0 / (kVcpusPerVm - 1);
        storm.duration = kDuration;
        storm.load = 0.5;
        workload::install_sync_storm(k, storm);
      };
    }
    spec.vms.push_back(std::move(vm));
  }

  core::System system(std::move(spec));
  const metrics::RunResult r = system.run();
  return r.exits_timer_related;
}

}  // namespace

int main() {
  std::printf("==== Table 1: timer-related VM exits, 10 s, 16 pCPUs, 250 Hz ====\n\n");

  const auto published = core::table1_published();
  const auto reconstructed = core::table1_reconstructed();

  metrics::Table t({"workload", "periodic (paper)", "periodic (formula)",
                    "periodic (sim)", "tickless (paper)", "tickless (formula)",
                    "tickless (sim)", "paratick (sim)"});

  for (std::size_t i = 0; i < std::size(kScenarios); ++i) {
    const Scenario& sc = kScenarios[i];
    const std::uint64_t sim_periodic = simulate(sc, guest::TickMode::kPeriodic);
    const std::uint64_t sim_tickless = simulate(sc, guest::TickMode::kDynticksIdle);
    const std::uint64_t sim_paratick = simulate(sc, guest::TickMode::kParatick);
    t.add_row({sc.name, metrics::format("%llu", (unsigned long long)published[i].periodic),
               metrics::format("%llu", (unsigned long long)reconstructed[i].periodic),
               metrics::format("%llu", (unsigned long long)sim_periodic),
               metrics::format("%llu", (unsigned long long)published[i].tickless),
               metrics::format("%llu", (unsigned long long)reconstructed[i].tickless),
               metrics::format("%llu", (unsigned long long)sim_tickless),
               metrics::format("%llu", (unsigned long long)sim_paratick)});
    std::fflush(stdout);
  }
  t.print();

  const auto crossover =
      core::crossover_idle_period(sim::Frequency{250.0}, 1.0);
  std::printf(
      "\n§3.3 crossover: with 250 Hz ticks and one vCPU per pCPU, tickless beats\n"
      "periodic while the average idle period exceeds %.2f ms.\n",
      crossover.milliseconds());
  return 0;
}
