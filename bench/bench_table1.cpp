// Reproduces paper Table 1 (§3.3): timer-related VM exits induced by
// classic periodic ticks vs tickless kernels for four workloads:
//   W1: an idle VM with 16 vCPUs
//   W2: 4 idle VMs with 16 vCPUs each
//   W3: 16 threads synchronizing 1000x/s (blocking sync), one 16-vCPU VM
//   W4: 4 concurrent copies of W3
// 10 seconds on a 16-pCPU host, 250 Hz ticks.
//
// Three result sets are printed:
//   published     — the paper's Table 1 cells,
//   reconstructed — our closed-form §3.1/§3.2 evaluation (see
//                   EXPERIMENTS.md for the factor-of-two discussion),
//   simulated     — full-system simulation, also including paratick.
//
// The 12 simulations (4 workloads x 3 tick modes) run on the deterministic
// parallel sweep runner; see SweepCli in core/sweep.hpp for the flags
// (-j N, --repeat N, --seed S, --sweep-csv/--sweep-json, --quiet).
#include <cstdio>

#include "core/analytic.hpp"
#include "core/sweep.hpp"
#include "metrics/report.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

struct Scenario {
  const char* name;
  int vm_copies;
  bool sync_storm;  // false = idle VM
};

constexpr Scenario kScenarios[] = {
    {"W1", 1, false},
    {"W2", 4, false},
    {"W3", 1, true},
    {"W4", 4, true},
};

constexpr int kVcpusPerVm = 16;
constexpr int kPhysCpus = 16;
const sim::SimTime kDuration = sim::SimTime::sec(10);

core::SweepConfig make_sweep() {
  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(kPhysCpus);
  cfg.base.vcpus = kVcpusPerVm;
  cfg.base.max_duration = kDuration;
  cfg.base.stop_when_done = false;  // fixed 10 s window, like the paper's table
  cfg.modes = {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
               guest::TickMode::kParatick};
  cfg.root_seed = 1234;

  for (const Scenario& sc : kScenarios) {
    cfg.variants.push_back({sc.name, [&sc](core::ExperimentSpec& exp) {
      exp.scenario.vm_copies = sc.vm_copies;
      if (sc.sync_storm) {
        exp.setup = [](guest::GuestKernel& k) {
          workload::SyncStormSpec storm;
          storm.threads = kVcpusPerVm;
          // "Synchronizing 1000x/s" in the paper's §3.3 reconstruction means
          // 1000 idle transitions per second for the whole workload; a
          // 16-party barrier produces (threads-1) blocked waiters per episode.
          storm.sync_rate_hz = 1000.0 / (kVcpusPerVm - 1);
          storm.duration = kDuration;
          storm.load = 0.5;
          workload::install_sync_storm(k, storm);
        };
      }
    }});
  }
  return cfg;
}

std::uint64_t timer_exits(const core::SweepResult& res, const char* scenario,
                          guest::TickMode mode) {
  const core::SweepCellSummary* cell = res.find(scenario, mode);
  return cell ? static_cast<std::uint64_t>(cell->exits_timer.mean() + 0.5) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);
  core::SweepConfig cfg = make_sweep();
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "bench_table1");

  if (!cli.csv) {
    std::printf("==== Table 1: timer-related VM exits, 10 s, 16 pCPUs, 250 Hz ====\n");
    std::printf("(%zu runs, %.2fs wall on %u threads)\n\n", res.runs.size(),
                res.wall_seconds, res.threads_used);
  }

  const auto published = core::table1_published();
  const auto reconstructed = core::table1_reconstructed();

  metrics::Table t({"workload", "periodic (paper)", "periodic (formula)",
                    "periodic (sim)", "tickless (paper)", "tickless (formula)",
                    "tickless (sim)", "paratick (sim)"});

  for (std::size_t i = 0; i < std::size(kScenarios); ++i) {
    const Scenario& sc = kScenarios[i];
    t.add_row({sc.name, metrics::format("%llu", (unsigned long long)published[i].periodic),
               metrics::format("%llu", (unsigned long long)reconstructed[i].periodic),
               metrics::format("%llu", (unsigned long long)timer_exits(
                                           res, sc.name, guest::TickMode::kPeriodic)),
               metrics::format("%llu", (unsigned long long)published[i].tickless),
               metrics::format("%llu", (unsigned long long)reconstructed[i].tickless),
               metrics::format("%llu", (unsigned long long)timer_exits(
                                           res, sc.name, guest::TickMode::kDynticksIdle)),
               metrics::format("%llu", (unsigned long long)timer_exits(
                                           res, sc.name, guest::TickMode::kParatick))});
  }
  if (cli.csv) {
    std::fputs(t.to_csv().c_str(), stdout);
    return 0;
  }
  t.print();

  const auto crossover =
      core::crossover_idle_period(sim::Frequency{250.0}, 1.0);
  std::printf(
      "\n§3.3 crossover: with 250 Hz ticks and one vCPU per pCPU, tickless beats\n"
      "periodic while the average idle period exceeds %.2f ms.\n",
      crossover.milliseconds());
  return 0;
}
