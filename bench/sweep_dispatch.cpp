// Standalone dispatcher for distributed sweeps: drive any SweepCli bench
// binary through the fault-tolerant dispatcher (core/dispatch) without
// the bench opting in.
//
//   sweep_dispatch [dispatch/export flags] -- <bench command line...>
//
//   sweep_dispatch --workers 3 --sweep-csv table1.csv
//       -- ./bench/bench_table1 --repeat 4 --seed 7
//
//   sweep_dispatch --workers 4 --dispatch-cmd 'ssh -T node{cmd}' ...
//
// Everything left of `--` configures the dispatcher and the exports;
// everything right of it is the worker command, relaunched with the
// hidden --worker-plan / --worker-slice flags appended. The grid itself
// lives inside the bench binary (variants are C++ closures), so the plan
// is probed once via --worker-plan and every worker's #plan header is
// validated against it — fleet hosts running a skewed binary or flags are
// rejected before any record merges.
//
// Exit codes: 0 when the sweep completes (including with degraded cells —
// exhausting --max-retries is graceful degradation, not failure), 1 on
// coordinator faults (broken worker command, plan skew), 2 on bad usage.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/dispatch/dispatch.hpp"
#include "core/sweep.hpp"
#include "sim/error.hpp"

using namespace paratick;

int main(int argc, char** argv) {
  int split = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") == 0) {
      split = i;
      break;
    }
  }
  if (split < 0 || split + 1 >= argc) {
    std::fputs(
        "usage: sweep_dispatch [--workers N] [--max-retries N] [--no-steal]\n"
        "           [--lease S] [--retry-backoff S] [--checkpoint P]\n"
        "           [--dispatch-cmd 'ssh -T host {cmd}'] [--failure-dir D]\n"
        "           [--sweep-csv P] [--sweep-json P] [--csv]\n"
        "           -- <bench command line...>\n"
        "       runs the bench's sweep through the fault-tolerant dispatcher\n",
        stderr);
    return 2;
  }

  const core::SweepCli cli = core::SweepCli::parse(split, argv);
  std::vector<std::string> worker_cmd(argv + split + 1, argv + argc);

  try {
    auto transport = std::make_unique<core::dispatch::CommandWorkerTransport>(
        worker_cmd, cli.dispatch_cmd);
    // Probe the plan up front so a broken command fails before any worker
    // fleet spins up.
    const core::dispatch::PlanInfo plan = transport->plan();

    core::dispatch::DispatchOptions opts;
    opts.workers = cli.dispatch_workers;
    opts.max_retries = cli.max_retries;
    opts.steal = cli.steal;
    opts.lease_sec = cli.lease_sec;
    opts.retry_backoff_sec = cli.retry_backoff_sec;
    opts.checkpoint_path =
        core::resolve_output_path(cli.output_dir, cli.checkpoint_path);
    opts.bench_name = plan.bench;
    opts.progress = cli.progress;
    opts.test_kill_after = cli.dispatch_test_kill;

    core::dispatch::SweepDispatcher dispatcher(std::move(transport), opts);
    const core::SweepResult res = dispatcher.run();
    const auto& st = dispatcher.stats();

    if (cli.csv) {
      std::fputs(res.to_csv().c_str(), stdout);
    } else {
      std::printf(
          "dispatched %zu runs over %zu workers in %.2fs: %zu ok, %zu "
          "failed, %zu cells degraded\n",
          res.runs.size(), st.workers_launched, res.wall_seconds,
          res.ok_run_count(), res.failed_runs().size(),
          res.degraded_cell_count());
      if (st.workers_died + st.leases_expired + st.steals + st.retries > 0) {
        std::printf(
            "  fault log: %zu worker deaths, %zu expired leases, %zu "
            "steals, %zu retries, %zu duplicate records, %zu runs "
            "degraded, %zu resumed from checkpoint\n",
            st.workers_died, st.leases_expired, st.steals, st.retries,
            st.duplicate_records, st.runs_degraded, st.runs_resumed);
      }
    }
    cli.export_results(
        res, plan.bench.empty() ? std::string{"sweep_dispatch"} : plan.bench);
  } catch (const sim::SimError& e) {
    std::fprintf(stderr, "sweep_dispatch: %s\n", e.msg().c_str());
    return 1;
  }
  return 0;
}
