// Merge tool for sharded sweeps: fold the partial snapshots written by
// `--shard K/N --partial <file>` runs (possibly on different hosts) into
// the full sweep result.
//
//   sweep_merge shard0.json shard1.json ... [--sweep-csv P] [--sweep-json P]
//              [--history-dir D] [--csv] [--skip-corrupt]
//
// The merge validates that all partials belong to one sweep (same root
// seed, repeat, grid) and together cover every run exactly once, then
// aggregates through the same code path a single-host run uses — the
// merged CSV/JSON is byte-identical to running the whole sweep in one
// process (asserted by test_sweep and the shard-merge-smoke CI job).
//
// A corrupt or truncated partial fails the merge with the offending file
// path and the byte offset where parsing stopped. With --skip-corrupt the
// bad file is dropped instead: its runs become kCrash records and their
// cells degrade, so one lost shard costs its replicas, not the fleet's
// night of results.
//
// Unlike the benches' own --merge flag, this tool needs no grid flags: the
// partials carry the full cell table themselves.
#include <cstdio>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "core/sweep_shard.hpp"
#include "sim/error.hpp"

using namespace paratick;

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);
  if (cli.positional.empty() && cli.merge_paths.empty()) {
    std::fputs(
        "usage: sweep_merge <partial.json>... [--sweep-csv P] [--sweep-json P]\n"
        "       [--skip-corrupt]\n"
        "       merges the partial snapshots written by --shard K/N --partial\n",
        stderr);
    return 2;
  }

  std::vector<std::string> paths = cli.positional;
  paths.insert(paths.end(), cli.merge_paths.begin(), cli.merge_paths.end());

  try {
    std::vector<core::PartialSnapshot> partials;
    partials.reserve(paths.size());
    std::size_t dropped = 0;
    for (const std::string& path : paths) {
      if (!cli.skip_corrupt) {
        partials.push_back(core::load_partial_snapshot(path));
        continue;
      }
      try {
        partials.push_back(core::load_partial_snapshot(path));
      } catch (const sim::SimError& e) {
        // The message names the file and the byte offset where parsing
        // stopped; keep merging without it.
        std::fprintf(stderr, "sweep_merge: --skip-corrupt: dropping %s\n",
                     e.msg().c_str());
        ++dropped;
      }
    }
    if (partials.empty()) {
      std::fprintf(stderr,
                   "sweep_merge: all %zu partial snapshots were dropped as "
                   "corrupt — nothing to merge\n",
                   dropped);
      return 1;
    }
    const core::SweepResult res =
        core::merge_partial_snapshots(partials, cli.skip_corrupt);

    if (cli.csv) {
      std::fputs(res.to_csv().c_str(), stdout);
    } else {
      std::printf("merged %zu partial%s: %zu cells, %zu runs (%zu ok, %zu failed)\n",
                  partials.size(), partials.size() == 1 ? "" : "s",
                  res.cells.size(), res.runs.size(), res.ok_run_count(),
                  res.failed_runs().size());
      if (dropped > 0) {
        std::printf("dropped %zu corrupt partial%s; %zu cell%s degraded\n",
                    dropped, dropped == 1 ? "" : "s",
                    res.degraded_cell_count(),
                    res.degraded_cell_count() == 1 ? "" : "s");
      }
    }
    cli.export_results(res, partials.front().bench.empty()
                                ? std::string{"sweep_merge"}
                                : partials.front().bench);
  } catch (const sim::SimError& e) {
    std::fprintf(stderr, "sweep_merge: %s\n", e.msg().c_str());
    return 1;
  }
  return 0;
}
