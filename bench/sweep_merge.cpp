// Merge tool for sharded sweeps: fold the partial snapshots written by
// `--shard K/N --partial <file>` runs (possibly on different hosts) into
// the full sweep result.
//
//   sweep_merge shard0.json shard1.json ... [--sweep-csv P] [--sweep-json P]
//              [--history-dir D] [--csv]
//
// The merge validates that all partials belong to one sweep (same root
// seed, repeat, grid) and together cover every run exactly once, then
// aggregates through the same code path a single-host run uses — the
// merged CSV/JSON is byte-identical to running the whole sweep in one
// process (asserted by test_sweep and the shard-merge-smoke CI job).
//
// Unlike the benches' own --merge flag, this tool needs no grid flags: the
// partials carry the full cell table themselves.
#include <cstdio>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "core/sweep_shard.hpp"
#include "sim/error.hpp"

using namespace paratick;

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);
  if (cli.positional.empty() && cli.merge_paths.empty()) {
    std::fputs(
        "usage: sweep_merge <partial.json>... [--sweep-csv P] [--sweep-json P]\n"
        "       merges the partial snapshots written by --shard K/N --partial\n",
        stderr);
    return 2;
  }

  std::vector<std::string> paths = cli.positional;
  paths.insert(paths.end(), cli.merge_paths.begin(), cli.merge_paths.end());

  try {
    std::vector<core::PartialSnapshot> partials;
    partials.reserve(paths.size());
    for (const std::string& path : paths) {
      partials.push_back(core::load_partial_snapshot(path));
    }
    const core::SweepResult res = core::merge_partial_snapshots(partials);

    if (cli.csv) {
      std::fputs(res.to_csv().c_str(), stdout);
    } else {
      std::printf("merged %zu partial%s: %zu cells, %zu runs (%zu ok, %zu failed)\n",
                  partials.size(), partials.size() == 1 ? "" : "s",
                  res.cells.size(), res.runs.size(), res.ok_run_count(),
                  res.failed_runs().size());
    }
    cli.export_results(res, partials.front().bench.empty()
                                ? std::string{"sweep_merge"}
                                : partials.front().bench);
  } catch (const sim::SimError& e) {
    std::fprintf(stderr, "sweep_merge: %s\n", e.msg().c_str());
    return 1;
  }
  return 0;
}
