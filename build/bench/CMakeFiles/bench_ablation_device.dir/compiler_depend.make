# Empty compiler generated dependencies file for bench_ablation_device.
# This may be replaced when dependencies are built.
