file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_latency_tail.dir/bench_ablation_latency_tail.cpp.o"
  "CMakeFiles/bench_ablation_latency_tail.dir/bench_ablation_latency_tail.cpp.o.d"
  "bench_ablation_latency_tail"
  "bench_ablation_latency_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_latency_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
