file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nohzfull.dir/bench_ablation_nohzfull.cpp.o"
  "CMakeFiles/bench_ablation_nohzfull.dir/bench_ablation_nohzfull.cpp.o.d"
  "bench_ablation_nohzfull"
  "bench_ablation_nohzfull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nohzfull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
