# Empty compiler generated dependencies file for bench_ablation_nohzfull.
# This may be replaced when dependencies are built.
