file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_overcommit.dir/bench_ablation_overcommit.cpp.o"
  "CMakeFiles/bench_ablation_overcommit.dir/bench_ablation_overcommit.cpp.o.d"
  "bench_ablation_overcommit"
  "bench_ablation_overcommit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overcommit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
