# Empty compiler generated dependencies file for bench_ablation_overcommit.
# This may be replaced when dependencies are built.
