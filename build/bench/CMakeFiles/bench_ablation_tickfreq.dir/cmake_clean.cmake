file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tickfreq.dir/bench_ablation_tickfreq.cpp.o"
  "CMakeFiles/bench_ablation_tickfreq.dir/bench_ablation_tickfreq.cpp.o.d"
  "bench_ablation_tickfreq"
  "bench_ablation_tickfreq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tickfreq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
