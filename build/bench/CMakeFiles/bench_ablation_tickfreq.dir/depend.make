# Empty dependencies file for bench_ablation_tickfreq.
# This may be replaced when dependencies are built.
