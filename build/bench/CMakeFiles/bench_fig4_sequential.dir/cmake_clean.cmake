file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sequential.dir/bench_fig4_sequential.cpp.o"
  "CMakeFiles/bench_fig4_sequential.dir/bench_fig4_sequential.cpp.o.d"
  "bench_fig4_sequential"
  "bench_fig4_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
