file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_multithreaded.dir/bench_fig5_multithreaded.cpp.o"
  "CMakeFiles/bench_fig5_multithreaded.dir/bench_fig5_multithreaded.cpp.o.d"
  "bench_fig5_multithreaded"
  "bench_fig5_multithreaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_multithreaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
