# Empty dependencies file for bench_fig5_multithreaded.
# This may be replaced when dependencies are built.
