file(REMOVE_RECURSE
  "CMakeFiles/exit_breakdown.dir/exit_breakdown.cpp.o"
  "CMakeFiles/exit_breakdown.dir/exit_breakdown.cpp.o.d"
  "exit_breakdown"
  "exit_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exit_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
