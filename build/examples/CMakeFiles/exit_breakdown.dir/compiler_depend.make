# Empty compiler generated dependencies file for exit_breakdown.
# This may be replaced when dependencies are built.
