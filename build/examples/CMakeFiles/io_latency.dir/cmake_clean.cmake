file(REMOVE_RECURSE
  "CMakeFiles/io_latency.dir/io_latency.cpp.o"
  "CMakeFiles/io_latency.dir/io_latency.cpp.o.d"
  "io_latency"
  "io_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
