# Empty compiler generated dependencies file for io_latency.
# This may be replaced when dependencies are built.
