file(REMOVE_RECURSE
  "CMakeFiles/tick_freq_mismatch.dir/tick_freq_mismatch.cpp.o"
  "CMakeFiles/tick_freq_mismatch.dir/tick_freq_mismatch.cpp.o.d"
  "tick_freq_mismatch"
  "tick_freq_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tick_freq_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
