# Empty dependencies file for tick_freq_mismatch.
# This may be replaced when dependencies are built.
