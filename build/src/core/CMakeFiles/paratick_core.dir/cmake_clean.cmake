file(REMOVE_RECURSE
  "CMakeFiles/paratick_core.dir/analytic.cpp.o"
  "CMakeFiles/paratick_core.dir/analytic.cpp.o.d"
  "CMakeFiles/paratick_core.dir/experiment.cpp.o"
  "CMakeFiles/paratick_core.dir/experiment.cpp.o.d"
  "CMakeFiles/paratick_core.dir/system.cpp.o"
  "CMakeFiles/paratick_core.dir/system.cpp.o.d"
  "libparatick_core.a"
  "libparatick_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paratick_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
