file(REMOVE_RECURSE
  "libparatick_core.a"
)
