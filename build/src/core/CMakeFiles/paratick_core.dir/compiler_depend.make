# Empty compiler generated dependencies file for paratick_core.
# This may be replaced when dependencies are built.
