
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/hrtimer.cpp" "src/guest/CMakeFiles/paratick_guest.dir/hrtimer.cpp.o" "gcc" "src/guest/CMakeFiles/paratick_guest.dir/hrtimer.cpp.o.d"
  "/root/repo/src/guest/kernel.cpp" "src/guest/CMakeFiles/paratick_guest.dir/kernel.cpp.o" "gcc" "src/guest/CMakeFiles/paratick_guest.dir/kernel.cpp.o.d"
  "/root/repo/src/guest/tick_dynticks.cpp" "src/guest/CMakeFiles/paratick_guest.dir/tick_dynticks.cpp.o" "gcc" "src/guest/CMakeFiles/paratick_guest.dir/tick_dynticks.cpp.o.d"
  "/root/repo/src/guest/tick_full_dynticks.cpp" "src/guest/CMakeFiles/paratick_guest.dir/tick_full_dynticks.cpp.o" "gcc" "src/guest/CMakeFiles/paratick_guest.dir/tick_full_dynticks.cpp.o.d"
  "/root/repo/src/guest/tick_paratick.cpp" "src/guest/CMakeFiles/paratick_guest.dir/tick_paratick.cpp.o" "gcc" "src/guest/CMakeFiles/paratick_guest.dir/tick_paratick.cpp.o.d"
  "/root/repo/src/guest/tick_periodic.cpp" "src/guest/CMakeFiles/paratick_guest.dir/tick_periodic.cpp.o" "gcc" "src/guest/CMakeFiles/paratick_guest.dir/tick_periodic.cpp.o.d"
  "/root/repo/src/guest/timer_wheel.cpp" "src/guest/CMakeFiles/paratick_guest.dir/timer_wheel.cpp.o" "gcc" "src/guest/CMakeFiles/paratick_guest.dir/timer_wheel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/paratick_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/paratick_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/paratick_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
