file(REMOVE_RECURSE
  "CMakeFiles/paratick_guest.dir/hrtimer.cpp.o"
  "CMakeFiles/paratick_guest.dir/hrtimer.cpp.o.d"
  "CMakeFiles/paratick_guest.dir/kernel.cpp.o"
  "CMakeFiles/paratick_guest.dir/kernel.cpp.o.d"
  "CMakeFiles/paratick_guest.dir/tick_dynticks.cpp.o"
  "CMakeFiles/paratick_guest.dir/tick_dynticks.cpp.o.d"
  "CMakeFiles/paratick_guest.dir/tick_full_dynticks.cpp.o"
  "CMakeFiles/paratick_guest.dir/tick_full_dynticks.cpp.o.d"
  "CMakeFiles/paratick_guest.dir/tick_paratick.cpp.o"
  "CMakeFiles/paratick_guest.dir/tick_paratick.cpp.o.d"
  "CMakeFiles/paratick_guest.dir/tick_periodic.cpp.o"
  "CMakeFiles/paratick_guest.dir/tick_periodic.cpp.o.d"
  "CMakeFiles/paratick_guest.dir/timer_wheel.cpp.o"
  "CMakeFiles/paratick_guest.dir/timer_wheel.cpp.o.d"
  "libparatick_guest.a"
  "libparatick_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paratick_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
