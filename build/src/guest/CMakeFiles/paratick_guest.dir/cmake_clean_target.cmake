file(REMOVE_RECURSE
  "libparatick_guest.a"
)
