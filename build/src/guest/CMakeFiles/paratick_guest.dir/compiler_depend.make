# Empty compiler generated dependencies file for paratick_guest.
# This may be replaced when dependencies are built.
