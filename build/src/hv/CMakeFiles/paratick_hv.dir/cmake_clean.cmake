file(REMOVE_RECURSE
  "CMakeFiles/paratick_hv.dir/kvm.cpp.o"
  "CMakeFiles/paratick_hv.dir/kvm.cpp.o.d"
  "CMakeFiles/paratick_hv.dir/trace.cpp.o"
  "CMakeFiles/paratick_hv.dir/trace.cpp.o.d"
  "libparatick_hv.a"
  "libparatick_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paratick_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
