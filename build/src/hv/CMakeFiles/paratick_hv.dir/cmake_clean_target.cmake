file(REMOVE_RECURSE
  "libparatick_hv.a"
)
