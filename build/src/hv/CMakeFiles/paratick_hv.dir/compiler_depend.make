# Empty compiler generated dependencies file for paratick_hv.
# This may be replaced when dependencies are built.
