
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/block_device.cpp" "src/hw/CMakeFiles/paratick_hw.dir/block_device.cpp.o" "gcc" "src/hw/CMakeFiles/paratick_hw.dir/block_device.cpp.o.d"
  "/root/repo/src/hw/deadline_timer.cpp" "src/hw/CMakeFiles/paratick_hw.dir/deadline_timer.cpp.o" "gcc" "src/hw/CMakeFiles/paratick_hw.dir/deadline_timer.cpp.o.d"
  "/root/repo/src/hw/interrupt.cpp" "src/hw/CMakeFiles/paratick_hw.dir/interrupt.cpp.o" "gcc" "src/hw/CMakeFiles/paratick_hw.dir/interrupt.cpp.o.d"
  "/root/repo/src/hw/machine.cpp" "src/hw/CMakeFiles/paratick_hw.dir/machine.cpp.o" "gcc" "src/hw/CMakeFiles/paratick_hw.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/paratick_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
