file(REMOVE_RECURSE
  "CMakeFiles/paratick_hw.dir/block_device.cpp.o"
  "CMakeFiles/paratick_hw.dir/block_device.cpp.o.d"
  "CMakeFiles/paratick_hw.dir/deadline_timer.cpp.o"
  "CMakeFiles/paratick_hw.dir/deadline_timer.cpp.o.d"
  "CMakeFiles/paratick_hw.dir/interrupt.cpp.o"
  "CMakeFiles/paratick_hw.dir/interrupt.cpp.o.d"
  "CMakeFiles/paratick_hw.dir/machine.cpp.o"
  "CMakeFiles/paratick_hw.dir/machine.cpp.o.d"
  "libparatick_hw.a"
  "libparatick_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paratick_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
