file(REMOVE_RECURSE
  "libparatick_hw.a"
)
