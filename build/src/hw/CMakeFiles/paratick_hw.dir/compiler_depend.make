# Empty compiler generated dependencies file for paratick_hw.
# This may be replaced when dependencies are built.
