file(REMOVE_RECURSE
  "CMakeFiles/paratick_metrics.dir/report.cpp.o"
  "CMakeFiles/paratick_metrics.dir/report.cpp.o.d"
  "CMakeFiles/paratick_metrics.dir/run_metrics.cpp.o"
  "CMakeFiles/paratick_metrics.dir/run_metrics.cpp.o.d"
  "libparatick_metrics.a"
  "libparatick_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paratick_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
