file(REMOVE_RECURSE
  "libparatick_metrics.a"
)
