# Empty dependencies file for paratick_metrics.
# This may be replaced when dependencies are built.
