file(REMOVE_RECURSE
  "CMakeFiles/paratick_sim.dir/engine.cpp.o"
  "CMakeFiles/paratick_sim.dir/engine.cpp.o.d"
  "CMakeFiles/paratick_sim.dir/event_queue.cpp.o"
  "CMakeFiles/paratick_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/paratick_sim.dir/log.cpp.o"
  "CMakeFiles/paratick_sim.dir/log.cpp.o.d"
  "CMakeFiles/paratick_sim.dir/rng.cpp.o"
  "CMakeFiles/paratick_sim.dir/rng.cpp.o.d"
  "CMakeFiles/paratick_sim.dir/stats.cpp.o"
  "CMakeFiles/paratick_sim.dir/stats.cpp.o.d"
  "CMakeFiles/paratick_sim.dir/types.cpp.o"
  "CMakeFiles/paratick_sim.dir/types.cpp.o.d"
  "libparatick_sim.a"
  "libparatick_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paratick_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
