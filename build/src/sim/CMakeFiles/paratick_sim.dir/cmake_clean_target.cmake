file(REMOVE_RECURSE
  "libparatick_sim.a"
)
