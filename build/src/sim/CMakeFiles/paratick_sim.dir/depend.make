# Empty dependencies file for paratick_sim.
# This may be replaced when dependencies are built.
