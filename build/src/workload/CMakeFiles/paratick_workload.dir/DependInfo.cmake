
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/fio.cpp" "src/workload/CMakeFiles/paratick_workload.dir/fio.cpp.o" "gcc" "src/workload/CMakeFiles/paratick_workload.dir/fio.cpp.o.d"
  "/root/repo/src/workload/micro.cpp" "src/workload/CMakeFiles/paratick_workload.dir/micro.cpp.o" "gcc" "src/workload/CMakeFiles/paratick_workload.dir/micro.cpp.o.d"
  "/root/repo/src/workload/parsec.cpp" "src/workload/CMakeFiles/paratick_workload.dir/parsec.cpp.o" "gcc" "src/workload/CMakeFiles/paratick_workload.dir/parsec.cpp.o.d"
  "/root/repo/src/workload/program.cpp" "src/workload/CMakeFiles/paratick_workload.dir/program.cpp.o" "gcc" "src/workload/CMakeFiles/paratick_workload.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/paratick_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/paratick_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/paratick_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/paratick_hv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
