file(REMOVE_RECURSE
  "CMakeFiles/paratick_workload.dir/fio.cpp.o"
  "CMakeFiles/paratick_workload.dir/fio.cpp.o.d"
  "CMakeFiles/paratick_workload.dir/micro.cpp.o"
  "CMakeFiles/paratick_workload.dir/micro.cpp.o.d"
  "CMakeFiles/paratick_workload.dir/parsec.cpp.o"
  "CMakeFiles/paratick_workload.dir/parsec.cpp.o.d"
  "CMakeFiles/paratick_workload.dir/program.cpp.o"
  "CMakeFiles/paratick_workload.dir/program.cpp.o.d"
  "libparatick_workload.a"
  "libparatick_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paratick_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
