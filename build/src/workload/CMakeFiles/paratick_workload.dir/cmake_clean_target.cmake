file(REMOVE_RECURSE
  "libparatick_workload.a"
)
