# Empty dependencies file for paratick_workload.
# This may be replaced when dependencies are built.
