file(REMOVE_RECURSE
  "CMakeFiles/test_block_device.dir/test_block_device.cpp.o"
  "CMakeFiles/test_block_device.dir/test_block_device.cpp.o.d"
  "test_block_device"
  "test_block_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
