# Empty compiler generated dependencies file for test_block_device.
# This may be replaced when dependencies are built.
