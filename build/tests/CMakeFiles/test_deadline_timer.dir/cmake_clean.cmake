file(REMOVE_RECURSE
  "CMakeFiles/test_deadline_timer.dir/test_deadline_timer.cpp.o"
  "CMakeFiles/test_deadline_timer.dir/test_deadline_timer.cpp.o.d"
  "test_deadline_timer"
  "test_deadline_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deadline_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
