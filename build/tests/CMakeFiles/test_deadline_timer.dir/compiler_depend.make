# Empty compiler generated dependencies file for test_deadline_timer.
# This may be replaced when dependencies are built.
