file(REMOVE_RECURSE
  "CMakeFiles/test_guest_kernel.dir/test_guest_kernel.cpp.o"
  "CMakeFiles/test_guest_kernel.dir/test_guest_kernel.cpp.o.d"
  "test_guest_kernel"
  "test_guest_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guest_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
