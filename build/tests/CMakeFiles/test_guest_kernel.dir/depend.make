# Empty dependencies file for test_guest_kernel.
# This may be replaced when dependencies are built.
