file(REMOVE_RECURSE
  "CMakeFiles/test_halt_polling.dir/test_halt_polling.cpp.o"
  "CMakeFiles/test_halt_polling.dir/test_halt_polling.cpp.o.d"
  "test_halt_polling"
  "test_halt_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_halt_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
