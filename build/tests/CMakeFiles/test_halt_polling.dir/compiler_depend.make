# Empty compiler generated dependencies file for test_halt_polling.
# This may be replaced when dependencies are built.
