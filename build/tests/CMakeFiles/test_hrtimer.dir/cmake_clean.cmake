file(REMOVE_RECURSE
  "CMakeFiles/test_hrtimer.dir/test_hrtimer.cpp.o"
  "CMakeFiles/test_hrtimer.dir/test_hrtimer.cpp.o.d"
  "test_hrtimer"
  "test_hrtimer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hrtimer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
