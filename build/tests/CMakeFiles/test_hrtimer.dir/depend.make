# Empty dependencies file for test_hrtimer.
# This may be replaced when dependencies are built.
