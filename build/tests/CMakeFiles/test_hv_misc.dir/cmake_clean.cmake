file(REMOVE_RECURSE
  "CMakeFiles/test_hv_misc.dir/test_hv_misc.cpp.o"
  "CMakeFiles/test_hv_misc.dir/test_hv_misc.cpp.o.d"
  "test_hv_misc"
  "test_hv_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hv_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
