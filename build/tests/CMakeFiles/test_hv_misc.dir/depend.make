# Empty dependencies file for test_hv_misc.
# This may be replaced when dependencies are built.
