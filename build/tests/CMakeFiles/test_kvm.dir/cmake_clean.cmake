file(REMOVE_RECURSE
  "CMakeFiles/test_kvm.dir/test_kvm.cpp.o"
  "CMakeFiles/test_kvm.dir/test_kvm.cpp.o.d"
  "test_kvm"
  "test_kvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
