# Empty compiler generated dependencies file for test_kvm.
# This may be replaced when dependencies are built.
