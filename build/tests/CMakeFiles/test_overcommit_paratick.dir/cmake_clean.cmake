file(REMOVE_RECURSE
  "CMakeFiles/test_overcommit_paratick.dir/test_overcommit_paratick.cpp.o"
  "CMakeFiles/test_overcommit_paratick.dir/test_overcommit_paratick.cpp.o.d"
  "test_overcommit_paratick"
  "test_overcommit_paratick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overcommit_paratick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
