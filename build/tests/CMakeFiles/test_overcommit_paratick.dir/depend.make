# Empty dependencies file for test_overcommit_paratick.
# This may be replaced when dependencies are built.
