file(REMOVE_RECURSE
  "CMakeFiles/test_rcu.dir/test_rcu.cpp.o"
  "CMakeFiles/test_rcu.dir/test_rcu.cpp.o.d"
  "test_rcu"
  "test_rcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
