# Empty compiler generated dependencies file for test_rcu.
# This may be replaced when dependencies are built.
