file(REMOVE_RECURSE
  "CMakeFiles/test_scaling_properties.dir/test_scaling_properties.cpp.o"
  "CMakeFiles/test_scaling_properties.dir/test_scaling_properties.cpp.o.d"
  "test_scaling_properties"
  "test_scaling_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaling_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
