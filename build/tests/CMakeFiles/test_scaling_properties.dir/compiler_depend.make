# Empty compiler generated dependencies file for test_scaling_properties.
# This may be replaced when dependencies are built.
