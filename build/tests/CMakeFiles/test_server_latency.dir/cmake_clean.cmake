file(REMOVE_RECURSE
  "CMakeFiles/test_server_latency.dir/test_server_latency.cpp.o"
  "CMakeFiles/test_server_latency.dir/test_server_latency.cpp.o.d"
  "test_server_latency"
  "test_server_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
