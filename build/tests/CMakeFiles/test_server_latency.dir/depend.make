# Empty dependencies file for test_server_latency.
# This may be replaced when dependencies are built.
