
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tick_policies.cpp" "tests/CMakeFiles/test_tick_policies.dir/test_tick_policies.cpp.o" "gcc" "tests/CMakeFiles/test_tick_policies.dir/test_tick_policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/paratick_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/paratick_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/paratick_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/paratick_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/paratick_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/paratick_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/paratick_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
