file(REMOVE_RECURSE
  "CMakeFiles/test_tick_policies.dir/test_tick_policies.cpp.o"
  "CMakeFiles/test_tick_policies.dir/test_tick_policies.cpp.o.d"
  "test_tick_policies"
  "test_tick_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tick_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
