file(REMOVE_RECURSE
  "CMakeFiles/test_timer_wheel.dir/test_timer_wheel.cpp.o"
  "CMakeFiles/test_timer_wheel.dir/test_timer_wheel.cpp.o.d"
  "test_timer_wheel"
  "test_timer_wheel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timer_wheel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
