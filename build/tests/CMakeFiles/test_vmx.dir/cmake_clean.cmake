file(REMOVE_RECURSE
  "CMakeFiles/test_vmx.dir/test_vmx.cpp.o"
  "CMakeFiles/test_vmx.dir/test_vmx.cpp.o.d"
  "test_vmx"
  "test_vmx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
