# Empty compiler generated dependencies file for test_vmx.
# This may be replaced when dependencies are built.
