// Cloud-consolidation scenario (§3.1): a host time-shares its physical
// CPUs between several mostly-idle VMs — the common overcommit case the
// paper argues periodic ticks handle terribly. Compares total exits and
// useful throughput for all three tick policies with 4 VMs on 8 pCPUs.
//
// Build & run: cmake --build build && ./build/examples/consolidation
#include <cstdio>

#include "core/system.hpp"
#include "metrics/report.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

metrics::RunResult run_consolidated(guest::TickMode mode) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(8);
  spec.host.sched_mode = hv::SchedMode::kShared;
  spec.max_duration = sim::SimTime::sec(2);
  spec.stop_when_done = false;

  for (int i = 0; i < 4; ++i) {
    core::VmSpec vm;
    vm.vcpus = 8;
    vm.guest.tick_mode = mode;
    vm.guest.seed = 500 + static_cast<std::uint64_t>(i);
    vm.setup = [i](guest::GuestKernel& k) {
      workload::SyncStormSpec storm;
      storm.threads = 4;
      storm.sync_rate_hz = 100.0 + 50.0 * i;  // light, bursty service VMs
      storm.duration = sim::SimTime::sec(2);
      storm.load = 0.15;
      workload::install_sync_storm(k, storm);
    };
    spec.vms.push_back(std::move(vm));
  }
  core::System system(std::move(spec));
  return system.run();
}

}  // namespace

int main() {
  std::puts("4 VMs x 8 vCPUs on 8 pCPUs (4x overcommit), light bursty load, 2 s\n");
  metrics::Table t({"policy", "total exits", "timer-related", "exit overhead Mcycles",
                    "host Mcycles"});
  for (auto mode : {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
                    guest::TickMode::kParatick}) {
    const metrics::RunResult r = run_consolidated(mode);
    t.add_row(
        {std::string(guest::to_string(mode)),
         metrics::format("%llu", (unsigned long long)r.exits_total),
         metrics::format("%llu", (unsigned long long)r.exits_timer_related),
         metrics::format("%.1f",
                         (double)r.cycles.total(hw::CycleCategory::kExitOverhead).count() / 1e6),
         metrics::format("%.1f",
                         (double)r.cycles.total(hw::CycleCategory::kHostKernel).count() / 1e6)});
  }
  t.print();
  std::puts("\nPeriodic guests interrupt the host for every idle vCPU's tick; dynticks\n"
            "pays per idle transition; paratick needs (almost) nothing (§3, §4.2).");
  return 0;
}
