// Cloud-consolidation scenario (§3.1): a host time-shares its physical
// CPUs between several mostly-idle VMs — the common overcommit case the
// paper argues periodic ticks handle terribly. Compares total exits and
// useful throughput for all three tick policies with 4 VMs on 8 pCPUs,
// running the three policies in parallel on the sweep runner.
//
// Build & run: cmake --build build && ./build/examples/consolidation
// Flags: -j N, --repeat N, --seed S, --sweep-csv P, --sweep-json P, --quiet
#include <cstdio>

#include "core/sweep.hpp"
#include "metrics/report.hpp"
#include "workload/micro.hpp"

using namespace paratick;

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);

  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(8);
  cfg.base.vcpus = 8;
  cfg.base.sched_mode = hv::SchedMode::kShared;
  cfg.base.max_duration = sim::SimTime::sec(2);
  cfg.base.stop_when_done = false;
  cfg.modes = {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
               guest::TickMode::kParatick};
  cfg.root_seed = 500;
  // 4 VMs with individually tuned light, bursty service loads.
  for (int i = 0; i < 4; ++i) {
    cfg.base.vm_setups.push_back([i](guest::GuestKernel& k) {
      workload::SyncStormSpec storm;
      storm.threads = 4;
      storm.sync_rate_hz = 100.0 + 50.0 * i;
      storm.duration = sim::SimTime::sec(2);
      storm.load = 0.15;
      workload::install_sync_storm(k, storm);
    });
  }
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "consolidation");

  std::puts("4 VMs x 8 vCPUs on 8 pCPUs (4x overcommit), light bursty load, 2 s\n");
  metrics::Table t({"policy", "total exits", "timer-related", "exit overhead Mcycles",
                    "host Mcycles"});
  for (const auto& cell : res.cells) {
    // cell.first carries replica 0's full RunResult (cycle ledger included).
    const metrics::RunResult& r = cell.first;
    t.add_row(
        {std::string(guest::to_string(cell.key.mode)),
         metrics::format("%.0f", cell.exits_total.mean()),
         metrics::format("%.0f", cell.exits_timer.mean()),
         metrics::format("%.1f",
                         (double)r.cycles.total(hw::CycleCategory::kExitOverhead).count() / 1e6),
         metrics::format("%.1f",
                         (double)r.cycles.total(hw::CycleCategory::kHostKernel).count() / 1e6)});
  }
  t.print();
  std::puts("\nPeriodic guests interrupt the host for every idle vCPU's tick; dynticks\n"
            "pays per idle transition; paratick needs (almost) nothing (§3, §4.2).");
  return 0;
}
