// Cloud-consolidation scenario (§3.1): hosts time-share their physical
// CPUs between several mostly-idle VMs — the common overcommit case the
// paper argues periodic ticks handle terribly. Compares total exits and
// useful throughput for all three tick policies with 4 VMs x 8 vCPUs on
// 8 pCPUs per host, running the policies in parallel on the sweep
// runner.
//
// Now built on the cluster layer (core/cluster): `--hosts 1` (the
// default) is the original single-host scenario — core::Cluster drives
// that one System's engine directly, adding no events — while
// `--hosts N` scales the same workload out to N hosts under one
// simulated clock, optionally with steal-aware rebalancing. Numbers
// differ from the pre-cluster version of this example because per-VM
// guest seeds are now derived from the cluster seed stream (stable in
// the VM's global index, so they no longer shift when hosts are added).
//
// Build & run: cmake --build build && ./build/examples/consolidation
// Flags: --hosts N, --rebalance-period MS (0 = off, the default), plus
// the shared sweep CLI: -j N, --engine-threads N, --repeat N, --seed S,
// --sweep-csv P, --sweep-json P, --quiet
#include <cstdio>
#include <string>
#include <vector>

#include "core/cli_parse.hpp"
#include "core/cluster/cluster.hpp"
#include "core/sweep.hpp"
#include "metrics/report.hpp"
#include "sim/check.hpp"
#include "sim/error.hpp"
#include "workload/micro.hpp"

using namespace paratick;

namespace {

constexpr int kVmsPerHost = 4;
constexpr sim::SimTime kDuration = sim::SimTime::sec(2);

struct Opts {
  int hosts = 1;
  sim::SimTime rebalance_period;  // zero = place once, never rebalance
};

Opts parse_opts(const std::vector<std::string>& args) {
  Opts opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto value = [&](const char* flag) -> const std::string& {
      PARATICK_CHECK_MSG(i + 1 < args.size(), flag);
      return args[++i];
    };
    if (args[i] == "--hosts") {
      opts.hosts =
          static_cast<int>(core::parse_u64_flag("--hosts", value("--hosts"), 64));
      PARATICK_CHECK_MSG(opts.hosts >= 1, "--hosts must be >= 1");
    } else if (args[i] == "--rebalance-period") {
      opts.rebalance_period = sim::SimTime::from_seconds(
          core::parse_double_flag("--rebalance-period",
                                  value("--rebalance-period"), 0.0) /
          1e3);
    } else {
      PARATICK_CHECK_MSG(false, ("unknown consolidation flag: " + args[i]).c_str());
    }
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const core::SweepCli cli = core::SweepCli::parse(argc, argv);
  Opts opts;
  try {
    opts = parse_opts(cli.positional);
  } catch (const sim::SimError& e) {
    std::fprintf(stderr, "consolidation: %s\n", e.what());
    return 2;
  }

  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(8);  // per host
  cfg.base.vcpus = 8;
  cfg.base.scenario.vm_copies = kVmsPerHost;
  cfg.base.max_duration = kDuration;
  cfg.base.stop_when_done = false;
  cfg.modes = {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
               guest::TickMode::kParatick};
  cfg.root_seed = 500;
  // Every grid cell runs one core::Cluster; the host boundary is the
  // parallel-engine partition boundary, so --engine-threads spreads a
  // multi-host cell across threads without changing a single byte.
  cfg.base.scenario.run = [opts, engine_threads = cli.engine_threads](
                              const core::ExperimentSpec& exp,
                              guest::TickMode mode) {
    core::ClusterSpec cs;
    cs.hosts = opts.hosts;
    cs.vms_per_host = exp.scenario.effective_copies();
    cs.vcpus_per_vm = exp.vcpus;
    cs.machine = exp.machine;
    cs.host = exp.host;
    cs.guest.tick_mode = mode;
    cs.guest.tick_freq = exp.guest_tick_freq;
    cs.guest.costs = exp.guest_costs;
    cs.guest.steal.enabled = opts.rebalance_period > sim::SimTime::zero();
    cs.duration = exp.max_duration;
    cs.seed = exp.guest_seed;
    cs.engine_threads = engine_threads;
    cs.rebalance_period = opts.rebalance_period;
    // 4 VMs with individually tuned light, bursty service loads, keyed
    // by global index so a VM keeps its personality across migrations.
    cs.workload = [](guest::GuestKernel& k, int g) {
      workload::SyncStormSpec storm;
      storm.threads = 4;
      storm.sync_rate_hz = 100.0 + 50.0 * (g % kVmsPerHost);
      storm.duration = kDuration;
      storm.load = 0.15;
      workload::install_sync_storm(k, storm);
    };
    core::Cluster cluster(std::move(cs));
    return cluster.run().merged;
  };
  cli.apply(cfg);

  const core::SweepResult res = cli.run_sweep(std::move(cfg));
  cli.export_results(res, "consolidation");

  std::printf("%d host(s) x 4 VMs x 8 vCPUs on 8 pCPUs (4x overcommit), "
              "light bursty load, 2 s\n\n",
              opts.hosts);
  metrics::Table t({"policy", "total exits", "timer-related", "exit overhead Mcycles",
                    "host Mcycles"});
  for (const auto& cell : res.cells) {
    // cell.first carries replica 0's full RunResult (cycle ledger included).
    const metrics::RunResult& r = cell.first;
    t.add_row(
        {std::string(guest::to_string(cell.key.mode)),
         metrics::format("%.0f", cell.exits_total.mean()),
         metrics::format("%.0f", cell.exits_timer.mean()),
         metrics::format("%.1f",
                         (double)r.cycles.total(hw::CycleCategory::kExitOverhead).count() / 1e6),
         metrics::format("%.1f",
                         (double)r.cycles.total(hw::CycleCategory::kHostKernel).count() / 1e6)});
  }
  t.print();
  std::puts("\nPeriodic guests interrupt the host for every idle vCPU's tick; dynticks\n"
            "pays per idle transition; paratick needs (almost) nothing (§3, §4.2).");
  return 0;
}
