// Exit breakdown: run one workload under all three tick modes and print
// the full per-cause VM-exit table plus tick-policy statistics — the view
// you would get from `perf kvm stat` on the real system.
//
// Usage: exit_breakdown [benchmark] [threads]
//        exit_breakdown fio            (the I/O scenario)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hpp"
#include "metrics/report.hpp"
#include "workload/fio.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

namespace {

void print_breakdown(const char* label, const metrics::RunResult& r) {
  std::printf("\n=== %s ===\n", label);
  std::printf("wall %.2f ms | busy %.1f Mcycles | exits %llu (timer-related %llu)\n",
              r.wall.milliseconds(), (double)r.busy_cycles().count() / 1e6,
              (unsigned long long)r.exits_total,
              (unsigned long long)r.exits_timer_related);
  metrics::Table t({"exit cause", "count", "share"});
  for (std::size_t c = 0; c < hw::kExitCauseCount; ++c) {
    if (r.exits_by_cause[c] == 0) continue;
    t.add_row({std::string(hw::to_string(static_cast<hw::ExitCause>(c))),
               metrics::format("%llu", (unsigned long long)r.exits_by_cause[c]),
               metrics::format("%.1f%%", 100.0 * (double)r.exits_by_cause[c] /
                                             (double)r.exits_total)});
  }
  t.print();
  const auto& p = r.vms[0].policy;
  std::printf("policy: ticks %llu (virtual %llu) msr-writes %llu (avoided %llu) "
              "idle-entries %llu\n",
              (unsigned long long)p.ticks_handled, (unsigned long long)p.virtual_ticks,
              (unsigned long long)p.msr_writes, (unsigned long long)p.msr_writes_avoided,
              (unsigned long long)p.idle_entries);
  std::printf("task blocks %llu | cycle split: user %.0fM kernel %.0fM exit %.0fM "
              "host %.0fM idle %.0fM\n",
              (unsigned long long)r.vms[0].task_blocks,
              (double)r.cycles.total(hw::CycleCategory::kGuestUser).count() / 1e6,
              (double)r.cycles.total(hw::CycleCategory::kGuestKernel).count() / 1e6,
              (double)r.cycles.total(hw::CycleCategory::kExitOverhead).count() / 1e6,
              (double)r.cycles.total(hw::CycleCategory::kHostKernel).count() / 1e6,
              (double)r.cycles.total(hw::CycleCategory::kIdle).count() / 1e6);
  if (r.vms[0].wakeup_latency_us.count() > 0) {
    std::printf("wake-to-run latency: mean %.2f us, max %.2f us over %llu wakes\n",
                r.vms[0].wakeup_latency_us.mean(), r.vms[0].wakeup_latency_us.max(),
                (unsigned long long)r.vms[0].wakeup_latency_us.count());
  }
  if (auto ct = r.completion_time()) {
    std::printf("execution time: %.2f ms\n", ct->milliseconds());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "fluidanimate";
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;

  core::ExperimentSpec exp;
  if (bench == "fio") {
    exp.machine = hw::MachineSpec::small(1);
    exp.vcpus = 1;
    exp.attach_disk = true;
    exp.setup = [](guest::GuestKernel& k) {
      workload::FioSpec spec;
      spec.ops = 2000;
      workload::install_fio(k, spec);
    };
  } else {
    exp.machine = hw::MachineSpec::small(static_cast<std::uint32_t>(threads));
    exp.vcpus = threads;
    exp.attach_disk = true;
    const auto& profile = workload::parsec_profile(bench);
    exp.setup = [&profile, threads](guest::GuestKernel& k) {
      workload::install_parsec(k, profile, threads);
    };
  }

  for (auto mode : {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
                    guest::TickMode::kParatick}) {
    const metrics::RunResult r = core::run_mode(exp, mode);
    print_breakdown(std::string(guest::to_string(mode)).c_str(), r);
  }
  return 0;
}
