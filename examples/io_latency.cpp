// Device-latency sweep: §6.3's closing prediction is that "paratick's
// performance benefits will only increase as time goes on, since
// state-of-the-art storage devices sport much lower access latencies."
// This example runs the same sync-I/O job against an HDD, a SATA SSD and
// an NVMe profile and shows the paratick gain growing as latency drops.
//
// Build & run: cmake --build build && ./build/examples/io_latency
#include <cstdio>

#include "core/experiment.hpp"
#include "metrics/report.hpp"
#include "workload/fio.hpp"

using namespace paratick;

int main() {
  struct Device {
    const char* name;
    hw::BlockDeviceSpec spec;
  };
  const Device devices[] = {
      {"HDD", hw::BlockDeviceSpec::hdd()},
      {"SATA SSD", hw::BlockDeviceSpec::sata_ssd()},
      {"NVMe", hw::BlockDeviceSpec::nvme()},
  };

  std::puts("fio 4k random read, sync engine, 1-vCPU VM, paratick vs dynticks\n");
  metrics::Table t({"device", "read latency", "IOPS (dynticks)", "IOPS (paratick)",
                    "VM exits", "exec time"});

  for (const auto& dev : devices) {
    core::ExperimentSpec exp;
    exp.machine = hw::MachineSpec::small(1);
    exp.vcpus = 1;
    exp.attach_disk = true;
    exp.disk = dev.spec;
    exp.max_duration = sim::SimTime::sec(60);
    exp.setup = [](guest::GuestKernel& k) {
      workload::FioSpec spec;
      spec.pattern = hw::IoPattern::kRandom;
      spec.block_bytes = 4096;
      spec.ops = 1200;
      workload::install_fio(k, spec);
    };
    const core::AbResult ab = core::run_paratick_vs_dynticks(exp);

    auto iops = [](const metrics::RunResult& r) {
      const auto ct = r.completion_time();
      return ct && ct->seconds() > 0 ? 1200.0 / ct->seconds() : 0.0;
    };
    t.add_row({dev.name,
               metrics::format("%.0f us", dev.spec.read_latency.microseconds()),
               metrics::format("%.0f", iops(ab.baseline)),
               metrics::format("%.0f", iops(ab.treatment)),
               metrics::pct(ab.comparison.exit_delta_pct),
               metrics::pct(ab.comparison.exec_time_delta_pct)});
  }
  t.print();
  std::puts("\nThe faster the device, the larger the share of each operation spent on\n"
            "timer-management exits — and the more paratick helps (§6.3).");
  return 0;
}
