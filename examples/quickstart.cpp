// Quickstart: run one multithreaded PARSEC-like workload in a 4-vCPU VM
// under vanilla dynticks and under paratick, and print the paper's three
// metrics side by side.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "metrics/report.hpp"
#include "workload/parsec.hpp"

using namespace paratick;

int main() {
  core::ExperimentSpec exp;
  exp.machine = hw::MachineSpec::small(4);
  exp.vcpus = 4;
  exp.setup = [](guest::GuestKernel& kernel) {
    workload::install_parsec(kernel, workload::parsec_profile("fluidanimate"), 4);
  };

  std::puts("Running fluidanimate (4 threads, 4-vCPU VM)...");
  const core::AbResult ab = core::run_paratick_vs_dynticks(exp);

  metrics::Table table({"metric", "dynticks (vanilla)", "paratick", "delta"});
  table.add_row({"VM exits", metrics::format("%llu", (unsigned long long)ab.baseline.exits_total),
                 metrics::format("%llu", (unsigned long long)ab.treatment.exits_total),
                 metrics::pct(ab.comparison.exit_delta_pct)});
  table.add_row(
      {"timer-related exits",
       metrics::format("%llu", (unsigned long long)ab.baseline.exits_timer_related),
       metrics::format("%llu", (unsigned long long)ab.treatment.exits_timer_related),
       metrics::pct(ab.comparison.timer_exit_delta_pct)});
  table.add_row({"busy cycles (M)",
                 metrics::format("%.1f", (double)ab.baseline.busy_cycles().count() / 1e6),
                 metrics::format("%.1f", (double)ab.treatment.busy_cycles().count() / 1e6),
                 metrics::pct(-ab.comparison.throughput_gain_pct)});
  const auto bt = ab.baseline.completion_time();
  const auto tt = ab.treatment.completion_time();
  table.add_row({"execution time (ms)",
                 metrics::format("%.2f", bt ? bt->milliseconds() : -1.0),
                 metrics::format("%.2f", tt ? tt->milliseconds() : -1.0),
                 metrics::pct(ab.comparison.exec_time_delta_pct)});
  table.print();

  std::printf("\nSummary: %s\n", metrics::describe(ab.comparison).c_str());
  return 0;
}
