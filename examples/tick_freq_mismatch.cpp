// §4.1 frequency-mismatch demo — the feature the paper left as future
// work. A 250 Hz guest runs on hosts with different tick frequencies;
// paratick's hypercall-declared rate is honored either by piggybacking
// on host ticks (compatible) or via the auxiliary preemption timer.
//
// Build & run: cmake --build build && ./build/examples/tick_freq_mismatch
#include <cstdio>

#include "core/experiment.hpp"
#include "metrics/report.hpp"
#include "workload/micro.hpp"

using namespace paratick;

int main() {
  std::puts("Guest declares 250 Hz; host tick frequency varies. 2 s busy guest.\n");
  metrics::Table t({"host Hz", "ratio", "strategy", "virtual ticks/s",
                    "timer exits/s"});

  for (double host_hz : {100.0, 250.0, 300.0, 500.0, 1000.0}) {
    core::ExperimentSpec exp;
    exp.machine = hw::MachineSpec::small(1);
    exp.vcpus = 1;
    exp.host.host_tick_freq = sim::Frequency{host_hz};
    exp.max_duration = sim::SimTime::sec(2);
    exp.setup = [](guest::GuestKernel& k) {
      workload::PureComputeSpec pc;
      pc.total_cycles = 4'000'000'000;
      pc.chunks = 4000;
      workload::install_pure_compute(k, pc);
    };
    const metrics::RunResult r = core::run_mode(exp, guest::TickMode::kParatick);

    const std::int64_t host_p = sim::Frequency{host_hz}.period().nanoseconds();
    const std::int64_t guest_p = sim::Frequency{250.0}.period().nanoseconds();
    const bool compatible = host_p <= guest_p && guest_p % host_p == 0;
    t.add_row({metrics::format("%.0f", host_hz),
               metrics::format("%.2f", host_hz / 250.0),
               compatible ? "piggyback on host ticks" : "auxiliary preemption timer",
               metrics::format("%.1f", (double)r.vms[0].policy.virtual_ticks /
                                           r.wall.seconds()),
               metrics::format("%.0f", (double)r.exits_timer_related / r.wall.seconds())});
  }
  t.print();
  std::puts("\nThe guest always receives ~250 virtual ticks/s. When the host rate is a\n"
            "multiple of the guest's, injection is free; otherwise the aux timer costs\n"
            "about what a vanilla guest would pay to run its own tick (§4.1).");
  return 0;
}
