// Event-trace demo: record the run-loop timeline of a short paratick vs
// dynticks run (the simulator's `perf kvm stat record`) and print the
// first milliseconds side by side — the Figure 1 vs Figure 3 behaviour,
// visible event by event.
//
// Usage: trace_timeline [dynticks|paratick|periodic|full-dynticks] [--csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/system.hpp"
#include "workload/micro.hpp"

using namespace paratick;

int main(int argc, char** argv) {
  guest::TickMode mode = guest::TickMode::kDynticksIdle;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "paratick") mode = guest::TickMode::kParatick;
    if (arg == "periodic") mode = guest::TickMode::kPeriodic;
    if (arg == "full-dynticks") mode = guest::TickMode::kFullDynticks;
    if (arg == "--csv") csv = true;
  }

  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  spec.host.trace = true;
  spec.max_duration = sim::SimTime::ms(30);
  core::VmSpec vm;
  vm.vcpus = 1;
  vm.guest.tick_mode = mode;
  vm.setup = [](guest::GuestKernel& k) {
    // Brief compute bursts with sleeps in between: exercises tick arming,
    // idle entry/exit and timer wake-ups.
    workload::TickStormSpec storm;
    storm.iterations = 8;
    storm.sleep_interval = sim::SimTime::ms(3);
    storm.think_cycles = 2'000'000;  // 1 ms
    workload::install_tick_storm(k, storm);
  };
  spec.vms.push_back(std::move(vm));

  core::System system(std::move(spec));
  system.run();

  if (csv) {
    std::fputs(system.kvm().tracer().to_csv().c_str(), stdout);
    return 0;
  }

  std::printf("Run-loop timeline (%s guest, 1 ms bursts + 3 ms sleeps):\n\n",
              std::string(guest::to_string(mode)).c_str());
  if (system.kvm().tracer().wrapped()) {
    std::printf("(ring wrapped: dropped %llu of %llu events; oldest shown "
                "first)\n\n",
                static_cast<unsigned long long>(system.kvm().tracer().dropped()),
                static_cast<unsigned long long>(
                    system.kvm().tracer().total_recorded()));
  }
  int shown = 0;
  for (const auto& e : system.kvm().tracer().chronological()) {
    std::string detail;
    switch (e.kind) {
      case hv::TraceKind::kExit:
        detail = hw::to_string(static_cast<hw::ExitCause>(e.arg));
        break;
      case hv::TraceKind::kInjection:
        detail = "vector " + std::to_string(e.arg);
        break;
      default:
        break;
    }
    std::printf("%10.3f us  vcpu%u  %-9s %s\n", e.at.microseconds(), e.vcpu,
                std::string(hv::to_string(e.kind)).c_str(), detail.c_str());
    if (++shown >= 60) {
      std::puts("... (use --csv for the full trace)");
      break;
    }
  }
  return 0;
}
