#!/usr/bin/env bash
# Regenerate the paper figures' data as CSV files under results/.
#
# The sweep-driven benches (table1 / fig4 / fig5) also export their full
# per-cell sweep grids (mean/stddev per metric, one row per
# variant x mode x axis cell) as <name>_sweep.csv / .json.
#
# Usage: scripts/export_csv.sh [build-dir] [jobs]
set -euo pipefail
BUILD="${1:-build}"
JOBS="${2:-$(nproc)}"
OUT=results
mkdir -p "$OUT"

"$BUILD/bench/bench_table1" -j"$JOBS" --quiet --csv \
  --sweep-csv "$OUT/table1_sweep.csv" --sweep-json "$OUT/table1_sweep.json" \
  > "$OUT/table1.csv"
"$BUILD/bench/bench_fig4_sequential" -j"$JOBS" --quiet --csv \
  --sweep-csv "$OUT/fig4_sweep.csv" --sweep-json "$OUT/fig4_sweep.json" \
  > "$OUT/fig4_sequential.csv"
"$BUILD/bench/bench_fig5_multithreaded" all -j"$JOBS" --quiet --csv \
  --sweep-csv "$OUT/fig5_sweep.csv" --sweep-json "$OUT/fig5_sweep.json" \
  > /dev/null
"$BUILD/bench/bench_fig5_multithreaded" small -j"$JOBS" --quiet --csv > "$OUT/fig5_small.csv"
"$BUILD/bench/bench_fig5_multithreaded" medium -j"$JOBS" --quiet --csv > "$OUT/fig5_medium.csv"
"$BUILD/bench/bench_fig5_multithreaded" large -j"$JOBS" --quiet --csv > "$OUT/fig5_large.csv"
"$BUILD/bench/bench_fig6_io" -j"$JOBS" --quiet --csv \
  --sweep-csv "$OUT/fig6_sweep.csv" --sweep-json "$OUT/fig6_sweep.json" \
  > "$OUT/fig6_io.csv"

# Ablation benches: same sweep-runner CLI, one CSV per study.
for abl in crossover tickfreq overcommit costmodel features nohzfull \
           device latency_tail tick_jitter; do
  "$BUILD/bench/bench_ablation_$abl" -j"$JOBS" --quiet --csv \
    --sweep-csv "$OUT/ablation_${abl}_sweep.csv" \
    > "$OUT/ablation_${abl}.csv"
done

echo "wrote:"
ls -l "$OUT"
