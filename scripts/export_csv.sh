#!/usr/bin/env bash
# Regenerate the paper figures' data as CSV files under results/.
# Usage: scripts/export_csv.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"
OUT=results
mkdir -p "$OUT"

"$BUILD/bench/bench_fig4_sequential" --csv > "$OUT/fig4_sequential.csv"
"$BUILD/bench/bench_fig5_multithreaded" small --csv > "$OUT/fig5_small.csv"
"$BUILD/bench/bench_fig5_multithreaded" medium --csv > "$OUT/fig5_medium.csv"
"$BUILD/bench/bench_fig5_multithreaded" large --csv > "$OUT/fig5_large.csv"
"$BUILD/bench/bench_fig6_io" --csv > "$OUT/fig6_io.csv"

echo "wrote:"
ls -l "$OUT"
