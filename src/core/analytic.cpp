#include "core/analytic.hpp"

#include <cmath>

#include "sim/check.hpp"

namespace paratick::core {

std::uint64_t periodic_exits(sim::SimTime t, sim::Frequency tick,
                             const std::vector<AnalyticVm>& vms) {
  double sum = 0.0;
  for (const auto& vm : vms) sum += vm.vcpus * tick.hertz();
  return static_cast<std::uint64_t>(2.0 * t.seconds() * sum);
}

std::uint64_t tickless_exits(sim::SimTime t, sim::Frequency tick,
                             const std::vector<AnalyticVm>& vms) {
  double sum = 0.0;
  for (const auto& vm : vms) {
    sum += vm.load * vm.vcpus * tick.hertz() + vm.idle_transitions_per_sec;
  }
  return static_cast<std::uint64_t>(2.0 * t.seconds() * sum);
}

std::uint64_t paratick_exits(sim::SimTime t, sim::Frequency tick,
                             const std::vector<AnalyticVm>& vms, double arm_fraction) {
  (void)tick;
  // Virtual ticks piggyback on host-tick exits that exist anyway; the only
  // *additional* timer exits are idle-entry wake-up arms, needed for the
  // fraction of idle transitions with a pending soft event, and at most one
  // MSR write each (never disarmed).
  double sum = 0.0;
  for (const auto& vm : vms) sum += vm.idle_transitions_per_sec * arm_fraction;
  return static_cast<std::uint64_t>(t.seconds() * sum);
}

sim::SimTime crossover_idle_period(sim::Frequency tick, double share) {
  PARATICK_CHECK(share > 0.0);
  const double period_s = 1.0 / tick.hertz();
  return sim::SimTime::from_seconds(period_s / share);
}

std::vector<Table1Row> table1_published() {
  return {
      {"W1", 40'000, 0},
      {"W2", 160'000, 0},
      {"W3", 40'000, 60'000},
      {"W4", 160'000, 240'000},
  };
}

std::vector<Table1Row> table1_reconstructed() {
  const sim::SimTime t = sim::SimTime::sec(10);
  const sim::Frequency tick{250.0};

  auto idle_vm = [](int copies) {
    std::vector<AnalyticVm> vms;
    for (int i = 0; i < copies; ++i) vms.push_back({16, 0.0, 0.0});
    return vms;
  };
  auto sync_vm = [](int copies) {
    // W3: 16 threads synchronizing 1000x/s through blocking sync.
    // Reconstruction matching the published cells: L = 0.5 and 1000 group
    // idle transitions per second per copy.
    std::vector<AnalyticVm> vms;
    for (int i = 0; i < copies; ++i) vms.push_back({16, 0.5, 1000.0});
    return vms;
  };

  // The published periodic cells equal t * n * f (one exit counted per
  // tick); reproduce that convention here and flag it in EXPERIMENTS.md.
  auto published_periodic = [&](const std::vector<AnalyticVm>& vms) {
    return periodic_exits(t, tick, vms) / 2;
  };

  return {
      {"W1", published_periodic(idle_vm(1)), tickless_exits(t, tick, idle_vm(1))},
      {"W2", published_periodic(idle_vm(4)), tickless_exits(t, tick, idle_vm(4))},
      {"W3", published_periodic(sync_vm(1)), tickless_exits(t, tick, sync_vm(1))},
      {"W4", published_periodic(sync_vm(4)), tickless_exits(t, tick, sync_vm(4))},
  };
}

}  // namespace paratick::core
