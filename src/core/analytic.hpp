// Closed-form exit-count models from the paper's §3.1 / §3.2 / §3.3,
// including the Table 1 scenario calculator and the tickless-vs-periodic
// crossover condition.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace paratick::core {

/// One VM in an analytic scenario.
struct AnalyticVm {
  int vcpus = 16;
  double load = 0.0;                 // L_n: utilized / maximum throughput
  double idle_transitions_per_sec = 0.0;  // (1-L)*n / T_idle, total for the VM
};

/// §3.1: exits = 2 * t * sum(n_vCPU * f_tick) — every vCPU pays a tick
/// delivery and a re-arm each period, busy or idle.
[[nodiscard]] std::uint64_t periodic_exits(sim::SimTime t, sim::Frequency tick,
                                           const std::vector<AnalyticVm>& vms);

/// §3.2: exits = 2 * t * sum(L*n*f + (1-L)*n/T_idle).
[[nodiscard]] std::uint64_t tickless_exits(sim::SimTime t, sim::Frequency tick,
                                           const std::vector<AnalyticVm>& vms);

/// Virtual scheduler ticks (§4.2): timer exits vanish except the rare
/// idle-entry wake-up arm — modeled as a small fraction of transitions
/// that actually need a programmed timer.
[[nodiscard]] std::uint64_t paratick_exits(sim::SimTime t, sim::Frequency tick,
                                           const std::vector<AnalyticVm>& vms,
                                           double arm_fraction = 0.1);

/// §3.3: tickless beats periodic while T_idle > tick_period / share,
/// where `share` is the number of vCPUs time-sharing one physical CPU.
[[nodiscard]] sim::SimTime crossover_idle_period(sim::Frequency tick, double share);

/// The four workloads of Table 1 (W1..W4) and the published cell values.
struct Table1Row {
  std::string_view workload;
  std::uint64_t periodic;
  std::uint64_t tickless;
};

/// The exact numbers printed in the paper's Table 1.
[[nodiscard]] std::vector<Table1Row> table1_published();

/// Our reconstruction of Table 1 from the §3 formulas. The paper's
/// table counts one exit per periodic tick (injection only) while the
/// tickless row uses the full §3.2 expression with W3/W4 parameters
/// L = 0.5 and 1000 group idle transitions per second per workload copy;
/// EXPERIMENTS.md discusses the factor-of-two inconsistency in the
/// published periodic row.
[[nodiscard]] std::vector<Table1Row> table1_reconstructed();

}  // namespace paratick::core
