#include "core/cli_parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "sim/check.hpp"

namespace paratick::core {

namespace {

[[noreturn]] void reject(const char* flag, const std::string& text,
                         const char* why) {
  const std::string msg = std::string(flag) + ": " + why + ": \"" + text + "\"";
  PARATICK_CHECK_MSG(false, msg.c_str());
  std::abort();  // unreachable; PARATICK_CHECK_MSG throws
}

}  // namespace

std::uint64_t parse_u64_flag(const char* flag, const std::string& text,
                             std::uint64_t max_value, int base) {
  if (text.empty()) reject(flag, text, "expected a number, got empty value");
  // strtoull happily parses "-3" by wrapping it to 2^64-3; for a flag
  // that counts things that is never what the user meant.
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '-') {
      reject(flag, text, "expected a non-negative integer");
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, base);
  if (end == text.c_str() || *end != '\0') {
    reject(flag, text, "not a valid integer");
  }
  if (errno == ERANGE || v > max_value) {
    reject(flag, text, "value out of range");
  }
  return v;
}

double parse_double_flag(const char* flag, const std::string& text,
                         double min_value) {
  if (text.empty()) reject(flag, text, "expected a number, got empty value");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    reject(flag, text, "not a valid number");
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    reject(flag, text, "value out of range");
  }
  if (v < min_value) reject(flag, text, "value must not be negative");
  return v;
}

std::size_t parse_choice_flag(const char* flag, const std::string& text,
                              std::initializer_list<const char*> choices) {
  std::size_t i = 0;
  for (const char* c : choices) {
    if (text == c) return i;
    ++i;
  }
  std::string expected = "expected one of";
  for (const char* c : choices) {
    expected += ' ';
    expected += c;
  }
  reject(flag, text, expected.c_str());
}

}  // namespace paratick::core
