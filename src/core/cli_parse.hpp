// Checked numeric CLI parsing.
//
// The strtoul/strtod family silently returns 0 on garbage when called
// with a null endptr, so `-j garbage` or `--seed 0xzz` used to parse as
// 0 and quietly reconfigure the sweep. These helpers reject empty input,
// trailing garbage, out-of-range values, and negative numbers for
// unsigned flags by throwing sim::SimError (kCheck) with the flag name
// and offending text in the message; SweepCli::parse turns that into a
// clean exit(2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace paratick::core {

/// Parse an unsigned integer flag value. base 10 by default; base 0
/// accepts 0x-prefixed hex (--seed). Rejects empty/garbage/trailing
/// junk, leading '-', and values above `max_value`.
[[nodiscard]] std::uint64_t parse_u64_flag(
    const char* flag, const std::string& text,
    std::uint64_t max_value = ~0ull, int base = 10);

/// Parse a finite double flag value (rejects empty/garbage/trailing
/// junk, inf/nan, and anything below `min_value`).
[[nodiscard]] double parse_double_flag(const char* flag,
                                       const std::string& text,
                                       double min_value = 0.0);

/// Parse an enumerated flag value: returns the index of `text` in
/// `choices` (exact, case-sensitive match). Anything else throws with the
/// flag name, the offending text, and the accepted spellings — so
/// `--lookahead-mode sideways` exits 2 instead of silently picking a
/// default.
[[nodiscard]] std::size_t parse_choice_flag(
    const char* flag, const std::string& text,
    std::initializer_list<const char*> choices);

}  // namespace paratick::core
