#include "core/cluster/cluster.hpp"

#include <algorithm>
#include <utility>

#include "core/experiment.hpp"
#include "sim/check.hpp"

namespace paratick::core {

namespace {

/// Salt for the per-VM guest seed stream ("vmse"), separate from the
/// per-host stream so adding hosts never perturbs guest draws.
constexpr std::uint64_t kVmSeedSalt = 0x766d7365;

/// Fold one incarnation's metrics into the global VM's roll-up: counters
/// and steal sum, distributions merge, completion is the latest one.
void merge_vm(metrics::VmResult& acc, const metrics::VmResult& inc) {
  acc.exits_total += inc.exits_total;
  acc.exits_timer_related += inc.exits_timer_related;
  for (std::size_t c = 0; c < hw::kExitCauseCount; ++c) {
    acc.exits_by_cause[c] += inc.exits_by_cause[c];
  }
  if (inc.completion_time) {
    acc.completion_time = acc.completion_time
                              ? std::max(*acc.completion_time, *inc.completion_time)
                              : *inc.completion_time;
  }
  acc.policy.ticks_handled += inc.policy.ticks_handled;
  acc.policy.virtual_ticks += inc.policy.virtual_ticks;
  acc.policy.msr_writes += inc.policy.msr_writes;
  acc.policy.msr_writes_avoided += inc.policy.msr_writes_avoided;
  acc.policy.idle_entries += inc.policy.idle_entries;
  acc.policy.idle_exits += inc.policy.idle_exits;
  acc.policy.busy_stops += inc.policy.busy_stops;
  acc.tick_intervals_us.merge(inc.tick_intervals_us);
  acc.task_blocks += inc.task_blocks;
  acc.task_wakes += inc.task_wakes;
  acc.wakeup_latency_us.merge(inc.wakeup_latency_us);
  acc.wakeup_latency_hist_us.merge(inc.wakeup_latency_hist_us);
  acc.io_errors += inc.io_errors;
  acc.steal_time += inc.steal_time;
  if (inc.steal_estimate) {
    acc.steal_estimate =
        acc.steal_estimate.value_or(sim::SimTime::zero()) + *inc.steal_estimate;
  }
}

}  // namespace

Cluster::Cluster(ClusterSpec spec) : spec_(std::move(spec)) {
  PARATICK_CHECK_MSG(spec_.hosts >= 1, "cluster needs at least one host");
  PARATICK_CHECK_MSG(spec_.vms_per_host >= 1, "cluster needs >= 1 VM per host");
  PARATICK_CHECK_MSG(spec_.vcpus_per_vm >= 1, "VMs need >= 1 vCPU");
  PARATICK_CHECK_MSG(spec_.duration > sim::SimTime::zero(),
                     "cluster duration must be > 0");
  PARATICK_CHECK_MSG(spec_.migration_blackout > sim::SimTime::zero(),
                     "migration blackout must be > 0 (it is the declared "
                     "cross-host link latency)");

  if (spec_.scheduler != nullptr) {
    scheduler_ = spec_.scheduler;
  } else {
    owned_scheduler_ = std::make_unique<GreedyStealScheduler>();
    scheduler_ = owned_scheduler_.get();
  }

  const int total_vms = spec_.hosts * spec_.vms_per_host;
  const std::vector<int> placement = scheduler_->place(spec_.hosts, total_vms);
  PARATICK_CHECK_MSG(placement.size() == static_cast<std::size_t>(total_vms),
                     "scheduler placement size mismatch");

  // Same shared-mode upgrade rule as make_system_spec: overcommitted
  // hosts (more vCPUs than pCPUs) need the time-sliced scheduler. A
  // rebalancing cluster gets it unconditionally — any migration can push
  // its destination past pCPU capacity, which pinned mode rejects.
  const bool can_migrate =
      spec_.hosts > 1 && spec_.rebalance_period > sim::SimTime::zero();
  hv::HostConfig host_template = spec_.host;
  if (can_migrate || static_cast<std::uint32_t>(spec_.vcpus_per_vm) *
                             static_cast<std::uint32_t>(spec_.vms_per_host) >
                         spec_.machine.total_cpus()) {
    host_template.sched_mode = hv::SchedMode::kShared;
  }

  // Per-host SystemSpecs, VMs in global-index order within each host.
  std::vector<SystemSpec> specs(static_cast<std::size_t>(spec_.hosts));
  for (int h = 0; h < spec_.hosts; ++h) {
    SystemSpec& sys = specs[static_cast<std::size_t>(h)];
    sys.machine = spec_.machine;
    sys.host = host_template;
    sys.host.seed = derive_seed(spec_.seed, static_cast<std::uint64_t>(h));
    sys.max_duration = spec_.duration;
    sys.stop_when_done = false;  // the cluster driver owns the event loop
  }
  vms_.resize(static_cast<std::size_t>(total_vms));
  for (int g = 0; g < total_vms; ++g) {
    const int h = placement[static_cast<std::size_t>(g)];
    PARATICK_CHECK_MSG(h >= 0 && h < spec_.hosts,
                       "scheduler placed a VM on a nonexistent host");
    SystemSpec& sys = specs[static_cast<std::size_t>(h)];
    vms_[static_cast<std::size_t>(g)].host = h;
    vms_[static_cast<std::size_t>(g)].local_index = sys.vms.size();
    sys.vms.push_back(make_vm_spec(g, h, 0));
  }
  for (int h = 0; h < spec_.hosts; ++h) {
    PARATICK_CHECK_MSG(!specs[static_cast<std::size_t>(h)].vms.empty(),
                       "initial placement left a host empty");
  }

  hosts_.reserve(static_cast<std::size_t>(spec_.hosts));
  for (int h = 0; h < spec_.hosts; ++h) {
    hosts_.push_back(
        std::make_unique<System>(std::move(specs[static_cast<std::size_t>(h)])));
  }

  if (spec_.hosts > 1) {
    fabric_ = std::make_unique<sim::ParallelEngine>(spec_.engine_threads);
    fabric_->set_lookahead_mode(spec_.lookahead_mode);
    fabric_->set_max_horizon_windows(spec_.max_horizon_windows);
    for (int h = 0; h < spec_.hosts; ++h) {
      fabric_->add_partition(hosts_[static_cast<std::size_t>(h)]->engine(),
                             "host" + std::to_string(h));
    }
    // The migration mesh is declared only when migrations can actually
    // happen: without links, partitions run each window at full speed
    // with no intra-window barriers.
    if (spec_.rebalance_period > sim::SimTime::zero()) {
      fabric_->declare_full_mesh(spec_.migration_blackout);
    }
    // The telemetry star: every other host streams load reports to the
    // coordinator over a dedicated tight link. These per-link latencies
    // are declared for what they are — under kGlobal lookahead the
    // tightest one collapses EVERY host's window, under kTopology only
    // host 0's inbound horizon tightens.
    if (spec_.telemetry_period > sim::SimTime::zero()) {
      PARATICK_CHECK_MSG(spec_.telemetry_latency > sim::SimTime::zero(),
                         "telemetry latency must be > 0 (it is a declared "
                         "link latency)");
      PARATICK_CHECK_MSG(spec_.telemetry_period >= spec_.telemetry_latency,
                         "telemetry period below the link latency would "
                         "queue unbounded in-flight reports");
      for (int h = 1; h < spec_.hosts; ++h) {
        fabric_->declare_link(static_cast<sim::PartitionId>(h), 0,
                              spec_.telemetry_latency);
        auto pump = std::make_unique<TelemetryPump>();
        pump->fabric = fabric_.get();
        pump->engine = &hosts_[static_cast<std::size_t>(h)]->engine();
        pump->src = static_cast<sim::PartitionId>(h);
        pump->period = spec_.telemetry_period;
        pump->latency = spec_.telemetry_latency;
        pump->until = spec_.duration;
        pump->received = &telemetry_received_;
        pump->arm();
        telemetry_pumps_.push_back(std::move(pump));
      }
    }
  }
}

void Cluster::TelemetryPump::arm() {
  if (engine->now() + period > until) return;
  engine->schedule_after(period, [this] {
    fabric->send(src, 0, latency, [r = received] { ++*r; });
    arm();
  });
}

Cluster::~Cluster() = default;

VmSpec Cluster::make_vm_spec(int global_vm, int host,
                             std::uint64_t incarnation) const {
  VmSpec vm;
  vm.vcpus = spec_.vcpus_per_vm;
  vm.guest = spec_.guest;
  // Pure in (seed, global VM, incarnation): a migrated VM's new kernel
  // draws an independent stream, whatever window the move happened in.
  vm.guest.seed = derive_seed(
      derive_seed(derive_seed(spec_.seed, kVmSeedSalt),
                  static_cast<std::uint64_t>(global_vm)),
      incarnation);
  vm.partition_key = static_cast<std::uint32_t>(host);
  if (spec_.workload) {
    vm.setup = [workload = spec_.workload, global_vm](guest::GuestKernel& k) {
      workload(k, global_vm);
    };
  }
  return vm;
}

void Cluster::rebalance_at_barrier() {
  ++rebalance_rounds_;

  // Scheduler input: what the guests themselves measured this window.
  std::vector<VmLoadView> views;
  views.reserve(vms_.size());
  for (std::size_t g = 0; g < vms_.size(); ++g) {
    GlobalVm& gv = vms_[g];
    if (!gv.live) continue;  // migration in flight; no kernel to sample
    const sim::SimTime est =
        hosts_[static_cast<std::size_t>(gv.host)]->kernel(gv.local_index).steal_estimate();
    VmLoadView v;
    v.global_vm = static_cast<int>(g);
    v.host = gv.host;
    v.steal_total = est;
    v.steal_delta = est - gv.last_steal_estimate;
    views.push_back(v);
    gv.last_steal_estimate = est;
  }

  const std::vector<Migration> migrations =
      scheduler_->rebalance(views, spec_.hosts);
  for (const Migration& mig : migrations) {
    PARATICK_CHECK_MSG(mig.global_vm >= 0 &&
                           mig.global_vm < static_cast<int>(vms_.size()),
                       "scheduler migrated a nonexistent VM");
    PARATICK_CHECK_MSG(mig.to_host >= 0 && mig.to_host < spec_.hosts,
                       "scheduler migrated to a nonexistent host");
    GlobalVm& gv = vms_[static_cast<std::size_t>(mig.global_vm)];
    if (!gv.live || mig.to_host == gv.host) continue;

    const int src = gv.host;
    System& src_sys = *hosts_[static_cast<std::size_t>(src)];
    System& dst_sys = *hosts_[static_cast<std::size_t>(mig.to_host)];

    // Stop-and-copy: park the source incarnation, burn the dirty-page
    // copy on both ends, and boot the next incarnation on the
    // destination one blackout later — carried as a regular fabric
    // message, so it obeys the declared link latency like any other
    // cross-host traffic.
    src_sys.freeze_vm(gv.local_index);
    src_sys.machine().cpu(0).charge_cycles(hw::CycleCategory::kHostKernel,
                                           spec_.migration_dirty_cycles);
    dst_sys.machine().cpu(0).charge_cycles(hw::CycleCategory::kHostKernel,
                                           spec_.migration_dirty_cycles);
    gv.past.emplace_back(src, gv.local_index);
    gv.live = false;
    gv.last_steal_estimate = sim::SimTime::zero();
    ++gv.migrations;
    ++migrations_;

    // Heap-allocated: a VmSpec is far larger than the engine's inline
    // callback capacity, and the boot callback outlives this frame.
    auto vspec = std::make_shared<const VmSpec>(
        make_vm_spec(mig.global_vm, mig.to_host, gv.migrations));
    GlobalVm* gvp = &gv;
    System* dst_ptr = &dst_sys;
    fabric_->send(static_cast<sim::PartitionId>(src),
                  static_cast<sim::PartitionId>(mig.to_host),
                  spec_.migration_blackout,
                  [dst_ptr, vspec, gvp, to = mig.to_host] {
                    gvp->local_index = dst_ptr->attach_vm_live(*vspec);
                    gvp->host = to;
                    gvp->live = true;
                  });
  }
}

ClusterResult Cluster::run() {
  PARATICK_CHECK_MSG(!ran_, "Cluster may only run once");
  ran_ = true;

  for (auto& h : hosts_) h->power_on();

  if (fabric_ == nullptr) {
    // Single host: drive the engine directly. Byte-identical to an
    // equivalent plain System run — the cluster adds no events.
    hosts_.front()->engine().run_until(spec_.duration);
    return collect();
  }

  const bool barriers = spec_.rebalance_period > sim::SimTime::zero();
  const sim::SimTime step = barriers ? spec_.rebalance_period : spec_.duration;
  sim::SimTime t = sim::SimTime::zero();
  while (t < spec_.duration) {
    const sim::SimTime next = std::min(t + step, spec_.duration);
    fabric_->run_until(next);
    t = next;
    if (barriers && t < spec_.duration) rebalance_at_barrier();
  }
  return collect();
}

ClusterResult Cluster::collect() {
  ClusterResult out;
  out.hosts.reserve(hosts_.size());
  for (auto& h : hosts_) out.hosts.push_back(h->finish());

  metrics::RunResult& m = out.merged;
  for (const metrics::RunResult& hr : out.hosts) {
    m.wall = std::max(m.wall, hr.wall);
    m.cycles.merge(hr.cycles);
    m.exits_total += hr.exits_total;
    m.exits_timer_related += hr.exits_timer_related;
    for (std::size_t c = 0; c < hw::kExitCauseCount; ++c) {
      m.exits_by_cause[c] += hr.exits_by_cause[c];
    }
    m.events_executed += hr.events_executed;
    m.events_scheduled += hr.events_scheduled;
    m.events_cancelled += hr.events_cancelled;
    m.callback_spills += hr.callback_spills;
    m.callback_spill_bytes += hr.callback_spill_bytes;
    m.slot_high_water = std::max(m.slot_high_water, hr.slot_high_water);
    m.queue_compactions += hr.queue_compactions;
    m.engine_wall_ns += hr.engine_wall_ns;
  }

  // One merged VmResult per global VM, incarnations in chronological
  // order. Each migration contributes one blackout-sized wake-latency
  // sample: the frozen tenant resumes exactly that much later.
  m.vms.reserve(vms_.size());
  for (const GlobalVm& gv : vms_) {
    metrics::VmResult acc;
    for (const auto& [h, local] : gv.past) {
      merge_vm(acc, out.hosts[static_cast<std::size_t>(h)].vms[local]);
    }
    if (gv.live) {
      merge_vm(acc,
               out.hosts[static_cast<std::size_t>(gv.host)].vms[gv.local_index]);
    }
    for (std::uint64_t i = 0; i < gv.migrations; ++i) {
      const double blackout_us = spec_.migration_blackout.microseconds();
      acc.wakeup_latency_us.add(blackout_us);
      acc.wakeup_latency_hist_us.add(blackout_us);
    }
    m.vms.push_back(std::move(acc));
  }

  out.placement.reserve(vms_.size());
  for (const GlobalVm& gv : vms_) out.placement.push_back(gv.host);
  out.migrations = migrations_;
  out.rebalance_rounds = rebalance_rounds_;
  out.telemetry_received = telemetry_received_;
  if (fabric_ != nullptr) {
    out.profile = fabric_->profile();
    out.state_digest = fabric_->state_digest();
    // Window counters ride the merged RunResult into the sweep pipeline
    // (run records -> cell accumulators -> sweep JSON / --profile table).
    // They are deterministic for a fixed lookahead mode at any thread
    // count — but differ BETWEEN modes, which is why the byte-identity
    // gates compare CSV artifacts, not these.
    m.par_windows = out.profile.quanta;
    m.par_windows_skipped = out.profile.windows_skipped;
    m.par_barriers_elided = out.profile.barriers_elided;
    m.par_horizon_max_ns = out.profile.horizon_max_ns;
  }
  return out;
}

}  // namespace paratick::core
