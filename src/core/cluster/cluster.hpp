// The cluster layer: N hosts × M VMs under one simulated clock.
//
// Each host is a self-contained core::System — its own engine, machine
// and hypervisor, with the host boundary doubling as the parallel
// engine's partition boundary, so `--engine-threads N` parallelizes a
// cluster run across hosts. The cluster driver owns the event loop: it
// advances all hosts in lockstep windows of `rebalance_period`, and at
// each window barrier feeds the guests' own steal-time estimates (never
// hypervisor ground truth) to a pluggable ClusterScheduler, executing
// the migrations it returns.
//
// Live migration is modeled as its two dominant costs: a stop-and-copy
// blackout carried over the declared cross-host fabric link (the VM is
// frozen on the source, and boots its next incarnation on the
// destination one blackout later) and a dirty-page copy charge burned
// as host-kernel cycles on both ends. The blackout also lands in the
// merged VM's wake-latency distribution — a migrated tenant observes it
// exactly like a very late wakeup.
//
// Determinism: host seeds and per-VM guest seeds are pure in
// (spec.seed, host / global VM index); scheduler inputs are read at
// barriers from committed state; migrations travel as ordinary
// cross-partition messages. Every result field except the profile's
// wall_ns is therefore bit-identical for any engine-thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/cluster/scheduler.hpp"
#include "core/system.hpp"
#include "metrics/run_metrics.hpp"
#include "sim/parallel/parallel_engine.hpp"

namespace paratick::core {

struct ClusterSpec {
  int hosts = 2;
  int vms_per_host = 2;
  int vcpus_per_vm = 1;
  /// Per-host physical machine. Size it below vms_per_host * vcpus_per_vm
  /// for overcommit; the host scheduler upgrades to shared mode then.
  hw::MachineSpec machine = hw::MachineSpec::small(2);
  hv::HostConfig host;       // template; per-host seed derived from `seed`
  guest::GuestConfig guest;  // template; per-VM seed derived from `seed`
  /// Installs the workload into each (re)booted guest kernel; called with
  /// the VM's global index. Workloads should run to an absolute horizon
  /// (e.g. workload::install_tenant_traffic) so migrated incarnations
  /// resume the remaining load instead of starting over.
  std::function<void(guest::GuestKernel&, int global_vm)> workload;
  sim::SimTime duration = sim::SimTime::ms(200);
  std::uint64_t seed = 1;
  /// Worker threads in the parallel engine (hosts > 1 only): 1 = inline
  /// reference order, 0 = hardware_concurrency. Results are identical
  /// for any value.
  unsigned engine_threads = 1;

  /// Rebalance barrier period; zero = place once, never rebalance.
  sim::SimTime rebalance_period;
  /// Non-owning; must outlive the Cluster. Null = a default
  /// GreedyStealScheduler owned by the cluster.
  ClusterScheduler* scheduler = nullptr;
  /// Stop-and-copy blackout: the frozen VM's resume delay, and the
  /// declared cross-host migration-link latency.
  sim::SimTime migration_blackout = sim::SimTime::us(500);
  /// Dirty-page copy cost, charged as host-kernel cycles on both hosts.
  sim::Cycles migration_dirty_cycles{2'000'000};

  /// Window-bound derivation for the cross-host fabric. Results are
  /// identical either way; only the window counters in the profile
  /// differ — kTopology keeps hosts on their own per-link horizons
  /// instead of the global minimum latency.
  sim::LookaheadMode lookahead_mode = sim::LookaheadMode::kGlobal;
  /// kTopology horizon cap in global quanta (0 = unbounded).
  std::uint64_t max_horizon_windows = 64;
  /// Heterogeneous-link telemetry (hosts > 1): when > 0, every host
  /// except host 0 streams a periodic load report to host 0 over a
  /// dedicated low-latency link. That one tight one-directional star is
  /// the topology the global quantum collapses under — and exactly where
  /// kTopology horizons win, because the tight links all point AT the
  /// coordinator while everyone else still enjoys the slow mesh.
  sim::SimTime telemetry_period;  // zero = no telemetry traffic
  /// Declared latency of the telemetry links (must be <= the period).
  sim::SimTime telemetry_latency = sim::SimTime::us(50);
};

struct ClusterResult {
  /// Cluster-wide roll-up: host counters summed, one VmResult per GLOBAL
  /// VM with its incarnations merged (exits and steal summed, latency
  /// distributions merged, one blackout-sized wake sample per migration).
  metrics::RunResult merged;
  std::vector<metrics::RunResult> hosts;  // per-host results, host order
  std::vector<int> placement;             // final host of each global VM
  std::uint64_t migrations = 0;
  std::uint64_t rebalance_rounds = 0;
  /// Load reports host 0 received over the telemetry star (0 when
  /// telemetry_period was 0).
  std::uint64_t telemetry_received = 0;
  /// Parallel-engine identity (hosts > 1): digest is thread- and
  /// lookahead-mode-invariant, profile.wall_ns is not, and the profile's
  /// window counters depend on the lookahead mode.
  std::uint64_t state_digest = 0;
  sim::ParallelProfile profile;
};

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Drive the cluster to spec.duration and collect. Call once.
  [[nodiscard]] ClusterResult run();

  [[nodiscard]] int host_count() const { return static_cast<int>(hosts_.size()); }
  [[nodiscard]] System& host(int h) { return *hosts_[static_cast<std::size_t>(h)]; }

 private:
  /// Where one global VM currently lives, plus its history.
  struct GlobalVm {
    int host = 0;
    std::size_t local_index = 0;  // index into that host System's VMs
    bool live = true;             // false while a migration is in flight
    /// Finished incarnations (host, local index) in chronological order.
    std::vector<std::pair<int, std::size_t>> past;
    sim::SimTime last_steal_estimate;  // estimate at the previous barrier
    std::uint64_t migrations = 0;
  };

  /// Self-rescheduling load-report sender living on one host's engine:
  /// every period it buffers a telemetry message to host 0 over the tight
  /// star link. The counter bump runs inside host 0's partition, so no
  /// other thread ever touches it mid-run.
  struct TelemetryPump {
    sim::ParallelEngine* fabric = nullptr;
    sim::Engine* engine = nullptr;
    sim::PartitionId src = 0;
    sim::SimTime period;
    sim::SimTime latency;
    sim::SimTime until;
    std::uint64_t* received = nullptr;
    void arm();
  };

  [[nodiscard]] VmSpec make_vm_spec(int global_vm, int host,
                                    std::uint64_t incarnation) const;
  void rebalance_at_barrier();
  [[nodiscard]] ClusterResult collect();

  ClusterSpec spec_;
  std::unique_ptr<ClusterScheduler> owned_scheduler_;
  ClusterScheduler* scheduler_ = nullptr;
  std::vector<std::unique_ptr<System>> hosts_;
  std::vector<GlobalVm> vms_;
  std::unique_ptr<sim::ParallelEngine> fabric_;  // hosts > 1 only
  std::vector<std::unique_ptr<TelemetryPump>> telemetry_pumps_;
  std::uint64_t telemetry_received_ = 0;
  std::uint64_t rebalance_rounds_ = 0;
  std::uint64_t migrations_ = 0;
  bool ran_ = false;
};

}  // namespace paratick::core
