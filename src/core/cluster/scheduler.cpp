#include "core/cluster/scheduler.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace paratick::core {

std::vector<int> GreedyStealScheduler::place(int hosts, int global_vms) {
  PARATICK_CHECK_MSG(hosts >= 1 && global_vms >= hosts,
                     "placement needs at least one VM per host");
  std::vector<int> out(static_cast<std::size_t>(global_vms));
  for (int g = 0; g < global_vms; ++g) out[static_cast<std::size_t>(g)] = g % hosts;
  return out;
}

std::vector<Migration> GreedyStealScheduler::rebalance(
    const std::vector<VmLoadView>& vms, int hosts) {
  std::vector<Migration> out;
  if (hosts < 2 || vms.empty()) return out;

  // Work on a copy of the per-host load we can update as we commit
  // migrations, so one round never stacks every move on the same target.
  std::vector<sim::SimTime> host_steal(static_cast<std::size_t>(hosts));
  std::vector<int> host_vms(static_cast<std::size_t>(hosts), 0);
  for (const VmLoadView& v : vms) {
    host_steal[static_cast<std::size_t>(v.host)] += v.steal_delta;
    ++host_vms[static_cast<std::size_t>(v.host)];
  }
  std::vector<bool> moved(vms.size(), false);

  for (int round = 0; round < config_.max_migrations_per_round; ++round) {
    int hot = 0;
    int cool = 0;
    for (int h = 1; h < hosts; ++h) {
      const auto hs = static_cast<std::size_t>(h);
      if (host_steal[hs] > host_steal[static_cast<std::size_t>(hot)]) hot = h;
      if (host_steal[hs] < host_steal[static_cast<std::size_t>(cool)]) cool = h;
    }
    if (hot == cool) break;
    if (host_steal[static_cast<std::size_t>(hot)] -
            host_steal[static_cast<std::size_t>(cool)] <
        config_.min_imbalance) {
      break;
    }
    // Keep every host populated: a drained host would stop contributing
    // contention signal and the next placement round could not refill it.
    if (host_vms[static_cast<std::size_t>(hot)] <= 1) break;

    // The hot host's most-stolen VM benefits the most from moving (and
    // removes the most pressure from the VMs staying behind).
    int pick = -1;
    for (std::size_t i = 0; i < vms.size(); ++i) {
      if (moved[i] || vms[i].host != hot) continue;
      if (pick < 0 ||
          vms[i].steal_delta > vms[static_cast<std::size_t>(pick)].steal_delta) {
        pick = static_cast<int>(i);
      }
    }
    if (pick < 0) break;
    const VmLoadView& victim = vms[static_cast<std::size_t>(pick)];
    out.push_back({victim.global_vm, cool});
    moved[static_cast<std::size_t>(pick)] = true;
    host_steal[static_cast<std::size_t>(hot)] -= victim.steal_delta;
    host_steal[static_cast<std::size_t>(cool)] += victim.steal_delta;
    --host_vms[static_cast<std::size_t>(hot)];
    ++host_vms[static_cast<std::size_t>(cool)];
  }
  return out;
}

}  // namespace paratick::core
