// Pluggable cluster scheduling: initial VM placement plus periodic
// steal-aware rebalancing decisions.
//
// The scheduler never sees hypervisor ground truth. Its load signal is
// the guest-side steal estimate (guest/steal_estimator.hpp) sampled at
// rebalance barriers — the same information a real cloud operator gets
// from tenant kernels on hardware without a paravirtual steal clock.
// Decisions are pure functions of the views handed in, which keeps
// cluster runs bit-identical across engine-thread counts and backends.
#pragma once

#include <vector>

#include "sim/types.hpp"

namespace paratick::core {

/// One live VM's load signal at a rebalance barrier.
struct VmLoadView {
  int global_vm = 0;
  int host = 0;
  /// Guest steal estimate gained since the previous barrier (this
  /// incarnation only; resets to zero after a migration).
  sim::SimTime steal_delta;
  /// Cumulative guest steal estimate of the current incarnation.
  sim::SimTime steal_total;
};

/// A scheduler decision: move `global_vm` to `to_host`.
struct Migration {
  int global_vm = 0;
  int to_host = 0;
};

class ClusterScheduler {
 public:
  virtual ~ClusterScheduler() = default;

  /// Initial placement: host index for each of `global_vms` VMs, values
  /// in [0, hosts). Every host must receive at least one VM.
  [[nodiscard]] virtual std::vector<int> place(int hosts, int global_vms) = 0;

  /// Called at every rebalance barrier with the live VMs' load views
  /// (in-flight migrations excluded). Returned migrations are applied in
  /// order; entries naming a VM's current host are ignored.
  [[nodiscard]] virtual std::vector<Migration> rebalance(
      const std::vector<VmLoadView>& vms, int hosts) = 0;
};

/// Default policy: round-robin placement, then greedy consolidation —
/// when the most-stolen host's per-window steal exceeds the least-stolen
/// host's by `min_imbalance`, move the most-stolen VM off the hot host.
class GreedyStealScheduler final : public ClusterScheduler {
 public:
  struct Config {
    /// Minimum (hottest host − coolest host) per-window steal gap before
    /// a migration is worth its blackout + dirty-page cost.
    sim::SimTime min_imbalance = sim::SimTime::ms(1);
    int max_migrations_per_round = 1;
  };

  GreedyStealScheduler() = default;
  explicit GreedyStealScheduler(Config config) : config_(config) {}

  [[nodiscard]] std::vector<int> place(int hosts, int global_vms) override;
  [[nodiscard]] std::vector<Migration> rebalance(
      const std::vector<VmLoadView>& vms, int hosts) override;

 private:
  Config config_;
};

}  // namespace paratick::core
