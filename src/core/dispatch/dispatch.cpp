#include "core/dispatch/dispatch.hpp"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <csignal>
#include <cstdio>
#include <deque>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/safe_io.hpp"
#include "core/sweep_shard.hpp"
#include "sim/check.hpp"
#include "sim/error.hpp"

namespace paratick::core::dispatch {

namespace {

double monotonic_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The whole coordinator lives in one stack object so that any exception
/// unwinding out of run() reaps every child on the way.
class Coordinator {
 public:
  Coordinator(WorkerTransport& transport, const DispatchOptions& opts,
              SweepDispatcher::Stats& stats)
      : transport_(transport), opts_(opts), stats_(stats) {}

  ~Coordinator() {
    for (Active& w : active_) {
      if (w.proc.pid > 0) ::kill(w.proc.pid, SIGKILL);
      reap(w);
    }
  }

  SweepResult run() {
    // Writing #limit to a worker that died must not kill the coordinator.
    ::signal(SIGPIPE, SIG_IGN);

    const double start = monotonic_sec();
    plan_ = transport_.plan();
    const std::size_t total = plan_.total_runs;
    PARATICK_CHECK_MSG(
        total == plan_.cells.size() * static_cast<std::size_t>(plan_.repeat),
        "dispatch: plan header is inconsistent (cells * repeat != runs)");

    runs_.resize(total);
    done_.assign(total, false);
    attempts_.assign(total, 0);
    stamp_identities();
    resume_from_checkpoint();
    for (std::size_t i = 0; i < total; ++i) {
      if (!done_[i]) pending_.push_back({i, 0.0});
    }

    while (done_count_ < total) {
      const double now = monotonic_sec();
      fill_slots(now);
      maybe_steal(now);
      if (active_.empty()) {
        // Everything unfinished is waiting out a retry backoff.
        ::poll(nullptr, 0, 20);
        continue;
      }
      poll_workers(now);
      expire_leases(monotonic_sec());
      maybe_checkpoint(monotonic_sec(), /*force=*/false);
    }

    // Steal races can leave workers re-executing runs someone else already
    // delivered; their records are no longer needed.
    for (Active& w : active_) {
      ::kill(w.proc.pid, SIGKILL);
      reap(w);
    }
    active_.clear();
    maybe_checkpoint(monotonic_sec(), /*force=*/true);

    SweepResult res;
    res.backend_name = "dispatch";
    res.threads_used = opts_.workers;
    res.cells.reserve(plan_.cells.size());
    for (const SweepCellKey& key : plan_.cells) {
      SweepCellSummary cell;
      cell.key = key;
      res.cells.push_back(std::move(cell));
    }
    res.runs = std::move(runs_);
    aggregate_sweep_runs(res);
    res.wall_seconds = monotonic_sec() - start;
    return res;
  }

 private:
  struct Pending {
    std::size_t idx = 0;
    double eligible_at = 0.0;  // retry backoff gate; 0 = now
  };

  struct Active {
    WorkerProcess proc;
    std::vector<std::size_t> slice;     // assignment, executed in order
    std::size_t limit = 0;              // effective end (stealing shrinks it)
    std::size_t records_seen = 0;       // record lines received
    std::optional<std::size_t> current; // announced in-flight run
    std::string buf;                    // partial protocol line
    double last_activity = 0.0;
    bool got_plan = false;
    bool lease_expired = false;
    bool protocol_error = false;
    int status = 0;  // waitpid status, valid after reap()
  };

  void note(const char* fmt, ...) const __attribute__((format(printf, 2, 3))) {
    if (!opts_.progress) return;
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "dispatch: ");
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
  }

  void stamp_identities() {
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      SweepRun& r = runs_[i];
      r.run_index = i;
      r.cell = i / static_cast<std::size_t>(plan_.repeat);
      r.replica = static_cast<int>(i % static_cast<std::size_t>(plan_.repeat));
      r.seed = derive_seed(plan_.root_seed, i);
    }
  }

  void resume_from_checkpoint() {
    if (opts_.checkpoint_path.empty()) return;
    if (::access(opts_.checkpoint_path.c_str(), F_OK) != 0) return;
    PartialSnapshot snap;
    try {
      snap = load_partial_snapshot(opts_.checkpoint_path);
    } catch (const sim::SimError& e) {
      std::fprintf(stderr,
                   "dispatch: ignoring unreadable checkpoint: %s\n",
                   e.msg().c_str());
      return;
    }
    PlanInfo ckpt;
    ckpt.root_seed = snap.root_seed;
    ckpt.repeat = snap.repeat;
    ckpt.total_runs = snap.total_runs;
    ckpt.cells = snap.cells;
    std::string why;
    if (!plans_match(plan_, ckpt, &why)) {
      std::fprintf(stderr,
                   "dispatch: checkpoint %s belongs to a different sweep "
                   "(%s differs); starting fresh\n",
                   opts_.checkpoint_path.c_str(), why.c_str());
      return;
    }
    for (const SweepRun& run : snap.runs) {
      if (run.run_index >= runs_.size() || !run.executed) continue;
      if (done_[run.run_index]) continue;
      runs_[run.run_index] = run;
      done_[run.run_index] = true;
      ++done_count_;
      ++stats_.runs_resumed;
    }
    note("resumed %zu/%zu runs from %s", stats_.runs_resumed, runs_.size(),
         opts_.checkpoint_path.c_str());
  }

  void maybe_checkpoint(double now, bool force) {
    if (opts_.checkpoint_path.empty()) return;
    if (!force && (!checkpoint_dirty_ ||
                   now - last_checkpoint_ < opts_.checkpoint_interval_sec)) {
      return;
    }
    if (force && !checkpoint_dirty_) return;
    PartialSnapshot snap;
    snap.bench = opts_.bench_name;
    snap.root_seed = plan_.root_seed;
    snap.repeat = plan_.repeat;
    snap.total_runs = runs_.size();
    snap.backend = "dispatch";
    snap.cells = plan_.cells;
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      if (done_[i]) snap.runs.push_back(runs_[i]);
    }
    (void)write_partial_snapshot(snap, opts_.checkpoint_path);
    checkpoint_dirty_ = false;
    last_checkpoint_ = now;
  }

  void fill_slots(double now) {
    while (active_.size() < opts_.workers) {
      std::vector<std::size_t> eligible;
      for (const Pending& p : pending_) {
        if (p.eligible_at <= now) eligible.push_back(p.idx);
      }
      if (eligible.empty()) return;
      const std::size_t free_slots = opts_.workers - active_.size();
      const std::size_t take =
          (eligible.size() + free_slots - 1) / free_slots;
      eligible.resize(take);
      for (const std::size_t idx : eligible) {
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
          if (it->idx == idx) {
            pending_.erase(it);
            break;
          }
        }
      }
      Active w;
      w.proc = transport_.launch(eligible);
      w.slice = std::move(eligible);
      w.limit = w.slice.size();
      w.last_activity = now;
      ++stats_.workers_launched;
      note("worker %d <- %zu runs [%zu..%zu]", static_cast<int>(w.proc.pid),
           w.slice.size(), w.slice.front(), w.slice.back());
      active_.push_back(std::move(w));
    }
  }

  void maybe_steal(double now) {
    if (!opts_.steal || active_.size() >= opts_.workers) return;
    for (const Pending& p : pending_) {
      if (p.eligible_at <= now) return;  // real work is ready; no need
    }
    // Victim: the worker with the most unstarted assigned work.
    Active* victim = nullptr;
    std::size_t best = 0;
    for (Active& w : active_) {
      if (w.proc.ctl_fd < 0) continue;  // transport without a control line
      const std::size_t next_pos = w.records_seen + (w.current ? 1 : 0);
      const std::size_t end = std::min(w.limit, w.slice.size());
      const std::size_t stealable = end > next_pos ? end - next_pos : 0;
      if (stealable >= 2 && stealable > best) {
        best = stealable;
        victim = &w;
      }
    }
    if (victim == nullptr) return;
    const std::size_t next_pos =
        victim->records_seen + (victim->current ? 1 : 0);
    const std::size_t keep = (best + 1) / 2;
    const std::size_t new_limit = next_pos + keep;
    const std::string msg = "#limit " + std::to_string(new_limit) + "\n";
    (void)write_all(victim->proc.ctl_fd, msg.data(), msg.size());
    std::vector<std::size_t> stolen;
    for (std::size_t k = new_limit; k < std::min(victim->limit,
                                                 victim->slice.size());
         ++k) {
      if (!done_[victim->slice[k]]) stolen.push_back(victim->slice[k]);
    }
    victim->limit = new_limit;
    if (stolen.empty()) return;
    ++stats_.steals;
    stats_.stolen_indices += stolen.size();
    note("stole %zu runs from worker %d", stolen.size(),
         static_cast<int>(victim->proc.pid));
    // Front of the queue, original order: the thief picks them up next.
    for (auto it = stolen.rbegin(); it != stolen.rend(); ++it) {
      pending_.push_front({*it, 0.0});
    }
  }

  void poll_workers(double now) {
    std::vector<pollfd> fds;
    fds.reserve(active_.size());
    for (const Active& w : active_) {
      fds.push_back({w.proc.out_fd, POLLIN, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0) {
      PARATICK_CHECK_MSG(errno == EINTR, "dispatch: poll() failed");
      return;
    }
    // Iterate by index over a stable snapshot; finalize() erases from
    // active_, so collect the dead first.
    std::vector<std::size_t> dead;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Active& w = active_[i];
      char buf[1 << 16];
      const ssize_t got = read_retry(w.proc.out_fd, buf, sizeof buf);
      if (got <= 0) {
        dead.push_back(i);
        continue;
      }
      w.buf.append(buf, static_cast<std::size_t>(got));
      w.last_activity = now;
      std::size_t nl;
      while ((nl = w.buf.find('\n')) != std::string::npos) {
        const std::string line = w.buf.substr(0, nl);
        w.buf.erase(0, nl + 1);
        process_line(w, line);
        if (w.protocol_error) break;
      }
    }
    for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
      finalize(*it);
    }
  }

  void process_line(Active& w, const std::string& line) {
    if (line.empty()) return;
    if (line[0] == '{') {
      SweepRun run;
      try {
        run = parse_run_record(line);
      } catch (const sim::SimError& e) {
        // A worker emitting garbage is as dead as one emitting nothing:
        // kill it and let the EOF path requeue its work.
        std::fprintf(stderr,
                     "dispatch: worker %d sent a corrupt record (%s); "
                     "killing it\n",
                     static_cast<int>(w.proc.pid), e.msg().c_str());
        w.protocol_error = true;
        ::kill(w.proc.pid, SIGKILL);
        return;
      }
      ++w.records_seen;
      if (w.current && *w.current == run.run_index) w.current.reset();
      ++stats_.records_received;
      accept_record(run);
      if (opts_.test_kill_after != 0 && !test_killed_ &&
          stats_.records_received >= opts_.test_kill_after) {
        test_killed_ = true;
        note("test hook: SIGKILL worker %d after record %zu",
             static_cast<int>(w.proc.pid), stats_.records_received);
        ::kill(w.proc.pid, SIGKILL);
      }
      return;
    }
    if (line.rfind("#plan ", 0) == 0) {
      PlanInfo theirs;
      try {
        theirs = parse_plan_info(line.substr(6));
      } catch (const sim::SimError& e) {
        const std::string msg =
            "dispatch: worker sent an unparseable #plan header: " + e.msg();
        PARATICK_CHECK_MSG(false, msg.c_str());
      }
      std::string why;
      if (!plans_match(plan_, theirs, &why)) {
        const std::string msg =
            "dispatch: worker " + std::to_string(w.proc.pid) +
            " disagrees with the coordinator about the sweep (" + why +
            ") — all fleet hosts must run the same binary with the same "
            "grid flags";
        PARATICK_CHECK_MSG(false, msg.c_str());
      }
      w.got_plan = true;
      return;
    }
    if (line.rfind("#run ", 0) == 0) {
      w.current = static_cast<std::size_t>(
          std::strtoull(line.c_str() + 5, nullptr, 10));
      return;
    }
    // "#hb", "#end", transport banner noise: lease renewal already
    // happened on byte arrival; nothing else to do.
  }

  void accept_record(const SweepRun& run) {
    const std::size_t idx = run.run_index;
    if (idx >= runs_.size()) return;  // corrupt-but-parseable; drop
    if (done_[idx]) {
      ++stats_.duplicate_records;
      // Identical by determinism; prefer an ok record over a degraded one
      // in case a synthesized crash raced a late completion.
      if (run.ok && !runs_[idx].ok) runs_[idx] = run;
      return;
    }
    runs_[idx] = run;
    runs_[idx].executed = true;
    done_[idx] = true;
    ++done_count_;
    checkpoint_dirty_ = true;
    // Steal races: someone else may still have this queued.
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->idx == idx) {
        pending_.erase(it);
        break;
      }
    }
  }

  void reap(Active& w) {
    if (w.proc.out_fd >= 0) ::close(w.proc.out_fd);
    if (w.proc.ctl_fd >= 0) ::close(w.proc.ctl_fd);
    w.proc.out_fd = w.proc.ctl_fd = -1;
    if (w.proc.pid > 0) {
      while (::waitpid(w.proc.pid, &w.status, 0) < 0 && errno == EINTR) {
      }
      w.proc.pid = -1;
    }
  }

  void finalize(std::size_t slot) {
    Active w = std::move(active_[slot]);
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(slot));
    reap(w);
    const bool clean = !w.protocol_error && !w.lease_expired &&
                       WIFEXITED(w.status) && WEXITSTATUS(w.status) == 0;

    // Transport sanity: workers that die without ever speaking the
    // protocol (exec failure, wrong binary) would otherwise respawn until
    // every run burned its retries.
    if (!w.got_plan) {
      if (++barren_deaths_ >= 3) {
        PARATICK_CHECK_MSG(
            false,
            "dispatch: 3 consecutive workers died without a #plan header — "
            "the worker command is broken (exec failure or not a SweepCli "
            "binary), not the runs");
      }
    } else {
      barren_deaths_ = 0;
    }

    const std::size_t end = std::min(w.limit, w.slice.size());
    const std::size_t next_pos = std::min(w.records_seen, end);
    std::vector<std::size_t> outstanding;
    for (std::size_t k = next_pos; k < end; ++k) {
      if (!done_[w.slice[k]]) outstanding.push_back(w.slice[k]);
    }

    if (clean) {
      if (outstanding.empty()) return;
      // Clean exit but records are missing (worker stopped early without
      // being truncated): penalize so a chronically lazy worker cannot
      // spin the sweep forever.
      note("worker exited cleanly but left %zu runs unexecuted",
           outstanding.size());
      for (const std::size_t idx : outstanding) requeue(idx, true);
      return;
    }

    ++stats_.workers_died;
    const std::size_t in_flight =
        w.current && !done_[*w.current] ? *w.current
                                        : static_cast<std::size_t>(-1);
    note("worker died (%s)%s: %zu runs back to the queue",
         w.lease_expired ? "lease expired" : "unclean exit",
         in_flight != static_cast<std::size_t>(-1) ? " mid-run" : "",
         outstanding.size());
    // The in-flight run is charged with the death (it may be the poison
    // pill); the untouched tail re-enqueues penalty-free at the front so
    // run-index locality survives crashes, as in the fork backend.
    std::vector<std::size_t> tail;
    for (const std::size_t idx : outstanding) {
      if (idx != in_flight) tail.push_back(idx);
    }
    for (auto it = tail.rbegin(); it != tail.rend(); ++it) {
      pending_.push_front({*it, 0.0});
    }
    if (in_flight != static_cast<std::size_t>(-1)) requeue(in_flight, true);
  }

  void requeue(std::size_t idx, bool penalized) {
    if (done_[idx]) return;
    if (penalized) {
      ++attempts_[idx];
      ++stats_.retries;
    }
    if (attempts_[idx] > opts_.max_retries) {
      degrade(idx);
      return;
    }
    double delay = 0.0;
    if (penalized && opts_.retry_backoff_sec > 0.0) {
      const unsigned exp = std::min(attempts_[idx] - 1u, 6u);
      delay = opts_.retry_backoff_sec * static_cast<double>(1u << exp);
      // Deterministic jitter in [1.0, 1.5): de-synchronizes fleet retries
      // without making the schedule depend on wall time.
      const std::uint64_t j =
          derive_seed(plan_.root_seed + idx, attempts_[idx]) % 1000;
      delay *= 1.0 + static_cast<double>(j) / 2000.0;
    }
    pending_.push_back({idx, delay > 0.0 ? monotonic_sec() + delay : 0.0});
  }

  void degrade(std::size_t idx) {
    SweepRun run;
    run.run_index = idx;
    run.cell = idx / static_cast<std::size_t>(plan_.repeat);
    run.replica = static_cast<int>(idx % static_cast<std::size_t>(plan_.repeat));
    run.seed = derive_seed(plan_.root_seed, idx);
    run.executed = true;
    run.ok = false;
    RunFailure f;
    f.kind = RunFailure::Kind::kCrash;
    f.message =
        "dispatch: abandoned after " + std::to_string(attempts_[idx]) +
        " failed attempts (worker crashes or expired leases); the cell is "
        "degraded, not the sweep";
    run.failure = std::move(f);
    if (opts_.bundle_writer) opts_.bundle_writer(run);
    ++stats_.runs_degraded;
    note("run %zu degraded after %u attempts", idx, attempts_[idx]);
    accept_record(run);
  }

  void expire_leases(double now) {
    if (opts_.lease_sec <= 0.0) return;
    for (Active& w : active_) {
      if (w.lease_expired) continue;
      if (now - w.last_activity <= opts_.lease_sec) continue;
      w.lease_expired = true;
      ++stats_.leases_expired;
      note("lease expired on worker %d (silent %.1fs); killing it",
           static_cast<int>(w.proc.pid), now - w.last_activity);
      ::kill(w.proc.pid, SIGKILL);
    }
  }

  WorkerTransport& transport_;
  const DispatchOptions& opts_;
  SweepDispatcher::Stats& stats_;

  PlanInfo plan_;
  std::vector<SweepRun> runs_;
  std::vector<bool> done_;
  std::vector<unsigned> attempts_;
  std::deque<Pending> pending_;
  std::vector<Active> active_;
  std::size_t done_count_ = 0;
  std::size_t barren_deaths_ = 0;
  bool test_killed_ = false;
  bool checkpoint_dirty_ = false;
  double last_checkpoint_ = 0.0;
};

}  // namespace

SweepDispatcher::SweepDispatcher(std::unique_ptr<WorkerTransport> transport,
                                 DispatchOptions opts)
    : transport_(std::move(transport)), opts_(std::move(opts)) {
  PARATICK_CHECK_MSG(transport_ != nullptr, "dispatch: null transport");
  if (opts_.workers == 0) opts_.workers = 1;
}

SweepResult SweepDispatcher::run() {
  PARATICK_CHECK_MSG(!ran_, "dispatch: run() is one-shot");
  ran_ = true;
  Coordinator c(*transport_, opts_, stats_);
  return c.run();
}

}  // namespace paratick::core::dispatch
