// Fault-tolerant sweep dispatcher: lease-based slice ownership, work
// stealing, retry with backoff, and graceful degradation.
//
// The coordinator owns the full run-index space of one sweep plan and
// hands contiguous slices to workers launched through a WorkerTransport.
// Supervision is a single-threaded poll() loop over the workers' protocol
// streams (core/dispatch/protocol.hpp):
//
//   lease       any protocol traffic (records, #run announcements, #hb
//               heartbeats) renews a worker's lease; a worker silent for
//               --lease seconds is presumed wedged, SIGKILLed, and its
//               unfinished work re-enqueued.
//   attribution an unclean death charges exactly the announced in-flight
//               run (retry with exponential backoff + deterministic
//               jitter); the untouched tail re-enqueues penalty-free at
//               the queue front — same rules as the fork backend.
//   stealing    when the queue is empty but slots are free, the idle slot
//               steals the back half of the busiest worker's remaining
//               slice (a #limit line truncates the victim). The victim
//               may already be past the limit when it lands — both sides
//               then execute the contested run, and since runs are pure
//               in (root_seed, run_index) the duplicate records are
//               identical; the coordinator keeps the first.
//   degradation a run whose attempts exceed --max-retries is recorded as
//               a kCrash failure (identity reconstructed from the plan,
//               replay bundle synthesized via bundle_writer) and its cell
//               degrades — the sweep completes with exit 0 either way.
//   checkpoint  completed records are periodically persisted as an atomic
//               partial snapshot; a restarted dispatcher resumes from it
//               and only re-executes the missing indices.
//
// Because every record round-trips exactly (%.17g) and merge order is
// run-index order through the same aggregate_sweep_runs() as local
// execution, a fully-completed dispatch produces CSV/JSON byte-identical
// to a single-host -jN sweep — whatever was killed along the way.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/dispatch/transport.hpp"
#include "core/sweep.hpp"

namespace paratick::core::dispatch {

struct DispatchOptions {
  unsigned workers = 2;
  /// Extra attempts per run after the first; exceeding it degrades the
  /// run to a kCrash record instead of failing the sweep.
  std::size_t max_retries = 2;
  bool steal = true;
  /// Lease: a worker with no protocol traffic for this long is presumed
  /// wedged and killed. Must be comfortably above the worker heartbeat.
  double lease_sec = 30.0;
  /// Base of the exponential retry backoff (doubles per failed attempt,
  /// with +0..50% deterministic jitter to de-synchronize a fleet).
  double retry_backoff_sec = 0.25;
  /// Crash-safe progress snapshot ("" = none): completed records are
  /// periodically written here as an atomic partial snapshot, and an
  /// existing matching snapshot is resumed from on startup.
  std::string checkpoint_path;
  double checkpoint_interval_sec = 5.0;
  /// Stamped into checkpoint snapshots.
  std::string bench_name;
  bool progress = false;
  /// Synthesize artifacts for a degraded run (write a replay bundle, set
  /// run.bundle_path). Workers write bundles for runs they complete; this
  /// covers runs no worker ever managed to finish.
  std::function<void(SweepRun&)> bundle_writer;
  /// Test hook: SIGKILL the worker that delivered the Nth record (once).
  std::size_t test_kill_after = 0;
};

class SweepDispatcher {
 public:
  struct Stats {
    std::size_t workers_launched = 0;
    std::size_t workers_died = 0;      // unclean exits (signal / rc != 0)
    std::size_t leases_expired = 0;
    std::size_t steals = 0;
    std::size_t stolen_indices = 0;
    std::size_t retries = 0;           // penalized re-enqueues
    std::size_t duplicate_records = 0; // steal-race double executions
    std::size_t runs_degraded = 0;     // retries exhausted
    std::size_t records_received = 0;
    std::size_t runs_resumed = 0;      // taken from a checkpoint snapshot
  };

  SweepDispatcher(std::unique_ptr<WorkerTransport> transport,
                  DispatchOptions opts);

  SweepDispatcher(const SweepDispatcher&) = delete;
  SweepDispatcher& operator=(const SweepDispatcher&) = delete;

  /// Execute the transport's whole plan to completion (one-shot). Throws
  /// sim::SimError only on coordinator-level faults (transport broken,
  /// worker plan mismatch) — worker failures degrade, they don't throw.
  [[nodiscard]] SweepResult run();

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::unique_ptr<WorkerTransport> transport_;
  DispatchOptions opts_;
  Stats stats_;
  bool ran_ = false;
};

}  // namespace paratick::core::dispatch
