#include "core/dispatch/protocol.hpp"

#include <cstdlib>

#include "core/json.hpp"
#include "core/sweep_plan.hpp"
#include "metrics/report.hpp"
#include "sim/check.hpp"

namespace paratick::core::dispatch {

namespace {

using ull = unsigned long long;

guest::TickMode mode_from_string(const std::string& name) {
  for (const auto m :
       {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
        guest::TickMode::kFullDynticks, guest::TickMode::kParatick}) {
    if (name == guest::to_string(m)) return m;
  }
  PARATICK_CHECK_MSG(false, ("unknown tick mode in plan header: " + name).c_str());
  return guest::TickMode::kDynticksIdle;
}

}  // namespace

PlanInfo plan_info_for(const SweepConfig& cfg) {
  const SweepPlan plan = SweepPlan::make(cfg);
  PlanInfo p;
  p.bench = cfg.bench_name;
  p.root_seed = plan.config().root_seed;
  p.repeat = plan.config().repeat;
  p.total_runs = plan.total_runs();
  p.cells = plan.cell_keys();
  return p;
}

std::string to_json(const PlanInfo& p) {
  std::string out = metrics::format(
      "{\"kind\": \"paratick-dispatch-plan\", \"bench\": \"%s\", "
      "\"root_seed\": \"%llu\", \"repeat\": %d, \"total_runs\": %llu, "
      "\"cells\": [",
      metrics::json_escape(p.bench).c_str(), static_cast<ull>(p.root_seed),
      p.repeat, static_cast<ull>(p.total_runs));
  for (std::size_t i = 0; i < p.cells.size(); ++i) {
    const SweepCellKey& key = p.cells[i];
    out += metrics::format(
        "%s{\"variant\": \"%s\", \"mode\": \"%s\", \"tick_freq_hz\": %.17g, "
        "\"vcpus\": %d, \"overcommit\": %.17g}",
        i == 0 ? "" : ", ", metrics::json_escape(key.variant).c_str(),
        std::string(guest::to_string(key.mode)).c_str(), key.tick_freq_hz,
        key.vcpus, key.overcommit);
  }
  out += "]}";
  return out;
}

PlanInfo parse_plan_info(const std::string& text) {
  const json::Value doc = json::parse(text);
  PARATICK_CHECK_MSG(doc.type == json::Value::Type::kObject,
                     "plan header: document is not a JSON object");
  const json::Value* kind = doc.find("kind");
  PARATICK_CHECK_MSG(kind != nullptr && kind->str == "paratick-dispatch-plan",
                     "plan header: wrong document kind");
  PlanInfo p;
  p.bench = json::str_field(doc, "bench");
  const json::Value* seed = doc.find("root_seed");
  PARATICK_CHECK_MSG(seed != nullptr && seed->type == json::Value::Type::kString,
                     "plan header: missing root_seed");
  p.root_seed = std::strtoull(seed->str.c_str(), nullptr, 10);
  p.repeat = static_cast<int>(json::num_field(doc, "repeat", 1.0));
  p.total_runs = static_cast<std::size_t>(json::num_field(doc, "total_runs"));
  const json::Value* cells = doc.find("cells");
  PARATICK_CHECK_MSG(cells != nullptr && cells->type == json::Value::Type::kArray,
                     "plan header: missing cells array");
  for (const auto& cell : cells->array) {
    PARATICK_CHECK_MSG(cell.type == json::Value::Type::kObject,
                       "plan header: cell entry is not an object");
    SweepCellKey key;
    key.variant = json::str_field(cell, "variant");
    key.mode = mode_from_string(json::str_field(cell, "mode"));
    key.tick_freq_hz = json::num_field(cell, "tick_freq_hz");
    key.vcpus = static_cast<int>(json::num_field(cell, "vcpus"));
    key.overcommit = json::num_field(cell, "overcommit");
    p.cells.push_back(std::move(key));
  }
  return p;
}

bool plans_match(const PlanInfo& a, const PlanInfo& b, std::string* why) {
  const auto fail = [&](const std::string& what) {
    if (why != nullptr) *why = what;
    return false;
  };
  if (a.root_seed != b.root_seed) return fail("root seed");
  if (a.repeat != b.repeat) return fail("repeat count");
  if (a.total_runs != b.total_runs) return fail("total run count");
  if (a.cells.size() != b.cells.size()) return fail("cell grid size");
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const SweepCellKey& x = a.cells[i];
    const SweepCellKey& y = b.cells[i];
    if (x.variant != y.variant || x.mode != y.mode ||
        x.tick_freq_hz != y.tick_freq_hz || x.vcpus != y.vcpus ||
        x.overcommit != y.overcommit) {
      return fail("cell " + std::to_string(i) + " (" + x.label() + " vs " +
                  y.label() + ")");
    }
  }
  return true;
}

std::string encode_slice(const std::vector<std::size_t>& indices) {
  std::string out;
  std::size_t i = 0;
  while (i < indices.size()) {
    std::size_t j = i;
    while (j + 1 < indices.size() && indices[j + 1] == indices[j] + 1) ++j;
    if (!out.empty()) out += ',';
    out += std::to_string(indices[i]);
    if (j > i) {
      out += '-';
      out += std::to_string(indices[j]);
    }
    i = j + 1;
  }
  return out;
}

std::vector<std::size_t> decode_slice(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  PARATICK_CHECK_MSG(!text.empty(), "slice spec: empty");
  while (pos < text.size()) {
    char* end = nullptr;
    const char* start = text.c_str() + pos;
    const ull first = std::strtoull(start, &end, 10);
    PARATICK_CHECK_MSG(end != start, "slice spec: expected a run index");
    pos = static_cast<std::size_t>(end - text.c_str());
    ull last = first;
    if (pos < text.size() && text[pos] == '-') {
      start = text.c_str() + pos + 1;
      last = std::strtoull(start, &end, 10);
      PARATICK_CHECK_MSG(end != start && last >= first,
                         "slice spec: bad range");
      pos = static_cast<std::size_t>(end - text.c_str());
    }
    for (ull v = first; v <= last; ++v) out.push_back(static_cast<std::size_t>(v));
    if (pos < text.size()) {
      PARATICK_CHECK_MSG(text[pos] == ',', "slice spec: expected ','");
      ++pos;
      PARATICK_CHECK_MSG(pos < text.size(), "slice spec: trailing ','");
    }
  }
  return out;
}

}  // namespace paratick::core::dispatch
