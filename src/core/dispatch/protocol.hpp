// Wire protocol between the sweep dispatcher and its workers.
//
// A worker streams newline-framed lines to the coordinator (its stdout,
// or a pipe for forked workers):
//
//   #plan {...}   first line: the sweep identity + cell grid this worker
//                 derived from its own flags (one JSON object). The
//                 coordinator refuses workers whose plan disagrees with
//                 its own — catching skew between fleet hosts before any
//                 records are merged.
//   #run N        announcement: about to execute run index N. This is
//                 what lets the coordinator attribute an unclean death to
//                 exactly the in-flight run (retry it with a penalty) and
//                 re-enqueue the untouched tail penalty-free.
//   {...}         one completed run: the exact-round-trip record of
//                 core/sweep_shard.hpp (also the fork backend's format).
//   #hb           heartbeat from a worker-side timer thread — proves
//                 liveness while a long run is executing, so leases only
//                 expire on genuinely wedged or dead workers.
//   #end          slice finished (complete or truncated); clean exit next.
//
// The coordinator owns one control line (worker stdin):
//
//   #limit N      work stealing: execute only the first N entries of the
//                 originally assigned slice, then stop. N only ever
//                 decreases. The race where the worker is already past N
//                 when the line lands is benign: both worker and thief
//                 execute the contested index, the records are
//                 bit-identical (runs are pure in (root_seed, index)),
//                 and the coordinator keeps the first one.
//
// Only '#'-prefixed tags and '{'-prefixed records are meaningful; other
// lines are ignored so transports may inject banners (ssh MOTDs must
// still be avoided — use ssh -T and a quiet shell).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace paratick::core::dispatch {

/// The sweep identity a coordinator and its workers must agree on before
/// any record is accepted: everything the merge layer validates, minus
/// the executed runs.
struct PlanInfo {
  std::string bench;
  std::uint64_t root_seed = 0;
  int repeat = 1;
  std::size_t total_runs = 0;
  std::vector<SweepCellKey> cells;  // full grid, grid order
};

/// Expand cfg's grid (SweepPlan::make) into its identity header.
[[nodiscard]] PlanInfo plan_info_for(const SweepConfig& cfg);

/// Single-line JSON (de)serialization of the identity header.
[[nodiscard]] std::string to_json(const PlanInfo& p);
[[nodiscard]] PlanInfo parse_plan_info(const std::string& text);

/// Do two headers describe the same sweep? Fills `why` (may be null)
/// with the first mismatching field.
[[nodiscard]] bool plans_match(const PlanInfo& a, const PlanInfo& b,
                               std::string* why);

/// Compact encoding of a run-index set: "0-5,9,12-14" — ascending,
/// inclusive ranges. decode PARATICK_CHECKs on malformed input.
[[nodiscard]] std::string encode_slice(const std::vector<std::size_t>& indices);
[[nodiscard]] std::vector<std::size_t> decode_slice(const std::string& text);

}  // namespace paratick::core::dispatch
