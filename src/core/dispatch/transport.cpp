#include "core/dispatch/transport.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "core/safe_io.hpp"
#include "sim/check.hpp"

namespace paratick::core::dispatch {

namespace {

/// POSIX single-quote an argument for a /bin/sh (or ssh remote-shell)
/// command line: 'a'\''b' survives every byte except NUL.
std::string shell_quote(const std::string& arg) {
  std::string out = "'";
  for (const char c : arg) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += '\'';
  return out;
}

std::string render_template(const std::string& shell_template,
                            const std::vector<std::string>& cmd) {
  std::string quoted;
  for (const std::string& arg : cmd) {
    if (!quoted.empty()) quoted += ' ';
    quoted += shell_quote(arg);
  }
  const std::size_t at = shell_template.find("{cmd}");
  PARATICK_CHECK_MSG(at != std::string::npos,
                     "--dispatch-cmd template must contain {cmd}");
  std::string line = shell_template;
  line.replace(at, 5, quoted);
  return line;
}

}  // namespace

ForkWorkerTransport::ForkWorkerTransport(SweepConfig cfg, WorkerOptions wopts)
    : cfg_(std::move(cfg)), wopts_(wopts) {
  // Workers must not interleave per-run progress lines with the
  // coordinator's own; the dispatcher reports progress itself.
  cfg_.progress = false;
  // A forked worker executes its whole slice regardless of what other
  // workers saw fail — fail-fast is the coordinator's call, and sharing
  // the flag would make which runs get skipped scheduling-dependent.
  cfg_.max_failures = 0;
}

PlanInfo ForkWorkerTransport::plan() { return plan_info_for(cfg_); }

WorkerProcess ForkWorkerTransport::launch(
    const std::vector<std::size_t>& indices) {
  int out_fds[2];
  int ctl_fds[2];
  PARATICK_CHECK_MSG(::pipe(out_fds) == 0, "dispatch: pipe() failed");
  if (::pipe(ctl_fds) != 0) {
    ::close(out_fds[0]);
    ::close(out_fds[1]);
    PARATICK_CHECK_MSG(false, "dispatch: pipe() failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {out_fds[0], out_fds[1], ctl_fds[0], ctl_fds[1]}) {
      ::close(fd);
    }
    PARATICK_CHECK_MSG(false, "dispatch: fork() failed");
  }
  if (pid == 0) {
    ::close(out_fds[0]);
    ::close(ctl_fds[1]);
    const int rc = run_worker_slice(cfg_, indices, out_fds[1], ctl_fds[0],
                                    wopts_);
    // _Exit: no destructors, no atexit — the coordinator holds the real
    // state, and flushing shared stdio buffers would duplicate output.
    std::_Exit(rc);
  }
  ::close(out_fds[1]);
  ::close(ctl_fds[0]);
  return {pid, out_fds[0], ctl_fds[1]};
}

CommandWorkerTransport::CommandWorkerTransport(
    std::vector<std::string> base_cmd, std::string shell_template)
    : base_cmd_(std::move(base_cmd)),
      shell_template_(std::move(shell_template)) {
  PARATICK_CHECK_MSG(!base_cmd_.empty(),
                     "dispatch: empty worker command line");
}

WorkerProcess CommandWorkerTransport::spawn(
    const std::vector<std::string>& extra, bool want_ctl) const {
  std::vector<std::string> cmd = base_cmd_;
  cmd.insert(cmd.end(), extra.begin(), extra.end());

  std::vector<std::string> argv_store;
  if (shell_template_.empty()) {
    argv_store = cmd;
  } else {
    argv_store = {"/bin/sh", "-c", render_template(shell_template_, cmd)};
  }

  int out_fds[2];
  int ctl_fds[2] = {-1, -1};
  PARATICK_CHECK_MSG(::pipe(out_fds) == 0, "dispatch: pipe() failed");
  if (want_ctl && ::pipe(ctl_fds) != 0) {
    ::close(out_fds[0]);
    ::close(out_fds[1]);
    PARATICK_CHECK_MSG(false, "dispatch: pipe() failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {out_fds[0], out_fds[1], ctl_fds[0], ctl_fds[1]}) {
      if (fd >= 0) ::close(fd);
    }
    PARATICK_CHECK_MSG(false, "dispatch: fork() failed");
  }
  if (pid == 0) {
    ::close(out_fds[0]);
    if (want_ctl) {
      ::close(ctl_fds[1]);
      ::dup2(ctl_fds[0], STDIN_FILENO);
      ::close(ctl_fds[0]);
    }
    ::dup2(out_fds[1], STDOUT_FILENO);
    ::close(out_fds[1]);
    std::vector<char*> argv;
    argv.reserve(argv_store.size() + 1);
    for (const std::string& arg : argv_store) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    std::_Exit(127);  // exec failed; the dispatcher sees a barren death
  }
  ::close(out_fds[1]);
  if (want_ctl) ::close(ctl_fds[0]);
  return {pid, out_fds[0], want_ctl ? ctl_fds[1] : -1};
}

PlanInfo CommandWorkerTransport::plan() {
  if (plan_probed_) return plan_;
  const WorkerProcess probe =
      spawn({"--worker-plan", "--quiet"}, /*want_ctl=*/false);
  const std::string out = read_to_eof(probe.out_fd);
  ::close(probe.out_fd);
  int status = 0;
  while (::waitpid(probe.pid, &status, 0) < 0 && errno == EINTR) {
  }
  const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;

  // Scan for the #plan line: transports may prepend banner noise.
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) nl = out.size();
    const std::string line = out.substr(pos, nl - pos);
    if (line.rfind("#plan ", 0) == 0) {
      plan_ = parse_plan_info(line.substr(6));
      plan_probed_ = true;
      return plan_;
    }
    pos = nl + 1;
  }
  const std::string msg =
      "dispatch: worker command produced no #plan header" +
      std::string(clean ? "" : " (and exited uncleanly)") +
      " — does it take sweep flags (is it built on SweepCli)? Output began: " +
      out.substr(0, 200);
  PARATICK_CHECK_MSG(false, msg.c_str());
  return plan_;  // unreachable
}

WorkerProcess CommandWorkerTransport::launch(
    const std::vector<std::size_t>& indices) {
  return spawn({"--worker-slice", encode_slice(indices), "--quiet"},
               /*want_ctl=*/true);
}

}  // namespace paratick::core::dispatch
