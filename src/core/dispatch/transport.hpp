// Worker transports: how the dispatcher turns "execute these run indices"
// into a live worker process streaming the dispatch protocol.
//
// Two implementations cover the fleet shapes this repo cares about:
//
//   ForkWorkerTransport     fork() without exec — the worker shares the
//                           coordinator's in-process SweepConfig, closures
//                           and all. Default for a bench's --dispatch mode
//                           and the unit tests: zero serialization, full
//                           crash isolation.
//   CommandWorkerTransport  fork()+exec of a bench command line with the
//                           hidden worker flags appended; the worker
//                           rebuilds the plan from its own argv (validated
//                           against the coordinator's via the #plan
//                           header). An optional shell template ("ssh
//                           hostN {cmd}") wraps the command, which is how
//                           the sweep_dispatch tool reaches remote hosts
//                           or a job queue without this repo growing an
//                           ssh dependency.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

#include "core/dispatch/protocol.hpp"
#include "core/dispatch/worker.hpp"

namespace paratick::core::dispatch {

/// A launched worker as the coordinator sees it.
struct WorkerProcess {
  pid_t pid = -1;
  int out_fd = -1;  // read end of the worker's protocol stream
  int ctl_fd = -1;  // write end of the #limit control line; -1 = none
};

class WorkerTransport {
 public:
  virtual ~WorkerTransport() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// The sweep identity this transport's workers execute. Every launched
  /// worker's #plan header must match it (the coordinator enforces this).
  [[nodiscard]] virtual PlanInfo plan() = 0;
  /// Launch one worker on `indices`, executed in the given order.
  /// PARATICK_CHECKs (throws sim::SimError) if the process cannot be
  /// created at all; a worker that launches but misbehaves is the
  /// dispatcher's problem.
  [[nodiscard]] virtual WorkerProcess launch(
      const std::vector<std::size_t>& indices) = 0;
};

/// fork()-without-exec workers sharing the coordinator's SweepConfig.
class ForkWorkerTransport final : public WorkerTransport {
 public:
  explicit ForkWorkerTransport(SweepConfig cfg, WorkerOptions wopts = {});

  [[nodiscard]] const char* name() const override { return "fork"; }
  [[nodiscard]] PlanInfo plan() override;
  [[nodiscard]] WorkerProcess launch(
      const std::vector<std::size_t>& indices) override;

 private:
  SweepConfig cfg_;
  WorkerOptions wopts_;
};

/// fork()+exec workers built from a bench command line. The plan is
/// probed once by running `base_cmd --worker-plan` and parsing its #plan
/// header — the only way a standalone dispatcher can learn a grid whose
/// variants are C++ closures living inside the bench binary.
class CommandWorkerTransport final : public WorkerTransport {
 public:
  /// shell_template: "" = exec base_cmd directly; otherwise a /bin/sh -c
  /// command line with "{cmd}" replaced by the shell-quoted worker
  /// command (e.g. "ssh -T worker3 {cmd}").
  explicit CommandWorkerTransport(std::vector<std::string> base_cmd,
                                  std::string shell_template = "");

  [[nodiscard]] const char* name() const override { return "command"; }
  [[nodiscard]] PlanInfo plan() override;
  [[nodiscard]] WorkerProcess launch(
      const std::vector<std::size_t>& indices) override;

 private:
  [[nodiscard]] WorkerProcess spawn(const std::vector<std::string>& extra,
                                    bool want_ctl) const;

  std::vector<std::string> base_cmd_;
  std::string shell_template_;
  bool plan_probed_ = false;
  PlanInfo plan_;
};

}  // namespace paratick::core::dispatch
