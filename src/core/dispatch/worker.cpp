#include "core/dispatch/worker.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "core/dispatch/protocol.hpp"
#include "core/replay.hpp"
#include "core/safe_io.hpp"
#include "core/sweep_plan.hpp"
#include "core/sweep_shard.hpp"
#include "sim/check.hpp"

namespace paratick::core::dispatch {

namespace {

/// Serializes the record stream against the heartbeat thread: a `#hb`
/// landing inside a half-written record would corrupt the frame.
class LineWriter {
 public:
  explicit LineWriter(int fd) : fd_(fd) {}

  bool write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ok_) return false;
    std::string framed = line;
    framed += '\n';
    ok_ = write_all(fd_, framed.data(), framed.size());
    return ok_;
  }

 private:
  int fd_;
  std::mutex mu_;
  bool ok_ = true;
};

}  // namespace

int run_worker_slice(const SweepConfig& cfg,
                     const std::vector<std::size_t>& indices, int out_fd,
                     int ctl_fd, const WorkerOptions& opts) {
  // A dead coordinator must surface as a failed write, not SIGPIPE death.
  ::signal(SIGPIPE, SIG_IGN);

  const SweepPlan plan = SweepPlan::make(cfg);
  for (const std::size_t idx : indices) {
    PARATICK_CHECK_MSG(idx < plan.total_runs(),
                       "worker slice: run index outside the plan");
  }

  LineWriter out(out_fd);
  if (!out.write_line("#plan " + to_json(plan_info_for(cfg)))) return 1;

  // The coordinator's control line is read non-blockingly between runs:
  // stealing only truncates *future* work, never the run in flight.
  if (ctl_fd >= 0) {
    const int flags = ::fcntl(ctl_fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(ctl_fd, F_SETFL, flags | O_NONBLOCK);
  }
  std::size_t limit = indices.size();
  bool ctl_eof = false;
  std::string ctl_buf;
  const auto poll_ctl = [&] {
    if (ctl_fd < 0 || ctl_eof) return;
    char buf[4096];
    while (true) {
      const ssize_t got = ::read(ctl_fd, buf, sizeof buf);
      if (got > 0) {
        ctl_buf.append(buf, static_cast<std::size_t>(got));
        continue;
      }
      if (got == 0) {
        ctl_eof = true;  // coordinator is gone: stop taking new work
        break;
      }
      if (errno == EINTR) continue;
      break;  // EAGAIN: no control traffic right now
    }
    std::size_t nl;
    while ((nl = ctl_buf.find('\n')) != std::string::npos) {
      const std::string line = ctl_buf.substr(0, nl);
      ctl_buf.erase(0, nl + 1);
      if (line.rfind("#limit ", 0) == 0) {
        const auto n = static_cast<std::size_t>(
            std::strtoull(line.c_str() + 7, nullptr, 10));
        if (n < limit) limit = n;
      }
    }
    if (ctl_eof) limit = 0;
  };

  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread hb;
  if (opts.heartbeat_sec > 0.0) {
    hb = std::thread([&] {
      std::unique_lock<std::mutex> lock(hb_mu);
      while (true) {
        if (hb_cv.wait_for(lock,
                           std::chrono::duration<double>(opts.heartbeat_sec),
                           [&] { return hb_stop; })) {
          return;
        }
        if (!out.write_line("#hb")) return;
      }
    });
  }
  const auto join_hb = [&] {
    if (!hb.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    hb.join();
  };

  const std::string failure_dir =
      opts.write_bundles
          ? resolve_output_path(cfg.output_dir, cfg.failure_dir)
          : std::string();
  const auto& keys = plan.cell_keys();

  int rc = 0;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    poll_ctl();
    if (k >= limit) break;
    const std::size_t idx = indices[k];
    if (!out.write_line("#run " + std::to_string(idx))) {
      rc = 1;
      break;
    }
    const auto t0 = std::chrono::steady_clock::now();
    SweepRun run = plan.execute(idx);
    run.host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!run.ok && run.failure &&
        run.failure->kind != RunFailure::Kind::kSkipped &&
        !failure_dir.empty()) {
      run.bundle_path =
          write_replay_bundle(cfg, run, failure_dir, keys[run.cell].label());
    }
    if (!out.write_line(run_record_to_json(run))) {
      rc = 1;
      break;
    }
  }
  if (rc == 0) (void)out.write_line("#end");
  join_hb();
  return rc;
}

}  // namespace paratick::core::dispatch
