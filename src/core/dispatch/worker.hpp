// Worker side of the dispatch protocol: execute a slice of a sweep plan
// in order, streaming the line protocol of core/dispatch/protocol.hpp.
//
// A worker is deliberately dumb: it owns no retry, lease or steal logic.
// It announces each run before executing it, streams the exact-round-trip
// record after, keeps a heartbeat alive from a timer thread so the
// coordinator's lease never expires under a long-but-healthy run, and
// honors `#limit` truncations (work stealing) between runs. Failed runs
// get their replay bundle written worker-side — the worker has the full
// SweepConfig, the coordinator may not (command transports).
#pragma once

#include <cstddef>
#include <vector>

#include "core/sweep.hpp"

namespace paratick::core::dispatch {

struct WorkerOptions {
  /// Heartbeat period in seconds; <= 0 disables the heartbeat thread
  /// (tests that exercise lease expiry on a wedged worker).
  double heartbeat_sec = 0.5;
  /// Write replay bundles (and thereby traces, via the plan) for failed
  /// runs under cfg.failure_dir, as a local sweep would.
  bool write_bundles = true;
};

/// Execute `indices` of cfg's plan in order, streaming the dispatch
/// protocol to `out_fd`. `ctl_fd` (pass -1 for none) carries the
/// coordinator's `#limit` lines; EOF on it means the coordinator is gone
/// and the worker stops taking new work. Returns 0 on a clean (possibly
/// truncated) finish, 1 if the output pipe died mid-stream.
int run_worker_slice(const SweepConfig& cfg,
                     const std::vector<std::size_t>& indices, int out_fd,
                     int ctl_fd, const WorkerOptions& opts = {});

}  // namespace paratick::core::dispatch
