#include "core/exec_backend.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "core/sweep_plan.hpp"
#include "core/sweep_shard.hpp"
#include "core/thread_pool.hpp"
#include "metrics/report.hpp"
#include "sim/check.hpp"
#include "sim/error.hpp"

namespace paratick::core {

namespace {

unsigned resolve_threads(unsigned threads) {
  return threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                      : threads;
}

/// Fail-fast record: the --max-failures budget was already spent when this
/// run's turn came. Counts as executed (it is this host's decision, and
/// aggregation must see it to bump replicas_skipped).
SweepRun skipped_run(const SweepPlan& plan, std::size_t run_index) {
  const SweepWorkItem w = plan.item(run_index);
  SweepRun out;
  out.run_index = w.run_index;
  out.cell = w.cell;
  out.replica = w.replica;
  out.seed = w.seed;
  out.executed = true;
  out.ok = false;
  RunFailure f;
  f.kind = RunFailure::Kind::kSkipped;
  f.message = "skipped: --max-failures budget spent";
  out.failure = std::move(f);
  return out;
}

void progress_line(const SweepPlan& plan, const SweepRun& run,
                   std::size_t finished, std::size_t total) {
  std::fprintf(stderr, "[sweep %zu/%zu] %s r%d seed=%016llx %.2fs%s%s\n",
               finished, total, plan.cell_keys()[run.cell].label().c_str(),
               run.replica, static_cast<unsigned long long>(run.seed),
               run.host_seconds, run.ok ? "" : " FAIL:",
               run.ok ? "" : RunFailure::kind_name(run.failure->kind));
}

/// One forked child executing one run; the parent reads the serialized
/// SweepRun from `fd` (EOF-framed: one record per pipe).
struct ForkedChild {
  pid_t pid = -1;
  int fd = -1;
  std::size_t run_index = 0;
};

ForkedChild spawn_run_child(const SweepPlan& plan, std::size_t run_index) {
  int fds[2];
  PARATICK_CHECK_MSG(::pipe(fds) == 0, "fork backend: pipe() failed");
  const pid_t pid = ::fork();
  PARATICK_CHECK_MSG(pid >= 0, "fork backend: fork() failed");
  if (pid == 0) {
    ::close(fds[0]);
    const auto t0 = std::chrono::steady_clock::now();
    SweepRun run = plan.execute(run_index);
    run.host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::string record = run_record_to_json(run);
    std::size_t off = 0;
    while (off < record.size()) {
      const ssize_t put =
          ::write(fds[1], record.data() + off, record.size() - off);
      if (put <= 0) break;
      off += static_cast<std::size_t>(put);
    }
    ::close(fds[1]);
    // _Exit: no destructors, no atexit — the parent still holds the real
    // state, and flushing shared stdio buffers here would duplicate output.
    std::_Exit(0);
  }
  ::close(fds[1]);
  return {pid, fds[0], run_index};
}

SweepRun collect_run_child(const SweepPlan& plan, const ForkedChild& child) {
  std::string record;
  char buf[1 << 16];
  ssize_t got = 0;
  while ((got = ::read(child.fd, buf, sizeof buf)) > 0) {
    record.append(buf, static_cast<std::size_t>(got));
  }
  ::close(child.fd);
  int status = 0;
  ::waitpid(child.pid, &status, 0);

  const auto crash = [&](std::string why) {
    const SweepWorkItem w = plan.item(child.run_index);
    SweepRun run;
    run.run_index = w.run_index;
    run.cell = w.cell;
    run.replica = w.replica;
    run.seed = w.seed;
    run.executed = true;
    run.ok = false;
    RunFailure f;
    f.kind = RunFailure::Kind::kCrash;
    f.message = std::move(why);
    run.failure = std::move(f);
    return run;
  };

  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    return crash(metrics::format("forked child killed by signal %d (%s)", sig,
                                 strsignal(sig)));
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return crash(metrics::format("forked child exited with status %d",
                                 WIFEXITED(status) ? WEXITSTATUS(status) : -1));
  }
  try {
    SweepRun run = parse_run_record(record);
    run.executed = true;
    return run;
  } catch (const sim::SimError& e) {
    return crash(std::string("forked child produced a corrupt run record: ") +
                 e.msg());
  }
}

}  // namespace

ThreadPoolBackend::ThreadPoolBackend(const ExecOptions& opts)
    : opts_(opts), threads_(resolve_threads(opts.threads)) {}

void ThreadPoolBackend::execute(const SweepPlan& plan,
                                std::span<const std::size_t> indices,
                                std::vector<SweepRun>& runs) {
  std::mutex progress_mu;
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failures{0};
  const std::size_t total = indices.size();

  parallel_for_index(total, threads_, [&](std::size_t k) {
    const std::size_t i = indices[k];
    SweepRun& out = runs[i];
    // Fail-fast: once the failure budget is spent, remaining runs become
    // kSkipped records (which runs get skipped is scheduling-dependent; the
    // flag trades -j-bit-identity for wall-clock on broken builds).
    if (opts_.max_failures > 0 &&
        failures.load(std::memory_order_relaxed) >= opts_.max_failures) {
      out = skipped_run(plan, i);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    out = plan.execute(i);
    out.host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!out.ok) failures.fetch_add(1, std::memory_order_relaxed);
    if (opts_.progress) {
      const std::size_t finished = done.fetch_add(1) + 1;
      std::scoped_lock lock(progress_mu);
      progress_line(plan, out, finished, total);
    }
  });
}

ForkProcessBackend::ForkProcessBackend(const ExecOptions& opts)
    : opts_(opts), children_(resolve_threads(opts.threads)) {}

void ForkProcessBackend::execute(const SweepPlan& plan,
                                 std::span<const std::size_t> indices,
                                 std::vector<SweepRun>& runs) {
  // The parent stays single-threaded (children provide the parallelism),
  // so fork() never races the allocator or stdio locks. Children are
  // reaped oldest-first with their pipe drained to EOF before waitpid:
  // younger children may block writing a record bigger than the pipe
  // buffer, but the parent is always draining someone, so no deadlock.
  std::deque<ForkedChild> active;
  std::size_t failures = 0;
  std::size_t finished = 0;
  const std::size_t total = indices.size();

  const auto reap_oldest = [&] {
    const ForkedChild child = active.front();
    active.pop_front();
    SweepRun run = collect_run_child(plan, child);
    if (!run.ok) ++failures;
    ++finished;
    if (opts_.progress) progress_line(plan, run, finished, total);
    runs[child.run_index] = std::move(run);
  };

  for (const std::size_t i : indices) {
    if (opts_.max_failures > 0 && failures >= opts_.max_failures) {
      runs[i] = skipped_run(plan, i);
      ++finished;
      continue;
    }
    while (active.size() >= children_) reap_oldest();
    active.push_back(spawn_run_child(plan, i));
  }
  while (!active.empty()) reap_oldest();
}

ShardFileBackend::ShardFileBackend(ShardSpec shard,
                                   std::unique_ptr<ExecBackend> inner)
    : shard_(shard), inner_(std::move(inner)) {
  PARATICK_CHECK_MSG(inner_ != nullptr, "shard backend needs an inner backend");
}

void ShardFileBackend::execute(const SweepPlan& plan,
                               std::span<const std::size_t> indices,
                               std::vector<SweepRun>& runs) {
  std::vector<std::size_t> owned;
  owned.reserve(indices.size() / shard_.count + 1);
  for (const std::size_t i : indices) {
    if (shard_.owns(i)) owned.push_back(i);
  }
  inner_->execute(plan, owned, runs);
}

std::unique_ptr<ExecBackend> make_backend(const SweepConfig& cfg) {
  ExecOptions opts;
  opts.threads = cfg.threads;
  opts.progress = cfg.progress;
  opts.max_failures = cfg.max_failures;
  std::unique_ptr<ExecBackend> inner;
  if (cfg.backend == BackendKind::kFork) {
    inner = std::make_unique<ForkProcessBackend>(opts);
  } else {
    inner = std::make_unique<ThreadPoolBackend>(opts);
  }
  if (cfg.shard.active()) {
    return std::make_unique<ShardFileBackend>(cfg.shard, std::move(inner));
  }
  return inner;
}

SweepRun execute_run_isolated(const SweepConfig& cfg, std::size_t run_index) {
  const SweepPlan plan = SweepPlan::make(cfg);
  PARATICK_CHECK_MSG(run_index < plan.total_runs(),
                     "execute_run_isolated: index out of range");
  return collect_run_child(plan, spawn_run_child(plan, run_index));
}

}  // namespace paratick::core
