#include "core/exec_backend.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "core/safe_io.hpp"
#include "core/sweep_plan.hpp"
#include "core/sweep_shard.hpp"
#include "core/thread_pool.hpp"
#include "metrics/report.hpp"
#include "sim/check.hpp"
#include "sim/error.hpp"

namespace paratick::core {

namespace {

unsigned resolve_threads(unsigned threads) {
  return threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                      : threads;
}

/// Fail-fast record: the --max-failures budget was already spent when this
/// run's turn came. Counts as executed (it is this host's decision, and
/// aggregation must see it to bump replicas_skipped).
SweepRun skipped_run(const SweepPlan& plan, std::size_t run_index) {
  const SweepWorkItem w = plan.item(run_index);
  SweepRun out;
  out.run_index = w.run_index;
  out.cell = w.cell;
  out.replica = w.replica;
  out.seed = w.seed;
  out.executed = true;
  out.ok = false;
  RunFailure f;
  f.kind = RunFailure::Kind::kSkipped;
  f.message = "skipped: --max-failures budget spent";
  out.failure = std::move(f);
  return out;
}

void progress_line(const SweepPlan& plan, const SweepRun& run,
                   std::size_t finished, std::size_t total) {
  std::fprintf(stderr, "[sweep %zu/%zu] %s r%d seed=%016llx %.2fs%s%s\n",
               finished, total, plan.cell_keys()[run.cell].label().c_str(),
               run.replica, static_cast<unsigned long long>(run.seed),
               run.host_seconds, run.ok ? "" : " FAIL:",
               run.ok ? "" : RunFailure::kind_name(run.failure->kind));
}

/// One forked child executing a batch of runs in order; the parent reads
/// newline-terminated serialized SweepRuns from `fd`, one per completed
/// run, so a mid-batch death loses only the record that was in flight.
struct ForkedChild {
  pid_t pid = -1;
  int fd = -1;
  std::vector<std::size_t> indices;  // run indices, executed in this order
};

ForkedChild spawn_run_child(const SweepPlan& plan,
                            std::vector<std::size_t> batch) {
  int fds[2];
  PARATICK_CHECK_MSG(::pipe(fds) == 0, "fork backend: pipe() failed");
  const pid_t pid = ::fork();
  PARATICK_CHECK_MSG(pid >= 0, "fork backend: fork() failed");
  if (pid == 0) {
    ::close(fds[0]);
    for (const std::size_t run_index : batch) {
      const auto t0 = std::chrono::steady_clock::now();
      SweepRun run = plan.execute(run_index);
      run.host_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      // Records are single-line (json_escape turns control characters into
      // escapes), so '\n' frames exactly one completed run. write_all
      // restarts on EINTR: a signal landing mid-record must not truncate
      // the frame and turn a finished run into a kCrash record.
      std::string record = run_record_to_json(run);
      record += '\n';
      if (!write_all(fds[1], record.data(), record.size())) {
        std::_Exit(1);  // parent treats the run as crashed
      }
    }
    ::close(fds[1]);
    // _Exit: no destructors, no atexit — the parent still holds the real
    // state, and flushing shared stdio buffers here would duplicate output.
    std::_Exit(0);
  }
  ::close(fds[1]);
  return {pid, fds[0], std::move(batch)};
}

/// What one child's batch produced once the pipe hit EOF.
struct BatchOutcome {
  /// (run index, record) for every run with a verdict: parsed records for
  /// completed runs plus one kCrash record for the run in flight when the
  /// child died.
  std::vector<std::pair<std::size_t, SweepRun>> completed;
  /// Batch tail the child never started — re-enqueue these.
  std::vector<std::size_t> unstarted;
};

BatchOutcome collect_run_child(const SweepPlan& plan, const ForkedChild& child) {
  // EINTR-safe drain: a signal interrupting read() used to look exactly
  // like the child dying, silently crashing every not-yet-parsed run.
  const std::string stream = read_to_eof(child.fd);
  ::close(child.fd);
  int status = 0;
  while (::waitpid(child.pid, &status, 0) < 0 && errno == EINTR) {
  }

  // Only newline-terminated lines count as complete records; a child that
  // died mid-write leaves a trailing fragment, which is discarded — the
  // fragment's run is exactly the one that gets the kCrash record below.
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (stream[i] == '\n') {
      lines.push_back(stream.substr(start, i - start));
      start = i + 1;
    }
  }

  const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  std::string why;
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    why = metrics::format("forked child killed by signal %d (%s)", sig,
                          strsignal(sig));
  } else if (!clean) {
    why = metrics::format("forked child exited with status %d",
                          WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  }

  const auto crash = [&](std::size_t run_index, std::string msg) {
    const SweepWorkItem w = plan.item(run_index);
    SweepRun run;
    run.run_index = w.run_index;
    run.cell = w.cell;
    run.replica = w.replica;
    run.seed = w.seed;
    run.executed = true;
    run.ok = false;
    RunFailure f;
    f.kind = RunFailure::Kind::kCrash;
    f.message = std::move(msg);
    run.failure = std::move(f);
    return run;
  };

  BatchOutcome out;
  for (std::size_t k = 0; k < child.indices.size(); ++k) {
    const std::size_t idx = child.indices[k];
    if (k < lines.size()) {
      try {
        SweepRun run = parse_run_record(lines[k]);
        run.executed = true;
        out.completed.emplace_back(idx, std::move(run));
      } catch (const sim::SimError& e) {
        out.completed.emplace_back(
            idx, crash(idx, std::string("forked child produced a corrupt run "
                                        "record: ") +
                                e.msg()));
      }
    } else if (k == lines.size() && !clean) {
      // First run without a complete record under an unclean death: that
      // is the run that was executing when the child died.
      out.completed.emplace_back(idx, crash(idx, why));
    } else if (clean) {
      // A cleanly-exiting child that under-produced would respawn forever;
      // record the gap as a crash instead.
      out.completed.emplace_back(
          idx, crash(idx, "forked child exited without producing a record"));
    } else {
      out.unstarted.push_back(idx);
    }
  }
  return out;
}

}  // namespace

ThreadPoolBackend::ThreadPoolBackend(const ExecOptions& opts)
    : opts_(opts), threads_(resolve_threads(opts.threads)) {}

void ThreadPoolBackend::execute(const SweepPlan& plan,
                                std::span<const std::size_t> indices,
                                std::vector<SweepRun>& runs) {
  std::mutex progress_mu;
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failures{0};
  const std::size_t total = indices.size();

  parallel_for_index(total, threads_, [&](std::size_t k) {
    const std::size_t i = indices[k];
    SweepRun& out = runs[i];
    // Fail-fast: once the failure budget is spent, remaining runs become
    // kSkipped records (which runs get skipped is scheduling-dependent; the
    // flag trades -j-bit-identity for wall-clock on broken builds).
    if (opts_.max_failures > 0 &&
        failures.load(std::memory_order_relaxed) >= opts_.max_failures) {
      out = skipped_run(plan, i);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    out = plan.execute(i);
    out.host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!out.ok) failures.fetch_add(1, std::memory_order_relaxed);
    if (opts_.progress) {
      const std::size_t finished = done.fetch_add(1) + 1;
      std::scoped_lock lock(progress_mu);
      progress_line(plan, out, finished, total);
    }
  });
}

ForkProcessBackend::ForkProcessBackend(const ExecOptions& opts)
    : opts_(opts), children_(resolve_threads(opts.threads)) {}

void ForkProcessBackend::execute(const SweepPlan& plan,
                                 std::span<const std::size_t> indices,
                                 std::vector<SweepRun>& runs) {
  // The parent stays single-threaded (children provide the parallelism),
  // so fork() never races the allocator or stdio locks. Children are
  // reaped oldest-first with their pipe drained to EOF before waitpid:
  // younger children may block writing records bigger than the pipe
  // buffer, but the parent is always draining someone, so no deadlock.
  std::deque<std::size_t> pending(indices.begin(), indices.end());
  std::deque<ForkedChild> active;
  std::size_t failures = 0;
  std::size_t finished = 0;
  const std::size_t total = indices.size();
  // --fork-batch wins; auto sizes batches so each worker slot handles a
  // few, amortizing per-child fork cost without serializing the sweep.
  const std::size_t batch_size =
      opts_.fork_batch != 0
          ? opts_.fork_batch
          : std::max<std::size_t>(
                1, total / (static_cast<std::size_t>(children_) * 4));

  const auto reap_oldest = [&] {
    const ForkedChild child = std::move(active.front());
    active.pop_front();
    BatchOutcome got = collect_run_child(plan, child);
    for (auto& [idx, run] : got.completed) {
      if (!run.ok) ++failures;
      ++finished;
      if (opts_.progress) progress_line(plan, run, finished, total);
      runs[idx] = std::move(run);
    }
    // Mid-batch crash: the unstarted tail goes back to the FRONT of the
    // queue, keeping completion close to run-index order.
    pending.insert(pending.begin(), got.unstarted.begin(),
                   got.unstarted.end());
  };

  while (!pending.empty() || !active.empty()) {
    while (!pending.empty() && active.size() < children_) {
      if (opts_.max_failures > 0 && failures >= opts_.max_failures) {
        const std::size_t i = pending.front();
        pending.pop_front();
        runs[i] = skipped_run(plan, i);
        ++finished;
        continue;
      }
      std::vector<std::size_t> batch;
      batch.reserve(batch_size);
      while (!pending.empty() && batch.size() < batch_size) {
        batch.push_back(pending.front());
        pending.pop_front();
      }
      active.push_back(spawn_run_child(plan, std::move(batch)));
    }
    if (!active.empty()) reap_oldest();
  }
}

ShardFileBackend::ShardFileBackend(ShardSpec shard,
                                   std::unique_ptr<ExecBackend> inner)
    : shard_(shard), inner_(std::move(inner)) {
  PARATICK_CHECK_MSG(inner_ != nullptr, "shard backend needs an inner backend");
}

void ShardFileBackend::execute(const SweepPlan& plan,
                               std::span<const std::size_t> indices,
                               std::vector<SweepRun>& runs) {
  std::vector<std::size_t> owned;
  owned.reserve(indices.size() / shard_.count + 1);
  for (const std::size_t i : indices) {
    if (shard_.owns(i)) owned.push_back(i);
  }
  inner_->execute(plan, owned, runs);
}

std::unique_ptr<ExecBackend> make_backend(const SweepConfig& cfg) {
  ExecOptions opts;
  opts.threads = cfg.threads;
  opts.progress = cfg.progress;
  opts.max_failures = cfg.max_failures;
  opts.fork_batch = cfg.fork_batch;
  std::unique_ptr<ExecBackend> inner;
  if (cfg.backend == BackendKind::kFork) {
    inner = std::make_unique<ForkProcessBackend>(opts);
  } else {
    inner = std::make_unique<ThreadPoolBackend>(opts);
  }
  if (cfg.shard.active()) {
    return std::make_unique<ShardFileBackend>(cfg.shard, std::move(inner));
  }
  return inner;
}

SweepRun execute_run_isolated(const SweepConfig& cfg, std::size_t run_index) {
  const SweepPlan plan = SweepPlan::make(cfg);
  PARATICK_CHECK_MSG(run_index < plan.total_runs(),
                     "execute_run_isolated: index out of range");
  BatchOutcome got =
      collect_run_child(plan, spawn_run_child(plan, {run_index}));
  PARATICK_CHECK_MSG(got.completed.size() == 1,
                     "execute_run_isolated: batch of one produced no record");
  return std::move(got.completed.front().second);
}

}  // namespace paratick::core
