// Pluggable sweep execution backends.
//
// A backend turns planned work items into executed SweepRuns; it decides
// nothing about seeds, specs or aggregation — those stay pure in the plan
// and the merge layer, which is why every backend (and any shard split)
// produces bit-identical sweep results.
//
//   ThreadPoolBackend  — in-process worker pool (the classic -jN path).
//                        Crash isolation is try/catch only: a segfault or
//                        abort() still takes the whole sweep down.
//   ForkProcessBackend — one forked child per batch of runs (ExecOptions::
//                        fork_batch; batch size 1 reproduces the classic
//                        child-per-run shape). The child streams one
//                        newline-terminated serialized SweepRun per
//                        completed run, so a child killed by a signal
//                        (segfault, deliberate abort(), OOM) loses only
//                        the run that was in flight: finished records are
//                        kept, the in-flight run is recorded as a failed
//                        replica with RunFailure::Kind::kCrash (and still
//                        gets a replay bundle pointing at exactly that
//                        run), and the unstarted tail of the batch is
//                        re-enqueued.
//   ShardFileBackend   — multi-host slicer: delegates only this host's
//                        --shard K/N slice to an inner backend; the runner
//                        then writes the mergeable partial snapshot
//                        (core/sweep_shard.hpp) that sweep_merge folds
//                        with the other shards' outputs.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/sweep.hpp"

namespace paratick::core {

class SweepPlan;

/// Execution policy shared by all backends (a SweepConfig slice).
struct ExecOptions {
  unsigned threads = 0;          // 0 = hardware_concurrency
  bool progress = false;         // per-run timing lines on stderr
  std::size_t max_failures = 0;  // fail fast budget; 0 = run everything
  /// Runs per forked child (fork backend only). 0 = auto: size batches
  /// from the plan length so each worker slot gets a few, amortizing the
  /// per-child fork/plan cost while keeping the crash blast radius small.
  std::size_t fork_batch = 0;
};

class ExecBackend {
 public:
  virtual ~ExecBackend() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  /// Worker parallelism this backend will use (for reporting).
  [[nodiscard]] virtual unsigned parallelism() const = 0;

  /// Execute the plan's runs at `indices` (run-index order), filling
  /// runs[i] for every index executed. `runs` is pre-sized to
  /// plan.total_runs(); slots outside `indices` are left untouched.
  virtual void execute(const SweepPlan& plan, std::span<const std::size_t> indices,
                       std::vector<SweepRun>& runs) = 0;
};

class ThreadPoolBackend final : public ExecBackend {
 public:
  explicit ThreadPoolBackend(const ExecOptions& opts);
  [[nodiscard]] const char* name() const override { return "thread"; }
  [[nodiscard]] unsigned parallelism() const override { return threads_; }
  void execute(const SweepPlan& plan, std::span<const std::size_t> indices,
               std::vector<SweepRun>& runs) override;

 private:
  ExecOptions opts_;
  unsigned threads_;
};

class ForkProcessBackend final : public ExecBackend {
 public:
  explicit ForkProcessBackend(const ExecOptions& opts);
  [[nodiscard]] const char* name() const override { return "fork"; }
  [[nodiscard]] unsigned parallelism() const override { return children_; }
  void execute(const SweepPlan& plan, std::span<const std::size_t> indices,
               std::vector<SweepRun>& runs) override;

 private:
  ExecOptions opts_;
  unsigned children_;  // max concurrent forked children
};

class ShardFileBackend final : public ExecBackend {
 public:
  ShardFileBackend(ShardSpec shard, std::unique_ptr<ExecBackend> inner);
  [[nodiscard]] const char* name() const override { return "shard"; }
  [[nodiscard]] unsigned parallelism() const override { return inner_->parallelism(); }
  [[nodiscard]] const ShardSpec& shard() const { return shard_; }
  void execute(const SweepPlan& plan, std::span<const std::size_t> indices,
               std::vector<SweepRun>& runs) override;

 private:
  ShardSpec shard_;
  std::unique_ptr<ExecBackend> inner_;
};

/// Build the backend a config asks for: thread or fork per cfg.backend,
/// wrapped in ShardFileBackend when cfg.shard is active.
[[nodiscard]] std::unique_ptr<ExecBackend> make_backend(const SweepConfig& cfg);

/// Execute one run of the config's plan inside a forked child, recording
/// a signal death as RunFailure::Kind::kCrash. This is how bench_replay
/// re-executes crash bundles without dying itself.
[[nodiscard]] SweepRun execute_run_isolated(const SweepConfig& cfg,
                                            std::size_t run_index);

}  // namespace paratick::core
