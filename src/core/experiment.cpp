#include "core/experiment.hpp"

namespace paratick::core {

SystemSpec make_system_spec(const ExperimentSpec& exp, guest::TickMode mode) {
  SystemSpec spec;
  spec.machine = exp.machine;
  spec.host = exp.host;
  spec.max_duration = exp.max_duration;

  VmSpec vm;
  vm.vcpus = exp.vcpus;
  vm.guest.tick_mode = mode;
  vm.guest.tick_freq = exp.guest_tick_freq;
  vm.guest.costs = exp.guest_costs;
  vm.guest.seed = exp.guest_seed;
  vm.setup = exp.setup;
  vm.attach_disk = exp.attach_disk;
  vm.disk = exp.disk;
  spec.vms.push_back(std::move(vm));
  return spec;
}

metrics::RunResult run_mode(const ExperimentSpec& exp, guest::TickMode mode) {
  System system(make_system_spec(exp, mode));
  return system.run();
}

AbResult run_paratick_vs_dynticks(const ExperimentSpec& exp) {
  AbResult r{run_mode(exp, guest::TickMode::kDynticksIdle),
             run_mode(exp, guest::TickMode::kParatick),
             {}};
  r.comparison = metrics::compare(r.baseline, r.treatment);
  return r;
}

}  // namespace paratick::core
