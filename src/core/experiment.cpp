#include "core/experiment.hpp"

namespace paratick::core {

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index) {
  // splitmix64 over the (root, index) pair; same finalizer Rng seeding uses.
  std::uint64_t z = root + (index + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

SystemSpec make_system_spec(const ExperimentSpec& exp, guest::TickMode mode) {
  SystemSpec spec;
  spec.machine = exp.machine;
  spec.host = exp.host;
  spec.max_duration = exp.max_duration;
  spec.stop_when_done = exp.stop_when_done;
  spec.fault = exp.fault;
  spec.fault_seed =
      exp.fault_seed != 0 ? exp.fault_seed : derive_seed(exp.guest_seed, 0x66617531);
  spec.watchdog = exp.watchdog;
  spec.watchdog_period = exp.watchdog_period;
  spec.watchdog_timer_grace = exp.watchdog_timer_grace;
  spec.wall_limit_sec = exp.wall_limit_sec;
  spec.observer = exp.observer;

  const int copies = exp.scenario.effective_copies();
  if (exp.scenario.sched_mode) {
    spec.host.sched_mode = *exp.scenario.sched_mode;
  } else if (static_cast<std::uint32_t>(exp.vcpus) *
                 static_cast<std::uint32_t>(copies) >
             exp.machine.total_cpus()) {
    spec.host.sched_mode = hv::SchedMode::kShared;
  }

  for (int copy = 0; copy < copies; ++copy) {
    VmSpec vm;
    vm.vcpus = exp.vcpus;
    vm.guest.tick_mode = mode;
    vm.guest.tick_freq = exp.guest_tick_freq;
    vm.guest.costs = exp.guest_costs;
    // A single VM keeps the seed verbatim (bit-compat with existing runs).
    vm.guest.seed = copies == 1
                        ? exp.guest_seed
                        : derive_seed(exp.guest_seed, static_cast<std::uint64_t>(copy));
    vm.setup = exp.scenario.vm_setups.empty()
                   ? exp.setup
                   : exp.scenario.vm_setups[static_cast<std::size_t>(copy)];
    vm.attach_disk = exp.attach_disk;
    vm.disk = exp.disk;
    spec.vms.push_back(std::move(vm));
  }
  return spec;
}

metrics::RunResult run_mode(const ExperimentSpec& exp, guest::TickMode mode) {
  // Scenario factory: topologies beyond one host (the cluster layer) run
  // the materialized spec themselves; everything above this dispatch —
  // planning, seeds, backends, exports — is shared unchanged.
  if (exp.scenario.run) return exp.scenario.run(exp, mode);
  System system(make_system_spec(exp, mode));
  return system.run();
}

AbResult run_paratick_vs_dynticks(const ExperimentSpec& exp) {
  AbResult r{run_mode(exp, guest::TickMode::kDynticksIdle),
             run_mode(exp, guest::TickMode::kParatick),
             {}};
  r.comparison = metrics::compare(r.baseline, r.treatment);
  return r;
}

}  // namespace paratick::core
