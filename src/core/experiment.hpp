// Experiment helpers: run the same workload under different tick modes
// and compare, the way every table/figure of the paper is produced.
#pragma once

#include <functional>
#include <string>

#include "core/system.hpp"
#include "metrics/run_metrics.hpp"

namespace paratick::core {

/// A reusable experiment: everything but the tick mode is fixed.
struct ExperimentSpec {
  hw::MachineSpec machine = hw::MachineSpec::small(1);
  hv::HostConfig host;
  int vcpus = 1;
  sim::Frequency guest_tick_freq{250.0};
  guest::GuestCostModel guest_costs;
  std::function<void(guest::GuestKernel&)> setup;
  bool attach_disk = false;
  hw::BlockDeviceSpec disk = hw::BlockDeviceSpec::sata_ssd();
  sim::SimTime max_duration = sim::SimTime::sec(30);
  std::uint64_t guest_seed = 1234;
};

/// Build a one-VM SystemSpec for `mode` from the experiment template.
[[nodiscard]] SystemSpec make_system_spec(const ExperimentSpec& exp,
                                          guest::TickMode mode);

/// Run the experiment under `mode` and return the collected metrics.
[[nodiscard]] metrics::RunResult run_mode(const ExperimentSpec& exp,
                                          guest::TickMode mode);

/// Paper-style A/B: dynticks baseline vs paratick treatment.
struct AbResult {
  metrics::RunResult baseline;   // dynticks idle (vanilla)
  metrics::RunResult treatment;  // paratick
  metrics::Comparison comparison;
};
[[nodiscard]] AbResult run_paratick_vs_dynticks(const ExperimentSpec& exp);

}  // namespace paratick::core
