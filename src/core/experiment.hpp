// Experiment helpers: run the same workload under different tick modes
// and compare, the way every table/figure of the paper is produced.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "metrics/run_metrics.hpp"

namespace paratick::core {

/// Derive the `index`-th independent child seed from `root` (splitmix64
/// over (root, index)). A pure function, so seed assignment in sweeps never
/// depends on execution order or thread count.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index);

struct ExperimentSpec;

/// The scenario dimension of an experiment: how many VMs run which
/// workloads under which scheduling mode — and, for topologies beyond a
/// single host, a factory that runs the materialized spec itself. Folded
/// out of the old ad-hoc ExperimentSpec fields so the single-host grids
/// and the cluster grids share one shape.
struct ScenarioSpec {
  /// Identical VM copies (consolidation / Table 1 W2+W4 shapes). With more
  /// than one copy, each VM's seed is derive_seed(guest_seed, copy).
  int vm_copies = 1;
  /// Per-copy workload overrides; when non-empty it wins over the
  /// experiment's `setup` and its size wins over `vm_copies`.
  std::vector<std::function<void(guest::GuestKernel&)>> vm_setups;
  /// Explicit scheduling mode; default: the host config's mode, upgraded
  /// to shared when the VMs' vCPUs outnumber the physical CPUs.
  std::optional<hv::SchedMode> sched_mode;
  /// Scenario factory: when set, run_mode() hands the fully materialized
  /// experiment (machine sized by the overcommit axis, seeds derived) to
  /// this callable instead of building a plain single-host System. The
  /// cluster layer plugs in here; the sweep pipeline above is unchanged.
  std::function<metrics::RunResult(const ExperimentSpec&, guest::TickMode)> run;

  [[nodiscard]] int effective_copies() const {
    return vm_setups.empty() ? (vm_copies > 0 ? vm_copies : 1)
                             : static_cast<int>(vm_setups.size());
  }
};

/// A reusable experiment: everything but the tick mode is fixed.
struct ExperimentSpec {
  hw::MachineSpec machine = hw::MachineSpec::small(1);
  hv::HostConfig host;
  int vcpus = 1;  // per VM
  sim::Frequency guest_tick_freq{250.0};
  guest::GuestCostModel guest_costs;
  std::function<void(guest::GuestKernel&)> setup;
  bool attach_disk = false;
  hw::BlockDeviceSpec disk = hw::BlockDeviceSpec::sata_ssd();
  sim::SimTime max_duration = sim::SimTime::sec(30);
  std::uint64_t guest_seed = 1234;
  /// VM-copy / workload-placement / scheduling dimension, plus the
  /// optional factory that runs the materialized spec (cluster layer).
  ScenarioSpec scenario;
  bool stop_when_done = true;

  /// Chaos injection (see SystemSpec). fault_seed 0 = derive from
  /// guest_seed, so single runs stay reproducible without extra plumbing.
  fault::FaultConfig fault;
  std::uint64_t fault_seed = 0;
  bool watchdog = false;
  sim::SimTime watchdog_period = sim::SimTime::ms(5);
  sim::SimTime watchdog_timer_grace = sim::SimTime::ms(5);
  double wall_limit_sec = 0.0;
  /// Engine dispatch-loop observer (see SystemSpec::observer).
  sim::EventObserver* observer = nullptr;
};

/// Build a one-VM SystemSpec for `mode` from the experiment template.
[[nodiscard]] SystemSpec make_system_spec(const ExperimentSpec& exp,
                                          guest::TickMode mode);

/// Run the experiment under `mode` and return the collected metrics.
[[nodiscard]] metrics::RunResult run_mode(const ExperimentSpec& exp,
                                          guest::TickMode mode);

/// Paper-style A/B: dynticks baseline vs paratick treatment.
struct AbResult {
  metrics::RunResult baseline;   // dynticks idle (vanilla)
  metrics::RunResult treatment;  // paratick
  metrics::Comparison comparison;
};
[[nodiscard]] AbResult run_paratick_vs_dynticks(const ExperimentSpec& exp);

}  // namespace paratick::core
