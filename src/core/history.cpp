#include "core/history.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <unordered_map>

#include "metrics/report.hpp"
#include "sim/check.hpp"

namespace paratick::core {

namespace {

// ---- minimal JSON reader ------------------------------------------------
//
// Only what SweepResult::to_json() emits (objects, arrays, strings,
// numbers, bools, null), but written as a complete little parser so a
// hand-edited or truncated snapshot fails with a position, not UB.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    PARATICK_CHECK_MSG(i_ == s_.size(), "json: trailing garbage after document");
    return v;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) ++i_;
  }

  char peek() {
    skip_ws();
    PARATICK_CHECK_MSG(i_ < s_.size(), "json: unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    PARATICK_CHECK_MSG(peek() == c, "json: unexpected character");
    ++i_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (s_.compare(i_, len, lit) != 0) return false;
    i_ += len;
    return true;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't':
      case 'f':
      case 'n': return literal();
      default: return number();
    }
  }

  JsonValue literal() {
    JsonValue v;
    if (consume_literal("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
    } else if (consume_literal("false")) {
      v.type = JsonValue::Type::kBool;
    } else if (consume_literal("null")) {
      v.type = JsonValue::Type::kNull;
    } else {
      PARATICK_CHECK_MSG(false, "json: bad literal");
    }
    return v;
  }

  JsonValue number() {
    const char* start = s_.c_str() + i_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    PARATICK_CHECK_MSG(end != start, "json: bad number");
    i_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  JsonValue string() {
    expect('"');
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (true) {
      PARATICK_CHECK_MSG(i_ < s_.size(), "json: unterminated string");
      const char c = s_[i_++];
      if (c == '"') break;
      if (c != '\\') {
        v.str += c;
        continue;
      }
      PARATICK_CHECK_MSG(i_ < s_.size(), "json: unterminated escape");
      const char esc = s_[i_++];
      switch (esc) {
        case '"': v.str += '"'; break;
        case '\\': v.str += '\\'; break;
        case '/': v.str += '/'; break;
        case 'n': v.str += '\n'; break;
        case 'r': v.str += '\r'; break;
        case 't': v.str += '\t'; break;
        case 'b': v.str += '\b'; break;
        case 'f': v.str += '\f'; break;
        case 'u': {
          PARATICK_CHECK_MSG(i_ + 4 <= s_.size(), "json: bad \\u escape");
          const unsigned long code = std::strtoul(s_.substr(i_, 4).c_str(), nullptr, 16);
          i_ += 4;
          // Snapshot strings are ASCII control chars at most; encode the
          // BMP code point as UTF-8 for completeness.
          if (code < 0x80) {
            v.str += static_cast<char>(code);
          } else if (code < 0x800) {
            v.str += static_cast<char>(0xC0 | (code >> 6));
            v.str += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            v.str += static_cast<char>(0xE0 | (code >> 12));
            v.str += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            v.str += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: PARATICK_CHECK_MSG(false, "json: unknown escape");
      }
    }
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++i_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      const char c = peek();
      ++i_;
      if (c == ']') break;
      PARATICK_CHECK_MSG(c == ',', "json: expected ',' or ']' in array");
    }
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++i_;
      return v;
    }
    while (true) {
      JsonValue key = string();
      expect(':');
      v.object.emplace_back(std::move(key.str), value());
      const char c = peek();
      ++i_;
      if (c == '}') break;
      PARATICK_CHECK_MSG(c == ',', "json: expected ',' or '}' in object");
    }
    return v;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

double num_field(const JsonValue& obj, const char* key, double fallback = 0.0) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) return fallback;
  return v->number;
}

std::string str_field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  PARATICK_CHECK_MSG(v != nullptr && v->type == JsonValue::Type::kString,
                     "snapshot cell: missing string field");
  return v->str;
}

}  // namespace

std::string SnapshotCell::key() const {
  return metrics::format("%s|%s|f=%g|v=%d|oc=%g", variant.c_str(), mode.c_str(),
                         tick_freq_hz, vcpus, overcommit);
}

const SnapshotMetric* SnapshotCell::metric(const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Snapshot parse_snapshot(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  PARATICK_CHECK_MSG(root.type == JsonValue::Type::kObject,
                     "snapshot: top level must be an object");
  Snapshot snap;
  snap.wall_seconds = num_field(root, "wall_seconds");
  snap.threads = static_cast<unsigned>(num_field(root, "threads"));

  const JsonValue* cells = root.find("cells");
  PARATICK_CHECK_MSG(cells != nullptr && cells->type == JsonValue::Type::kArray,
                     "snapshot: missing \"cells\" array");
  for (const JsonValue& c : cells->array) {
    PARATICK_CHECK_MSG(c.type == JsonValue::Type::kObject,
                       "snapshot: cell must be an object");
    SnapshotCell cell;
    cell.variant = str_field(c, "variant");
    cell.mode = str_field(c, "mode");
    cell.tick_freq_hz = num_field(c, "tick_freq_hz");
    cell.vcpus = static_cast<int>(num_field(c, "vcpus"));
    cell.overcommit = num_field(c, "overcommit");
    cell.replicas = static_cast<std::uint64_t>(num_field(c, "replicas"));
    for (const auto& [name, v] : c.object) {
      if (v.type != JsonValue::Type::kObject) continue;  // metrics only
      SnapshotMetric m;
      m.name = name;
      m.mean = num_field(v, "mean");
      m.stddev = num_field(v, "stddev");
      // exits/timer_exits/busy_cycles carry no per-metric n: the replica
      // count is their sample count.
      m.n = static_cast<std::uint64_t>(
          num_field(v, "n", static_cast<double>(cell.replicas)));
      cell.metrics.push_back(std::move(m));
    }
    snap.cells.push_back(std::move(cell));
  }
  return snap;
}

Snapshot load_snapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  PARATICK_CHECK_MSG(f != nullptr, "cannot open snapshot file");
  std::string content;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, got);
  std::fclose(f);
  return parse_snapshot(content);
}

DiffResult diff_snapshots(const Snapshot& baseline, const Snapshot& current,
                          const DiffConfig& cfg) {
  DiffResult out;

  std::unordered_map<std::string, const SnapshotCell*> cur_by_key;
  for (const auto& c : current.cells) cur_by_key.emplace(c.key(), &c);
  std::unordered_map<std::string, const SnapshotCell*> base_by_key;
  for (const auto& c : baseline.cells) base_by_key.emplace(c.key(), &c);

  if (cfg.grid_must_match) {
    for (const auto& c : current.cells) {
      if (base_by_key.count(c.key()) == 0) {
        out.findings.push_back({DiffFinding::Kind::kCellAdded, c.key(), {}, 0, 0, 0, 0});
      }
    }
  }

  for (const auto& base_cell : baseline.cells) {
    const auto it = cur_by_key.find(base_cell.key());
    if (it == cur_by_key.end()) {
      if (cfg.grid_must_match) {
        out.findings.push_back(
            {DiffFinding::Kind::kCellRemoved, base_cell.key(), {}, 0, 0, 0, 0});
      }
      continue;
    }
    const SnapshotCell& cur_cell = *it->second;
    ++out.cells_compared;

    for (const auto& bm : base_cell.metrics) {
      const SnapshotMetric* cm = cur_cell.metric(bm.name);
      if (cm == nullptr) continue;           // metric set drift: ignore
      if (bm.n == 0 && cm->n == 0) continue;  // no samples on either side
      ++out.metrics_compared;

      DiffFinding f;
      f.kind = DiffFinding::Kind::kShift;
      f.cell = base_cell.key();
      f.metric = bm.name;
      f.baseline_mean = bm.mean;
      f.current_mean = cm->mean;

      if ((bm.n == 0) != (cm->n == 0)) {
        // A metric gained or lost all its samples (e.g. the workload
        // stopped completing): always a finding.
        f.z = std::numeric_limits<double>::infinity();
        f.rel_delta = 0.0;
        out.findings.push_back(f);
        continue;
      }

      const double delta = cm->mean - bm.mean;
      const double denom = std::max(std::abs(bm.mean), 1e-12);
      f.rel_delta = delta / denom;
      if (std::abs(f.rel_delta) < cfg.rel_min) continue;

      // Welch standard error of the difference of means.
      const double se =
          std::sqrt(bm.stddev * bm.stddev / static_cast<double>(bm.n) +
                    cm->stddev * cm->stddev / static_cast<double>(cm->n));
      if (se == 0.0) {
        // Deterministic cells (single replica or zero variance): any
        // above-floor shift is a regression by definition.
        f.z = std::numeric_limits<double>::infinity();
        out.findings.push_back(f);
        continue;
      }
      f.z = std::abs(delta) / se;
      if (f.z > cfg.z_threshold) out.findings.push_back(f);
    }
  }
  return out;
}

std::string describe(const DiffResult& diff, const DiffConfig& cfg) {
  std::string out;
  for (const auto& f : diff.findings) {
    switch (f.kind) {
      case DiffFinding::Kind::kCellAdded:
        out += metrics::format("GRID  + %s (cell only in current)\n", f.cell.c_str());
        break;
      case DiffFinding::Kind::kCellRemoved:
        out += metrics::format("GRID  - %s (cell only in baseline)\n", f.cell.c_str());
        break;
      case DiffFinding::Kind::kShift:
        out += metrics::format(
            "SHIFT %s :: %s  %.4g -> %.4g  (%+.2f%%, z=%s)\n", f.cell.c_str(),
            f.metric.c_str(), f.baseline_mean, f.current_mean, f.rel_delta * 100.0,
            std::isinf(f.z) ? "inf" : metrics::format("%.1f", f.z).c_str());
        break;
    }
  }
  out += metrics::format(
      "%zu cells, %zu metrics compared; %zu finding(s) (z > %.1f, |rel| > %g)\n",
      diff.cells_compared, diff.metrics_compared, diff.findings.size(),
      cfg.z_threshold, cfg.rel_min);
  return out;
}

std::string history_tag_now() {
  std::string tag;
  if (const char* env = std::getenv("PARATICK_HISTORY_TAG"); env != nullptr && *env) {
    tag = env;
  } else if (const char* sha = std::getenv("GITHUB_SHA"); sha != nullptr && *sha) {
    tag = std::string(sha).substr(0, 12);
  } else if (std::FILE* p = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, p) != nullptr) tag = buf;
    ::pclose(p);
  }
  while (!tag.empty() && (tag.back() == '\n' || tag.back() == '\r')) tag.pop_back();
  if (tag.empty()) tag = "worktree";
  for (char& c : tag) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                    c == '_' || c == '.';
    if (!ok) c = '_';
  }
  return tag;
}

std::string write_history_snapshot(const SweepResult& result, const std::string& dir,
                                   const std::string& bench, const std::string& tag) {
  namespace fs = std::filesystem;
  const fs::path subdir = fs::path(dir) / bench;
  std::error_code ec;
  fs::create_directories(subdir, ec);
  PARATICK_CHECK_MSG(!ec, "cannot create history directory");
  const fs::path path = subdir / (tag + ".json");
  result.write_json(path.string());
  return path.string();
}

}  // namespace paratick::core
