#include "core/history.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <unordered_map>

#include "core/json.hpp"
#include "core/safe_io.hpp"
#include "metrics/report.hpp"
#include "sim/check.hpp"
#include "sim/error.hpp"

namespace paratick::core {

std::string SnapshotCell::key() const {
  return metrics::format("%s|%s|f=%g|v=%d|oc=%g", variant.c_str(), mode.c_str(),
                         tick_freq_hz, vcpus, overcommit);
}

const SnapshotMetric* SnapshotCell::metric(const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Snapshot parse_snapshot(const std::string& text) {
  const json::Value root = json::parse(text);
  PARATICK_CHECK_MSG(root.type == json::Value::Type::kObject,
                     "snapshot: top level must be an object");
  Snapshot snap;
  snap.wall_seconds = json::num_field(root, "wall_seconds");
  snap.threads = static_cast<unsigned>(json::num_field(root, "threads"));

  const json::Value* cells = root.find("cells");
  PARATICK_CHECK_MSG(cells != nullptr && cells->type == json::Value::Type::kArray,
                     "snapshot: missing \"cells\" array");
  for (const json::Value& c : cells->array) {
    PARATICK_CHECK_MSG(c.type == json::Value::Type::kObject,
                       "snapshot: cell must be an object");
    SnapshotCell cell;
    cell.variant = json::str_field(c, "variant");
    cell.mode = json::str_field(c, "mode");
    cell.tick_freq_hz = json::num_field(c, "tick_freq_hz");
    cell.vcpus = static_cast<int>(json::num_field(c, "vcpus"));
    cell.overcommit = json::num_field(c, "overcommit");
    cell.replicas = static_cast<std::uint64_t>(json::num_field(c, "replicas"));
    for (const auto& [name, v] : c.object) {
      if (v.type != json::Value::Type::kObject) continue;  // metrics only
      if (name == "wake_us_hist") {
        // Not a mean/stddev metric: the merged LogHistogram bucket array.
        if (const json::Value* b = v.find("buckets");
            b != nullptr && b->type == json::Value::Type::kArray) {
          for (const json::Value& n : b->array) {
            cell.wake_hist.push_back(static_cast<std::uint64_t>(n.number));
          }
        }
        continue;
      }
      SnapshotMetric m;
      m.name = name;
      m.mean = json::num_field(v, "mean");
      m.stddev = json::num_field(v, "stddev");
      // exits/timer_exits/busy_cycles carry no per-metric n: the replica
      // count is their sample count.
      m.n = static_cast<std::uint64_t>(
          json::num_field(v, "n", static_cast<double>(cell.replicas)));
      cell.metrics.push_back(std::move(m));
    }
    snap.cells.push_back(std::move(cell));
  }
  return snap;
}

Snapshot load_snapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    const std::string msg = "cannot open snapshot file: " + path;
    PARATICK_CHECK_MSG(false, msg.c_str());
  }
  std::string content;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, got);
  std::fclose(f);
  return parse_snapshot(content);
}

std::optional<Snapshot> try_load_snapshot(const std::string& path,
                                          std::string* error) {
  try {
    return load_snapshot(path);
  } catch (const sim::SimError& e) {
    if (error != nullptr) *error = path + ": " + e.msg();
    return std::nullopt;
  }
}

namespace {

/// Two-sample Kolmogorov–Smirnov distance over LogHistogram bucket counts:
/// max CDF gap over bucket-boundary prefixes, with the shorter bucket array
/// implicitly zero-padded (buckets are a fixed log grid, so index i means
/// the same latency range in both snapshots).
double ks_distance(const std::vector<std::uint64_t>& a,
                   const std::vector<std::uint64_t>& b) {
  double ta = 0.0, tb = 0.0;
  for (const std::uint64_t v : a) ta += static_cast<double>(v);
  for (const std::uint64_t v : b) tb += static_cast<double>(v);
  if (ta == 0.0 || tb == 0.0) return 0.0;
  const std::size_t n = std::max(a.size(), b.size());
  double ca = 0.0, cb = 0.0, ks = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < a.size()) ca += static_cast<double>(a[i]);
    if (i < b.size()) cb += static_cast<double>(b[i]);
    ks = std::max(ks, std::abs(ca / ta - cb / tb));
  }
  return ks;
}

}  // namespace

DiffResult diff_snapshots(const Snapshot& baseline, const Snapshot& current,
                          const DiffConfig& cfg) {
  DiffResult out;

  std::unordered_map<std::string, const SnapshotCell*> cur_by_key;
  for (const auto& c : current.cells) cur_by_key.emplace(c.key(), &c);
  std::unordered_map<std::string, const SnapshotCell*> base_by_key;
  for (const auto& c : baseline.cells) base_by_key.emplace(c.key(), &c);

  if (cfg.grid_must_match) {
    for (const auto& c : current.cells) {
      if (base_by_key.count(c.key()) == 0) {
        out.findings.push_back({DiffFinding::Kind::kCellAdded, c.key(), {}, 0, 0, 0, 0});
      }
    }
  }

  for (const auto& base_cell : baseline.cells) {
    const auto it = cur_by_key.find(base_cell.key());
    if (it == cur_by_key.end()) {
      if (cfg.grid_must_match) {
        out.findings.push_back(
            {DiffFinding::Kind::kCellRemoved, base_cell.key(), {}, 0, 0, 0, 0});
      }
      continue;
    }
    const SnapshotCell& cur_cell = *it->second;
    ++out.cells_compared;

    for (const auto& bm : base_cell.metrics) {
      if (!cfg.includes(bm.name)) continue;
      const SnapshotMetric* cm = cur_cell.metric(bm.name);
      if (cm == nullptr) continue;           // metric set drift: ignore
      if (bm.n == 0 && cm->n == 0) continue;  // no samples on either side
      ++out.metrics_compared;

      DiffFinding f;
      f.kind = DiffFinding::Kind::kShift;
      f.cell = base_cell.key();
      f.metric = bm.name;
      f.baseline_mean = bm.mean;
      f.current_mean = cm->mean;

      if ((bm.n == 0) != (cm->n == 0)) {
        // A metric gained or lost all its samples (e.g. the workload
        // stopped completing): always a finding.
        f.z = std::numeric_limits<double>::infinity();
        f.rel_delta = 0.0;
        out.findings.push_back(f);
        continue;
      }

      const double delta = cm->mean - bm.mean;
      const double denom = std::max(std::abs(bm.mean), 1e-12);
      f.rel_delta = delta / denom;
      if (std::abs(f.rel_delta) < cfg.rel_min) continue;

      // Welch standard error of the difference of means.
      const double se =
          std::sqrt(bm.stddev * bm.stddev / static_cast<double>(bm.n) +
                    cm->stddev * cm->stddev / static_cast<double>(cm->n));
      if (se == 0.0) {
        // Deterministic cells (single replica or zero variance): any
        // above-floor shift is a regression by definition.
        f.z = std::numeric_limits<double>::infinity();
        out.findings.push_back(f);
        continue;
      }
      f.z = std::abs(delta) / se;
      if (f.z > cfg.z_threshold) out.findings.push_back(f);
    }

    // Distribution gate: KS distance between the cells' wake-latency
    // histograms. Skipped when either snapshot predates histograms or the
    // cell recorded no wakeups.
    if (cfg.includes("wake_us_hist") && !base_cell.wake_hist.empty() &&
        !cur_cell.wake_hist.empty()) {
      const double ks = ks_distance(base_cell.wake_hist, cur_cell.wake_hist);
      if (ks > cfg.ks_threshold) {
        DiffFinding f;
        f.kind = DiffFinding::Kind::kDistribution;
        f.cell = base_cell.key();
        f.metric = "wake_us_hist";
        f.z = ks;
        out.findings.push_back(f);
      }
    }
  }
  return out;
}

std::string describe(const DiffResult& diff, const DiffConfig& cfg) {
  std::string out;
  for (const auto& f : diff.findings) {
    switch (f.kind) {
      case DiffFinding::Kind::kCellAdded:
        out += metrics::format("GRID  + %s (cell only in current)\n", f.cell.c_str());
        break;
      case DiffFinding::Kind::kCellRemoved:
        out += metrics::format("GRID  - %s (cell only in baseline)\n", f.cell.c_str());
        break;
      case DiffFinding::Kind::kShift:
        out += metrics::format(
            "SHIFT %s :: %s  %.4g -> %.4g  (%+.2f%%, z=%s)\n", f.cell.c_str(),
            f.metric.c_str(), f.baseline_mean, f.current_mean, f.rel_delta * 100.0,
            std::isinf(f.z) ? "inf" : metrics::format("%.1f", f.z).c_str());
        break;
      case DiffFinding::Kind::kDistribution:
        out += metrics::format("DIST  %s :: %s  KS=%.3f (threshold %.3f)\n",
                               f.cell.c_str(), f.metric.c_str(), f.z,
                               cfg.ks_threshold);
        break;
    }
  }
  out += metrics::format(
      "%zu cells, %zu metrics compared; %zu finding(s) (z > %.1f, |rel| > %g)\n",
      diff.cells_compared, diff.metrics_compared, diff.findings.size(),
      cfg.z_threshold, cfg.rel_min);
  return out;
}

std::string history_tag_now() {
  std::string tag;
  if (const char* env = std::getenv("PARATICK_HISTORY_TAG"); env != nullptr && *env) {
    tag = env;
  } else if (const char* sha = std::getenv("GITHUB_SHA"); sha != nullptr && *sha) {
    tag = std::string(sha).substr(0, 12);
  } else if (std::FILE* p = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, p) != nullptr) tag = buf;
    ::pclose(p);
  }
  while (!tag.empty() && (tag.back() == '\n' || tag.back() == '\r')) tag.pop_back();
  if (tag.empty()) tag = "worktree";
  for (char& c : tag) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                    c == '_' || c == '.';
    if (!ok) c = '_';
  }
  return tag;
}

std::string write_history_snapshot(const SweepResult& result, const std::string& dir,
                                   const std::string& bench, const std::string& tag) {
  namespace fs = std::filesystem;
  const fs::path subdir = fs::path(dir) / bench;
  std::error_code ec;
  fs::create_directories(subdir, ec);
  PARATICK_CHECK_MSG(!ec, "cannot create history directory");
  const fs::path path = subdir / (tag + ".json");
  // Atomic write: a run killed mid-snapshot must not strand a truncated
  // history file for bench_diff (or a continuous-benchmarking fleet) to
  // trip over.
  write_file_atomic(path.string(), result.to_json());
  return path.string();
}

}  // namespace paratick::core
