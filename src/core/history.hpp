// Bench trajectory history: persist SweepResult::to_json() snapshots per
// commit under <history-dir>/<bench>/<tag>.json and diff two snapshots to
// catch metric regressions across PRs (ROADMAP: "Bench JSON trajectory").
//
// The diff is stddev-aware: with --repeat replicas each cell carries a
// mean and stddev per metric, so a shift is flagged only when its z-score
// (Welch standard error from both snapshots) clears a threshold AND the
// relative change clears a floor — deterministic same-seed re-runs diff
// clean, injected mean shifts exit nonzero (bench/bench_diff.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace paratick::core {

/// One "mean/stddev/n" metric object of a snapshot cell. Metrics that do
/// not export a sample count (exits/timer_exits/busy_cycles) inherit the
/// cell's replica count.
struct SnapshotMetric {
  std::string name;
  double mean = 0.0;
  double stddev = 0.0;
  std::uint64_t n = 0;
};

struct SnapshotCell {
  std::string variant;
  std::string mode;
  double tick_freq_hz = 0.0;
  int vcpus = 0;
  double overcommit = 0.0;
  std::uint64_t replicas = 0;
  std::vector<SnapshotMetric> metrics;
  /// wake_us LogHistogram bucket counts (empty in pre-histogram snapshots;
  /// the KS gate silently skips such cells).
  std::vector<std::uint64_t> wake_hist;

  /// Grid identity (everything except the measured values): the join key
  /// used by diff_snapshots.
  [[nodiscard]] std::string key() const;
  [[nodiscard]] const SnapshotMetric* metric(const std::string& name) const;
};

struct Snapshot {
  double wall_seconds = 0.0;
  unsigned threads = 0;
  std::vector<SnapshotCell> cells;
};

/// Parse a SweepResult::to_json() document. Raises PARATICK_CHECK on
/// malformed input (the format is produced by this repo, so strictness is
/// a feature: a truncated upload should fail the gate loudly).
[[nodiscard]] Snapshot parse_snapshot(const std::string& json);
[[nodiscard]] Snapshot load_snapshot(const std::string& path);

/// Non-throwing load for gate binaries: nullopt on a missing or corrupt
/// snapshot, with `*error` (if non-null) set to a message that names the
/// path and what went wrong — so bench_diff can tell the user to
/// regenerate the baseline instead of dumping a raw CHECK failure.
[[nodiscard]] std::optional<Snapshot> try_load_snapshot(const std::string& path,
                                                        std::string* error);

struct DiffConfig {
  /// Welch z-score above which a mean shift counts as a regression.
  double z_threshold = 4.0;
  /// Relative-change floor: shifts below this fraction of the baseline
  /// mean never flag, whatever the z-score (absorbs FP/format jitter and
  /// zero-stddev single-replica cells).
  double rel_min = 1e-3;
  /// Cells present in only one snapshot fail the gate (grid drift).
  bool grid_must_match = true;
  /// Kolmogorov–Smirnov distance above which the wake_us histograms of a
  /// cell count as a distribution regression — catches tail blowups that
  /// leave the mean untouched. Cells without histograms are skipped.
  double ks_threshold = 0.15;
  /// Include filter by metric name; empty = compare every metric. Name
  /// "wake_us_hist" enables the KS gate. Lets CI gate host-dependent
  /// metrics (events_per_sec) at a different threshold than the
  /// deterministic counters by running the diff twice.
  std::vector<std::string> metrics;

  [[nodiscard]] bool includes(const std::string& name) const {
    if (metrics.empty()) return true;
    for (const auto& m : metrics) {
      if (m == name) return true;
    }
    return false;
  }
};

struct DiffFinding {
  enum class Kind { kShift, kCellAdded, kCellRemoved, kDistribution };
  Kind kind = Kind::kShift;
  std::string cell;    // SnapshotCell::key()
  std::string metric;  // empty for grid findings
  double baseline_mean = 0.0;
  double current_mean = 0.0;
  double z = 0.0;        // +inf encoded as a large sentinel when se == 0;
                         // for kDistribution this is the KS distance
  double rel_delta = 0.0;  // (current - baseline) / |baseline|
};

struct DiffResult {
  std::vector<DiffFinding> findings;
  std::size_t cells_compared = 0;
  std::size_t metrics_compared = 0;

  [[nodiscard]] bool clean() const { return findings.empty(); }
};

[[nodiscard]] DiffResult diff_snapshots(const Snapshot& baseline,
                                        const Snapshot& current,
                                        const DiffConfig& cfg = {});

/// Human-readable report of a diff (one line per finding + a summary).
[[nodiscard]] std::string describe(const DiffResult& diff, const DiffConfig& cfg);

/// Snapshot tag for "now": PARATICK_HISTORY_TAG env var, else GITHUB_SHA,
/// else `git rev-parse --short HEAD`, else "worktree". Sanitized to
/// filename-safe characters.
[[nodiscard]] std::string history_tag_now();

/// Write `result`'s JSON snapshot to <dir>/<bench>/<tag>.json (creating
/// directories) and return the path written.
std::string write_history_snapshot(const SweepResult& result,
                                   const std::string& dir,
                                   const std::string& bench,
                                   const std::string& tag);

}  // namespace paratick::core
