#include "core/json.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "sim/check.hpp"
#include "sim/error.hpp"

namespace paratick::core::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    PARATICK_CHECK_MSG(i_ == s_.size(), "json: trailing garbage after document");
    return v;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) ++i_;
  }

  char peek() {
    skip_ws();
    PARATICK_CHECK_MSG(i_ < s_.size(), "json: unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    PARATICK_CHECK_MSG(peek() == c, "json: unexpected character");
    ++i_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (s_.compare(i_, len, lit) != 0) return false;
    i_ += len;
    return true;
  }

  Value value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't':
      case 'f':
      case 'n': return literal();
      default: return number();
    }
  }

  Value literal() {
    Value v;
    if (consume_literal("true")) {
      v.type = Value::Type::kBool;
      v.boolean = true;
    } else if (consume_literal("false")) {
      v.type = Value::Type::kBool;
    } else if (consume_literal("null")) {
      v.type = Value::Type::kNull;
    } else {
      PARATICK_CHECK_MSG(false, "json: bad literal");
    }
    return v;
  }

  Value number() {
    const char* start = s_.c_str() + i_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    PARATICK_CHECK_MSG(end != start, "json: bad number");
    i_ += static_cast<std::size_t>(end - start);
    Value v;
    v.type = Value::Type::kNumber;
    v.number = d;
    return v;
  }

  Value string() {
    expect('"');
    Value v;
    v.type = Value::Type::kString;
    while (true) {
      PARATICK_CHECK_MSG(i_ < s_.size(), "json: unterminated string");
      const char c = s_[i_++];
      if (c == '"') break;
      if (c != '\\') {
        v.str += c;
        continue;
      }
      PARATICK_CHECK_MSG(i_ < s_.size(), "json: unterminated escape");
      const char esc = s_[i_++];
      switch (esc) {
        case '"': v.str += '"'; break;
        case '\\': v.str += '\\'; break;
        case '/': v.str += '/'; break;
        case 'n': v.str += '\n'; break;
        case 'r': v.str += '\r'; break;
        case 't': v.str += '\t'; break;
        case 'b': v.str += '\b'; break;
        case 'f': v.str += '\f'; break;
        case 'u': {
          PARATICK_CHECK_MSG(i_ + 4 <= s_.size(), "json: bad \\u escape");
          const unsigned long code = std::strtoul(s_.substr(i_, 4).c_str(), nullptr, 16);
          i_ += 4;
          // Exporter strings are ASCII control chars at most; encode the
          // BMP code point as UTF-8 for completeness.
          if (code < 0x80) {
            v.str += static_cast<char>(code);
          } else if (code < 0x800) {
            v.str += static_cast<char>(0xC0 | (code >> 6));
            v.str += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            v.str += static_cast<char>(0xE0 | (code >> 12));
            v.str += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            v.str += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: PARATICK_CHECK_MSG(false, "json: unknown escape");
      }
    }
    return v;
  }

  Value array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    if (peek() == ']') {
      ++i_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      const char c = peek();
      ++i_;
      if (c == ']') break;
      PARATICK_CHECK_MSG(c == ',', "json: expected ',' or ']' in array");
    }
    return v;
  }

  Value object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    if (peek() == '}') {
      ++i_;
      return v;
    }
    while (true) {
      Value key = string();
      expect(':');
      v.object.emplace_back(std::move(key.str), value());
      const char c = peek();
      ++i_;
      if (c == '}') break;
      PARATICK_CHECK_MSG(c == ',', "json: expected ',' or '}' in object");
    }
    return v;
  }

  const std::string& s_;

 public:
  std::size_t i_ = 0;
};

}  // namespace

Value parse(const std::string& text) {
  Parser parser(text);
  try {
    return parser.parse();
  } catch (const sim::SimError& e) {
    // Re-throw with the byte offset where parsing stopped: for a corrupt
    // multi-megabyte partial snapshot, "json: bad number" alone is not
    // actionable — "at byte offset 1048241" pins the torn write.
    const std::string msg =
        e.msg() + " (at byte offset " + std::to_string(parser.i_) + " of " +
        std::to_string(text.size()) + ")";
    throw sim::SimError(e.kind(), e.expr(), e.file(), e.line(), msg,
                        e.sim_time(), e.events_executed());
  }
}

double num_field(const Value& obj, const char* key, double fallback) {
  const Value* v = obj.find(key);
  if (v == nullptr || v->type != Value::Type::kNumber) return fallback;
  return v->number;
}

std::string str_field(const Value& obj, const char* key) {
  const Value* v = obj.find(key);
  PARATICK_CHECK_MSG(v != nullptr && v->type == Value::Type::kString,
                     "json: missing string field");
  return v->str;
}

}  // namespace paratick::core::json
