// Minimal JSON reader shared by the history and replay layers.
//
// Only what this repo's own exporters emit (objects, arrays, strings,
// numbers, bools, null), but written as a complete little parser so a
// hand-edited or truncated document fails with a PARATICK_CHECK message,
// not UB.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace paratick::core::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parse a complete JSON document. PARATICK_CHECK (throws sim::SimError)
/// on malformed input.
[[nodiscard]] Value parse(const std::string& text);

/// Object field helpers; `num` falls back, `str` CHECKs presence.
[[nodiscard]] double num_field(const Value& obj, const char* key,
                               double fallback = 0.0);
[[nodiscard]] std::string str_field(const Value& obj, const char* key);

}  // namespace paratick::core::json
