#include "core/parallel_scenario.hpp"

#include <cstdio>
#include <memory>
#include <utility>

#include "core/experiment.hpp"
#include "core/record_replay/record_replay.hpp"
#include "core/system.hpp"
#include "hw/interrupt.hpp"
#include "sim/check.hpp"

namespace paratick::core {

namespace {

/// Self-rescheduling fabric pacer: lives on one partition's engine and,
/// every period, buffers a wake-IPI message to the ring successor. The
/// send happens inside the source engine's own event (the parallel
/// engine's outbox rule); the IPI callback later runs inside the
/// DESTINATION engine, so it may touch that System freely.
struct RingPacer {
  sim::ParallelEngine* fabric = nullptr;
  sim::PartitionId src = 0;
  sim::PartitionId dst = 0;
  System* dst_system = nullptr;
  sim::SimTime period;
  sim::SimTime latency;
  sim::SimTime until;

  void arm(sim::Engine& engine) {
    if (engine.now() + period > until) return;
    engine.schedule_after(period, [this, &engine] {
      fabric->send(src, dst, latency, [sys = dst_system] {
        hv::Kvm& kvm = sys->kvm();
        kvm.deliver_interrupt(kvm.vms().front()->vcpu(0),
                              hw::vectors::kRescheduleIpi,
                              hw::ExitCause::kWakeIpi);
      });
      arm(engine);
    });
  }
};

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_hex64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

PartitionedRunResult run_partitioned_scenario(
    const PartitionedScenarioSpec& spec) {
  PARATICK_CHECK_MSG(spec.vms >= 2, "a partitioned scenario needs >= 2 VMs");
  PARATICK_CHECK_MSG(spec.ping_period >= spec.fabric_latency,
                     "pacer period below the fabric latency would queue "
                     "unbounded in-flight pings");

  // One self-contained System per partition. Fixed duration: the driver
  // owns the event loop, so per-System early-stop wiring stays off.
  std::vector<std::unique_ptr<System>> systems;
  systems.reserve(static_cast<std::size_t>(spec.vms));
  for (int i = 0; i < spec.vms; ++i) {
    SystemSpec sys;
    sys.machine = hw::MachineSpec::small(
        static_cast<std::uint32_t>(spec.vcpus_per_vm));
    sys.host.seed = derive_seed(spec.seed, static_cast<std::uint64_t>(i));
    sys.max_duration = spec.duration;
    sys.stop_when_done = false;
    VmSpec vm;
    vm.vcpus = spec.vcpus_per_vm;
    vm.guest.tick_mode = spec.tick_mode;
    vm.partition_key = static_cast<std::uint32_t>(i);
    vm.setup = [server = spec.server](guest::GuestKernel& k) {
      workload::install_server(k, server);
    };
    sys.vms.push_back(std::move(vm));
    systems.push_back(std::make_unique<System>(std::move(sys)));
  }

  sim::ParallelEngine fabric(spec.engine_threads);
  fabric.set_lookahead_mode(spec.lookahead_mode);
  fabric.set_max_horizon_windows(spec.max_horizon_windows);
  for (int i = 0; i < spec.vms; ++i) {
    fabric.add_partition(systems[static_cast<std::size_t>(i)]->engine(),
                         "vm" + std::to_string(i));
  }
  // Declare exactly the links the pacers use (the ring), not a blanket
  // full mesh: kTopology horizons are only as good as the declared
  // topology is honest.
  for (int i = 0; i < spec.vms; ++i) {
    fabric.declare_link(static_cast<sim::PartitionId>(i),
                        static_cast<sim::PartitionId>((i + 1) % spec.vms),
                        spec.fabric_latency);
  }

  record_replay::ParallelTraceRecorder recorder(
      static_cast<std::uint32_t>(spec.vms));
  if (spec.record_trace) fabric.set_commit_hook(recorder.hook());

  std::vector<std::unique_ptr<RingPacer>> pacers;
  for (int i = 0; i < spec.vms; ++i) {
    const auto src = static_cast<sim::PartitionId>(i);
    const auto dst = static_cast<sim::PartitionId>((i + 1) % spec.vms);
    auto pacer = std::make_unique<RingPacer>();
    pacer->fabric = &fabric;
    pacer->src = src;
    pacer->dst = dst;
    pacer->dst_system = systems[dst].get();
    pacer->period = spec.ping_period;
    pacer->latency = spec.fabric_latency;
    pacer->until = spec.duration;
    pacer->arm(systems[src]->engine());
    pacers.push_back(std::move(pacer));
  }

  for (auto& sys : systems) sys->power_on();
  fabric.run_until(spec.duration);

  PartitionedRunResult out;
  out.vms.reserve(systems.size());
  for (auto& sys : systems) out.vms.push_back(sys->finish());
  out.profile = fabric.profile();
  out.state_digest = fabric.state_digest();
  if (spec.record_trace) {
    out.trace_chain = recorder.trace().chain_digest();
    out.trace_events = recorder.trace().count();
  }
  return out;
}

std::string PartitionedRunResult::to_csv() const {
  std::string out =
      "partition,sim_ns,events_executed,events_scheduled,exits_total,"
      "exits_timer,task_wakes,wake_mean_us,wake_p99_us\n";
  for (std::size_t i = 0; i < vms.size(); ++i) {
    const metrics::RunResult& r = vms[i];
    const metrics::VmResult& v = r.vms.front();
    append_u64(out, i);
    out += ',';
    append_u64(out, static_cast<std::uint64_t>(r.wall.nanoseconds()));
    out += ',';
    append_u64(out, r.events_executed);
    out += ',';
    append_u64(out, r.events_scheduled);
    out += ',';
    append_u64(out, r.exits_total);
    out += ',';
    append_u64(out, r.exits_timer_related);
    out += ',';
    append_u64(out, v.task_wakes);
    out += ',';
    append_double(out, v.wakeup_latency_us.mean());
    out += ',';
    append_double(out, v.wakeup_latency_hist_us.percentile(99.0));
    out += '\n';
  }
  return out;
}

std::string PartitionedRunResult::to_json() const {
  std::string out = "{\n  \"partitions\": [\n";
  for (std::size_t i = 0; i < vms.size(); ++i) {
    const metrics::RunResult& r = vms[i];
    const metrics::VmResult& v = r.vms.front();
    out += "    {\"partition\": ";
    append_u64(out, i);
    out += ", \"sim_ns\": ";
    append_u64(out, static_cast<std::uint64_t>(r.wall.nanoseconds()));
    out += ", \"events_executed\": ";
    append_u64(out, r.events_executed);
    out += ", \"events_scheduled\": ";
    append_u64(out, r.events_scheduled);
    out += ", \"exits_total\": ";
    append_u64(out, r.exits_total);
    out += ", \"exits_timer\": ";
    append_u64(out, r.exits_timer_related);
    out += ", \"task_wakes\": ";
    append_u64(out, v.task_wakes);
    out += ", \"wake_mean_us\": ";
    append_double(out, v.wakeup_latency_us.mean());
    out += "}";
    if (i + 1 < vms.size()) out += ',';
    out += '\n';
  }
  // Window counters (quanta, windows_skipped, ...) are deliberately NOT
  // exported here: they depend on the lookahead mode, and this artifact
  // must stay byte-identical across modes (the CI cmp gate).
  out += "  ],\n  \"cross_messages\": ";
  append_u64(out, profile.cross_messages);
  out += ",\n  \"events_committed\": ";
  append_u64(out, profile.events_committed);
  out += ",\n  \"state_digest\": \"";
  append_hex64(out, state_digest);
  out += "\",\n  \"trace_chain\": \"";
  append_hex64(out, trace_chain);
  out += "\",\n  \"trace_events\": ";
  append_u64(out, trace_events);
  out += "\n}\n";
  return out;
}

}  // namespace paratick::core
