// The partitioned multi-VM scenario: N independent single-VM Systems
// coupled through a wake-IPI fabric, driven by sim::ParallelEngine.
//
// Each VM is a self-contained core::System with its own engine, machine
// and hypervisor — the partition boundary IS the VM boundary, so nothing
// inside a partition ever touches another partition's state. Cross-VM
// interaction is a ring of periodic "pacer" messages: every fabric period
// each VM sends a wake IPI to the next VM in the ring over the declared
// fabric link, modeling virtio-style cross-VM notifications. Exactly the
// ring links the pacers use are declared — real per-link latencies, not a
// blanket full mesh — so kTopology lookahead can derive each VM's safe
// horizon from its actual inbound link.
//
// Determinism contract (the --engine-threads 1-vs-N CI gate): every field
// of PartitionedRunResult except profile.wall_ns — per-VM metrics, the
// merged digest, the committed-order trace chain — is bit-identical for
// any engine-thread count, and to_csv()/to_json() render only those
// fields, so the exported artifacts compare byte-for-byte with cmp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "guest/kernel.hpp"
#include "metrics/run_metrics.hpp"
#include "sim/parallel/parallel_engine.hpp"
#include "sim/types.hpp"
#include "workload/micro.hpp"

namespace paratick::core {

struct PartitionedScenarioSpec {
  int vms = 4;
  int vcpus_per_vm = 1;
  guest::TickMode tick_mode = guest::TickMode::kParatick;
  /// Simulated time to run (the scenario runs fixed-duration; workloads
  /// that finish early just go idle until the clock reaches it).
  sim::SimTime duration = sim::SimTime::ms(20);
  /// Minimum cross-VM message latency — the declared ring-link cost and
  /// therefore the parallel engine's global lookahead window.
  sim::SimTime fabric_latency = sim::SimTime::us(5);
  /// Each VM pings its ring successor this often.
  sim::SimTime ping_period = sim::SimTime::us(50);
  /// Per-VM local workload (its seed is derived per VM from `seed`).
  workload::ServerSpec server;
  std::uint64_t seed = 1;
  /// Worker threads in the parallel engine: 1 = inline reference order,
  /// 0 = hardware_concurrency. Results are identical for any value.
  unsigned engine_threads = 1;
  /// Window-bound derivation (results identical either way; only the
  /// window counters in the profile differ).
  sim::LookaheadMode lookahead_mode = sim::LookaheadMode::kGlobal;
  /// kTopology horizon cap in global quanta (0 = unbounded).
  std::uint64_t max_horizon_windows = 64;
  /// Record the committed global event order (chain digest in the result).
  bool record_trace = false;
};

struct PartitionedRunResult {
  std::vector<metrics::RunResult> vms;  // one per partition, partition order
  sim::ParallelProfile profile;         // wall_ns is NOT deterministic
  std::uint64_t state_digest = 0;
  /// Chain digest + record count of the committed-order event trace
  /// (kChainSeed / 0 when record_trace was off).
  std::uint64_t trace_chain = 0;
  std::uint64_t trace_events = 0;

  /// Deterministic exports: only engine-thread-invariant fields, so two
  /// runs at different --engine-threads produce byte-identical files.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;
};

[[nodiscard]] PartitionedRunResult run_partitioned_scenario(
    const PartitionedScenarioSpec& spec);

}  // namespace paratick::core
