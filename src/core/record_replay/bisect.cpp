#include "core/record_replay/bisect.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "metrics/report.hpp"
#include "sim/check.hpp"

namespace paratick::core::record_replay {

namespace {

/// Sanitize a replay config: observational passes must not write any
/// sweep artifacts or chatter on stderr.
void quiesce(SweepConfig& cfg) {
  cfg.record_trace = false;
  cfg.progress = false;
  cfg.failure_dir.clear();
  cfg.partial_path.clear();
}

struct Probe {
  std::uint64_t seen = 0;
  std::uint64_t chain = kChainSeed;
};

/// Replay with a chain-only checker over the first `limit` events. The
/// run always executes to its natural end (stopping an engine mid-run
/// would trip watchdog/teardown paths and taint the probe); only the
/// folded chain digest of the prefix is the signal.
Probe probe_prefix(const SweepConfig& cfg, const ReplayBundle& b,
                   const EventTrace& trace, std::uint64_t limit) {
  TraceChecker checker(trace, TraceChecker::Mode::kChainOnly, limit);
  SweepConfig probe_cfg = cfg;
  probe_cfg.observer = &checker;
  (void)replay_run(std::move(probe_cfg), b);
  return {checker.events_seen(), checker.observed_chain()};
}

}  // namespace

ReplayCheckResult check_replay(SweepConfig cfg, const ReplayBundle& b,
                               const EventTrace& trace) {
  PARATICK_CHECK_MSG(
      b.failure.kind != RunFailure::Kind::kCrash,
      "crash bundles replay in a forked child; their traces cannot be "
      "checked in-process");
  quiesce(cfg);
  TraceChecker checker(trace, TraceChecker::Mode::kPerEvent);
  cfg.observer = &checker;
  ReplayCheckResult out;
  out.run = replay_run(std::move(cfg), b);
  out.divergence = checker.divergence();
  if (!out.divergence) out.divergence = checker.check_complete();
  out.events_checked = checker.events_seen();
  return out;
}

BisectReport bisect_divergence(SweepConfig cfg, const ReplayBundle& b,
                               const EventTrace& trace, bool progress) {
  quiesce(cfg);
  BisectReport rep;
  rep.recorded_events = trace.count();

  ReplayCheckResult full = check_replay(cfg, b, trace);
  rep.run = std::move(full.run);
  if (!full.divergence) {
    rep.note = metrics::format(
        "replay matches the recorded trace over all %llu events",
        static_cast<unsigned long long>(trace.count()));
    return rep;
  }
  rep.diverged = true;
  rep.first = full.divergence;
  const Divergence& d = *rep.first;

  if (d.what == Divergence::What::kExtraEvent) {
    // Every recorded event matched; the replay simply outlives the trace.
    // Prefix probes cannot see past the recorded end — nothing to search.
    rep.bisect_index = d.index;
    rep.indices_agree = true;
    rep.note = "replay matches every recorded event, then keeps executing";
    return rep;
  }

  const auto matches = [&](std::uint64_t n) {
    ++rep.probes;
    const Probe p = probe_prefix(cfg, b, trace, n);
    const bool ok = p.seen == n && p.chain == trace.chain_at(n);
    if (progress) {
      std::fprintf(stderr, "bisect: prefix of %llu events %s\n",
                   static_cast<unsigned long long>(n),
                   ok ? "matches" : "diverges");
    }
    return ok;
  };

  // Invariant binary search: the empty prefix trivially matches; the full
  // trace must not (the per-event pass diverged inside it). The minimal
  // mismatching prefix ends at the first divergent event.
  std::uint64_t lo = 0;
  std::uint64_t hi = trace.count();
  if (matches(hi)) {
    rep.bisect_index = hi;
    rep.note =
        "chain probe of the full trace matches although the per-event "
        "check diverged — the replay is not deterministic";
    return rep;
  }
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (matches(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  rep.bisect_index = hi - 1;
  rep.indices_agree = rep.bisect_index == d.index;
  rep.note =
      rep.indices_agree
          ? metrics::format("chain binary search (%llu probes) confirms the "
                            "per-event check",
                            static_cast<unsigned long long>(rep.probes))
          : metrics::format(
                "chain binary search pins event #%llu but the per-event "
                "check saw #%llu — the replay is not deterministic",
                static_cast<unsigned long long>(rep.bisect_index),
                static_cast<unsigned long long>(d.index));
  return rep;
}

}  // namespace paratick::core::record_replay
