// Divergence bisection: narrow a replay that stopped matching its
// recorded trace down to the exact first divergent event.
//
// Two independent mechanisms cross-check each other:
//
//   1. check_replay() re-executes the bundle's run with a per-event
//      TraceChecker attached — one pass, the checker raises
//      SimError{kDivergence} at the first mismatching event;
//   2. bisect_divergence() additionally binary-searches prefix lengths,
//      re-replaying with a chain-only checker limited to the first N
//      events and comparing the observed 64-bit chain digest against
//      trace.chain_at(N). The minimal mismatching prefix ends at the
//      first divergent event.
//
// The chain digest is far stronger than a record's truncated 32-bit
// state digest, so agreement between the two passes is strong evidence
// the divergence is real and deterministic; disagreement flags a
// schedule-dependent replay, which is itself the finding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/record_replay/record_replay.hpp"
#include "core/record_replay/trace.hpp"
#include "core/replay.hpp"
#include "core/sweep.hpp"

namespace paratick::core::record_replay {

/// Outcome of one trace-checked replay.
struct ReplayCheckResult {
  SweepRun run;  // disposition of the replay (failure may be kDivergence)
  std::optional<Divergence> divergence;  // first mismatch, if any
  std::uint64_t events_checked = 0;
};

/// Replay the bundle's run with a per-event trace checker attached.
/// PARATICK_CHECKs on crash bundles: those replay in a forked child, so
/// an in-process checker would never see their events (and a faithful
/// reproduction would take the checker down with it).
[[nodiscard]] ReplayCheckResult check_replay(SweepConfig cfg,
                                             const ReplayBundle& b,
                                             const EventTrace& trace);

struct BisectReport {
  bool diverged = false;
  std::optional<Divergence> first;  // from the per-event pass
  std::uint64_t bisect_index = 0;   // first divergent event per binary search
  bool indices_agree = false;       // both passes pin the same event
  std::uint64_t probes = 0;         // chain-probe replays the search ran
  std::uint64_t recorded_events = 0;
  SweepRun run;                     // the full checked replay's disposition
  std::string note;                 // human-readable verdict
};

/// Full pipeline: per-event check, then (on divergence) the chain binary
/// search. `progress` prints one line per probe on stderr.
[[nodiscard]] BisectReport bisect_divergence(SweepConfig cfg,
                                             const ReplayBundle& b,
                                             const EventTrace& trace,
                                             bool progress = false);

}  // namespace paratick::core::record_replay
