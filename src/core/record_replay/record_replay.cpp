#include "core/record_replay/record_replay.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/error.hpp"

namespace paratick::core::record_replay {

namespace {

void append_record(std::string& out, const TraceRecord& r) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "t=%lldns seq=%llu digest=0x%08x",
                static_cast<long long>(r.time_ns),
                static_cast<unsigned long long>(r.seq), r.digest);
  out += buf;
}

}  // namespace

const char* Divergence::what_name(What w) {
  switch (w) {
    case What::kTime: return "time mismatch";
    case What::kSeq: return "event identity mismatch";
    case What::kDigest: return "state digest mismatch";
    case What::kExtraEvent: return "extra event past recorded end";
    case What::kMissingEvent: return "replay ended before recorded end";
  }
  return "?";
}

std::string Divergence::describe() const {
  std::string out = what_name(what);
  char idx[48];
  std::snprintf(idx, sizeof idx, " at event #%llu: ",
                static_cast<unsigned long long>(index));
  out += idx;
  if (what == What::kExtraEvent) {
    out += "recorded <end of trace>, replayed ";
    append_record(out, observed);
  } else if (what == What::kMissingEvent) {
    out += "recorded ";
    append_record(out, recorded);
    out += ", replayed <run ended>";
  } else {
    out += "recorded ";
    append_record(out, recorded);
    out += ", replayed ";
    append_record(out, observed);
  }
  return out;
}

TraceChecker::TraceChecker(const EventTrace& trace, Mode mode,
                           std::uint64_t check_limit)
    : trace_(trace), cursor_(trace), mode_(mode), limit_(check_limit) {}

void TraceChecker::on_event_executed(sim::Engine& engine, sim::SimTime when,
                                     std::uint64_t seq) {
  if (seen_ >= limit_) return;  // past the probe prefix: ignore
  const TraceRecord observed{when.nanoseconds(), seq,
                             digest32(engine.state_digest())};
  const std::uint64_t index = seen_++;
  chain_ = chain_mix(chain_, observed);
  last_observed_ = observed;

  if (mode_ == Mode::kChainOnly) return;

  TraceRecord recorded;
  if (!cursor_.next(&recorded)) {
    divergence_ = Divergence{Divergence::What::kExtraEvent, index,
                             TraceRecord{}, observed};
  } else if (observed.seq != recorded.seq) {
    divergence_ =
        Divergence{Divergence::What::kSeq, index, recorded, observed};
  } else if (observed.time_ns != recorded.time_ns) {
    divergence_ =
        Divergence{Divergence::What::kTime, index, recorded, observed};
  } else if (observed.digest != recorded.digest) {
    divergence_ =
        Divergence{Divergence::What::kDigest, index, recorded, observed};
  }
  if (divergence_) {
    throw sim::SimError(sim::SimError::Kind::kDivergence, "replay == trace",
                        "", 0, divergence_->describe(), when,
                        engine.events_executed());
  }
}

std::optional<Divergence> TraceChecker::check_complete() {
  if (divergence_) return divergence_;
  const std::uint64_t expected = std::min(trace_.count(), limit_);
  if (seen_ >= expected) return std::nullopt;
  // The replay fell silent while the trace still has events: report the
  // first unmatched record.
  TraceRecord recorded;
  if (mode_ == Mode::kChainOnly) {
    // The chain-only cursor never advanced; skip to the first unmatched.
    EventTrace::Cursor cur(trace_);
    for (std::uint64_t i = 0; i <= seen_; ++i) cur.next(&recorded);
  } else {
    cursor_.next(&recorded);
  }
  divergence_ = Divergence{Divergence::What::kMissingEvent, seen_, recorded,
                           TraceRecord{}};
  return divergence_;
}

}  // namespace paratick::core::record_replay
