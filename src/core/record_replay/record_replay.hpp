// Event-trace recording and replay-time divergence checking.
//
// TraceRecorder hangs off sim::Engine's dispatch loop (EventObserver) and
// appends one compact record per executed event. TraceChecker re-walks a
// recorded trace while a replay executes and raises
// sim::SimError{kDivergence} — with the full recorded-vs-observed context
// — at the FIRST event that stops matching. Byte-identity of the event
// stream is the divergence predicate: same time, same event seq, same
// post-event state digest, for every event.
//
// Both are observational: attaching them never changes what the engine
// executes, so a recorded sweep stays bit-identical to an unrecorded one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/record_replay/trace.hpp"
#include "sim/engine.hpp"
#include "sim/parallel/parallel_engine.hpp"

namespace paratick::core::record_replay {

/// Truncate a 64-bit engine state digest to the per-record form.
[[nodiscard]] constexpr std::uint32_t digest32(std::uint64_t d) {
  return static_cast<std::uint32_t>(d ^ (d >> 32));
}

class TraceRecorder final : public sim::EventObserver {
 public:
  /// `expected_events` pre-sizes the trace buffer (EngineProfile's
  /// events_executed from a prior run, or a bundle's failure event count).
  explicit TraceRecorder(std::uint64_t expected_events = 0) {
    trace_.reserve_events(expected_events > 0 ? expected_events : 1 << 16);
  }

  void on_event_executed(sim::Engine& engine, sim::SimTime when,
                         std::uint64_t seq) override {
    trace_.append(when.nanoseconds(), seq, digest32(engine.state_digest()));
  }

  [[nodiscard]] const EventTrace& trace() const { return trace_; }
  [[nodiscard]] EventTrace take() { return std::move(trace_); }

 private:
  EventTrace trace_;
};

/// TraceRecorder's counterpart for sim::ParallelEngine: records the
/// COMMITTED global event order (the barrier-merged stream, not raw
/// worker-thread execution order). Sequence numbers from different
/// partitions are disjoint after tagging as `seq * partitions + partition`,
/// so the trace stays comparable record-by-record and its chain digest is
/// bit-identical for any engine-thread count — that digest equality is the
/// parallel-vs-sequential CI gate.
class ParallelTraceRecorder {
 public:
  explicit ParallelTraceRecorder(std::uint32_t partitions,
                                 std::uint64_t expected_events = 0)
      : partitions_(partitions) {
    trace_.reserve_events(expected_events > 0 ? expected_events : 1 << 16);
  }

  /// Bind as the engine's commit hook:
  ///   parallel.set_commit_hook(recorder.hook());
  [[nodiscard]] sim::CommitHook hook() {
    return [this](sim::PartitionId part, sim::SimTime when, std::uint64_t seq,
                  std::uint64_t digest) {
      trace_.append(when.nanoseconds(), seq * partitions_ + part,
                    digest32(digest));
    };
  }

  [[nodiscard]] const EventTrace& trace() const { return trace_; }
  [[nodiscard]] EventTrace take() { return std::move(trace_); }

 private:
  std::uint32_t partitions_;
  EventTrace trace_;
};

/// One recorded-vs-observed mismatch: the first event where a replay
/// stopped matching its trace.
struct Divergence {
  enum class What : std::uint8_t {
    kTime,          // event fired at a different simulated time
    kSeq,           // a different event (schedule identity) fired
    kDigest,        // same event, different resulting engine state
    kExtraEvent,    // replay executed events past the recorded end
    kMissingEvent,  // replay ended before the recorded end
  };
  What what = What::kDigest;
  std::uint64_t index = 0;   // 0-based index of the first divergent event
  TraceRecord recorded;      // zeroed for kExtraEvent
  TraceRecord observed;      // zeroed for kMissingEvent

  [[nodiscard]] static const char* what_name(What w);
  /// "event #N: recorded t=..ns seq=.. digest=0x.., replayed ..."
  [[nodiscard]] std::string describe() const;
};

class TraceChecker final : public sim::EventObserver {
 public:
  enum class Mode : std::uint8_t {
    /// Compare every observed event against the trace; on the first
    /// mismatch store the Divergence and throw SimError{kDivergence}.
    kPerEvent,
    /// Fold observed events into a chain digest only — no per-event
    /// comparison, never throws. The bisection driver's probe mode.
    kChainOnly,
  };
  static constexpr std::uint64_t kNoLimit = ~0ull;

  /// Check the replay against `trace` (which must outlive the checker).
  /// Events with index >= `check_limit` are ignored entirely — prefix
  /// probes for the bisection binary search.
  explicit TraceChecker(const EventTrace& trace, Mode mode = Mode::kPerEvent,
                        std::uint64_t check_limit = kNoLimit);

  void on_event_executed(sim::Engine& engine, sim::SimTime when,
                         std::uint64_t seq) override;

  /// Observed events so far (capped at check_limit).
  [[nodiscard]] std::uint64_t events_seen() const { return seen_; }
  /// Chain digest over the observed events (kChainOnly accumulates it;
  /// kPerEvent keeps it too, for reporting).
  [[nodiscard]] std::uint64_t observed_chain() const { return chain_; }
  /// The last observed record inside the limit (probe context).
  [[nodiscard]] const std::optional<TraceRecord>& last_observed() const {
    return last_observed_;
  }
  /// Set when a kPerEvent check threw: the full mismatch context.
  [[nodiscard]] const std::optional<Divergence>& divergence() const {
    return divergence_;
  }

  /// Call after the replay ran to completion without failing: a replay
  /// that observed fewer events than min(trace.count, limit) silently
  /// ended early — returns that kMissingEvent divergence.
  [[nodiscard]] std::optional<Divergence> check_complete();

 private:
  const EventTrace& trace_;
  EventTrace::Cursor cursor_;
  Mode mode_;
  std::uint64_t limit_;
  std::uint64_t seen_ = 0;
  std::uint64_t chain_ = kChainSeed;
  std::optional<TraceRecord> last_observed_;
  std::optional<Divergence> divergence_;
};

}  // namespace paratick::core::record_replay
