#include "core/record_replay/trace.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/safe_io.hpp"
#include "sim/check.hpp"

namespace paratick::core::record_replay {

namespace {

constexpr char kMagic[8] = {'P', 'T', 'K', 'T', 'R', 'C', '0', '1'};

constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// Returns false on a truncated or over-long encoding.
bool get_varint(const std::vector<std::uint8_t>& data, std::size_t& pos,
                std::uint64_t* out) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= data.size()) return false;
    const std::uint8_t byte = data[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
  }
  return false;
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint64_t get_u64le(const std::string& bytes, std::size_t pos) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[pos + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::uint64_t chain_mix(std::uint64_t h, const TraceRecord& r) {
  h = mix64(h ^ static_cast<std::uint64_t>(r.time_ns));
  h = mix64(h ^ r.seq);
  h = mix64(h ^ r.digest);
  return h;
}

void EventTrace::reserve_events(std::uint64_t events) {
  // Typical record: small time delta + near-consecutive seq + digest —
  // about 8 bytes each; the digest varint dominates.
  data_.reserve(static_cast<std::size_t>(events) * 8);
}

void EventTrace::append(std::int64_t time_ns, std::uint64_t seq,
                        std::uint32_t digest) {
  put_varint(data_, zigzag(time_ns - prev_time_));
  // Seqs mostly advance by one between consecutive pops; encode the
  // offset from that expectation so the common case is a single byte.
  put_varint(data_, zigzag(static_cast<std::int64_t>(seq) -
                           static_cast<std::int64_t>(prev_seq_ + 1)));
  put_varint(data_, digest);
  prev_time_ = time_ns;
  prev_seq_ = seq;
  chain_ = chain_mix(chain_, TraceRecord{time_ns, seq, digest});
  ++count_;
}

bool EventTrace::Cursor::next(TraceRecord* out) {
  if (index_ >= trace_->count_) return false;
  std::uint64_t dt = 0, dseq = 0, digest = 0;
  const bool ok = get_varint(trace_->data_, pos_, &dt) &&
                  get_varint(trace_->data_, pos_, &dseq) &&
                  get_varint(trace_->data_, pos_, &digest);
  PARATICK_CHECK_MSG(ok, "event trace: varint stream truncated");
  out->time_ns = prev_time_ + unzigzag(dt);
  out->seq = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(prev_seq_ + 1) + unzigzag(dseq));
  out->digest = static_cast<std::uint32_t>(digest);
  prev_time_ = out->time_ns;
  prev_seq_ = out->seq;
  ++index_;
  return true;
}

std::vector<TraceRecord> EventTrace::decode() const {
  std::vector<TraceRecord> out;
  out.reserve(static_cast<std::size_t>(count_));
  Cursor cur(*this);
  TraceRecord r;
  while (cur.next(&r)) out.push_back(r);
  return out;
}

EventTrace EventTrace::from_records(const std::vector<TraceRecord>& records) {
  EventTrace t;
  t.reserve_events(records.size());
  for (const TraceRecord& r : records) t.append(r.time_ns, r.seq, r.digest);
  return t;
}

std::uint64_t EventTrace::chain_at(std::uint64_t n) const {
  PARATICK_CHECK_MSG(n <= count_, "event trace: chain_at past end of trace");
  std::uint64_t h = kChainSeed;
  Cursor cur(*this);
  TraceRecord r;
  for (std::uint64_t i = 0; i < n; ++i) {
    cur.next(&r);
    h = chain_mix(h, r);
  }
  return h;
}

std::string EventTrace::serialize() const {
  std::string out;
  out.reserve(sizeof kMagic + 3 * 8 + data_.size());
  out.append(kMagic, sizeof kMagic);
  put_u64le(out, count_);
  put_u64le(out, chain_);
  put_u64le(out, data_.size());
  out.append(reinterpret_cast<const char*>(data_.data()), data_.size());
  return out;
}

EventTrace EventTrace::deserialize(const std::string& bytes) {
  constexpr std::size_t kHeader = sizeof kMagic + 3 * 8;
  PARATICK_CHECK_MSG(bytes.size() >= kHeader, "event trace: file too short");
  PARATICK_CHECK_MSG(std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0,
                     "event trace: bad magic (not a trace file?)");
  const std::uint64_t count = get_u64le(bytes, sizeof kMagic);
  const std::uint64_t chain = get_u64le(bytes, sizeof kMagic + 8);
  const std::uint64_t size = get_u64le(bytes, sizeof kMagic + 16);
  PARATICK_CHECK_MSG(bytes.size() == kHeader + size,
                     "event trace: stream size does not match header");

  EventTrace t;
  t.data_.assign(bytes.begin() + kHeader, bytes.end());
  t.count_ = count;
  // Re-decode the stream: recomputing the chain digest both restores the
  // delta-decoder state (prev time/seq) and verifies integrity end-to-end.
  std::uint64_t h = kChainSeed;
  Cursor cur(t);
  TraceRecord r;
  while (cur.next(&r)) h = chain_mix(h, r);
  PARATICK_CHECK_MSG(h == chain,
                     "event trace: chain digest mismatch (corrupt trace)");
  t.chain_ = chain;
  t.prev_time_ = r.time_ns;
  t.prev_seq_ = r.seq;
  return t;
}

std::string write_trace_file(const EventTrace& trace, const std::string& path) {
  // Atomic temp+rename: a worker SIGKILLed mid-write must not leave a
  // truncated trace next to its replay bundle.
  core::write_file_atomic(path, trace.serialize());
  return path;
}

EventTrace load_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    PARATICK_CHECK_MSG(false, ("cannot open trace file " + path).c_str());
  }
  std::string bytes;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return EventTrace::deserialize(bytes);
}

}  // namespace paratick::core::record_replay
