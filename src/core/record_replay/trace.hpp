// Compact, delta-encoded event traces for full-run record/replay.
//
// One record per executed engine event: the time delta to the previous
// event, the delta of the event's schedule-order sequence number, and a
// 32-bit truncation of the engine state digest — all varint-encoded, so
// a timer-heavy workload costs a few bytes per event. A running 64-bit
// chain digest folds every record as it is appended; two traces (or a
// recorded trace and a live replay) can therefore be compared over any
// prefix with a single integer comparison, which is what bench_replay's
// divergence bisection binary-searches over.
//
// Buffers are pre-sized from EngineProfile::events_executed (a prior
// run's counter, or the replay bundle's failure event count), so
// recording a known-size run never reallocates mid-flight.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace paratick::core::record_replay {

/// One decoded trace entry. `time_ns`/`seq` are absolute (deltas are an
/// encoding detail); `digest` is the truncated engine state digest taken
/// after the event's callback ran.
struct TraceRecord {
  std::int64_t time_ns = 0;
  std::uint64_t seq = 0;
  std::uint32_t digest = 0;

  constexpr bool operator==(const TraceRecord&) const = default;
};

/// Seed of the chain digest ("paratick" in ASCII).
inline constexpr std::uint64_t kChainSeed = 0x706172617469636bull;

/// One chain step: fold `r` into the running digest `h`. Mixing all three
/// fields means the chain pins event times and identities, not just the
/// truncated state digests.
[[nodiscard]] std::uint64_t chain_mix(std::uint64_t h, const TraceRecord& r);

class EventTrace {
 public:
  /// Pre-size the byte buffer for about `events` records.
  void reserve_events(std::uint64_t events);

  void append(std::int64_t time_ns, std::uint64_t seq, std::uint32_t digest);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Chain digest over all records (kChainSeed when empty).
  [[nodiscard]] std::uint64_t chain_digest() const { return chain_; }
  [[nodiscard]] std::size_t byte_size() const { return data_.size(); }

  /// Sequential decoder (no random access — the stream is delta-coded).
  class Cursor {
   public:
    explicit Cursor(const EventTrace& trace) : trace_(&trace) {}
    /// Decode the next record into `out`; false at end of trace.
    bool next(TraceRecord* out);
    [[nodiscard]] std::uint64_t index() const { return index_; }

   private:
    const EventTrace* trace_;
    std::size_t pos_ = 0;
    std::int64_t prev_time_ = 0;
    std::uint64_t prev_seq_ = 0;
    std::uint64_t index_ = 0;  // records decoded so far
  };

  /// Decode the full trace (tests, tampering tools, reports).
  [[nodiscard]] std::vector<TraceRecord> decode() const;
  /// Re-encode a record list (the tamper/repair path of tests).
  [[nodiscard]] static EventTrace from_records(
      const std::vector<TraceRecord>& records);

  /// Chain digest over the first `n` records; n must be <= count().
  [[nodiscard]] std::uint64_t chain_at(std::uint64_t n) const;

  /// Binary serialization: fixed little-endian header (magic, version,
  /// count, chain digest, stream size) + the varint stream. deserialize
  /// PARATICK_CHECKs (throws sim::SimError) on bad magic, truncation, or
  /// a chain digest that does not match the re-decoded stream.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static EventTrace deserialize(const std::string& bytes);

 private:
  friend class Cursor;

  std::vector<std::uint8_t> data_;
  std::uint64_t count_ = 0;
  std::uint64_t chain_ = kChainSeed;
  std::int64_t prev_time_ = 0;
  std::uint64_t prev_seq_ = 0;
};

/// Write / read a serialized trace. write creates parent directories and
/// returns the path; load PARATICK_CHECKs with the path in the message.
std::string write_trace_file(const EventTrace& trace, const std::string& path);
[[nodiscard]] EventTrace load_trace_file(const std::string& path);

}  // namespace paratick::core::record_replay
