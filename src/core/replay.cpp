#include "core/replay.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/exec_backend.hpp"
#include "core/json.hpp"
#include "core/safe_io.hpp"
#include "core/scenarios.hpp"
#include "metrics/report.hpp"
#include "sim/check.hpp"

namespace paratick::core {

namespace {

RunFailure::Kind kind_from_name(const std::string& name) {
  using Kind = RunFailure::Kind;
  for (const Kind k : {Kind::kCheck, Kind::kWatchdog, Kind::kTimeout,
                       Kind::kException, Kind::kSkipped, Kind::kCrash,
                       Kind::kDivergence}) {
    if (name == RunFailure::kind_name(k)) return k;
  }
  PARATICK_CHECK_MSG(false, "replay bundle: unknown failure kind");
  std::abort();  // unreachable; keeps -fsanitize=thread builds warning-free
}

std::int64_t ns(sim::SimTime t) { return t.nanoseconds(); }

// Seeds are written as decimal strings (full 64-bit precision); accept a
// bare number too for hand-written bundles, where precision is the
// author's problem.
std::uint64_t seed_field(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  PARATICK_CHECK_MSG(v != nullptr, "replay bundle: missing seed field");
  if (v->type == json::Value::Type::kString) {
    return std::strtoull(v->str.c_str(), nullptr, 10);
  }
  PARATICK_CHECK_MSG(v->type == json::Value::Type::kNumber,
                     "replay bundle: seed is neither string nor number");
  return static_cast<std::uint64_t>(v->number);
}

}  // namespace

std::string to_json(const ReplayBundle& b) {
  const fault::FaultConfig& f = b.fault;
  std::string out = "{\n";
  out += metrics::format("  \"bench\": \"%s\",\n",
                         metrics::json_escape(b.bench).c_str());
  out += metrics::format("  \"scenario\": \"%s\",\n",
                         metrics::json_escape(b.scenario).c_str());
  // Seeds are full 64-bit values; a JSON number would round-trip through
  // double and lose the low bits, so they travel as decimal strings.
  out += metrics::format("  \"root_seed\": \"%llu\",\n",
                         static_cast<unsigned long long>(b.root_seed));
  out += metrics::format("  \"repeat\": %d,\n", b.repeat);
  out += metrics::format("  \"run_index\": %llu,\n",
                         static_cast<unsigned long long>(b.run_index));
  out += metrics::format("  \"seed\": \"%llu\",\n",
                         static_cast<unsigned long long>(b.seed));
  out += metrics::format("  \"cell\": \"%s\",\n",
                         metrics::json_escape(b.cell_label).c_str());
  if (!b.trace_path.empty()) {
    out += metrics::format("  \"trace\": \"%s\",\n",
                           metrics::json_escape(b.trace_path).c_str());
  }
  out += metrics::format("  \"watchdog\": %s,\n", b.watchdog ? "true" : "false");
  out += metrics::format("  \"watchdog_timer_grace_ns\": %lld,\n",
                         static_cast<long long>(ns(b.watchdog_timer_grace)));
  out += metrics::format(
      "  \"fault\": {\"timer_drop_prob\": %.17g, \"timer_late_prob\": %.17g, "
      "\"timer_late_max_ns\": %lld, \"timer_coalesce_prob\": %.17g, "
      "\"timer_coalesce_window_ns\": %lld, \"tsc_drift_ppm\": %.17g, "
      "\"io_error_prob\": %.17g, \"io_spike_prob\": %.17g, "
      "\"io_spike_factor\": %.17g, \"steal_burst_prob\": %.17g, "
      "\"steal_burst_max_ns\": %lld, \"tick_delay_prob\": %.17g, "
      "\"softirq_spurious_prob\": %.17g, \"softirq_drop_prob\": %.17g},\n",
      f.timer_drop_prob, f.timer_late_prob,
      static_cast<long long>(ns(f.timer_late_max)), f.timer_coalesce_prob,
      static_cast<long long>(ns(f.timer_coalesce_window)), f.tsc_drift_ppm,
      f.io_error_prob, f.io_spike_prob, f.io_spike_factor, f.steal_burst_prob,
      static_cast<long long>(ns(f.steal_burst_max)), f.tick_delay_prob,
      f.softirq_spurious_prob, f.softirq_drop_prob);
  out += metrics::format(
      "  \"failure\": {\"kind\": \"%s\", \"expr\": \"%s\", \"file\": \"%s\", "
      "\"line\": %d, \"message\": \"%s\", \"sim_time_ns\": %lld, "
      "\"events_executed\": %llu}\n",
      RunFailure::kind_name(b.failure.kind),
      metrics::json_escape(b.failure.expr).c_str(),
      metrics::json_escape(b.failure.file).c_str(), b.failure.line,
      metrics::json_escape(b.failure.message).c_str(),
      static_cast<long long>(b.failure.sim_time_ns),
      static_cast<unsigned long long>(b.failure.events_executed));
  out += "}\n";
  return out;
}

std::string write_replay_bundle(const SweepConfig& cfg, const SweepRun& run,
                                const std::string& dir,
                                const std::string& cell_label) {
  PARATICK_CHECK_MSG(!run.ok && run.failure.has_value(),
                     "replay bundle: run did not fail");
  ReplayBundle b;
  b.bench = cfg.bench_name;
  b.scenario = cfg.scenario;
  b.root_seed = cfg.root_seed;
  b.repeat = cfg.repeat;
  b.run_index = run.run_index;
  b.seed = run.seed;
  b.cell_label = cell_label;
  b.watchdog = cfg.watchdog;
  b.watchdog_timer_grace = cfg.watchdog_timer_grace;
  b.fault = cfg.fault;
  b.failure = *run.failure;
  b.trace_path = run.trace_path;

  // One directory per producing sweep keeps multi-bench failure dirs
  // tidy: <dir>/<bench>/run<idx>.json. (Bundles from before this layout
  // lived flat as <dir>/<bench>-run<idx>.json; bench_replay scans both.)
  const std::string name = cfg.bench_name.empty() ? "sweep" : cfg.bench_name;
  const std::string bundle_dir = dir + "/" + name;
  std::filesystem::create_directories(bundle_dir);
  const std::string path =
      bundle_dir + metrics::format("/run%llu.json",
                                   static_cast<unsigned long long>(run.run_index));
  // Atomic write: duplicate executions (dispatcher lease expiry / steal
  // races) may write the same bundle concurrently; each rename publishes
  // a complete document, so readers never see a torn file.
  write_file_atomic(path, to_json(b));
  return path;
}

ReplayBundle parse_replay_bundle(const std::string& json_text) {
  const json::Value doc = json::parse(json_text);
  PARATICK_CHECK_MSG(doc.type == json::Value::Type::kObject,
                     "replay bundle: document is not an object");
  ReplayBundle b;
  b.bench = json::str_field(doc, "bench");
  b.scenario = json::str_field(doc, "scenario");
  b.root_seed = seed_field(doc, "root_seed");
  b.repeat = static_cast<int>(json::num_field(doc, "repeat", 1));
  b.run_index = static_cast<std::size_t>(json::num_field(doc, "run_index"));
  b.seed = seed_field(doc, "seed");
  if (const json::Value* cell = doc.find("cell");
      cell != nullptr && cell->type == json::Value::Type::kString) {
    b.cell_label = cell->str;
  }
  if (const json::Value* trace = doc.find("trace");
      trace != nullptr && trace->type == json::Value::Type::kString) {
    b.trace_path = trace->str;
  }
  if (const json::Value* wd = doc.find("watchdog");
      wd != nullptr && wd->type == json::Value::Type::kBool) {
    b.watchdog = wd->boolean;
  }
  b.watchdog_timer_grace = sim::SimTime::ns(static_cast<std::int64_t>(
      json::num_field(doc, "watchdog_timer_grace_ns", 5e6)));

  const json::Value* f = doc.find("fault");
  PARATICK_CHECK_MSG(f != nullptr && f->type == json::Value::Type::kObject,
                     "replay bundle: missing fault object");
  fault::FaultConfig& fc = b.fault;
  fc.timer_drop_prob = json::num_field(*f, "timer_drop_prob");
  fc.timer_late_prob = json::num_field(*f, "timer_late_prob");
  fc.timer_late_max = sim::SimTime::ns(
      static_cast<std::int64_t>(json::num_field(*f, "timer_late_max_ns")));
  fc.timer_coalesce_prob = json::num_field(*f, "timer_coalesce_prob");
  fc.timer_coalesce_window = sim::SimTime::ns(static_cast<std::int64_t>(
      json::num_field(*f, "timer_coalesce_window_ns")));
  fc.tsc_drift_ppm = json::num_field(*f, "tsc_drift_ppm");
  fc.io_error_prob = json::num_field(*f, "io_error_prob");
  fc.io_spike_prob = json::num_field(*f, "io_spike_prob");
  fc.io_spike_factor = json::num_field(*f, "io_spike_factor", 20.0);
  fc.steal_burst_prob = json::num_field(*f, "steal_burst_prob");
  fc.steal_burst_max = sim::SimTime::ns(
      static_cast<std::int64_t>(json::num_field(*f, "steal_burst_max_ns")));
  fc.tick_delay_prob = json::num_field(*f, "tick_delay_prob");
  fc.softirq_spurious_prob = json::num_field(*f, "softirq_spurious_prob");
  fc.softirq_drop_prob = json::num_field(*f, "softirq_drop_prob");

  const json::Value* fail = doc.find("failure");
  PARATICK_CHECK_MSG(fail != nullptr && fail->type == json::Value::Type::kObject,
                     "replay bundle: missing failure object");
  b.failure.kind = kind_from_name(json::str_field(*fail, "kind"));
  if (const json::Value* e = fail->find("expr");
      e != nullptr && e->type == json::Value::Type::kString) {
    b.failure.expr = e->str;
  }
  if (const json::Value* fi = fail->find("file");
      fi != nullptr && fi->type == json::Value::Type::kString) {
    b.failure.file = fi->str;
  }
  b.failure.line = static_cast<int>(json::num_field(*fail, "line"));
  if (const json::Value* m = fail->find("message");
      m != nullptr && m->type == json::Value::Type::kString) {
    b.failure.message = m->str;
  }
  b.failure.sim_time_ns =
      static_cast<std::int64_t>(json::num_field(*fail, "sim_time_ns", -1.0));
  b.failure.events_executed = static_cast<std::uint64_t>(
      json::num_field(*fail, "events_executed"));
  return b;
}

ReplayBundle load_replay_bundle(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    PARATICK_CHECK_MSG(false, "cannot open replay bundle");
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_replay_bundle(text);
}

SweepRun replay_run(SweepConfig cfg, const ReplayBundle& b) {
  // The bundle's identity wins over whatever the caller-provided config
  // carries, so the replayed run is exactly the one that failed.
  cfg.root_seed = b.root_seed;
  cfg.repeat = b.repeat;
  cfg.fault = b.fault;
  cfg.watchdog = b.watchdog;
  cfg.watchdog_timer_grace = b.watchdog_timer_grace;
  // Wall-clock timeouts are not part of the deterministic identity; a
  // timed-out run replays without the budget (it may simply run longer).
  cfg.run_timeout_sec = 0.0;
  cfg.max_failures = 0;
  // Never clobber the original sweep's artifacts: a replay writes no new
  // bundles, traces or partial snapshots. (cfg.observer is kept — that is
  // how bench_replay attaches its trace checker.)
  cfg.failure_dir.clear();
  cfg.partial_path.clear();
  cfg.record_trace = false;
  // A recorded crash (signal death under the fork backend) would take the
  // replayer down too if re-executed in-process — rerun it in a forked
  // child, same as the original sweep did.
  if (b.failure.kind == RunFailure::Kind::kCrash) {
    return execute_run_isolated(cfg, b.run_index);
  }
  SweepRunner runner(std::move(cfg));
  return runner.execute_run(b.run_index);
}

SweepRun replay_bundle(const ReplayBundle& b) {
  PARATICK_CHECK_MSG(is_chaos_scenario(b.scenario),
                     "replay bundle names no registered chaos scenario; "
                     "rebuild the SweepConfig and use replay_run()");
  return replay_run(build_chaos_scenario(b.scenario), b);
}

bool reproduces(const ReplayBundle& b, const SweepRun& replayed,
                std::string* detail) {
  const auto note = [detail](std::string msg) {
    if (detail != nullptr) *detail = std::move(msg);
  };
  if (replayed.ok || !replayed.failure.has_value()) {
    note("replay completed without failing");
    return false;
  }
  const RunFailure& want = b.failure;
  const RunFailure& got = *replayed.failure;
  if (got.kind != want.kind) {
    note(metrics::format("failure kind differs: recorded %s, replayed %s",
                         RunFailure::kind_name(want.kind),
                         RunFailure::kind_name(got.kind)));
    return false;
  }
  if (got.expr != want.expr) {
    note("failing expression differs: recorded \"" + want.expr +
         "\", replayed \"" + got.expr + "\"");
    return false;
  }
  // Timeouts are wall-clock dependent, and crashes are recorded by the
  // parent process with no simulation context: kind + expression is the
  // best reproducibility we can claim for either.
  if (want.kind != RunFailure::Kind::kTimeout &&
      want.kind != RunFailure::Kind::kCrash &&
      got.sim_time_ns != want.sim_time_ns) {
    note(metrics::format(
        "failure sim time differs: recorded %lldns, replayed %lldns",
        static_cast<long long>(want.sim_time_ns),
        static_cast<long long>(got.sim_time_ns)));
    return false;
  }
  note(metrics::format(
      "reproduced: %s \"%s\" at sim t=%lldns (event #%llu)",
      RunFailure::kind_name(got.kind), got.expr.c_str(),
      static_cast<long long>(got.sim_time_ns),
      static_cast<unsigned long long>(got.events_executed)));
  return true;
}

}  // namespace paratick::core
