// Replay bundles: everything needed to re-execute one failed sweep run.
//
// Because a sweep run is a pure function of (SweepConfig, run_index) —
// seeds and fault plans are derived, never drawn from the schedule — a
// failure reproduces from just the config identity plus the index. The
// bundle serializes that identity (scenario name, root seed, repeat,
// fault knobs) together with the observed failure, so `bench_replay`
// can re-run the exact failing simulation to the same event and verify
// the error matches bit-for-bit.
#pragma once

#include <string>

#include "core/sweep.hpp"
#include "fault/fault.hpp"

namespace paratick::core {

struct ReplayBundle {
  std::string bench;     // producing binary, e.g. "bench_chaos"
  std::string scenario;  // registered chaos scenario; "" = not replayable
                         // standalone (caller must supply the SweepConfig)
  std::uint64_t root_seed = 0;
  int repeat = 1;
  std::size_t run_index = 0;
  std::uint64_t seed = 0;  // derived run seed, for cross-checking
  std::string cell_label;  // human-readable cell identity
  bool watchdog = false;
  sim::SimTime watchdog_timer_grace = sim::SimTime::ms(5);
  fault::FaultConfig fault;
  RunFailure failure;  // the failure observed by the original sweep
  /// Event trace of the failed run (--record-trace); "" = none recorded.
  /// bench_replay uses it to verify a reproduction event-by-event and to
  /// bisect the first divergent event (core/record_replay).
  std::string trace_path;
};

/// Serialize / write a bundle for a failed run of `cfg`. Returns the file
/// path: <dir>/<bench-or-sweep>-run<index>.json (directories are created).
[[nodiscard]] std::string to_json(const ReplayBundle& b);
[[nodiscard]] std::string write_replay_bundle(const SweepConfig& cfg,
                                              const SweepRun& run,
                                              const std::string& dir,
                                              const std::string& cell_label = "");

/// Parse / load a bundle. PARATICK_CHECKs (throws sim::SimError) on
/// malformed documents; load includes the path in the error message.
[[nodiscard]] ReplayBundle parse_replay_bundle(const std::string& json_text);
[[nodiscard]] ReplayBundle load_replay_bundle(const std::string& path);

/// Re-execute the bundle's run against an explicit sweep config. The
/// bundle's identity fields (root seed, repeat, faults, watchdog)
/// override the config's, so the run is exactly the one that failed.
[[nodiscard]] SweepRun replay_run(SweepConfig cfg, const ReplayBundle& b);

/// Re-execute using the registered chaos-scenario registry
/// (core/scenarios.hpp). PARATICK_CHECKs if the scenario is unknown.
[[nodiscard]] SweepRun replay_bundle(const ReplayBundle& b);

/// Did the replay reproduce the recorded failure? Compares failure kind,
/// expression and simulated timestamp; fills `detail` with a
/// human-readable verdict either way (pass nullptr to skip).
[[nodiscard]] bool reproduces(const ReplayBundle& b, const SweepRun& replayed,
                              std::string* detail);

}  // namespace paratick::core
