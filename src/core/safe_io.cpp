#include "core/safe_io.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>

#include "sim/check.hpp"

namespace paratick::core {

ssize_t read_retry(int fd, void* buf, std::size_t len) {
  for (;;) {
    const ssize_t got = ::read(fd, buf, len);
    if (got >= 0 || errno != EINTR) return got;
  }
}

bool write_all(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t put = ::write(fd, p + off, len - off);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (put == 0) return false;
    off += static_cast<std::size_t>(put);
  }
  return true;
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t got = read_retry(fd, buf, sizeof buf);
    if (got <= 0) break;
    out.append(buf, static_cast<std::size_t>(got));
  }
  return out;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::filesystem::path fs_path{path};
  // Special targets (/dev/null, pipes) cannot be renamed over — and must
  // not be: replacing /dev/null with a regular file would be a disaster.
  // Plain in-place write for anything that exists and is not a file.
  std::error_code stat_ec;
  const auto status = std::filesystem::status(fs_path, stat_ec);
  if (!stat_ec && std::filesystem::exists(status) &&
      !std::filesystem::is_regular_file(status)) {
    std::FILE* direct = std::fopen(path.c_str(), "w");
    PARATICK_CHECK_MSG(direct != nullptr,
                       ("cannot open file for writing: " + path).c_str());
    std::fwrite(content.data(), 1, content.size(), direct);
    std::fclose(direct);
    return;
  }
  if (fs_path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(fs_path.parent_path(), ec);
  }
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  PARATICK_CHECK_MSG(f != nullptr,
                     ("cannot open temp file for atomic write: " + tmp).c_str());
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    PARATICK_CHECK_MSG(false, ("atomic write failed for: " + path).c_str());
  }
}

}  // namespace paratick::core
