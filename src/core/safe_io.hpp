// Signal-safe pipe I/O and crash-safe file writes.
//
// Two failure modes used to corrupt sweep artifacts:
//
//   1. A signal landing mid-read/mid-write on a pipe made the raw
//      read()/write() return -1/EINTR, which the fork backend treated as
//      a dead peer — truncating the newline-framed record stream and
//      converting perfectly good runs into kCrash records.
//   2. A worker killed between fopen() and fclose() left a truncated
//      partial snapshot / history snapshot on disk for the merge layer to
//      choke on.
//
// The helpers here close both holes: read_retry/write_all restart on
// EINTR (and write_all handles short writes), and write_file_atomic
// stages content in a same-directory temp file and rename()s it into
// place, so readers only ever observe the old file or the complete new
// one — never a partial write.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <string>

namespace paratick::core {

/// read(fd) restarted on EINTR. Returns bytes read (0 = EOF) or -1 on a
/// real error (errno preserved).
[[nodiscard]] ssize_t read_retry(int fd, void* buf, std::size_t len);

/// Write all `len` bytes, restarting on EINTR and short writes. Returns
/// false on a real error (e.g. EPIPE after the reader died).
[[nodiscard]] bool write_all(int fd, const void* buf, std::size_t len);

/// Drain `fd` to EOF into a string, restarting on EINTR.
[[nodiscard]] std::string read_to_eof(int fd);

/// Crash-safe whole-file write: content goes to "<path>.tmp.<pid>" in the
/// same directory (so rename stays atomic within one filesystem), is
/// flushed, then rename()d over `path`. Parent directories are created.
/// PARATICK_CHECKs (throws sim::SimError) on any I/O failure, removing
/// the temp file first.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace paratick::core
