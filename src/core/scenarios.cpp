#include "core/scenarios.hpp"

#include "guest/kernel.hpp"
#include "sim/check.hpp"
#include "workload/fio.hpp"
#include "workload/micro.hpp"

namespace paratick::core {

fault::FaultConfig default_chaos_faults() {
  fault::FaultConfig f;
  f.timer_drop_prob = 0.01;
  f.timer_late_prob = 0.05;
  f.timer_coalesce_prob = 0.02;
  f.tsc_drift_ppm = 50.0;
  f.io_error_prob = 0.01;
  f.io_spike_prob = 0.02;
  f.steal_burst_prob = 0.02;
  f.tick_delay_prob = 0.10;
  f.softirq_spurious_prob = 0.02;
  f.softirq_drop_prob = 0.01;
  return f;
}

namespace {

constexpr const char* kFaultKnobs[] = {
    "timer-drop",      "timer-late",     "timer-late-max-us",
    "timer-coalesce",  "coalesce-window-us",
    "tsc-drift-ppm",   "io-error",       "io-spike",
    "io-spike-factor", "steal",          "steal-burst-max-us",
    "tick-delay",      "softirq-spurious", "softirq-drop",
};

constexpr const char* kScenarios[] = {"timer-storm", "sync-storm", "io-storm",
                                      "tick-loss", "overcommit"};

}  // namespace

std::span<const char* const> fault_knob_names() { return kFaultKnobs; }

void set_fault_knob(fault::FaultConfig& cfg, const std::string& knob,
                    double value) {
  const auto us = [value] {
    return sim::SimTime::ns(static_cast<std::int64_t>(value * 1e3));
  };
  if (knob == "timer-drop") {
    cfg.timer_drop_prob = value;
  } else if (knob == "timer-late") {
    cfg.timer_late_prob = value;
  } else if (knob == "timer-late-max-us") {
    cfg.timer_late_max = us();
  } else if (knob == "timer-coalesce") {
    cfg.timer_coalesce_prob = value;
  } else if (knob == "coalesce-window-us") {
    cfg.timer_coalesce_window = us();
  } else if (knob == "tsc-drift-ppm") {
    cfg.tsc_drift_ppm = value;
  } else if (knob == "io-error") {
    cfg.io_error_prob = value;
  } else if (knob == "io-spike") {
    cfg.io_spike_prob = value;
  } else if (knob == "io-spike-factor") {
    cfg.io_spike_factor = value;
  } else if (knob == "steal") {
    cfg.steal_burst_prob = value;
  } else if (knob == "steal-burst-max-us") {
    cfg.steal_burst_max = us();
  } else if (knob == "tick-delay") {
    cfg.tick_delay_prob = value;
  } else if (knob == "softirq-spurious") {
    cfg.softirq_spurious_prob = value;
  } else if (knob == "softirq-drop") {
    cfg.softirq_drop_prob = value;
  } else {
    PARATICK_CHECK_MSG(false, "unknown fault knob");
  }
}

std::span<const char* const> chaos_scenario_names() { return kScenarios; }

bool is_chaos_scenario(std::string_view name) {
  for (const char* s : kScenarios) {
    if (name == s) return true;
  }
  return false;
}

SweepConfig build_chaos_scenario(std::string_view name) {
  SweepConfig cfg;
  cfg.fault = default_chaos_faults();
  cfg.watchdog = true;
  cfg.bench_name = "bench_chaos";
  cfg.scenario = std::string(name);
  cfg.root_seed = 20260806;

  if (name == "timer-storm") {
    // Timer-subsystem churn: a tick-storm task re-arms the wheel/hrtimer
    // layers thousands of times while timer interrupts are being dropped,
    // delayed and coalesced under it.
    cfg.base.machine = hw::MachineSpec::small(2);
    cfg.base.vcpus = 2;
    cfg.base.max_duration = sim::SimTime::ms(500);
    cfg.base.setup = [](guest::GuestKernel& k) {
      workload::TickStormSpec storm;
      storm.iterations = 2000;
      workload::install_tick_storm(k, storm);
    };
    cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  } else if (name == "sync-storm") {
    // Blocking-sync storm under steal bursts and delayed paravirtual
    // ticks — the paper's W3 shape, where lost wakeups show up as
    // watchdog timer-liveness breaches.
    cfg.base.machine = hw::MachineSpec::small(4);
    cfg.base.vcpus = 4;
    cfg.base.max_duration = sim::SimTime::ms(100);
    cfg.base.stop_when_done = false;
    cfg.base.setup = [](guest::GuestKernel& k) {
      workload::SyncStormSpec storm;
      storm.threads = 4;
      storm.duration = sim::SimTime::ms(100);
      workload::install_sync_storm(k, storm);
    };
    cfg.modes = {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
                 guest::TickMode::kParatick};
  } else if (name == "io-storm") {
    // Synchronous block I/O against a device that injects errors and
    // latency spikes; exercises the guest's error-completion path.
    cfg.base.machine = hw::MachineSpec::small(1);
    cfg.base.vcpus = 1;
    cfg.base.attach_disk = true;
    cfg.base.setup = [](guest::GuestKernel& k) {
      workload::FioSpec spec;
      spec.ops = 800;
      workload::install_fio(k, spec);
    };
    cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  } else if (name == "tick-loss") {
    // The §5 split outcome as a runnable artifact: every hardware timer
    // interrupt is lost. A busy dynticks guest arms the deadline timer
    // for its tick and hangs when the fire is dropped (watchdog breach);
    // paratick arms no hardware timer — its tick rides VM entries — so
    // the same faulted host completes the run.
    cfg.fault = fault::FaultConfig{};
    cfg.fault.timer_drop_prob = 1.0;
    cfg.base.machine = hw::MachineSpec::small(1);
    cfg.base.vcpus = 1;
    cfg.base.max_duration = sim::SimTime::ms(200);
    cfg.base.setup = [](guest::GuestKernel& k) {
      workload::PureComputeSpec compute;
      compute.total_cycles = 100'000'000;
      compute.chunks = 100;
      workload::install_pure_compute(k, compute);
    };
    cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  } else if (name == "overcommit") {
    // Double scheduling under pressure: the overcommit axis shrinks the
    // machine so vCPUs outnumber pCPUs (the host auto-switches to shared
    // scheduling), and on top of that every VM entry can be preempted by
    // a long steal burst with the paravirtual tick arriving late. Lost
    // wakeups in the blocking-sync workload surface as watchdog
    // timer-liveness breaches; paratick's entry-coupled tick must keep
    // firing even when entries themselves are the scarce resource.
    cfg.fault = fault::FaultConfig{};
    cfg.fault.steal_burst_prob = 0.15;
    cfg.fault.steal_burst_max = sim::SimTime::us(2000);
    cfg.fault.tick_delay_prob = 0.25;
    cfg.base.machine = hw::MachineSpec::small(4);
    cfg.base.vcpus = 4;
    cfg.base.max_duration = sim::SimTime::ms(100);
    cfg.base.stop_when_done = false;
    cfg.base.setup = [](guest::GuestKernel& k) {
      workload::SyncStormSpec storm;
      storm.threads = 4;
      storm.duration = sim::SimTime::ms(100);
      workload::install_sync_storm(k, storm);
    };
    cfg.overcommit = {1.0, 2.0};
    cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  } else {
    PARATICK_CHECK_MSG(false, "unknown chaos scenario");
  }
  return cfg;
}

}  // namespace paratick::core
