// Named chaos scenarios + the fault-knob CLI table.
//
// A replay bundle names the scenario it came from; bench_replay rebuilds
// the exact SweepConfig through this registry and re-executes the failing
// run index. Scenarios must therefore be pure functions of their name —
// no CLI state, no ambient configuration.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "core/sweep.hpp"
#include "fault/fault.hpp"

namespace paratick::core {

/// The default --chaos fault mix: every class enabled at a moderate rate,
/// aggressive enough to exercise recovery paths in a one-second run but
/// not so hot that every run degrades.
[[nodiscard]] fault::FaultConfig default_chaos_faults();

/// Names accepted as --fault-<knob> overrides, e.g. --fault-timer-drop.
[[nodiscard]] std::span<const char* const> fault_knob_names();

/// Set one knob by CLI name. Probabilities take the value verbatim;
/// duration knobs (timer-late-max, coalesce-window, steal-burst-max) read
/// the value as microseconds. PARATICK_CHECKs on unknown names.
void set_fault_knob(fault::FaultConfig& cfg, const std::string& knob, double value);

/// Registered chaos scenarios (bench_chaos positionals / replay targets).
[[nodiscard]] std::span<const char* const> chaos_scenario_names();
[[nodiscard]] bool is_chaos_scenario(std::string_view name);

/// Build the full sweep for a scenario. Chaos defaults (fault mix +
/// watchdog) are pre-applied; callers may still override via SweepCli.
/// PARATICK_CHECKs on unknown names.
[[nodiscard]] SweepConfig build_chaos_scenario(std::string_view name);

}  // namespace paratick::core
