#include "core/sweep.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>

#include "core/cli_parse.hpp"
#include "core/dispatch/dispatch.hpp"
#include "core/dispatch/protocol.hpp"
#include "core/dispatch/transport.hpp"
#include "core/dispatch/worker.hpp"
#include "core/exec_backend.hpp"
#include "core/history.hpp"
#include "core/replay.hpp"
#include "core/safe_io.hpp"
#include "core/scenarios.hpp"
#include "core/sweep_plan.hpp"
#include "core/sweep_shard.hpp"
#include "metrics/report.hpp"
#include "sim/check.hpp"
#include "sim/error.hpp"

namespace paratick::core {

namespace {

double pct_ratio(double treatment, double baseline) {
  if (baseline == 0.0) return 0.0;
  return (treatment / baseline - 1.0) * 100.0;
}

}  // namespace

std::string resolve_output_path(const std::string& output_dir,
                                const std::string& path) {
  if (path.empty() || output_dir.empty() || path.front() == '/') return path;
  return output_dir + "/" + path;
}

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kThread: return "thread";
    case BackendKind::kFork: return "fork";
  }
  return "?";
}

BackendKind backend_from_string(const std::string& name) {
  if (name == "thread") return BackendKind::kThread;
  if (name == "fork") return BackendKind::kFork;
  PARATICK_CHECK_MSG(
      false, ("unknown execution backend \"" + name + "\" (thread|fork)").c_str());
  return BackendKind::kThread;
}

std::string ShardSpec::label() const {
  return metrics::format("%u/%u", index, count);
}

ShardSpec ShardSpec::parse(const std::string& text) {
  const char* s = text.c_str();
  char* end = nullptr;
  const unsigned long k = std::strtoul(s, &end, 10);
  unsigned long n = 0;
  if (end != s && *end == '/') {
    const char* rest = end + 1;
    n = std::strtoul(rest, &end, 10);
    if (end == rest || *end != '\0') n = 0;
  }
  PARATICK_CHECK_MSG(n >= 1 && k < n,
                     ("--shard wants K/N with 0 <= K < N, got \"" + text + "\"")
                         .c_str());
  ShardSpec spec;
  spec.index = static_cast<unsigned>(k);
  spec.count = static_cast<unsigned>(n);
  return spec;
}

const char* RunFailure::kind_name(Kind k) {
  switch (k) {
    case Kind::kCheck: return "check";
    case Kind::kWatchdog: return "watchdog";
    case Kind::kTimeout: return "timeout";
    case Kind::kException: return "exception";
    case Kind::kSkipped: return "skipped";
    case Kind::kCrash: return "crash";
    case Kind::kDivergence: return "divergence";
  }
  return "?";
}

std::string SweepCellKey::label() const {
  std::string out = variant.empty() ? "base" : variant;
  out += '/';
  out += guest::to_string(mode);
  out += metrics::format(" f=%gHz v=%d", tick_freq_hz, vcpus);
  if (overcommit > 0.0) out += metrics::format(" oc=%g", overcommit);
  return out;
}

void aggregate_sweep_runs(SweepResult& res) {
  // Fold strictly in run-index order so replica merges are deterministic
  // for any thread count, backend or shard split. Unexecuted slots (other
  // hosts' shard slices) are invisible; failed replicas only bump the
  // degradation counters; every mean/histogram covers survivors only.
  for (const SweepRun& r : res.runs) {
    if (!r.executed) continue;
    SweepCellSummary& cell = res.cells[r.cell];
    if (!r.ok) {
      if (r.failure && r.failure->kind == RunFailure::Kind::kSkipped) {
        ++cell.replicas_skipped;
      } else {
        ++cell.replicas_failed;
        if (r.failure && r.failure->kind == RunFailure::Kind::kTimeout) {
          ++cell.replicas_timed_out;
        }
      }
      continue;
    }
    cell.exits_total.add(static_cast<double>(r.result.exits_total));
    cell.exits_timer.add(static_cast<double>(r.result.exits_timer_related));
    cell.busy_cycles.add(static_cast<double>(r.result.busy_cycles().count()));
    if (const auto ct = r.result.completion_time()) {
      cell.exec_time_ms.add(ct->milliseconds());
    }
    sim::SimTime run_steal = sim::SimTime::zero();
    sim::SimTime run_est_err = sim::SimTime::zero();
    bool has_estimate = false;
    for (const auto& vm : r.result.vms) {
      cell.wakeup_latency_us.merge(vm.wakeup_latency_us);
      cell.wake_hist_us.merge(vm.wakeup_latency_hist_us);
      run_steal += vm.steal_time;
      if (vm.steal_estimate) {
        has_estimate = true;
        run_est_err += *vm.steal_estimate - vm.steal_time;
      }
    }
    cell.steal_ms.add(run_steal.milliseconds());
    if (has_estimate) cell.steal_est_err_ms.add(run_est_err.milliseconds());
    cell.events_executed.add(static_cast<double>(r.result.events_executed));
    cell.cb_spills.add(static_cast<double>(r.result.callback_spills));
    cell.cb_spill_bytes.add(static_cast<double>(r.result.callback_spill_bytes));
    cell.slot_high_water.add(static_cast<double>(r.result.slot_high_water));
    cell.compactions.add(static_cast<double>(r.result.queue_compactions));
    cell.par_windows.add(static_cast<double>(r.result.par_windows));
    cell.par_windows_skipped.add(
        static_cast<double>(r.result.par_windows_skipped));
    cell.par_barriers_elided.add(
        static_cast<double>(r.result.par_barriers_elided));
    cell.par_horizon_max_ns.add(
        static_cast<double>(r.result.par_horizon_max_ns));
    // First *surviving* replica — identical to replica 0 when nothing fails.
    if (cell.exits_total.count() == 1) cell.first = r.result;
  }
}

SweepRunner::SweepRunner(SweepConfig cfg) : cfg_(std::move(cfg)) {
  PARATICK_CHECK_MSG(cfg_.repeat >= 1, "sweep repeat must be >= 1");
}

std::size_t SweepRunner::cell_count() const {
  return SweepPlan::make(cfg_).cell_count();
}

std::size_t SweepRunner::total_runs() const {
  return SweepPlan::make(cfg_).total_runs();
}

SweepResult SweepRunner::run() const {
  const SweepPlan plan = SweepPlan::make(cfg_);

  SweepResult res;
  res.cells = plan.make_cells();
  res.runs.resize(plan.total_runs());
  // Stamp every slot's identity up front: even runs this shard never
  // executes still report which (cell, replica, seed) they stand for.
  for (std::size_t i = 0; i < res.runs.size(); ++i) {
    const SweepWorkItem w = plan.item(i);
    res.runs[i].run_index = w.run_index;
    res.runs[i].cell = w.cell;
    res.runs[i].replica = w.replica;
    res.runs[i].seed = w.seed;
  }

  const auto backend = make_backend(cfg_);
  res.backend_name = to_string(cfg_.backend);
  res.shard = cfg_.shard;
  res.threads_used = backend->parallelism();

  std::vector<std::size_t> all(res.runs.size());
  std::iota(all.begin(), all.end(), std::size_t{0});

  const auto sweep_start = std::chrono::steady_clock::now();
  backend->execute(plan, all, res.runs);
  res.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - sweep_start)
                         .count();

  aggregate_sweep_runs(res);

  // Replay bundles for real failures, written in run-index order so bundle
  // file names are deterministic.
  const std::string failure_dir =
      resolve_output_path(cfg_.output_dir, cfg_.failure_dir);
  if (!failure_dir.empty()) {
    for (SweepRun& r : res.runs) {
      if (!r.executed || r.ok || !r.failure ||
          r.failure->kind == RunFailure::Kind::kSkipped) {
        continue;
      }
      r.bundle_path = write_replay_bundle(cfg_, r, failure_dir,
                                          res.cells[r.cell].key.label());
      if (cfg_.progress) {
        std::fprintf(stderr, "sweep: replay bundle -> %s\n", r.bundle_path.c_str());
      }
    }
  }

  // Shard mode: persist this host's slice for sweep_merge. (Also legal
  // unsharded — a 1-shard partial merges to the full result, which is how
  // the tests pin the merge path against the direct one.)
  const std::string partial_path =
      resolve_output_path(cfg_.output_dir, cfg_.partial_path);
  if (!partial_path.empty()) {
    write_partial_snapshot(make_partial_snapshot(cfg_, res), partial_path);
    if (cfg_.progress) {
      std::fprintf(stderr, "sweep: shard %s partial snapshot -> %s\n",
                   cfg_.shard.label().c_str(), partial_path.c_str());
    }
  }
  return res;
}

SweepRun SweepRunner::execute_run(std::size_t run_index) const {
  const SweepPlan plan = SweepPlan::make(cfg_);
  PARATICK_CHECK_MSG(run_index < plan.total_runs(),
                     "execute_run: index out of range");
  return plan.execute(run_index);
}

std::size_t SweepResult::executed_run_count() const {
  std::size_t n = 0;
  for (const auto& r : runs) {
    if (r.executed) ++n;
  }
  return n;
}

const SweepCellSummary* SweepResult::find(const std::string& variant,
                                          guest::TickMode mode) const {
  for (const auto& cell : cells) {
    if (cell.key.variant == variant && cell.key.mode == mode) return &cell;
  }
  return nullptr;
}

std::vector<const SweepRun*> SweepResult::failed_runs() const {
  std::vector<const SweepRun*> out;
  for (const auto& r : runs) {
    if (r.executed && !r.ok && r.failure &&
        r.failure->kind != RunFailure::Kind::kSkipped) {
      out.push_back(&r);
    }
  }
  return out;
}

std::size_t SweepResult::ok_run_count() const {
  std::size_t n = 0;
  for (const auto& r : runs) {
    if (r.ok) ++n;
  }
  return n;
}

std::size_t SweepResult::degraded_cell_count() const {
  std::size_t n = 0;
  for (const auto& cell : cells) {
    if (cell.degraded()) ++n;
  }
  return n;
}

metrics::Comparison SweepResult::compare_cells(const SweepCellSummary& baseline,
                                               const SweepCellSummary& treatment) {
  metrics::Comparison c;
  c.exit_delta_pct = pct_ratio(treatment.exits_total.mean(), baseline.exits_total.mean());
  c.timer_exit_delta_pct =
      pct_ratio(treatment.exits_timer.mean(), baseline.exits_timer.mean());
  const double treat_busy = treatment.busy_cycles.mean();
  c.throughput_gain_pct =
      treat_busy > 0.0 ? (baseline.busy_cycles.mean() / treat_busy - 1.0) * 100.0 : 0.0;
  if (baseline.exec_time_ms.count() > 0 && treatment.exec_time_ms.count() > 0) {
    c.exec_time_delta_pct =
        pct_ratio(treatment.exec_time_ms.mean(), baseline.exec_time_ms.mean());
  }
  return c;
}

metrics::Comparison SweepResult::compare(const std::string& variant,
                                         guest::TickMode baseline,
                                         guest::TickMode treatment) const {
  const SweepCellSummary* base = find(variant, baseline);
  const SweepCellSummary* treat = find(variant, treatment);
  PARATICK_CHECK_MSG(base != nullptr && treat != nullptr,
                     "compare(): no such variant/mode cell in sweep");
  return compare_cells(*base, *treat);
}

std::string SweepResult::to_csv() const {
  std::string out =
      "variant,mode,tick_freq_hz,vcpus,overcommit,replicas,"
      "exits_mean,exits_stddev,timer_exits_mean,timer_exits_stddev,"
      "busy_mcycles_mean,busy_mcycles_stddev,exec_ms_mean,exec_ms_stddev,"
      "wake_us_mean,wake_us_max,steal_ms_mean,steal_est_err_ms_mean,"
      "failed,timed_out\n";
  for (const auto& cell : cells) {
    // Variant names come from user code (benchmark labels, device names)
    // and may carry commas/quotes/newlines — escape per RFC 4180.
    out += metrics::csv_field(cell.key.variant.empty() ? "base" : cell.key.variant);
    out += ',';
    out += metrics::csv_field(std::string(guest::to_string(cell.key.mode)));
    out += metrics::format(
        ",%g,%d,%g,%llu,%.0f,%.1f,%.0f,%.1f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,"
        "%.3f,%.3f,%llu,%llu\n",
        cell.key.tick_freq_hz, cell.key.vcpus, cell.key.overcommit,
        static_cast<unsigned long long>(cell.exits_total.count()),
        cell.exits_total.mean(), cell.exits_total.stddev(),
        cell.exits_timer.mean(), cell.exits_timer.stddev(),
        cell.busy_cycles.mean() / 1e6, cell.busy_cycles.stddev() / 1e6,
        cell.exec_time_ms.mean(), cell.exec_time_ms.stddev(),
        cell.wakeup_latency_us.mean(), cell.wakeup_latency_us.max(),
        cell.steal_ms.mean(), cell.steal_est_err_ms.mean(),
        static_cast<unsigned long long>(cell.replicas_failed),
        static_cast<unsigned long long>(cell.replicas_timed_out));
  }
  return out;
}

std::string SweepResult::to_json() const {
  // Deliberately no wall_seconds/threads here: the export is a pure
  // function of the cells, so thread vs fork backends and shard-merged
  // results produce byte-identical documents (asserted in test_sweep and
  // the shard-merge-smoke CI job).
  std::string out = "{\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    out += metrics::format(
        "    {\"variant\": \"%s\", \"mode\": \"%s\", \"tick_freq_hz\": %g, "
        "\"vcpus\": %d, \"overcommit\": %g, \"replicas\": %llu, "
        "\"failed\": %llu, \"timed_out\": %llu, \"skipped\": %llu, "
        "\"exits\": {\"mean\": %.1f, \"stddev\": %.2f}, "
        "\"timer_exits\": {\"mean\": %.1f, \"stddev\": %.2f}, "
        "\"busy_cycles\": {\"mean\": %.1f, \"stddev\": %.2f}, "
        "\"exec_ms\": {\"mean\": %.4f, \"stddev\": %.4f, \"n\": %llu}, "
        "\"wake_us\": {\"mean\": %.4f, \"stddev\": %.4f, \"max\": %.4f, \"n\": %llu}, "
        // Engine self-profile: deterministic counters only (engine wall
        // time would break the byte-identity of this export).
        "\"events\": {\"mean\": %.1f, \"stddev\": %.2f}, "
        "\"cb_spills\": {\"mean\": %.1f, \"stddev\": %.2f}, "
        "\"cb_spill_bytes\": {\"mean\": %.1f, \"stddev\": %.2f}, "
        "\"slot_high_water\": {\"mean\": %.1f, \"stddev\": %.2f}, "
        "\"compactions\": {\"mean\": %.1f, \"stddev\": %.2f}, "
        "\"steal_ms\": {\"mean\": %.4f, \"stddev\": %.4f}, "
        "\"steal_est_err_ms\": {\"mean\": %.4f, \"stddev\": %.4f, \"n\": %llu}, "
        "\"wake_us_hist\": {\"buckets\": [",
        metrics::json_escape(cell.key.variant.empty() ? "base" : cell.key.variant).c_str(),
        std::string(guest::to_string(cell.key.mode)).c_str(),
        cell.key.tick_freq_hz, cell.key.vcpus, cell.key.overcommit,
        static_cast<unsigned long long>(cell.exits_total.count()),
        static_cast<unsigned long long>(cell.replicas_failed),
        static_cast<unsigned long long>(cell.replicas_timed_out),
        static_cast<unsigned long long>(cell.replicas_skipped),
        cell.exits_total.mean(), cell.exits_total.stddev(),
        cell.exits_timer.mean(), cell.exits_timer.stddev(),
        cell.busy_cycles.mean(), cell.busy_cycles.stddev(),
        cell.exec_time_ms.mean(), cell.exec_time_ms.stddev(),
        static_cast<unsigned long long>(cell.exec_time_ms.count()),
        cell.wakeup_latency_us.mean(), cell.wakeup_latency_us.stddev(),
        cell.wakeup_latency_us.max(),
        static_cast<unsigned long long>(cell.wakeup_latency_us.count()),
        cell.events_executed.mean(), cell.events_executed.stddev(),
        cell.cb_spills.mean(), cell.cb_spills.stddev(),
        cell.cb_spill_bytes.mean(), cell.cb_spill_bytes.stddev(),
        cell.slot_high_water.mean(), cell.slot_high_water.stddev(),
        cell.compactions.mean(), cell.compactions.stddev(),
        cell.steal_ms.mean(), cell.steal_ms.stddev(),
        cell.steal_est_err_ms.mean(), cell.steal_est_err_ms.stddev(),
        static_cast<unsigned long long>(cell.steal_est_err_ms.count()));
    const auto& buckets = cell.wake_hist_us.buckets();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      out += metrics::format("%s%llu", b == 0 ? "" : ",",
                             static_cast<unsigned long long>(buckets[b]));
    }
    out += "]}";
    if (cell.par_windows.max() > 0.0) {
      // Parallel-engine window counters: deterministic at any
      // engine-thread count but lookahead-MODE-dependent, so they appear
      // only in cells that ran the partitioned engine — single-engine
      // sweep snapshots (and their committed baselines) stay unchanged,
      // and cross-mode byte-identity gates must compare the CSV export.
      out += metrics::format(
          ", \"par_windows\": {\"mean\": %.1f, \"stddev\": %.2f}, "
          "\"par_windows_skipped\": {\"mean\": %.1f, \"stddev\": %.2f}, "
          "\"par_barriers_elided\": {\"mean\": %.1f, \"stddev\": %.2f}, "
          "\"par_horizon_max_ns\": {\"mean\": %.1f, \"stddev\": %.2f}",
          cell.par_windows.mean(), cell.par_windows.stddev(),
          cell.par_windows_skipped.mean(), cell.par_windows_skipped.stddev(),
          cell.par_barriers_elided.mean(), cell.par_barriers_elided.stddev(),
          cell.par_horizon_max_ns.mean(), cell.par_horizon_max_ns.stddev());
    }
    out += metrics::format("}%s\n", i + 1 < cells.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

void SweepResult::write_csv(const std::string& path) const {
  write_file_atomic(path, to_csv());
}
void SweepResult::write_json(const std::string& path) const {
  write_file_atomic(path, to_json());
}

namespace {

/// The body of SweepCli::parse. Checked numeric parsing throws
/// sim::SimError on bad input (core/cli_parse.hpp); the public wrapper
/// turns that into exit(2) so `-j garbage` or `--seed 0xzz` fail loudly
/// instead of silently parsing to 0.
SweepCli parse_sweep_cli(int argc, char** argv) {
  SweepCli cli;
  cli.raw_args.assign(argv, argv + argc);
  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-j") == 0) {
      cli.threads = static_cast<unsigned>(
          parse_u64_flag("-j", need_value(i, "-j"), ~0u));
    } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      cli.threads = static_cast<unsigned>(parse_u64_flag("-j", arg + 2, ~0u));
    } else if (std::strcmp(arg, "--engine-threads") == 0) {
      cli.engine_threads = static_cast<unsigned>(parse_u64_flag(
          "--engine-threads", need_value(i, "--engine-threads"), ~0u));
    } else if (std::strcmp(arg, "--lookahead-mode") == 0) {
      cli.lookahead_mode = parse_choice_flag("--lookahead-mode",
                                             need_value(i, "--lookahead-mode"),
                                             {"global", "topology"}) == 0
                               ? sim::LookaheadMode::kGlobal
                               : sim::LookaheadMode::kTopology;
    } else if (std::strcmp(arg, "--max-horizon-windows") == 0) {
      cli.max_horizon_windows = parse_u64_flag(
          "--max-horizon-windows", need_value(i, "--max-horizon-windows"));
    } else if (std::strcmp(arg, "--repeat") == 0) {
      cli.repeat = static_cast<int>(parse_u64_flag(
          "--repeat", need_value(i, "--repeat"), 0x7FFFFFFFull));
    } else if (std::strcmp(arg, "--seed") == 0) {
      // base 0: decimal or 0x-prefixed hex, full 64-bit range.
      cli.root_seed =
          parse_u64_flag("--seed", need_value(i, "--seed"), ~0ull, 0);
    } else if (std::strcmp(arg, "--csv") == 0) {
      cli.csv = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      cli.progress = false;
    } else if (std::strcmp(arg, "--sweep-csv") == 0) {
      cli.sweep_csv = need_value(i, "--sweep-csv");
    } else if (std::strcmp(arg, "--sweep-json") == 0) {
      cli.sweep_json = need_value(i, "--sweep-json");
    } else if (std::strcmp(arg, "--history-dir") == 0) {
      cli.history_dir = need_value(i, "--history-dir");
    } else if (std::strcmp(arg, "--history-tag") == 0) {
      cli.history_tag = need_value(i, "--history-tag");
    } else if (std::strcmp(arg, "--backend") == 0) {
      const std::string name = need_value(i, "--backend");
      if (name == "thread") {
        cli.backend = BackendKind::kThread;
      } else if (name == "fork") {
        cli.backend = BackendKind::kFork;
      } else {
        std::fprintf(stderr, "--backend must be thread or fork, got %s\n",
                     name.c_str());
        std::exit(2);
      }
    } else if (std::strcmp(arg, "--fork-batch") == 0) {
      cli.fork_batch = static_cast<std::size_t>(
          parse_u64_flag("--fork-batch", need_value(i, "--fork-batch")));
    } else if (std::strcmp(arg, "--profile") == 0) {
      cli.profile = true;
    } else if (std::strcmp(arg, "--shard") == 0) {
      cli.shard = ShardSpec::parse(need_value(i, "--shard"));
    } else if (std::strcmp(arg, "--partial") == 0) {
      cli.partial_path = need_value(i, "--partial");
    } else if (std::strcmp(arg, "--merge") == 0) {
      cli.merge_paths.emplace_back(need_value(i, "--merge"));
    } else if (std::strcmp(arg, "--output-dir") == 0) {
      cli.output_dir = need_value(i, "--output-dir");
    } else if (std::strcmp(arg, "--chaos") == 0) {
      cli.chaos = true;
    } else if (std::strcmp(arg, "--watchdog") == 0) {
      cli.watchdog = true;
    } else if (std::strcmp(arg, "--failure-dir") == 0) {
      cli.failure_dir = need_value(i, "--failure-dir");
    } else if (std::strcmp(arg, "--record-trace") == 0) {
      cli.record_trace = true;
    } else if (std::strcmp(arg, "--max-failures") == 0) {
      cli.max_failures = static_cast<std::size_t>(
          parse_u64_flag("--max-failures", need_value(i, "--max-failures")));
    } else if (std::strcmp(arg, "--run-timeout") == 0) {
      cli.run_timeout_sec =
          parse_double_flag("--run-timeout", need_value(i, "--run-timeout"));
    } else if (std::strcmp(arg, "--dispatch") == 0) {
      cli.dispatch = true;
    } else if (std::strcmp(arg, "--workers") == 0) {
      cli.dispatch_workers = static_cast<unsigned>(
          parse_u64_flag("--workers", need_value(i, "--workers"), ~0u));
    } else if (std::strcmp(arg, "--max-retries") == 0) {
      cli.max_retries = static_cast<std::size_t>(
          parse_u64_flag("--max-retries", need_value(i, "--max-retries")));
    } else if (std::strcmp(arg, "--steal") == 0) {
      cli.steal = true;
    } else if (std::strcmp(arg, "--no-steal") == 0) {
      cli.steal = false;
    } else if (std::strcmp(arg, "--lease") == 0) {
      cli.lease_sec = parse_double_flag("--lease", need_value(i, "--lease"));
    } else if (std::strcmp(arg, "--retry-backoff") == 0) {
      cli.retry_backoff_sec = parse_double_flag(
          "--retry-backoff", need_value(i, "--retry-backoff"));
    } else if (std::strcmp(arg, "--heartbeat") == 0) {
      cli.heartbeat_sec =
          parse_double_flag("--heartbeat", need_value(i, "--heartbeat"));
    } else if (std::strcmp(arg, "--dispatch-cmd") == 0) {
      cli.dispatch_cmd = need_value(i, "--dispatch-cmd");
    } else if (std::strcmp(arg, "--checkpoint") == 0) {
      cli.checkpoint_path = need_value(i, "--checkpoint");
    } else if (std::strcmp(arg, "--dispatch-test-kill") == 0) {
      cli.dispatch_test_kill = static_cast<std::size_t>(parse_u64_flag(
          "--dispatch-test-kill", need_value(i, "--dispatch-test-kill")));
    } else if (std::strcmp(arg, "--skip-corrupt") == 0) {
      cli.skip_corrupt = true;
    } else if (std::strcmp(arg, "--worker-slice") == 0) {
      cli.worker_slice = need_value(i, "--worker-slice");
    } else if (std::strcmp(arg, "--worker-plan") == 0) {
      cli.worker_plan = true;
    } else if (std::strncmp(arg, "--fault-", 8) == 0) {
      const std::string knob = arg + 8;
      bool known = false;
      for (const char* k : fault_knob_names()) {
        if (knob == k) {
          known = true;
          break;
        }
      }
      if (!known) {
        std::fprintf(stderr, "unknown fault knob --fault-%s\n", knob.c_str());
        std::exit(2);
      }
      cli.fault_overrides.emplace_back(
          knob, parse_double_flag(arg, need_value(i, arg)));
    } else {
      cli.positional.emplace_back(arg);
    }
  }
  if (cli.repeat < 1) cli.repeat = 1;
  if (cli.dispatch && (cli.shard.active() || !cli.merge_paths.empty())) {
    std::fprintf(stderr,
                 "--dispatch already distributes the sweep; it cannot be "
                 "combined with --shard or --merge\n");
    std::exit(2);
  }
  if (cli.shard.active() && cli.partial_path.empty()) {
    std::fprintf(stderr,
                 "--shard without --partial would throw this shard's work "
                 "away; pass --partial <file> to keep the mergeable slice\n");
    std::exit(2);
  }
  return cli;
}

}  // namespace

SweepCli SweepCli::parse(int argc, char** argv) {
  try {
    return parse_sweep_cli(argc, argv);
  } catch (const sim::SimError& e) {
    // Bad flag values are user errors, not bugs: report cleanly, exit 2.
    std::fprintf(stderr, "%s\n", e.msg().c_str());
    std::exit(2);
  }
}

void SweepCli::apply(SweepConfig& cfg) const {
  cfg.threads = threads;
  cfg.engine_threads = engine_threads;
  cfg.lookahead_mode = lookahead_mode;
  cfg.max_horizon_windows = max_horizon_windows;
  cfg.repeat = repeat;
  cfg.progress = progress;
  if (root_seed) cfg.root_seed = *root_seed;
  cfg.backend = backend;
  cfg.fork_batch = fork_batch;
  cfg.shard = shard;
  if (!partial_path.empty()) cfg.partial_path = partial_path;
  if (!output_dir.empty()) cfg.output_dir = output_dir;
  if (chaos) {
    cfg.fault = default_chaos_faults();
    cfg.watchdog = true;  // chaos without invariant checks finds nothing
  }
  if (watchdog) cfg.watchdog = true;
  if (!failure_dir.empty()) cfg.failure_dir = failure_dir;
  if (record_trace) cfg.record_trace = true;
  if (max_failures > 0) cfg.max_failures = max_failures;
  if (run_timeout_sec > 0.0) cfg.run_timeout_sec = run_timeout_sec;
  for (const auto& [knob, value] : fault_overrides) {
    set_fault_knob(cfg.fault, knob, value);
  }
}

namespace {

/// The --dispatch branch of run_sweep: build the transport (forked
/// workers by default, the relaunch-this-argv command transport when
/// --dispatch-cmd names a launch template) and supervise the sweep
/// through the fault-tolerant dispatcher.
SweepResult run_dispatched(const SweepCli& cli, const SweepConfig& cfg) {
  dispatch::DispatchOptions opts;
  opts.workers = cli.dispatch_workers;
  opts.max_retries = cli.max_retries;
  opts.steal = cli.steal;
  opts.lease_sec = cli.lease_sec;
  opts.retry_backoff_sec = cli.retry_backoff_sec;
  opts.checkpoint_path =
      resolve_output_path(cfg.output_dir, cli.checkpoint_path);
  opts.bench_name = cfg.bench_name;
  opts.progress = cfg.progress;
  opts.test_kill_after = cli.dispatch_test_kill;

  const std::string failure_dir =
      resolve_output_path(cfg.output_dir, cfg.failure_dir);
  if (!failure_dir.empty()) {
    // Workers write bundles for runs they complete; this covers runs no
    // worker ever finished (degraded after --max-retries) so the operator
    // can still replay the abandoned index locally.
    auto bundle_cfg = std::make_shared<SweepConfig>(cfg);
    auto keys = std::make_shared<std::vector<SweepCellKey>>(
        SweepPlan::make(cfg).cell_keys());
    opts.bundle_writer = [bundle_cfg, keys, failure_dir](SweepRun& run) {
      run.bundle_path = write_replay_bundle(*bundle_cfg, run, failure_dir,
                                            (*keys)[run.cell].label());
    };
  }

  dispatch::WorkerOptions wopts;
  wopts.heartbeat_sec = cli.heartbeat_sec;
  std::unique_ptr<dispatch::WorkerTransport> transport;
  if (cli.dispatch_cmd.empty()) {
    transport = std::make_unique<dispatch::ForkWorkerTransport>(cfg, wopts);
  } else {
    transport = std::make_unique<dispatch::CommandWorkerTransport>(
        cli.raw_args, cli.dispatch_cmd);
  }

  dispatch::SweepDispatcher dispatcher(std::move(transport), std::move(opts));
  SweepResult res = dispatcher.run();
  const auto& st = dispatcher.stats();
  if (cfg.progress) {
    std::fprintf(stderr,
                 "dispatch: %zu records from %zu workers (%zu died, %zu "
                 "leases expired, %zu steals, %zu retries, %zu duplicates, "
                 "%zu resumed, %zu degraded)\n",
                 st.records_received, st.workers_launched, st.workers_died,
                 st.leases_expired, st.steals, st.retries,
                 st.duplicate_records, st.runs_resumed, st.runs_degraded);
  }
  return res;
}

}  // namespace

SweepResult SweepCli::run_sweep(SweepConfig cfg) const {
  // Hidden worker modes come first: the dispatcher appends these flags to
  // a relaunched argv, so they must win over whatever mode flags (e.g.
  // --dispatch itself) rode along in the original command line.
  if (worker_plan) {
    std::printf("#plan %s\n",
                dispatch::to_json(dispatch::plan_info_for(cfg)).c_str());
    std::exit(0);
  }
  if (!worker_slice.empty()) {
    try {
      dispatch::WorkerOptions wopts;
      wopts.heartbeat_sec = heartbeat_sec;
      std::exit(dispatch::run_worker_slice(cfg,
                                           dispatch::decode_slice(worker_slice),
                                           STDOUT_FILENO, STDIN_FILENO, wopts));
    } catch (const sim::SimError& e) {
      std::fprintf(stderr, "%s\n", e.msg().c_str());
      std::exit(2);
    }
  }
  if (dispatch) {
    // Coordinator-level faults (broken worker command, fleet config skew)
    // are environment errors, not bugs: clean CLI failure.
    try {
      return run_dispatched(*this, cfg);
    } catch (const sim::SimError& e) {
      std::fprintf(stderr, "%s\n", e.msg().c_str());
      std::exit(1);
    }
  }
  if (merge_paths.empty()) return SweepRunner(std::move(cfg)).run();

  // --merge: no execution; fold the named partial snapshots, after checking
  // they actually belong to the sweep this binary would have run. Merge
  // errors are user errors (wrong file, wrong flags), not bugs — report
  // them as a clean CLI failure instead of an unhandled CHECK.
  try {
    return merge_as_configured(std::move(cfg));
  } catch (const sim::SimError& e) {
    std::fprintf(stderr, "%s\n", e.msg().c_str());
    std::exit(1);
  }
}

SweepResult SweepCli::merge_as_configured(SweepConfig cfg) const {
  std::vector<PartialSnapshot> partials;
  partials.reserve(merge_paths.size());
  for (const auto& path : merge_paths) {
    const std::string full = resolve_output_path(cfg.output_dir, path);
    if (!skip_corrupt) {
      partials.push_back(load_partial_snapshot(full));
      continue;
    }
    // --skip-corrupt: a lost shard degrades its cells instead of sinking
    // the whole fleet's merge. The error (with file and byte offset) is
    // still reported so the operator knows what to regenerate.
    try {
      partials.push_back(load_partial_snapshot(full));
    } catch (const sim::SimError& e) {
      std::fprintf(stderr, "sweep: --skip-corrupt: dropping %s\n",
                   e.msg().c_str());
    }
  }
  PARATICK_CHECK_MSG(!partials.empty(),
                     "--merge: no readable partial snapshots "
                     "(every file was dropped by --skip-corrupt)");

  const SweepPlan plan = SweepPlan::make(cfg);
  const PartialSnapshot& ref = partials.front();
  const auto mismatch = [&](const char* what) {
    const std::string msg =
        std::string("--merge: partial snapshots were produced by a different "
                    "sweep than this invocation (mismatched ") +
        what + ") — pass the same --seed/--repeat and grid flags the shards ran with";
    PARATICK_CHECK_MSG(false, msg.c_str());
  };
  if (ref.root_seed != cfg.root_seed) mismatch("root seed");
  if (ref.repeat != cfg.repeat) mismatch("repeat count");
  if (ref.total_runs != plan.total_runs()) mismatch("run count");
  const auto& keys = plan.cell_keys();
  if (ref.cells.size() != keys.size()) mismatch("cell grid");
  for (std::size_t c = 0; c < keys.size(); ++c) {
    const SweepCellKey& a = keys[c];
    const SweepCellKey& b = ref.cells[c];
    if (a.variant != b.variant || a.mode != b.mode ||
        a.tick_freq_hz != b.tick_freq_hz || a.vcpus != b.vcpus ||
        a.overcommit != b.overcommit) {
      mismatch("cell grid");
    }
  }

  SweepResult res = merge_partial_snapshots(partials, skip_corrupt);
  if (progress) {
    std::fprintf(stderr, "sweep: merged %zu partial snapshot%s (%zu runs)\n",
                 partials.size(), partials.size() == 1 ? "" : "s",
                 res.runs.size());
  }
  return res;
}

void SweepCli::export_results(const SweepResult& result,
                              const std::string& bench_name) const {
  if (!sweep_csv.empty()) result.write_csv(sweep_csv);
  if (!sweep_json.empty()) result.write_json(sweep_json);
  if (progress && (!sweep_csv.empty() || !sweep_json.empty())) {
    std::fprintf(stderr, "sweep: %zu runs in %.2fs on %u %s workers%s%s%s%s\n",
                 result.executed_run_count(), result.wall_seconds,
                 result.threads_used, result.backend_name.c_str(),
                 sweep_csv.empty() ? "" : ", csv -> ",
                 sweep_csv.c_str(),
                 sweep_json.empty() ? "" : ", json -> ",
                 sweep_json.c_str());
  }
  if (profile) {
    // Engine self-profile, aggregated over every executed run. Works for
    // merged results too — the counters ride in the run records. Only
    // events/sec depends on host wall time; everything above it is
    // deterministic and doubles as a "zero spills" acceptance check.
    std::uint64_t events = 0, scheduled = 0, cancelled = 0;
    std::uint64_t spills = 0, spill_bytes = 0, compactions = 0;
    std::uint64_t high_water = 0, wall_ns = 0;
    std::uint64_t par_windows = 0, par_skipped = 0, par_elided = 0;
    std::uint64_t par_horizon_ns = 0;
    for (const auto& run : result.runs) {
      if (!run.executed || !run.ok) continue;
      events += run.result.events_executed;
      scheduled += run.result.events_scheduled;
      cancelled += run.result.events_cancelled;
      spills += run.result.callback_spills;
      spill_bytes += run.result.callback_spill_bytes;
      compactions += run.result.queue_compactions;
      if (run.result.slot_high_water > high_water)
        high_water = run.result.slot_high_water;
      par_windows += run.result.par_windows;
      par_skipped += run.result.par_windows_skipped;
      par_elided += run.result.par_barriers_elided;
      if (run.result.par_horizon_max_ns > par_horizon_ns)
        par_horizon_ns = run.result.par_horizon_max_ns;
      wall_ns += run.result.engine_wall_ns;
    }
    std::printf("engine profile (%zu runs)\n", result.executed_run_count());
    std::printf("  events executed      %20llu\n",
                static_cast<unsigned long long>(events));
    std::printf("  events scheduled     %20llu\n",
                static_cast<unsigned long long>(scheduled));
    std::printf("  events cancelled     %20llu\n",
                static_cast<unsigned long long>(cancelled));
    std::printf("  callback heap spills %20llu\n",
                static_cast<unsigned long long>(spills));
    std::printf("  callback spill bytes %20llu\n",
                static_cast<unsigned long long>(spill_bytes));
    std::printf("  slot-map high water  %20llu\n",
                static_cast<unsigned long long>(high_water));
    std::printf("  heap compactions     %20llu\n",
                static_cast<unsigned long long>(compactions));
    if (par_windows > 0) {
      // Parallel-engine window counters (only when something actually ran
      // the partitioned engine). Mode-dependent by design: topology mode
      // proves its barrier savings right here.
      std::printf("  parallel windows     %20llu\n",
                  static_cast<unsigned long long>(par_windows));
      std::printf("  windows skipped      %20llu\n",
                  static_cast<unsigned long long>(par_skipped));
      std::printf("  barriers elided      %20llu\n",
                  static_cast<unsigned long long>(par_elided));
      std::printf("  max horizon (ns)     %20llu\n",
                  static_cast<unsigned long long>(par_horizon_ns));
    }
    if (wall_ns > 0) {
      std::printf("  events/sec (engine)  %20.0f\n",
                  static_cast<double>(events) /
                      (static_cast<double>(wall_ns) * 1e-9));
    }
  }
  if (!history_dir.empty()) {
    if (bench_name.empty()) {
      std::fprintf(stderr,
                   "--history-dir: this binary does not name its sweep; "
                   "no snapshot written\n");
      return;
    }
    const std::string tag = history_tag.empty() ? history_tag_now() : history_tag;
    const std::string path =
        write_history_snapshot(result, history_dir, bench_name, tag);
    if (progress) std::fprintf(stderr, "sweep: history snapshot -> %s\n", path.c_str());
  }
}

}  // namespace paratick::core
