#include "core/sweep.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "core/history.hpp"
#include "core/replay.hpp"
#include "core/scenarios.hpp"
#include "core/thread_pool.hpp"
#include "metrics/report.hpp"
#include "sim/check.hpp"
#include "sim/error.hpp"

namespace paratick::core {

namespace {

double pct_ratio(double treatment, double baseline) {
  if (baseline == 0.0) return 0.0;
  return (treatment / baseline - 1.0) * 100.0;
}

int effective_copies(const ExperimentSpec& exp) {
  return exp.vm_setups.empty() ? (exp.vm_copies > 0 ? exp.vm_copies : 1)
                               : static_cast<int>(exp.vm_setups.size());
}

/// The per-cell slice of the grid axes, resolved against the base spec.
struct Grid {
  std::vector<SweepVariant> variants;
  std::vector<guest::TickMode> modes;
  std::vector<double> freqs;
  std::vector<int> vcpus;
  std::vector<double> overcommit;  // empty = inherit machine; key still filled
  bool freq_axis, vcpu_axis, oc_axis;
};

Grid resolve_grid(const SweepConfig& cfg) {
  Grid g;
  g.variants = cfg.variants.empty()
                   ? std::vector<SweepVariant>{{std::string{}, nullptr}}
                   : cfg.variants;
  g.modes = cfg.modes;
  PARATICK_CHECK_MSG(!g.modes.empty(), "sweep needs at least one tick mode");
  g.freq_axis = !cfg.tick_freqs_hz.empty();
  g.vcpu_axis = !cfg.vcpu_counts.empty();
  g.oc_axis = !cfg.overcommit.empty();
  g.freqs = g.freq_axis ? cfg.tick_freqs_hz
                        : std::vector<double>{cfg.base.guest_tick_freq.hertz()};
  g.vcpus = g.vcpu_axis ? cfg.vcpu_counts : std::vector<int>{cfg.base.vcpus};
  g.overcommit = g.oc_axis ? cfg.overcommit : std::vector<double>{0.0};
  return g;
}

/// Materialize the ExperimentSpec for one cell: variant first, then the
/// numeric axes override whatever the variant left in place.
ExperimentSpec cell_spec(const SweepConfig& cfg, const Grid& g,
                         const SweepVariant& variant, double freq_hz, int vcpus,
                         double overcommit) {
  ExperimentSpec spec = cfg.base;
  if (variant.apply) variant.apply(spec);
  if (g.freq_axis) spec.guest_tick_freq = sim::Frequency{freq_hz};
  if (g.vcpu_axis) spec.vcpus = vcpus;
  if (g.oc_axis) {
    PARATICK_CHECK_MSG(overcommit > 0.0, "overcommit ratio must be > 0");
    const double total =
        static_cast<double>(spec.vcpus) * effective_copies(spec);
    const auto pcpus = static_cast<std::uint32_t>(
        std::max<long long>(1, std::llround(total / overcommit)));
    spec.machine = hw::MachineSpec::small(pcpus);
  }
  return spec;
}

/// Execute run `i` of the grid with full crash isolation. Everything the
/// run depends on — cell spec, seeds, fault plan — is a pure function of
/// (cfg, i), which is what makes replay bundles and any-`-j` bit-identity
/// work.
SweepRun run_one(const SweepConfig& cfg, const Grid& g, std::size_t i) {
  const auto repeat = static_cast<std::size_t>(cfg.repeat);
  SweepRun out;
  out.run_index = i;
  out.cell = i / repeat;
  out.replica = static_cast<int>(i % repeat);

  // Decompose the cell index along the axes, innermost (overcommit) first —
  // must match the nested-loop expansion order in SweepRunner::run().
  std::size_t c = out.cell;
  const std::size_t oc_i = c % g.overcommit.size();
  c /= g.overcommit.size();
  const std::size_t vc_i = c % g.vcpus.size();
  c /= g.vcpus.size();
  const std::size_t f_i = c % g.freqs.size();
  c /= g.freqs.size();
  const std::size_t m_i = c % g.modes.size();
  c /= g.modes.size();
  const SweepVariant& variant = g.variants[c];

  ExperimentSpec spec = cell_spec(cfg, g, variant, g.freqs[f_i],
                                  g.vcpus[vc_i], g.overcommit[oc_i]);
  // Seeds depend only on (root_seed, run index): bit-identical results
  // for any thread count or schedule.
  const std::uint64_t seed = derive_seed(cfg.root_seed, i);
  out.seed = seed;
  spec.guest_seed = seed;
  spec.host.seed = derive_seed(seed, 0x686f7374);  // independent host stream
  if (cfg.fault.any()) spec.fault = cfg.fault;
  spec.fault_seed = derive_seed(seed, 0x6661756c);  // independent fault plan
  if (cfg.watchdog) {
    spec.watchdog = true;
    spec.watchdog_timer_grace = cfg.watchdog_timer_grace;
  }
  if (cfg.run_timeout_sec > 0.0) spec.wall_limit_sec = cfg.run_timeout_sec;

  try {
    out.result = run_mode(spec, g.modes[m_i]);
    out.ok = true;
  } catch (const sim::SimError& e) {
    out.ok = false;
    RunFailure f;
    switch (e.kind()) {
      case sim::SimError::Kind::kCheck: f.kind = RunFailure::Kind::kCheck; break;
      case sim::SimError::Kind::kWatchdog: f.kind = RunFailure::Kind::kWatchdog; break;
      case sim::SimError::Kind::kTimeout: f.kind = RunFailure::Kind::kTimeout; break;
    }
    f.expr = e.expr();
    f.file = e.file();
    f.line = e.line();
    f.message = e.msg();
    if (e.sim_time()) f.sim_time_ns = e.sim_time()->nanoseconds();
    f.events_executed = e.events_executed();
    out.failure = std::move(f);
  } catch (const std::exception& e) {
    out.ok = false;
    RunFailure f;
    f.kind = RunFailure::Kind::kException;
    f.message = e.what();
    out.failure = std::move(f);
  }
  return out;
}

}  // namespace

const char* RunFailure::kind_name(Kind k) {
  switch (k) {
    case Kind::kCheck: return "check";
    case Kind::kWatchdog: return "watchdog";
    case Kind::kTimeout: return "timeout";
    case Kind::kException: return "exception";
    case Kind::kSkipped: return "skipped";
  }
  return "?";
}

std::string SweepCellKey::label() const {
  std::string out = variant.empty() ? "base" : variant;
  out += '/';
  out += guest::to_string(mode);
  out += metrics::format(" f=%gHz v=%d", tick_freq_hz, vcpus);
  if (overcommit > 0.0) out += metrics::format(" oc=%g", overcommit);
  return out;
}

SweepRunner::SweepRunner(SweepConfig cfg) : cfg_(std::move(cfg)) {
  PARATICK_CHECK_MSG(cfg_.repeat >= 1, "sweep repeat must be >= 1");
}

std::size_t SweepRunner::cell_count() const {
  const Grid g = resolve_grid(cfg_);
  return g.variants.size() * g.modes.size() * g.freqs.size() *
         g.vcpus.size() * g.overcommit.size();
}

std::size_t SweepRunner::total_runs() const {
  return cell_count() * static_cast<std::size_t>(cfg_.repeat);
}

SweepResult SweepRunner::run() const {
  const Grid g = resolve_grid(cfg_);

  SweepResult res;
  // Cell expansion order is the public contract: variants, then modes, then
  // tick freqs, then vcpus, then overcommit, innermost last.
  struct CellPlan {
    const SweepVariant* variant;
    guest::TickMode mode;
    double freq_hz;
    int vcpus;
    double overcommit;
  };
  std::vector<CellPlan> plans;
  for (const auto& variant : g.variants) {
    for (const auto mode : g.modes) {
      for (const double freq : g.freqs) {
        for (const int vc : g.vcpus) {
          for (const double oc : g.overcommit) {
            plans.push_back({&variant, mode, freq, vc, oc});
            // Key fields come from the materialized spec, so inherited axes
            // still export their effective values and the grid is
            // self-describing.
            const ExperimentSpec spec = cell_spec(cfg_, g, variant, freq, vc, oc);
            SweepCellSummary cell;
            cell.key.variant = variant.name;
            cell.key.mode = mode;
            cell.key.tick_freq_hz = spec.guest_tick_freq.hertz();
            cell.key.vcpus = spec.vcpus;
            cell.key.overcommit = static_cast<double>(spec.vcpus) *
                                  effective_copies(spec) /
                                  spec.machine.total_cpus();
            res.cells.push_back(std::move(cell));
          }
        }
      }
    }
  }

  const auto repeat = static_cast<std::size_t>(cfg_.repeat);
  const std::size_t n_runs = plans.size() * repeat;
  res.runs.resize(n_runs);
  res.threads_used = cfg_.threads == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : cfg_.threads;

  std::mutex progress_mu;
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failures{0};
  const auto sweep_start = std::chrono::steady_clock::now();

  parallel_for_index(n_runs, res.threads_used, [&](std::size_t i) {
    SweepRun& out = res.runs[i];
    // Fail-fast: once the failure budget is spent, remaining runs become
    // kSkipped records (which runs get skipped is scheduling-dependent; the
    // flag trades -j-bit-identity for wall-clock on broken builds).
    if (cfg_.max_failures > 0 &&
        failures.load(std::memory_order_relaxed) >= cfg_.max_failures) {
      out.run_index = i;
      out.cell = i / repeat;
      out.replica = static_cast<int>(i % repeat);
      out.seed = derive_seed(cfg_.root_seed, i);
      out.ok = false;
      RunFailure f;
      f.kind = RunFailure::Kind::kSkipped;
      f.message = "skipped: --max-failures budget spent";
      out.failure = std::move(f);
      return;
    }

    const auto t0 = std::chrono::steady_clock::now();
    out = run_one(cfg_, g, i);
    out.host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (!out.ok) failures.fetch_add(1, std::memory_order_relaxed);

    if (cfg_.progress) {
      const std::size_t finished = done.fetch_add(1) + 1;
      std::scoped_lock lock(progress_mu);
      std::fprintf(stderr, "[sweep %zu/%zu] %s r%d seed=%016llx %.2fs%s%s\n",
                   finished, n_runs, res.cells[out.cell].key.label().c_str(),
                   out.replica, static_cast<unsigned long long>(out.seed),
                   out.host_seconds, out.ok ? "" : " FAIL:",
                   out.ok ? "" : RunFailure::kind_name(out.failure->kind));
    }
  });

  res.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - sweep_start)
                         .count();

  // Aggregate strictly in run-index order so replica merges are
  // deterministic too. Failed replicas only bump the degradation counters;
  // every mean/histogram covers survivors exclusively.
  for (const SweepRun& r : res.runs) {
    SweepCellSummary& cell = res.cells[r.cell];
    if (!r.ok) {
      if (r.failure && r.failure->kind == RunFailure::Kind::kSkipped) {
        ++cell.replicas_skipped;
      } else {
        ++cell.replicas_failed;
        if (r.failure && r.failure->kind == RunFailure::Kind::kTimeout) {
          ++cell.replicas_timed_out;
        }
      }
      continue;
    }
    cell.exits_total.add(static_cast<double>(r.result.exits_total));
    cell.exits_timer.add(static_cast<double>(r.result.exits_timer_related));
    cell.busy_cycles.add(static_cast<double>(r.result.busy_cycles().count()));
    if (const auto ct = r.result.completion_time()) {
      cell.exec_time_ms.add(ct->milliseconds());
    }
    for (const auto& vm : r.result.vms) {
      cell.wakeup_latency_us.merge(vm.wakeup_latency_us);
      cell.wake_hist_us.merge(vm.wakeup_latency_hist_us);
    }
    // First *surviving* replica — identical to replica 0 when nothing fails.
    if (cell.exits_total.count() == 1) cell.first = r.result;
  }

  // Replay bundles for real failures, written in run-index order so bundle
  // file names are deterministic.
  if (!cfg_.failure_dir.empty()) {
    for (SweepRun& r : res.runs) {
      if (r.ok || !r.failure || r.failure->kind == RunFailure::Kind::kSkipped) {
        continue;
      }
      r.bundle_path = write_replay_bundle(cfg_, r, cfg_.failure_dir,
                                          res.cells[r.cell].key.label());
      if (cfg_.progress) {
        std::fprintf(stderr, "sweep: replay bundle -> %s\n", r.bundle_path.c_str());
      }
    }
  }
  return res;
}

SweepRun SweepRunner::execute_run(std::size_t run_index) const {
  PARATICK_CHECK_MSG(run_index < total_runs(), "execute_run: index out of range");
  const Grid g = resolve_grid(cfg_);
  return run_one(cfg_, g, run_index);
}

const SweepCellSummary* SweepResult::find(const std::string& variant,
                                          guest::TickMode mode) const {
  for (const auto& cell : cells) {
    if (cell.key.variant == variant && cell.key.mode == mode) return &cell;
  }
  return nullptr;
}

std::vector<const SweepRun*> SweepResult::failed_runs() const {
  std::vector<const SweepRun*> out;
  for (const auto& r : runs) {
    if (!r.ok && r.failure && r.failure->kind != RunFailure::Kind::kSkipped) {
      out.push_back(&r);
    }
  }
  return out;
}

std::size_t SweepResult::ok_run_count() const {
  std::size_t n = 0;
  for (const auto& r : runs) {
    if (r.ok) ++n;
  }
  return n;
}

std::size_t SweepResult::degraded_cell_count() const {
  std::size_t n = 0;
  for (const auto& cell : cells) {
    if (cell.degraded()) ++n;
  }
  return n;
}

metrics::Comparison SweepResult::compare_cells(const SweepCellSummary& baseline,
                                               const SweepCellSummary& treatment) {
  metrics::Comparison c;
  c.exit_delta_pct = pct_ratio(treatment.exits_total.mean(), baseline.exits_total.mean());
  c.timer_exit_delta_pct =
      pct_ratio(treatment.exits_timer.mean(), baseline.exits_timer.mean());
  const double treat_busy = treatment.busy_cycles.mean();
  c.throughput_gain_pct =
      treat_busy > 0.0 ? (baseline.busy_cycles.mean() / treat_busy - 1.0) * 100.0 : 0.0;
  if (baseline.exec_time_ms.count() > 0 && treatment.exec_time_ms.count() > 0) {
    c.exec_time_delta_pct =
        pct_ratio(treatment.exec_time_ms.mean(), baseline.exec_time_ms.mean());
  }
  return c;
}

metrics::Comparison SweepResult::compare(const std::string& variant,
                                         guest::TickMode baseline,
                                         guest::TickMode treatment) const {
  const SweepCellSummary* base = find(variant, baseline);
  const SweepCellSummary* treat = find(variant, treatment);
  PARATICK_CHECK_MSG(base != nullptr && treat != nullptr,
                     "compare(): no such variant/mode cell in sweep");
  return compare_cells(*base, *treat);
}

std::string SweepResult::to_csv() const {
  std::string out =
      "variant,mode,tick_freq_hz,vcpus,overcommit,replicas,"
      "exits_mean,exits_stddev,timer_exits_mean,timer_exits_stddev,"
      "busy_mcycles_mean,busy_mcycles_stddev,exec_ms_mean,exec_ms_stddev,"
      "wake_us_mean,wake_us_max,failed,timed_out\n";
  for (const auto& cell : cells) {
    // Variant names come from user code (benchmark labels, device names)
    // and may carry commas/quotes/newlines — escape per RFC 4180.
    out += metrics::csv_field(cell.key.variant.empty() ? "base" : cell.key.variant);
    out += ',';
    out += metrics::csv_field(std::string(guest::to_string(cell.key.mode)));
    out += metrics::format(
        ",%g,%d,%g,%llu,%.0f,%.1f,%.0f,%.1f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%llu,%llu\n",
        cell.key.tick_freq_hz, cell.key.vcpus, cell.key.overcommit,
        static_cast<unsigned long long>(cell.exits_total.count()),
        cell.exits_total.mean(), cell.exits_total.stddev(),
        cell.exits_timer.mean(), cell.exits_timer.stddev(),
        cell.busy_cycles.mean() / 1e6, cell.busy_cycles.stddev() / 1e6,
        cell.exec_time_ms.mean(), cell.exec_time_ms.stddev(),
        cell.wakeup_latency_us.mean(), cell.wakeup_latency_us.max(),
        static_cast<unsigned long long>(cell.replicas_failed),
        static_cast<unsigned long long>(cell.replicas_timed_out));
  }
  return out;
}

std::string SweepResult::to_json() const {
  std::string out = metrics::format(
      "{\n  \"wall_seconds\": %.3f,\n  \"threads\": %u,\n  \"cells\": [\n",
      wall_seconds, threads_used);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    out += metrics::format(
        "    {\"variant\": \"%s\", \"mode\": \"%s\", \"tick_freq_hz\": %g, "
        "\"vcpus\": %d, \"overcommit\": %g, \"replicas\": %llu, "
        "\"failed\": %llu, \"timed_out\": %llu, \"skipped\": %llu, "
        "\"exits\": {\"mean\": %.1f, \"stddev\": %.2f}, "
        "\"timer_exits\": {\"mean\": %.1f, \"stddev\": %.2f}, "
        "\"busy_cycles\": {\"mean\": %.1f, \"stddev\": %.2f}, "
        "\"exec_ms\": {\"mean\": %.4f, \"stddev\": %.4f, \"n\": %llu}, "
        "\"wake_us\": {\"mean\": %.4f, \"stddev\": %.4f, \"max\": %.4f, \"n\": %llu}, "
        "\"wake_us_hist\": {\"buckets\": [",
        metrics::json_escape(cell.key.variant.empty() ? "base" : cell.key.variant).c_str(),
        std::string(guest::to_string(cell.key.mode)).c_str(),
        cell.key.tick_freq_hz, cell.key.vcpus, cell.key.overcommit,
        static_cast<unsigned long long>(cell.exits_total.count()),
        static_cast<unsigned long long>(cell.replicas_failed),
        static_cast<unsigned long long>(cell.replicas_timed_out),
        static_cast<unsigned long long>(cell.replicas_skipped),
        cell.exits_total.mean(), cell.exits_total.stddev(),
        cell.exits_timer.mean(), cell.exits_timer.stddev(),
        cell.busy_cycles.mean(), cell.busy_cycles.stddev(),
        cell.exec_time_ms.mean(), cell.exec_time_ms.stddev(),
        static_cast<unsigned long long>(cell.exec_time_ms.count()),
        cell.wakeup_latency_us.mean(), cell.wakeup_latency_us.stddev(),
        cell.wakeup_latency_us.max(),
        static_cast<unsigned long long>(cell.wakeup_latency_us.count()));
    const auto& buckets = cell.wake_hist_us.buckets();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      out += metrics::format("%s%llu", b == 0 ? "" : ",",
                             static_cast<unsigned long long>(buckets[b]));
    }
    out += metrics::format("]}}%s\n", i + 1 < cells.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

namespace {
void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PARATICK_CHECK_MSG(f != nullptr, "cannot open sweep export file for writing");
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}
}  // namespace

void SweepResult::write_csv(const std::string& path) const { write_file(path, to_csv()); }
void SweepResult::write_json(const std::string& path) const { write_file(path, to_json()); }

SweepCli SweepCli::parse(int argc, char** argv) {
  SweepCli cli;
  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-j") == 0) {
      cli.threads = static_cast<unsigned>(std::strtoul(need_value(i, "-j"), nullptr, 10));
    } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      cli.threads = static_cast<unsigned>(std::strtoul(arg + 2, nullptr, 10));
    } else if (std::strcmp(arg, "--repeat") == 0) {
      cli.repeat = static_cast<int>(std::strtol(need_value(i, "--repeat"), nullptr, 10));
    } else if (std::strcmp(arg, "--seed") == 0) {
      cli.root_seed = std::strtoull(need_value(i, "--seed"), nullptr, 0);
    } else if (std::strcmp(arg, "--csv") == 0) {
      cli.csv = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      cli.progress = false;
    } else if (std::strcmp(arg, "--sweep-csv") == 0) {
      cli.sweep_csv = need_value(i, "--sweep-csv");
    } else if (std::strcmp(arg, "--sweep-json") == 0) {
      cli.sweep_json = need_value(i, "--sweep-json");
    } else if (std::strcmp(arg, "--history-dir") == 0) {
      cli.history_dir = need_value(i, "--history-dir");
    } else if (std::strcmp(arg, "--history-tag") == 0) {
      cli.history_tag = need_value(i, "--history-tag");
    } else if (std::strcmp(arg, "--chaos") == 0) {
      cli.chaos = true;
    } else if (std::strcmp(arg, "--watchdog") == 0) {
      cli.watchdog = true;
    } else if (std::strcmp(arg, "--failure-dir") == 0) {
      cli.failure_dir = need_value(i, "--failure-dir");
    } else if (std::strcmp(arg, "--max-failures") == 0) {
      cli.max_failures = static_cast<std::size_t>(
          std::strtoull(need_value(i, "--max-failures"), nullptr, 10));
    } else if (std::strcmp(arg, "--run-timeout") == 0) {
      cli.run_timeout_sec = std::strtod(need_value(i, "--run-timeout"), nullptr);
    } else if (std::strncmp(arg, "--fault-", 8) == 0) {
      const std::string knob = arg + 8;
      bool known = false;
      for (const char* k : fault_knob_names()) {
        if (knob == k) {
          known = true;
          break;
        }
      }
      if (!known) {
        std::fprintf(stderr, "unknown fault knob --fault-%s\n", knob.c_str());
        std::exit(2);
      }
      cli.fault_overrides.emplace_back(
          knob, std::strtod(need_value(i, arg), nullptr));
    } else {
      cli.positional.emplace_back(arg);
    }
  }
  if (cli.repeat < 1) cli.repeat = 1;
  return cli;
}

void SweepCli::apply(SweepConfig& cfg) const {
  cfg.threads = threads;
  cfg.repeat = repeat;
  cfg.progress = progress;
  if (root_seed) cfg.root_seed = *root_seed;
  if (chaos) {
    cfg.fault = default_chaos_faults();
    cfg.watchdog = true;  // chaos without invariant checks finds nothing
  }
  if (watchdog) cfg.watchdog = true;
  if (!failure_dir.empty()) cfg.failure_dir = failure_dir;
  if (max_failures > 0) cfg.max_failures = max_failures;
  if (run_timeout_sec > 0.0) cfg.run_timeout_sec = run_timeout_sec;
  for (const auto& [knob, value] : fault_overrides) {
    set_fault_knob(cfg.fault, knob, value);
  }
}

void SweepCli::export_results(const SweepResult& result,
                              const std::string& bench_name) const {
  if (!sweep_csv.empty()) result.write_csv(sweep_csv);
  if (!sweep_json.empty()) result.write_json(sweep_json);
  if (progress && (!sweep_csv.empty() || !sweep_json.empty())) {
    std::fprintf(stderr, "sweep: %zu runs in %.2fs on %u threads%s%s%s%s\n",
                 result.runs.size(), result.wall_seconds, result.threads_used,
                 sweep_csv.empty() ? "" : ", csv -> ",
                 sweep_csv.c_str(),
                 sweep_json.empty() ? "" : ", json -> ",
                 sweep_json.c_str());
  }
  if (!history_dir.empty()) {
    if (bench_name.empty()) {
      std::fprintf(stderr,
                   "--history-dir: this binary does not name its sweep; "
                   "no snapshot written\n");
      return;
    }
    const std::string tag = history_tag.empty() ? history_tag_now() : history_tag;
    const std::string path =
        write_history_snapshot(result, history_dir, bench_name, tag);
    if (progress) std::fprintf(stderr, "sweep: history snapshot -> %s\n", path.c_str());
  }
}

}  // namespace paratick::core
