// Deterministic sweep pipeline: plan -> execute -> merge.
//
// Every table and figure of the paper is an A/B sweep over tick modes,
// tick frequencies, vCPU counts, overcommit ratios and seed replicas.
// The pipeline is split into three decoupled layers:
//
//   1. planning (core/sweep_plan.hpp): pure expansion of the grid into
//      (cell, run_index, seed) work items, sliceable into shards;
//   2. execution (core/exec_backend.hpp): pluggable backends — in-process
//      thread pool, forked child processes with hard crash isolation, and
//      a shard slicer for multi-host runs;
//   3. merge (core/sweep_shard.hpp + aggregate_sweep_runs below): fold
//      executed runs — local or loaded from partial snapshots written by
//      other hosts — into per-cell summaries via Accumulator::merge.
//
// SweepRunner wires the three together behind the same API the benches
// always used.
//
// Determinism guarantee: each run's seed is a pure function of
// (root_seed, run_index) — derived with a splitmix64 jump, never from the
// schedule — and aggregation happens in run-index order after all runs
// finish. Results are therefore bit-identical for any `-j` value, any
// backend, and any shard split.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "metrics/run_metrics.hpp"
#include "sim/parallel/parallel_engine.hpp"
#include "sim/stats.hpp"

namespace paratick::core {

/// Resolve a sweep file output against an output directory: relative
/// paths land under it instead of whatever CWD the (possibly forked /
/// sharded) process happens to have. Absolute paths pass through.
[[nodiscard]] std::string resolve_output_path(const std::string& output_dir,
                                              const std::string& path);

/// Which execution substrate runs the planned work items.
enum class BackendKind : std::uint8_t {
  kThread,  // in-process worker pool (crash isolation via try/catch only)
  kFork,    // one forked child per run: survives segfaults and abort()
};

[[nodiscard]] const char* to_string(BackendKind kind);
/// "thread" / "fork" -> kind; PARATICK_CHECKs on anything else.
[[nodiscard]] BackendKind backend_from_string(const std::string& name);

/// One host's slice of the run-index space: shard k of N executes the
/// indices with `run_index % count == index` (round-robin keeps replica
/// load balanced across hosts whatever the grid shape). count == 1 means
/// "the whole sweep".
struct ShardSpec {
  unsigned index = 0;
  unsigned count = 1;

  [[nodiscard]] bool active() const { return count > 1; }
  [[nodiscard]] bool owns(std::size_t run_index) const {
    return count <= 1 || run_index % count == index;
  }
  [[nodiscard]] std::string label() const;  // "K/N"
  /// Parse "K/N" with 0 <= K < N. PARATICK_CHECKs on malformed input.
  [[nodiscard]] static ShardSpec parse(const std::string& text);
};

/// A named point on the workload axis of a sweep: mutates the base
/// ExperimentSpec (install a different workload, resize the machine, ...).
struct SweepVariant {
  std::string name;
  std::function<void(ExperimentSpec&)> apply;  // null = base spec as-is
};

/// The sweep grid. Empty numeric axes inherit the base spec's value, so a
/// config with only `modes` set is a plain A/B comparison. The full grid is
/// variants x modes x tick_freqs_hz x vcpu_counts x overcommit x repeat.
struct SweepConfig {
  ExperimentSpec base;
  std::vector<SweepVariant> variants;    // default: one unnamed variant
  std::vector<guest::TickMode> modes = {guest::TickMode::kDynticksIdle,
                                        guest::TickMode::kParatick};
  std::vector<double> tick_freqs_hz;     // empty: inherit base
  std::vector<int> vcpu_counts;          // empty: inherit base (machine untouched)
  /// vCPU:pCPU ratios; the machine is resized to ceil(total_vcpus / ratio)
  /// single-socket pCPUs and the host switches to shared scheduling when
  /// ratio > 1. Empty: inherit the base machine.
  std::vector<double> overcommit;
  int repeat = 1;                        // seed replicas per cell
  std::uint64_t root_seed = 1;
  unsigned threads = 0;                  // 0 = hardware_concurrency
  /// Worker threads INSIDE each partitioned run's sim::ParallelEngine
  /// (--engine-threads N) — orthogonal to `threads`, which fans runs out
  /// across the grid. Only scenarios built on the parallel engine read
  /// it; results are bit-identical for any value (that is the parallel
  /// engine's contract, and what the CI smoke job compares). 1 = drive
  /// every partition inline, 0 = hardware_concurrency.
  unsigned engine_threads = 1;
  /// Parallel-engine window-bound derivation (--lookahead-mode). Results
  /// are bit-identical either way; only the window counters in the
  /// parallel profile differ (kTopology runs fewer barriers).
  sim::LookaheadMode lookahead_mode = sim::LookaheadMode::kGlobal;
  /// kTopology horizon cap in global quanta (0 = unbounded).
  std::uint64_t max_horizon_windows = 64;
  bool progress = false;                 // per-run timing lines on stderr

  /// Execution backend (--backend thread|fork). Results are bit-identical
  /// either way; fork additionally survives children that segfault or
  /// abort() — such replicas are recorded as failed instead of taking the
  /// sweep down.
  BackendKind backend = BackendKind::kThread;
  /// Fork backend only: runs per forked child (--fork-batch N). Children
  /// stream one record per completed run, so results and replay bundles
  /// are unchanged; only crash-isolation granularity grows with N. 0 =
  /// auto-size from the plan length (a few batches per worker).
  std::size_t fork_batch = 0;
  /// Multi-host sharding (--shard K/N): execute only this host's slice of
  /// the run-index space. Foreign runs stay unexecuted; export the partial
  /// snapshot (partial_path) and fold the shards with sweep_merge.
  ShardSpec shard;
  /// Shard mode: where to write the mergeable partial snapshot (JSON).
  std::string partial_path;
  /// Base directory for the sweep's file outputs: relative failure_dir
  /// and partial_path resolve against it (not the CWD), so forked or
  /// sharded children never scatter artifacts. Empty = CWD as before.
  std::string output_dir;

  /// Chaos injection: applied to every run when any rate is nonzero. The
  /// per-run fault plan seed is derived purely from (root_seed, run_index),
  /// so chaos sweeps stay bit-identical at any -j.
  fault::FaultConfig fault;
  /// Run the invariant watchdog inside every run (see SystemSpec).
  bool watchdog = false;
  sim::SimTime watchdog_timer_grace = sim::SimTime::ms(5);
  /// Directory for replay bundles of failed runs; empty = don't write.
  std::string failure_dir;
  /// Fail fast: after this many failed runs, remaining runs are skipped
  /// (recorded as kSkipped). 0 = run everything. Which runs get skipped
  /// depends on scheduling, so fail-fast sweeps are NOT -j-bit-identical.
  std::size_t max_failures = 0;
  /// Per-run wall-clock timeout in seconds; > 0 makes hung runs fail with
  /// kTimeout. Wall-clock dependent, so timed-out runs are not replayable
  /// to the same event.
  double run_timeout_sec = 0.0;
  /// Identity stamped into replay bundles so bench_replay can rebuild the
  /// sweep: the bench name and (for registered chaos scenarios) the
  /// scenario name. See core/scenarios.hpp.
  std::string bench_name;
  std::string scenario;

  /// Record a full event trace of every run (core/record_replay): one
  /// compact record per executed engine event. Traces of failed runs are
  /// written next to their replay bundles as
  /// <failure_dir>/<bench>/run<idx>.trace and referenced from the bundle,
  /// so bench_replay can verify a reproduction event-by-event and bisect
  /// the first divergence. Recording is observational — results and
  /// exports stay byte-identical to an unrecorded sweep.
  bool record_trace = false;
  /// Pre-size for per-run trace buffers (events per run); 0 = a sane
  /// default. Feed it EngineProfile::events_executed from a prior run.
  std::uint64_t trace_reserve_events = 0;
  /// Attach an external engine observer to every run (replay checking).
  /// Single-run use only (execute_run): parallel backends would share it
  /// across concurrent engines. Ignored when record_trace is set.
  sim::EventObserver* observer = nullptr;
};

/// Identity of one grid cell (everything except the replica axis).
struct SweepCellKey {
  std::string variant;
  guest::TickMode mode = guest::TickMode::kDynticksIdle;
  double tick_freq_hz = 0.0;
  int vcpus = 0;
  double overcommit = 0.0;

  [[nodiscard]] std::string label() const;
};

/// Why a run produced no result (crash-isolated failure record).
struct RunFailure {
  enum class Kind : std::uint8_t {
    kCheck,      // PARATICK_CHECK invariant failed (SimError)
    kWatchdog,   // watchdog invariant breach (SimError)
    kTimeout,    // per-run wall-clock budget exceeded (SimError)
    kException,  // any other std::exception
    kSkipped,    // not executed: the --max-failures budget was spent
    kCrash,      // forked child died on a signal (segfault, abort, ...)
    kDivergence, // a replayed run stopped matching its recorded trace
  };
  Kind kind = Kind::kException;
  std::string expr;     // failing expression / watchdog check name
  std::string file;
  int line = 0;
  std::string message;
  std::int64_t sim_time_ns = -1;  // -1 = thrown outside engine context
  std::uint64_t events_executed = 0;

  [[nodiscard]] static const char* kind_name(Kind k);
};

/// One simulation run (cell x replica).
struct SweepRun {
  std::size_t cell = 0;  // index into SweepResult::cells
  std::size_t run_index = 0;
  int replica = 0;
  std::uint64_t seed = 0;
  /// False for runs a sharded sweep left to other hosts; such slots carry
  /// only their identity and are skipped by aggregation and exports.
  bool executed = false;
  bool ok = false;
  metrics::RunResult result;             // valid only when executed && ok
  std::optional<RunFailure> failure;     // set when executed && !ok
  std::string bundle_path;               // replay bundle, when one was written
  std::string trace_path;                // event trace, when one was written
  double host_seconds = 0.0;  // wall-clock cost of this run
};

/// Replica-aggregated view of one cell. Scalar metrics go through one
/// Accumulator per metric; per-run wakeup-latency accumulators are merged
/// across replicas and VMs with Accumulator::merge.
struct SweepCellSummary {
  SweepCellKey key;
  sim::Accumulator exits_total;
  sim::Accumulator exits_timer;
  sim::Accumulator busy_cycles;
  sim::Accumulator exec_time_ms;  // only runs whose workload completed
  sim::Accumulator wakeup_latency_us;
  // Engine self-profile, deterministic counters only (see EngineProfile):
  // exported to JSON history snapshots so regressions in the DES hot path
  // (a capture spilling to the heap, queue occupancy blow-ups) gate in CI.
  sim::Accumulator events_executed;
  sim::Accumulator cb_spills;
  sim::Accumulator cb_spill_bytes;
  sim::Accumulator slot_high_water;
  sim::Accumulator compactions;
  // Parallel-engine window counters (metrics::RunResult::par_*), all-zero
  // for single-engine scenarios. Deterministic at any engine-thread count
  // for a FIXED lookahead mode, but mode-DEPENDENT — to_json() exports
  // them only for cells that actually ran the partitioned engine, so
  // single-engine sweep snapshots (and their committed bench baselines)
  // are byte-for-byte unchanged.
  sim::Accumulator par_windows;
  sim::Accumulator par_windows_skipped;
  sim::Accumulator par_barriers_elided;
  sim::Accumulator par_horizon_max_ns;
  /// Hypervisor-side steal time summed over a run's VMs, in milliseconds
  /// (runnable-but-not-running plus injected vmentry steal bursts).
  sim::Accumulator steal_ms;
  /// Guest steal-estimator error vs hv ground truth, in milliseconds
  /// (estimate - truth, summed over the run's estimator-enabled VMs).
  /// Empty unless the scenario arms the estimator (GuestConfig::steal).
  sim::Accumulator steal_est_err_ms;
  /// Wake-to-run latency distribution merged over surviving replicas and
  /// VMs — the tail the bench_diff KS gate compares.
  sim::LogHistogram wake_hist_us;
  metrics::RunResult first;  // first surviving replica, for drill-down
  /// Crash isolation: replicas that failed / timed out (subset of failed)
  /// / were skipped by --max-failures. Aggregates cover survivors only.
  std::uint64_t replicas_failed = 0;
  std::uint64_t replicas_timed_out = 0;
  std::uint64_t replicas_skipped = 0;

  [[nodiscard]] bool degraded() const { return replicas_failed > 0; }
};

struct SweepResult {
  std::vector<SweepCellSummary> cells;  // grid order (deterministic)
  std::vector<SweepRun> runs;           // run-index order (deterministic)
  double wall_seconds = 0.0;
  unsigned threads_used = 1;
  std::string backend_name = "thread";  // which ExecBackend ran the sweep
  ShardSpec shard;                      // active when this is a partial result

  /// Runs actually executed here (== runs.size() unless sharded).
  [[nodiscard]] std::size_t executed_run_count() const;

  /// First cell matching variant + mode (for single-freq/vcpu sweeps).
  [[nodiscard]] const SweepCellSummary* find(const std::string& variant,
                                             guest::TickMode mode) const;

  /// Runs that failed (excluding --max-failures skips), run-index order.
  [[nodiscard]] std::vector<const SweepRun*> failed_runs() const;
  [[nodiscard]] std::size_t ok_run_count() const;
  /// Cells with at least one failed replica.
  [[nodiscard]] std::size_t degraded_cell_count() const;

  [[nodiscard]] std::size_t index_of(const SweepCellSummary& cell) const {
    return static_cast<std::size_t>(&cell - cells.data());
  }

  /// Replica statistics for a metric SweepCellSummary does not
  /// pre-aggregate: fold one scalar per run of `cell` (run-index order,
  /// so the result is deterministic for any thread count).
  template <typename F>
  [[nodiscard]] sim::Accumulator metric_over_runs(std::size_t cell, F&& f) const {
    sim::Accumulator acc;
    for (const auto& r : runs) {
      if (r.executed && r.cell == cell) acc.add(static_cast<double>(f(r.result)));
    }
    return acc;
  }

  /// Merge a per-run mergeable (Accumulator, LogHistogram) across the
  /// replicas of `cell`, in run-index order.
  template <typename F>
  [[nodiscard]] auto merged_over_runs(std::size_t cell, F&& f) const {
    std::decay_t<decltype(f(runs.front().result))> out{};
    for (const auto& r : runs) {
      if (r.executed && r.cell == cell) out.merge(f(r.result));
    }
    return out;
  }

  /// Paper-style comparison between two cells' replica means.
  [[nodiscard]] static metrics::Comparison compare_cells(
      const SweepCellSummary& baseline, const SweepCellSummary& treatment);
  [[nodiscard]] metrics::Comparison compare(const std::string& variant,
                                            guest::TickMode baseline,
                                            guest::TickMode treatment) const;

  /// One row per cell: key columns + mean/stddev of each metric. Both
  /// exports are pure functions of the cells, so thread/fork backends and
  /// shard-merged results produce byte-identical files.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;
  void write_csv(const std::string& path) const;
  void write_json(const std::string& path) const;
};

/// The merge layer's core: fold res.runs into res.cells, strictly in
/// run-index order. res.cells must already carry their keys with all
/// aggregates empty. Used identically by SweepRunner::run() after local
/// execution and by merge_partial_snapshots() on shard outputs — one code
/// path is what makes merged results bit-identical to single-host runs.
void aggregate_sweep_runs(SweepResult& res);

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig cfg);

  [[nodiscard]] std::size_t cell_count() const;
  [[nodiscard]] std::size_t total_runs() const;

  /// Plan the grid, execute it on the configured backend (this host's
  /// shard only when cfg.shard is active, writing the partial snapshot to
  /// cfg.partial_path), and aggregate. Reusable.
  [[nodiscard]] SweepResult run() const;

  /// Execute exactly one run of the grid by index — the replay primitive:
  /// seeds, fault plan and cell spec are all pure in (config, run_index),
  /// so this reproduces what the full sweep did for that index.
  [[nodiscard]] SweepRun execute_run(std::size_t run_index) const;

 private:
  SweepConfig cfg_;
};

/// Shared CLI for the sweep-driven bench/example binaries:
///   -j N | -jN        worker threads (default: hardware_concurrency)
///   --engine-threads N  threads inside each run's parallel engine
///                     (partitioned scenarios only; orthogonal to -j,
///                     results bit-identical for any N; default 1)
///   --lookahead-mode M  parallel-engine window bounds: "global" (default,
///                     one conservative window = min link latency) or
///                     "topology" (per-partition safe horizons from the
///                     declared links; identical results, fewer barriers)
///   --max-horizon-windows N  cap a topology horizon at N global quanta
///                     (default 64, 0 = unbounded)
///   --repeat N        seed replicas per cell (default 1)
///   --seed S          root seed
///   --csv             machine-readable stdout (per-bench table)
///   --sweep-csv P     write the per-cell summary grid as CSV to P
///   --sweep-json P    same as JSON
///   --history-dir D   append the JSON snapshot as D/<bench>/<tag>.json
///                     (tag defaults to the current git commit; see
///                     core/history.hpp and the bench_diff gate)
///   --history-tag T   override the snapshot tag
///   --backend B       execution backend: thread (default) or fork
///   --fork-batch N    fork backend: runs per child (default: auto-sized)
///   --profile         print the engine hot-path profile (events/sec,
///                     callback spills, slot high-water, compactions)
///   --shard K/N       execute only shard K of N (with --partial)
///   --partial P       shard mode: write the mergeable partial snapshot to P
///   --merge P         (repeatable) skip execution; merge partial snapshots
///                     instead and render/export the merged result
///   --output-dir D    resolve relative failure/partial paths against D
///   --quiet           suppress per-run progress lines
///   --chaos           enable the default chaos fault mix + watchdog
///   --watchdog        enable only the invariant watchdog
///   --failure-dir P   write replay bundles for failed runs under P
///   --record-trace    record a full event trace per run; failed runs'
///                     traces land next to their replay bundles (see
///                     core/record_replay and bench_replay --bisect)
///   --max-failures N  fail fast after N failed runs
///   --run-timeout S   per-run wall-clock timeout in seconds
///   --fault-<knob> X  override one fault rate (see chaos docs), e.g.
///                     --fault-timer-drop 0.02 --fault-steal 0.05
/// Distributed dispatch (core/dispatch, see DESIGN.md):
///   --dispatch        supervise the sweep through the fault-tolerant
///                     dispatcher instead of a local backend: worker
///                     subprocesses with lease-based slice ownership,
///                     crash retry with backoff, work stealing, and
///                     graceful degradation after --max-retries
///   --workers N       dispatcher worker slots (default 2)
///   --max-retries N   failed attempts allowed per run before its cell
///                     degrades (default 2); the sweep still exits 0
///   --steal / --no-steal  work stealing on idle slots (default on)
///   --lease S         kill workers silent for S seconds (default 30)
///   --retry-backoff S base of the exponential retry backoff (default .25)
///   --heartbeat S     worker heartbeat period (default 0.5)
///   --dispatch-cmd T  launch workers through a shell template instead of
///                     fork(): T with "{cmd}" replaced by the quoted
///                     worker command, e.g. "ssh -T host2 {cmd}"
///   --checkpoint P    crash-safe dispatcher progress snapshot: written
///                     atomically as records arrive, resumed from on
///                     restart (only missing runs re-execute)
///   --skip-corrupt    --merge: drop unreadable partial snapshots and
///                     degrade their cells instead of aborting the merge
/// Hidden (appended by the dispatcher when relaunching this binary):
///   --worker-slice SPEC   execute run indices "0-5,9" as a protocol
///                         worker (streams records on stdout, exits)
///   --worker-plan         print the #plan identity header and exit
///   --dispatch-test-kill N  test hook: SIGKILL the worker that delivered
///                         the Nth record
/// Unrecognized arguments are collected as positionals.
struct SweepCli {
  unsigned threads = 0;
  unsigned engine_threads = 1;
  sim::LookaheadMode lookahead_mode = sim::LookaheadMode::kGlobal;
  std::uint64_t max_horizon_windows = 64;
  int repeat = 1;
  std::optional<std::uint64_t> root_seed;
  bool csv = false;
  bool progress = true;
  std::string sweep_csv;
  std::string sweep_json;
  std::string history_dir;
  std::string history_tag;
  BackendKind backend = BackendKind::kThread;
  std::size_t fork_batch = 0;
  bool profile = false;
  ShardSpec shard;
  std::string partial_path;
  std::vector<std::string> merge_paths;
  std::string output_dir;
  bool chaos = false;
  bool watchdog = false;
  std::string failure_dir;
  bool record_trace = false;
  std::size_t max_failures = 0;
  double run_timeout_sec = 0.0;
  /// (--fault-<knob>, value) pairs in CLI order; applied over --chaos
  /// defaults so individual rates can be overridden.
  std::vector<std::pair<std::string, double>> fault_overrides;
  // Distributed dispatch (core/dispatch).
  bool dispatch = false;
  unsigned dispatch_workers = 2;
  std::size_t max_retries = 2;
  bool steal = true;
  double lease_sec = 30.0;
  double retry_backoff_sec = 0.25;
  double heartbeat_sec = 0.5;
  std::string dispatch_cmd;        // worker launch template; "" = fork()
  std::string checkpoint_path;
  std::size_t dispatch_test_kill = 0;
  bool skip_corrupt = false;
  std::string worker_slice;        // hidden worker mode (run these indices)
  bool worker_plan = false;        // hidden worker mode (print plan header)
  /// The full argv this CLI was parsed from: what a command transport
  /// relaunches (with the hidden worker flags appended) on other hosts.
  std::vector<std::string> raw_args;
  std::vector<std::string> positional;

  [[nodiscard]] static SweepCli parse(int argc, char** argv);

  /// Copy the flags onto a config (root_seed only if given on the CLI).
  void apply(SweepConfig& cfg) const;

  /// The one-call driver entry point: with --merge, load and fold the
  /// named partial snapshots (validated against cfg's grid identity);
  /// otherwise plan + execute cfg on its backend. Either way the returned
  /// result feeds the bench's normal table rendering and exports.
  [[nodiscard]] SweepResult run_sweep(SweepConfig cfg) const;

  /// The --merge branch of run_sweep, throwing sim::SimError on invalid
  /// or mismatched partials (run_sweep turns that into a clean CLI exit;
  /// tests call this directly to assert on the error).
  [[nodiscard]] SweepResult merge_as_configured(SweepConfig cfg) const;

  /// Honor --sweep-csv/--sweep-json/--history-dir if present. The bench
  /// name becomes the history subdirectory; benches that never pass one
  /// keep the flag inert (a warning is printed if it was requested).
  void export_results(const SweepResult& result,
                      const std::string& bench_name = {}) const;
};

}  // namespace paratick::core
