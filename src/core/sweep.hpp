// Deterministic parallel sweep runner.
//
// Every table and figure of the paper is an A/B sweep over tick modes,
// tick frequencies, vCPU counts, overcommit ratios and seed replicas.
// SweepRunner expands such a grid into independent simulation runs,
// executes them on a worker pool, and folds the results into per-cell
// summaries via Accumulator::merge.
//
// Determinism guarantee: each run's seed is a pure function of
// (root_seed, run_index) — derived with a splitmix64 jump, never from the
// schedule — and aggregation happens in run-index order after all runs
// finish. Results are therefore bit-identical for any `-j` value.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "metrics/run_metrics.hpp"
#include "sim/stats.hpp"

namespace paratick::core {

/// A named point on the workload axis of a sweep: mutates the base
/// ExperimentSpec (install a different workload, resize the machine, ...).
struct SweepVariant {
  std::string name;
  std::function<void(ExperimentSpec&)> apply;  // null = base spec as-is
};

/// The sweep grid. Empty numeric axes inherit the base spec's value, so a
/// config with only `modes` set is a plain A/B comparison. The full grid is
/// variants x modes x tick_freqs_hz x vcpu_counts x overcommit x repeat.
struct SweepConfig {
  ExperimentSpec base;
  std::vector<SweepVariant> variants;    // default: one unnamed variant
  std::vector<guest::TickMode> modes = {guest::TickMode::kDynticksIdle,
                                        guest::TickMode::kParatick};
  std::vector<double> tick_freqs_hz;     // empty: inherit base
  std::vector<int> vcpu_counts;          // empty: inherit base (machine untouched)
  /// vCPU:pCPU ratios; the machine is resized to ceil(total_vcpus / ratio)
  /// single-socket pCPUs and the host switches to shared scheduling when
  /// ratio > 1. Empty: inherit the base machine.
  std::vector<double> overcommit;
  int repeat = 1;                        // seed replicas per cell
  std::uint64_t root_seed = 1;
  unsigned threads = 0;                  // 0 = hardware_concurrency
  bool progress = false;                 // per-run timing lines on stderr
};

/// Identity of one grid cell (everything except the replica axis).
struct SweepCellKey {
  std::string variant;
  guest::TickMode mode = guest::TickMode::kDynticksIdle;
  double tick_freq_hz = 0.0;
  int vcpus = 0;
  double overcommit = 0.0;

  [[nodiscard]] std::string label() const;
};

/// One simulation run (cell x replica).
struct SweepRun {
  std::size_t cell = 0;  // index into SweepResult::cells
  int replica = 0;
  std::uint64_t seed = 0;
  metrics::RunResult result;
  double host_seconds = 0.0;  // wall-clock cost of this run
};

/// Replica-aggregated view of one cell. Scalar metrics go through one
/// Accumulator per metric; per-run wakeup-latency accumulators are merged
/// across replicas and VMs with Accumulator::merge.
struct SweepCellSummary {
  SweepCellKey key;
  sim::Accumulator exits_total;
  sim::Accumulator exits_timer;
  sim::Accumulator busy_cycles;
  sim::Accumulator exec_time_ms;  // only runs whose workload completed
  sim::Accumulator wakeup_latency_us;
  metrics::RunResult first;  // replica 0's full result, for detail drill-down
};

struct SweepResult {
  std::vector<SweepCellSummary> cells;  // grid order (deterministic)
  std::vector<SweepRun> runs;           // run-index order (deterministic)
  double wall_seconds = 0.0;
  unsigned threads_used = 1;

  /// First cell matching variant + mode (for single-freq/vcpu sweeps).
  [[nodiscard]] const SweepCellSummary* find(const std::string& variant,
                                             guest::TickMode mode) const;

  [[nodiscard]] std::size_t index_of(const SweepCellSummary& cell) const {
    return static_cast<std::size_t>(&cell - cells.data());
  }

  /// Replica statistics for a metric SweepCellSummary does not
  /// pre-aggregate: fold one scalar per run of `cell` (run-index order,
  /// so the result is deterministic for any thread count).
  template <typename F>
  [[nodiscard]] sim::Accumulator metric_over_runs(std::size_t cell, F&& f) const {
    sim::Accumulator acc;
    for (const auto& r : runs) {
      if (r.cell == cell) acc.add(static_cast<double>(f(r.result)));
    }
    return acc;
  }

  /// Merge a per-run mergeable (Accumulator, LogHistogram) across the
  /// replicas of `cell`, in run-index order.
  template <typename F>
  [[nodiscard]] auto merged_over_runs(std::size_t cell, F&& f) const {
    std::decay_t<decltype(f(runs.front().result))> out{};
    for (const auto& r : runs) {
      if (r.cell == cell) out.merge(f(r.result));
    }
    return out;
  }

  /// Paper-style comparison between two cells' replica means.
  [[nodiscard]] static metrics::Comparison compare_cells(
      const SweepCellSummary& baseline, const SweepCellSummary& treatment);
  [[nodiscard]] metrics::Comparison compare(const std::string& variant,
                                            guest::TickMode baseline,
                                            guest::TickMode treatment) const;

  /// One row per cell: key columns + mean/stddev of each metric.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;
  void write_csv(const std::string& path) const;
  void write_json(const std::string& path) const;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig cfg);

  [[nodiscard]] std::size_t cell_count() const;
  [[nodiscard]] std::size_t total_runs() const;

  /// Expand the grid, execute every run on the pool, aggregate. Reusable.
  [[nodiscard]] SweepResult run() const;

 private:
  SweepConfig cfg_;
};

/// Shared CLI for the sweep-driven bench/example binaries:
///   -j N | -jN        worker threads (default: hardware_concurrency)
///   --repeat N        seed replicas per cell (default 1)
///   --seed S          root seed
///   --csv             machine-readable stdout (per-bench table)
///   --sweep-csv P     write the per-cell summary grid as CSV to P
///   --sweep-json P    same as JSON
///   --history-dir D   append the JSON snapshot as D/<bench>/<tag>.json
///                     (tag defaults to the current git commit; see
///                     core/history.hpp and the bench_diff gate)
///   --history-tag T   override the snapshot tag
///   --quiet           suppress per-run progress lines
/// Unrecognized arguments are collected as positionals.
struct SweepCli {
  unsigned threads = 0;
  int repeat = 1;
  std::optional<std::uint64_t> root_seed;
  bool csv = false;
  bool progress = true;
  std::string sweep_csv;
  std::string sweep_json;
  std::string history_dir;
  std::string history_tag;
  std::vector<std::string> positional;

  [[nodiscard]] static SweepCli parse(int argc, char** argv);

  /// Copy the flags onto a config (root_seed only if given on the CLI).
  void apply(SweepConfig& cfg) const;

  /// Honor --sweep-csv/--sweep-json/--history-dir if present. The bench
  /// name becomes the history subdirectory; benches that never pass one
  /// keep the flag inert (a warning is printed if it was requested).
  void export_results(const SweepResult& result,
                      const std::string& bench_name = {}) const;
};

}  // namespace paratick::core
