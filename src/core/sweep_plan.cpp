#include "core/sweep_plan.hpp"

#include <cmath>
#include <utility>

#include "core/record_replay/record_replay.hpp"
#include "metrics/report.hpp"
#include "sim/check.hpp"
#include "sim/error.hpp"

namespace paratick::core {

namespace {

int effective_copies(const ExperimentSpec& exp) {
  return exp.scenario.effective_copies();
}

/// Materialize the ExperimentSpec for one cell: variant first, then the
/// numeric axes override whatever the variant left in place.
ExperimentSpec materialize(const SweepConfig& cfg, const SweepVariant& variant,
                           bool freq_axis, double freq_hz, bool vcpu_axis,
                           int vcpus, bool oc_axis, double overcommit) {
  ExperimentSpec spec = cfg.base;
  if (variant.apply) variant.apply(spec);
  if (freq_axis) spec.guest_tick_freq = sim::Frequency{freq_hz};
  if (vcpu_axis) spec.vcpus = vcpus;
  if (oc_axis) {
    PARATICK_CHECK_MSG(overcommit > 0.0, "overcommit ratio must be > 0");
    const double total =
        static_cast<double>(spec.vcpus) * effective_copies(spec);
    const auto pcpus = static_cast<std::uint32_t>(
        std::max<long long>(1, std::llround(total / overcommit)));
    spec.machine = hw::MachineSpec::small(pcpus);
  }
  return spec;
}

}  // namespace

SweepPlan SweepPlan::make(SweepConfig cfg) {
  PARATICK_CHECK_MSG(cfg.repeat >= 1, "sweep repeat must be >= 1");
  SweepPlan plan;
  Grid& g = plan.grid_;
  g.variants = cfg.variants.empty()
                   ? std::vector<SweepVariant>{{std::string{}, nullptr}}
                   : cfg.variants;
  g.modes = cfg.modes;
  PARATICK_CHECK_MSG(!g.modes.empty(), "sweep needs at least one tick mode");
  g.freq_axis = !cfg.tick_freqs_hz.empty();
  g.vcpu_axis = !cfg.vcpu_counts.empty();
  g.oc_axis = !cfg.overcommit.empty();
  g.freqs = g.freq_axis ? cfg.tick_freqs_hz
                        : std::vector<double>{cfg.base.guest_tick_freq.hertz()};
  g.vcpus = g.vcpu_axis ? cfg.vcpu_counts : std::vector<int>{cfg.base.vcpus};
  g.overcommit = g.oc_axis ? cfg.overcommit : std::vector<double>{0.0};
  if (cfg.shard.count == 0) cfg.shard.count = 1;
  PARATICK_CHECK_MSG(cfg.shard.index < cfg.shard.count,
                     "shard index must be < shard count");
  plan.cfg_ = std::move(cfg);

  // Cell expansion order is the public contract: variants, then modes, then
  // tick freqs, then vcpus, then overcommit, innermost last.
  for (const auto& variant : g.variants) {
    for (const auto mode : g.modes) {
      for (const double freq : g.freqs) {
        for (const int vc : g.vcpus) {
          for (const double oc : g.overcommit) {
            const ExperimentSpec spec =
                materialize(plan.cfg_, variant, g.freq_axis, freq, g.vcpu_axis,
                            vc, g.oc_axis, oc);
            SweepCellKey key;
            key.variant = variant.name;
            key.mode = mode;
            key.tick_freq_hz = spec.guest_tick_freq.hertz();
            key.vcpus = spec.vcpus;
            key.overcommit = static_cast<double>(spec.vcpus) *
                             effective_copies(spec) /
                             spec.machine.total_cpus();
            plan.keys_.push_back(std::move(key));
          }
        }
      }
    }
  }
  return plan;
}

SweepWorkItem SweepPlan::item(std::size_t run_index) const {
  PARATICK_CHECK_MSG(run_index < total_runs(), "work item index out of range");
  const auto repeat = static_cast<std::size_t>(cfg_.repeat);
  SweepWorkItem w;
  w.run_index = run_index;
  w.cell = run_index / repeat;
  w.replica = static_cast<int>(run_index % repeat);
  w.seed = derive_seed(cfg_.root_seed, run_index);
  return w;
}

std::vector<std::size_t> SweepPlan::shard_indices(const ShardSpec& shard) const {
  std::vector<std::size_t> out;
  const std::size_t n = total_runs();
  out.reserve(shard.active() ? n / shard.count + 1 : n);
  for (std::size_t i = 0; i < n; ++i) {
    if (shard.owns(i)) out.push_back(i);
  }
  return out;
}

ExperimentSpec SweepPlan::spec_for_cell(std::size_t cell) const {
  const Grid& g = grid_;
  // Decompose the cell index along the axes, innermost (overcommit) first —
  // must match the nested-loop expansion order in make().
  std::size_t c = cell;
  const std::size_t oc_i = c % g.overcommit.size();
  c /= g.overcommit.size();
  const std::size_t vc_i = c % g.vcpus.size();
  c /= g.vcpus.size();
  const std::size_t f_i = c % g.freqs.size();
  c /= g.freqs.size();
  c /= g.modes.size();  // mode does not shape the spec, only the policy
  return materialize(cfg_, g.variants[c], g.freq_axis, g.freqs[f_i],
                     g.vcpu_axis, g.vcpus[vc_i], g.oc_axis, g.overcommit[oc_i]);
}

SweepRun SweepPlan::execute(std::size_t run_index) const {
  const SweepWorkItem w = item(run_index);
  SweepRun out;
  out.run_index = w.run_index;
  out.cell = w.cell;
  out.replica = w.replica;
  out.seed = w.seed;
  out.executed = true;

  const std::size_t mode_i =
      out.cell / grid_.overcommit.size() / grid_.vcpus.size() /
      grid_.freqs.size() % grid_.modes.size();

  ExperimentSpec spec = spec_for_cell(out.cell);
  // Seeds depend only on (root_seed, run index): bit-identical results
  // for any thread count, schedule, backend or shard split.
  spec.guest_seed = w.seed;
  spec.host.seed = derive_seed(w.seed, 0x686f7374);  // independent host stream
  if (cfg_.fault.any()) spec.fault = cfg_.fault;
  spec.fault_seed = derive_seed(w.seed, 0x6661756c);  // independent fault plan
  if (cfg_.watchdog) {
    spec.watchdog = true;
    spec.watchdog_timer_grace = cfg_.watchdog_timer_grace;
  }
  if (cfg_.run_timeout_sec > 0.0) spec.wall_limit_sec = cfg_.run_timeout_sec;

  // Trace recording hooks the run's own engine, so every backend — thread
  // pool and forked children alike — produces its trace in-process; forked
  // children write the file themselves and ship the path over the pipe.
  record_replay::TraceRecorder recorder(cfg_.trace_reserve_events);
  if (cfg_.record_trace) {
    spec.observer = &recorder;
  } else if (cfg_.observer != nullptr) {
    spec.observer = cfg_.observer;
  }

  try {
    out.result = run_mode(spec, grid_.modes[mode_i]);
    out.ok = true;
  } catch (const sim::SimError& e) {
    out.ok = false;
    RunFailure f;
    switch (e.kind()) {
      case sim::SimError::Kind::kCheck: f.kind = RunFailure::Kind::kCheck; break;
      case sim::SimError::Kind::kWatchdog: f.kind = RunFailure::Kind::kWatchdog; break;
      case sim::SimError::Kind::kTimeout: f.kind = RunFailure::Kind::kTimeout; break;
      case sim::SimError::Kind::kDivergence: f.kind = RunFailure::Kind::kDivergence; break;
    }
    f.expr = e.expr();
    f.file = e.file();
    f.line = e.line();
    f.message = e.msg();
    if (e.sim_time()) f.sim_time_ns = e.sim_time()->nanoseconds();
    f.events_executed = e.events_executed();
    out.failure = std::move(f);
  } catch (const std::exception& e) {
    out.ok = false;
    RunFailure f;
    f.kind = RunFailure::Kind::kException;
    f.message = e.what();
    out.failure = std::move(f);
  }

  // Persist failed runs' traces next to where their replay bundles go:
  // <failure_dir>/<bench>/run<idx>.trace. Written here (not by the parent
  // sweep loop) so crash-isolated forked children produce them too.
  if (cfg_.record_trace && !out.ok && !cfg_.failure_dir.empty()) {
    const std::string dir =
        resolve_output_path(cfg_.output_dir, cfg_.failure_dir);
    const std::string name = cfg_.bench_name.empty() ? "sweep" : cfg_.bench_name;
    out.trace_path = record_replay::write_trace_file(
        recorder.trace(),
        dir + "/" + name +
            metrics::format("/run%llu.trace",
                            static_cast<unsigned long long>(out.run_index)));
  }
  return out;
}

std::vector<SweepCellSummary> SweepPlan::make_cells() const {
  std::vector<SweepCellSummary> cells;
  cells.reserve(keys_.size());
  for (const SweepCellKey& key : keys_) {
    SweepCellSummary cell;
    cell.key = key;
    cells.push_back(std::move(cell));
  }
  return cells;
}

}  // namespace paratick::core
