// Sweep planning layer: pure expansion of a SweepConfig grid into
// (cell, run_index, seed) work items.
//
// A SweepPlan is a value — building it runs no simulation. Everything a
// run depends on (cell spec, seeds, fault plan) is a pure function of
// (config, run_index), which is what lets the same plan be executed by
// any backend (threads, forked children) or sliced across hosts with
// --shard K/N and still merge to bit-identical results.
#pragma once

#include <cstddef>
#include <vector>

#include "core/sweep.hpp"

namespace paratick::core {

/// Identity of one work item, derivable without running anything.
struct SweepWorkItem {
  std::size_t run_index = 0;
  std::size_t cell = 0;
  int replica = 0;
  std::uint64_t seed = 0;
};

class SweepPlan {
 public:
  /// Resolve the grid axes against the base spec and lay out the cells in
  /// the public expansion order: variants, modes, tick freqs, vcpus,
  /// overcommit, innermost last. PARATICK_CHECKs on empty modes/repeat<1.
  [[nodiscard]] static SweepPlan make(SweepConfig cfg);

  [[nodiscard]] const SweepConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t cell_count() const { return keys_.size(); }
  [[nodiscard]] std::size_t total_runs() const {
    return keys_.size() * static_cast<std::size_t>(cfg_.repeat);
  }
  /// Cell keys in grid order; key fields come from the materialized spec,
  /// so inherited axes still export their effective values.
  [[nodiscard]] const std::vector<SweepCellKey>& cell_keys() const { return keys_; }

  /// Identity of run `i` (pure; no simulation).
  [[nodiscard]] SweepWorkItem item(std::size_t run_index) const;

  /// The run indices a shard owns, in run-index order. An inactive shard
  /// owns everything.
  [[nodiscard]] std::vector<std::size_t> shard_indices(const ShardSpec& shard) const;

  /// Execute run `run_index` in-process with soft crash isolation: a
  /// sim::SimError or std::exception becomes a RunFailure record instead
  /// of propagating. (Hard isolation against segfaults/abort() is the
  /// fork backend's job.)
  [[nodiscard]] SweepRun execute(std::size_t run_index) const;

  /// Fresh cell summaries for this plan: keys filled, aggregates empty —
  /// the skeleton aggregate_sweep_runs() folds runs into.
  [[nodiscard]] std::vector<SweepCellSummary> make_cells() const;

 private:
  /// The per-cell slice of the grid axes, resolved against the base spec.
  struct Grid {
    std::vector<SweepVariant> variants;
    std::vector<guest::TickMode> modes;
    std::vector<double> freqs;
    std::vector<int> vcpus;
    std::vector<double> overcommit;  // single 0.0 = inherit machine
    bool freq_axis = false, vcpu_axis = false, oc_axis = false;
  };

  [[nodiscard]] ExperimentSpec spec_for_cell(std::size_t cell) const;

  SweepConfig cfg_;
  Grid grid_;
  std::vector<SweepCellKey> keys_;
};

}  // namespace paratick::core
