#include "core/sweep_shard.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "core/json.hpp"
#include "core/safe_io.hpp"
#include "metrics/report.hpp"
#include "sim/check.hpp"
#include "sim/error.hpp"

namespace paratick::core {

namespace {

// Doubles are printed with %.17g and parsed back with strtod (json.cpp),
// which round-trips every finite IEEE double exactly — the foundation of
// the byte-identical merge guarantee. u64 seeds are serialized as decimal
// strings because a JSON number would round through double; ordinary
// counters stay plain numbers (all far below 2^53).

using ull = unsigned long long;

guest::TickMode mode_from_string(const std::string& name) {
  for (const auto m :
       {guest::TickMode::kPeriodic, guest::TickMode::kDynticksIdle,
        guest::TickMode::kFullDynticks, guest::TickMode::kParatick}) {
    if (name == guest::to_string(m)) return m;
  }
  PARATICK_CHECK_MSG(false, ("unknown tick mode in snapshot: " + name).c_str());
  return guest::TickMode::kDynticksIdle;
}

std::uint64_t u64_string_field(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  PARATICK_CHECK_MSG(v != nullptr && v->type == json::Value::Type::kString,
                     "run record: missing u64 string field");
  return std::strtoull(v->str.c_str(), nullptr, 10);
}

std::uint64_t u64_field(const json::Value& obj, const char* key) {
  return static_cast<std::uint64_t>(json::num_field(obj, key));
}

void append_acc(std::string& out, const char* key, const sim::Accumulator& a) {
  const sim::Accumulator::State s = a.state();
  out += metrics::format(
      "\"%s\": {\"n\": %llu, \"mean\": %.17g, \"m2\": %.17g, \"sum\": %.17g, "
      "\"min\": %.17g, \"max\": %.17g}",
      key, static_cast<ull>(s.n), s.mean, s.m2, s.sum, s.min, s.max);
}

sim::Accumulator parse_acc(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  PARATICK_CHECK_MSG(v != nullptr && v->type == json::Value::Type::kObject,
                     "run record: missing accumulator field");
  sim::Accumulator::State s;
  s.n = u64_field(*v, "n");
  s.mean = json::num_field(*v, "mean");
  s.m2 = json::num_field(*v, "m2");
  s.sum = json::num_field(*v, "sum");
  s.min = json::num_field(*v, "min");
  s.max = json::num_field(*v, "max");
  return sim::Accumulator::from_state(s);
}

template <typename Get>
void append_u64_array(std::string& out, const char* key, std::size_t n, Get get) {
  out += metrics::format("\"%s\": [", key);
  for (std::size_t i = 0; i < n; ++i) {
    out += metrics::format("%s%llu", i == 0 ? "" : ",", static_cast<ull>(get(i)));
  }
  out += ']';
}

const json::Value& array_field(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  PARATICK_CHECK_MSG(v != nullptr && v->type == json::Value::Type::kArray,
                     "run record: missing array field");
  return *v;
}

RunFailure::Kind failure_kind_from_string(const std::string& name) {
  for (const auto k :
       {RunFailure::Kind::kCheck, RunFailure::Kind::kWatchdog,
        RunFailure::Kind::kTimeout, RunFailure::Kind::kException,
        RunFailure::Kind::kSkipped, RunFailure::Kind::kCrash,
        RunFailure::Kind::kDivergence}) {
    if (name == RunFailure::kind_name(k)) return k;
  }
  PARATICK_CHECK_MSG(false,
                     ("unknown failure kind in run record: " + name).c_str());
  return RunFailure::Kind::kException;
}

void append_vm(std::string& out, const metrics::VmResult& vm) {
  out += metrics::format("{\"exits_total\": %llu, \"exits_timer\": %llu, ",
                         static_cast<ull>(vm.exits_total),
                         static_cast<ull>(vm.exits_timer_related));
  append_u64_array(out, "exits_by_cause", hw::kExitCauseCount,
                   [&](std::size_t i) { return vm.exits_by_cause[i]; });
  if (vm.completion_time) {
    out += metrics::format(
        ", \"completion_ns\": %lld",
        static_cast<long long>(vm.completion_time->nanoseconds()));
  }
  // Policy stats in guest::TickPolicy::Stats field order.
  const auto& p = vm.policy;
  out += metrics::format(
      ", \"policy\": [%llu,%llu,%llu,%llu,%llu,%llu,%llu], ",
      static_cast<ull>(p.ticks_handled), static_cast<ull>(p.virtual_ticks),
      static_cast<ull>(p.msr_writes), static_cast<ull>(p.msr_writes_avoided),
      static_cast<ull>(p.idle_entries), static_cast<ull>(p.idle_exits),
      static_cast<ull>(p.busy_stops));
  append_acc(out, "tick_intervals_us", vm.tick_intervals_us);
  out += metrics::format(", \"task_blocks\": %llu, \"task_wakes\": %llu, ",
                         static_cast<ull>(vm.task_blocks),
                         static_cast<ull>(vm.task_wakes));
  append_acc(out, "wakeup_latency_us", vm.wakeup_latency_us);
  out += ", ";
  const auto& buckets = vm.wakeup_latency_hist_us.buckets();
  append_u64_array(out, "wake_hist_us", buckets.size(),
                   [&](std::size_t i) { return buckets[i]; });
  out += metrics::format(", \"io_errors\": %llu", static_cast<ull>(vm.io_errors));
  // Steal fields postdate the v1 record format; written only when present
  // so old partial snapshots keep parsing (find-based reads below).
  if (vm.steal_time > sim::SimTime::zero() || vm.steal_estimate) {
    out += metrics::format(", \"steal_ns\": %lld",
                           static_cast<long long>(vm.steal_time.nanoseconds()));
  }
  if (vm.steal_estimate) {
    out += metrics::format(
        ", \"steal_est_ns\": %lld",
        static_cast<long long>(vm.steal_estimate->nanoseconds()));
  }
  out += '}';
}

metrics::VmResult parse_vm(const json::Value& obj) {
  metrics::VmResult vm;
  vm.exits_total = u64_field(obj, "exits_total");
  vm.exits_timer_related = u64_field(obj, "exits_timer");
  const json::Value& causes = array_field(obj, "exits_by_cause");
  PARATICK_CHECK_MSG(causes.array.size() == hw::kExitCauseCount,
                     "run record: exit-cause count mismatch (format drift?)");
  for (std::size_t i = 0; i < hw::kExitCauseCount; ++i) {
    vm.exits_by_cause[i] = static_cast<std::uint64_t>(causes.array[i].number);
  }
  if (const json::Value* ct = obj.find("completion_ns")) {
    vm.completion_time = sim::SimTime::ns(static_cast<std::int64_t>(ct->number));
  }
  const json::Value& policy = array_field(obj, "policy");
  PARATICK_CHECK_MSG(policy.array.size() == 7,
                     "run record: policy stats count mismatch (format drift?)");
  const auto pol = [&](std::size_t i) {
    return static_cast<std::uint64_t>(policy.array[i].number);
  };
  vm.policy.ticks_handled = pol(0);
  vm.policy.virtual_ticks = pol(1);
  vm.policy.msr_writes = pol(2);
  vm.policy.msr_writes_avoided = pol(3);
  vm.policy.idle_entries = pol(4);
  vm.policy.idle_exits = pol(5);
  vm.policy.busy_stops = pol(6);
  vm.tick_intervals_us = parse_acc(obj, "tick_intervals_us");
  vm.task_blocks = u64_field(obj, "task_blocks");
  vm.task_wakes = u64_field(obj, "task_wakes");
  vm.wakeup_latency_us = parse_acc(obj, "wakeup_latency_us");
  const json::Value& hist = array_field(obj, "wake_hist_us");
  std::vector<std::uint64_t> buckets;
  buckets.reserve(hist.array.size());
  for (const auto& b : hist.array) {
    buckets.push_back(static_cast<std::uint64_t>(b.number));
  }
  vm.wakeup_latency_hist_us = sim::LogHistogram::from_buckets(std::move(buckets));
  vm.io_errors = u64_field(obj, "io_errors");
  if (const json::Value* st = obj.find("steal_ns")) {
    vm.steal_time = sim::SimTime::ns(static_cast<std::int64_t>(st->number));
  }
  if (const json::Value* se = obj.find("steal_est_ns")) {
    vm.steal_estimate = sim::SimTime::ns(static_cast<std::int64_t>(se->number));
  }
  return vm;
}

void append_result(std::string& out, const metrics::RunResult& r) {
  out += metrics::format("\"result\": {\"wall_ns\": %lld, ",
                         static_cast<long long>(r.wall.nanoseconds()));
  append_u64_array(out, "cycles", hw::kCycleCategoryCount, [&](std::size_t i) {
    return static_cast<std::uint64_t>(
        r.cycles.total(static_cast<hw::CycleCategory>(i)).count());
  });
  out += metrics::format(", \"exits_total\": %llu, \"exits_timer\": %llu, ",
                         static_cast<ull>(r.exits_total),
                         static_cast<ull>(r.exits_timer_related));
  append_u64_array(out, "exits_by_cause", hw::kExitCauseCount,
                   [&](std::size_t i) { return r.exits_by_cause[i]; });
  out += metrics::format(", \"events\": %llu, ",
                         static_cast<ull>(r.events_executed));
  // Engine self-profile in RunResult field order (wall_ns last; it is the
  // only non-deterministic element).
  out += metrics::format(
      "\"profile\": [%llu,%llu,%llu,%llu,%llu,%llu,%llu], ",
      static_cast<ull>(r.events_scheduled), static_cast<ull>(r.events_cancelled),
      static_cast<ull>(r.callback_spills),
      static_cast<ull>(r.callback_spill_bytes),
      static_cast<ull>(r.slot_high_water), static_cast<ull>(r.queue_compactions),
      static_cast<ull>(r.engine_wall_ns));
  // Parallel-engine window counters, a separate array so the "profile"
  // block keeps its exact historical length-7 shape (hard-checked by
  // parse_result). Older snapshots simply lack the key; parsing treats
  // that as all-zero.
  out += metrics::format(
      "\"parallel\": [%llu,%llu,%llu,%llu], ",
      static_cast<ull>(r.par_windows), static_cast<ull>(r.par_windows_skipped),
      static_cast<ull>(r.par_barriers_elided),
      static_cast<ull>(r.par_horizon_max_ns));
  // Fault counters in fault::FaultStats field order.
  const auto& f = r.faults;
  out += metrics::format(
      "\"faults\": [%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu], ",
      static_cast<ull>(f.timer_dropped), static_cast<ull>(f.timer_delayed),
      static_cast<ull>(f.timer_coalesced), static_cast<ull>(f.io_errors),
      static_cast<ull>(f.io_spikes), static_cast<ull>(f.steal_bursts),
      static_cast<ull>(f.ticks_delayed), static_cast<ull>(f.softirq_spurious),
      static_cast<ull>(f.softirq_dropped));
  out += "\"vms\": [";
  for (std::size_t i = 0; i < r.vms.size(); ++i) {
    if (i) out += ", ";
    append_vm(out, r.vms[i]);
  }
  out += "]}";
}

metrics::RunResult parse_result(const json::Value& obj) {
  metrics::RunResult r;
  r.wall = sim::SimTime::ns(
      static_cast<std::int64_t>(json::num_field(obj, "wall_ns")));
  const json::Value& cycles = array_field(obj, "cycles");
  PARATICK_CHECK_MSG(cycles.array.size() == hw::kCycleCategoryCount,
                     "run record: cycle category count mismatch (format drift?)");
  for (std::size_t i = 0; i < hw::kCycleCategoryCount; ++i) {
    r.cycles.charge(static_cast<hw::CycleCategory>(i),
                    sim::Cycles{static_cast<std::int64_t>(cycles.array[i].number)});
  }
  r.exits_total = u64_field(obj, "exits_total");
  r.exits_timer_related = u64_field(obj, "exits_timer");
  const json::Value& causes = array_field(obj, "exits_by_cause");
  PARATICK_CHECK_MSG(causes.array.size() == hw::kExitCauseCount,
                     "run record: exit-cause count mismatch (format drift?)");
  for (std::size_t i = 0; i < hw::kExitCauseCount; ++i) {
    r.exits_by_cause[i] = static_cast<std::uint64_t>(causes.array[i].number);
  }
  r.events_executed = u64_field(obj, "events");
  if (const json::Value* profile = obj.find("profile")) {
    PARATICK_CHECK_MSG(profile->array.size() == 7,
                       "run record: profile counter count mismatch (format drift?)");
    const auto prof = [&](std::size_t i) {
      return static_cast<std::uint64_t>(profile->array[i].number);
    };
    r.events_scheduled = prof(0);
    r.events_cancelled = prof(1);
    r.callback_spills = prof(2);
    r.callback_spill_bytes = prof(3);
    r.slot_high_water = prof(4);
    r.queue_compactions = prof(5);
    r.engine_wall_ns = prof(6);
  }
  if (const json::Value* parallel = obj.find("parallel")) {
    PARATICK_CHECK_MSG(
        parallel->array.size() == 4,
        "run record: parallel counter count mismatch (format drift?)");
    const auto par = [&](std::size_t i) {
      return static_cast<std::uint64_t>(parallel->array[i].number);
    };
    r.par_windows = par(0);
    r.par_windows_skipped = par(1);
    r.par_barriers_elided = par(2);
    r.par_horizon_max_ns = par(3);
  }
  const json::Value& faults = array_field(obj, "faults");
  PARATICK_CHECK_MSG(faults.array.size() == 9,
                     "run record: fault counter count mismatch (format drift?)");
  const auto flt = [&](std::size_t i) {
    return static_cast<std::uint64_t>(faults.array[i].number);
  };
  r.faults.timer_dropped = flt(0);
  r.faults.timer_delayed = flt(1);
  r.faults.timer_coalesced = flt(2);
  r.faults.io_errors = flt(3);
  r.faults.io_spikes = flt(4);
  r.faults.steal_bursts = flt(5);
  r.faults.ticks_delayed = flt(6);
  r.faults.softirq_spurious = flt(7);
  r.faults.softirq_dropped = flt(8);
  for (const auto& vm : array_field(obj, "vms").array) {
    PARATICK_CHECK_MSG(vm.type == json::Value::Type::kObject,
                       "run record: vm entry is not an object");
    r.vms.push_back(parse_vm(vm));
  }
  return r;
}

SweepRun parse_run_value(const json::Value& doc) {
  SweepRun run;
  run.run_index = static_cast<std::size_t>(u64_field(doc, "run_index"));
  run.cell = static_cast<std::size_t>(u64_field(doc, "cell"));
  run.replica = static_cast<int>(json::num_field(doc, "replica"));
  run.seed = u64_string_field(doc, "seed");
  const json::Value* executed = doc.find("executed");
  run.executed = executed != nullptr && executed->boolean;
  const json::Value* ok = doc.find("ok");
  run.ok = ok != nullptr && ok->boolean;
  run.host_seconds = json::num_field(doc, "host_seconds");
  if (const json::Value* bundle = doc.find("bundle")) run.bundle_path = bundle->str;
  if (const json::Value* trace = doc.find("trace")) run.trace_path = trace->str;
  if (const json::Value* failure = doc.find("failure")) {
    RunFailure f;
    f.kind = failure_kind_from_string(json::str_field(*failure, "kind"));
    f.expr = json::str_field(*failure, "expr");
    f.file = json::str_field(*failure, "file");
    f.line = static_cast<int>(json::num_field(*failure, "line"));
    f.message = json::str_field(*failure, "message");
    f.sim_time_ns = static_cast<std::int64_t>(
        json::num_field(*failure, "sim_time_ns", -1.0));
    f.events_executed = u64_field(*failure, "events");
    run.failure = std::move(f);
  }
  if (const json::Value* result = doc.find("result")) {
    run.result = parse_result(*result);
  }
  return run;
}

}  // namespace

std::string run_record_to_json(const SweepRun& run) {
  std::string out = metrics::format(
      "{\"run_index\": %llu, \"cell\": %llu, \"replica\": %d, "
      "\"seed\": \"%llu\", \"executed\": %s, \"ok\": %s, "
      "\"host_seconds\": %.17g",
      static_cast<ull>(run.run_index), static_cast<ull>(run.cell), run.replica,
      static_cast<ull>(run.seed), run.executed ? "true" : "false",
      run.ok ? "true" : "false", run.host_seconds);
  if (!run.bundle_path.empty()) {
    out += metrics::format(", \"bundle\": \"%s\"",
                           metrics::json_escape(run.bundle_path).c_str());
  }
  if (!run.trace_path.empty()) {
    out += metrics::format(", \"trace\": \"%s\"",
                           metrics::json_escape(run.trace_path).c_str());
  }
  if (run.failure) {
    const RunFailure& f = *run.failure;
    out += metrics::format(
        ", \"failure\": {\"kind\": \"%s\", \"expr\": \"%s\", \"file\": \"%s\", "
        "\"line\": %d, \"message\": \"%s\", \"sim_time_ns\": %lld, "
        "\"events\": %llu}",
        RunFailure::kind_name(f.kind), metrics::json_escape(f.expr).c_str(),
        metrics::json_escape(f.file).c_str(), f.line,
        metrics::json_escape(f.message).c_str(),
        static_cast<long long>(f.sim_time_ns),
        static_cast<ull>(f.events_executed));
  }
  if (run.ok) {
    out += ", ";
    append_result(out, run.result);
  }
  out += '}';
  return out;
}

SweepRun parse_run_record(const std::string& text) {
  const json::Value doc = json::parse(text);
  PARATICK_CHECK_MSG(doc.type == json::Value::Type::kObject,
                     "run record: document is not a JSON object");
  return parse_run_value(doc);
}

PartialSnapshot make_partial_snapshot(const SweepConfig& cfg,
                                      const SweepResult& result) {
  PartialSnapshot p;
  p.bench = cfg.bench_name;
  p.root_seed = cfg.root_seed;
  p.repeat = cfg.repeat;
  p.total_runs = result.runs.size();
  p.shard = cfg.shard;
  p.backend = result.backend_name;
  p.cells.reserve(result.cells.size());
  for (const auto& cell : result.cells) p.cells.push_back(cell.key);
  for (const auto& run : result.runs) {
    if (run.executed) p.runs.push_back(run);
  }
  return p;
}

std::string to_json(const PartialSnapshot& p) {
  std::string out = metrics::format(
      "{\n  \"kind\": \"paratick-partial-sweep\",\n  \"version\": 1,\n"
      "  \"bench\": \"%s\",\n  \"root_seed\": \"%llu\",\n  \"repeat\": %d,\n"
      "  \"total_runs\": %llu,\n  \"shard\": {\"index\": %u, \"count\": %u},\n"
      "  \"backend\": \"%s\",\n  \"cells\": [\n",
      metrics::json_escape(p.bench).c_str(), static_cast<ull>(p.root_seed),
      p.repeat, static_cast<ull>(p.total_runs), p.shard.index, p.shard.count,
      metrics::json_escape(p.backend).c_str());
  for (std::size_t i = 0; i < p.cells.size(); ++i) {
    const SweepCellKey& key = p.cells[i];
    out += metrics::format(
        "    {\"variant\": \"%s\", \"mode\": \"%s\", \"tick_freq_hz\": %.17g, "
        "\"vcpus\": %d, \"overcommit\": %.17g}%s\n",
        metrics::json_escape(key.variant).c_str(),
        std::string(guest::to_string(key.mode)).c_str(), key.tick_freq_hz,
        key.vcpus, key.overcommit, i + 1 < p.cells.size() ? "," : "");
  }
  out += "  ],\n  \"runs\": [\n";
  for (std::size_t i = 0; i < p.runs.size(); ++i) {
    out += "    ";
    out += run_record_to_json(p.runs[i]);
    out += i + 1 < p.runs.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string write_partial_snapshot(const PartialSnapshot& p,
                                   const std::string& path) {
  // Atomic temp-file + rename: a worker killed mid-write must never leave
  // a truncated partial for the merge layer (or a resuming dispatcher
  // loading its checkpoint) to choke on.
  write_file_atomic(path, to_json(p));
  return path;
}

PartialSnapshot parse_partial_snapshot(const std::string& text) {
  const json::Value doc = json::parse(text);
  PARATICK_CHECK_MSG(doc.type == json::Value::Type::kObject,
                     "partial snapshot: document is not a JSON object");
  const json::Value* kind = doc.find("kind");
  PARATICK_CHECK_MSG(kind != nullptr && kind->str == "paratick-partial-sweep",
                     "partial snapshot: wrong document kind (expected "
                     "\"paratick-partial-sweep\" — is this a --sweep-json "
                     "export instead of a --partial file?)");
  PARATICK_CHECK_MSG(json::num_field(doc, "version") == 1.0,
                     "partial snapshot: unsupported version");
  PartialSnapshot p;
  p.bench = json::str_field(doc, "bench");
  p.root_seed = u64_string_field(doc, "root_seed");
  p.repeat = static_cast<int>(json::num_field(doc, "repeat"));
  p.total_runs = static_cast<std::size_t>(u64_field(doc, "total_runs"));
  const json::Value* shard = doc.find("shard");
  PARATICK_CHECK_MSG(shard != nullptr && shard->type == json::Value::Type::kObject,
                     "partial snapshot: missing shard object");
  p.shard.index = static_cast<unsigned>(json::num_field(*shard, "index"));
  p.shard.count = static_cast<unsigned>(json::num_field(*shard, "count", 1.0));
  p.backend = json::str_field(doc, "backend");
  for (const auto& cell : array_field(doc, "cells").array) {
    PARATICK_CHECK_MSG(cell.type == json::Value::Type::kObject,
                       "partial snapshot: cell entry is not an object");
    SweepCellKey key;
    key.variant = json::str_field(cell, "variant");
    key.mode = mode_from_string(json::str_field(cell, "mode"));
    key.tick_freq_hz = json::num_field(cell, "tick_freq_hz");
    key.vcpus = static_cast<int>(json::num_field(cell, "vcpus"));
    key.overcommit = json::num_field(cell, "overcommit");
    p.cells.push_back(std::move(key));
  }
  for (const auto& run : array_field(doc, "runs").array) {
    PARATICK_CHECK_MSG(run.type == json::Value::Type::kObject,
                       "partial snapshot: run entry is not an object");
    p.runs.push_back(parse_run_value(run));
  }
  return p;
}

PartialSnapshot load_partial_snapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  PARATICK_CHECK_MSG(f != nullptr,
                     ("cannot open partial snapshot: " + path).c_str());
  std::string text;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  try {
    return parse_partial_snapshot(text);
  } catch (const sim::SimError& e) {
    const std::string msg =
        "corrupt partial snapshot " + path + ": " + e.msg() +
        " — regenerate it by re-running this shard with the same "
        "--shard K/N --partial flags";
    PARATICK_CHECK_MSG(false, msg.c_str());
    throw;  // unreachable; CHECK above always throws
  }
}

SweepResult merge_partial_snapshots(const std::vector<PartialSnapshot>& partials,
                                    bool allow_missing) {
  PARATICK_CHECK_MSG(!partials.empty(), "merge: no partial snapshots given");
  const PartialSnapshot& ref = partials.front();

  for (std::size_t i = 1; i < partials.size(); ++i) {
    const PartialSnapshot& p = partials[i];
    const auto mismatch = [&](const char* what) {
      const std::string msg =
          std::string("merge: partial snapshots disagree on ") + what +
          " (shard " + p.shard.label() + " vs shard " + ref.shard.label() +
          ") — all shards must run the same bench with the same --seed, "
          "--repeat and grid flags";
      PARATICK_CHECK_MSG(false, msg.c_str());
    };
    if (p.root_seed != ref.root_seed) mismatch("root seed");
    if (p.repeat != ref.repeat) mismatch("repeat count");
    if (p.total_runs != ref.total_runs) mismatch("total run count");
    if (p.cells.size() != ref.cells.size()) mismatch("cell grid size");
    for (std::size_t c = 0; c < ref.cells.size(); ++c) {
      const SweepCellKey& a = ref.cells[c];
      const SweepCellKey& b = p.cells[c];
      if (a.variant != b.variant || a.mode != b.mode ||
          a.tick_freq_hz != b.tick_freq_hz || a.vcpus != b.vcpus ||
          a.overcommit != b.overcommit) {
        mismatch("cell grid");
      }
    }
  }

  SweepResult res;
  res.backend_name = "merge";
  res.threads_used = 1;
  res.cells.reserve(ref.cells.size());
  for (const SweepCellKey& key : ref.cells) {
    SweepCellSummary cell;
    cell.key = key;
    res.cells.push_back(std::move(cell));
  }
  res.runs.resize(ref.total_runs);

  std::vector<bool> seen(ref.total_runs, false);
  for (const PartialSnapshot& p : partials) {
    for (const SweepRun& run : p.runs) {
      if (run.run_index >= ref.total_runs) {
        const std::string msg = "merge: shard " + p.shard.label() +
                                " contains run index " +
                                std::to_string(run.run_index) +
                                " outside the sweep's " +
                                std::to_string(ref.total_runs) + " runs";
        PARATICK_CHECK_MSG(false, msg.c_str());
      }
      if (seen[run.run_index]) {
        const std::string msg =
            "merge: run index " + std::to_string(run.run_index) +
            " is covered by more than one partial — did you merge the same "
            "shard twice?";
        PARATICK_CHECK_MSG(false, msg.c_str());
      }
      seen[run.run_index] = true;
      res.runs[run.run_index] = run;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i]) continue;
    if (!allow_missing) {
      const std::string msg =
          "merge: run index " + std::to_string(i) +
          " is covered by no partial — pass every shard's --partial file "
          "(expected " + std::to_string(ref.shard.count) + " shards)";
      PARATICK_CHECK_MSG(false, msg.c_str());
    }
    // --skip-corrupt fleet mode: the run is lost with its shard's partial.
    // Reconstruct its identity (pure in root_seed + index) and record the
    // loss as a crash so the cell degrades instead of the merge aborting.
    SweepRun& run = res.runs[i];
    run.run_index = i;
    run.cell = i / static_cast<std::size_t>(ref.repeat);
    run.replica = static_cast<int>(i % static_cast<std::size_t>(ref.repeat));
    run.seed = derive_seed(ref.root_seed, i);
    run.executed = true;
    run.ok = false;
    RunFailure f;
    f.kind = RunFailure::Kind::kCrash;
    f.message = "run lost: its shard's partial snapshot was missing or "
                "corrupt (merged with --skip-corrupt)";
    run.failure = std::move(f);
  }

  aggregate_sweep_runs(res);
  return res;
}

}  // namespace paratick::core
