// Shard interchange + merge layer for multi-host sweeps.
//
// A sharded sweep (--shard K/N) executes only its slice of the run-index
// space and persists the executed runs as a *partial snapshot*: a JSON
// document in the style of the history snapshots (core/history.hpp) that
// additionally carries every run's full result — accumulator states with
// exact (%.17g) doubles, histogram buckets, cycle ledgers — so that
// merging N partials reconstructs precisely the run set a single host
// would have produced. merge_partial_snapshots() then feeds the union
// through the same aggregate_sweep_runs() used after local execution,
// making the merged CSV/JSON byte-identical to a single-process -jN run.
//
// The per-run record serializer doubles as the fork backend's wire
// format: a forked child streams run_record_to_json() over its pipe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace paratick::core {

/// One shard's executed slice plus the sweep identity needed to validate
/// a merge (same grid, same seed universe) before folding.
struct PartialSnapshot {
  std::string bench;            // producing binary; may be empty
  std::uint64_t root_seed = 0;
  int repeat = 1;
  std::size_t total_runs = 0;   // of the FULL sweep, not this slice
  ShardSpec shard;
  std::string backend;          // executing backend, informational
  std::vector<SweepCellKey> cells;  // full grid, for validation + labels
  std::vector<SweepRun> runs;       // executed slice, run-index order
};

/// Exact-round-trip serialization of one executed run (identity, failure
/// record, full RunResult). Used for both partial snapshots and the fork
/// backend's pipe protocol.
[[nodiscard]] std::string run_record_to_json(const SweepRun& run);
[[nodiscard]] SweepRun parse_run_record(const std::string& text);

/// Build / serialize the partial snapshot for `result` (a sharded
/// SweepResult: unexecuted runs are skipped automatically).
[[nodiscard]] PartialSnapshot make_partial_snapshot(const SweepConfig& cfg,
                                                    const SweepResult& result);
[[nodiscard]] std::string to_json(const PartialSnapshot& p);
/// Write to `path` (directories created) and return the path written.
std::string write_partial_snapshot(const PartialSnapshot& p, const std::string& path);

/// Parse / load a partial snapshot. PARATICK_CHECKs (throws sim::SimError)
/// on malformed documents; load_partial_snapshot names the offending file
/// and tells the user to regenerate the shard.
[[nodiscard]] PartialSnapshot parse_partial_snapshot(const std::string& text);
[[nodiscard]] PartialSnapshot load_partial_snapshot(const std::string& path);

/// Fold any number of partial snapshots into the full sweep result.
/// Validates that all partials share one sweep identity (root seed,
/// repeat, run count, cell grid) and that together they cover every run
/// index exactly once; PARATICK_CHECKs with an actionable message
/// otherwise. The result is bit-identical to executing the whole sweep on
/// one host because aggregation is the same code path.
///
/// With `allow_missing` (sweep_merge --skip-corrupt, after dropping a
/// corrupt partial), uncovered run indices degrade their cells instead of
/// failing the merge: each becomes an executed kCrash record — identity
/// reconstructed from (root_seed, run_index) — so the merged artifacts
/// carry the loss in their failed counters rather than aborting a fleet.
[[nodiscard]] SweepResult merge_partial_snapshots(
    const std::vector<PartialSnapshot>& partials, bool allow_missing = false);

}  // namespace paratick::core
