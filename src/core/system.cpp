#include "core/system.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "fault/injector.hpp"
#include "sim/check.hpp"

namespace paratick::core {

System::System(SystemSpec spec)
    : spec_(std::move(spec)),
      machine_(spec_.machine),
      kvm_(engine_, machine_, spec_.host) {
  PARATICK_CHECK_MSG(!spec_.vms.empty(), "system needs at least one VM");

  engine_.set_observer(spec_.observer);

  if (spec_.fault.any()) {
    fault_ = std::make_unique<fault::FaultInjector>(spec_.fault, spec_.fault_seed);
    kvm_.set_fault_injector(fault_.get());
  }

  for (const VmSpec& vspec : spec_.vms) attach_vm(vspec);
}

std::size_t System::attach_vm(const VmSpec& vspec) {
  hv::VmConfig vconf;
  vconf.vcpus = vspec.vcpus;
  vconf.pinning = vspec.pinning;
  vconf.partition_key = vspec.partition_key;
  hv::Vm& vm = kvm_.create_vm(vconf);

  guest::GuestConfig gconf = vspec.guest;
  gconf.fault = fault_.get();
  kernels_.push_back(std::make_unique<guest::GuestKernel>(kvm_, vm, gconf));
  completions_.emplace_back();

  if (vspec.attach_disk) {
    disks_.push_back(std::make_unique<hw::BlockDevice>(
        engine_, vspec.disk, sim::Rng{spec_.host.seed ^ (vm.id() * 0x9E37ull + 7)}));
    kvm_.attach_block_device(vm, *disks_.back());
    if (fault_) {
      disks_.back()->set_fault_hook([this](const hw::IoRequest&) {
        const auto d = fault_->on_io_start();
        return hw::BlockDevice::FaultOutcome{d.fail, d.latency_factor};
      });
    }
  } else {
    disks_.push_back(nullptr);
  }

  if (vspec.setup) vspec.setup(*kernels_.back());
  return kernels_.size() - 1;
}

std::size_t System::attach_vm_live(const VmSpec& vspec) {
  PARATICK_CHECK_MSG(powered_, "attach_vm_live() before power_on()");
  const std::size_t index = attach_vm(vspec);
  wire_completion(index);
  kvm_.power_on_vm(*kvm_.vms()[index]);
  return index;
}

void System::freeze_vm(std::size_t vm_index) {
  PARATICK_CHECK_MSG(vm_index < kernels_.size(), "freeze_vm: no such VM");
  kvm_.freeze_vm(*kvm_.vms()[vm_index]);
}

System::~System() = default;

metrics::RunResult System::run() {
  power_on();
  engine_.run_until(spec_.max_duration);
  return finish();
}

void System::power_on() {
  PARATICK_CHECK_MSG(!powered_, "System may only be powered on once");
  powered_ = true;

  // Completion wiring: when every VM that owns tasks is done, stop.
  for (std::size_t i = 0; i < kernels_.size(); ++i) wire_completion(i);

  if (spec_.wall_limit_sec > 0.0) engine_.set_wall_limit(spec_.wall_limit_sec);
  kvm_.power_on_all();
  if (spec_.watchdog) {
    install_watchdog();
    watchdog_->start();
  }
}

metrics::RunResult System::finish() {
  PARATICK_CHECK_MSG(powered_, "System::finish() before power_on()");
  if (watchdog_) {
    watchdog_->sweep();  // final sweep: catch violations after the last event
    watchdog_->stop();
  }
  return collect();
}

void System::wire_completion(std::size_t vm_index) {
  kernels_[vm_index]->set_on_all_done([this, vm_index] {
    completions_[vm_index] = engine_.now();
    bool all = true;
    for (std::size_t j = 0; j < kernels_.size(); ++j) {
      if (kernels_[j]->task_count() > 0 && !completions_[j]) all = false;
    }
    if (all && spec_.stop_when_done) engine_.stop();
  });
}

void System::install_watchdog() {
  watchdog_ = std::make_unique<sim::Watchdog>(engine_, spec_.watchdog_period);

  auto last = std::make_shared<sim::SimTime>(engine_.now());
  watchdog_->add_check(
      "clock-monotonic", [this, last]() -> std::optional<std::string> {
        if (engine_.now() < *last) {
          return "engine clock moved backwards: " + sim::to_string(engine_.now()) +
                 " after " + sim::to_string(*last);
        }
        *last = engine_.now();
        return std::nullopt;
      });

  watchdog_->add_check("event-queue-order", [this]() -> std::optional<std::string> {
    if (engine_.has_pending_events() &&
        engine_.queue().next_time() < engine_.now()) {
      return "next pending event at " + sim::to_string(engine_.queue().next_time()) +
             " is stamped before the clock at " + sim::to_string(engine_.now());
    }
    return std::nullopt;
  });

  watchdog_->add_check("timer-liveness", [this]() -> std::optional<std::string> {
    for (const auto& vm : kvm_.vms()) {
      for (int i = 0; i < vm->vcpu_count(); ++i) {
        const hv::Vcpu& v = vm->vcpu(i);
        if (v.guest_deadline &&
            *v.guest_deadline + spec_.watchdog_timer_grace < engine_.now()) {
          return "vCPU " + std::to_string(v.id()) + " guest timer deadline " +
                 sim::to_string(*v.guest_deadline) + " still armed at " +
                 sim::to_string(engine_.now()) + " — timer interrupt lost";
        }
      }
    }
    return std::nullopt;
  });

  watchdog_->add_check("exit-accounting", [this]() -> std::optional<std::string> {
    const hv::ExitStats& exits = kvm_.exits();
    std::uint64_t by_cause = 0;
    for (std::size_t c = 0; c < hw::kExitCauseCount; ++c) {
      by_cause += exits.count(static_cast<hw::ExitCause>(c));
    }
    if (by_cause != exits.total()) {
      return "per-cause exit counts sum to " + std::to_string(by_cause) +
             " but total is " + std::to_string(exits.total());
    }
    std::uint64_t by_vm = 0;
    for (const auto& vm : kvm_.vms()) by_vm += exits.total_for_vm(vm->id());
    if (by_vm != exits.total()) {
      return "per-VM exit counts sum to " + std::to_string(by_vm) +
             " but total is " + std::to_string(exits.total());
    }
    return std::nullopt;
  });
}

metrics::RunResult System::collect() const {
  metrics::RunResult r;
  r.wall = engine_.now();
  r.events_executed = engine_.events_executed();
  const sim::EngineProfile prof = engine_.profile();
  r.events_scheduled = prof.events_scheduled;
  r.events_cancelled = prof.events_cancelled;
  r.callback_spills = prof.callback_spills;
  r.callback_spill_bytes = prof.callback_spill_bytes;
  r.slot_high_water = prof.slot_high_water;
  r.queue_compactions = prof.compactions;
  r.engine_wall_ns = prof.wall_ns;
  if (fault_) r.faults = fault_->stats();

  // Combined ledger; idle = wall - busy, per CPU.
  hw::CycleLedger combined;
  for (const auto& cpu : machine_.cpus()) {
    combined.merge(cpu.ledger());
    const sim::Cycles wall_cycles = cpu.frequency().cycles_in(r.wall);
    const sim::Cycles busy = cpu.ledger().busy_total();
    if (wall_cycles > busy) {
      combined.charge(hw::CycleCategory::kIdle, wall_cycles - busy);
    }
  }
  r.cycles = combined;

  const hv::ExitStats& exits = kvm_.exits();
  r.exits_total = exits.total();
  r.exits_timer_related = exits.timer_related();
  for (std::size_t c = 0; c < hw::kExitCauseCount; ++c) {
    r.exits_by_cause[c] = exits.count(static_cast<hw::ExitCause>(c));
  }

  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    metrics::VmResult vr;
    const auto vm_id = static_cast<std::uint32_t>(i);
    vr.exits_total = exits.total_for_vm(vm_id);
    std::uint64_t timer = 0;
    for (std::size_t c = 0; c < hw::kExitCauseCount; ++c) {
      const auto cause = static_cast<hw::ExitCause>(c);
      vr.exits_by_cause[c] = exits.count_for_vm(vm_id, cause);
      if (hw::is_timer_related(cause)) timer += vr.exits_by_cause[c];
    }
    vr.exits_timer_related = timer;
    vr.completion_time = completions_[i];
    vr.policy = kernels_[i]->aggregated_policy_stats();
    vr.tick_intervals_us = kernels_[i]->aggregated_tick_intervals_us();
    for (int t = 0; t < kernels_[i]->task_count(); ++t) {
      vr.task_blocks += kernels_[i]->task(t).blocks;
      vr.task_wakes += kernels_[i]->task(t).wakes;
    }
    vr.wakeup_latency_us = kernels_[i]->wakeup_latency_us();
    vr.wakeup_latency_hist_us = kernels_[i]->wakeup_latency_hist_us();
    vr.io_errors = kernels_[i]->io_errors();
    // Steal ground truth: folded waiting intervals plus whatever interval
    // is still open for vCPUs sitting in the runqueue at collection time.
    const hv::Vm& vm = *kvm_.vms()[i];
    for (int v = 0; v < vm.vcpu_count(); ++v) {
      const hv::Vcpu& vc = vm.vcpu(v);
      vr.steal_time += vc.steal_total;
      if (vc.state == hv::VcpuState::kReady) {
        vr.steal_time += engine_.now() - vc.ready_since;
      }
    }
    if (kernels_[i]->steal_estimator_enabled()) {
      vr.steal_estimate = kernels_[i]->steal_estimate();
    }
    r.vms.push_back(vr);
  }
  return r;
}

}  // namespace paratick::core
