#include "core/system.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace paratick::core {

System::System(SystemSpec spec)
    : spec_(std::move(spec)),
      machine_(spec_.machine),
      kvm_(engine_, machine_, spec_.host) {
  PARATICK_CHECK_MSG(!spec_.vms.empty(), "system needs at least one VM");
  for (const VmSpec& vspec : spec_.vms) {
    hv::VmConfig vconf;
    vconf.vcpus = vspec.vcpus;
    vconf.pinning = vspec.pinning;
    hv::Vm& vm = kvm_.create_vm(vconf);

    kernels_.push_back(std::make_unique<guest::GuestKernel>(kvm_, vm, vspec.guest));
    completions_.emplace_back();

    if (vspec.attach_disk) {
      disks_.push_back(std::make_unique<hw::BlockDevice>(
          engine_, vspec.disk, sim::Rng{spec_.host.seed ^ (vm.id() * 0x9E37ull + 7)}));
      kvm_.attach_block_device(vm, *disks_.back());
    } else {
      disks_.push_back(nullptr);
    }

    if (vspec.setup) vspec.setup(*kernels_.back());
  }
}

System::~System() = default;

metrics::RunResult System::run() {
  PARATICK_CHECK_MSG(!ran_, "System::run() may only be called once");
  ran_ = true;

  // Completion wiring: when every VM that owns tasks is done, stop.
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    kernels_[i]->set_on_all_done([this, i] {
      completions_[i] = engine_.now();
      bool all = true;
      for (std::size_t j = 0; j < kernels_.size(); ++j) {
        if (kernels_[j]->task_count() > 0 && !completions_[j]) all = false;
      }
      if (all && spec_.stop_when_done) engine_.stop();
    });
  }

  kvm_.power_on_all();
  engine_.run_until(spec_.max_duration);
  return collect();
}

metrics::RunResult System::collect() const {
  metrics::RunResult r;
  r.wall = engine_.now();
  r.events_executed = engine_.events_executed();

  // Combined ledger; idle = wall - busy, per CPU.
  hw::CycleLedger combined;
  for (const auto& cpu : machine_.cpus()) {
    combined.merge(cpu.ledger());
    const sim::Cycles wall_cycles = cpu.frequency().cycles_in(r.wall);
    const sim::Cycles busy = cpu.ledger().busy_total();
    if (wall_cycles > busy) {
      combined.charge(hw::CycleCategory::kIdle, wall_cycles - busy);
    }
  }
  r.cycles = combined;

  const hv::ExitStats& exits = kvm_.exits();
  r.exits_total = exits.total();
  r.exits_timer_related = exits.timer_related();
  for (std::size_t c = 0; c < hw::kExitCauseCount; ++c) {
    r.exits_by_cause[c] = exits.count(static_cast<hw::ExitCause>(c));
  }

  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    metrics::VmResult vr;
    const auto vm_id = static_cast<std::uint32_t>(i);
    vr.exits_total = exits.total_for_vm(vm_id);
    std::uint64_t timer = 0;
    for (std::size_t c = 0; c < hw::kExitCauseCount; ++c) {
      const auto cause = static_cast<hw::ExitCause>(c);
      vr.exits_by_cause[c] = exits.count_for_vm(vm_id, cause);
      if (hw::is_timer_related(cause)) timer += vr.exits_by_cause[c];
    }
    vr.exits_timer_related = timer;
    vr.completion_time = completions_[i];
    vr.policy = kernels_[i]->aggregated_policy_stats();
    vr.tick_intervals_us = kernels_[i]->aggregated_tick_intervals_us();
    for (int t = 0; t < kernels_[i]->task_count(); ++t) {
      vr.task_blocks += kernels_[i]->task(t).blocks;
      vr.task_wakes += kernels_[i]->task(t).wakes;
    }
    vr.wakeup_latency_us = kernels_[i]->wakeup_latency_us();
    vr.wakeup_latency_hist_us = kernels_[i]->wakeup_latency_hist_us();
    r.vms.push_back(vr);
  }
  return r;
}

}  // namespace paratick::core
