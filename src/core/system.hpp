// The library's top-level public API: describe a virtualized system
// (machine, host configuration, VMs with tick modes and workloads), run
// it, and collect the paper's metrics.
//
// Typical use (see examples/quickstart.cpp):
//
//   core::SystemSpec spec;
//   spec.machine = hw::MachineSpec::small(4);
//   core::VmSpec vm;
//   vm.vcpus = 4;
//   vm.guest.tick_mode = guest::TickMode::kParatick;
//   vm.setup = [](guest::GuestKernel& k) {
//     workload::install_parsec(k, workload::parsec_profile("fluidanimate"), 4);
//   };
//   spec.vms.push_back(vm);
//   core::System system(spec);
//   metrics::RunResult result = system.run();
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "guest/kernel.hpp"
#include "hv/kvm.hpp"
#include "hw/block_device.hpp"
#include "hw/machine.hpp"
#include "metrics/run_metrics.hpp"
#include "sim/engine.hpp"
#include "sim/watchdog.hpp"

namespace paratick::fault {
class FaultInjector;
}  // namespace paratick::fault

namespace paratick::core {

struct VmSpec {
  int vcpus = 1;
  guest::GuestConfig guest;  // tick mode, tick frequency, kernel costs
  /// Installs the workload (tasks, barriers) into the freshly built kernel.
  std::function<void(guest::GuestKernel&)> setup;
  bool attach_disk = false;
  hw::BlockDeviceSpec disk = hw::BlockDeviceSpec::sata_ssd();
  std::vector<hw::CpuId> pinning;  // optional explicit vCPU placement
  /// Parallel-engine partition this VM belongs to (copied into
  /// hv::VmConfig). The partitioned scenario layer sets it; plain
  /// single-engine systems leave the default 0.
  std::uint32_t partition_key = 0;
};

struct SystemSpec {
  hw::MachineSpec machine = hw::MachineSpec::small(1);
  hv::HostConfig host;
  std::vector<VmSpec> vms;
  /// Hard cap on simulated time (open-ended workloads run this long).
  sim::SimTime max_duration = sim::SimTime::sec(30);
  /// Stop as soon as every VM that has tasks finished them.
  bool stop_when_done = true;

  /// Chaos injection: fault rates (all zero = inert, no injector built)
  /// and the seed of the fault plan. The sweep layer derives fault_seed
  /// purely from (root_seed, run_index) so chaos grids replay exactly.
  fault::FaultConfig fault;
  std::uint64_t fault_seed = 0;

  /// Run the invariant watchdog alongside the engine. Off by default:
  /// its periodic sweeps add events, perturbing baseline-comparable runs.
  bool watchdog = false;
  sim::SimTime watchdog_period = sim::SimTime::ms(5);
  /// How long an armed guest timer may stay past its deadline before the
  /// timer-liveness check declares the interrupt lost. Must exceed the
  /// worst benign delivery delay (late/coalesce faults, steal bursts).
  sim::SimTime watchdog_timer_grace = sim::SimTime::ms(5);

  /// Wall-clock budget for run(); > 0 makes the engine throw
  /// SimError{kTimeout} when exceeded (hung-run detection).
  double wall_limit_sec = 0.0;

  /// Observer attached to the engine's dispatch loop for the lifetime of
  /// the run — the record/replay layer's hook (core/record_replay). Must
  /// outlive the System. Purely observational: attaching one never
  /// changes what the engine executes.
  sim::EventObserver* observer = nullptr;
};

class System {
 public:
  explicit System(SystemSpec spec);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Run the simulation and collect metrics. Call once. Equivalent to
  /// power_on() + engine().run_until(spec.max_duration) + finish().
  metrics::RunResult run();

  /// First phase of run(): wire completion stops, arm the wall-clock
  /// budget, power on every VM and start the watchdog — without executing
  /// a single event. Used by drivers that own the event loop themselves
  /// (sim::ParallelEngine runs many Systems' engines in quantum windows);
  /// call finish() once the external driver is done.
  void power_on();

  /// Second phase of run(): final watchdog sweep plus metric collection.
  metrics::RunResult finish();

  /// Attach one more VM to an already powered-on system and boot it — the
  /// cluster layer's live-migration destination path. Same wiring as
  /// construction (kernel, completion hook, optional disk); returns the
  /// new VM's index. Only legal after power_on().
  std::size_t attach_vm_live(const VmSpec& vspec);

  /// Park a VM for good (live-migration source): its vCPUs freeze in
  /// place and stop generating events; collected metrics keep everything
  /// accumulated up to the freeze. See hv::Kvm::freeze_vm.
  void freeze_vm(std::size_t vm_index);

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] hw::Machine& machine() { return machine_; }
  [[nodiscard]] hv::Kvm& kvm() { return kvm_; }
  [[nodiscard]] guest::GuestKernel& kernel(std::size_t vm_index) {
    return *kernels_[vm_index];
  }
  [[nodiscard]] std::size_t vm_count() const { return kernels_.size(); }
  [[nodiscard]] hw::BlockDevice* disk(std::size_t vm_index) {
    return disks_[vm_index].get();
  }
  /// The chaos injector, or nullptr when SystemSpec::fault is inert.
  [[nodiscard]] fault::FaultInjector* fault_injector() { return fault_.get(); }

 private:
  /// The per-VM slice of construction, reusable mid-run: create the hv VM,
  /// build the guest kernel, wire disk + fault hooks, run the workload
  /// setup. Returns the VM index.
  std::size_t attach_vm(const VmSpec& vspec);
  void wire_completion(std::size_t vm_index);
  metrics::RunResult collect() const;
  void install_watchdog();

  SystemSpec spec_;
  sim::Engine engine_;
  hw::Machine machine_;
  std::unique_ptr<fault::FaultInjector> fault_;
  hv::Kvm kvm_;
  std::vector<std::unique_ptr<guest::GuestKernel>> kernels_;
  std::vector<std::unique_ptr<hw::BlockDevice>> disks_;
  std::vector<std::optional<sim::SimTime>> completions_;
  std::unique_ptr<sim::Watchdog> watchdog_;
  bool powered_ = false;
};

}  // namespace paratick::core
