// Minimal fixed-size worker pool for the sweep runner.
//
// The pool imposes no ordering of its own: deterministic users give every
// job an index into a pre-sized results array, so the final output is a
// pure function of the inputs regardless of thread count or schedule.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paratick::core {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0) {
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::scoped_lock lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  void submit(std::function<void()> job) {
    {
      std::scoped_lock lock(mu_);
      ++outstanding_;
      jobs_.push_back(std::move(job));
    }
    cv_.notify_one();
  }

  /// Block until every submitted job has finished. Rethrows the first
  /// exception any job raised (the remaining jobs still run to completion).
  void wait_idle() {
    std::unique_lock lock(mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stopping_ with a drained queue
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      std::exception_ptr err;
      try {
        job();
      } catch (...) {
        err = std::current_exception();
      }
      {
        std::scoped_lock lock(mu_);
        if (err && !first_error_) first_error_ = err;
        if (--outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> jobs_;
  std::vector<std::thread> workers_;
  std::size_t outstanding_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Run body(0), ..., body(n-1) across up to `threads` workers. Jobs are
/// claimed from a shared counter; with `threads <= 1` everything runs
/// inline on the calling thread.
inline void parallel_for_index(std::size_t n, unsigned threads,
                               const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, n));
  ThreadPool pool(workers);
  std::atomic<std::size_t> next{0};
  for (unsigned w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        body(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace paratick::core
