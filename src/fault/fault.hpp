// Fault classes and knobs for deterministic chaos injection.
//
// All probabilities default to 0: a default FaultConfig is inert and a
// System built with one behaves bit-identically to a faultless build.
// Rates are per-opportunity Bernoulli draws on dedicated RNG streams
// (see injector.hpp) so enabling one fault class never perturbs another.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace paratick::fault {

struct FaultConfig {
  // --- hw: LAPIC deadline-timer interrupts -------------------------------
  /// Probability a hardware timer fire is lost entirely.
  double timer_drop_prob = 0.0;
  /// Probability a fire is delivered late, by uniform(0, timer_late_max].
  double timer_late_prob = 0.0;
  sim::SimTime timer_late_max = sim::SimTime::us(300);
  /// Probability a fire is coalesced: deferred to the end of a window, the
  /// way tick-coalescing hosts batch adjacent deadline interrupts.
  double timer_coalesce_prob = 0.0;
  sim::SimTime timer_coalesce_window = sim::SimTime::us(800);

  // --- hw: per-CPU TSC drift ---------------------------------------------
  /// Parts-per-million skew applied to armed deadlines, with a per-CPU
  /// sign/magnitude derived purely from the fault seed (cross-CPU drift).
  double tsc_drift_ppm = 0.0;

  // --- hw: block device ---------------------------------------------------
  /// Probability an I/O request completes with an error.
  double io_error_prob = 0.0;
  /// Probability an I/O request hits a latency spike of io_spike_factor×.
  double io_spike_prob = 0.0;
  double io_spike_factor = 20.0;

  // --- hv: scheduling -----------------------------------------------------
  /// Probability a VM entry is preempted by a steal burst of
  /// uniform(0, steal_burst_max] before the guest actually runs.
  double steal_burst_prob = 0.0;
  sim::SimTime steal_burst_max = sim::SimTime::ms(2);
  /// Probability a due paravirtual tick injection is delayed to the next
  /// VM entry (models a host that misses the entry hook).
  double tick_delay_prob = 0.0;

  // --- guest: softirq layer ----------------------------------------------
  /// Probability a timer interrupt raises the softirq with no expired
  /// timers behind it (spurious wakeup: pay the cost, do no work).
  double softirq_spurious_prob = 0.0;
  /// Probability a timer-expiry pass is dropped; timers stay pending until
  /// the next interrupt (models a lost softirq).
  double softirq_drop_prob = 0.0;

  [[nodiscard]] bool any() const {
    return timer_drop_prob > 0 || timer_late_prob > 0 ||
           timer_coalesce_prob > 0 || tsc_drift_ppm > 0 || io_error_prob > 0 ||
           io_spike_prob > 0 || steal_burst_prob > 0 || tick_delay_prob > 0 ||
           softirq_spurious_prob > 0 || softirq_drop_prob > 0;
  }
};

/// Counters for how often each fault class actually fired during a run.
struct FaultStats {
  std::uint64_t timer_dropped = 0;
  std::uint64_t timer_delayed = 0;
  std::uint64_t timer_coalesced = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t io_spikes = 0;
  std::uint64_t steal_bursts = 0;
  std::uint64_t ticks_delayed = 0;
  std::uint64_t softirq_spurious = 0;
  std::uint64_t softirq_dropped = 0;

  [[nodiscard]] std::uint64_t total() const {
    return timer_dropped + timer_delayed + timer_coalesced + io_errors +
           io_spikes + steal_bursts + ticks_delayed + softirq_spurious +
           softirq_dropped;
  }
};

}  // namespace paratick::fault
