#include "fault/injector.hpp"

namespace paratick::fault {

namespace {

// splitmix64 — same mixer the sweep layer uses for per-run seeds; local
// copy to keep the fault lib below core in the layering.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t stream_seed(std::uint64_t plan_seed, std::uint64_t domain) {
  return mix64(plan_seed ^ mix64(domain));
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t plan_seed)
    : config_(config),
      plan_seed_(plan_seed),
      timer_rng_(stream_seed(plan_seed, 0x74696d72 /* 'timr' */)),
      io_rng_(stream_seed(plan_seed, 0x626c6b69 /* 'blki' */)),
      sched_rng_(stream_seed(plan_seed, 0x73636864 /* 'schd' */)),
      guest_rng_(stream_seed(plan_seed, 0x67737400 /* 'gst' */)) {}

FaultInjector::TimerDecision FaultInjector::on_timer_fire(sim::SimTime now) {
  TimerDecision d;
  if (config_.timer_drop_prob > 0 && timer_rng_.bernoulli(config_.timer_drop_prob)) {
    ++stats_.timer_dropped;
    d.action = TimerDecision::Action::kDrop;
    return d;
  }
  if (config_.timer_late_prob > 0 && timer_rng_.bernoulli(config_.timer_late_prob)) {
    ++stats_.timer_delayed;
    const std::int64_t max_ns = config_.timer_late_max.nanoseconds();
    const std::int64_t late = timer_rng_.uniform_int(1, max_ns > 0 ? max_ns : 1);
    d.action = TimerDecision::Action::kDefer;
    d.defer_until = now + sim::SimTime::ns(late);
    return d;
  }
  if (config_.timer_coalesce_prob > 0 &&
      timer_rng_.bernoulli(config_.timer_coalesce_prob)) {
    ++stats_.timer_coalesced;
    d.action = TimerDecision::Action::kDefer;
    d.defer_until = now + config_.timer_coalesce_window;
    return d;
  }
  return d;
}

sim::SimTime FaultInjector::skew_deadline(std::uint32_t cpu, sim::SimTime now,
                                          sim::SimTime deadline) const {
  if (config_.tsc_drift_ppm <= 0) return deadline;
  // Fixed per-CPU drift in [-ppm, +ppm], hashed from (plan_seed, cpu).
  const std::uint64_t h = mix64(plan_seed_ ^ mix64(0x64726674ULL ^ cpu));
  const double unit =
      (static_cast<double>(h >> 11) / 9007199254740992.0) * 2.0 - 1.0;  // [-1,1)
  const double drift = unit * config_.tsc_drift_ppm * 1e-6;
  if (deadline <= now) return deadline;
  const double span = static_cast<double>((deadline - now).nanoseconds());
  const auto skewed =
      now + sim::SimTime::ns(static_cast<std::int64_t>(span * (1.0 + drift)));
  return skewed > now ? skewed : now;
}

FaultInjector::IoDecision FaultInjector::on_io_start() {
  IoDecision d;
  if (config_.io_error_prob > 0 && io_rng_.bernoulli(config_.io_error_prob)) {
    ++stats_.io_errors;
    d.fail = true;
  }
  if (config_.io_spike_prob > 0 && io_rng_.bernoulli(config_.io_spike_prob)) {
    ++stats_.io_spikes;
    d.latency_factor = config_.io_spike_factor;
  }
  return d;
}

sim::SimTime FaultInjector::steal_burst() {
  if (config_.steal_burst_prob <= 0 ||
      !sched_rng_.bernoulli(config_.steal_burst_prob)) {
    return sim::SimTime::zero();
  }
  ++stats_.steal_bursts;
  const std::int64_t max_ns = config_.steal_burst_max.nanoseconds();
  return sim::SimTime::ns(sched_rng_.uniform_int(1, max_ns > 0 ? max_ns : 1));
}

bool FaultInjector::delay_tick_injection() {
  if (config_.tick_delay_prob <= 0) return false;
  if (!sched_rng_.bernoulli(config_.tick_delay_prob)) return false;
  ++stats_.ticks_delayed;
  return true;
}

bool FaultInjector::spurious_softirq() {
  if (config_.softirq_spurious_prob <= 0) return false;
  if (!guest_rng_.bernoulli(config_.softirq_spurious_prob)) return false;
  ++stats_.softirq_spurious;
  return true;
}

bool FaultInjector::drop_softirq() {
  if (config_.softirq_drop_prob <= 0) return false;
  if (!guest_rng_.bernoulli(config_.softirq_drop_prob)) return false;
  ++stats_.softirq_dropped;
  return true;
}

}  // namespace paratick::fault
