// FaultInjector: turns a FaultConfig plus a plan seed into concrete,
// reproducible fault decisions.
//
// Determinism contract: the plan seed is derived purely from
// (root_seed, run_index) by the sweep layer, and each fault class draws
// from its own RNG stream, so a chaos sweep produces bit-identical fault
// sequences at any thread count and any grid shard. Decision methods
// early-return without consuming randomness when their class is disabled,
// keeping partially-enabled configs stable as knobs are added.
#pragma once

#include <cstdint>

#include "fault/fault.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace paratick::fault {

class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, std::uint64_t plan_seed);

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t plan_seed() const { return plan_seed_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  // --- hw: deadline timers ------------------------------------------------
  struct TimerDecision {
    enum class Action : std::uint8_t { kDeliver, kDrop, kDefer };
    Action action = Action::kDeliver;
    sim::SimTime defer_until;  // valid when action == kDefer
  };
  /// Decide the fate of a timer interrupt due now.
  TimerDecision on_timer_fire(sim::SimTime now);

  /// Apply per-CPU TSC drift to an armed deadline. Pure (no RNG stream is
  /// consumed): the drift for a given CPU is a fixed ppm offset hashed
  /// from (plan_seed, cpu), so arming order cannot perturb other faults.
  [[nodiscard]] sim::SimTime skew_deadline(std::uint32_t cpu, sim::SimTime now,
                                           sim::SimTime deadline) const;

  // --- hw: block device ---------------------------------------------------
  struct IoDecision {
    bool fail = false;
    double latency_factor = 1.0;
  };
  IoDecision on_io_start();

  // --- hv: scheduling -----------------------------------------------------
  /// Steal burst charged before a VM entry; zero when none is injected.
  sim::SimTime steal_burst();
  /// True when a due paravirtual tick injection should be postponed.
  bool delay_tick_injection();

  // --- guest: softirqs ----------------------------------------------------
  bool spurious_softirq();
  bool drop_softirq();

 private:
  FaultConfig config_;
  std::uint64_t plan_seed_;
  FaultStats stats_;
  // One stream per fault domain so classes stay independent.
  sim::Rng timer_rng_;
  sim::Rng io_rng_;
  sim::Rng sched_rng_;
  sim::Rng guest_rng_;
};

}  // namespace paratick::fault
