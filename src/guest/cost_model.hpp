// Guest-kernel work costs, in cycles.
//
// These model the in-guest CPU time of kernel paths (which exists in both
// vanilla and paratick kernels); the virtualization-specific costs live in
// hv::ExitCostModel. Values approximate Linux 5.10 path lengths.
#pragma once

#include "sim/types.hpp"

namespace paratick::guest {

struct GuestCostModel {
  sim::Cycles irq_entry{600};
  sim::Cycles irq_exit{300};
  sim::Cycles tick_work{2800};      // update_process_times + scheduler_tick
  sim::Cycles timer_softirq{700};   // run_timer_softirq framework cost
  sim::Cycles per_timer_cb{400};    // each expired soft timer callback
  sim::Cycles sched_pick{900};      // pick_next_task
  sim::Cycles ctx_switch{1200};
  sim::Cycles idle_governor{800};   // tick_nohz_idle_enter / menu governor
  sim::Cycles syscall{700};
  sim::Cycles futex_block{1500};
  sim::Cycles futex_wake{1200};
  sim::Cycles blk_submit{2500};     // block layer + virtio frontend, per request
  sim::Cycles blk_complete{2200};
  sim::Cycles rcu_cb_batch{500};
  sim::Cycles spin_before_block{800};  // adaptive-mutex spin budget
};

}  // namespace paratick::guest
