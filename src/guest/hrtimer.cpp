#include "guest/hrtimer.hpp"

#include <utility>
#include <vector>

#include "sim/check.hpp"

namespace paratick::guest {

HrtimerQueue::TimerId HrtimerQueue::add(sim::SimTime deadline, Callback cb) {
  PARATICK_CHECK_MSG(cb != nullptr, "hrtimer callback must be callable");
  const TimerId id = next_id_++;
  timers_.emplace(deadline, Entry{id, std::move(cb)});
  return id;
}

bool HrtimerQueue::cancel(TimerId id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == id) {
      timers_.erase(it);
      return true;
    }
  }
  return false;
}

void HrtimerQueue::expire(sim::SimTime now) {
  // Collect first: callbacks may re-arm timers.
  std::vector<Callback> due;
  while (!timers_.empty() && timers_.begin()->first <= now) {
    due.push_back(std::move(timers_.begin()->second.cb));
    timers_.erase(timers_.begin());
  }
  fired_ += due.size();
  for (auto& cb : due) cb();
}

std::optional<sim::SimTime> HrtimerQueue::next_deadline() const {
  if (timers_.empty()) return std::nullopt;
  return timers_.begin()->first;
}

}  // namespace paratick::guest
