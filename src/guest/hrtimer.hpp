// High-resolution timer queue (Linux hrtimers): an ordered set of
// absolute-deadline callbacks. Backs short sleeps and provides the
// "next event" input to the NO_HZ / paratick idle-entry decision.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "sim/inline_callback.hpp"
#include "sim/types.hpp"

namespace paratick::guest {

class HrtimerQueue {
 public:
  using Callback = sim::InlineCallback;
  using TimerId = std::uint64_t;

  TimerId add(sim::SimTime deadline, Callback cb);
  bool cancel(TimerId id);

  /// Fire every timer with deadline <= now, in deadline order.
  void expire(sim::SimTime now);

  [[nodiscard]] std::optional<sim::SimTime> next_deadline() const;
  [[nodiscard]] std::size_t pending_count() const { return timers_.size(); }
  [[nodiscard]] std::uint64_t fired_count() const { return fired_; }

 private:
  struct Entry {
    TimerId id;
    Callback cb;
  };
  std::multimap<sim::SimTime, Entry> timers_;
  TimerId next_id_ = 1;
  std::uint64_t fired_ = 0;
};

}  // namespace paratick::guest
