#include "guest/kernel.hpp"

#include <algorithm>
#include <utility>

#include "fault/injector.hpp"
#include "sim/check.hpp"
#include "sim/log.hpp"

namespace paratick::guest {

namespace {
// Fast-path user-space cost of an uncontended futex operation.
constexpr sim::Cycles kFutexFastPath{60};
}  // namespace

// ===========================================================================
// GuestCpu::Api — the task-facing syscall surface
// ===========================================================================

class GuestCpu::Api final : public TaskApi {
 public:
  explicit Api(GuestCpu& cpu) : cpu_(cpu) {}

  [[nodiscard]] sim::SimTime now() const override { return cpu_.port().now(); }
  [[nodiscard]] int task_id() const override {
    PARATICK_CHECK(cpu_.current() != nullptr);
    return cpu_.current()->id;
  }
  [[nodiscard]] sim::Rng& rng() override {
    GuestTask* t = cpu_.current();
    PARATICK_CHECK(t != nullptr && t->rng.has_value());
    return *t->rng;
  }

  void compute(sim::Cycles c, std::function<void()> done) override {
    cpu_.port().run(c, hw::CycleCategory::kGuestUser,
                    [this, done = std::move(done)]() mutable {
                      cpu_.maybe_preempt(std::move(done));
                    });
  }

  void barrier_wait(int barrier_id, std::function<void()> done) override {
    cpu_.kernel().barrier_arrive(cpu_, barrier_id, std::move(done));
  }

  void mutex_lock(int mutex_id, std::function<void()> done) override {
    cpu_.kernel().mutex_lock(cpu_, mutex_id, std::move(done));
  }

  void mutex_unlock(int mutex_id, std::function<void()> done) override {
    cpu_.kernel().mutex_unlock(cpu_, mutex_id, std::move(done));
  }

  void sem_wait(int sem_id, std::function<void()> done) override {
    cpu_.kernel().sem_wait(cpu_, sem_id, std::move(done));
  }

  void sem_post(int sem_id, std::function<void()> done) override {
    cpu_.kernel().sem_post(cpu_, sem_id, std::move(done));
  }

  void sync_io(const hw::IoRequest& req, std::function<void()> done) override {
    cpu_.kernel().sync_io(cpu_, req, std::move(done));
  }

  void sleep_for(sim::SimTime d, std::function<void()> done) override {
    PARATICK_CHECK(d > sim::SimTime::zero());
    auto& cpu = cpu_;
    cpu.port().run(cpu.costs().syscall, hw::CycleCategory::kGuestKernel,
                   [&cpu, d, done = std::move(done)]() mutable {
                     GuestTask* t = cpu.current();
                     PARATICK_CHECK(t != nullptr);
                     const sim::SimTime deadline = cpu.port().now() + d;
                     auto wake = [&cpu, t] { cpu.kernel().wake_task(*t, cpu); };
                     cpu.kernel().maybe_enqueue_rcu(cpu);
                     if (d < 4 * cpu.tick_period()) {
                       // High-res path: the hardware must fire at the
                       // hrtimer's deadline, not at the next tick.
                       cpu.hrtimers().add(deadline, wake);
                       cpu.maybe_program_hrtimer(
                           deadline, [&cpu, done = std::move(done)]() mutable {
                             cpu.block_current(std::move(done));
                           });
                       return;
                     }
                     cpu.wheel().add(cpu.jiffy_of(deadline), wake);
                     cpu.block_current(std::move(done));
                   });
  }

  void background_fault(std::function<void()> done) override {
    cpu_.port().background_exit(std::move(done));
  }

  void finish() override { cpu_.kernel().task_finished(cpu_); }

 private:
  GuestCpu& cpu_;
};

// ===========================================================================
// GuestCpu
// ===========================================================================

GuestCpu::GuestCpu(GuestKernel& kernel, int index, hv::VcpuPort& port)
    : kernel_(kernel),
      index_(index),
      port_(port),
      rcu_(kernel.config().rcu_grace_ticks) {
  policy_ = make_tick_policy(kernel.config().tick_mode, *this);
  api_ = std::make_unique<Api>(*this);
}

GuestCpu::~GuestCpu() = default;

sim::SimTime GuestCpu::now() const { return port_.now(); }

sim::SimTime GuestCpu::tick_period() const {
  return kernel_.config().tick_freq.period();
}

const GuestCostModel& GuestCpu::costs() const { return kernel_.config().costs; }

std::uint64_t GuestCpu::jiffy_of(sim::SimTime t) const {
  return static_cast<std::uint64_t>(t.nanoseconds() / tick_period().nanoseconds());
}

void GuestCpu::power_on() {
  policy_->on_boot([this] {
    if (!kernel_.config().steal.enabled) {
      schedule();
      return;
    }
    // The first sample must reach the hardware: on_boot armed the tick a
    // full period out, and a queue-only add would sit unseen until some
    // unrelated event expires it — phantom lateness on sample #1.
    steal_estimator_.arm(*this, kernel_.config().steal);
    maybe_program_hrtimer(steal_estimator_.next_deadline(),
                          [this] { schedule(); });
  });
}

// --- interrupt path ---------------------------------------------------------

void GuestCpu::handle_interrupt(hw::Vector v) {
  port_.run(costs().irq_entry, hw::CycleCategory::kGuestKernel, [this, v] {
    // Expire due timers first (hrtimer_interrupt semantics): the policy's
    // re-arm below must see only *pending* events.
    expire_timers([this, v] {
      dispatch_vector(v, [this] { post_irq_work([this] { port_.iret(); }); });
    });
  });
}

void GuestCpu::dispatch_vector(hw::Vector v, std::function<void()> done) {
  switch (v) {
    case hw::vectors::kLocalTimer:
      policy_->on_physical_tick(std::move(done));
      return;
    case hw::vectors::kParatick:
      policy_->on_virtual_tick(std::move(done));
      return;
    case hw::vectors::kBlockDevice: {
      std::vector<hw::IoRequest> completions = port_.drain_io_completions();
      if (completions.empty()) {
        done();
        return;
      }
      const sim::Cycles c =
          costs().blk_complete * static_cast<std::int64_t>(completions.size());
      port_.run(c, hw::CycleCategory::kGuestKernel,
                [this, completions = std::move(completions),
                 done = std::move(done)]() mutable {
                  for (const auto& req : completions) kernel_.io_complete(*this, req);
                  // Acknowledge the device interrupt (virtio ISR access).
                  port_.io_ack(std::move(done));
                });
      return;
    }
    case hw::vectors::kRescheduleIpi:
      // The waker already placed the task on our runqueue; the post-irq
      // path will notice it when the idle loop resumes.
      done();
      return;
    default:
      done();  // spurious
      return;
  }
}

void GuestCpu::post_irq_work(std::function<void()> done) {
  flush_kicks([this, done = std::move(done)]() mutable {
    port_.run(costs().irq_exit, hw::CycleCategory::kGuestKernel, std::move(done));
  });
}

void GuestCpu::expire_timers(std::function<void()> done) {
  fault::FaultInjector* inj = kernel_.config().fault;
  if (inj != nullptr && inj->drop_softirq()) {
    // Fault: the timer softirq is lost. Wheel and hrtimer entries stay
    // pending until the next interrupt re-runs this pass (the irq-entry
    // cost already advanced time, so re-fires terminate).
    done();
    return;
  }
  const std::uint64_t fired_before = wheel_.fired_count() + hrtimers_.fired_count();
  wheel_.advance(jiffy_of(port_.now()));
  hrtimers_.expire(port_.now());
  const std::uint64_t fired =
      wheel_.fired_count() + hrtimers_.fired_count() - fired_before;
  sim::Cycles c = sim::Cycles(0);
  if (fired > 0) {
    c = costs().timer_softirq + costs().per_timer_cb * static_cast<std::int64_t>(fired);
  }
  if (inj != nullptr && inj->spurious_softirq()) {
    // Fault: a spurious softirq raise — one extra dispatch pass with no
    // expired timers behind it, on top of whatever real work fired.
    c = c + costs().timer_softirq;
  }
  if (c == sim::Cycles(0)) {
    done();
    return;
  }
  port_.run(c, hw::CycleCategory::kGuestKernel, std::move(done));
}

void GuestCpu::maybe_program_hrtimer(sim::SimTime deadline, std::function<void()> done) {
  const auto armed = policy_->armed_deadline();
  if (armed && *armed <= deadline && *armed > port_.now()) {
    done();  // something earlier is already armed
    return;
  }
  policy_->note_hardware_deadline(deadline);
  port_.write_tsc_deadline(deadline, std::move(done));
}

void GuestCpu::queue_kick(int target_cpu) {
  if (std::find(pending_kicks_.begin(), pending_kicks_.end(), target_cpu) ==
      pending_kicks_.end()) {
    pending_kicks_.push_back(target_cpu);
  }
}

void GuestCpu::flush_kicks(std::function<void()> done) {
  if (pending_kicks_.empty()) {
    done();
    return;
  }
  const int target = pending_kicks_.back();
  pending_kicks_.pop_back();
  port_.send_ipi(target, hw::vectors::kRescheduleIpi,
                 [this, done = std::move(done)]() mutable {
                   flush_kicks(std::move(done));
                 });
}

// --- tick services -----------------------------------------------------------

void GuestCpu::do_tick_work(std::function<void()> done) {
  port_.run(costs().tick_work, hw::CycleCategory::kGuestKernel,
            [this, done = std::move(done)]() mutable {
              const std::uint64_t drained = rcu_.on_tick();
              if (current_ != nullptr && !runq_.empty()) need_resched_ = true;
              if (drained > 0) {
                port_.run(costs().rcu_cb_batch, hw::CycleCategory::kGuestKernel,
                          std::move(done));
              } else {
                done();
              }
            });
}

void GuestCpu::kernel_work(sim::Cycles c, std::function<void()> done) {
  port_.run(c, hw::CycleCategory::kGuestKernel, std::move(done));
}

void GuestCpu::write_tsc_deadline(std::optional<sim::SimTime> deadline,
                                  std::function<void()> done) {
  port_.write_tsc_deadline(deadline, std::move(done));
}

void GuestCpu::paratick_hypercall(sim::SimTime period, std::function<void()> done) {
  hv::HypercallRequest req;
  req.kind = hv::HypercallRequest::Kind::kDeclareTickFreq;
  req.guest_tick_period = period;
  req.enable_paratick = true;
  port_.hypercall(req, std::move(done));
}

TickCpu::IdleSnapshot GuestCpu::idle_snapshot() const {
  IdleSnapshot snap;
  snap.tick_needed = rcu_.needs_tick();
  std::optional<sim::SimTime> next;
  if (auto j = wheel_.next_expiry()) {
    next = sim::SimTime::ns(static_cast<std::int64_t>(*j) *
                            tick_period().nanoseconds());
  }
  if (auto h = hrtimers_.next_deadline()) {
    if (!next || *h < *next) next = *h;
  }
  snap.next_event = next;
  return snap;
}

// --- scheduling --------------------------------------------------------------

void GuestCpu::enqueue_task(GuestTask& t) {
  t.state = GuestTask::State::kRunnable;
  runq_.push_back(&t);
}

void GuestCpu::schedule() {
  kernel_work(costs().sched_pick, [this] {
    if (runq_.empty()) {
      enter_idle();
      return;
    }
    current_ = runq_.front();
    runq_.pop_front();
    current_->state = GuestTask::State::kRunning;
    kernel_work(costs().ctx_switch, [this] { run_current(); });
  });
}

void GuestCpu::run_current() {
  PARATICK_CHECK(current_ != nullptr);
  GuestTask& t = *current_;
  if (t.measure_wake) {
    t.measure_wake = false;
    kernel_.record_wakeup_latency((now() - t.woken_at).microseconds());
  }
  if (!t.started) {
    t.started = true;
    t.body(*api_);
  } else {
    auto resume = std::move(t.resume_fn);
    t.resume_fn = nullptr;
    PARATICK_CHECK_MSG(resume != nullptr, "resumed task has no continuation");
    resume();
  }
}

void GuestCpu::enter_idle() {
  PARATICK_CHECK(current_ == nullptr);
  policy_->on_idle_enter([this] {
    // Re-check: an interrupt during the idle-entry path (e.g. the MSR
    // write exit window) may have woken a task.
    if (!runq_.empty()) {
      policy_->on_idle_exit([this] { schedule(); });
      return;
    }
    port_.hlt();
  });
}

void GuestCpu::idle_resume() {
  if (!runq_.empty()) {
    policy_->on_idle_exit([this] { schedule(); });
  } else {
    enter_idle();
  }
}

void GuestCpu::block_current(std::function<void()> resume_fn) {
  PARATICK_CHECK(current_ != nullptr);
  GuestTask& t = *current_;
  if (t.wake_pending) {
    // The wake beat us to sleep (futex pre-sleep check): keep running.
    t.wake_pending = false;
    resume_fn();
    return;
  }
  t.state = GuestTask::State::kBlocked;
  t.resume_fn = std::move(resume_fn);
  ++t.blocks;
  current_ = nullptr;
  schedule();
}

void GuestCpu::maybe_preempt(std::function<void()> done) {
  if (!need_resched_ || runq_.empty() || current_ == nullptr) {
    done();
    return;
  }
  need_resched_ = false;
  GuestTask& t = *current_;
  t.state = GuestTask::State::kRunnable;
  t.resume_fn = std::move(done);
  runq_.push_back(&t);
  current_ = nullptr;
  schedule();
}

// ===========================================================================
// GuestKernel
// ===========================================================================

GuestKernel::GuestKernel(hv::Kvm& kvm, hv::Vm& vm, GuestConfig config)
    : kvm_(kvm), vm_(vm), config_(config), rng_(config.seed) {
  cpus_.reserve(static_cast<std::size_t>(vm.vcpu_count()));
  for (int i = 0; i < vm.vcpu_count(); ++i) {
    hv::Vcpu& vcpu = vm.vcpu(i);
    cpus_.push_back(std::make_unique<GuestCpu>(*this, i, kvm.port(vcpu)));
    kvm.attach_guest(vcpu, cpus_.back().get());
  }
}

GuestKernel::~GuestKernel() = default;

GuestTask& GuestKernel::add_task(std::function<void(TaskApi&)> body, int home_cpu) {
  PARATICK_CHECK(body != nullptr);
  int home = home_cpu;
  if (home < 0) {
    home = next_home_;
    next_home_ = (next_home_ + 1) % cpu_count();
  }
  PARATICK_CHECK(home >= 0 && home < cpu_count());
  auto task = std::make_unique<GuestTask>();
  task->id = static_cast<int>(tasks_.size());
  task->home_cpu = home;
  task->body = std::move(body);
  const std::uint64_t task_salt =
      static_cast<std::uint64_t>(task->id) * std::uint64_t{0x9E3779B97F4A7C15};
  task->rng.emplace(config_.seed * std::uint64_t{0x100000001B3} + task_salt);
  tasks_.push_back(std::move(task));
  cpu(home).enqueue_task(*tasks_.back());
  return *tasks_.back();
}

void GuestKernel::create_barrier(int id, int parties) {
  PARATICK_CHECK(parties > 0);
  barriers_[id] = Barrier{parties, {}};
}

TickPolicy::Stats GuestKernel::aggregated_policy_stats() const {
  TickPolicy::Stats sum;
  for (const auto& c : cpus_) {
    const auto& s = c->policy_->stats();
    sum.ticks_handled += s.ticks_handled;
    sum.virtual_ticks += s.virtual_ticks;
    sum.msr_writes += s.msr_writes;
    sum.msr_writes_avoided += s.msr_writes_avoided;
    sum.idle_entries += s.idle_entries;
    sum.idle_exits += s.idle_exits;
    sum.busy_stops += s.busy_stops;
  }
  return sum;
}

sim::Accumulator GuestKernel::aggregated_tick_intervals_us() const {
  sim::Accumulator merged;
  for (const auto& c : cpus_) merged.merge(c->policy_->tick_intervals_us());
  return merged;
}

sim::SimTime GuestKernel::steal_estimate() const {
  sim::SimTime sum;
  for (const auto& c : cpus_) sum += c->steal_estimator().estimate();
  return sum;
}

void GuestKernel::wake_task(GuestTask& t, GuestCpu& waker) {
  PARATICK_CHECK_MSG(t.state != GuestTask::State::kDone, "wake of a finished task");
  if (t.state == GuestTask::State::kRunning) {
    t.wake_pending = true;  // racing with its own block path
    return;
  }
  if (t.state != GuestTask::State::kBlocked) return;  // already runnable
  t.state = GuestTask::State::kRunnable;
  ++t.wakes;
  t.woken_at = waker.now();
  t.measure_wake = true;
  GuestCpu& home = cpu(t.home_cpu);
  home.runq_.push_back(&t);
  if (&home != &waker && home.is_idle()) waker.queue_kick(t.home_cpu);
}

void GuestKernel::maybe_enqueue_rcu(GuestCpu& c) {
  if (rng_.bernoulli(config_.rcu_enqueue_prob)) c.rcu().enqueue();
}

void GuestKernel::barrier_arrive(GuestCpu& c, int barrier_id,
                                 std::function<void()> done) {
  auto it = barriers_.find(barrier_id);
  PARATICK_CHECK_MSG(it != barriers_.end(), "barrier_wait on unknown barrier");
  Barrier& b = it->second;
  GuestTask* t = c.current();
  PARATICK_CHECK(t != nullptr);
  maybe_enqueue_rcu(c);

  if (static_cast<int>(b.waiting.size()) + 1 >= b.parties) {
    // Last arrival releases everyone and continues without blocking.
    std::vector<GuestTask*> waiting = std::move(b.waiting);
    b.waiting.clear();
    for (GuestTask* w : waiting) wake_task(*w, c);
    const sim::Cycles cost =
        c.costs().syscall +
        c.costs().futex_wake * static_cast<std::int64_t>(waiting.size());
    c.port().run(cost, hw::CycleCategory::kGuestKernel,
                 [&c, done = std::move(done)]() mutable {
                   c.flush_kicks(std::move(done));
                 });
    return;
  }

  b.waiting.push_back(t);
  c.port().run(c.costs().syscall + c.costs().futex_block,
               hw::CycleCategory::kGuestKernel,
               [&c, t, done = std::move(done)]() mutable {
                 PARATICK_CHECK(c.current() == t);
                 c.block_current(std::move(done));
               });
}

void GuestKernel::mutex_lock(GuestCpu& c, int mutex_id, std::function<void()> done) {
  Mutex& m = mutexes_[mutex_id];
  GuestTask* t = c.current();
  PARATICK_CHECK(t != nullptr);
  ++m.acquires;

  if (m.holder == nullptr) {
    m.holder = t;
    c.port().run(kFutexFastPath, hw::CycleCategory::kGuestUser, std::move(done));
    return;
  }

  ++m.contended_acquires;
  // Adaptive mutex: spin briefly (PLE-visible on the host), then sleep.
  c.port().spin(c.costs().spin_before_block,
                [this, &c, &m, t, done = std::move(done)]() mutable {
                  if (m.holder == nullptr) {
                    m.holder = t;
                    done();
                    return;
                  }
                  c.port().run(c.costs().syscall + c.costs().futex_block,
                               hw::CycleCategory::kGuestKernel,
                               [this, &c, &m, t, done = std::move(done)]() mutable {
                                 if (m.holder == nullptr) {
                                   // Released during the futex path.
                                   m.holder = t;
                                   done();
                                   return;
                                 }
                                 m.waiters.push_back(t);
                                 maybe_enqueue_rcu(c);
                                 c.block_current(std::move(done));
                               });
                });
}

void GuestKernel::mutex_unlock(GuestCpu& c, int mutex_id, std::function<void()> done) {
  auto it = mutexes_.find(mutex_id);
  PARATICK_CHECK_MSG(it != mutexes_.end(), "unlock of unknown mutex");
  Mutex& m = it->second;
  GuestTask* t = c.current();
  PARATICK_CHECK_MSG(m.holder == t, "unlock by non-owner");
  maybe_enqueue_rcu(c);

  if (!m.waiters.empty()) {
    GuestTask* next = m.waiters.front();
    m.waiters.pop_front();
    m.holder = next;  // ownership handoff
    wake_task(*next, c);
    c.port().run(c.costs().futex_wake, hw::CycleCategory::kGuestKernel,
                 [&c, done = std::move(done)]() mutable {
                   c.flush_kicks(std::move(done));
                 });
    return;
  }
  m.holder = nullptr;
  c.port().run(kFutexFastPath, hw::CycleCategory::kGuestUser, std::move(done));
}

void GuestKernel::sem_wait(GuestCpu& c, int sem_id, std::function<void()> done) {
  Semaphore& s = semaphores_[sem_id];
  GuestTask* t = c.current();
  PARATICK_CHECK(t != nullptr);
  if (s.count > 0) {
    // Fast path: a post is already available (userspace futex check).
    --s.count;
    c.port().run(kFutexFastPath, hw::CycleCategory::kGuestUser, std::move(done));
    return;
  }
  ++s.blocked_waits;
  maybe_enqueue_rcu(c);
  c.port().run(c.costs().syscall + c.costs().futex_block,
               hw::CycleCategory::kGuestKernel,
               [this, &c, sem_id, t, done = std::move(done)]() mutable {
                 Semaphore& sem = semaphores_[sem_id];
                 if (sem.count > 0) {
                   --sem.count;  // a post raced with the futex path
                   done();
                   return;
                 }
                 sem.waiters.push_back(t);
                 c.block_current(std::move(done));
               });
}

void GuestKernel::sem_post(GuestCpu& c, int sem_id, std::function<void()> done) {
  Semaphore& s = semaphores_[sem_id];
  ++s.posts;
  if (!s.waiters.empty()) {
    GuestTask* w = s.waiters.front();
    s.waiters.pop_front();
    wake_task(*w, c);
    maybe_enqueue_rcu(c);
    c.port().run(c.costs().futex_wake, hw::CycleCategory::kGuestKernel,
                 [&c, done = std::move(done)]() mutable {
                   c.flush_kicks(std::move(done));
                 });
    return;
  }
  ++s.count;
  c.port().run(kFutexFastPath, hw::CycleCategory::kGuestUser, std::move(done));
}

void GuestKernel::sync_io(GuestCpu& c, const hw::IoRequest& req,
                          std::function<void()> done) {
  GuestTask* t = c.current();
  PARATICK_CHECK(t != nullptr);
  const std::uint64_t cookie = next_io_cookie_++;
  io_waits_.emplace(cookie, IoWait{t, false, false});
  hw::IoRequest tagged = req;
  tagged.cookie = cookie;
  maybe_enqueue_rcu(c);

  c.port().run(c.costs().blk_submit, hw::CycleCategory::kGuestKernel,
               [this, &c, tagged, done = std::move(done)]() mutable {
                 c.port().io_submit(
                     tagged, [this, &c, cookie = tagged.cookie,
                              done = std::move(done)]() mutable {
                       auto it = io_waits_.find(cookie);
                       if (it == io_waits_.end() || it->second.completed_early) {
                         io_waits_.erase(cookie);
                         done();
                         return;
                       }
                       it->second.blocked = true;
                       c.block_current(std::move(done));
                     });
               });
}

void GuestKernel::io_complete(GuestCpu& c, const hw::IoRequest& req) {
  if (req.failed) ++io_errors_;
  auto it = io_waits_.find(req.cookie);
  if (it == io_waits_.end()) return;  // spurious / already handled
  if (!it->second.blocked) {
    it->second.completed_early = true;
    return;
  }
  GuestTask* t = it->second.task;
  io_waits_.erase(it);
  wake_task(*t, c);
}

void GuestKernel::task_finished(GuestCpu& c) {
  GuestTask* t = c.current();
  PARATICK_CHECK(t != nullptr);
  t->state = GuestTask::State::kDone;
  t->finished_at = c.now();
  c.current_ = nullptr;
  ++tasks_done_;
  if (all_done() && on_all_done_) on_all_done_();
  c.schedule();
}

}  // namespace paratick::guest
