// The modeled guest kernel: per-vCPU contexts, task scheduling, blocking
// synchronization, block-I/O waits, soft timers, RCU — and a pluggable
// scheduler-tick policy (periodic / dynticks / paratick).
//
// GuestCpu implements both the hypervisor-facing interface (boot,
// interrupt delivery, idle resumption) and the TickCpu interface the
// tick policies act on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "guest/cost_model.hpp"
#include "sim/stats.hpp"
#include "guest/hrtimer.hpp"
#include "guest/rcu.hpp"
#include "guest/steal_estimator.hpp"
#include "guest/task.hpp"
#include "guest/tick_policy.hpp"
#include "guest/timer_wheel.hpp"
#include "hv/kvm.hpp"
#include "hv/port.hpp"

namespace paratick::fault {
class FaultInjector;
}  // namespace paratick::fault

namespace paratick::guest {

struct GuestConfig {
  TickMode tick_mode = TickMode::kDynticksIdle;
  sim::Frequency tick_freq{250.0};
  GuestCostModel costs;
  unsigned rcu_grace_ticks = 1;
  /// Probability that a blocking/wake path enqueues an RCU callback.
  /// Low by default: on real systems grace periods complete quickly, so
  /// most idle entries find the CPU RCU-quiet and NO_HZ stops the tick
  /// (paying the MSR-write exits) — the §3.2 behaviour.
  double rcu_enqueue_prob = 0.0005;
  std::uint64_t seed = 1234;
  /// Optional chaos injector (spurious/dropped softirqs). Not owned; must
  /// outlive the kernel. Null = no guest-level faults.
  fault::FaultInjector* fault = nullptr;
  /// Guest-side steal-time estimator (guest/steal_estimator.hpp). Off by
  /// default: the sampling timer adds events, perturbing runs that must
  /// stay byte-identical to pre-estimator baselines.
  StealEstimatorConfig steal;
};

class GuestKernel;

class GuestCpu final : public hv::GuestCpuIface, public TickCpu {
 public:
  GuestCpu(GuestKernel& kernel, int index, hv::VcpuPort& port);
  ~GuestCpu() override;

  GuestCpu(const GuestCpu&) = delete;
  GuestCpu& operator=(const GuestCpu&) = delete;

  // --- hv::GuestCpuIface ---
  void power_on() override;
  void handle_interrupt(hw::Vector v) override;
  void idle_resume() override;

  // --- TickCpu (what the tick policy sees) ---
  [[nodiscard]] sim::SimTime now() const override;
  [[nodiscard]] sim::SimTime tick_period() const override;
  [[nodiscard]] bool is_idle() const override { return current_ == nullptr; }
  [[nodiscard]] int nr_running() const override {
    return static_cast<int>(runq_.size()) + (current_ != nullptr ? 1 : 0);
  }
  [[nodiscard]] const GuestCostModel& costs() const override;
  void do_tick_work(std::function<void()> done) override;
  void kernel_work(sim::Cycles c, std::function<void()> done) override;
  void write_tsc_deadline(std::optional<sim::SimTime> deadline,
                          std::function<void()> done) override;
  void paratick_hypercall(sim::SimTime period, std::function<void()> done) override;
  [[nodiscard]] IdleSnapshot idle_snapshot() const override;

  // --- scheduling / kernel services ---
  void enqueue_task(GuestTask& t);
  void schedule();
  void block_current(std::function<void()> resume_fn);
  [[nodiscard]] GuestTask* current() const { return current_; }
  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] std::size_t runqueue_depth() const { return runq_.size(); }
  [[nodiscard]] TickPolicy& policy() { return *policy_; }
  [[nodiscard]] hv::VcpuPort& port() { return port_; }
  [[nodiscard]] TimerWheel& wheel() { return wheel_; }
  [[nodiscard]] HrtimerQueue& hrtimers() { return hrtimers_; }
  [[nodiscard]] RcuState& rcu() { return rcu_; }
  [[nodiscard]] TaskApi& api() { return *api_; }
  [[nodiscard]] GuestKernel& kernel() { return kernel_; }
  [[nodiscard]] const StealEstimator& steal_estimator() const {
    return steal_estimator_;
  }

  /// Queue a wake IPI to a sibling vCPU (sent before returning to tasks).
  void queue_kick(int target_cpu);

  /// High-res mode: if `deadline` is sooner than the armed hardware
  /// deadline, reprogram it (an MSR-write exit), then continue.
  void maybe_program_hrtimer(sim::SimTime deadline, std::function<void()> done);

  [[nodiscard]] std::uint64_t jiffy_of(sim::SimTime t) const;

 private:
  class Api;
  friend class GuestKernel;

  void dispatch_vector(hw::Vector v, std::function<void()> done);
  void post_irq_work(std::function<void()> done);
  void expire_timers(std::function<void()> done);
  void flush_kicks(std::function<void()> done);
  void enter_idle();
  void run_current();
  void maybe_preempt(std::function<void()> done);

  GuestKernel& kernel_;
  int index_;
  hv::VcpuPort& port_;
  std::unique_ptr<TickPolicy> policy_;
  std::unique_ptr<TaskApi> api_;

  TimerWheel wheel_;
  HrtimerQueue hrtimers_;
  RcuState rcu_;
  StealEstimator steal_estimator_;

  std::deque<GuestTask*> runq_;
  GuestTask* current_ = nullptr;
  bool need_resched_ = false;
  std::vector<int> pending_kicks_;
};

class GuestKernel {
 public:
  /// Builds one GuestCpu per vCPU of `vm` and wires them into the
  /// hypervisor. Tasks must be added before Kvm::power_on_all().
  GuestKernel(hv::Kvm& kvm, hv::Vm& vm, GuestConfig config);
  ~GuestKernel();

  GuestKernel(const GuestKernel&) = delete;
  GuestKernel& operator=(const GuestKernel&) = delete;

  /// Add a task; home vCPU defaults to round-robin, or pass one explicitly.
  GuestTask& add_task(std::function<void(TaskApi&)> body, int home_cpu = -1);

  /// Declare a barrier with a fixed party count.
  void create_barrier(int id, int parties);

  void set_on_all_done(std::function<void()> cb) { on_all_done_ = std::move(cb); }

  [[nodiscard]] const GuestConfig& config() const { return config_; }
  [[nodiscard]] int cpu_count() const { return static_cast<int>(cpus_.size()); }
  [[nodiscard]] GuestCpu& cpu(int i) { return *cpus_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] int task_count() const { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] GuestTask& task(int i) { return *tasks_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] int tasks_done() const { return tasks_done_; }
  /// I/O completions delivered with an injected device error.
  [[nodiscard]] std::uint64_t io_errors() const { return io_errors_; }
  [[nodiscard]] bool all_done() const {
    return !tasks_.empty() && tasks_done_ == task_count();
  }
  [[nodiscard]] sim::Rng& rng() { return rng_; }

  /// Sum of per-CPU tick-policy stats.
  [[nodiscard]] TickPolicy::Stats aggregated_policy_stats() const;

  /// Observed tick-interval samples merged across this VM's CPUs (the
  /// tick-jitter metric of bench_ablation_tick_jitter).
  [[nodiscard]] sim::Accumulator aggregated_tick_intervals_us() const;

  /// Whether the platform-agnostic steal estimator is running on this
  /// VM's CPUs, and its VM-wide estimate (sum over CPUs).
  [[nodiscard]] bool steal_estimator_enabled() const {
    return config_.steal.enabled;
  }
  [[nodiscard]] sim::SimTime steal_estimate() const;

  /// Wake-to-run latency of blocked tasks, in microseconds: the time from
  /// the waking event to the task actually executing again. This is the
  /// §4.2 critical-path cost paratick trims on idle exits.
  [[nodiscard]] const sim::Accumulator& wakeup_latency_us() const {
    return wakeup_latency_us_;
  }
  [[nodiscard]] const sim::LogHistogram& wakeup_latency_hist_us() const {
    return wakeup_hist_us_;
  }
  void record_wakeup_latency(double us) {
    wakeup_latency_us_.add(us);
    wakeup_hist_us_.add(us);
  }

  // --- services used by GuestCpu / Api (kernel-wide state) ---
  void wake_task(GuestTask& t, GuestCpu& waker);
  void barrier_arrive(GuestCpu& cpu, int barrier_id, std::function<void()> done);
  void mutex_lock(GuestCpu& cpu, int mutex_id, std::function<void()> done);
  void mutex_unlock(GuestCpu& cpu, int mutex_id, std::function<void()> done);
  void sem_wait(GuestCpu& cpu, int sem_id, std::function<void()> done);
  void sem_post(GuestCpu& cpu, int sem_id, std::function<void()> done);
  void sync_io(GuestCpu& cpu, const hw::IoRequest& req, std::function<void()> done);
  void io_complete(GuestCpu& cpu, const hw::IoRequest& req);
  void task_finished(GuestCpu& cpu);
  void maybe_enqueue_rcu(GuestCpu& cpu);

 private:
  struct Barrier {
    int parties = 0;
    std::vector<GuestTask*> waiting;
  };
  struct Mutex {
    GuestTask* holder = nullptr;
    std::deque<GuestTask*> waiters;
    std::uint64_t contended_acquires = 0;
    std::uint64_t acquires = 0;
  };
  struct IoWait {
    GuestTask* task = nullptr;
    bool completed_early = false;  // completion irq beat the blocking path
    bool blocked = false;
  };
  struct Semaphore {
    std::int64_t count = 0;
    std::deque<GuestTask*> waiters;
    std::uint64_t posts = 0;
    std::uint64_t blocked_waits = 0;
  };

  hv::Kvm& kvm_;
  hv::Vm& vm_;
  GuestConfig config_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<GuestCpu>> cpus_;
  std::vector<std::unique_ptr<GuestTask>> tasks_;
  std::unordered_map<int, Barrier> barriers_;
  std::unordered_map<int, Mutex> mutexes_;
  std::unordered_map<int, Semaphore> semaphores_;
  std::unordered_map<std::uint64_t, IoWait> io_waits_;
  std::uint64_t next_io_cookie_ = 1;
  std::uint64_t io_errors_ = 0;
  int tasks_done_ = 0;
  int next_home_ = 0;
  sim::Accumulator wakeup_latency_us_;
  sim::LogHistogram wakeup_hist_us_;
  std::function<void()> on_all_done_;

  friend class GuestCpu;
};

}  // namespace paratick::guest
