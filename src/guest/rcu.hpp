// Per-CPU RCU callback model.
//
// What matters for tick policy (paper Figures 1b/3c) is *whether RCU
// still needs the tick*: outstanding callbacks require grace-period
// progress, which is driven by scheduler ticks. We model a grace period
// as a fixed number of ticks observed on the CPU after the last enqueue,
// after which the callback batch is invoked and the CPU goes RCU-quiet.
#pragma once

#include <cstdint>

namespace paratick::guest {

class RcuState {
 public:
  explicit RcuState(unsigned grace_period_ticks = 2) : gp_ticks_(grace_period_ticks) {}

  /// call_rcu(): a deferred callback was enqueued on this CPU.
  void enqueue(unsigned count = 1) {
    callbacks_ += count;
    ticks_remaining_ = gp_ticks_;
  }

  /// A scheduler tick was processed on this CPU. Returns the number of
  /// callbacks invoked (0 while the grace period is still running).
  std::uint64_t on_tick() {
    if (callbacks_ == 0) return 0;
    if (ticks_remaining_ > 0) --ticks_remaining_;
    if (ticks_remaining_ > 0) return 0;
    const std::uint64_t done = callbacks_;
    callbacks_ = 0;
    invoked_ += done;
    return done;
  }

  /// rcu_needs_cpu(): does this CPU still need ticks for RCU?
  [[nodiscard]] bool needs_tick() const { return callbacks_ > 0; }

  [[nodiscard]] std::uint64_t pending() const { return callbacks_; }
  [[nodiscard]] std::uint64_t invoked() const { return invoked_; }

 private:
  unsigned gp_ticks_;
  unsigned ticks_remaining_ = 0;
  std::uint64_t callbacks_ = 0;
  std::uint64_t invoked_ = 0;
};

}  // namespace paratick::guest
