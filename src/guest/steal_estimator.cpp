#include "guest/steal_estimator.hpp"

#include "guest/kernel.hpp"
#include "sim/check.hpp"

namespace paratick::guest {

void StealEstimator::arm(GuestCpu& cpu, const StealEstimatorConfig& config) {
  PARATICK_CHECK_MSG(config.sample_period > sim::SimTime::zero(),
                     "steal estimator sample period must be > 0");
  cpu_ = &cpu;
  config_ = config;
  expected_ = cpu.now() + config_.sample_period;
  cpu.hrtimers().add(expected_, [this] { on_fire(); });
}

void StealEstimator::on_fire() {
  const sim::SimTime now = cpu_->now();
  const sim::SimTime late = now - expected_;
  if (late > config_.noise_floor) estimate_ += late;
  ++samples_;
  // Re-arm relative to *now*: after a stolen interval the schedule moves
  // with the guest's own clock, so each sample measures fresh lateness
  // instead of a compounding backlog against the original grid.
  expected_ = now + config_.sample_period;
  cpu_->hrtimers().add(expected_, [this] { on_fire(); });
}

}  // namespace paratick::guest
