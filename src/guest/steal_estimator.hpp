// Platform-agnostic guest-side steal-time estimation.
//
// The guest cannot read the hypervisor's scheduling ledger, but it can
// observe that its own timers fire late: a sampling timer armed every
// `sample_period` should fire on time whenever the vCPU actually runs,
// so any lateness beyond benign delivery overhead is time the vCPU was
// runnable-but-descheduled (or preempted on the entry path) — steal.
// This is the measurement loop of the "platform-agnostic steal-time
// measurement in a guest OS" approach (see PAPERS.md): no paravirtual
// interface, no /proc/stat, just the guest's own clock against its own
// expectations.
//
// The estimate is deliberately judged against the hypervisor ground
// truth (hv::Vcpu::steal_total): the cluster scheduler consumes the
// estimate, and estimator-vs-truth error is an exported metric.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace paratick::guest {

class GuestCpu;

struct StealEstimatorConfig {
  bool enabled = false;
  /// Sampling-timer period. Finer sampling catches more of the dispersed
  /// short waits that dominate steal under consolidation (each sample
  /// only observes the delay of its own delivery), at the cost of more
  /// timer traffic perturbing the measured guest.
  sim::SimTime sample_period = sim::SimTime::ms(1);
  /// Lateness at or below this floor is attributed to benign delivery
  /// overhead (irq entry, softirq batching, wake latency) and ignored.
  /// Benign lateness measures single-digit microseconds in an
  /// uncontended run; contended dispatch is tens to thousands of
  /// microseconds, so the floor sits between the two regimes.
  sim::SimTime noise_floor = sim::SimTime::us(25);
};

/// Per-CPU estimator: a self-re-arming sampling hrtimer whose lateness,
/// gated at the noise floor, accumulates into the steal estimate.
class StealEstimator {
 public:
  /// Install the sampling timer on `cpu`'s hrtimer queue. Called from
  /// GuestCpu::power_on when the config enables the estimator.
  void arm(GuestCpu& cpu, const StealEstimatorConfig& config);

  [[nodiscard]] sim::SimTime estimate() const { return estimate_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  /// Deadline of the pending sample — the boot path hands this to
  /// maybe_program_hrtimer so sample #1 actually reaches the hardware.
  [[nodiscard]] sim::SimTime next_deadline() const { return expected_; }

 private:
  void on_fire();

  GuestCpu* cpu_ = nullptr;
  StealEstimatorConfig config_;
  sim::SimTime expected_;
  sim::SimTime estimate_;
  std::uint64_t samples_ = 0;
};

}  // namespace paratick::guest
