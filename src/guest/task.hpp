// Guest tasks and the syscall-ish API workload code runs against.
//
// A task body is a continuation-passing function: it receives a TaskApi
// and chains operations (compute, synchronize, I/O, sleep) through `done`
// callbacks. The guest kernel schedules tasks onto vCPUs, blocks them on
// sync/I/O/timers and wakes them from interrupt handlers — generating
// exactly the idle-transition patterns whose cost the paper studies.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "hw/block_device.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace paratick::guest {

class TaskApi {
 public:
  virtual ~TaskApi() = default;

  [[nodiscard]] virtual sim::SimTime now() const = 0;
  [[nodiscard]] virtual int task_id() const = 0;
  [[nodiscard]] virtual sim::Rng& rng() = 0;

  /// Burn `c` user cycles, then continue (may be preempted at the boundary).
  virtual void compute(sim::Cycles c, std::function<void()> done) = 0;

  /// Blocking barrier (futex-based, like pthread_barrier_wait).
  virtual void barrier_wait(int barrier_id, std::function<void()> done) = 0;

  /// Blocking mutex with an adaptive spin before sleeping.
  virtual void mutex_lock(int mutex_id, std::function<void()> done) = 0;
  virtual void mutex_unlock(int mutex_id, std::function<void()> done) = 0;

  /// Counting semaphore (producer/consumer queues, condvar-style waits).
  virtual void sem_wait(int sem_id, std::function<void()> done) = 0;
  virtual void sem_post(int sem_id, std::function<void()> done) = 0;

  /// Synchronous block I/O: submit and sleep until the completion irq.
  virtual void sync_io(const hw::IoRequest& req, std::function<void()> done) = 0;

  /// Sleep for `d` (hrtimer or timer-wheel backed).
  virtual void sleep_for(sim::SimTime d, std::function<void()> done) = 0;

  /// Model a non-timer VM exit (page fault etc.) on this task's path.
  virtual void background_fault(std::function<void()> done) = 0;

  /// Task is finished; never returns control to the body.
  virtual void finish() = 0;
};

struct GuestTask {
  enum class State : std::uint8_t { kRunnable, kRunning, kBlocked, kDone };

  int id = 0;
  int home_cpu = 0;
  State state = State::kRunnable;
  bool started = false;
  /// A wake arrived while the task was still on its way to sleep (the
  /// futex "value changed before sleeping" case): the next block_current
  /// consumes it and continues without blocking.
  bool wake_pending = false;
  std::function<void(TaskApi&)> body;   // entry point, invoked once
  std::function<void()> resume_fn;      // continuation after wake/preempt

  /// Per-task random stream: draws are identical across tick modes no
  /// matter how scheduling interleaves, keeping A/B comparisons exact.
  std::optional<sim::Rng> rng;

  // statistics
  std::uint64_t blocks = 0;
  std::uint64_t wakes = 0;
  sim::SimTime finished_at;
  // wake-to-run latency measurement (the §4.2 critical-path quantity)
  sim::SimTime woken_at;
  bool measure_wake = false;
};

}  // namespace paratick::guest
