// Linux NO_HZ "dynticks idle" (paper Figure 1).
#include "guest/tick_policies.hpp"

#include "sim/check.hpp"

namespace paratick::guest {

DynticksPolicy::DynticksPolicy(TickCpu& cpu) : cpu_(cpu) {}

void DynticksPolicy::on_boot(std::function<void()> done) {
  next_tick_ = cpu_.now() + cpu_.tick_period();
  ++stats_.msr_writes;
  armed_ = next_tick_;
  cpu_.write_tsc_deadline(next_tick_, std::move(done));
}

// Figure 1a: perform tick work; reprogram unless the tick was stopped by
// the time the interrupt is handled.
void DynticksPolicy::on_physical_tick(std::function<void()> done) {
  ++stats_.ticks_handled;
  note_tick(cpu_.now());
  armed_.reset();
  cpu_.do_tick_work([this, done = std::move(done)]() mutable {
    if (tick_stopped_) {
      // Deferred/disabled in the meantime — skip the re-arm (Figure 1a's
      // "tick disabled?" branch).
      done();
      return;
    }
    // Program the earlier of the next grid tick and the next pending
    // hrtimer (hrtimer_interrupt re-arm semantics). An hrtimer that came
    // due *during* tick work is programmed as-is: a past TSC deadline
    // fires immediately, re-entering the expiry path — skipping it would
    // silently defer the timer a full grid period.
    const sim::SimTime period = cpu_.tick_period();
    while (next_tick_ <= cpu_.now()) next_tick_ += period;
    sim::SimTime target = next_tick_;
    const auto snap = cpu_.idle_snapshot();
    if (snap.next_event && *snap.next_event < target) {
      target = *snap.next_event;
    }
    ++stats_.msr_writes;
    armed_ = target;
    cpu_.write_tsc_deadline(target, std::move(done));
  });
}

void DynticksPolicy::on_virtual_tick(std::function<void()> done) {
  done();  // vanilla kernels never see vector 235
}

// Figure 1b: on idle entry, keep the tick if some component still needs
// it or the next event falls within one tick period; otherwise defer the
// timer to the next soft event, or disable it entirely.
void DynticksPolicy::on_idle_enter(std::function<void()> done) {
  ++stats_.idle_entries;
  cpu_.kernel_work(cpu_.costs().idle_governor, [this, done = std::move(done)]() mutable {
    const TickCpu::IdleSnapshot snap = cpu_.idle_snapshot();
    const sim::SimTime now = cpu_.now();

    if (snap.tick_needed) {
      done();  // RCU / softirq pending: tick retained, enter idle directly
      return;
    }
    if (snap.next_event && *snap.next_event <= now + cpu_.tick_period()) {
      // Next event within one tick period: not worth stopping the tick.
      // High-res mode still hands the hardware the earliest hrtimer if
      // it beats the programmed tick — otherwise the event would sit
      // until the grid point and look like phantom steal to the guest.
      if (armed_ && *armed_ <= *snap.next_event) {
        done();
        return;
      }
      ++stats_.msr_writes;
      armed_ = *snap.next_event;
      cpu_.write_tsc_deadline(*snap.next_event, std::move(done));
      return;
    }

    tick_stopped_ = true;
    const std::optional<sim::SimTime> target = snap.next_event;  // nullopt = disable
    if (armed_ == target) {
      // Already programmed at exactly this expiry (e.g. repeated idle
      // entries with an unchanged timer list): skip the MSR write.
      ++stats_.msr_writes_avoided;
      done();
      return;
    }
    ++stats_.msr_writes;
    armed_ = target;
    cpu_.write_tsc_deadline(target, std::move(done));
  });
}

// Figure 1c: on idle exit, restart the tick if it was deferred/disabled.
void DynticksPolicy::on_idle_exit(std::function<void()> done) {
  ++stats_.idle_exits;
  if (!tick_stopped_) {
    done();
    return;
  }
  tick_stopped_ = false;
  const sim::SimTime period = cpu_.tick_period();
  next_tick_ = cpu_.now() + period;
  ++stats_.msr_writes;
  armed_ = next_tick_;
  cpu_.write_tsc_deadline(next_tick_, std::move(done));
}

}  // namespace paratick::guest
