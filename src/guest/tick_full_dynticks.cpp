// NO_HZ_FULL ("full dynticks") — the third operating mode the paper's §2
// describes and deliberately excludes from its comparison because it
// "targets highly specific workloads". Implemented here as an extension:
// the tick is stopped not only when idle but also while *running*, as
// long as at most one task is runnable on the CPU and no kernel component
// needs the tick. One residual tick per second is retained for
// housekeeping, as in Linux.
#include "guest/tick_policies.hpp"

#include "sim/check.hpp"

namespace paratick::guest {

FullDynticksPolicy::FullDynticksPolicy(TickCpu& cpu) : cpu_(cpu) {}

bool FullDynticksPolicy::can_stop_while_busy() const {
  const auto snap = cpu_.idle_snapshot();
  return cpu_.nr_running() <= 1 && !snap.tick_needed;
}

void FullDynticksPolicy::on_boot(std::function<void()> done) {
  next_tick_ = cpu_.now() + cpu_.tick_period();
  ++stats_.msr_writes;
  armed_ = next_tick_;
  cpu_.write_tsc_deadline(next_tick_, std::move(done));
}

void FullDynticksPolicy::on_physical_tick(std::function<void()> done) {
  ++stats_.ticks_handled;
  note_tick(cpu_.now());
  armed_.reset();
  cpu_.do_tick_work([this, done = std::move(done)]() mutable {
    const sim::SimTime period = cpu_.tick_period();
    const auto snap = cpu_.idle_snapshot();

    // Adaptive-tick decision: with a single runnable task and a quiet
    // kernel, defer the next tick to the housekeeping horizon (1 s) or
    // the next pending event, whichever is sooner.
    sim::SimTime target;
    if (!cpu_.is_idle() && can_stop_while_busy()) {
      target = cpu_.now() + kHousekeepingPeriod;
      ++stats_.busy_stops;
    } else if (tick_stopped_) {
      done();  // idle with the tick already deferred: leave it alone
      return;
    } else {
      while (next_tick_ <= cpu_.now()) next_tick_ += period;
      target = next_tick_;
    }
    if (snap.next_event && *snap.next_event < target) {
      target = *snap.next_event;
    }
    ++stats_.msr_writes;
    armed_ = target;
    cpu_.write_tsc_deadline(target, std::move(done));
  });
}

void FullDynticksPolicy::on_virtual_tick(std::function<void()> done) {
  done();  // not a paratick kernel
}

// Idle entry/exit behave like NO_HZ idle (Figure 1b/1c).
void FullDynticksPolicy::on_idle_enter(std::function<void()> done) {
  ++stats_.idle_entries;
  cpu_.kernel_work(cpu_.costs().idle_governor, [this, done = std::move(done)]() mutable {
    const TickCpu::IdleSnapshot snap = cpu_.idle_snapshot();
    if (snap.tick_needed) {
      done();
      return;
    }
    if (snap.next_event && *snap.next_event <= cpu_.now() + cpu_.tick_period()) {
      // Tick retained, but high-res mode still arms the earliest hrtimer
      // if it beats the programmed deadline (see DynticksPolicy).
      if (armed_ && *armed_ <= *snap.next_event) {
        done();
        return;
      }
      ++stats_.msr_writes;
      armed_ = *snap.next_event;
      cpu_.write_tsc_deadline(*snap.next_event, std::move(done));
      return;
    }
    tick_stopped_ = true;
    const std::optional<sim::SimTime> target = snap.next_event;
    if (armed_ == target) {
      ++stats_.msr_writes_avoided;
      done();
      return;
    }
    ++stats_.msr_writes;
    armed_ = target;
    cpu_.write_tsc_deadline(target, std::move(done));
  });
}

void FullDynticksPolicy::on_idle_exit(std::function<void()> done) {
  ++stats_.idle_exits;
  if (!tick_stopped_) {
    done();
    return;
  }
  tick_stopped_ = false;
  // Returning to work: with a single task the tick may stay off (modulo
  // housekeeping); otherwise restart on the grid.
  const sim::SimTime period = cpu_.tick_period();
  sim::SimTime target;
  if (can_stop_while_busy()) {
    target = cpu_.now() + kHousekeepingPeriod;
    ++stats_.busy_stops;
  } else {
    next_tick_ = cpu_.now() + period;
    target = next_tick_;
  }
  const auto snap = cpu_.idle_snapshot();
  if (snap.next_event && *snap.next_event < target) {
    target = *snap.next_event;
  }
  ++stats_.msr_writes;
  armed_ = target;
  cpu_.write_tsc_deadline(target, std::move(done));
}

}  // namespace paratick::guest
