// Paratick guest side (paper Figures 3a-3d, §5.2).
#include "guest/tick_policies.hpp"

#include "sim/check.hpp"

namespace paratick::guest {

ParatickPolicy::ParatickPolicy(TickCpu& cpu) : cpu_(cpu) {}

// §5.2.1: declare the tick frequency to the host and enable virtual tick
// injection. The guest never arms a periodic tick of its own.
void ParatickPolicy::on_boot(std::function<void()> done) {
  cpu_.paratick_hypercall(cpu_.tick_period(), std::move(done));
}

// Figure 3a: the virtual-tick (vector 235) handler — full tick work,
// but no timer hardware is ever (re)armed.
void ParatickPolicy::on_virtual_tick(std::function<void()> done) {
  ++stats_.ticks_handled;
  ++stats_.virtual_ticks;
  note_tick(cpu_.now());
  cpu_.do_tick_work(std::move(done));
}

// Figure 3b: the physical-timer handler. The timer only exists because
// idle entry programmed a wake-up; if the CPU is still idle the wake-up
// is crucial and doubles as a tick. If the CPU is busy again, virtual
// ticks are flowing and there is nothing to do.
void ParatickPolicy::on_physical_tick(std::function<void()> done) {
  armed_.reset();  // the idle timer just fired; our record is consumed
  if (cpu_.is_idle()) {
    ++stats_.ticks_handled;
    note_tick(cpu_.now());
    cpu_.do_tick_work(std::move(done));
    return;
  }
  done();
}

// §5.2.4: arm the idle wake-up only when the existing timer (never
// disarmed on idle exit — the §4.1 heuristic) cannot cover the deadline.
void ParatickPolicy::maybe_program(sim::SimTime target, std::function<void()> done) {
  if (armed_ && *armed_ <= target && *armed_ > cpu_.now()) {
    ++stats_.msr_writes_avoided;  // a sooner (or equal) wake-up is already armed
    done();
    return;
  }
  ++stats_.msr_writes;
  armed_ = target;
  cpu_.write_tsc_deadline(target, std::move(done));
}

// Figure 3c: idle entry.
void ParatickPolicy::on_idle_enter(std::function<void()> done) {
  ++stats_.idle_entries;
  cpu_.kernel_work(cpu_.costs().idle_governor, [this, done = std::move(done)]() mutable {
    const TickCpu::IdleSnapshot snap = cpu_.idle_snapshot();
    if (snap.tick_needed) {
      // RCU or softirqs still need ticks, but nobody will inject virtual
      // ticks into a descheduled vCPU: program a wake-up one period out.
      maybe_program(cpu_.now() + cpu_.tick_period(), std::move(done));
      return;
    }
    if (snap.next_event) {
      maybe_program(*snap.next_event, std::move(done));
      return;
    }
    done();  // nothing scheduled: sleep until an external interrupt
  });
}

// Figure 3d: idle exit is free — the timer, if any, stays armed.
void ParatickPolicy::on_idle_exit(std::function<void()> done) {
  ++stats_.idle_exits;
  done();
}

// ---------------------------------------------------------------------------

std::unique_ptr<TickPolicy> make_tick_policy(TickMode mode, TickCpu& cpu) {
  switch (mode) {
    case TickMode::kPeriodic: return std::make_unique<PeriodicTickPolicy>(cpu);
    case TickMode::kDynticksIdle: return std::make_unique<DynticksPolicy>(cpu);
    case TickMode::kFullDynticks: return std::make_unique<FullDynticksPolicy>(cpu);
    case TickMode::kParatick: return std::make_unique<ParatickPolicy>(cpu);
  }
  PARATICK_CHECK_MSG(false, "unknown tick mode");
  return nullptr;
}

}  // namespace paratick::guest
