// Classic periodic scheduler tick (paper §2/§3.1): the tick timer is
// re-armed on every tick, on every CPU, regardless of workload. In a VM
// this costs two exits per tick period: the tick delivery and the re-arm.
#include "guest/tick_policies.hpp"

#include "sim/check.hpp"

namespace paratick::guest {

PeriodicTickPolicy::PeriodicTickPolicy(TickCpu& cpu) : cpu_(cpu) {}

void PeriodicTickPolicy::on_boot(std::function<void()> done) {
  next_tick_ = cpu_.now() + cpu_.tick_period();
  ++stats_.msr_writes;
  armed_ = next_tick_;
  cpu_.write_tsc_deadline(next_tick_, std::move(done));
}

void PeriodicTickPolicy::on_physical_tick(std::function<void()> done) {
  ++stats_.ticks_handled;
  note_tick(cpu_.now());
  armed_.reset();  // the deadline just fired
  cpu_.do_tick_work([this, done = std::move(done)]() mutable {
    // Advance along the absolute tick grid; skip any periods lost to
    // processing delay rather than drifting. Program the earlier of the
    // next tick and the next pending hrtimer (hrtimer_interrupt re-arm).
    const sim::SimTime period = cpu_.tick_period();
    while (next_tick_ <= cpu_.now()) next_tick_ += period;
    sim::SimTime target = next_tick_;
    const auto snap = cpu_.idle_snapshot();
    if (snap.next_event && *snap.next_event < target) {
      target = *snap.next_event;
    }
    ++stats_.msr_writes;
    armed_ = target;
    cpu_.write_tsc_deadline(target, std::move(done));
  });
}

void PeriodicTickPolicy::on_virtual_tick(std::function<void()> done) {
  // A periodic kernel never asked for virtual ticks; treat as spurious.
  done();
}

void PeriodicTickPolicy::on_idle_enter(std::function<void()> done) {
  ++stats_.idle_entries;
  done();  // the tick keeps running while idle — that is the whole problem
}

void PeriodicTickPolicy::on_idle_exit(std::function<void()> done) {
  ++stats_.idle_exits;
  done();
}

}  // namespace paratick::guest
