// Concrete tick-policy implementations (see tick_policy.hpp for the
// contract and the paper figures each one mirrors).
#pragma once

#include "guest/tick_policy.hpp"

namespace paratick::guest {

class PeriodicTickPolicy final : public TickPolicy {
 public:
  explicit PeriodicTickPolicy(TickCpu& cpu);

  [[nodiscard]] TickMode mode() const override { return TickMode::kPeriodic; }
  void on_boot(std::function<void()> done) override;
  void on_physical_tick(std::function<void()> done) override;
  void on_virtual_tick(std::function<void()> done) override;
  void on_idle_enter(std::function<void()> done) override;
  void on_idle_exit(std::function<void()> done) override;

 private:
  TickCpu& cpu_;
  sim::SimTime next_tick_;
};

/// Linux NO_HZ idle ("dynticks idle", paper Figure 1). The tick is
/// stopped/deferred on idle entry and restarted on idle exit — each of
/// which writes TSC_DEADLINE and therefore costs a VM exit (§3.2).
class DynticksPolicy final : public TickPolicy {
 public:
  explicit DynticksPolicy(TickCpu& cpu);

  [[nodiscard]] TickMode mode() const override { return TickMode::kDynticksIdle; }
  void on_boot(std::function<void()> done) override;
  void on_physical_tick(std::function<void()> done) override;
  void on_virtual_tick(std::function<void()> done) override;
  void on_idle_enter(std::function<void()> done) override;
  void on_idle_exit(std::function<void()> done) override;

  [[nodiscard]] bool tick_stopped() const { return tick_stopped_; }

 private:
  TickCpu& cpu_;
  sim::SimTime next_tick_;
  bool tick_stopped_ = false;
};

/// NO_HZ_FULL extension (paper §2's "full dynticks" mode): the tick also
/// stops while busy when at most one task is runnable, retaining a 1 Hz
/// housekeeping tick. Still pays MSR-write exits for every adaptive
/// decision — which is exactly why it does not solve the paper's problem.
class FullDynticksPolicy final : public TickPolicy {
 public:
  explicit FullDynticksPolicy(TickCpu& cpu);

  static constexpr sim::SimTime kHousekeepingPeriod = sim::SimTime::sec(1);

  [[nodiscard]] TickMode mode() const override { return TickMode::kFullDynticks; }
  void on_boot(std::function<void()> done) override;
  void on_physical_tick(std::function<void()> done) override;
  void on_virtual_tick(std::function<void()> done) override;
  void on_idle_enter(std::function<void()> done) override;
  void on_idle_exit(std::function<void()> done) override;

  [[nodiscard]] bool tick_stopped() const { return tick_stopped_; }

 private:
  [[nodiscard]] bool can_stop_while_busy() const;

  TickCpu& cpu_;
  sim::SimTime next_tick_;
  bool tick_stopped_ = false;
};

/// Paratick (paper Figures 2/3, §5.2): the guest never programs its own
/// scheduler tick; the host injects virtual ticks (vector 235) on VM
/// entry. A physical timer is programmed on idle entry only when RCU /
/// soft timers need a wake-up, and — heuristically — never disarmed.
class ParatickPolicy final : public TickPolicy {
 public:
  explicit ParatickPolicy(TickCpu& cpu);

  [[nodiscard]] TickMode mode() const override { return TickMode::kParatick; }
  void on_boot(std::function<void()> done) override;
  void on_physical_tick(std::function<void()> done) override;
  void on_virtual_tick(std::function<void()> done) override;
  void on_idle_enter(std::function<void()> done) override;
  void on_idle_exit(std::function<void()> done) override;

 private:
  /// Program the idle wake-up timer only if nothing earlier is armed
  /// (§5.2.4): the never-disarm heuristic makes an already-armed earlier
  /// deadline reusable for free.
  void maybe_program(sim::SimTime target, std::function<void()> done);

  TickCpu& cpu_;
};

}  // namespace paratick::guest
