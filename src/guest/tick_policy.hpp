// Scheduler-tick management policies — the unit under test.
//
// Three implementations mirror the paper:
//  * PeriodicTickPolicy — classic periodic tick (§2, §3.1),
//  * DynticksPolicy     — Linux NO_HZ "dynticks idle" (Figure 1),
//  * ParatickPolicy     — virtual scheduler ticks (Figures 2/3, §5.2).
//
// Policies act on a narrow TickCpu interface so they can be unit-tested
// against a mock CPU as well as run on the full guest kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "guest/cost_model.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace paratick::guest {

enum class TickMode : std::uint8_t {
  kPeriodic,
  kDynticksIdle,  // vanilla Linux default; the paper's baseline
  kFullDynticks,  // NO_HZ_FULL: tick also stopped while busy with <=1 task
                  // (paper §2 mentions and excludes it; implemented here
                  // as an extension for completeness)
  kParatick,      // the paper's contribution
};

[[nodiscard]] constexpr std::string_view to_string(TickMode m) {
  switch (m) {
    case TickMode::kPeriodic: return "periodic";
    case TickMode::kDynticksIdle: return "dynticks-idle";
    case TickMode::kFullDynticks: return "full-dynticks";
    case TickMode::kParatick: return "paratick";
  }
  return "?";
}

/// What a tick policy may do to / learn from its CPU.
class TickCpu {
 public:
  virtual ~TickCpu() = default;

  [[nodiscard]] virtual sim::SimTime now() const = 0;
  [[nodiscard]] virtual sim::SimTime tick_period() const = 0;
  [[nodiscard]] virtual bool is_idle() const = 0;
  /// Runnable tasks on this CPU including the current one (NO_HZ_FULL's
  /// "can the tick stop while busy?" input).
  [[nodiscard]] virtual int nr_running() const = 0;
  [[nodiscard]] virtual const GuestCostModel& costs() const = 0;

  /// Full scheduler-tick work: time accounting, scheduler tick, RCU
  /// progress, timer-softirq processing.
  virtual void do_tick_work(std::function<void()> done) = 0;

  /// Consume guest-kernel cycles (policy decision logic itself).
  virtual void kernel_work(sim::Cycles c, std::function<void()> done) = 0;

  /// Program the tick timer hardware — always a VM exit (§3).
  virtual void write_tsc_deadline(std::optional<sim::SimTime> deadline,
                                  std::function<void()> done) = 0;

  /// Declare the guest tick frequency to the host (§4.1) — a VM exit.
  virtual void paratick_hypercall(sim::SimTime period, std::function<void()> done) = 0;

  /// Inputs to the idle-entry decision (Figures 1b / 3c).
  struct IdleSnapshot {
    bool tick_needed = false;  // RCU or pending softirq requires ticks
    std::optional<sim::SimTime> next_event;  // earliest soft timer / hrtimer
  };
  [[nodiscard]] virtual IdleSnapshot idle_snapshot() const = 0;
};

class TickPolicy {
 public:
  virtual ~TickPolicy() = default;

  [[nodiscard]] virtual TickMode mode() const = 0;
  [[nodiscard]] std::string_view name() const { return to_string(mode()); }

  /// One-time switch from early-boot periodic mode (§5.2.1).
  virtual void on_boot(std::function<void()> done) = 0;

  /// The LAPIC/physical timer interrupt handler (Figures 1a / 3b).
  virtual void on_physical_tick(std::function<void()> done) = 0;

  /// The virtual tick (vector 235) handler (Figure 3a). Non-paratick
  /// kernels treat it as spurious.
  virtual void on_virtual_tick(std::function<void()> done) = 0;

  /// Idle-loop entry, before HLT (Figures 1b / 3c).
  virtual void on_idle_enter(std::function<void()> done) = 0;

  /// Idle-loop exit, before running tasks again (Figure 1c / 3d).
  virtual void on_idle_exit(std::function<void()> done) = 0;

  // --- introspection for tests & metrics ---
  struct Stats {
    std::uint64_t ticks_handled = 0;       // physical + virtual tick work done
    std::uint64_t virtual_ticks = 0;       // paratick injections handled
    std::uint64_t msr_writes = 0;          // timer (re)programming operations
    std::uint64_t msr_writes_avoided = 0;  // reprogramming skipped by policy checks
    std::uint64_t idle_entries = 0;
    std::uint64_t idle_exits = 0;
    std::uint64_t busy_stops = 0;  // NO_HZ_FULL adaptive stops while running
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Guest-side record of the currently armed deadline (what the kernel
  /// last wrote to TSC_DEADLINE); nullopt when disarmed or fired.
  [[nodiscard]] std::optional<sim::SimTime> armed_deadline() const { return armed_; }

  /// Observed intervals between consecutive ticks handled on this CPU,
  /// in microseconds. For paratick this measures virtual-tick delivery
  /// jitter — a timekeeping-quality aspect the paper does not evaluate.
  [[nodiscard]] const sim::Accumulator& tick_intervals_us() const {
    return tick_intervals_us_;
  }

  /// The hrtimer subsystem reprogrammed the hardware underneath the
  /// policy (high-res mode arms the earliest expiring hrtimer directly);
  /// keep the policy's record coherent.
  void note_hardware_deadline(sim::SimTime deadline) { armed_ = deadline; }

 protected:
  /// Called by implementations whenever tick work is performed.
  void note_tick(sim::SimTime now) {
    if (last_tick_seen_) {
      tick_intervals_us_.add((now - *last_tick_seen_).microseconds());
    }
    last_tick_seen_ = now;
  }

  Stats stats_;
  std::optional<sim::SimTime> armed_;
  sim::Accumulator tick_intervals_us_;
  std::optional<sim::SimTime> last_tick_seen_;
};

/// Create the policy implementing `mode` on `cpu` (tick period comes from
/// TickCpu::tick_period()).
[[nodiscard]] std::unique_ptr<TickPolicy> make_tick_policy(TickMode mode, TickCpu& cpu);

}  // namespace paratick::guest
