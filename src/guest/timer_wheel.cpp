#include "guest/timer_wheel.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace paratick::guest {

namespace {
constexpr std::uint64_t kSlotMask = TimerWheel::kSlots - 1;

constexpr std::uint64_t level_span(unsigned level) {
  // Jiffies covered by one full rotation of `level`.
  return std::uint64_t{1} << (TimerWheel::kSlotBits * (level + 1));
}
}  // namespace

unsigned TimerWheel::level_for(std::uint64_t delta) {
  for (unsigned level = 0; level < kLevels; ++level) {
    if (delta < level_span(level)) return level;
  }
  return kLevels - 1;
}

void TimerWheel::insert(Entry e, std::uint64_t min_expiry) {
  std::uint64_t expires = e.expires;
  if (expires < min_expiry) expires = min_expiry;
  // Clamp to the horizon so far-future timers park in the top level.
  const std::uint64_t max_delta = level_span(kLevels - 1) - 1;
  if (expires - now_ > max_delta) expires = now_ + max_delta;

  const unsigned level = level_for(expires - now_);
  const std::size_t slot_index =
      level * kSlots + ((expires >> (kSlotBits * level)) & kSlotMask);
  e.expires = expires;
  Slot& slot = slots_[slot_index];
  slot.push_back(std::move(e));
  index_[slot.back().id] = Position{slot_index, std::prev(slot.end())};
  ++level_expiries_[level][expires];
}

void TimerWheel::note_removed(unsigned level, std::uint64_t expires) {
  const auto it = level_expiries_[level].find(expires);
  PARATICK_DCHECK(it != level_expiries_[level].end() && it->second > 0);
  if (--it->second == 0) level_expiries_[level].erase(it);
}

TimerWheel::TimerId TimerWheel::add(std::uint64_t expires_jiffy, Callback cb) {
  PARATICK_CHECK_MSG(cb != nullptr, "timer callback must be callable");
  const TimerId id = next_id_++;
  // Externally-added past deadlines fire on the next jiffy.
  insert(Entry{id, expires_jiffy, std::move(cb)}, now_ + 1);
  ++live_;
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  const Position pos = it->second;
  if (pos.slot == kFiringSlot) {
    firing_.erase(pos.it);
  } else {
    note_removed(static_cast<unsigned>(pos.slot / kSlots), pos.it->expires);
    slots_[pos.slot].erase(pos.it);
  }
  index_.erase(it);
  --live_;
  return true;
}

void TimerWheel::advance(std::uint64_t now_jiffy) {
  while (now_ < now_jiffy) {
    if (live_ == 0) {
      // Nothing pending: fast-forward (long idle gaps are common).
      // Cancel erases eagerly, so an empty wheel is truly empty — no
      // tombstones get stranded behind the jump.
      PARATICK_DCHECK(index_.empty());
      now_ = now_jiffy;
      return;
    }
    ++now_;

    // Cascade higher levels whose granularity boundary we just crossed.
    for (unsigned level = 1; level < kLevels; ++level) {
      const std::uint64_t granularity = std::uint64_t{1} << (kSlotBits * level);
      if ((now_ & (granularity - 1)) != 0) break;
      const std::size_t slot = (now_ >> (kSlotBits * level)) & kSlotMask;
      Slot pending;
      pending.swap(slots_[level * kSlots + slot]);
      while (!pending.empty()) {
        Entry e = std::move(pending.front());
        pending.pop_front();
        index_.erase(e.id);
        note_removed(level, e.expires);
        // A cascaded entry may be due exactly this jiffy: allow it into the
        // level-0 slot that fires below.
        insert(std::move(e), now_);
      }
    }

    // Fire level-0 slot for this jiffy. The due list lives in `firing_`
    // (a member) so a callback can still cancel a not-yet-fired sibling.
    PARATICK_DCHECK(firing_.empty());
    firing_.swap(slots_[now_ & kSlotMask]);
    for (auto it = firing_.begin(); it != firing_.end(); ++it) {
      index_[it->id].slot = kFiringSlot;
      note_removed(0, it->expires);  // left the wheel, like a slot scan sees
    }
    while (!firing_.empty()) {
      Entry e = std::move(firing_.front());
      firing_.pop_front();
      index_.erase(e.id);
      PARATICK_DCHECK(e.expires <= now_);
      --live_;
      ++fired_;
      e.cb();
    }
  }
}

std::optional<std::uint64_t> TimerWheel::next_expiry() const {
  std::optional<std::uint64_t> best;
  for (const auto& level : level_expiries_) {
    if (level.empty()) continue;
    const std::uint64_t earliest = level.begin()->first;
    if (!best || earliest < *best) best = earliest;
  }
  return best;
}

std::optional<std::uint64_t> TimerWheel::next_expiry_scan() const {
  std::optional<std::uint64_t> best;
  for (const auto& slot : slots_) {
    for (const auto& e : slot) {
      if (!best || e.expires < *best) best = e.expires;
    }
  }
  return best;
}

}  // namespace paratick::guest
