#include "guest/timer_wheel.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace paratick::guest {

namespace {
constexpr std::uint64_t kSlotMask = TimerWheel::kSlots - 1;

constexpr std::uint64_t level_span(unsigned level) {
  // Jiffies covered by one full rotation of `level`.
  return std::uint64_t{1} << (TimerWheel::kSlotBits * (level + 1));
}
}  // namespace

unsigned TimerWheel::level_for(std::uint64_t delta) {
  for (unsigned level = 0; level < kLevels; ++level) {
    if (delta < level_span(level)) return level;
  }
  return kLevels - 1;
}

void TimerWheel::insert(Entry e, std::uint64_t min_expiry) {
  std::uint64_t expires = e.expires;
  if (expires < min_expiry) expires = min_expiry;
  // Clamp to the horizon so far-future timers park in the top level.
  const std::uint64_t max_delta = level_span(kLevels - 1) - 1;
  if (expires - now_ > max_delta) expires = now_ + max_delta;

  const unsigned level = level_for(expires - now_);
  const std::size_t slot =
      (expires >> (kSlotBits * level)) & kSlotMask;
  e.expires = expires;
  slots_[level * kSlots + slot].push_back(std::move(e));
}

TimerWheel::TimerId TimerWheel::add(std::uint64_t expires_jiffy, Callback cb) {
  PARATICK_CHECK_MSG(cb != nullptr, "timer callback must be callable");
  const TimerId id = next_id_++;
  // Externally-added past deadlines fire on the next jiffy.
  insert(Entry{id, expires_jiffy, std::move(cb), false}, now_ + 1);
  ++live_;
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  for (auto& slot : slots_) {
    for (auto& e : slot) {
      if (e.id == id && !e.cancelled) {
        e.cancelled = true;
        --live_;
        return true;
      }
    }
  }
  return false;
}

void TimerWheel::advance(std::uint64_t now_jiffy) {
  while (now_ < now_jiffy) {
    if (live_ == 0) {
      // Nothing pending: fast-forward (long idle gaps are common).
      now_ = now_jiffy;
      return;
    }
    ++now_;

    // Cascade higher levels whose granularity boundary we just crossed.
    for (unsigned level = 1; level < kLevels; ++level) {
      const std::uint64_t granularity = std::uint64_t{1} << (kSlotBits * level);
      if ((now_ & (granularity - 1)) != 0) break;
      const std::size_t slot = (now_ >> (kSlotBits * level)) & kSlotMask;
      Slot pending;
      pending.swap(slots_[level * kSlots + slot]);
      for (auto& e : pending) {
        if (e.cancelled) continue;
        // A cascaded entry may be due exactly this jiffy: allow it into the
        // level-0 slot that fires below.
        insert(std::move(e), now_);
      }
    }

    // Fire level-0 slot for this jiffy.
    Slot due;
    due.swap(slots_[now_ & kSlotMask]);
    for (auto& e : due) {
      if (e.cancelled) continue;
      PARATICK_DCHECK(e.expires <= now_);
      --live_;
      ++fired_;
      e.cb();
    }
  }
}

std::optional<std::uint64_t> TimerWheel::next_expiry() const {
  std::optional<std::uint64_t> best;
  for (const auto& slot : slots_) {
    for (const auto& e : slot) {
      if (e.cancelled) continue;
      if (!best || e.expires < *best) best = e.expires;
    }
  }
  return best;
}

}  // namespace paratick::guest
