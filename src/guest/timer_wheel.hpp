// Hierarchical timing wheel for guest soft timers (Linux's timer wheel).
//
// Classic cascading design: kLevels levels of kSlots slots, each level
// covering kSlots^level jiffies per slot. add/cancel are O(1) (an
// id -> slot-position index backs cancel, so cancelled timers are removed
// eagerly rather than left behind as tombstones); advancing one jiffy
// expires slot lists and occasionally cascades. next_expiry() supports
// NO_HZ-style "when is the next soft interrupt" queries (paper
// Figure 1b / 3c).
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/inline_callback.hpp"
#include "sim/types.hpp"

namespace paratick::guest {

class TimerWheel {
 public:
  using Callback = sim::InlineCallback;
  using TimerId = std::uint64_t;

  static constexpr unsigned kLevels = 5;
  static constexpr unsigned kSlotBits = 6;
  static constexpr unsigned kSlots = 1u << kSlotBits;  // 64

  /// Schedule `cb` to fire at absolute jiffy `expires` (clamped to the
  /// wheel's horizon). Returns an id usable with cancel().
  TimerId add(std::uint64_t expires_jiffy, Callback cb);

  /// Cancel a pending timer; returns true if it had not fired yet. O(1).
  bool cancel(TimerId id);

  /// Advance the wheel to `now_jiffy`, firing every expired timer.
  /// Fired callbacks are invoked in expiry order per slot.
  void advance(std::uint64_t now_jiffy);

  /// Earliest pending expiry (absolute jiffy), if any. May be
  /// conservative (early) for timers parked in high levels, which is
  /// exactly how Linux's NO_HZ query behaves. O(levels): answered from
  /// per-level earliest-expiry hints maintained on add/cancel/cascade,
  /// not by scanning the slots (NO_HZ queries this on every idle entry).
  [[nodiscard]] std::optional<std::uint64_t> next_expiry() const;

  /// Reference implementation of next_expiry() that scans every entry in
  /// every slot. Exposed so tests can assert hint == brute force under
  /// randomized add/cancel/advance sequences.
  [[nodiscard]] std::optional<std::uint64_t> next_expiry_scan() const;

  [[nodiscard]] std::size_t pending_count() const { return live_; }
  [[nodiscard]] std::uint64_t current_jiffy() const { return now_; }
  [[nodiscard]] std::uint64_t fired_count() const { return fired_; }

  /// Entries physically present in the wheel (== pending_count(): cancel
  /// erases eagerly, so nothing is ever stranded). Exposed for tests.
  [[nodiscard]] std::size_t allocated_entries() const { return index_.size(); }

 private:
  struct Entry {
    TimerId id;
    std::uint64_t expires;
    Callback cb;
  };
  using Slot = std::list<Entry>;

  /// Sentinel slot index meaning "in firing_, mid-expiry".
  static constexpr std::size_t kFiringSlot = ~std::size_t{0};

  struct Position {
    std::size_t slot;  // index into slots_, or kFiringSlot
    Slot::iterator it;
  };

  void insert(Entry e, std::uint64_t min_expiry);
  [[nodiscard]] static unsigned level_for(std::uint64_t delta);
  void note_removed(unsigned level, std::uint64_t expires);

  std::vector<Slot> slots_ = std::vector<Slot>(kLevels * kSlots);
  std::unordered_map<TimerId, Position> index_;
  /// expires -> live entry count, per level: the earliest-expiry hint
  /// backing the O(levels) next_expiry(). Excludes the firing_ list,
  /// mirroring what a slot scan sees mid-expiry.
  std::array<std::map<std::uint64_t, std::uint32_t>, kLevels> level_expiries_;
  Slot firing_;  // slot being expired; member so cancel() can reach it
  std::uint64_t now_ = 0;
  TimerId next_id_ = 1;
  std::size_t live_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace paratick::guest
