// Calibrated cost model for VMX transitions and host-side work.
//
// Direct costs approximate measured KVM exit round-trips on Skylake-era
// hardware; the `indirect` term models the cache/TLB pollution an exit
// leaves behind (the dominant real-world cost, cf. paper §6 and [32]).
// All values are plain data so the ablation benches can sweep them; the
// calibration against the paper's aggregate tables is recorded in
// EXPERIMENTS.md.
#pragma once

#include "hw/vmx.hpp"
#include "sim/types.hpp"

namespace paratick::hv {

struct ExitCostModel {
  sim::Cycles external_interrupt{2600};
  sim::Cycles msr_write{3500};  // TSC_DEADLINE intercept re-arms KVM's timer
  sim::Cycles preemption_timer{1500};  // cheaper than a full LAPIC intercept (§3)
  sim::Cycles hlt{3000};
  sim::Cycles io_instruction{6500};
  sim::Cycles hypercall{1800};
  sim::Cycles pause{500};
  sim::Cycles other{2200};

  /// Cache/TLB pollution charged once per exit on top of the direct cost.
  sim::Cycles indirect{13000};
  /// VM-entry transition (VMRESUME + state load).
  sim::Cycles vmentry{800};
  /// Extra entry work when an interrupt is injected.
  sim::Cycles injection{400};

  [[nodiscard]] constexpr sim::Cycles direct_for(hw::ExitReason r) const {
    switch (r) {
      case hw::ExitReason::kExternalInterrupt: return external_interrupt;
      case hw::ExitReason::kMsrWrite: return msr_write;
      case hw::ExitReason::kPreemptionTimer: return preemption_timer;
      case hw::ExitReason::kHlt: return hlt;
      case hw::ExitReason::kIoInstruction: return io_instruction;
      case hw::ExitReason::kHypercall: return hypercall;
      case hw::ExitReason::kPause: return pause;
      case hw::ExitReason::kOther: return other;
      case hw::ExitReason::kCount: break;
    }
    return other;
  }

  /// Full cost of one exit: transition + handling + pollution.
  [[nodiscard]] constexpr sim::Cycles total_for(hw::ExitReason r) const {
    return direct_for(r) + indirect;
  }
};

struct HostCostModel {
  sim::Cycles tick_work{3500};     // host scheduler-tick processing
  sim::Cycles sched_out{2500};     // descheduling a vCPU
  sim::Cycles sched_in{2500};      // scheduling a vCPU back in
  sim::Cycles wake_vcpu{3500};     // kvm_vcpu_kick / wait-queue wake path
  sim::Cycles hrtimer_fire{1500};  // host hrtimer for a descheduled vCPU's deadline
  sim::SimTime wake_latency = sim::SimTime::us(2);  // wake event -> VM entry
};

}  // namespace paratick::hv
