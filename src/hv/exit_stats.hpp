// VM-exit accounting, by fine-grained cause and per VM.
//
// This is the paper's primary metric (§6: "VM exits are the main source
// of host-level hardware-assisted virtualization overhead").
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hw/vmx.hpp"

namespace paratick::hv {

class ExitStats {
 public:
  void record(hw::ExitCause cause, std::uint32_t vm_id) {
    ++by_cause_[static_cast<std::size_t>(cause)];
    if (vm_id >= per_vm_.size()) per_vm_.resize(vm_id + 1);
    ++per_vm_[vm_id][static_cast<std::size_t>(cause)];
  }

  [[nodiscard]] std::uint64_t count(hw::ExitCause cause) const {
    return by_cause_[static_cast<std::size_t>(cause)];
  }

  [[nodiscard]] std::uint64_t count_reason(hw::ExitReason reason) const {
    std::uint64_t n = 0;
    for (std::size_t c = 0; c < hw::kExitCauseCount; ++c) {
      if (hw::reason_for(static_cast<hw::ExitCause>(c)) == reason) n += by_cause_[c];
    }
    return n;
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t n = 0;
    for (auto c : by_cause_) n += c;
    return n;
  }

  [[nodiscard]] std::uint64_t timer_related() const {
    std::uint64_t n = 0;
    for (std::size_t c = 0; c < hw::kExitCauseCount; ++c) {
      if (hw::is_timer_related(static_cast<hw::ExitCause>(c))) n += by_cause_[c];
    }
    return n;
  }

  [[nodiscard]] std::uint64_t total_for_vm(std::uint32_t vm_id) const {
    if (vm_id >= per_vm_.size()) return 0;
    std::uint64_t n = 0;
    for (auto c : per_vm_[vm_id]) n += c;
    return n;
  }

  [[nodiscard]] std::uint64_t count_for_vm(std::uint32_t vm_id, hw::ExitCause cause) const {
    if (vm_id >= per_vm_.size()) return 0;
    return per_vm_[vm_id][static_cast<std::size_t>(cause)];
  }

 private:
  using CauseArray = std::array<std::uint64_t, hw::kExitCauseCount>;
  CauseArray by_cause_{};
  std::vector<CauseArray> per_vm_;
};

}  // namespace paratick::hv
