#include "hv/kvm.hpp"

#include <algorithm>
#include <utility>

#include "fault/injector.hpp"
#include "sim/check.hpp"
#include "sim/log.hpp"

namespace paratick::hv {

namespace {
constexpr auto kLogDebug = sim::LogLevel::kDebug;
}  // namespace

// ---------------------------------------------------------------------------
// The per-vCPU port adapter guest code drives.
// ---------------------------------------------------------------------------

class KvmVcpuPort final : public VcpuPort {
 public:
  KvmVcpuPort(Kvm& kvm, Vcpu& vcpu) : kvm_(kvm), vcpu_(vcpu) {}

  [[nodiscard]] sim::SimTime now() const override { return kvm_.engine().now(); }
  [[nodiscard]] int vcpu_index() const override { return vcpu_.index_in_vm(); }

  void run(sim::Cycles c, hw::CycleCategory cat, std::function<void()> done) override {
    kvm_.port_run(vcpu_, c, cat, std::move(done));
  }
  void write_tsc_deadline(std::optional<sim::SimTime> deadline,
                          std::function<void()> done) override {
    kvm_.port_write_tsc_deadline(vcpu_, deadline, std::move(done));
  }
  void hypercall(const HypercallRequest& req, std::function<void()> done) override {
    kvm_.port_hypercall(vcpu_, req, std::move(done));
  }
  void hlt() override { kvm_.port_hlt(vcpu_); }
  void iret() override { kvm_.port_iret(vcpu_); }
  void io_submit(const hw::IoRequest& req, std::function<void()> done) override {
    kvm_.port_io_submit(vcpu_, req, std::move(done));
  }
  std::vector<hw::IoRequest> drain_io_completions() override {
    return std::exchange(vcpu_.io_completions, {});
  }
  void io_ack(std::function<void()> done) override {
    kvm_.port_io_ack(vcpu_, std::move(done));
  }
  void send_ipi(int target, hw::Vector v, std::function<void()> done) override {
    kvm_.port_send_ipi(vcpu_, target, v, std::move(done));
  }
  void background_exit(std::function<void()> done) override {
    kvm_.port_background_exit(vcpu_, std::move(done));
  }
  void spin(sim::Cycles c, std::function<void()> done) override {
    kvm_.port_spin(vcpu_, c, std::move(done));
  }

 private:
  Kvm& kvm_;
  Vcpu& vcpu_;
};

// ---------------------------------------------------------------------------
// Construction / wiring
// ---------------------------------------------------------------------------

Kvm::Kvm(sim::Engine& engine, hw::Machine& machine, HostConfig config)
    : engine_(engine), machine_(machine), config_(config), rng_(config.seed) {
  tracer_.set_enabled(config_.trace);
  pcpus_.resize(machine.cpu_count());
  const sim::SimTime period = config_.host_tick_freq.period();
  for (std::size_t i = 0; i < pcpus_.size(); ++i) {
    const hw::CpuId cpu = static_cast<hw::CpuId>(i);
    // Deterministic per-CPU phase: avoids lock-step host ticks across CPUs,
    // as on a real host where per-CPU ticks are not synchronized.
    pcpus_[i].tick_phase =
        sim::SimTime::ns(static_cast<std::int64_t>(rng_.next_u64() %
                                                   static_cast<std::uint64_t>(
                                                       std::max<std::int64_t>(
                                                           period.nanoseconds(), 1))));
    pcpus_[i].host_tick = std::make_unique<hw::DeadlineTimer>(
        engine_, [this, cpu] { on_host_tick(cpu); });
  }
}

Kvm::~Kvm() = default;

Vm& Kvm::create_vm(const VmConfig& config) {
  const VmId id = static_cast<VmId>(vms_.size());
  auto vm = std::make_unique<Vm>(id, config);
  for (int i = 0; i < config.vcpus; ++i) {
    const VcpuId vid = static_cast<VcpuId>(vcpus_.size());
    auto* raw = new Vcpu(
        vid, i, vm.get(), engine_,
        [this, vid] { on_guest_timer_fire(*vcpus_[vid]); },
        [this, vid] { on_aux_timer_fire(*vcpus_[vid]); });
    vm->vcpus_.emplace_back(raw);
    vcpus_.push_back(raw);
    ports_.push_back(std::make_unique<KvmVcpuPort>(*this, *raw));

    // Home-CPU assignment: explicit pinning if given, else spread.
    if (static_cast<std::size_t>(i) < config.pinning.size()) {
      raw->home_pcpu = config.pinning[static_cast<std::size_t>(i)];
      PARATICK_CHECK_MSG(raw->home_pcpu < machine_.cpu_count(), "pinning out of range");
    } else {
      raw->home_pcpu = next_pin_ % static_cast<hw::CpuId>(machine_.cpu_count());
      ++next_pin_;
    }
    raw->halt_poll_window = config_.halt_poll_window;
    install_timer_faults(*raw);
    if (config_.sched_mode == SchedMode::kPinned) {
      // Pinned mode requires a dedicated physical CPU per vCPU.
      PARATICK_CHECK_MSG(vcpus_.size() <= machine_.cpu_count() ||
                             !config.pinning.empty(),
                         "pinned mode: more vCPUs than physical CPUs");
    }
  }
  vms_.push_back(std::move(vm));
  vm_disks_.resize(vms_.size(), nullptr);
  return *vms_.back();
}

void Kvm::set_fault_injector(fault::FaultInjector* injector) { fault_ = injector; }

void Kvm::install_timer_faults(Vcpu& vcpu) {
  // Filters are always installed and no-op while fault_ is null, so the
  // injector may be attached before or after VM creation.
  vcpu.guest_timer.set_fire_filter([this](sim::SimTime now) {
    hw::DeadlineTimer::FireDecision out;
    if (fault_ == nullptr) return out;
    const auto d = fault_->on_timer_fire(now);
    using Action = fault::FaultInjector::TimerDecision::Action;
    switch (d.action) {
      case Action::kDeliver:
        break;
      case Action::kDrop:
        out.action = hw::DeadlineTimer::FireDecision::Action::kDrop;
        break;
      case Action::kDefer:
        out.action = hw::DeadlineTimer::FireDecision::Action::kDefer;
        out.defer_until = d.defer_until;
        break;
    }
    return out;
  });
  vcpu.guest_timer.set_arm_filter([this, &vcpu](sim::SimTime deadline) {
    if (fault_ == nullptr) return deadline;
    return fault_->skew_deadline(static_cast<std::uint32_t>(vcpu.home_pcpu),
                                 engine_.now(), deadline);
  });
}

void Kvm::attach_guest(Vcpu& vcpu, GuestCpuIface* guest) {
  PARATICK_CHECK(guest != nullptr);
  vcpu.guest = guest;
}

VcpuPort& Kvm::port(const Vcpu& vcpu) { return *ports_[vcpu.id()]; }

void Kvm::attach_block_device(Vm& vm, hw::BlockDevice& device) {
  vm_disks_[vm.id()] = &device;
  device.set_completion_handler(
      [this, id = vm.id()](const hw::IoRequest& req) { on_block_completion(id, req); });
}

void Kvm::power_on_all() {
  for (Vcpu* vcpu : vcpus_) {
    PARATICK_CHECK_MSG(vcpu->guest != nullptr, "vCPU has no attached guest");
    vcpu->state = VcpuState::kReady;
    vcpu->ready_since = engine_.now();
    enqueue_ready(*vcpu);
  }
  for (hw::CpuId cpu = 0; cpu < static_cast<hw::CpuId>(pcpus_.size()); ++cpu) {
    try_dispatch(cpu);
  }
}

void Kvm::power_on_vm(Vm& vm) {
  for (int i = 0; i < vm.vcpu_count(); ++i) {
    Vcpu& vcpu = vm.vcpu(i);
    PARATICK_CHECK_MSG(vcpu.guest != nullptr, "vCPU has no attached guest");
    PARATICK_CHECK_MSG(vcpu.state == VcpuState::kUninitialized,
                       "power_on_vm: vCPU already powered");
    vcpu.state = VcpuState::kReady;
    vcpu.ready_since = engine_.now();
    enqueue_ready(vcpu);
  }
  for (int i = 0; i < vm.vcpu_count(); ++i) {
    try_dispatch(vm.vcpu(i).home_pcpu);
  }
}

void Kvm::freeze_vm(Vm& vm) {
  for (int i = 0; i < vm.vcpu_count(); ++i) {
    Vcpu& vcpu = vm.vcpu(i);
    switch (vcpu.state) {
      case VcpuState::kInGuest:
        pause_current(vcpu);  // charges partial work, cancels the completion
        break;
      case VcpuState::kHaltPolling:
        engine_.cancel(vcpu.halt_poll_end);
        break;
      case VcpuState::kReady:
        // Fold the open waiting interval so steal ground truth is complete.
        vcpu.steal_total += engine_.now() - vcpu.ready_since;
        break;
      case VcpuState::kInHost:     // pending continuations check state, drop out
      case VcpuState::kHalted:
      case VcpuState::kUninitialized:
        break;
    }
    vcpu.guest_timer.disarm();
    vcpu.aux_timer.disarm();
    vcpu.guest_deadline.reset();  // keeps the timer-liveness watchdog quiet
    const bool on_cpu = vcpu.on_pcpu();
    vcpu.state = VcpuState::kUninitialized;
    if (on_cpu) release_pcpu(vcpu);  // stale runqueue entries are skipped lazily
  }
}

// ---------------------------------------------------------------------------
// Cost helpers
// ---------------------------------------------------------------------------

void Kvm::charge_and_then(hw::CpuId cpu, hw::CycleCategory cat, sim::Cycles c,
                          sim::InlineCallback then) {
  PARATICK_DCHECK(cpu != kNoCpu);
  auto& pcpu = machine_.cpu(cpu);
  pcpu.charge_cycles(cat, c);
  engine_.schedule_after(pcpu.frequency().time_for(c), std::move(then));
}

// ---------------------------------------------------------------------------
// Guest segment management
// ---------------------------------------------------------------------------

void Kvm::pause_current(Vcpu& vcpu) {
  auto& cur = vcpu.current;
  if (!cur.active) return;
  engine_.cancel(cur.completion);
  const sim::SimTime elapsed = engine_.now() - cur.started;
  const auto freq = machine_.cpu(vcpu.pcpu).frequency();
  sim::Cycles done_cycles = freq.cycles_in(elapsed);
  if (done_cycles > cur.remaining) done_cycles = cur.remaining;
  machine_.cpu(vcpu.pcpu).charge_cycles(cur.category, done_cycles);
  cur.remaining -= done_cycles;
  cur.active = false;
  cur.suspended = true;
}

void Kvm::resume_current(Vcpu& vcpu) {
  auto& cur = vcpu.current;
  PARATICK_CHECK_MSG(cur.suspended, "resume without a suspended segment");
  cur.suspended = false;
  cur.active = true;
  cur.started = engine_.now();
  const auto freq = machine_.cpu(vcpu.pcpu).frequency();
  cur.completion =
      engine_.schedule_after(freq.time_for(cur.remaining), [this, &vcpu] {
        segment_complete(vcpu);
      });
}

void Kvm::segment_complete(Vcpu& vcpu) {
  auto& cur = vcpu.current;
  PARATICK_DCHECK(cur.active);
  machine_.cpu(vcpu.pcpu).charge_cycles(cur.category, cur.remaining);
  cur.remaining = sim::Cycles::zero();
  cur.active = false;
  cur.suspended = false;
  auto done = std::move(cur.done);
  cur.done = nullptr;
  done();
}

// ---------------------------------------------------------------------------
// The run loop: exits and entries
// ---------------------------------------------------------------------------

void Kvm::do_exit(Vcpu& vcpu, hw::ExitCause cause,
                  sim::InlineCallback host_work_then_entry) {
  PARATICK_CHECK_MSG(vcpu.state == VcpuState::kInGuest, "exit from a non-running vCPU");
  pause_current(vcpu);
  vcpu.state = VcpuState::kInHost;
  exits_.record(cause, vcpu.vm()->id());
  tracer_.record(engine_.now(), vcpu.id(), TraceKind::kExit,
                 static_cast<std::uint64_t>(cause));
  PARATICK_LOG(kLogDebug, engine_.now(), "kvm", "vcpu %u exit %s", vcpu.id(),
               std::string(hw::to_string(cause)).c_str());
  const sim::Cycles cost = config_.exit_costs.total_for(hw::reason_for(cause));
  charge_and_then(vcpu.pcpu, hw::CycleCategory::kExitOverhead, cost,
                  std::move(host_work_then_entry));
}

void Kvm::give_control_to_guest(Vcpu& vcpu) {
  if (vcpu.current.suspended) {
    resume_current(vcpu);
  } else if (!vcpu.booted) {
    vcpu.booted = true;
    vcpu.guest->power_on();
  } else {
    vcpu.guest->idle_resume();
  }
}

void Kvm::vmentry(Vcpu& vcpu, AfterEntry kind, std::function<void()> thunk) {
  if (vcpu.state == VcpuState::kUninitialized) {
    // Frozen (live migration) or powered off while an exit-path charge
    // was in flight: the host work completes, the entry finds the vCPU
    // gone and drops out. Any thunk continuation belongs to the frozen
    // guest and dies with it.
    return;
  }
  PARATICK_CHECK(vcpu.state == VcpuState::kInHost && vcpu.pcpu != kNoCpu);
  if (fault_ != nullptr) {
    const sim::SimTime burst = fault_->steal_burst();
    if (burst > sim::SimTime::zero()) {
      // Fault: the host scheduler preempts the entry path — the vCPU sits
      // in host context while another task runs (steal time), then the
      // entry is retried. Retries redraw, so bursts can chain (geometric).
      const auto freq = machine_.cpu(vcpu.pcpu).frequency();
      machine_.cpu(vcpu.pcpu).charge_cycles(hw::CycleCategory::kHostKernel,
                                            freq.cycles_in(burst));
      vcpu.steal_total += burst;
      engine_.schedule_after(
          burst, [this, &vcpu, kind, thunk = std::move(thunk)]() mutable {
            if (vcpu.state != VcpuState::kInHost) return;
            vmentry(vcpu, kind, std::move(thunk));
          });
      return;
    }
  }
  charge_and_then(
      vcpu.pcpu, hw::CycleCategory::kExitOverhead, config_.exit_costs.vmentry,
      [this, &vcpu, kind, thunk = std::move(thunk)]() mutable {
        // The vCPU may have been preempted/requeued while the entry cost was
        // being paid (shared mode); in that case the dispatch path will
        // re-enter later.
        if (vcpu.state != VcpuState::kInHost) return;

        paratick_entry_hook(vcpu);

        if (vcpu.guest_irqs_enabled && vcpu.pending.any_pending()) {
          const hw::Vector v = *vcpu.pending.ack();
          // Stash what the injection interrupts so iret can restore it.
          if (vcpu.current.suspended) {
            PARATICK_CHECK(kind == AfterEntry::kResume);
            vcpu.interrupted.push_back(SavedContext{vcpu.current.remaining,
                                                    vcpu.current.category,
                                                    std::move(vcpu.current.done)});
            vcpu.current = Vcpu::CurrentSegment{};
          } else if (kind == AfterEntry::kThunk) {
            vcpu.interrupted.push_back(
                SavedContext{sim::Cycles::zero(), hw::CycleCategory::kGuestUser,
                             std::move(thunk)});
          } else {
            vcpu.interrupted.push_back(SavedContext{
                sim::Cycles::zero(), hw::CycleCategory::kGuestUser,
                [this, &vcpu] { give_control_to_guest(vcpu); }});
          }
          vcpu.guest_irqs_enabled = false;
          ++vcpu.injections;
          tracer_.record(engine_.now(), vcpu.id(), TraceKind::kInjection, v);
          // Stay in host context while the injection cost is paid so that
          // async events in this window queue instead of double-exiting.
          charge_and_then(vcpu.pcpu, hw::CycleCategory::kExitOverhead,
                          config_.exit_costs.injection, [&vcpu, v] {
                            if (vcpu.state != VcpuState::kInHost) return;  // frozen
                            vcpu.state = VcpuState::kInGuest;
                            vcpu.guest->handle_interrupt(v);
                          });
          return;
        }

        vcpu.state = VcpuState::kInGuest;
        tracer_.record(engine_.now(), vcpu.id(), TraceKind::kEntry, 0);
        if (kind == AfterEntry::kThunk) {
          thunk();
        } else {
          give_control_to_guest(vcpu);
        }
      });
}

// ---------------------------------------------------------------------------
// Port operations (synchronous guest->host requests)
// ---------------------------------------------------------------------------

void Kvm::port_run(Vcpu& vcpu, sim::Cycles c, hw::CycleCategory cat,
                   std::function<void()> done) {
  PARATICK_CHECK(vcpu.state == VcpuState::kInGuest);
  PARATICK_CHECK_MSG(!vcpu.current.active && !vcpu.current.suspended,
                     "run() while a segment is outstanding");
  PARATICK_CHECK(c >= sim::Cycles::zero());
  auto& cur = vcpu.current;
  cur.active = true;
  cur.suspended = false;
  cur.started = engine_.now();
  cur.total = c;
  cur.remaining = c;
  cur.category = cat;
  cur.done = std::move(done);
  const auto freq = machine_.cpu(vcpu.pcpu).frequency();
  cur.completion =
      engine_.schedule_after(freq.time_for(c), [this, &vcpu] { segment_complete(vcpu); });
}

void Kvm::port_write_tsc_deadline(Vcpu& vcpu, std::optional<sim::SimTime> deadline,
                                  std::function<void()> done) {
  PARATICK_CHECK(vcpu.state == VcpuState::kInGuest && !vcpu.current.active);
  do_exit(vcpu, hw::ExitCause::kGuestTimerArm,
          [this, &vcpu, deadline, done = std::move(done)]() mutable {
            // KVM tracks the guest deadline and backs it with the
            // preemption timer (running) or a host hrtimer (descheduled);
            // both are the same DeadlineTimer here.
            if (deadline) {
              vcpu.guest_deadline = *deadline;
              vcpu.guest_timer.arm(*deadline);
            } else {
              vcpu.guest_deadline.reset();
              vcpu.guest_timer.disarm();
            }
            vmentry(vcpu, AfterEntry::kThunk, std::move(done));
          });
}

void Kvm::port_hypercall(Vcpu& vcpu, const HypercallRequest& req,
                         std::function<void()> done) {
  PARATICK_CHECK(vcpu.state == VcpuState::kInGuest && !vcpu.current.active);
  do_exit(vcpu, hw::ExitCause::kHypercall,
          [this, &vcpu, req, done = std::move(done)]() mutable {
            if (req.kind == HypercallRequest::Kind::kDeclareTickFreq) {
              vcpu.paratick_enabled = req.enable_paratick;
              vcpu.paratick_period = req.guest_tick_period;
              vcpu.last_tick = engine_.now();
            }
            vmentry(vcpu, AfterEntry::kThunk, std::move(done));
          });
}

void Kvm::port_hlt(Vcpu& vcpu) {
  PARATICK_CHECK(vcpu.state == VcpuState::kInGuest && !vcpu.current.active);
  PARATICK_CHECK_MSG(vcpu.guest_irqs_enabled, "hlt with interrupts masked would hang");
  ++vcpu.halts;
  tracer_.record(engine_.now(), vcpu.id(), TraceKind::kHalt, 0);
  do_exit(vcpu, hw::ExitCause::kHalt, [this, &vcpu] {
    if (vcpu.state != VcpuState::kInHost) return;  // frozen mid-exit (migration)
    if (vcpu.pending.any_pending()) {
      // HLT with a wake already pending: return to the guest immediately.
      vmentry(vcpu, AfterEntry::kResume);
      return;
    }
    vcpu.halt_start = engine_.now();  // block-duration anchor for adaptation
    if (config_.halt_polling && vcpu.halt_poll_window > sim::SimTime::zero()) {
      vcpu.state = VcpuState::kHaltPolling;
      vcpu.halt_start = engine_.now();
      vcpu.halt_poll_end =
          engine_.schedule_after(vcpu.halt_poll_window, [this, &vcpu] {
            // Poll window expired without a wake: pay the polled cycles and
            // go properly to sleep.
            ++vcpu.poll_misses;
            const auto freq = machine_.cpu(vcpu.pcpu).frequency();
            machine_.cpu(vcpu.pcpu).charge_cycles(
                hw::CycleCategory::kHaltPoll, freq.cycles_in(vcpu.halt_poll_window));
            vcpu.state = VcpuState::kHalted;
            machine_.cpu(vcpu.pcpu).charge_cycles(hw::CycleCategory::kHostKernel,
                                                  config_.host_costs.sched_out);
            release_pcpu(vcpu);
          });
      return;
    }
    machine_.cpu(vcpu.pcpu).charge_cycles(hw::CycleCategory::kHostKernel,
                                          config_.host_costs.sched_out);
    vcpu.state = VcpuState::kHalted;
    release_pcpu(vcpu);
  });
}

void Kvm::port_iret(Vcpu& vcpu) {
  PARATICK_CHECK(vcpu.state == VcpuState::kInGuest);
  PARATICK_CHECK_MSG(!vcpu.interrupted.empty(), "iret with no interrupted context");
  if (vcpu.pending.any_pending()) {
    // Another vector is already pending: deliver it back-to-back without
    // unmasking (like consecutive interrupt frames). Hold the vCPU in
    // host context while the injection cost is paid.
    const hw::Vector v = *vcpu.pending.ack();
    ++vcpu.injections;
    vcpu.state = VcpuState::kInHost;
    charge_and_then(vcpu.pcpu, hw::CycleCategory::kExitOverhead,
                    config_.exit_costs.injection, [&vcpu, v] {
                      if (vcpu.state != VcpuState::kInHost) return;  // frozen
                      vcpu.state = VcpuState::kInGuest;
                      vcpu.guest->handle_interrupt(v);
                    });
    return;
  }
  vcpu.guest_irqs_enabled = true;
  SavedContext ctx = std::move(vcpu.interrupted.back());
  vcpu.interrupted.pop_back();
  if (ctx.remaining > sim::Cycles::zero()) {
    auto& cur = vcpu.current;
    PARATICK_CHECK(!cur.active && !cur.suspended);
    cur.suspended = true;
    cur.remaining = ctx.remaining;
    cur.total = ctx.remaining;
    cur.category = ctx.category;
    cur.done = std::move(ctx.done);
    resume_current(vcpu);
  } else {
    ctx.done();
  }
}

void Kvm::port_io_submit(Vcpu& vcpu, const hw::IoRequest& req,
                         std::function<void()> done) {
  PARATICK_CHECK(vcpu.state == VcpuState::kInGuest && !vcpu.current.active);
  do_exit(vcpu, hw::ExitCause::kIoKick,
          [this, &vcpu, req, done = std::move(done)]() mutable {
            hw::BlockDevice* disk = vm_disks_[vcpu.vm()->id()];
            PARATICK_CHECK_MSG(disk != nullptr, "VM has no attached block device");
            hw::IoRequest tagged = req;
            const std::uint64_t tag = next_io_tag_++;
            pending_io_.emplace(tag, PendingIo{&vcpu, req.cookie});
            tagged.cookie = tag;
            disk->submit(tagged);
            vmentry(vcpu, AfterEntry::kThunk, std::move(done));
          });
}

void Kvm::port_io_ack(Vcpu& vcpu, std::function<void()> done) {
  PARATICK_CHECK(vcpu.state == VcpuState::kInGuest && !vcpu.current.active);
  do_exit(vcpu, hw::ExitCause::kIoAck, [this, &vcpu, done = std::move(done)]() mutable {
    vmentry(vcpu, AfterEntry::kThunk, std::move(done));
  });
}

void Kvm::port_send_ipi(Vcpu& vcpu, int target_index, hw::Vector v,
                        std::function<void()> done) {
  PARATICK_CHECK(vcpu.state == VcpuState::kInGuest && !vcpu.current.active);
  Vm* vm = vcpu.vm();
  PARATICK_CHECK(target_index >= 0 && target_index < vm->vcpu_count());
  Vcpu& target = vm->vcpu(target_index);
  // Cross-socket IPIs pay the interconnect hop (NUMA wake penalty).
  const hw::CpuId src = vcpu.pcpu;
  const hw::CpuId dst = target.home_pcpu;
  const sim::SimTime hop = machine_.same_socket(src, dst)
                               ? sim::SimTime::zero()
                               : machine_.spec().cross_socket_penalty;
  do_exit(vcpu, hw::ExitCause::kIpiSend,
          [this, &target, v, hop, &vcpu, done = std::move(done)]() mutable {
            engine_.schedule_after(hop, [this, &target, v] {
              deliver_interrupt(target, v, hw::ExitCause::kWakeIpi);
            });
            vmentry(vcpu, AfterEntry::kThunk, std::move(done));
          });
}

void Kvm::port_background_exit(Vcpu& vcpu, std::function<void()> done) {
  PARATICK_CHECK(vcpu.state == VcpuState::kInGuest && !vcpu.current.active);
  do_exit(vcpu, hw::ExitCause::kBackground, [this, &vcpu, done = std::move(done)]() mutable {
    vmentry(vcpu, AfterEntry::kThunk, std::move(done));
  });
}

void Kvm::port_spin(Vcpu& vcpu, sim::Cycles c, std::function<void()> done) {
  if (!config_.pause_loop_exiting || c < config_.ple_window) {
    port_run(vcpu, c, hw::CycleCategory::kGuestUser, std::move(done));
    return;
  }
  // Burn one PLE window, take a pause exit, then continue spinning.
  const sim::Cycles window = config_.ple_window;
  port_run(vcpu, window, hw::CycleCategory::kGuestUser,
           [this, &vcpu, rest = c - window, done = std::move(done)]() mutable {
             do_exit(vcpu, hw::ExitCause::kPauseLoop,
                     [this, &vcpu, rest, done = std::move(done)]() mutable {
                       vmentry(vcpu, AfterEntry::kThunk,
                               [this, &vcpu, rest, done = std::move(done)]() mutable {
                                 port_spin(vcpu, rest, std::move(done));
                               });
                     });
           });
}

// ---------------------------------------------------------------------------
// Interrupt delivery and wakeups
// ---------------------------------------------------------------------------

void Kvm::deliver_interrupt(Vcpu& vcpu, hw::Vector vector, hw::ExitCause cause_if_running) {
  vcpu.pending.raise(vector);
  switch (vcpu.state) {
    case VcpuState::kInGuest:
      // Asynchronous interrupts always find guest code mid-segment (there
      // is no engine gap between segments in guest mode).
      PARATICK_CHECK_MSG(vcpu.current.active,
                         "interrupt delivered synchronously from guest context");
      do_exit(vcpu, cause_if_running, [this, &vcpu] { vmentry(vcpu, AfterEntry::kResume); });
      break;
    case VcpuState::kInHost:
    case VcpuState::kReady:
    case VcpuState::kUninitialized:
      break;  // will be injected at the pending/next VM entry
    case VcpuState::kHaltPolling: {
      // Poll hit: cheap wake without a schedule-out/in round trip.
      engine_.cancel(vcpu.halt_poll_end);
      ++vcpu.poll_hits;
      const sim::SimTime polled = engine_.now() - vcpu.halt_start;
      const auto freq = machine_.cpu(vcpu.pcpu).frequency();
      machine_.cpu(vcpu.pcpu).charge_cycles(hw::CycleCategory::kHaltPoll,
                                            freq.cycles_in(polled));
      vcpu.state = VcpuState::kInHost;
      ++vcpu.wakeups;
      vmentry(vcpu, AfterEntry::kResume);
      break;
    }
    case VcpuState::kHalted:
      wake_vcpu(vcpu);
      break;
  }
}

void Kvm::adapt_poll_window(Vcpu& vcpu, sim::SimTime block_duration) {
  if (!config_.halt_polling || !config_.halt_poll_adaptive) return;
  // KVM's halt_poll_ns heuristic: a block that a (max-sized) poll would
  // have absorbed grows the window; a long sleep shrinks it.
  if (block_duration <= config_.halt_poll_window) {
    const sim::SimTime grown =
        vcpu.halt_poll_window == sim::SimTime::zero()
            ? config_.halt_poll_window / 8
            : vcpu.halt_poll_window * static_cast<std::int64_t>(config_.halt_poll_grow);
    vcpu.halt_poll_window = std::min(grown, config_.halt_poll_window);
  } else {
    vcpu.halt_poll_window =
        vcpu.halt_poll_window / static_cast<std::int64_t>(config_.halt_poll_shrink);
  }
}

void Kvm::wake_vcpu(Vcpu& vcpu) {
  PARATICK_CHECK(vcpu.state == VcpuState::kHalted);
  ++vcpu.wakeups;
  adapt_poll_window(vcpu, engine_.now() - vcpu.halt_start);
  tracer_.record(engine_.now(), vcpu.id(), TraceKind::kWake,
                 vcpu.pending.pending_count());
  vcpu.state = VcpuState::kReady;
  vcpu.ready_since = engine_.now();
  machine_.cpu(vcpu.home_pcpu).charge_cycles(hw::CycleCategory::kHostKernel,
                                             config_.host_costs.wake_vcpu);
  enqueue_ready(vcpu);
  engine_.schedule_after(config_.host_costs.wake_latency,
                         [this, cpu = vcpu.home_pcpu] { try_dispatch(cpu); });
}

// ---------------------------------------------------------------------------
// Host CPU scheduling
// ---------------------------------------------------------------------------

void Kvm::enqueue_ready(Vcpu& vcpu) {
  if (vcpu.in_runqueue) return;
  vcpu.in_runqueue = true;
  pcpus_[vcpu.home_pcpu].runqueue.push_back(&vcpu);
}

void Kvm::try_dispatch(hw::CpuId cpu) {
  auto& st = pcpus_[cpu];
  while (st.occupant == nullptr && !st.runqueue.empty()) {
    Vcpu* next = st.runqueue.front();
    st.runqueue.pop_front();
    next->in_runqueue = false;
    if (next->state != VcpuState::kReady) continue;
    schedule_in(*next, cpu);
  }
}

void Kvm::schedule_in(Vcpu& vcpu, hw::CpuId cpu) {
  auto& st = pcpus_[cpu];
  PARATICK_CHECK(st.occupant == nullptr);
  st.occupant = &vcpu;
  vcpu.pcpu = cpu;
  vcpu.state = VcpuState::kInHost;
  vcpu.last_sched_in = engine_.now();
  // schedule_in is only reachable from kReady (try_dispatch filters), so
  // the waiting interval is well-defined: it is this vCPU's steal time.
  vcpu.steal_total += engine_.now() - vcpu.ready_since;
  tracer_.record(engine_.now(), vcpu.id(), TraceKind::kSchedIn, cpu);
  arm_host_tick(cpu);
  charge_and_then(cpu, hw::CycleCategory::kHostKernel, config_.host_costs.sched_in,
                  [this, &vcpu] {
                    if (vcpu.state == VcpuState::kInHost) {
                      vmentry(vcpu, AfterEntry::kResume);
                    }
                  });
}

void Kvm::release_pcpu(Vcpu& vcpu) {
  const hw::CpuId cpu = vcpu.pcpu;
  PARATICK_CHECK(cpu != kNoCpu);
  auto& st = pcpus_[cpu];
  PARATICK_CHECK(st.occupant == &vcpu);
  st.occupant = nullptr;
  tracer_.record(engine_.now(), vcpu.id(), TraceKind::kSchedOut, cpu);
  vcpu.pcpu = kNoCpu;
  vcpu.aux_timer.disarm();
  disarm_host_tick(cpu);
  try_dispatch(cpu);
}

// ---------------------------------------------------------------------------
// Host scheduler tick
// ---------------------------------------------------------------------------

void Kvm::arm_host_tick(hw::CpuId cpu) {
  auto& st = pcpus_[cpu];
  const sim::SimTime period = config_.host_tick_freq.period();
  // Next absolute grid point strictly after now.
  const sim::SimTime now = engine_.now();
  const std::int64_t p = period.nanoseconds();
  const std::int64_t phase = st.tick_phase.nanoseconds();
  const std::int64_t k = (now.nanoseconds() - phase) / p + 1;
  st.host_tick->arm(sim::SimTime::ns(phase + k * p));
}

void Kvm::disarm_host_tick(hw::CpuId cpu) { pcpus_[cpu].host_tick->disarm(); }

void Kvm::on_host_tick(hw::CpuId cpu) {
  auto& st = pcpus_[cpu];
  if (st.occupant == nullptr) return;  // raced with release; stay disarmed
  arm_host_tick(cpu);
  Vcpu& occ = *st.occupant;
  if (occ.state != VcpuState::kInGuest) {
    // Host context is already active; the tick costs host work, no exit.
    machine_.cpu(cpu).charge_cycles(hw::CycleCategory::kHostKernel,
                                    config_.host_costs.tick_work);
    return;
  }
  do_exit(occ, hw::ExitCause::kHostTick, [this, &occ, cpu] {
    charge_and_then(cpu, hw::CycleCategory::kHostKernel, config_.host_costs.tick_work,
                    [this, &occ, cpu] {
                      if (occ.state != VcpuState::kInHost) return;  // frozen
                      auto& state = pcpus_[cpu];
                      const bool slice_expired =
                          engine_.now() - occ.last_sched_in >= config_.timeslice;
                      if (config_.sched_mode == SchedMode::kShared &&
                          !state.runqueue.empty() && slice_expired) {
                        // Preempt: the guest segment stays suspended inside the
                        // vCPU until it is scheduled back in.
                        machine_.cpu(cpu).charge_cycles(hw::CycleCategory::kHostKernel,
                                                        config_.host_costs.sched_out);
                        occ.state = VcpuState::kReady;
                        occ.ready_since = engine_.now();
                        enqueue_ready(occ);
                        release_pcpu(occ);
                        return;
                      }
                      vmentry(occ, AfterEntry::kResume);
                    });
  });
}

// ---------------------------------------------------------------------------
// Guest timers
// ---------------------------------------------------------------------------

void Kvm::on_guest_timer_fire(Vcpu& vcpu) {
  vcpu.guest_deadline.reset();
  vcpu.pending.raise(hw::vectors::kLocalTimer);
  switch (vcpu.state) {
    case VcpuState::kInGuest:
      // KVM's preemption-timer optimization: a cheaper exit than a full
      // LAPIC-timer intercept (§3).
      do_exit(vcpu, hw::ExitCause::kGuestTimerFire,
              [this, &vcpu] { vmentry(vcpu, AfterEntry::kResume); });
      break;
    case VcpuState::kInHost:
    case VcpuState::kReady:
    case VcpuState::kUninitialized:
      break;
    case VcpuState::kHaltPolling: {
      engine_.cancel(vcpu.halt_poll_end);
      ++vcpu.poll_hits;
      const sim::SimTime polled = engine_.now() - vcpu.halt_start;
      const auto freq = machine_.cpu(vcpu.pcpu).frequency();
      machine_.cpu(vcpu.pcpu).charge_cycles(hw::CycleCategory::kHaltPoll,
                                            freq.cycles_in(polled));
      vcpu.state = VcpuState::kInHost;
      ++vcpu.wakeups;
      vmentry(vcpu, AfterEntry::kResume);
      break;
    }
    case VcpuState::kHalted: {
      // The vCPU is descheduled: its deadline is backed by a host hrtimer on
      // its home CPU. If another guest is running there, it takes the
      // interrupt as a VM exit — the §3.1 "suspended for a descheduled
      // vCPU's tick" effect.
      machine_.cpu(vcpu.home_pcpu).charge_cycles(hw::CycleCategory::kHostKernel,
                                                 config_.host_costs.hrtimer_fire);
      Vcpu* other = pcpus_[vcpu.home_pcpu].occupant;
      if (other != nullptr && other != &vcpu && other->state == VcpuState::kInGuest) {
        do_exit(*other, hw::ExitCause::kGuestTimerHostFire,
                [this, other] { vmentry(*other, AfterEntry::kResume); });
      }
      wake_vcpu(vcpu);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Paratick host side (paper Figure 2 + §4.1 frequency mismatch)
// ---------------------------------------------------------------------------

bool Kvm::tick_freq_compatible(const Vcpu& vcpu) const {
  const std::int64_t host_p = config_.host_tick_freq.period().nanoseconds();
  const std::int64_t guest_p = vcpu.paratick_period.nanoseconds();
  return host_p <= guest_p && guest_p % host_p == 0;
}

void Kvm::paratick_entry_hook(Vcpu& vcpu) {
  if (!vcpu.paratick_enabled) return;
  const sim::SimTime now = engine_.now();
  if (vcpu.pending.pending(hw::vectors::kLocalTimer)) {
    // A guest-programmed timer interrupt is about to be injected; Linux
    // performs basic timekeeping on any interrupt, so treat it as the tick
    // (the §5.1 heuristic).
    vcpu.last_tick = now;
  } else if (now - vcpu.last_tick >= vcpu.paratick_period) {
    if (fault_ != nullptr && fault_->delay_tick_injection()) {
      // Fault: the host misses this injection point. last_tick stays stale,
      // so the paratick is raised (late) at the next entry hook — delayed,
      // never lost, matching the §5 stale-tick tolerance argument.
    } else {
      vcpu.pending.raise(hw::vectors::kParatick);
      vcpu.last_tick = now;
    }
  }
  maybe_arm_aux_timer(vcpu);
}

void Kvm::maybe_arm_aux_timer(Vcpu& vcpu) {
  if (tick_freq_compatible(vcpu)) {
    vcpu.aux_timer.disarm();
    return;
  }
  // Host ticks alone cannot provide injection points at the guest's rate:
  // back the guest tick with the preemption timer (§4.1). A stale
  // last_tick (fault-delayed injection) would put the deadline in the
  // past; back the *next* slot instead so the delayed tick rides the next
  // natural entry or the next backstop, never an immediate-refire loop.
  sim::SimTime next = vcpu.last_tick + vcpu.paratick_period;
  if (next <= engine_.now()) next = engine_.now() + vcpu.paratick_period;
  vcpu.aux_timer.arm(next);
}

void Kvm::on_aux_timer_fire(Vcpu& vcpu) {
  if (vcpu.state != VcpuState::kInGuest) return;  // idle vCPUs get no virtual ticks
  do_exit(vcpu, hw::ExitCause::kAuxParatickTimer,
          [this, &vcpu] { vmentry(vcpu, AfterEntry::kResume); });
}

// ---------------------------------------------------------------------------
// Virtio-blk backend
// ---------------------------------------------------------------------------

void Kvm::on_block_completion(VmId vm, const hw::IoRequest& req) {
  (void)vm;
  auto it = pending_io_.find(req.cookie);
  PARATICK_CHECK_MSG(it != pending_io_.end(), "completion for unknown I/O tag");
  Vcpu* submitter = it->second.submitter;
  hw::IoRequest original = req;
  original.cookie = it->second.guest_cookie;
  pending_io_.erase(it);
  submitter->io_completions.push_back(original);
  deliver_interrupt(*submitter, hw::vectors::kBlockDevice,
                    hw::ExitCause::kDeviceCompletion);
}

}  // namespace paratick::hv
