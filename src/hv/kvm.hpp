// The KVM-like hypervisor: the paper's host side.
//
// Owns every vCPU's run loop: VM entries (with the paratick injection
// hook of Figure 2), VM exits with a calibrated cost model, HLT/wake
// handling (with optional halt polling), host scheduler ticks, and the
// host CPU scheduler in both pinned (paper's §6 setup) and time-shared
// (overcommit, §3.1) modes.
//
// Guest code runs in continuation-passing style: the guest kernel asks
// its VcpuPort to consume cycles or touch virtual hardware, and Kvm
// advances simulated time, pausing and resuming guest segments around
// exits exactly where a real VMX transition would preempt the guest.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "hv/cost_model.hpp"
#include "hv/exit_stats.hpp"
#include "hv/port.hpp"
#include "hv/trace.hpp"
#include "hv/vcpu.hpp"
#include "hv/vm.hpp"
#include "hw/block_device.hpp"
#include "hw/deadline_timer.hpp"
#include "hw/machine.hpp"
#include "hw/vmx.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace paratick::fault {
class FaultInjector;
}  // namespace paratick::fault

namespace paratick::hv {

enum class SchedMode : std::uint8_t {
  kPinned,  // one vCPU per physical CPU (the paper's evaluation setup)
  kShared,  // vCPUs time-share physical CPUs (overcommit scenarios, §3.1)
};

struct HostConfig {
  sim::Frequency host_tick_freq{250.0};
  bool halt_polling = false;                          // paper disables it (§6)
  sim::SimTime halt_poll_window = sim::SimTime::us(50);
  /// KVM-style adaptive sizing of the per-vCPU poll window: successful
  /// polls and short blocks grow it, long blocks shrink it.
  bool halt_poll_adaptive = false;
  unsigned halt_poll_grow = 2;
  unsigned halt_poll_shrink = 2;
  bool pause_loop_exiting = false;                    // paper disables it (§6)
  sim::Cycles ple_window{8192};                       // spin length that triggers one PLE exit
  SchedMode sched_mode = SchedMode::kPinned;
  sim::SimTime timeslice = sim::SimTime::ms(6);       // shared-mode slice
  ExitCostModel exit_costs;
  HostCostModel host_costs;
  std::uint64_t seed = 42;
  bool trace = false;  // record a perf-kvm-stat-style event trace
};

class Kvm {
 public:
  Kvm(sim::Engine& engine, hw::Machine& machine, HostConfig config);
  ~Kvm();

  Kvm(const Kvm&) = delete;
  Kvm& operator=(const Kvm&) = delete;

  /// Create a VM with `config.vcpus` virtual CPUs; assigns home pCPUs.
  Vm& create_vm(const VmConfig& config);

  /// Wire a guest CPU implementation to a vCPU (must precede power_on).
  void attach_guest(Vcpu& vcpu, GuestCpuIface* guest);

  /// Port through which guest code drives a given vCPU.
  [[nodiscard]] VcpuPort& port(const Vcpu& vcpu);

  /// Attach a block device whose completions are routed back into `vm`.
  void attach_block_device(Vm& vm, hw::BlockDevice& device);

  /// Boot every vCPU of every VM (schedules the initial VM entries).
  void power_on_all();

  /// Boot one VM's vCPUs. Legal mid-run — the live-migration destination
  /// path: the cluster layer attaches an incarnation to a running host
  /// and powers it on when the blackout window ends.
  void power_on_vm(Vm& vm);

  /// Park one VM's vCPUs for good (live-migration source): guest
  /// segments pause in place, timers disarm, physical CPUs are released
  /// to the runqueue. The VM stops generating events; its accumulated
  /// stats (exits, steal) remain collectable. In-flight continuations
  /// see kUninitialized and drop out, as do interrupt deliveries.
  void freeze_vm(Vm& vm);

  /// Install a fault injector (chaos testing). Covers steal bursts on VM
  /// entry, delayed paratick injection, and — through per-vCPU timer
  /// filters — lost/late/coalesced deadline interrupts and TSC drift.
  /// Pass nullptr to detach. The injector must outlive the Kvm.
  void set_fault_injector(fault::FaultInjector* injector);

  [[nodiscard]] const ExitStats& exits() const { return exits_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const HostConfig& config() const { return config_; }
  [[nodiscard]] hw::Machine& machine() { return machine_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Vm>>& vms() const { return vms_; }

  // ---- internal operations, public for the port implementation & tests ----

  /// Interrupt delivery from any source (device, IPI, timers).
  void deliver_interrupt(Vcpu& vcpu, hw::Vector vector, hw::ExitCause cause_if_running);

  void port_run(Vcpu& vcpu, sim::Cycles c, hw::CycleCategory cat, std::function<void()> done);
  void port_write_tsc_deadline(Vcpu& vcpu, std::optional<sim::SimTime> deadline,
                               std::function<void()> done);
  void port_hypercall(Vcpu& vcpu, const HypercallRequest& req, std::function<void()> done);
  void port_hlt(Vcpu& vcpu);
  void port_iret(Vcpu& vcpu);
  void port_io_submit(Vcpu& vcpu, const hw::IoRequest& req, std::function<void()> done);
  void port_io_ack(Vcpu& vcpu, std::function<void()> done);
  void port_send_ipi(Vcpu& vcpu, int target_index, hw::Vector v, std::function<void()> done);
  void port_background_exit(Vcpu& vcpu, std::function<void()> done);
  void port_spin(Vcpu& vcpu, sim::Cycles c, std::function<void()> done);

 private:
  struct PcpuState {
    Vcpu* occupant = nullptr;
    std::deque<Vcpu*> runqueue;  // shared mode: Ready vCPUs waiting for this pCPU
    std::unique_ptr<hw::DeadlineTimer> host_tick;
    sim::SimTime tick_phase;
  };

  // --- time/cost helpers ---
  // Continuations on the exit/entry hot path are sim::InlineCallback:
  // every capture lives in the event slot, no per-exit heap allocation.
  // (The public port API keeps std::function — those `done` completions
  // are captured *into* the inline continuations below.)
  void charge_and_then(hw::CpuId cpu, hw::CycleCategory cat, sim::Cycles c,
                       sim::InlineCallback then);

  // --- segment management ---
  void pause_current(Vcpu& vcpu);
  void resume_current(Vcpu& vcpu);
  void segment_complete(Vcpu& vcpu);

  // --- the run loop ---
  // After a VM entry, control either resumes whatever the exit interrupted
  // (kResume: a suspended segment, or the guest idle loop) or continues an
  // explicit thunk (kThunk: a synchronous port-op completion).
  enum class AfterEntry : std::uint8_t { kResume, kThunk };
  void vmentry(Vcpu& vcpu, AfterEntry kind, std::function<void()> thunk = nullptr);
  void do_exit(Vcpu& vcpu, hw::ExitCause cause, sim::InlineCallback host_work_then_entry);
  void give_control_to_guest(Vcpu& vcpu);

  // --- scheduling ---
  void schedule_in(Vcpu& vcpu, hw::CpuId cpu);
  void release_pcpu(Vcpu& vcpu);
  void enqueue_ready(Vcpu& vcpu);
  void try_dispatch(hw::CpuId cpu);
  void wake_vcpu(Vcpu& vcpu);
  void adapt_poll_window(Vcpu& vcpu, sim::SimTime block_duration);

  // --- host tick ---
  void arm_host_tick(hw::CpuId cpu);
  void disarm_host_tick(hw::CpuId cpu);
  void on_host_tick(hw::CpuId cpu);

  // --- timers ---
  void on_guest_timer_fire(Vcpu& vcpu);
  void on_aux_timer_fire(Vcpu& vcpu);
  void maybe_arm_aux_timer(Vcpu& vcpu);
  [[nodiscard]] bool tick_freq_compatible(const Vcpu& vcpu) const;

  // --- paratick host hook (Figure 2) ---
  void paratick_entry_hook(Vcpu& vcpu);

  // --- fault injection ---
  void install_timer_faults(Vcpu& vcpu);

  // --- devices ---
  void on_block_completion(VmId vm, const hw::IoRequest& req);

  sim::Engine& engine_;
  hw::Machine& machine_;
  HostConfig config_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::vector<std::unique_ptr<VcpuPort>> ports_;  // indexed by global vcpu id
  std::vector<Vcpu*> vcpus_;                      // indexed by global vcpu id
  std::vector<PcpuState> pcpus_;
  std::vector<hw::BlockDevice*> vm_disks_;        // indexed by vm id (nullable)
  struct PendingIo {
    Vcpu* submitter;
    std::uint64_t guest_cookie;
  };
  std::unordered_map<std::uint64_t, PendingIo> pending_io_;
  std::uint64_t next_io_tag_ = 1;
  ExitStats exits_;
  Tracer tracer_;
  hw::CpuId next_pin_ = 0;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace paratick::hv
