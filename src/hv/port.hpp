// The hypervisor/guest boundary.
//
// VcpuPort is what guest-kernel code "executes on": consuming CPU,
// touching timer hardware (which triggers VM exits), halting, submitting
// I/O. GuestCpuIface is what the hypervisor calls back into: boot and
// interrupt delivery. Keeping both as pure interfaces lets the guest
// module stay free of hypervisor internals and makes the tick policies
// unit-testable against a mock port.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "hw/block_device.hpp"
#include "hw/cycle_ledger.hpp"
#include "hw/interrupt.hpp"
#include "sim/types.hpp"

namespace paratick::hv {

/// Guest->host service request (paper §4.1: the guest declares its tick
/// frequency during boot through a hypercall).
struct HypercallRequest {
  enum class Kind : std::uint8_t { kDeclareTickFreq } kind = Kind::kDeclareTickFreq;
  sim::SimTime guest_tick_period = sim::SimTime::ms(4);
  bool enable_paratick = false;
};

/// Everything a virtual CPU lets guest code do. All operations complete
/// asynchronously via `done` so that the simulation clock can advance;
/// implementations must never invoke `done` synchronously.
class VcpuPort {
 public:
  virtual ~VcpuPort() = default;

  [[nodiscard]] virtual sim::SimTime now() const = 0;
  [[nodiscard]] virtual int vcpu_index() const = 0;

  /// Consume `c` guest cycles attributed to `cat`, then call `done`.
  /// The segment may be transparently paused/resumed around VM exits.
  virtual void run(sim::Cycles c, hw::CycleCategory cat, std::function<void()> done) = 0;

  /// Write the TSC_DEADLINE MSR (nullopt = 0 = disarm). Always costs a VM
  /// exit — the whole point of the paper.
  virtual void write_tsc_deadline(std::optional<sim::SimTime> deadline,
                                  std::function<void()> done) = 0;

  /// Issue a hypercall (costs a VM exit).
  virtual void hypercall(const HypercallRequest& req, std::function<void()> done) = 0;

  /// Halt until the next interrupt. No continuation: execution resumes
  /// inside GuestCpuIface::handle_interrupt.
  virtual void hlt() = 0;

  /// Return from interrupt: unmask and resume whatever was interrupted.
  virtual void iret() = 0;

  /// Submit block I/O (costs an I/O exit); completion arrives later as a
  /// kBlockDevice interrupt. `done` resumes the submitting code path.
  virtual void io_submit(const hw::IoRequest& req, std::function<void()> done) = 0;

  /// Drain completed I/O requests (reading the virtio used ring — no exit).
  virtual std::vector<hw::IoRequest> drain_io_completions() = 0;

  /// Acknowledge a device interrupt (virtio ISR access) — costs an exit.
  virtual void io_ack(std::function<void()> done) = 0;

  /// Send an IPI to a sibling vCPU of the same VM.
  virtual void send_ipi(int target_vcpu_index, hw::Vector v, std::function<void()> done) = 0;

  /// Model a non-timer "background" VM exit (page fault, cpuid, ...).
  virtual void background_exit(std::function<void()> done) = 0;

  /// Busy-wait for `c` cycles (lock spinning). With pause-loop exiting
  /// enabled on the host, long spins additionally cost PLE exits.
  virtual void spin(sim::Cycles c, std::function<void()> done) = 0;
};

/// The hypervisor's view of one guest CPU.
class GuestCpuIface {
 public:
  virtual ~GuestCpuIface() = default;

  /// Called once when the vCPU first enters guest mode.
  virtual void power_on() = 0;

  /// An interrupt was injected. Guest interrupts are masked until the
  /// handler calls VcpuPort::iret().
  virtual void handle_interrupt(hw::Vector v) = 0;

  /// Control returned to the idle loop after a HLT was interrupted
  /// (conceptually: the instruction after `hlt` in the idle loop).
  virtual void idle_resume() = 0;
};

}  // namespace paratick::hv
