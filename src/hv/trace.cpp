#include "hv/trace.hpp"

#include <cstdio>

namespace paratick::hv {

std::vector<TraceEvent> Tracer::chronological() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  if (!wrapped_) {
    out = events_;
    return out;
  }
  const std::size_t head = next_overwrite_ % capacity_;
  out.insert(out.end(), events_.begin() + static_cast<std::ptrdiff_t>(head),
             events_.end());
  out.insert(out.end(), events_.begin(),
             events_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

std::string Tracer::to_csv() const {
  std::string csv;
  if (wrapped_) {
    char hdr[96];
    std::snprintf(hdr, sizeof hdr, "# dropped %llu of %llu events (ring wrapped)\n",
                  static_cast<unsigned long long>(dropped()),
                  static_cast<unsigned long long>(total_));
    csv += hdr;
  }
  csv += "time_us,vcpu,kind,detail\n";
  char line[128];
  for (const auto& e : chronological()) {
    std::string detail;
    switch (e.kind) {
      case TraceKind::kExit:
        detail = hw::to_string(static_cast<hw::ExitCause>(e.arg));
        break;
      case TraceKind::kInjection:
        detail = "vector " + std::to_string(e.arg);
        break;
      default:
        detail = std::to_string(e.arg);
        break;
    }
    std::snprintf(line, sizeof line, "%.3f,%u,%s,%s\n", e.at.microseconds(), e.vcpu,
                  std::string(to_string(e.kind)).c_str(), detail.c_str());
    csv += line;
  }
  return csv;
}

void Tracer::clear() {
  events_.clear();
  next_overwrite_ = 0;
  wrapped_ = false;
  total_ = 0;
}

}  // namespace paratick::hv
