// Run-loop event tracing: a bounded record of VM entries/exits,
// injections, halts and wakes, dumpable as CSV — the simulator's
// equivalent of `perf kvm stat record`.
//
// Disabled by default (HostConfig::trace) and bounded, so enabling it on
// long runs keeps the newest events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/vmx.hpp"
#include "sim/types.hpp"

namespace paratick::hv {

enum class TraceKind : std::uint8_t {
  kExit,       // arg = ExitCause
  kEntry,      // arg = 0
  kInjection,  // arg = vector
  kHalt,       // arg = 0
  kWake,       // arg = pending vector count
  kSchedIn,    // arg = physical CPU
  kSchedOut,   // arg = physical CPU
};

[[nodiscard]] constexpr std::string_view to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kExit: return "exit";
    case TraceKind::kEntry: return "entry";
    case TraceKind::kInjection: return "inject";
    case TraceKind::kHalt: return "halt";
    case TraceKind::kWake: return "wake";
    case TraceKind::kSchedIn: return "sched-in";
    case TraceKind::kSchedOut: return "sched-out";
  }
  return "?";
}

struct TraceEvent {
  sim::SimTime at;
  std::uint32_t vcpu;
  TraceKind kind;
  std::uint64_t arg;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 16) : capacity_(capacity) {}

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(sim::SimTime at, std::uint32_t vcpu, TraceKind kind, std::uint64_t arg) {
    if (!enabled_) return;
    if (events_.size() < capacity_) {
      events_.push_back({at, vcpu, kind, arg});
    } else {
      events_[next_overwrite_ % capacity_] = {at, vcpu, kind, arg};
      ++next_overwrite_;
      wrapped_ = true;
    }
    ++total_;
  }

  /// Events in chronological order (reassembled across the ring wrap).
  [[nodiscard]] std::vector<TraceEvent> chronological() const;

  /// CSV with header: time_us,vcpu,kind,detail. When the ring wrapped, a
  /// "# dropped N of M events (ring wrapped)" comment line leads the
  /// output so a truncated trace can never pass as a complete one.
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] bool wrapped() const { return wrapped_; }
  /// Events lost to the ring wrap (0 until capacity is exceeded).
  [[nodiscard]] std::uint64_t dropped() const { return total_ - events_.size(); }
  void clear();

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  bool wrapped_ = false;
  std::vector<TraceEvent> events_;
  std::size_t next_overwrite_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace paratick::hv
