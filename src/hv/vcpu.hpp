// The hypervisor-side representation of a virtual CPU.
//
// Mirrors the relevant parts of KVM's kvm_vcpu, including the `last_tick`
// field paratick adds (§5.1). The execution context (a paused guest code
// segment plus a stack of interrupted contexts) is what lets the
// event-driven simulator pause guest code around VM exits.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "hw/block_device.hpp"
#include "hw/cycle_ledger.hpp"
#include "hw/deadline_timer.hpp"
#include "hw/interrupt.hpp"
#include "hw/machine.hpp"
#include "sim/types.hpp"

namespace paratick::hv {

class GuestCpuIface;

using VcpuId = std::uint32_t;
inline constexpr hw::CpuId kNoCpu = static_cast<hw::CpuId>(-1);

enum class VcpuState : std::uint8_t {
  kUninitialized,
  kInGuest,      // executing guest code on a physical CPU
  kInHost,       // on a physical CPU, but in VMM context (exit handling / entry)
  kHaltPolling,  // halted but still burning its physical CPU in kvm_vcpu_halt
  kHalted,       // blocked in the host; physical CPU released
  kReady,        // runnable, waiting for a physical CPU (overcommit)
};

[[nodiscard]] constexpr std::string_view to_string(VcpuState s) {
  switch (s) {
    case VcpuState::kUninitialized: return "uninitialized";
    case VcpuState::kInGuest: return "in-guest";
    case VcpuState::kInHost: return "in-host";
    case VcpuState::kHaltPolling: return "halt-polling";
    case VcpuState::kHalted: return "halted";
    case VcpuState::kReady: return "ready";
  }
  return "?";
}

/// A paused piece of guest execution: either a partially-run CPU segment
/// (remaining > 0) or a bare continuation (remaining == 0).
struct SavedContext {
  sim::Cycles remaining;
  hw::CycleCategory category = hw::CycleCategory::kGuestUser;
  std::function<void()> done;
};

class Vm;

class Vcpu {
 public:
  Vcpu(VcpuId id, int index_in_vm, Vm* vm, sim::Engine& engine,
       hw::DeadlineTimer::Callback on_guest_timer_fire,
       hw::DeadlineTimer::Callback on_aux_timer_fire)
      : guest_timer(engine, std::move(on_guest_timer_fire)),
        aux_timer(engine, std::move(on_aux_timer_fire)),
        id_(id),
        index_(index_in_vm),
        vm_(vm) {}

  Vcpu(const Vcpu&) = delete;
  Vcpu& operator=(const Vcpu&) = delete;

  [[nodiscard]] VcpuId id() const { return id_; }
  [[nodiscard]] int index_in_vm() const { return index_; }
  [[nodiscard]] Vm* vm() const { return vm_; }

  // --- scheduling ---
  VcpuState state = VcpuState::kUninitialized;
  hw::CpuId pcpu = kNoCpu;       // where it currently runs (kInGuest/kInHost)
  hw::CpuId home_pcpu = kNoCpu;  // affinity (pinned mode: always here)
  sim::SimTime last_sched_in;    // for timeslice accounting in shared mode

  // --- interrupt/injection state ---
  hw::InterruptController pending;  // vectors awaiting injection
  bool guest_irqs_enabled = true;   // guest-side IF flag (masked in handlers)

  // --- guest timer as tracked by KVM (TSC_DEADLINE intercept, §3) ---
  std::optional<sim::SimTime> guest_deadline;
  hw::DeadlineTimer guest_timer;

  // --- paratick host-side state (§5.1) ---
  bool paratick_enabled = false;
  sim::SimTime paratick_period = sim::SimTime::ms(4);
  sim::SimTime last_tick;  // the kvm_vcpu.last_tick field the paper adds
  hw::DeadlineTimer aux_timer;  // frequency-mismatch injection timer (§4.1)

  // --- execution context ---
  struct CurrentSegment {
    bool active = false;        // a completion event is outstanding
    bool suspended = false;     // paused with `remaining` cycles left
    sim::SimTime started;
    sim::Cycles total;
    sim::Cycles remaining;
    hw::CycleCategory category = hw::CycleCategory::kGuestUser;
    sim::EventId completion;
    std::function<void()> done;
  };
  CurrentSegment current;
  std::vector<SavedContext> interrupted;  // stack of guest-visible interruptions

  // --- halt bookkeeping ---
  sim::SimTime halt_start;
  sim::EventId halt_poll_end;
  /// Current adaptive poll window (grown/shrunk like KVM's halt_poll_ns).
  sim::SimTime halt_poll_window;
  std::uint64_t poll_hits = 0;
  std::uint64_t poll_misses = 0;

  // --- lifecycle / scheduling flags ---
  bool booted = false;       // first VM entry boots the guest
  bool in_runqueue = false;  // guards double-enqueue in shared mode

  // --- virtio completion queue (guest drains via its port) ---
  std::vector<hw::IoRequest> io_completions;

  // --- wiring ---
  GuestCpuIface* guest = nullptr;

  // --- statistics ---
  std::uint64_t injections = 0;
  std::uint64_t halts = 0;
  std::uint64_t wakeups = 0;

  // --- steal-time ground truth (hypervisor side) ---
  // Runnable-but-not-running: accumulated while kReady (set at every
  // transition into kReady, folded into steal_total at schedule_in), plus
  // injected vmentry steal bursts. This is what /proc/stat steal would
  // report; the guest-side estimator is judged against it.
  sim::SimTime ready_since;
  sim::SimTime steal_total;

  [[nodiscard]] bool on_pcpu() const {
    return state == VcpuState::kInGuest || state == VcpuState::kInHost ||
           state == VcpuState::kHaltPolling;
  }

 private:
  VcpuId id_;
  int index_;
  Vm* vm_;
};

}  // namespace paratick::hv
