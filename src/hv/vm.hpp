// A virtual machine: a set of vCPUs plus its virtual block device state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hv/vcpu.hpp"

namespace paratick::hv {

using VmId = std::uint32_t;

struct VmConfig {
  int vcpus = 1;
  /// Preferred physical CPUs (pinning targets); empty = hypervisor picks.
  std::vector<hw::CpuId> pinning;
  /// Which parallel-engine partition this VM belongs to. The scenario
  /// layer assigns it when it partitions a workload across engines
  /// (core/parallel_scenario); 0 for ordinary single-engine runs — the
  /// hypervisor itself never reads it.
  std::uint32_t partition_key = 0;
};

class Vm {
 public:
  Vm(VmId id, VmConfig config) : id_(id), config_(std::move(config)) {}

  [[nodiscard]] VmId id() const { return id_; }
  [[nodiscard]] const VmConfig& config() const { return config_; }

  [[nodiscard]] int vcpu_count() const { return static_cast<int>(vcpus_.size()); }
  [[nodiscard]] Vcpu& vcpu(int index) { return *vcpus_[static_cast<std::size_t>(index)]; }
  [[nodiscard]] const Vcpu& vcpu(int index) const {
    return *vcpus_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] std::vector<std::unique_ptr<Vcpu>>& vcpus() { return vcpus_; }

 private:
  friend class Kvm;
  VmId id_;
  VmConfig config_;
  std::vector<std::unique_ptr<Vcpu>> vcpus_;
};

}  // namespace paratick::hv
