#include "hw/block_device.hpp"

#include <utility>

#include "sim/check.hpp"

namespace paratick::hw {

BlockDeviceSpec BlockDeviceSpec::nvme() {
  BlockDeviceSpec s;
  s.read_latency = sim::SimTime::us(12);
  s.write_latency = sim::SimTime::us(18);
  s.random_read_penalty = sim::SimTime::us(3);
  s.random_write_penalty = sim::SimTime::us(2);
  s.read_bandwidth_gbps = 3.2;
  s.write_bandwidth_gbps = 2.6;
  return s;
}

BlockDeviceSpec BlockDeviceSpec::hdd() {
  BlockDeviceSpec s;
  s.read_latency = sim::SimTime::ms(4);
  s.write_latency = sim::SimTime::ms(5);
  s.random_read_penalty = sim::SimTime::ms(6);
  s.random_write_penalty = sim::SimTime::ms(6);
  s.read_bandwidth_gbps = 0.18;
  s.write_bandwidth_gbps = 0.16;
  return s;
}

sim::SimTime BlockDevice::mean_service_time(IoDir dir, IoPattern pattern,
                                            std::uint32_t bytes) const {
  sim::SimTime access = dir == IoDir::kRead ? spec_.read_latency : spec_.write_latency;
  if (pattern == IoPattern::kRandom) {
    access += dir == IoDir::kRead ? spec_.random_read_penalty : spec_.random_write_penalty;
  }
  const double gbps =
      dir == IoDir::kRead ? spec_.read_bandwidth_gbps : spec_.write_bandwidth_gbps;
  const auto transfer_ns = static_cast<std::int64_t>(static_cast<double>(bytes) / gbps);
  return access + sim::SimTime::ns(transfer_ns);
}

void BlockDevice::submit(const IoRequest& req) {
  PARATICK_CHECK_MSG(req.bytes > 0, "zero-byte I/O request");
  queue_.push_back(req);
  if (!busy_) start_next();
}

void BlockDevice::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  IoRequest req = queue_.front();
  queue_.pop_front();

  const sim::SimTime mean = mean_service_time(req.dir, req.pattern, req.bytes);
  const auto jitter_ns = static_cast<std::int64_t>(
      static_cast<double>(mean.nanoseconds()) * spec_.latency_jitter);
  sim::SimTime service = rng_.normal_time(mean, sim::SimTime::ns(jitter_ns));

  if (fault_hook_) {
    const FaultOutcome fault = fault_hook_(req);
    req.failed = fault.fail;
    if (fault.latency_factor != 1.0) {
      service = sim::SimTime::ns(static_cast<std::int64_t>(
          static_cast<double>(service.nanoseconds()) * fault.latency_factor));
    }
  }

  engine_.schedule_after(service, [this, req] { finish(req); });
  service_us_.add(service.microseconds());
}

void BlockDevice::finish(IoRequest req) {
  ++completed_;
  if (req.failed) {
    ++failed_;
  } else {
    bytes_done_ += req.bytes;
  }
  // Kick off the next request before the completion callback so that a
  // handler that immediately resubmits sees correct queue state.
  start_next();
  if (on_complete_) on_complete_(req);
}

}  // namespace paratick::hw
