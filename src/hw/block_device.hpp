// Block storage device model: a single-server queue with a calibrated
// latency/bandwidth profile.
//
// Substitutes for the paper's SATA-SSD test device (§6.3, no SR-IOV).
// Service time = fixed access latency (reads cheaper than writes, random
// access pays a small penalty) + transfer time at the device bandwidth.
// Requests queue FIFO while the device is busy; completion invokes a
// callback that the virtio backend turns into a guest interrupt.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace paratick::hw {

enum class IoDir : std::uint8_t { kRead, kWrite };
enum class IoPattern : std::uint8_t { kSequential, kRandom };

struct IoRequest {
  IoDir dir = IoDir::kRead;
  IoPattern pattern = IoPattern::kSequential;
  std::uint32_t bytes = 4096;
  std::uint64_t cookie = 0;  // opaque tag the submitter gets back
  bool failed = false;       // set by fault injection; completion = error
};

struct BlockDeviceSpec {
  sim::SimTime read_latency = sim::SimTime::us(30);
  sim::SimTime write_latency = sim::SimTime::us(50);
  sim::SimTime random_read_penalty = sim::SimTime::us(12);
  sim::SimTime random_write_penalty = sim::SimTime::us(8);
  double read_bandwidth_gbps = 1.6;   // GB/s for the transfer term
  double write_bandwidth_gbps = 1.3;
  double latency_jitter = 0.08;  // relative stddev on the access latency

  /// Mid-range SATA SSD without SR-IOV — the paper's device class.
  [[nodiscard]] static BlockDeviceSpec sata_ssd() { return BlockDeviceSpec{}; }
  /// Fast NVMe profile (paper §6.3 outlook: lower-latency devices).
  [[nodiscard]] static BlockDeviceSpec nvme();
  /// Spinning disk profile (paper §4.2: high-latency device, little benefit).
  [[nodiscard]] static BlockDeviceSpec hdd();
};

class BlockDevice {
 public:
  using CompletionFn = std::function<void(const IoRequest&)>;

  BlockDevice(sim::Engine& engine, BlockDeviceSpec spec, sim::Rng rng)
      : engine_(engine), spec_(spec), rng_(rng) {}

  void set_completion_handler(CompletionFn fn) { on_complete_ = std::move(fn); }

  /// Fault-injection hook: consulted as each request starts service.
  /// `fail` completes the request as an error; `latency_factor` scales
  /// its service time (latency spike).
  struct FaultOutcome {
    bool fail = false;
    double latency_factor = 1.0;
  };
  using FaultHook = std::function<FaultOutcome(const IoRequest&)>;
  void set_fault_hook(FaultHook fn) { fault_hook_ = std::move(fn); }

  /// Enqueue a request. Completion fires after queueing + service time.
  void submit(const IoRequest& req);

  /// Deterministic mean service time for a request shape (no jitter);
  /// exposed for the analytic model and for tests.
  [[nodiscard]] sim::SimTime mean_service_time(IoDir dir, IoPattern pattern,
                                               std::uint32_t bytes) const;

  [[nodiscard]] std::uint64_t completed_requests() const { return completed_; }
  [[nodiscard]] std::uint64_t completed_bytes() const { return bytes_done_; }
  /// Requests completed with an injected error (subset of completed).
  [[nodiscard]] std::uint64_t failed_requests() const { return failed_; }
  [[nodiscard]] const sim::Accumulator& service_times_us() const { return service_us_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size() + (busy_ ? 1u : 0u); }

 private:
  void start_next();
  void finish(IoRequest req);

  sim::Engine& engine_;
  BlockDeviceSpec spec_;
  sim::Rng rng_;
  CompletionFn on_complete_;
  FaultHook fault_hook_;
  std::deque<IoRequest> queue_;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t bytes_done_ = 0;
  std::uint64_t failed_ = 0;
  sim::Accumulator service_us_;
};

}  // namespace paratick::hw
