// Per-CPU cycle accounting by category.
//
// The "system throughput" metric of the paper (§6: CPU cycles measured
// with perf) is reconstructed from this ledger: every nanosecond a
// physical CPU is occupied is attributed to exactly one category, and
// the metrics layer checks conservation (busy + idle == wall time).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/types.hpp"

namespace paratick::hw {

enum class CycleCategory : std::uint8_t {
  kGuestUser = 0,    // workload computation inside the guest
  kGuestKernel,      // guest kernel work: irq handlers, tick work, scheduler, idle path
  kExitOverhead,     // VMX transitions + KVM exit handling (direct + indirect cost)
  kHostKernel,       // host tick work, host scheduler decisions
  kHaltPoll,         // cycles burnt polling in kvm_vcpu_halt
  kIdle,             // physical CPU unoccupied
  kCount,
};

[[nodiscard]] constexpr std::string_view to_string(CycleCategory c) {
  switch (c) {
    case CycleCategory::kGuestUser: return "guest-user";
    case CycleCategory::kGuestKernel: return "guest-kernel";
    case CycleCategory::kExitOverhead: return "exit-overhead";
    case CycleCategory::kHostKernel: return "host-kernel";
    case CycleCategory::kHaltPoll: return "halt-poll";
    case CycleCategory::kIdle: return "idle";
    case CycleCategory::kCount: break;
  }
  return "?";
}

inline constexpr std::size_t kCycleCategoryCount =
    static_cast<std::size_t>(CycleCategory::kCount);

class CycleLedger {
 public:
  void charge(CycleCategory cat, sim::Cycles c) {
    totals_[static_cast<std::size_t>(cat)] += c;
  }

  [[nodiscard]] sim::Cycles total(CycleCategory cat) const {
    return totals_[static_cast<std::size_t>(cat)];
  }

  /// Sum of all non-idle categories.
  [[nodiscard]] sim::Cycles busy_total() const {
    sim::Cycles sum;
    for (std::size_t i = 0; i < kCycleCategoryCount; ++i) {
      if (static_cast<CycleCategory>(i) != CycleCategory::kIdle) sum += totals_[i];
    }
    return sum;
  }

  /// Sum over every category including idle.
  [[nodiscard]] sim::Cycles grand_total() const {
    sim::Cycles sum;
    for (const auto& t : totals_) sum += t;
    return sum;
  }

  void merge(const CycleLedger& other) {
    for (std::size_t i = 0; i < kCycleCategoryCount; ++i) totals_[i] += other.totals_[i];
  }

 private:
  std::array<sim::Cycles, kCycleCategoryCount> totals_{};
};

}  // namespace paratick::hw
