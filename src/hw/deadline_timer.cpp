#include "hw/deadline_timer.hpp"

#include <algorithm>

namespace paratick::hw {

void DeadlineTimer::arm(sim::SimTime deadline) {
  disarm();
  deferred_ = false;  // a re-arm is a fresh expiry: new fault decision
  if (arm_filter_) deadline = arm_filter_(deadline);
  const sim::SimTime when = std::max(deadline, engine_.now());
  deadline_ = when;
  event_ = engine_.schedule_at(when, [this] { fire(); });
}

void DeadlineTimer::disarm() {
  if (deadline_) {
    engine_.cancel(event_);
    deadline_.reset();
  }
}

void DeadlineTimer::fire() {
  // One fault decision per armed expiry: a deferred fire delivers when it
  // lands instead of being re-filtered (which would postpone forever at
  // high fault rates).
  if (fire_filter_ && !deferred_) {
    const FireDecision d = fire_filter_(engine_.now());
    if (d.action == FireDecision::Action::kDrop) {
      deadline_.reset();
      ++drops_;
      return;
    }
    if (d.action == FireDecision::Action::kDefer &&
        d.defer_until > engine_.now()) {
      deadline_ = d.defer_until;
      deferred_ = true;
      event_ = engine_.schedule_at(d.defer_until, [this] { fire(); });
      return;
    }
  }
  deferred_ = false;
  deadline_.reset();
  ++fires_;
  on_fire_();
}

}  // namespace paratick::hw
