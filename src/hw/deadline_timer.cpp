#include "hw/deadline_timer.hpp"

#include <algorithm>

namespace paratick::hw {

void DeadlineTimer::arm(sim::SimTime deadline) {
  disarm();
  const sim::SimTime when = std::max(deadline, engine_.now());
  deadline_ = when;
  event_ = engine_.schedule_at(when, [this] { fire(); });
}

void DeadlineTimer::disarm() {
  if (deadline_) {
    engine_.cancel(event_);
    deadline_.reset();
  }
}

void DeadlineTimer::fire() {
  deadline_.reset();
  ++fires_;
  on_fire_();
}

}  // namespace paratick::hw
