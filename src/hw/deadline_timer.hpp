// One-shot deadline timer backed by the simulation engine.
//
// Models both the LAPIC timer in TSC-deadline mode and the VMX
// preemption timer: arm it at an absolute time, it fires once and calls
// back. Re-arming replaces the previous deadline (like writing the
// TSC_DEADLINE MSR again); arming at 0 / disarm() cancels.
#pragma once

#include <functional>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "sim/inline_callback.hpp"
#include "sim/types.hpp"

namespace paratick::hw {

class DeadlineTimer {
 public:
  /// Inline (allocation-free) like every engine callback; the fault
  /// filters below stay std::function — they are cold configuration.
  using Callback = sim::InlineCallback;

  /// Fault-injection hook: consulted when an armed deadline expires.
  /// kDrop loses the interrupt (the timer disarms without firing); kDefer
  /// re-arms it for `defer_until` (late or coalesced delivery).
  struct FireDecision {
    enum class Action : std::uint8_t { kFire, kDrop, kDefer };
    Action action = Action::kFire;
    sim::SimTime defer_until;
  };
  using FireFilter = std::function<FireDecision(sim::SimTime now)>;

  /// Fault-injection hook: maps the requested deadline to the one the
  /// (possibly drifting) hardware actually arms.
  using ArmFilter = std::function<sim::SimTime(sim::SimTime deadline)>;

  DeadlineTimer(sim::Engine& engine, Callback on_fire)
      : engine_(engine), on_fire_(std::move(on_fire)) {}

  DeadlineTimer(const DeadlineTimer&) = delete;
  DeadlineTimer& operator=(const DeadlineTimer&) = delete;

  /// Arm (or re-arm) to fire at absolute `deadline`. A deadline in the
  /// past fires immediately-next (like real TSC-deadline hardware, which
  /// fires as soon as TSC >= deadline).
  void arm(sim::SimTime deadline);

  /// Cancel any pending expiry.
  void disarm();

  [[nodiscard]] bool armed() const { return deadline_.has_value(); }
  [[nodiscard]] std::optional<sim::SimTime> deadline() const { return deadline_; }

  /// Total number of times the timer has fired (for tests/metrics).
  [[nodiscard]] std::uint64_t fire_count() const { return fires_; }
  /// Number of expiries lost to a kDrop fire-filter decision.
  [[nodiscard]] std::uint64_t drop_count() const { return drops_; }

  void set_fire_filter(FireFilter f) { fire_filter_ = std::move(f); }
  void set_arm_filter(ArmFilter f) { arm_filter_ = std::move(f); }

 private:
  void fire();

  sim::Engine& engine_;
  Callback on_fire_;
  std::optional<sim::SimTime> deadline_;
  sim::EventId event_;
  std::uint64_t fires_ = 0;
  std::uint64_t drops_ = 0;
  bool deferred_ = false;  // current expiry already took its fault decision
  FireFilter fire_filter_;
  ArmFilter arm_filter_;
};

}  // namespace paratick::hw
