#include "hw/interrupt.hpp"

#include <bit>

namespace paratick::hw {

namespace {
constexpr std::size_t word(Vector v) { return v >> 6; }
constexpr std::uint64_t bit(Vector v) { return std::uint64_t{1} << (v & 63); }
}  // namespace

bool InterruptController::raise(Vector v) {
  const bool was = (irr_[word(v)] & bit(v)) != 0;
  irr_[word(v)] |= bit(v);
  return !was;
}

std::optional<Vector> InterruptController::highest_pending() const {
  for (int w = 3; w >= 0; --w) {
    const std::uint64_t x = irr_[static_cast<std::size_t>(w)];
    if (x != 0) {
      const int msb = 63 - std::countl_zero(x);
      return static_cast<Vector>(w * 64 + msb);
    }
  }
  return std::nullopt;
}

std::optional<Vector> InterruptController::ack() {
  auto v = highest_pending();
  if (v) clear(*v);
  return v;
}

bool InterruptController::pending(Vector v) const { return (irr_[word(v)] & bit(v)) != 0; }

bool InterruptController::any_pending() const {
  return (irr_[0] | irr_[1] | irr_[2] | irr_[3]) != 0;
}

unsigned InterruptController::pending_count() const {
  unsigned n = 0;
  for (auto x : irr_) n += static_cast<unsigned>(std::popcount(x));
  return n;
}

void InterruptController::clear(Vector v) { irr_[word(v)] &= ~bit(v); }

void InterruptController::clear_all() { irr_.fill(0); }

}  // namespace paratick::hw
