// Interrupt vectors and a per-CPU pending-interrupt controller.
//
// Vector numbering follows Linux/x86 conventions: the local APIC timer
// lives at 0xEC (236) and paratick reserves 235 for virtual scheduler
// ticks, exactly as the paper's §5.1 describes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

namespace paratick::hw {

using Vector = std::uint8_t;

/// Well-known interrupt vectors used by the model.
namespace vectors {
inline constexpr Vector kLocalTimer = 236;    // LOCAL_TIMER_VECTOR (0xEC) in Linux
inline constexpr Vector kParatick = 235;      // reserved by paratick (§5.1)
inline constexpr Vector kRescheduleIpi = 253; // wake-up / resched IPI
inline constexpr Vector kBlockDevice = 96;    // virtio-blk completion
inline constexpr Vector kSpurious = 255;
}  // namespace vectors

/// Pending-interrupt state of one (v)CPU: a 256-bit IRR-like bitmap.
/// Higher vectors have higher priority, as on real x86 APICs.
class InterruptController {
 public:
  /// Mark `v` pending. Returns true if it was not already pending.
  bool raise(Vector v);

  /// Highest-priority pending vector, if any (does not clear it).
  [[nodiscard]] std::optional<Vector> highest_pending() const;

  /// Acknowledge: clear and return the highest-priority pending vector.
  std::optional<Vector> ack();

  [[nodiscard]] bool pending(Vector v) const;
  [[nodiscard]] bool any_pending() const;
  [[nodiscard]] unsigned pending_count() const;
  void clear(Vector v);
  void clear_all();

 private:
  std::array<std::uint64_t, 4> irr_{};
};

}  // namespace paratick::hw
