#include "hw/machine.hpp"

#include "sim/check.hpp"

namespace paratick::hw {

Machine::Machine(const MachineSpec& spec) : spec_(spec) {
  PARATICK_CHECK_MSG(spec.sockets > 0 && spec.cpus_per_socket > 0,
                     "machine must have at least one CPU");
  cpus_.reserve(spec.total_cpus());
  for (std::uint32_t s = 0; s < spec.sockets; ++s) {
    for (std::uint32_t c = 0; c < spec.cpus_per_socket; ++c) {
      cpus_.emplace_back(static_cast<CpuId>(cpus_.size()), s, spec.frequency);
    }
  }
}

CycleLedger Machine::combined_ledger() const {
  CycleLedger combined;
  for (const auto& cpu : cpus_) combined.merge(cpu.ledger());
  return combined;
}

}  // namespace paratick::hw
