// Physical machine topology: sockets of CPUs with a uniform clock.
//
// Mirrors the paper's testbed shape (a 4-socket NUMA server, 20 CPUs per
// socket); NUMA placement affects the guest scheduler's wake-up IPI cost
// through a small cross-socket penalty.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/cycle_ledger.hpp"
#include "sim/types.hpp"

namespace paratick::hw {

using CpuId = std::uint32_t;

struct MachineSpec {
  std::uint32_t sockets = 4;
  std::uint32_t cpus_per_socket = 20;
  sim::CpuFrequency frequency{2.0};  // GHz
  /// Extra wake-up latency when the waker and wakee sit on different sockets.
  sim::SimTime cross_socket_penalty = sim::SimTime::ns(300);

  [[nodiscard]] std::uint32_t total_cpus() const { return sockets * cpus_per_socket; }

  /// Paper's evaluation machine: 4 sockets x 20 CPUs.
  [[nodiscard]] static MachineSpec paper_testbed() { return MachineSpec{}; }
  [[nodiscard]] static MachineSpec small(std::uint32_t cpus) {
    return MachineSpec{1, cpus, sim::CpuFrequency{2.0}, sim::SimTime::ns(0)};
  }
};

/// One physical CPU: identity, placement and its cycle ledger.
///
/// Occupancy itself is managed by the hypervisor scheduler; the CPU object
/// records who last charged time and keeps the accounting honest.
class PhysicalCpu {
 public:
  PhysicalCpu(CpuId id, std::uint32_t socket, sim::CpuFrequency freq)
      : id_(id), socket_(socket), freq_(freq) {}

  [[nodiscard]] CpuId id() const { return id_; }
  [[nodiscard]] std::uint32_t socket() const { return socket_; }
  [[nodiscard]] sim::CpuFrequency frequency() const { return freq_; }

  /// Attribute `span` of wall time on this CPU to `cat`.
  void charge_time(CycleCategory cat, sim::SimTime span) {
    ledger_.charge(cat, freq_.cycles_in(span));
  }
  void charge_cycles(CycleCategory cat, sim::Cycles c) { ledger_.charge(cat, c); }

  [[nodiscard]] const CycleLedger& ledger() const { return ledger_; }

 private:
  CpuId id_;
  std::uint32_t socket_;
  sim::CpuFrequency freq_;
  CycleLedger ledger_;
};

/// The set of physical CPUs.
class Machine {
 public:
  explicit Machine(const MachineSpec& spec);

  [[nodiscard]] const MachineSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t cpu_count() const { return cpus_.size(); }
  [[nodiscard]] PhysicalCpu& cpu(CpuId id) { return cpus_[id]; }
  [[nodiscard]] const PhysicalCpu& cpu(CpuId id) const { return cpus_[id]; }
  [[nodiscard]] std::vector<PhysicalCpu>& cpus() { return cpus_; }
  [[nodiscard]] const std::vector<PhysicalCpu>& cpus() const { return cpus_; }

  /// Combined ledger over all CPUs.
  [[nodiscard]] CycleLedger combined_ledger() const;

  [[nodiscard]] bool same_socket(CpuId a, CpuId b) const {
    return cpus_[a].socket() == cpus_[b].socket();
  }

 private:
  MachineSpec spec_;
  std::vector<PhysicalCpu> cpus_;
};

}  // namespace paratick::hw
