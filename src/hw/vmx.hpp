// VMX exit taxonomy.
//
// ExitReason mirrors the hardware-architected basic exit reasons the paper
// discusses; ExitCause is a finer software-side attribution (what the
// event *was*), used to split "timer-related" exits from the rest the way
// the paper's §6 analysis does.
#pragma once

#include <cstdint>
#include <string_view>

namespace paratick::hw {

enum class ExitReason : std::uint8_t {
  kExternalInterrupt = 0,  // host tick / device irq / IPI arrived in guest mode
  kMsrWrite,               // guest wrote TSC_DEADLINE
  kPreemptionTimer,        // VMX preemption timer (KVM's guest-timer optimization)
  kHlt,                    // guest executed HLT
  kIoInstruction,          // virtio kick / port I/O
  kHypercall,              // vmcall (paratick tick-frequency declaration)
  kPause,                  // pause-loop exiting
  kOther,                  // page faults, cpuid, ... (background noise)
  kCount,
};

inline constexpr std::size_t kExitReasonCount = static_cast<std::size_t>(ExitReason::kCount);

[[nodiscard]] constexpr std::string_view to_string(ExitReason r) {
  switch (r) {
    case ExitReason::kExternalInterrupt: return "external-interrupt";
    case ExitReason::kMsrWrite: return "msr-write";
    case ExitReason::kPreemptionTimer: return "preemption-timer";
    case ExitReason::kHlt: return "hlt";
    case ExitReason::kIoInstruction: return "io-instruction";
    case ExitReason::kHypercall: return "hypercall";
    case ExitReason::kPause: return "pause";
    case ExitReason::kOther: return "other";
    case ExitReason::kCount: break;
  }
  return "?";
}

enum class ExitCause : std::uint8_t {
  kHostTick = 0,        // host scheduler tick interrupted the guest
  kGuestTimerArm,       // guest (re)programmed its TSC deadline
  kGuestTimerFire,      // guest tick deadline expired (preemption timer)
  kGuestTimerHostFire,  // a descheduled vCPU's timer interrupted a running guest (§3.1)
  kAuxParatickTimer,    // paratick frequency-mismatch auxiliary timer
  kHalt,                // guest went idle
  kIoKick,              // guest submitted block I/O
  kIoAck,               // guest acknowledged a completion (virtio ISR/used-ring access)
  kDeviceCompletion,    // device completion interrupt hit a running guest
  kIpiSend,             // guest wrote the APIC ICR to send a wake IPI
  kWakeIpi,             // resched/wake IPI hit a running guest
  kHypercall,
  kPauseLoop,
  kBackground,          // modeled background exits (page faults etc.)
  kCount,
};

inline constexpr std::size_t kExitCauseCount = static_cast<std::size_t>(ExitCause::kCount);

[[nodiscard]] constexpr std::string_view to_string(ExitCause c) {
  switch (c) {
    case ExitCause::kHostTick: return "host-tick";
    case ExitCause::kGuestTimerArm: return "guest-timer-arm";
    case ExitCause::kGuestTimerFire: return "guest-timer-fire";
    case ExitCause::kGuestTimerHostFire: return "guest-timer-host-fire";
    case ExitCause::kAuxParatickTimer: return "aux-paratick-timer";
    case ExitCause::kHalt: return "halt";
    case ExitCause::kIoKick: return "io-kick";
    case ExitCause::kIoAck: return "io-ack";
    case ExitCause::kDeviceCompletion: return "device-completion";
    case ExitCause::kIpiSend: return "ipi-send";
    case ExitCause::kWakeIpi: return "wake-ipi";
    case ExitCause::kHypercall: return "hypercall";
    case ExitCause::kPauseLoop: return "pause-loop";
    case ExitCause::kBackground: return "background";
    case ExitCause::kCount: break;
  }
  return "?";
}

/// The paper's "VM exits related to timer management" (§3, §6): arming
/// the guest tick timer, delivering guest ticks, delivering host ticks,
/// and the paratick auxiliary timer.
[[nodiscard]] constexpr bool is_timer_related(ExitCause c) {
  return c == ExitCause::kHostTick || c == ExitCause::kGuestTimerArm ||
         c == ExitCause::kGuestTimerFire || c == ExitCause::kGuestTimerHostFire ||
         c == ExitCause::kAuxParatickTimer;
}

[[nodiscard]] constexpr ExitReason reason_for(ExitCause c) {
  switch (c) {
    case ExitCause::kHostTick: return ExitReason::kExternalInterrupt;
    case ExitCause::kGuestTimerArm: return ExitReason::kMsrWrite;
    case ExitCause::kGuestTimerFire: return ExitReason::kPreemptionTimer;
    case ExitCause::kGuestTimerHostFire: return ExitReason::kExternalInterrupt;
    case ExitCause::kAuxParatickTimer: return ExitReason::kPreemptionTimer;
    case ExitCause::kHalt: return ExitReason::kHlt;
    case ExitCause::kIoKick: return ExitReason::kIoInstruction;
    case ExitCause::kIoAck: return ExitReason::kIoInstruction;
    case ExitCause::kDeviceCompletion: return ExitReason::kExternalInterrupt;
    case ExitCause::kIpiSend: return ExitReason::kMsrWrite;
    case ExitCause::kWakeIpi: return ExitReason::kExternalInterrupt;
    case ExitCause::kHypercall: return ExitReason::kHypercall;
    case ExitCause::kPauseLoop: return ExitReason::kPause;
    case ExitCause::kBackground: return ExitReason::kOther;
    case ExitCause::kCount: break;
  }
  return ExitReason::kOther;
}

}  // namespace paratick::hw
