#include "metrics/report.hpp"

#include <cstdarg>
#include <cstdio>

#include "sim/check.hpp"

namespace paratick::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PARATICK_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PARATICK_CHECK_MSG(cells.size() == headers_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      line += row[i];
      line.append(widths[i] - row[i].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = emit_row(headers_);
  std::string rule;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    rule.append(widths[i], '-');
    if (i + 1 < widths.size()) rule.append(2, ' ');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += csv_field(row[i]);
      if (i + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string quoted = "\"";
  for (char c : s) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n < static_cast<int>(sizeof buf)) {
    va_end(args2);
    return buf;
  }
  // Rare long row (e.g. a JSON export line): retry with the exact size.
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), static_cast<std::size_t>(n) + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string pct(double v) { return format("%+.1f%%", v); }

}  // namespace paratick::metrics
