// Plain-text table / CSV emitters for the bench harnesses, so every
// bench binary prints rows in the same shape the paper's tables use.
#pragma once

#include <string>
#include <vector>

namespace paratick::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Fixed-width aligned text rendering.
  [[nodiscard]] std::string to_string() const;
  /// CSV rendering (RFC-4180-ish, minimal quoting).
  [[nodiscard]] std::string to_csv() const;

  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// RFC-4180 CSV field: quoted (with "" doubling) only when the value
/// contains a comma, quote, or newline; returned verbatim otherwise.
[[nodiscard]] std::string csv_field(const std::string& s);

/// JSON string-literal body: escapes backslash, quote, and control
/// characters (no surrounding quotes added).
[[nodiscard]] std::string json_escape(const std::string& s);

/// "+12.3%" style cell.
[[nodiscard]] std::string pct(double v);

}  // namespace paratick::metrics
