#include "metrics/run_metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/check.hpp"

namespace paratick::metrics {

std::optional<sim::SimTime> RunResult::completion_time() const {
  std::optional<sim::SimTime> latest;
  for (const auto& vm : vms) {
    if (!vm.completion_time) continue;
    if (!latest || *vm.completion_time > *latest) latest = vm.completion_time;
  }
  return latest;
}

double RunResult::exits_per_second() const {
  const double secs = wall.seconds();
  return secs > 0.0 ? static_cast<double>(exits_total) / secs : 0.0;
}

namespace {
double pct_ratio(double treatment, double baseline) {
  if (baseline == 0.0) return 0.0;
  return (treatment / baseline - 1.0) * 100.0;
}
}  // namespace

Comparison compare(const RunResult& baseline, const RunResult& treatment) {
  Comparison c;
  c.exit_delta_pct = pct_ratio(static_cast<double>(treatment.exits_total),
                               static_cast<double>(baseline.exits_total));
  c.timer_exit_delta_pct =
      pct_ratio(static_cast<double>(treatment.exits_timer_related),
                static_cast<double>(baseline.exits_timer_related));
  const double base_busy = static_cast<double>(baseline.busy_cycles().count());
  const double treat_busy = static_cast<double>(treatment.busy_cycles().count());
  c.throughput_gain_pct = treat_busy > 0.0 ? (base_busy / treat_busy - 1.0) * 100.0 : 0.0;

  const auto bt = baseline.completion_time();
  const auto tt = treatment.completion_time();
  if (bt && tt) {
    c.exec_time_delta_pct = pct_ratio(static_cast<double>(tt->nanoseconds()),
                                      static_cast<double>(bt->nanoseconds()));
  }
  return c;
}

Comparison average(const std::vector<Comparison>& cs) {
  Comparison avg;
  if (cs.empty()) return avg;
  for (const auto& c : cs) {
    avg.exit_delta_pct += c.exit_delta_pct;
    avg.timer_exit_delta_pct += c.timer_exit_delta_pct;
    avg.throughput_gain_pct += c.throughput_gain_pct;
    avg.exec_time_delta_pct += c.exec_time_delta_pct;
  }
  const auto n = static_cast<double>(cs.size());
  avg.exit_delta_pct /= n;
  avg.timer_exit_delta_pct /= n;
  avg.throughput_gain_pct /= n;
  avg.exec_time_delta_pct /= n;
  return avg;
}

std::string describe(const Comparison& c) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "VM exits %+.1f%% | throughput %+.1f%% | exec time %+.1f%%",
                c.exit_delta_pct, c.throughput_gain_pct, c.exec_time_delta_pct);
  return buf;
}

}  // namespace paratick::metrics
