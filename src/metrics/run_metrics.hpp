// Result collection and A/B comparison for simulation runs.
//
// Mirrors the paper's three metrics (§6): VM exits, system throughput
// (CPU cycles consumed), and application execution time.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "guest/tick_policy.hpp"
#include "sim/stats.hpp"
#include "hw/cycle_ledger.hpp"
#include "hw/vmx.hpp"
#include "sim/types.hpp"

namespace paratick::metrics {

struct VmResult {
  std::uint64_t exits_total = 0;
  std::uint64_t exits_timer_related = 0;
  std::array<std::uint64_t, hw::kExitCauseCount> exits_by_cause{};
  std::optional<sim::SimTime> completion_time;  // workload execution time
  guest::TickPolicy::Stats policy;
  /// Intervals between consecutive ticks handled, merged over the VM's
  /// CPUs — virtual-tick delivery jitter under paratick.
  sim::Accumulator tick_intervals_us;
  std::uint64_t task_blocks = 0;
  std::uint64_t task_wakes = 0;
  sim::Accumulator wakeup_latency_us;
  sim::LogHistogram wakeup_latency_hist_us;
  std::uint64_t io_errors = 0;  // injected device errors seen by the guest
  /// Hypervisor-side steal ground truth: time the VM's vCPUs spent
  /// runnable-but-descheduled plus injected entry steal bursts.
  sim::SimTime steal_time;
  /// Guest-side platform-agnostic steal estimate (engaged only when the
  /// guest kernel runs the estimator); judged against steal_time.
  std::optional<sim::SimTime> steal_estimate;
};

struct RunResult {
  sim::SimTime wall;                 // simulated time covered by the run
  hw::CycleLedger cycles;            // combined over all physical CPUs
  std::uint64_t exits_total = 0;
  std::uint64_t exits_timer_related = 0;
  std::array<std::uint64_t, hw::kExitCauseCount> exits_by_cause{};
  std::vector<VmResult> vms;
  std::uint64_t events_executed = 0;
  fault::FaultStats faults;  // all-zero when no injector was attached

  // Engine hot-path self-profile (sim::EngineProfile). Everything here is
  // a pure function of the workload — bit-identical across -j values,
  // backends and machines — except engine_wall_ns, which is host
  // wall-clock and must stay out of deterministic exports.
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t callback_spills = 0;
  std::uint64_t callback_spill_bytes = 0;
  std::uint64_t slot_high_water = 0;
  std::uint64_t queue_compactions = 0;
  std::uint64_t engine_wall_ns = 0;

  // Parallel-engine window counters (sim::ParallelProfile), zero for
  // single-engine runs. Deterministic for a fixed lookahead mode at any
  // engine-thread count, but mode-DEPENDENT: cross-mode byte-identity
  // gates must compare artifacts that exclude these.
  std::uint64_t par_windows = 0;
  std::uint64_t par_windows_skipped = 0;
  std::uint64_t par_barriers_elided = 0;
  std::uint64_t par_horizon_max_ns = 0;

  [[nodiscard]] sim::Cycles busy_cycles() const { return cycles.busy_total(); }
  [[nodiscard]] std::optional<sim::SimTime> completion_time() const;

  /// Exit rate over the run, 1/s.
  [[nodiscard]] double exits_per_second() const;
};

/// Relative improvement of `treatment` over `baseline`, using the
/// paper's sign conventions: exits/execution time negative = fewer/faster,
/// throughput positive = more work per cycle.
struct Comparison {
  double exit_delta_pct = 0.0;        // (treat/base - 1) * 100, negative good
  double timer_exit_delta_pct = 0.0;
  double throughput_gain_pct = 0.0;   // (base_cycles/treat_cycles - 1) * 100
  double exec_time_delta_pct = 0.0;   // (treat/base - 1) * 100, negative good
};

[[nodiscard]] Comparison compare(const RunResult& baseline, const RunResult& treatment);

/// Average a set of comparisons (paper Tables 2-4 aggregate rows).
[[nodiscard]] Comparison average(const std::vector<Comparison>& cs);

[[nodiscard]] std::string describe(const Comparison& c);

}  // namespace paratick::metrics
