// Lightweight invariant checking for the simulator.
//
// PARATICK_CHECK is always on (simulation correctness beats raw speed here);
// PARATICK_DCHECK compiles out in NDEBUG builds for hot paths.
//
// A failed check throws sim::SimError (see sim/error.hpp) carrying the
// expression, location and — inside the engine — the simulated time and
// event count. SweepRunner catches it to crash-isolate chaos runs; an
// uncaught failure still terminates the process with the message on
// stderr via std::terminate.
#pragma once

namespace paratick::sim::detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const char* msg);

}  // namespace paratick::sim::detail

#define PARATICK_CHECK(expr)                                                      \
  do {                                                                            \
    if (!(expr)) ::paratick::sim::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PARATICK_CHECK_MSG(expr, msg)                                             \
  do {                                                                            \
    if (!(expr))                                                                  \
      ::paratick::sim::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)

#ifdef NDEBUG
#define PARATICK_DCHECK(expr) ((void)0)
#else
#define PARATICK_DCHECK(expr) PARATICK_CHECK(expr)
#endif
