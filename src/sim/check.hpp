// Lightweight invariant checking for the simulator.
//
// PARATICK_CHECK is always on (simulation correctness beats raw speed here);
// PARATICK_DCHECK compiles out in NDEBUG builds for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace paratick::sim::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace paratick::sim::detail

#define PARATICK_CHECK(expr)                                                      \
  do {                                                                            \
    if (!(expr)) ::paratick::sim::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PARATICK_CHECK_MSG(expr, msg)                                             \
  do {                                                                            \
    if (!(expr))                                                                  \
      ::paratick::sim::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)

#ifdef NDEBUG
#define PARATICK_DCHECK(expr) ((void)0)
#else
#define PARATICK_DCHECK(expr) PARATICK_CHECK(expr)
#endif
