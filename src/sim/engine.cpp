#include "sim/engine.hpp"

#include <utility>

#include "sim/check.hpp"

namespace paratick::sim {

EventId Engine::schedule_at(SimTime when, Callback fn) {
  PARATICK_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  return queue_.schedule(when, std::move(fn));
}

EventId Engine::schedule_after(SimTime delay, Callback fn) {
  PARATICK_CHECK_MSG(delay >= SimTime::zero(), "negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto [when, fn] = queue_.pop();
  PARATICK_DCHECK(when >= now_);
  now_ = when;
  ++executed_;
  fn();
  return true;
}

void Engine::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  // A stop() mid-run leaves the clock at the stopping event; a normal
  // completion advances it to the requested deadline.
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

}  // namespace paratick::sim
