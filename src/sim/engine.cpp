#include "sim/engine.hpp"

#include <chrono>
#include <utility>

#include "sim/check.hpp"
#include "sim/error.hpp"

namespace paratick::sim {

namespace {

thread_local Engine* g_current_engine = nullptr;

// RAII guard marking `e` as the engine executing on this thread. Nesting
// (an event body driving a second engine) restores the outer engine.
class ScopedCurrent {
 public:
  explicit ScopedCurrent(Engine* e) : prev_(g_current_engine) {
    g_current_engine = e;
  }
  ~ScopedCurrent() { g_current_engine = prev_; }
  ScopedCurrent(const ScopedCurrent&) = delete;
  ScopedCurrent& operator=(const ScopedCurrent&) = delete;

 private:
  Engine* prev_;
};

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Accumulates run()/run_until() wall time into the owning engine even when
// the loop exits via a SimError (chaos runs throw out of step()).
class ScopedRunTimer {
 public:
  explicit ScopedRunTimer(std::uint64_t& sink)
      : sink_(sink), start_ns_(steady_now_ns()) {}
  ~ScopedRunTimer() { sink_ += steady_now_ns() - start_ns_; }
  ScopedRunTimer(const ScopedRunTimer&) = delete;
  ScopedRunTimer& operator=(const ScopedRunTimer&) = delete;

 private:
  std::uint64_t& sink_;
  std::uint64_t start_ns_;
};

}  // namespace

Engine* Engine::current() { return g_current_engine; }

EngineProfile Engine::profile() const {
  EngineProfile p;
  p.events_executed = executed_;
  p.events_scheduled = queue_.scheduled_count();
  p.events_cancelled = queue_.cancelled_count();
  p.callback_spills = queue_.callback_spills();
  p.callback_spill_bytes = queue_.callback_spill_bytes();
  p.slot_high_water = queue_.slot_high_water();
  p.compactions = queue_.compactions();
  p.wall_ns = run_wall_ns_;
  return p;
}

void Engine::set_wall_limit(double seconds) {
  if (seconds <= 0.0) {
    wall_limited_ = false;
    wall_armed_ = false;
    return;
  }
  wall_limited_ = true;
  wall_armed_ = false;  // re-anchored when execution begins
  wall_budget_ns_ = static_cast<std::uint64_t>(seconds * 1e9);
}

void Engine::arm_wall_limit() {
  if (!wall_limited_ || wall_armed_) return;
  wall_armed_ = true;
  wall_deadline_ns_ = steady_now_ns() + wall_budget_ns_;
}

EventId Engine::schedule_at(SimTime when, Callback fn) {
  PARATICK_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  return queue_.schedule(when, std::move(fn));
}

EventId Engine::schedule_after(SimTime delay, Callback fn) {
  PARATICK_CHECK_MSG(delay >= SimTime::zero(), "negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

namespace {

constexpr std::uint64_t mix64(std::uint64_t z) {
  // splitmix64 finalizer, the same avalanche Rng seeding uses.
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t Engine::state_digest() const {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  h = mix64(h ^ static_cast<std::uint64_t>(now_.nanoseconds()));
  h = mix64(h ^ executed_);
  h = mix64(h ^ static_cast<std::uint64_t>(queue_.size()));
  h = mix64(h ^ queue_.scheduled_count());
  h = mix64(h ^ queue_.cancelled_count());
  return h;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  arm_wall_limit();  // covers bare step() loops that never enter run()
  auto [when, seq, fn] = queue_.pop();
  PARATICK_DCHECK(when >= now_);
  now_ = when;
  // Checked every 512 events, including the very first (executed_ == 0),
  // so an already-exhausted budget trips on the next step rather than
  // 512 events later.
  if (wall_limited_ && (executed_ & 511u) == 0 &&
      steady_now_ns() > wall_deadline_ns_) {
    throw SimError(SimError::Kind::kTimeout, "wall-clock limit exceeded", "", 0,
                   "run exceeded its wall-clock budget (hung or runaway run)",
                   now_, executed_);
  }
  ++executed_;
  ScopedCurrent guard(this);
  fn();
  if (observer_ != nullptr) observer_->on_event_executed(*this, when, seq);
  return true;
}

void Engine::run_until(SimTime deadline) {
  stopped_ = false;
  arm_wall_limit();
  {
    ScopedRunTimer timer(run_wall_ns_);
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
      step();
    }
  }
  // A stop() mid-run leaves the clock at the stopping event; a normal
  // completion advances it to the requested deadline.
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

void Engine::run_before(SimTime bound) {
  stopped_ = false;
  arm_wall_limit();
  ScopedRunTimer timer(run_wall_ns_);
  while (!stopped_ && !queue_.empty() && queue_.next_time() < bound) {
    step();
  }
}

void Engine::advance_to(SimTime t) {
  PARATICK_CHECK_MSG(t >= now_, "advance_to would move the clock backwards");
  PARATICK_CHECK_MSG(queue_.empty() || queue_.next_time() >= t,
                     "advance_to would skip over pending events");
  now_ = t;
}

void Engine::run() {
  stopped_ = false;
  arm_wall_limit();
  ScopedRunTimer timer(run_wall_ns_);
  while (!stopped_ && step()) {
  }
}

}  // namespace paratick::sim
