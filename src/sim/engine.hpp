// The discrete-event simulation engine: a clock plus an event queue.
//
// All components of the virtualized-host model (timers, CPUs, the
// hypervisor, guest kernels, devices) schedule callbacks on one shared
// Engine, which guarantees a single global order of events.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace paratick::sim {

/// Hot-path self-profile of one Engine. All counters except wall_ns are
/// pure functions of the simulated workload (bit-identical across runs,
/// machines and backends); wall_ns is host wall-clock spent inside
/// run()/run_until() and is reporting-only.
struct EngineProfile {
  std::uint64_t events_executed = 0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  /// Callbacks that took the InlineCallback::spill() heap escape hatch.
  /// The hot path targets zero: any non-zero value is an oversized capture.
  std::uint64_t callback_spills = 0;
  std::uint64_t callback_spill_bytes = 0;
  /// Most events simultaneously live (slot-map occupancy high-water mark).
  std::uint64_t slot_high_water = 0;
  /// Dead-entry heap rebuilds triggered by cancellation churn.
  std::uint64_t compactions = 0;
  /// Host nanoseconds spent inside run()/run_until(). Not deterministic.
  std::uint64_t wall_ns = 0;

  /// Events executed per wall second, or 0 before any run() call.
  [[nodiscard]] double events_per_sec() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(events_executed) /
                              (static_cast<double>(wall_ns) * 1e-9);
  }
};

class Engine;

/// Per-event hook into the dispatch loop, the record/replay tap point
/// (core/record_replay): called after every event callback completes,
/// with the event's timestamp and schedule-order sequence number. The
/// observer only reads engine state, so attaching one never perturbs the
/// simulation — results stay bit-identical with or without it. An
/// observer may throw (replay divergence checking does); the error
/// propagates out of step()/run() exactly like a failing event.
class EventObserver {
 public:
  virtual ~EventObserver() = default;
  virtual void on_event_executed(Engine& engine, SimTime when,
                                 std::uint64_t seq) = 0;
};

class Engine {
 public:
  using Callback = EventQueue::Callback;

  /// The engine currently executing an event on this thread, or nullptr.
  /// Set for the duration of each event callback so deep call sites
  /// (e.g. a failing PARATICK_CHECK) can attach sim-time context without
  /// threading an Engine& through every layer.
  [[nodiscard]] static Engine* current();

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `when` (must not be in the past).
  EventId schedule_at(SimTime when, Callback fn);

  /// Schedule `fn` after a non-negative delay from now.
  EventId schedule_after(SimTime delay, Callback fn);

  /// Cancel a pending event; returns true if it had not yet fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  [[nodiscard]] bool pending(EventId id) const { return queue_.pending(id); }

  /// Run events until the queue empties or `deadline` is reached.
  /// The clock is left at min(deadline, time of last event). Events
  /// stamped exactly at `deadline` are executed.
  void run_until(SimTime deadline);

  /// Run events strictly before `bound` — the parallel engine's quantum
  /// window (events at exactly `bound` belong to the next window, after
  /// cross-partition deliveries commit). Unlike run_until, the clock is
  /// left at the last executed event, NOT advanced to `bound`: the driver
  /// calls advance_to() once the run as a whole completes.
  void run_before(SimTime bound);

  /// Advance the clock to `t` without executing anything. `t` must not be
  /// in the past and must not skip over a pending event.
  void advance_to(SimTime t);

  /// Run until the queue is empty (or stop() is called).
  void run();

  /// Execute exactly one event if any is pending; returns false when idle.
  bool step();

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  /// Bound the wall-clock time this engine may spend executing events.
  /// Once exceeded (checked every few hundred events), step() throws
  /// SimError{kTimeout} — hung-run detection for chaos sweeps.
  /// The budget is stored here but anchored when execution begins (the
  /// first run()/run_until()/run_before() or bare step() afterwards), so
  /// setup work between configuring the limit and starting the run never
  /// consumes it. `seconds <= 0` disables the limit.
  void set_wall_limit(double seconds);

  [[nodiscard]] bool has_pending_events() const { return !queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] const EventQueue& queue() const { return queue_; }

  /// Snapshot of the hot-path counters (see EngineProfile). wall_ns only
  /// covers run()/run_until(), not bare step() loops.
  [[nodiscard]] EngineProfile profile() const;

  /// Attach (or detach, with nullptr) the per-event observer. Non-owning;
  /// the observer must outlive the run.
  void set_observer(EventObserver* observer) { observer_ = observer; }
  [[nodiscard]] EventObserver* observer() const { return observer_; }

  /// Cheap digest of the deterministic engine state (clock, executed and
  /// pending event counts, schedule/cancel totals). A pure function of
  /// the workload: two runs of the same seed produce the same digest at
  /// every event, so a single mismatch is proof of divergence.
  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  /// Anchor the wall budget at the current host clock (first execution
  /// after set_wall_limit). No-op once armed or when no limit is set.
  void arm_wall_limit();

  EventQueue queue_;
  EventObserver* observer_ = nullptr;
  SimTime now_ = SimTime::zero();
  std::uint64_t executed_ = 0;
  std::uint64_t run_wall_ns_ = 0;
  bool stopped_ = false;
  bool wall_limited_ = false;
  bool wall_armed_ = false;
  std::uint64_t wall_budget_ns_ = 0;
  std::uint64_t wall_deadline_ns_ = 0;  // CLOCK_MONOTONIC-ish steady ns
};

}  // namespace paratick::sim
