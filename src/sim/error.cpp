#include "sim/error.hpp"

#include <cstdio>

#include "sim/check.hpp"
#include "sim/engine.hpp"

namespace paratick::sim {

namespace {

std::string build_what(SimError::Kind kind, const std::string& expr,
                       const std::string& file, int line, const std::string& msg,
                       const std::optional<SimTime>& t, std::uint64_t events) {
  std::string out = SimError::kind_name(kind);
  out += ": ";
  out += expr;
  if (!file.empty()) {
    char loc[256];
    std::snprintf(loc, sizeof loc, " at %s:%d", file.c_str(), line);
    out += loc;
  }
  if (!msg.empty()) {
    out += " — ";
    out += msg;
  }
  if (t) {
    char ctx[128];
    std::snprintf(ctx, sizeof ctx, " [sim t=%lldns, event #%llu]",
                  static_cast<long long>(t->nanoseconds()),
                  static_cast<unsigned long long>(events));
    out += ctx;
  }
  return out;
}

}  // namespace

SimError::SimError(Kind kind, std::string expr, std::string file, int line,
                   std::string msg, std::optional<SimTime> sim_time,
                   std::uint64_t events_executed)
    : std::runtime_error(build_what(kind, expr, file, line, msg, sim_time,
                                    events_executed)),
      kind_(kind),
      expr_(std::move(expr)),
      file_(std::move(file)),
      msg_(std::move(msg)),
      line_(line),
      sim_time_(sim_time),
      events_(events_executed) {}

const char* SimError::kind_name(Kind k) {
  switch (k) {
    case Kind::kCheck: return "CHECK failed";
    case Kind::kWatchdog: return "watchdog";
    case Kind::kTimeout: return "timeout";
    case Kind::kDivergence: return "divergence";
  }
  return "?";
}

namespace detail {

void check_failed(const char* expr, const char* file, int line, const char* msg) {
  std::optional<SimTime> t;
  std::uint64_t events = 0;
  if (const Engine* e = Engine::current()) {
    t = e->now();
    events = e->events_executed();
  }
  throw SimError(SimError::Kind::kCheck, expr, file, line, msg, t, events);
}

}  // namespace detail

}  // namespace paratick::sim
