// Structured simulation errors.
//
// Every PARATICK_CHECK failure, watchdog invariant breach and wall-clock
// timeout throws a SimError instead of aborting the process. The error
// carries the failing expression, source location and — when thrown while
// the engine is executing an event — the simulated time and event count,
// so a crash-isolated sweep (core/sweep.hpp) can record exactly where a
// chaos run died and a replay bundle can verify it dies at the same event.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "sim/types.hpp"

namespace paratick::sim {

class SimError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kCheck,       // a PARATICK_CHECK / PARATICK_CHECK_MSG invariant failed
    kWatchdog,    // a sim::Watchdog liveness/consistency check tripped
    kTimeout,     // the engine exceeded its per-run wall-clock budget
    kDivergence,  // a replayed run stopped matching its recorded trace
  };

  SimError(Kind kind, std::string expr, std::string file, int line,
           std::string msg, std::optional<SimTime> sim_time,
           std::uint64_t events_executed);

  [[nodiscard]] Kind kind() const { return kind_; }
  /// The failed expression (checks), or the check name (watchdog/timeout).
  [[nodiscard]] const std::string& expr() const { return expr_; }
  [[nodiscard]] const std::string& file() const { return file_; }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] const std::string& msg() const { return msg_; }
  /// Simulated time at the throw site; empty when thrown outside any
  /// engine event (e.g. config validation before a run starts).
  [[nodiscard]] std::optional<SimTime> sim_time() const { return sim_time_; }
  [[nodiscard]] std::uint64_t events_executed() const { return events_; }

  [[nodiscard]] static const char* kind_name(Kind k);

 private:
  Kind kind_;
  std::string expr_;
  std::string file_;
  std::string msg_;
  int line_;
  std::optional<SimTime> sim_time_;
  std::uint64_t events_;
};

}  // namespace paratick::sim
