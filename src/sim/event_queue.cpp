#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace paratick::sim {

EventId EventQueue::schedule(SimTime when, Callback fn) {
  PARATICK_CHECK_MSG(fn != nullptr, "event callback must be callable");
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{when, seq});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  callbacks_.emplace(seq, std::move(fn));
  ++scheduled_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  const auto erased = callbacks_.erase(key(id));
  if (erased != 0) {
    ++cancelled_;
    maybe_compact();
  }
  return erased != 0;
}

void EventQueue::maybe_compact() {
  // Rebuild once dead entries exceed half the heap; (when, seq) ordering is
  // a total order, so the rebuilt heap pops in exactly the same sequence.
  if (heap_.size() < kCompactMinEntries || heap_.size() <= 2 * callbacks_.size())
    return;
  std::erase_if(heap_, [this](const Entry& e) { return !callbacks_.contains(e.seq); });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

void EventQueue::drop_dead_heads() {
  while (!heap_.empty() && !callbacks_.contains(heap_.front().seq)) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  drop_dead_heads();
  PARATICK_CHECK_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().when;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_heads();
  PARATICK_CHECK_MSG(!heap_.empty(), "pop() on empty queue");
  const Entry e = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
  auto it = callbacks_.find(e.seq);
  PARATICK_DCHECK(it != callbacks_.end());
  Popped out{e.when, std::move(it->second)};
  callbacks_.erase(it);
  return out;
}

}  // namespace paratick::sim
