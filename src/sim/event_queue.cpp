#include "sim/event_queue.hpp"

#include <utility>

#include "sim/check.hpp"

namespace paratick::sim {

EventId EventQueue::schedule(SimTime when, Callback fn) {
  PARATICK_CHECK_MSG(fn != nullptr, "event callback must be callable");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq});
  callbacks_.emplace(seq, std::move(fn));
  ++scheduled_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  const auto erased = callbacks_.erase(key(id));
  if (erased != 0) ++cancelled_;
  return erased != 0;
}

void EventQueue::drop_dead_heads() {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() {
  drop_dead_heads();
  PARATICK_CHECK_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().when;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_heads();
  PARATICK_CHECK_MSG(!heap_.empty(), "pop() on empty queue");
  const Entry e = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(e.seq);
  PARATICK_DCHECK(it != callbacks_.end());
  Popped out{e.when, std::move(it->second)};
  callbacks_.erase(it);
  return out;
}

}  // namespace paratick::sim
