#include "sim/event_queue.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/check.hpp"

namespace paratick::sim {

EventId EventQueue::schedule(SimTime when, Callback fn) {
  PARATICK_CHECK_MSG(fn != nullptr, "event callback must be callable");
  if (fn.spilled()) {
    ++spills_;
    spill_bytes_ += fn.spill_bytes();
  }
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    PARATICK_CHECK_MSG(
        slots_.size() < std::numeric_limits<std::uint32_t>::max(),
        "event slot index space exhausted");
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  const std::uint64_t seq = next_seq_++;
  Slot& s = slots_[index];
  s.fn = std::move(fn);
  s.seq = seq;
  s.live = true;
  ++live_;
  if (live_ > high_water_) high_water_ = live_;
  heap_.push_back(Entry{when, seq, index});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++scheduled_;
  return make_id(s.generation, index);
}

void EventQueue::retire_slot(std::uint32_t index) {
  Slot& s = slots_[index];
  s.fn.reset();
  s.live = false;
  // Bumping the generation invalidates every EventId handed out for this
  // occupancy; skip 0 on wrap so a recycled slot never reproduces the
  // all-zero (invalid) id.
  if (++s.generation == 0) s.generation = 1;
  free_.push_back(index);
  --live_;
}

bool EventQueue::cancel(EventId id) {
  if (resolve(id) == nullptr) return false;
  retire_slot(static_cast<std::uint32_t>(id.raw_));
  ++cancelled_;
  drop_dead_heads();
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  // Rebuild once dead entries exceed half the heap; (when, seq) ordering is
  // a total order, so the rebuilt heap pops in exactly the same sequence.
  if (heap_.size() < kCompactMinEntries || heap_.size() <= 2 * live_) return;
  std::erase_if(heap_, [this](const Entry& e) { return !entry_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++compactions_;
}

void EventQueue::drop_dead_heads() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

EventQueue::Popped EventQueue::pop() {
  PARATICK_CHECK_MSG(!heap_.empty(), "pop() on empty queue");
  const Entry e = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
  PARATICK_DCHECK(entry_live(e));
  Popped out{e.when, e.seq, std::move(slots_[e.slot].fn)};
  retire_slot(e.slot);
  drop_dead_heads();
  return out;
}

}  // namespace paratick::sim
