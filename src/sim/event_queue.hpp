// Cancellable discrete-event priority queue.
//
// Events at equal timestamps pop in schedule order (FIFO), which keeps the
// whole simulation deterministic for a given seed. Cancellation is O(1)
// (lazy deletion: cancelled entries are skipped at pop time). To keep
// timer-heavy workloads (dynticks constantly reprogramming) from growing
// the heap far beyond the live event count, the heap is compacted once
// dead entries outnumber live ones.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace paratick::sim {

/// Opaque handle to a scheduled event; used to cancel it.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return raw_ != 0; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  friend class EventQueue;
  constexpr explicit EventId(std::uint64_t raw) : raw_(raw) {}
  std::uint64_t raw_ = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` to fire at absolute time `when`.
  EventId schedule(SimTime when, Callback fn);

  /// Cancel a pending event. Returns true if it was still pending.
  bool cancel(EventId id);

  /// True if `id` refers to an event that has not yet fired or been cancelled.
  [[nodiscard]] bool pending(EventId id) const { return callbacks_.contains(key(id)); }

  [[nodiscard]] bool empty() const { return callbacks_.empty(); }
  [[nodiscard]] std::size_t size() const { return callbacks_.size(); }

  /// Timestamp of the next live event. Queue must not be empty.
  [[nodiscard]] SimTime next_time();

  /// Pop and return the next live event (timestamp + callback).
  struct Popped {
    SimTime when;
    Callback fn;
  };
  Popped pop();

  /// Total events ever scheduled / cancelled / fired (for stats & tests).
  [[nodiscard]] std::uint64_t scheduled_count() const { return scheduled_; }
  [[nodiscard]] std::uint64_t cancelled_count() const { return cancelled_; }

  /// Heap entries physically held, live + not-yet-reclaimed dead (tests
  /// assert this stays within a constant factor of size()).
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  /// Below this many entries, dead weight is negligible — skip compaction.
  static constexpr std::size_t kCompactMinEntries = 64;

  static constexpr std::uint64_t key(EventId id) { return id.raw_; }
  void drop_dead_heads();
  void maybe_compact();

  // Min-heap on (when, seq) via std::*_heap with std::greater.
  std::vector<Entry> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
};

}  // namespace paratick::sim
