// Cancellable discrete-event priority queue.
//
// Events at equal timestamps pop in schedule order (FIFO), which keeps the
// whole simulation deterministic for a given seed.
//
// Live callbacks sit in a generation-counted slot map: a flat vector of
// slots recycled through a free list, no hashing and no per-event
// allocation (callbacks are sim::InlineCallback, stored in place).
// An EventId packs (generation << 32 | slot index); a stale handle —
// cancelled, fired, or from a recycled slot — fails the generation check
// and is rejected in O(1). Cancellation is O(1) for buried events (lazy
// deletion) while dead heap heads are dropped eagerly, so the heap front
// is always live and next_time() is const. To keep timer-heavy workloads
// (dynticks constantly reprogramming) from growing the heap far beyond
// the live event count, the heap is compacted once dead entries outnumber
// live ones.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/check.hpp"
#include "sim/inline_callback.hpp"
#include "sim/types.hpp"

namespace paratick::sim {

/// Opaque handle to a scheduled event; used to cancel it.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return raw_ != 0; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  friend class EventQueue;
  constexpr explicit EventId(std::uint64_t raw) : raw_(raw) {}
  std::uint64_t raw_ = 0;
};

class EventQueue {
 public:
  using Callback = InlineCallback;

  /// Schedule `fn` to fire at absolute time `when`.
  EventId schedule(SimTime when, Callback fn);

  /// Cancel a pending event. Returns true if it was still pending.
  bool cancel(EventId id);

  /// True if `id` refers to an event that has not yet fired or been cancelled.
  [[nodiscard]] bool pending(EventId id) const {
    const Slot* s = resolve(id);
    return s != nullptr;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the next live event. Queue must not be empty.
  [[nodiscard]] SimTime next_time() const {
    PARATICK_CHECK_MSG(!heap_.empty(), "next_time() on empty queue");
    return heap_.front().when;  // invariant: the heap front is live
  }

  /// Pop and return the next live event (timestamp + schedule-order
  /// sequence number + callback). The seq is the event's deterministic
  /// identity: unique, assigned at schedule time, bit-identical across
  /// runs of the same workload — what the record/replay trace stores.
  struct Popped {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  Popped pop();

  /// Total events ever scheduled / cancelled / fired (for stats & tests).
  [[nodiscard]] std::uint64_t scheduled_count() const { return scheduled_; }
  [[nodiscard]] std::uint64_t cancelled_count() const { return cancelled_; }

  /// Heap entries physically held, live + not-yet-reclaimed dead (tests
  /// assert this stays within a constant factor of size()).
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

  // --- profile counters (see sim::EngineProfile) ---

  /// Callbacks that arrived heap-boxed via InlineCallback::spill().
  [[nodiscard]] std::uint64_t callback_spills() const { return spills_; }
  /// Total heap bytes behind those spilled callbacks.
  [[nodiscard]] std::uint64_t callback_spill_bytes() const { return spill_bytes_; }
  /// Most events simultaneously live over this queue's lifetime.
  [[nodiscard]] std::uint64_t slot_high_water() const { return high_water_; }
  /// Dead-entry heap rebuilds performed.
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

 private:
  struct Slot {
    Callback fn;
    std::uint64_t seq = 0;  // schedule order; validates heap entries after reuse
    std::uint32_t generation = 1;
    bool live = false;
  };

  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  /// Below this many entries, dead weight is negligible — skip compaction.
  static constexpr std::size_t kCompactMinEntries = 64;

  static constexpr EventId make_id(std::uint32_t generation, std::uint32_t index) {
    return EventId{(static_cast<std::uint64_t>(generation) << 32) | index};
  }

  /// The slot `id` refers to, or nullptr if the event already fired, was
  /// cancelled, or the slot has since been recycled (generation mismatch).
  [[nodiscard]] const Slot* resolve(EventId id) const {
    const std::uint32_t index = static_cast<std::uint32_t>(id.raw_);
    const std::uint32_t generation = static_cast<std::uint32_t>(id.raw_ >> 32);
    if (index >= slots_.size()) return nullptr;
    const Slot& s = slots_[index];
    return (s.live && s.generation == generation) ? &s : nullptr;
  }

  [[nodiscard]] bool entry_live(const Entry& e) const {
    const Slot& s = slots_[e.slot];
    return s.live && s.seq == e.seq;
  }

  /// Release a slot back to the free list, invalidating outstanding ids.
  void retire_slot(std::uint32_t index);
  void drop_dead_heads();
  void maybe_compact();

  // Min-heap on (when, seq) via std::*_heap with std::greater.
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t spills_ = 0;
  std::uint64_t spill_bytes_ = 0;
  std::uint64_t high_water_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace paratick::sim
