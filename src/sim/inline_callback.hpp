// Fixed-capacity, move-only callable for the event hot path.
//
// std::function<void()> (libstdc++) inlines captures of at most 16 bytes;
// every larger capture — and the hypervisor's VM-entry/exit continuations
// run 24..72 bytes — costs one heap allocation per scheduled event.
// InlineCallback stores the callable in a 72-byte in-object buffer with
// NO implicit heap fallback: a capture that does not fit is a compile
// error, so hot-path regressions are caught at build time instead of
// showing up as allocator traffic.
//
// The capacity is sized to the largest continuation the hypervisor
// schedules (hv::Kvm's do_exit lambdas: this + two references + a small
// request struct + a std::function completion = 72 bytes).
//
// Escape hatch: InlineCallback::spill(fn) boxes an oversized callable on
// the heap and records its size, which the EventQueue surfaces as the
// callback-spill counters in sim::EngineProfile — so any spill that does
// sneak in is visible in --profile output and CI history snapshots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace paratick::sim {

class InlineCallback {
 public:
  /// In-object storage for the callable, in bytes.
  static constexpr std::size_t kCapacity = 72;
  /// Maximum alignment the buffer guarantees.
  static constexpr std::size_t kAlign = alignof(void*);

  constexpr InlineCallback() noexcept = default;
  constexpr InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::remove_cvref_t<F>;
    static_assert(sizeof(D) <= kCapacity,
                  "capture is larger than InlineCallback::kCapacity: shrink "
                  "the capture (capture a pointer to long-lived state) or, if "
                  "the allocation is genuinely wanted, use "
                  "InlineCallback::spill()");
    static_assert(alignof(D) <= kAlign,
                  "capture is over-aligned for InlineCallback's buffer");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "InlineCallback requires a noexcept-movable callable");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
    ops_ = &OpsFor<D>::value;
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        ops_ = other.ops_;
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Box `fn` on the heap. The deliberate, visible opt-out for callables
  /// over kCapacity; the wrapper itself (one pointer) always fits inline.
  template <typename F>
  [[nodiscard]] static InlineCallback spill(F&& fn) {
    using D = std::remove_cvref_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>);
    InlineCallback cb;
    ::new (static_cast<void*>(cb.buf_))
        Boxed<D>{std::make_unique<D>(std::forward<F>(fn))};
    cb.ops_ = &SpillOpsFor<D>::value;
    return cb;
  }

  /// Invoke the stored callable. Precondition: valid().
  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] bool valid() const noexcept { return ops_ != nullptr; }
  explicit operator bool() const noexcept { return valid(); }
  friend bool operator==(const InlineCallback& cb, std::nullptr_t) noexcept {
    return !cb.valid();
  }

  /// True when the callable was heap-boxed via spill().
  [[nodiscard]] bool spilled() const noexcept {
    return ops_ != nullptr && ops_->spill_bytes != 0;
  }
  /// Heap bytes behind this callable (0 unless spilled).
  [[nodiscard]] std::size_t spill_bytes() const noexcept {
    return ops_ == nullptr ? 0 : ops_->spill_bytes;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct, then destroy src
    void (*destroy)(void*) noexcept;
    std::uint32_t spill_bytes;
  };

  template <typename D, std::uint32_t SpillBytes>
  struct OpsImpl {
    static void invoke(void* p) { (*std::launder(static_cast<D*>(p)))(); }
    static void relocate(void* dst, void* src) noexcept {
      D* s = std::launder(static_cast<D*>(src));
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void destroy(void* p) noexcept { std::launder(static_cast<D*>(p))->~D(); }
    static constexpr Ops value{&invoke, &relocate, &destroy, SpillBytes};
  };

  template <typename D>
  struct Boxed {
    std::unique_ptr<D> fn;
    void operator()() { (*fn)(); }
  };

  template <typename D>
  using OpsFor = OpsImpl<D, 0>;
  template <typename D>
  using SpillOpsFor = OpsImpl<Boxed<D>, static_cast<std::uint32_t>(sizeof(D))>;

  const Ops* ops_ = nullptr;
  alignas(kAlign) unsigned char buf_[kCapacity];
};

}  // namespace paratick::sim
