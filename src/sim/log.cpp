#include "sim/log.hpp"

#include <cstdio>

namespace paratick::sim {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, SimTime now, const char* component, const char* fmt, ...) {
  if (!enabled(level)) return;
  std::fprintf(stderr, "[%12.6fms] %-10s ", now.milliseconds(), component);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace paratick::sim
