// Minimal leveled trace logging for the simulator.
//
// Off by default; tests and examples flip it on per component to inspect
// event ordering. printf-style rather than iostreams to keep hot paths
// cheap when disabled.
#pragma once

#include <cstdarg>
#include <cstdint>

#include "sim/types.hpp"

namespace paratick::sim {

enum class LogLevel : std::uint8_t { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level <= level_; }

  void log(LogLevel level, SimTime now, const char* component, const char* fmt, ...)
      __attribute__((format(printf, 5, 6)));

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kOff;
};

#define PARATICK_LOG(level, now, component, ...)                              \
  do {                                                                        \
    auto& logger_ = ::paratick::sim::Logger::instance();                      \
    if (logger_.enabled(level)) logger_.log(level, now, component, __VA_ARGS__); \
  } while (0)

}  // namespace paratick::sim
