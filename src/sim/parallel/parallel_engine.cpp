#include "sim/parallel/parallel_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

// Header-only worker pool shared with the sweep runner; no link-time
// dependency on paratick_core (which depends on this library).
#include "core/thread_pool.hpp"
#include "sim/check.hpp"

namespace paratick::sim {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class ScopedRunTimer {
 public:
  explicit ScopedRunTimer(std::uint64_t& sink)
      : sink_(sink), start_ns_(steady_now_ns()) {}
  ~ScopedRunTimer() { sink_ += steady_now_ns() - start_ns_; }
  ScopedRunTimer(const ScopedRunTimer&) = delete;
  ScopedRunTimer& operator=(const ScopedRunTimer&) = delete;

 private:
  std::uint64_t& sink_;
  std::uint64_t start_ns_;
};

constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// `a + b` on SimTime nanoseconds, saturating at SimTime::max() (horizon
/// arithmetic routinely adds latencies to "never" floors).
SimTime saturating_add(SimTime a, SimTime b) {
  const std::int64_t an = a.nanoseconds();
  const std::int64_t bn = b.nanoseconds();
  if (an > std::numeric_limits<std::int64_t>::max() - bn) {
    return SimTime::max();
  }
  return SimTime::ns(an + bn);
}

}  // namespace

const char* to_string(LookaheadMode mode) {
  switch (mode) {
    case LookaheadMode::kGlobal:
      return "global";
    case LookaheadMode::kTopology:
      return "topology";
  }
  return "?";
}

void ParallelEngine::WindowObserver::on_event_executed(Engine& engine,
                                                       SimTime when,
                                                       std::uint64_t seq) {
  buffer.push_back({when, seq, engine.state_digest()});
  if (inner != nullptr) inner->on_event_executed(engine, when, seq);
}

ParallelEngine::ParallelEngine(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

ParallelEngine::~ParallelEngine() = default;

PartitionId ParallelEngine::add_partition(Engine& engine, std::string name) {
  PARATICK_CHECK_MSG(!running_, "cannot add a partition mid-run");
  for (const Partition& p : parts_) {
    PARATICK_CHECK_MSG(p.engine != &engine,
                       "engine already registered as a partition");
  }
  Partition part;
  part.engine = &engine;
  part.name = name.empty()
                  ? "partition" + std::to_string(parts_.size())
                  : std::move(name);
  parts_.push_back(std::move(part));
  return static_cast<PartitionId>(parts_.size() - 1);
}

void ParallelEngine::declare_link(PartitionId src, PartitionId dst,
                                  SimTime min_latency) {
  PARATICK_CHECK_MSG(src < parts_.size() && dst < parts_.size(),
                     "declare_link on an unknown partition");
  PARATICK_CHECK_MSG(src != dst, "a partition needs no link to itself");
  PARATICK_CHECK_MSG(min_latency > SimTime::zero(),
                     "cross-partition latency must be positive: a zero-"
                     "latency link would force a zero-length lookahead");
  links_.push_back({src, dst, min_latency});
}

void ParallelEngine::declare_full_mesh(SimTime min_latency) {
  for (PartitionId s = 0; s < parts_.size(); ++s) {
    for (PartitionId d = 0; d < parts_.size(); ++d) {
      if (s != d) declare_link(s, d, min_latency);
    }
  }
}

void ParallelEngine::set_lookahead_mode(LookaheadMode mode) {
  PARATICK_CHECK_MSG(!running_, "cannot switch lookahead mode mid-run");
  mode_ = mode;
}

void ParallelEngine::set_max_horizon_windows(std::uint64_t windows) {
  PARATICK_CHECK_MSG(!running_, "cannot resize the horizon cap mid-run");
  max_horizon_windows_ = windows;
}

std::optional<SimTime> ParallelEngine::link_latency(PartitionId src,
                                                    PartitionId dst) const {
  std::optional<SimTime> best;
  for (const Link& l : links_) {
    if (l.src == src && l.dst == dst && (!best || l.min_latency < *best)) {
      best = l.min_latency;
    }
  }
  return best;
}

std::optional<SimTime> ParallelEngine::lookahead() const {
  std::optional<SimTime> best;
  for (const Link& l : links_) {
    if (!best || l.min_latency < *best) best = l.min_latency;
  }
  return best;
}

void ParallelEngine::send(PartitionId src, PartitionId dst, SimTime delay,
                          Engine::Callback fn) {
  PARATICK_CHECK_MSG(src < parts_.size() && dst < parts_.size(),
                     "send between unknown partitions");
  Partition& s = parts_[src];
  // Only the source partition's own events (or pre-run setup code) may
  // touch its outbox — that is what keeps the window lock-free.
  PARATICK_DCHECK(Engine::current() == s.engine || Engine::current() == nullptr);
  const std::optional<SimTime> link = link_latency(src, dst);
  PARATICK_CHECK_MSG(link.has_value(),
                     "cross-partition send over an undeclared link");
  PARATICK_CHECK_MSG(delay >= *link,
                     "cross-partition send faster than the declared link "
                     "latency (would violate the lookahead window)");
  CrossMessage msg;
  msg.deliver_at = s.engine->now() + delay;
  msg.src = src;
  msg.dst = dst;
  msg.src_seq = s.send_seq++;
  msg.fn = std::move(fn);
  s.outbox.push_back(std::move(msg));
}

void ParallelEngine::ingest_outboxes() {
  // Commit buffered sends into their destination inboxes, sorted by
  // (delivery time, source partition, per-source send order): the
  // destination injects each message into its engine exactly when its own
  // execution first reaches the delivery time, so its schedule-order seq
  // assignment — and therefore its whole future event order — is a pure
  // function of committed state, independent of window shapes.
  std::vector<CrossMessage> inflight;
  for (Partition& p : parts_) {
    std::move(p.outbox.begin(), p.outbox.end(), std::back_inserter(inflight));
    p.outbox.clear();
  }
  if (inflight.empty()) return;
  const auto msg_order = [](const CrossMessage& a, const CrossMessage& b) {
    if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
    if (a.src != b.src) return a.src < b.src;
    return a.src_seq < b.src_seq;
  };
  std::sort(inflight.begin(), inflight.end(), msg_order);
  constexpr std::size_t kUntouched = ~static_cast<std::size_t>(0);
  std::vector<std::size_t> merged_from(parts_.size(), kUntouched);
  for (CrossMessage& m : inflight) {
    Partition& d = parts_[m.dst];
    if (merged_from[m.dst] == kUntouched) {
      // Drop the already-injected prefix before growing the inbox.
      d.inbox.erase(d.inbox.begin(),
                    d.inbox.begin() + static_cast<std::ptrdiff_t>(d.inbox_pos));
      d.inbox_pos = 0;
      merged_from[m.dst] = d.inbox.size();
    }
    d.inbox.push_back(std::move(m));
  }
  for (PartitionId pid = 0; pid < parts_.size(); ++pid) {
    if (merged_from[pid] == kUntouched) continue;
    Partition& d = parts_[pid];
    std::inplace_merge(
        d.inbox.begin(),
        d.inbox.begin() + static_cast<std::ptrdiff_t>(merged_from[pid]),
        d.inbox.end(), msg_order);
  }
  cross_messages_ += inflight.size();
}

std::optional<SimTime> ParallelEngine::floor_of(const Partition& p) const {
  std::optional<SimTime> f;
  if (p.engine->has_pending_events()) f = p.engine->queue().next_time();
  if (p.inbox_pos < p.inbox.size()) {
    const SimTime t = p.inbox[p.inbox_pos].deliver_at;
    if (!f || t < *f) f = t;
  }
  return f;
}

void ParallelEngine::flush_commit_records(SimTime frontier) {
  if (!hook_) return;
  // Records before the frontier are final: every partition's committed
  // pending work — and hence everything it can still execute — lies at or
  // past the frontier. Merge them in the global (time, partition, seq)
  // order and hold the rest for a later barrier (kTopology horizons let a
  // partition run ahead of the frontier).
  struct Tagged {
    CommitRecord rec;
    PartitionId part;
  };
  std::vector<Tagged> ready;
  for (PartitionId pid = 0; pid < parts_.size(); ++pid) {
    std::vector<CommitRecord>& buf = parts_[pid].observer.buffer;
    std::size_t n = 0;
    while (n < buf.size() && buf[n].when < frontier) ++n;
    for (std::size_t i = 0; i < n; ++i) ready.push_back({buf[i], pid});
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  std::sort(ready.begin(), ready.end(), [](const Tagged& a, const Tagged& b) {
    if (a.rec.when != b.rec.when) return a.rec.when < b.rec.when;
    if (a.part != b.part) return a.part < b.part;
    return a.rec.seq < b.rec.seq;
  });
  for (const Tagged& t : ready) {
    hook_(t.part, t.rec.when, t.rec.seq, t.rec.digest);
  }
}

void ParallelEngine::run_partition_window(Partition& p) {
  // Alternate between draining local events and injecting inbox messages:
  // a message delivering at `t` enters the engine after every local event
  // with `when < t` executed and before anything at or past `t` runs.
  // That injection point is a pure function of the committed event stream
  // — not of window bounds — so the seq numbers the destination assigns
  // (and with them every per-event digest) are identical in both
  // lookahead modes and at any thread count.
  const SimTime bound = p.window_bound;
  for (;;) {
    const bool msg = p.inbox_pos < p.inbox.size() &&
                     p.inbox[p.inbox_pos].deliver_at < bound;
    const SimTime limit = msg ? p.inbox[p.inbox_pos].deliver_at : bound;
    if (p.engine->has_pending_events() &&
        p.engine->queue().next_time() < limit) {
      p.engine->run_before(limit);
    }
    if (!msg) return;
    const SimTime t = limit;
    do {
      p.engine->schedule_at(t, std::move(p.inbox[p.inbox_pos].fn));
      ++p.inbox_pos;
    } while (p.inbox_pos < p.inbox.size() &&
             p.inbox[p.inbox_pos].deliver_at == t);
  }
}

void ParallelEngine::execute_window() {
  if (threads_ <= 1 || parts_.size() == 1) {
    for (Partition& p : parts_) {
      if (p.runnable) run_partition_window(p);
    }
    return;
  }
  if (!pool_) {
    pool_ = std::make_unique<core::ThreadPool>(static_cast<unsigned>(
        std::min<std::size_t>(threads_, parts_.size())));
  }
  for (Partition& p : parts_) {
    if (!p.runnable) continue;
    pool_->submit([&p] {
      try {
        run_partition_window(p);
      } catch (...) {
        // Held until the barrier so error selection is deterministic.
        p.error = std::current_exception();
      }
    });
  }
  pool_->wait_idle();
}

void ParallelEngine::flush_inboxes() {
  // Drive teardown: every message still undelivered is addressed past the
  // deadline. Park it in the destination queue (inbox order is already the
  // deterministic commit order) so a follow-up run_until resumes from
  // state identical at any thread count and either lookahead mode.
  for (Partition& p : parts_) {
    for (std::size_t i = p.inbox_pos; i < p.inbox.size(); ++i) {
      p.engine->schedule_at(p.inbox[i].deliver_at, std::move(p.inbox[i].fn));
    }
    p.inbox.clear();
    p.inbox_pos = 0;
  }
}

void ParallelEngine::drive(std::optional<SimTime> deadline) {
  PARATICK_CHECK_MSG(!parts_.empty(), "ParallelEngine has no partitions");
  PARATICK_CHECK_MSG(!running_, "ParallelEngine::run is not reentrant");
  running_ = true;
  ScopedRunTimer timer(wall_ns_);

  // With a commit hook attached, install the window observers (they also
  // forward to whatever observer each partition engine already had) and
  // restore the originals on exit. Without one, skip the per-event
  // buffering entirely — the hook decision is taken at run start.
  struct ObserverGuard {
    ObserverGuard(std::vector<Partition>& parts, bool install)
        : parts_(parts), install_(install) {
      if (!install_) return;
      for (Partition& p : parts_) {
        p.observer.inner = p.engine->observer();
        p.engine->set_observer(&p.observer);
      }
    }
    ~ObserverGuard() {
      if (!install_) return;
      for (Partition& p : parts_) {
        p.engine->set_observer(p.observer.inner);
        p.observer.buffer.clear();
      }
    }
    std::vector<Partition>& parts_;
    bool install_;
  } observer_guard(parts_, static_cast<bool>(hook_));
  struct RunningGuard {
    explicit RunningGuard(bool& flag) : flag_(flag) {}
    ~RunningGuard() { flag_ = false; }
    bool& flag_;
  } running_guard(running_);

  incoming_.assign(parts_.size(), {});
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    incoming_[links_[i].dst].push_back(i);
  }

  const std::optional<SimTime> window = lookahead();
  std::optional<SimTime> prev_min_bound;
  std::vector<SimTime> floors(parts_.size());
  for (;;) {
    // Barrier head: commit the previous window's sends (and any pre-run
    // sends), then pick the lowest failing partition's error.
    ingest_outboxes();
    std::exception_ptr err;
    for (Partition& p : parts_) {
      if (p.error && !err) err = p.error;
      p.error = nullptr;
    }

    // Per-partition floors (earliest committed pending work) and the
    // global frontier. Everything any partition can still execute lies at
    // or past its floor, so records before the minimum are final.
    std::optional<SimTime> next;
    for (PartitionId pid = 0; pid < parts_.size(); ++pid) {
      const std::optional<SimTime> f = floor_of(parts_[pid]);
      floors[pid] = f.value_or(SimTime::max());
      if (f && (!next || *f < *next)) next = *f;
    }

    const bool ending = err || !next || (deadline && *next > *deadline);
    flush_commit_records(ending ? SimTime::max() : *next);
    if (err) std::rethrow_exception(err);
    if (ending) break;

    // Sparse barriers: the window start jumps directly to the earliest
    // committed work — count the empty global quanta that jump skipped.
    const SimTime start = *next;
    if (prev_min_bound && start > *prev_min_bound) {
      ++idle_skips_;
      if (window) {
        windows_skipped_ += static_cast<std::uint64_t>(
            (start.nanoseconds() - prev_min_bound->nanoseconds()) /
            window->nanoseconds());
      }
    }

    // kTopology horizons need the min-plus closure of the floors: an idle
    // partition can be woken by a message this window and relay onward,
    // so the earliest a partition can possibly execute is the shortest
    // latency path from any floor (Bellman-Ford; latencies are positive,
    // so this converges in at most partition_count passes).
    if (mode_ == LookaheadMode::kTopology && !links_.empty()) {
      for (std::size_t pass = 0; pass < parts_.size(); ++pass) {
        bool changed = false;
        for (const Link& l : links_) {
          if (floors[l.src] == SimTime::max()) continue;
          const SimTime via = saturating_add(floors[l.src], l.min_latency);
          if (via < floors[l.dst]) {
            floors[l.dst] = via;
            changed = true;
          }
        }
        if (!changed) break;
      }
    }

    // Per-partition execution bounds for this window.
    std::optional<SimTime> min_runnable_bound;
    for (PartitionId pid = 0; pid < parts_.size(); ++pid) {
      Partition& p = parts_[pid];
      SimTime bound = SimTime::max();
      if (window) {
        const SimTime global_bound = start + *window;
        if (mode_ == LookaheadMode::kGlobal) {
          bound = global_bound;
        } else {
          // CMB-style safe horizon: nothing can arrive before the
          // earliest possible send on an incoming link lands.
          for (const std::uint32_t li : incoming_[pid]) {
            const Link& l = links_[li];
            const SimTime via = saturating_add(floors[l.src], l.min_latency);
            if (via < bound) bound = via;
          }
          if (max_horizon_windows_ > 0) {
            SimTime cap = SimTime::max();
            const std::int64_t wn = window->nanoseconds();
            if (max_horizon_windows_ <
                static_cast<std::uint64_t>(
                    std::numeric_limits<std::int64_t>::max() / wn)) {
              cap = saturating_add(
                  start, SimTime::ns(wn * static_cast<std::int64_t>(
                                              max_horizon_windows_)));
            }
            if (cap < bound) bound = cap;
          }
          // The horizon can never be tighter than the global quantum.
          if (bound < global_bound) bound = global_bound;
        }
      }
      if (deadline && *deadline < SimTime::max() &&
          (*deadline + SimTime::ns(1)) < bound) {
        bound = *deadline + SimTime::ns(1);
      }
      p.window_bound = bound;
      const std::optional<SimTime> f = floor_of(p);
      p.runnable = f.has_value() && *f < bound;
      if (!p.runnable) continue;
      if (!min_runnable_bound || bound < *min_runnable_bound) {
        min_runnable_bound = bound;
      }
      if (window && bound > start + *window) {
        barriers_elided_ += static_cast<std::uint64_t>(
            (bound.nanoseconds() - start.nanoseconds() -
             window->nanoseconds()) /
            window->nanoseconds());
      }
      const std::uint64_t advance_ns =
          static_cast<std::uint64_t>(bound.nanoseconds() - start.nanoseconds());
      if (advance_ns > horizon_max_ns_) horizon_max_ns_ = advance_ns;
    }

    execute_window();
    ++quanta_;
    prev_min_bound = min_runnable_bound;
  }

  if (deadline) {
    for (Partition& p : parts_) {
      if (p.engine->now() < *deadline) p.engine->advance_to(*deadline);
    }
    flush_inboxes();
  } else {
    // run() drains everything; only the injected prefixes remain.
    for (Partition& p : parts_) {
      p.inbox.clear();
      p.inbox_pos = 0;
    }
  }
}

void ParallelEngine::run() { drive(std::nullopt); }

void ParallelEngine::run_until(SimTime deadline) { drive(deadline); }

ParallelProfile ParallelEngine::profile() const {
  ParallelProfile prof;
  prof.partitions = parts_.size();
  prof.quanta = quanta_;
  prof.idle_skips = idle_skips_;
  prof.windows_skipped = windows_skipped_;
  prof.barriers_elided = barriers_elided_;
  prof.horizon_max_ns = horizon_max_ns_;
  prof.cross_messages = cross_messages_;
  prof.wall_ns = wall_ns_;
  for (const Partition& p : parts_) {
    const EngineProfile ep = p.engine->profile();
    prof.events_committed += ep.events_executed;
    prof.merged.events_executed += ep.events_executed;
    prof.merged.events_scheduled += ep.events_scheduled;
    prof.merged.events_cancelled += ep.events_cancelled;
    prof.merged.callback_spills += ep.callback_spills;
    prof.merged.callback_spill_bytes += ep.callback_spill_bytes;
    prof.merged.slot_high_water += ep.slot_high_water;
    prof.merged.compactions += ep.compactions;
  }
  return prof;
}

std::uint64_t ParallelEngine::state_digest() const {
  // Window counters are deliberately excluded: they depend on the
  // lookahead mode, while this digest asserts result identity across
  // modes and thread counts.
  std::uint64_t h = 0xA24BAED4963EE407ull;
  for (const Partition& p : parts_) {
    h = mix64(h ^ p.engine->state_digest());
  }
  h = mix64(h ^ cross_messages_);
  return h;
}

}  // namespace paratick::sim
