#include "sim/parallel/parallel_engine.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

// Header-only worker pool shared with the sweep runner; no link-time
// dependency on paratick_core (which depends on this library).
#include "core/thread_pool.hpp"
#include "sim/check.hpp"

namespace paratick::sim {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class ScopedRunTimer {
 public:
  explicit ScopedRunTimer(std::uint64_t& sink)
      : sink_(sink), start_ns_(steady_now_ns()) {}
  ~ScopedRunTimer() { sink_ += steady_now_ns() - start_ns_; }
  ScopedRunTimer(const ScopedRunTimer&) = delete;
  ScopedRunTimer& operator=(const ScopedRunTimer&) = delete;

 private:
  std::uint64_t& sink_;
  std::uint64_t start_ns_;
};

constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void ParallelEngine::WindowObserver::on_event_executed(Engine& engine,
                                                       SimTime when,
                                                       std::uint64_t seq) {
  buffer.push_back({when, seq, engine.state_digest()});
  if (inner != nullptr) inner->on_event_executed(engine, when, seq);
}

ParallelEngine::ParallelEngine(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

ParallelEngine::~ParallelEngine() = default;

PartitionId ParallelEngine::add_partition(Engine& engine, std::string name) {
  PARATICK_CHECK_MSG(!running_, "cannot add a partition mid-run");
  for (const Partition& p : parts_) {
    PARATICK_CHECK_MSG(p.engine != &engine,
                       "engine already registered as a partition");
  }
  Partition part;
  part.engine = &engine;
  part.name = name.empty()
                  ? "partition" + std::to_string(parts_.size())
                  : std::move(name);
  parts_.push_back(std::move(part));
  return static_cast<PartitionId>(parts_.size() - 1);
}

void ParallelEngine::declare_link(PartitionId src, PartitionId dst,
                                  SimTime min_latency) {
  PARATICK_CHECK_MSG(src < parts_.size() && dst < parts_.size(),
                     "declare_link on an unknown partition");
  PARATICK_CHECK_MSG(src != dst, "a partition needs no link to itself");
  PARATICK_CHECK_MSG(min_latency > SimTime::zero(),
                     "cross-partition latency must be positive: a zero-"
                     "latency link would force a zero-length lookahead");
  links_.push_back({src, dst, min_latency});
}

void ParallelEngine::declare_full_mesh(SimTime min_latency) {
  for (PartitionId s = 0; s < parts_.size(); ++s) {
    for (PartitionId d = 0; d < parts_.size(); ++d) {
      if (s != d) declare_link(s, d, min_latency);
    }
  }
}

std::optional<SimTime> ParallelEngine::link_latency(PartitionId src,
                                                    PartitionId dst) const {
  std::optional<SimTime> best;
  for (const Link& l : links_) {
    if (l.src == src && l.dst == dst && (!best || l.min_latency < *best)) {
      best = l.min_latency;
    }
  }
  return best;
}

std::optional<SimTime> ParallelEngine::lookahead() const {
  std::optional<SimTime> best;
  for (const Link& l : links_) {
    if (!best || l.min_latency < *best) best = l.min_latency;
  }
  return best;
}

void ParallelEngine::send(PartitionId src, PartitionId dst, SimTime delay,
                          Engine::Callback fn) {
  PARATICK_CHECK_MSG(src < parts_.size() && dst < parts_.size(),
                     "send between unknown partitions");
  Partition& s = parts_[src];
  // Only the source partition's own events (or pre-run setup code) may
  // touch its outbox — that is what keeps the window lock-free.
  PARATICK_DCHECK(Engine::current() == s.engine || Engine::current() == nullptr);
  const std::optional<SimTime> link = link_latency(src, dst);
  PARATICK_CHECK_MSG(link.has_value(),
                     "cross-partition send over an undeclared link");
  PARATICK_CHECK_MSG(delay >= *link,
                     "cross-partition send faster than the declared link "
                     "latency (would violate the lookahead window)");
  CrossMessage msg;
  msg.deliver_at = s.engine->now() + delay;
  msg.src = src;
  msg.dst = dst;
  msg.src_seq = s.send_seq++;
  msg.fn = std::move(fn);
  s.outbox.push_back(std::move(msg));
}

std::size_t ParallelEngine::commit_window() {
  // 1. Replay the committed event stream to the hook, in the global merge
  //    order (time, partition, seq). Per-partition buffers are already
  //    sorted by execution, so a plain sort over the concatenation is
  //    deterministic and cheap.
  struct Tagged {
    CommitRecord rec;
    PartitionId part;
  };
  std::vector<Tagged> all;
  std::size_t total = 0;
  for (const Partition& p : parts_) total += p.observer.buffer.size();
  all.reserve(total);
  for (PartitionId pid = 0; pid < parts_.size(); ++pid) {
    for (const CommitRecord& r : parts_[pid].observer.buffer) {
      all.push_back({r, pid});
    }
    parts_[pid].observer.buffer.clear();
  }
  if (hook_) {
    std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
      if (a.rec.when != b.rec.when) return a.rec.when < b.rec.when;
      if (a.part != b.part) return a.part < b.part;
      return a.rec.seq < b.rec.seq;
    });
    for (const Tagged& t : all) {
      hook_(t.part, t.rec.when, t.rec.seq, t.rec.digest);
    }
  }

  // 2. Commit buffered sends into their destination engines, sorted by
  //    (delivery time, source partition, per-source send order): the
  //    destination's schedule-order seq assignment — and therefore its
  //    whole future event order — is a pure function of committed state.
  std::vector<CrossMessage> inflight;
  for (Partition& p : parts_) {
    std::move(p.outbox.begin(), p.outbox.end(), std::back_inserter(inflight));
    p.outbox.clear();
  }
  std::sort(inflight.begin(), inflight.end(),
            [](const CrossMessage& a, const CrossMessage& b) {
              if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
              if (a.src != b.src) return a.src < b.src;
              return a.src_seq < b.src_seq;
            });
  for (CrossMessage& m : inflight) {
    parts_[m.dst].engine->schedule_at(m.deliver_at, std::move(m.fn));
  }
  cross_messages_ += inflight.size();

  // 3. Propagate the lowest failing partition's error (deterministic at
  //    any thread count — never "whichever worker lost the race").
  for (Partition& p : parts_) {
    if (p.error) {
      std::exception_ptr err = p.error;
      p.error = nullptr;
      std::rethrow_exception(err);
    }
  }
  return inflight.size();
}

void ParallelEngine::execute_window(SimTime bound) {
  // Partitions with no event before the bound would no-op; skipping them
  // is decided purely on committed state, so it never affects results.
  auto runnable = [&](const Partition& p) {
    return p.engine->has_pending_events() &&
           p.engine->queue().next_time() < bound;
  };
  if (threads_ <= 1 || parts_.size() == 1) {
    for (Partition& p : parts_) {
      if (runnable(p)) p.engine->run_before(bound);
    }
    return;
  }
  if (!pool_) {
    pool_ = std::make_unique<core::ThreadPool>(static_cast<unsigned>(
        std::min<std::size_t>(threads_, parts_.size())));
  }
  for (Partition& p : parts_) {
    if (!runnable(p)) continue;
    pool_->submit([&p, bound] {
      try {
        p.engine->run_before(bound);
      } catch (...) {
        // Held until the barrier so error selection is deterministic.
        p.error = std::current_exception();
      }
    });
  }
  pool_->wait_idle();
}

void ParallelEngine::drive(std::optional<SimTime> deadline) {
  PARATICK_CHECK_MSG(!parts_.empty(), "ParallelEngine has no partitions");
  PARATICK_CHECK_MSG(!running_, "ParallelEngine::run is not reentrant");
  running_ = true;
  ScopedRunTimer timer(wall_ns_);

  // With a commit hook attached, install the window observers (they also
  // forward to whatever observer each partition engine already had) and
  // restore the originals on exit. Without one, skip the per-event
  // buffering entirely — the hook decision is taken at run start.
  struct ObserverGuard {
    ObserverGuard(std::vector<Partition>& parts, bool install)
        : parts_(parts), install_(install) {
      if (!install_) return;
      for (Partition& p : parts_) {
        p.observer.inner = p.engine->observer();
        p.engine->set_observer(&p.observer);
      }
    }
    ~ObserverGuard() {
      if (!install_) return;
      for (Partition& p : parts_) {
        p.engine->set_observer(p.observer.inner);
        p.observer.buffer.clear();
      }
    }
    std::vector<Partition>& parts_;
    bool install_;
  } observer_guard(parts_, static_cast<bool>(hook_));
  struct RunningGuard {
    explicit RunningGuard(bool& flag) : flag_(flag) {}
    ~RunningGuard() { flag_ = false; }
    bool& flag_;
  } running_guard(running_);

  const std::optional<SimTime> window = lookahead();
  std::optional<SimTime> prev_bound;
  for (;;) {
    // Barrier head: commit the previous window (and any pre-run sends).
    commit_window();

    // Earliest committed work anywhere.
    std::optional<SimTime> next;
    for (const Partition& p : parts_) {
      if (!p.engine->has_pending_events()) continue;
      const SimTime t = p.engine->queue().next_time();
      if (!next || t < *next) next = t;
    }
    if (!next || (deadline && *next > *deadline)) break;

    // Window [start, bound): conservative lookahead, clamped so events at
    // exactly the deadline still execute (run_until semantics). With no
    // links the partitions are independent — one window runs everything.
    const SimTime start = *next;
    SimTime bound = SimTime::max();
    if (window) bound = start + *window;
    if (deadline && *deadline < SimTime::max() &&
        (*deadline + SimTime::ns(1)) < bound) {
      bound = *deadline + SimTime::ns(1);
    }
    if (prev_bound && start > *prev_bound) ++idle_skips_;

    execute_window(bound);
    ++quanta_;
    prev_bound = bound;
  }

  if (deadline) {
    for (Partition& p : parts_) {
      if (p.engine->now() < *deadline) p.engine->advance_to(*deadline);
    }
  }
}

void ParallelEngine::run() { drive(std::nullopt); }

void ParallelEngine::run_until(SimTime deadline) { drive(deadline); }

ParallelProfile ParallelEngine::profile() const {
  ParallelProfile prof;
  prof.partitions = parts_.size();
  prof.quanta = quanta_;
  prof.idle_skips = idle_skips_;
  prof.cross_messages = cross_messages_;
  prof.wall_ns = wall_ns_;
  for (const Partition& p : parts_) {
    const EngineProfile ep = p.engine->profile();
    prof.events_committed += ep.events_executed;
    prof.merged.events_executed += ep.events_executed;
    prof.merged.events_scheduled += ep.events_scheduled;
    prof.merged.events_cancelled += ep.events_cancelled;
    prof.merged.callback_spills += ep.callback_spills;
    prof.merged.callback_spill_bytes += ep.callback_spill_bytes;
    prof.merged.slot_high_water += ep.slot_high_water;
    prof.merged.compactions += ep.compactions;
  }
  return prof;
}

std::uint64_t ParallelEngine::state_digest() const {
  std::uint64_t h = 0xA24BAED4963EE407ull;
  for (const Partition& p : parts_) {
    h = mix64(h ^ p.engine->state_digest());
  }
  h = mix64(h ^ cross_messages_);
  h = mix64(h ^ quanta_);
  return h;
}

}  // namespace paratick::sim
