// Conservative-quantum parallel driver for a set of partitioned Engines
// (the parti-gem5 direction from PAPERS.md).
//
// Each partition owns a private sim::Engine — its events never touch
// another partition's state — and partitions interact only through
// cross-partition sends carried over *declared links* with a minimum
// latency. Within one window every partition can safely execute its
// local events in parallel, because any message another partition emits
// during the window is delivered no earlier than the receiver's bound.
// At the window's end all workers rendezvous at a barrier, buffered
// sends are committed into per-partition inboxes in a deterministic
// global order, and the next window begins.
//
// Two lookahead modes pick the per-window execution bound:
//
//   kGlobal    every partition runs to `start + L`, where L is the
//              minimum latency over ALL declared links — the classic
//              conservative quantum. One tight link collapses every
//              partition to tiny windows.
//   kTopology  CMB-style per-partition safe horizon: partition P runs to
//              `min over incoming links (src floor + link latency)`,
//              where a partition's *floor* is its earliest committed
//              pending work (local queue or undelivered inbox message).
//              Partitions behind a slow link — or with no inbound links
//              at all — cover many global quanta per barrier
//              (`set_max_horizon_windows` caps how many).
//
// Sparse barriers: window starts always jump directly to the earliest
// committed work anywhere, so globally-dead stretches cost zero barriers
// in either mode (counted in `windows_skipped`).
//
// Determinism: each partition engine is deterministic on its own; the
// barrier sorts messages by (delivery time, source partition, per-source
// send seq) into the destination's inbox, and the destination *injects*
// each message into its engine exactly when its own execution first
// reaches the delivery time — a time-canonical point that does not
// depend on which window delivered the message. The merged event stream,
// every per-event digest, and every counter derived from them are
// therefore bit-identical for ANY worker-thread count AND both lookahead
// modes, which is what the engine-threads/lookahead-mode CI gates
// compare. Only the window/barrier counters (quanta, windows_skipped,
// barriers_elided, horizon_max_ns) depend on the mode.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace paratick::core {
class ThreadPool;
}  // namespace paratick::core

namespace paratick::sim {

using PartitionId = std::uint32_t;

/// How the per-window execution bound is derived from the declared links.
enum class LookaheadMode : std::uint8_t {
  kGlobal,    ///< every partition bounded by the global minimum latency
  kTopology,  ///< per-partition bound from incoming links (CMB-style)
};

[[nodiscard]] const char* to_string(LookaheadMode mode);

/// Deterministic self-profile of one ParallelEngine run. Everything except
/// wall_ns is a pure function of the workload and the lookahead mode, and
/// identical for any worker-thread count; wall_ns is host wall-clock and
/// reporting-only. The window counters (quanta, idle_skips,
/// windows_skipped, barriers_elided, horizon_max_ns) depend on the
/// lookahead mode — exports that must stay byte-identical across modes
/// carry only the other fields.
struct ParallelProfile {
  std::uint64_t partitions = 0;
  /// Barrier-delimited quantum windows executed.
  std::uint64_t quanta = 0;
  /// Windows whose start jumped forward over globally-dead time.
  std::uint64_t idle_skips = 0;
  /// Empty global-quantum windows those jumps skipped (dead time / L).
  std::uint64_t windows_skipped = 0;
  /// Extra global-quantum windows runnable partitions covered past
  /// `start + L` without a rendezvous (kTopology horizons; 0 in kGlobal).
  std::uint64_t barriers_elided = 0;
  /// Largest single-window horizon advance (bound - start) in ns.
  std::uint64_t horizon_max_ns = 0;
  /// Cross-partition messages committed at barriers.
  std::uint64_t cross_messages = 0;
  /// Events executed across all partitions.
  std::uint64_t events_committed = 0;
  /// Host nanoseconds inside run()/run_until(). Not deterministic.
  std::uint64_t wall_ns = 0;
  /// Partition EngineProfiles summed field-by-field (wall_ns excluded —
  /// concurrent partitions overlap, so a sum would double-count).
  EngineProfile merged;
};

/// Committed-global-order tap: called once per executed event, in the
/// deterministic merge order (time, partition, seq). Records are released
/// at barriers once the global frontier passes them — with kTopology
/// horizons a partition may run ahead of the frontier, so its records are
/// held back until no earlier event can still appear. `digest` is the
/// partition engine's state digest taken right after the event's callback
/// ran — the record/replay layer's per-event fingerprint.
using CommitHook = std::function<void(PartitionId partition, SimTime when,
                                      std::uint64_t seq, std::uint64_t digest)>;

class ParallelEngine {
 public:
  /// `threads == 1` runs every window inline on the calling thread (the
  /// reference order); `threads > 1` runs windows on a core::ThreadPool.
  /// `threads == 0` means hardware_concurrency.
  explicit ParallelEngine(unsigned threads = 1);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Register `engine` as a partition. Non-owning: the engine must outlive
  /// this ParallelEngine, and from now on only this driver (or code running
  /// inside its events) may touch it — its events are executed on worker
  /// threads. Partitions must be added before the first run.
  PartitionId add_partition(Engine& engine, std::string name = {});

  /// Declare that messages from `src` to `dst` take at least `min_latency`
  /// to arrive. send() on an undeclared pair is an error; the minimum over
  /// all declared links is the global lookahead, and in kTopology mode
  /// each partition's horizon comes from its own incoming links.
  void declare_link(PartitionId src, PartitionId dst, SimTime min_latency);

  /// Declare every ordered pair of distinct partitions at `min_latency` —
  /// a shared fabric (virtio completions, scheduler wake IPIs).
  void declare_full_mesh(SimTime min_latency);

  /// Send `fn` to fire in `dst` at src.now() + delay. Must be called from
  /// an event executing in `src` (or before the run starts), never from
  /// another partition's thread: the message is buffered in src's private
  /// outbox and committed at the next barrier. `delay` must be at least
  /// the declared src->dst link latency — that floor is what makes the
  /// lookahead window safe.
  void send(PartitionId src, PartitionId dst, SimTime delay,
            Engine::Callback fn);

  /// Run quantum windows until every partition is idle and no message is
  /// in flight. A SimError thrown inside a partition propagates after the
  /// window's barrier; when several partitions fail in one window, the
  /// lowest partition id wins (deterministic at any thread count).
  void run();

  /// Run until `deadline`; events stamped exactly at `deadline` execute,
  /// and every partition clock ends at exactly `deadline` (like
  /// Engine::run_until on each partition). Messages still in flight past
  /// the deadline are flushed into their destination queues in commit
  /// order, so a follow-up drive resumes from identical state.
  void run_until(SimTime deadline);

  /// Attach (or clear) the committed-order tap. Costs one buffered record
  /// per event while attached; purely observational otherwise (with no
  /// hook the per-event buffering is skipped — the decision is taken at
  /// the start of each run()/run_until()).
  void set_commit_hook(CommitHook hook) { hook_ = std::move(hook); }

  /// Select how window bounds are derived (default kGlobal). May be
  /// changed between runs, never during one. The committed event stream
  /// is identical in both modes; only window/barrier counters differ.
  void set_lookahead_mode(LookaheadMode mode);
  [[nodiscard]] LookaheadMode lookahead_mode() const { return mode_; }

  /// Cap a kTopology horizon at `windows` global quanta past the window
  /// start (bounds barrier-buffer growth when a partition has slow or no
  /// inbound links). 0 means unbounded; default 64. Ignored in kGlobal.
  void set_max_horizon_windows(std::uint64_t windows);
  [[nodiscard]] std::uint64_t max_horizon_windows() const {
    return max_horizon_windows_;
  }

  [[nodiscard]] std::size_t partition_count() const { return parts_.size(); }
  [[nodiscard]] Engine& engine(PartitionId p) { return *parts_[p].engine; }
  [[nodiscard]] const std::string& name(PartitionId p) const {
    return parts_[p].name;
  }
  [[nodiscard]] unsigned threads() const { return threads_; }
  /// Global lookahead derived from the declared links (nullopt: none
  /// declared — partitions are fully independent and run to completion in
  /// one window).
  [[nodiscard]] std::optional<SimTime> lookahead() const;

  [[nodiscard]] ParallelProfile profile() const;

  /// Digest of the deterministic whole-run state: partition digests folded
  /// in partition order plus the cross-message total. Bit-identical across
  /// runs of the same workload at any thread count and either lookahead
  /// mode (window counters are deliberately excluded).
  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  struct CommitRecord {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t digest;
  };

  /// Per-partition committed-order buffer: records every event the window
  /// executed, then forwards to whatever observer the partition already had.
  class WindowObserver final : public EventObserver {
   public:
    void on_event_executed(Engine& engine, SimTime when,
                           std::uint64_t seq) override;
    std::vector<CommitRecord> buffer;
    EventObserver* inner = nullptr;
  };

  struct CrossMessage {
    SimTime deliver_at;
    PartitionId src = 0;
    PartitionId dst = 0;
    std::uint64_t src_seq = 0;  // per-source send order (commit tiebreak)
    Engine::Callback fn;
  };

  struct Partition {
    Engine* engine = nullptr;
    std::string name;
    std::vector<CrossMessage> outbox;  // touched only by this partition
    /// Committed-but-undelivered messages, sorted (deliver_at, src,
    /// src_seq); entries before inbox_pos were already injected. Appended
    /// at barriers, consumed inside this partition's window task.
    std::vector<CrossMessage> inbox;
    std::size_t inbox_pos = 0;
    std::uint64_t send_seq = 0;
    SimTime window_bound;      // this window's execution bound
    bool runnable = false;     // has committed work before window_bound
    std::exception_ptr error;  // first failure inside a window
    WindowObserver observer;
  };

  struct Link {
    PartitionId src = 0;
    PartitionId dst = 0;
    SimTime min_latency;
  };

  void drive(std::optional<SimTime> deadline);
  /// Barrier ingest: move every outbox into the destination inboxes in
  /// deterministic order and rethrow the lowest-partition error.
  void ingest_outboxes();
  /// Earliest committed pending work of partition `p` (local queue or
  /// undelivered inbox message); nullopt when fully idle.
  [[nodiscard]] std::optional<SimTime> floor_of(const Partition& p) const;
  /// Release buffered commit records with `when < frontier` to the hook,
  /// merged in (when, partition, seq) order.
  void flush_commit_records(SimTime frontier);
  /// Run one partition's window: execute local events and inject inbox
  /// messages at their exact delivery times, up to the partition's bound.
  static void run_partition_window(Partition& p);
  void execute_window();
  /// Inject every undelivered message into its destination queue (drive
  /// teardown: the remaining messages deliver past the deadline).
  void flush_inboxes();
  [[nodiscard]] std::optional<SimTime> link_latency(PartitionId src,
                                                    PartitionId dst) const;

  std::vector<Partition> parts_;
  std::vector<Link> links_;
  /// links_ indices grouped by destination (built lazily per drive).
  std::vector<std::vector<std::uint32_t>> incoming_;
  CommitHook hook_;
  unsigned threads_ = 1;
  LookaheadMode mode_ = LookaheadMode::kGlobal;
  std::uint64_t max_horizon_windows_ = 64;
  std::unique_ptr<core::ThreadPool> pool_;
  bool running_ = false;
  std::uint64_t quanta_ = 0;
  std::uint64_t idle_skips_ = 0;
  std::uint64_t windows_skipped_ = 0;
  std::uint64_t barriers_elided_ = 0;
  std::uint64_t horizon_max_ns_ = 0;
  std::uint64_t cross_messages_ = 0;
  std::uint64_t wall_ns_ = 0;
};

}  // namespace paratick::sim
