// Conservative-quantum parallel driver for a set of partitioned Engines
// (the parti-gem5 direction from PAPERS.md).
//
// Each partition owns a private sim::Engine — its events never touch
// another partition's state — and partitions interact only through
// cross-partition sends carried over *declared links* with a minimum
// latency. The smallest declared latency is the lookahead: within one
// quantum window [W, W + lookahead) every partition can safely execute
// its local events in parallel, because any message another partition
// emits during the window is delivered no earlier than W + lookahead.
// At the window's end all workers rendezvous at a barrier, buffered
// sends are committed into their destination engines in a deterministic
// global order, and the next window begins.
//
// Determinism: each partition engine is deterministic on its own; the
// barrier commits messages sorted by (delivery time, source partition,
// per-source send seq); and window boundaries are pure functions of
// committed state. The merged event stream — and every counter derived
// from it — is therefore bit-identical for ANY worker-thread count,
// which is what the engine-threads 1-vs-N CI gates compare.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace paratick::core {
class ThreadPool;
}  // namespace paratick::core

namespace paratick::sim {

using PartitionId = std::uint32_t;

/// Deterministic self-profile of one ParallelEngine run. Everything except
/// wall_ns is a pure function of the workload and identical for any
/// worker-thread count; wall_ns is host wall-clock and reporting-only.
struct ParallelProfile {
  std::uint64_t partitions = 0;
  /// Barrier-delimited quantum windows executed.
  std::uint64_t quanta = 0;
  /// Windows whose start jumped forward over globally-dead time.
  std::uint64_t idle_skips = 0;
  /// Cross-partition messages committed at barriers.
  std::uint64_t cross_messages = 0;
  /// Events executed across all partitions.
  std::uint64_t events_committed = 0;
  /// Host nanoseconds inside run()/run_until(). Not deterministic.
  std::uint64_t wall_ns = 0;
  /// Partition EngineProfiles summed field-by-field (wall_ns excluded —
  /// concurrent partitions overlap, so a sum would double-count).
  EngineProfile merged;
};

/// Committed-global-order tap: called at each quantum barrier, once per
/// event executed during the window, in the deterministic merge order
/// (time, partition, seq). `digest` is the partition engine's state digest
/// taken right after the event's callback ran — the record/replay layer's
/// per-event fingerprint (core/record_replay hangs an EventTrace off this).
using CommitHook = std::function<void(PartitionId partition, SimTime when,
                                      std::uint64_t seq, std::uint64_t digest)>;

class ParallelEngine {
 public:
  /// `threads == 1` runs every window inline on the calling thread (the
  /// reference order); `threads > 1` runs windows on a core::ThreadPool.
  /// `threads == 0` means hardware_concurrency.
  explicit ParallelEngine(unsigned threads = 1);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Register `engine` as a partition. Non-owning: the engine must outlive
  /// this ParallelEngine, and from now on only this driver (or code running
  /// inside its events) may touch it — its events are executed on worker
  /// threads. Partitions must be added before the first run.
  PartitionId add_partition(Engine& engine, std::string name = {});

  /// Declare that messages from `src` to `dst` take at least `min_latency`
  /// to arrive. send() on an undeclared pair is an error; the minimum over
  /// all declared links is the lookahead (quantum window length).
  void declare_link(PartitionId src, PartitionId dst, SimTime min_latency);

  /// Declare every ordered pair of distinct partitions at `min_latency` —
  /// a shared fabric (virtio completions, scheduler wake IPIs).
  void declare_full_mesh(SimTime min_latency);

  /// Send `fn` to fire in `dst` at src.now() + delay. Must be called from
  /// an event executing in `src` (or before the run starts), never from
  /// another partition's thread: the message is buffered in src's private
  /// outbox and committed at the next barrier. `delay` must be at least
  /// the declared src->dst link latency — that floor is what makes the
  /// lookahead window safe.
  void send(PartitionId src, PartitionId dst, SimTime delay,
            Engine::Callback fn);

  /// Run quantum windows until every partition is idle and no message is
  /// in flight. A SimError thrown inside a partition propagates after the
  /// window's barrier; when several partitions fail in one window, the
  /// lowest partition id wins (deterministic at any thread count).
  void run();

  /// Run until `deadline`; events stamped exactly at `deadline` execute,
  /// and every partition clock ends at exactly `deadline` (like
  /// Engine::run_until on each partition).
  void run_until(SimTime deadline);

  /// Attach (or clear) the committed-order tap. Costs one buffered record
  /// per event while attached; purely observational otherwise (with no
  /// hook the per-event buffering is skipped — the decision is taken at
  /// the start of each run()/run_until()).
  void set_commit_hook(CommitHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] std::size_t partition_count() const { return parts_.size(); }
  [[nodiscard]] Engine& engine(PartitionId p) { return *parts_[p].engine; }
  [[nodiscard]] const std::string& name(PartitionId p) const {
    return parts_[p].name;
  }
  [[nodiscard]] unsigned threads() const { return threads_; }
  /// Lookahead derived from the declared links (nullopt: none declared —
  /// partitions are fully independent and run to completion in one window).
  [[nodiscard]] std::optional<SimTime> lookahead() const;

  [[nodiscard]] ParallelProfile profile() const;

  /// Digest of the deterministic whole-run state: partition digests folded
  /// in partition order plus the cross-message total. Bit-identical across
  /// runs of the same workload at any thread count.
  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  struct CommitRecord {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t digest;
  };

  /// Per-partition committed-order buffer: records every event the window
  /// executed, then forwards to whatever observer the partition already had.
  class WindowObserver final : public EventObserver {
   public:
    void on_event_executed(Engine& engine, SimTime when,
                           std::uint64_t seq) override;
    std::vector<CommitRecord> buffer;
    EventObserver* inner = nullptr;
  };

  struct CrossMessage {
    SimTime deliver_at;
    PartitionId src = 0;
    PartitionId dst = 0;
    std::uint64_t src_seq = 0;  // per-source send order (commit tiebreak)
    Engine::Callback fn;
  };

  struct Partition {
    Engine* engine = nullptr;
    std::string name;
    std::vector<CrossMessage> outbox;  // touched only by this partition
    std::uint64_t send_seq = 0;
    std::exception_ptr error;  // first failure inside a window
    WindowObserver observer;
  };

  struct Link {
    PartitionId src = 0;
    PartitionId dst = 0;
    SimTime min_latency;
  };

  void drive(std::optional<SimTime> deadline);
  /// Barrier step: deliver buffered sends in deterministic order, replay
  /// buffered records to the commit hook, rethrow the lowest-partition
  /// error. Returns the number of messages committed.
  std::size_t commit_window();
  void execute_window(SimTime bound);
  [[nodiscard]] std::optional<SimTime> link_latency(PartitionId src,
                                                    PartitionId dst) const;

  std::vector<Partition> parts_;
  std::vector<Link> links_;
  CommitHook hook_;
  unsigned threads_ = 1;
  std::unique_ptr<core::ThreadPool> pool_;
  bool running_ = false;
  std::uint64_t quanta_ = 0;
  std::uint64_t idle_skips_ = 0;
  std::uint64_t cross_messages_ = 0;
  std::uint64_t wall_ns_ = 0;
};

}  // namespace paratick::sim
