#include "sim/rng.hpp"

#include <cmath>
#include <numbers>

#include "sim/check.hpp"

namespace paratick::sim {

namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PARATICK_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::uniform_real(double lo, double hi) {
  PARATICK_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  PARATICK_CHECK(mean > 0.0);
  double u = next_double();
  if (u >= 1.0) u = 0.9999999999999999;
  return -mean * std::log1p(-u);
}

double Rng::normal(double mean, double stddev, double min_value) {
  const double u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1 <= 0.0 ? 1e-300 : u1));
  const double z = r * std::cos(2.0 * std::numbers::pi * u2);
  const double v = mean + stddev * z;
  return v < min_value ? min_value : v;
}

double Rng::pareto(double alpha, double lo, double hi) {
  PARATICK_CHECK(alpha > 0.0 && lo > 0.0 && lo <= hi);
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  return x < lo ? lo : (x > hi ? hi : x);
}

bool Rng::bernoulli(double p) { return next_double() < p; }

SimTime Rng::exp_time(SimTime mean) {
  const double ns = exponential(static_cast<double>(mean.nanoseconds()));
  return SimTime::ns(ns < 1.0 ? 1 : static_cast<std::int64_t>(ns));
}

SimTime Rng::normal_time(SimTime mean, SimTime stddev) {
  const double ns = normal(static_cast<double>(mean.nanoseconds()),
                           static_cast<double>(stddev.nanoseconds()), 1.0);
  return SimTime::ns(static_cast<std::int64_t>(ns));
}

Rng Rng::split() { return Rng{next_u64()}; }

}  // namespace paratick::sim
