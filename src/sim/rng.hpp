// Deterministic pseudo-random numbers for the simulator.
//
// xoshiro256** — fast, high quality, and fully reproducible across
// platforms (unlike std::default_random_engine). Every stochastic model
// component owns its own stream, split off a root seed, so adding a
// component never perturbs the draws of another.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace paratick::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Box–Muller, clamped at `min_value` (default 0).
  double normal(double mean, double stddev, double min_value = 0.0);

  /// Bounded Pareto draw with shape `alpha`, in [lo, hi].
  double pareto(double alpha, double lo, double hi);

  /// True with probability p.
  bool bernoulli(double p);

  /// Exponential inter-arrival SimTime with the given mean (≥ 1 ns).
  SimTime exp_time(SimTime mean);

  /// Normal SimTime clamped at ≥ 1 ns.
  SimTime normal_time(SimTime mean, SimTime stddev);

  /// Derive an independent child stream (splitmix over the state).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace paratick::sim
