#include "sim/stats.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/check.hpp"

namespace paratick::sim {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_), m = static_cast<double>(other.n_);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  mean_ = (n * mean_ + m * other.mean_) / (n + m);
  sum_ += other.sum_;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  // Two-sided 97.5% Student's t quantiles for df = 1..30; 1.96 beyond.
  static constexpr double kT975[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  const std::uint64_t df = n_ - 1;
  const double t = df <= 30 ? kT975[df - 1] : 1.96;
  return t * stddev() / std::sqrt(static_cast<double>(n_));
}

namespace {
std::size_t bucket_for(double x) {
  if (x < 1.0) return 0;
  std::size_t b = 0;
  while (x >= 2.0 && b < 62) {
    x /= 2.0;
    ++b;
  }
  return b;
}
}  // namespace

void LogHistogram::add(double x) {
  // NaN compares false against every bucket boundary and would silently
  // land in bucket 0 (as would negatives, lumped into [0, 2)) — both are
  // upstream metric bugs, so fail loudly instead of poisoning the tail.
  PARATICK_CHECK_MSG(!std::isnan(x), "LogHistogram sample is NaN");
  PARATICK_CHECK_MSG(x >= 0.0, "LogHistogram sample is negative");
  const std::size_t b = bucket_for(x);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  ++total_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
}

namespace {
// Bucket 0 is the [0, 2) catch-all (it also holds sub-1.0 samples), so its
// reported midpoint is 1; buckets i >= 1 cover [2^i, 2^(i+1)).
double bucket_midpoint(std::size_t i) {
  return i == 0 ? 1.0 : std::ldexp(1.5, static_cast<int>(i));
}
double bucket_lower(std::size_t i) {
  return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
}
}  // namespace

double LogHistogram::percentile(double p) const {
  PARATICK_CHECK(p >= 0.0 && p <= 100.0);
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) return bucket_midpoint(i);
  }
  return bucket_midpoint(buckets_.size() - 1);
}

std::string LogHistogram::to_string() const {
  std::string out;
  char line[96];
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    std::snprintf(line, sizeof line, "[%g, %g): %llu\n", bucket_lower(i),
                  std::ldexp(1.0, static_cast<int>(i) + 1),
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
  }
  return out;
}

}  // namespace paratick::sim
