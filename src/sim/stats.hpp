// Statistics primitives: counters, Welford accumulators, log-scale
// histograms. Used by the metrics layer and directly by benches.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace paratick::sim {

/// Running mean / variance / min / max without storing samples (Welford).
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  /// Half-width of the 95% confidence interval of the mean (Student's t
  /// for small n, 1.96 asymptotically). 0 when fewer than two samples —
  /// callers print a bare mean instead of a meaningless ±NaN.
  [[nodiscard]] double ci95_half_width() const;

  /// Merge another accumulator into this one (parallel-combine form).
  void merge(const Accumulator& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Power-of-two bucketed histogram for latency-like quantities.
/// Bucket i (i >= 1) covers [2^i, 2^(i+1)); bucket 0 is the catch-all
/// [0, 2) (sub-1.0 samples included), reported with midpoint 1.
class LogHistogram {
 public:
  void add(double x);

  /// Merge another histogram into this one (bucket-wise sum), so per-run
  /// histograms can be combined across sweep replicas.
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] double percentile(double p) const;  // p in [0, 100]
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace paratick::sim
