// Statistics primitives: counters, Welford accumulators, log-scale
// histograms. Used by the metrics layer and directly by benches.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace paratick::sim {

/// Running mean / variance / min / max without storing samples (Welford).
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  /// Half-width of the 95% confidence interval of the mean (Student's t
  /// for small n, 1.96 asymptotically). 0 when fewer than two samples —
  /// callers print a bare mean instead of a meaningless ±NaN.
  [[nodiscard]] double ci95_half_width() const;

  /// Merge another accumulator into this one (parallel-combine form).
  void merge(const Accumulator& other);

  /// Raw Welford state, for exact serialization across process/host
  /// boundaries (fork pipes, shard partial snapshots). Round-tripping
  /// through state()/from_state reproduces the accumulator bit-for-bit,
  /// which is what keeps sharded sweeps byte-identical to local runs.
  struct State {
    std::uint64_t n = 0;
    double mean = 0.0, m2 = 0.0, sum = 0.0, min = 0.0, max = 0.0;
  };
  [[nodiscard]] State state() const { return {n_, mean_, m2_, sum_, min_, max_}; }
  [[nodiscard]] static Accumulator from_state(const State& s) {
    Accumulator a;
    a.n_ = s.n;
    a.mean_ = s.mean;
    a.m2_ = s.m2;
    a.sum_ = s.sum;
    a.min_ = s.min;
    a.max_ = s.max;
    return a;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Power-of-two bucketed histogram for latency-like quantities.
/// Bucket i (i >= 1) covers [2^i, 2^(i+1)); bucket 0 is the catch-all
/// [0, 2) (sub-1.0 samples included), reported with midpoint 1.
class LogHistogram {
 public:
  void add(double x);

  /// Merge another histogram into this one (bucket-wise sum), so per-run
  /// histograms can be combined across sweep replicas.
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] double percentile(double p) const;  // p in [0, 100]
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Rebuild a histogram from exported bucket counts (the inverse of
  /// buckets(), for deserializing run records).
  [[nodiscard]] static LogHistogram from_buckets(std::vector<std::uint64_t> buckets) {
    LogHistogram h;
    h.buckets_ = std::move(buckets);
    h.total_ = 0;
    for (const std::uint64_t b : h.buckets_) h.total_ += b;
    return h;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace paratick::sim
