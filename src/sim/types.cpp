#include "sim/types.hpp"

#include <cmath>
#include <cstdio>

namespace paratick::sim {

std::string to_string(SimTime t) {
  char buf[64];
  const auto ns = t.nanoseconds();
  if (std::llabs(ns) >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", t.seconds());
  } else if (std::llabs(ns) >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", t.milliseconds());
  } else if (std::llabs(ns) >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", t.microseconds());
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

std::string to_string(Cycles c) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld cycles", static_cast<long long>(c.count()));
  return buf;
}

}  // namespace paratick::sim
