// Strong types for simulated time, CPU cycles and frequencies.
//
// The whole simulator is built on a single logical clock with nanosecond
// resolution. Cycles are accounted separately and converted through a
// CpuFrequency so that per-CPU clock speeds remain possible.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace paratick::sim {

/// A point or span on the simulated clock, in nanoseconds.
///
/// SimTime is deliberately a single type for both instants and durations:
/// the simulator does enough mixed arithmetic (deadlines, periods, budgets)
/// that a two-type split costs more than it buys, but the strong wrapper
/// still prevents accidental mixing with raw integers or cycle counts.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  [[nodiscard]] static constexpr SimTime ns(std::int64_t v) { return SimTime{v}; }
  [[nodiscard]] static constexpr SimTime us(std::int64_t v) { return SimTime{v * 1'000}; }
  [[nodiscard]] static constexpr SimTime ms(std::int64_t v) { return SimTime{v * 1'000'000}; }
  [[nodiscard]] static constexpr SimTime sec(std::int64_t v) { return SimTime{v * 1'000'000'000}; }
  [[nodiscard]] static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }

  [[nodiscard]] constexpr std::int64_t nanoseconds() const { return ns_; }
  [[nodiscard]] constexpr double microseconds() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double milliseconds() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime rhs) { ns_ += rhs.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime rhs) { ns_ -= rhs.ns_; return *this; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.ns_ + b.ns_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.ns_ - b.ns_}; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.ns_ * k}; }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return SimTime{a.ns_ * k}; }
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) { return a.ns_ / b.ns_; }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) { return SimTime{a.ns_ / k}; }
  friend constexpr SimTime operator%(SimTime a, SimTime b) { return SimTime{a.ns_ % b.ns_}; }

 private:
  std::int64_t ns_ = 0;
};

/// A CPU cycle count (work performed or overhead paid).
class Cycles {
 public:
  constexpr Cycles() = default;
  constexpr explicit Cycles(std::int64_t c) : c_(c) {}

  [[nodiscard]] static constexpr Cycles zero() { return Cycles{0}; }
  [[nodiscard]] constexpr std::int64_t count() const { return c_; }

  constexpr auto operator<=>(const Cycles&) const = default;
  constexpr Cycles& operator+=(Cycles rhs) { c_ += rhs.c_; return *this; }
  constexpr Cycles& operator-=(Cycles rhs) { c_ -= rhs.c_; return *this; }

  friend constexpr Cycles operator+(Cycles a, Cycles b) { return Cycles{a.c_ + b.c_}; }
  friend constexpr Cycles operator-(Cycles a, Cycles b) { return Cycles{a.c_ - b.c_}; }
  friend constexpr Cycles operator*(Cycles a, std::int64_t k) { return Cycles{a.c_ * k}; }
  friend constexpr Cycles operator*(std::int64_t k, Cycles a) { return Cycles{a.c_ * k}; }

 private:
  std::int64_t c_ = 0;
};

/// An event rate in hertz (tick frequencies, sync rates, IOPS targets).
class Frequency {
 public:
  constexpr Frequency() = default;
  constexpr explicit Frequency(double hz) : hz_(hz) {}

  [[nodiscard]] static constexpr Frequency hz(double v) { return Frequency{v}; }
  [[nodiscard]] constexpr double hertz() const { return hz_; }

  /// Period of one cycle of this frequency, truncated to whole nanoseconds.
  [[nodiscard]] constexpr SimTime period() const {
    return SimTime{static_cast<std::int64_t>(1e9 / hz_)};
  }

  constexpr auto operator<=>(const Frequency&) const = default;

 private:
  double hz_ = 0.0;
};

/// Clock speed of a CPU; converts between wall time and cycles.
class CpuFrequency {
 public:
  constexpr CpuFrequency() = default;
  constexpr explicit CpuFrequency(double ghz) : ghz_(ghz) {}

  [[nodiscard]] static constexpr CpuFrequency ghz(double v) { return CpuFrequency{v}; }
  [[nodiscard]] constexpr double gigahertz() const { return ghz_; }

  /// Wall time needed to retire `c` cycles at this clock speed.
  [[nodiscard]] constexpr SimTime time_for(Cycles c) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(c.count()) / ghz_)};
  }
  /// Cycles retired in `t` wall time at this clock speed.
  [[nodiscard]] constexpr Cycles cycles_in(SimTime t) const {
    return Cycles{static_cast<std::int64_t>(static_cast<double>(t.nanoseconds()) * ghz_)};
  }

  constexpr auto operator<=>(const CpuFrequency&) const = default;

 private:
  double ghz_ = 1.0;
};

[[nodiscard]] std::string to_string(SimTime t);
[[nodiscard]] std::string to_string(Cycles c);

}  // namespace paratick::sim
