#include "sim/watchdog.hpp"

#include <utility>

#include "sim/check.hpp"
#include "sim/error.hpp"

namespace paratick::sim {

Watchdog::Watchdog(Engine& engine, SimTime period)
    : engine_(engine), period_(period) {
  PARATICK_CHECK_MSG(period > SimTime::zero(), "watchdog period must be positive");
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::add_check(std::string name, Check fn) {
  checks_.emplace_back(std::move(name), std::move(fn));
}

void Watchdog::start() {
  // Idempotent: a second start() must not arm a second sweep chain (the
  // first would leak and double every period's sweep count forever).
  stop();
  sweep();
  schedule_next();
}

void Watchdog::stop() {
  if (pending_) {
    engine_.cancel(*pending_);
    pending_.reset();
  }
}

void Watchdog::sweep() {
  ++sweeps_;
  for (const auto& [name, fn] : checks_) {
    if (auto violation = fn()) {
      throw SimError(SimError::Kind::kWatchdog, name, "", 0, *violation,
                     engine_.now(), engine_.events_executed());
    }
  }
}

void Watchdog::schedule_next() {
  pending_ = engine_.schedule_after(period_, [this] {
    pending_.reset();
    sweep();
    schedule_next();
  });
}

}  // namespace paratick::sim
