// Invariant watchdog: periodically sweeps a set of named checks while the
// engine runs and throws SimError{kWatchdog} on the first violation.
//
// Checks are plain callables returning std::nullopt when the invariant
// holds and a human-readable violation message otherwise. core::System
// installs the standard set (clock monotonicity, event-queue ordering,
// timer liveness, exit-accounting consistency); tests can add their own.
//
// The watchdog schedules its own periodic events, so enabling it changes
// the engine's event count — it is opt-in (SystemSpec::watchdog) and off
// for baseline-comparable benchmarks.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace paratick::sim {

class Watchdog {
 public:
  /// Returns nullopt when the invariant holds, a violation message otherwise.
  using Check = std::function<std::optional<std::string>()>;

  Watchdog(Engine& engine, SimTime period);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void add_check(std::string name, Check fn);

  /// Run all checks now and begin periodic sweeps. Throws on violation.
  /// Idempotent: calling start() again cancels the armed chain first, so
  /// there is never more than one sweep chain pending.
  void start();
  /// Cancel the pending sweep event.
  void stop();

  /// Run every check once; throws SimError{kWatchdog} on the first failure.
  void sweep();

  [[nodiscard]] std::uint64_t sweeps() const { return sweeps_; }

 private:
  void schedule_next();

  Engine& engine_;
  SimTime period_;
  std::vector<std::pair<std::string, Check>> checks_;
  std::optional<EventId> pending_;
  std::uint64_t sweeps_ = 0;
};

}  // namespace paratick::sim
