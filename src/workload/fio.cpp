#include "workload/fio.hpp"

#include <array>

#include "guest/kernel.hpp"
#include "sim/check.hpp"

namespace paratick::workload {

namespace {
constexpr std::array<FioCategory, 4> kCategories{{
    {"seqr", hw::IoDir::kRead, hw::IoPattern::kSequential},
    {"seqwr", hw::IoDir::kWrite, hw::IoPattern::kSequential},
    {"rndr", hw::IoDir::kRead, hw::IoPattern::kRandom},
    {"rndwr", hw::IoDir::kWrite, hw::IoPattern::kRandom},
}};

constexpr std::array<std::uint32_t, 7> kBlockSizes{
    4096, 8192, 16384, 32768, 65536, 131072, 262144};
}  // namespace

std::span<const FioCategory> fio_categories() { return kCategories; }

std::span<const std::uint32_t> fio_block_sizes() { return kBlockSizes; }

Program make_fio_program(const FioSpec& spec) {
  PARATICK_CHECK(spec.ops > 0 && spec.block_bytes > 0);
  hw::IoRequest req;
  req.dir = spec.dir;
  req.pattern = spec.pattern;
  req.bytes = spec.block_bytes;

  Program prog;
  prog.io(req);
  // Per-op CPU: buffer copy + checksum, scaling mildly with block size.
  prog.compute(spec.think_cycles +
               static_cast<std::int64_t>(spec.block_bytes) / 16);
  prog.repeat(spec.ops);
  return prog;
}

void install_fio(guest::GuestKernel& kernel, const FioSpec& spec) {
  kernel.add_task(make_task_body(make_fio_program(spec)), 0);
}

}  // namespace paratick::workload
