// fio-like synchronous block-I/O workload generator (paper §6.3).
//
// Reproduces the phoronix-fio configuration the paper uses: the sync
// engine (one outstanding request, task blocks per op), four access
// patterns (seqr / seqwr / rndr / rndwr), block sizes 4 KiB..256 KiB.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "workload/program.hpp"

namespace paratick::guest {
class GuestKernel;
}  // namespace paratick::guest

namespace paratick::workload {

struct FioSpec {
  hw::IoDir dir = hw::IoDir::kRead;
  hw::IoPattern pattern = hw::IoPattern::kSequential;
  std::uint32_t block_bytes = 4096;
  int ops = 1000;                      // total requests issued
  std::int64_t think_cycles = 12'000;  // per-op user CPU (buffer handling)
};

/// The paper's four test categories.
struct FioCategory {
  std::string_view name;  // "seqr", "seqwr", "rndr", "rndwr"
  hw::IoDir dir;
  hw::IoPattern pattern;
};
[[nodiscard]] std::span<const FioCategory> fio_categories();

/// Block sizes aggregated per category in the paper: 4k..256k.
[[nodiscard]] std::span<const std::uint32_t> fio_block_sizes();

[[nodiscard]] Program make_fio_program(const FioSpec& spec);

/// Install a single fio job task into a (1-vCPU) guest kernel.
void install_fio(guest::GuestKernel& kernel, const FioSpec& spec);

}  // namespace paratick::workload
