#include "workload/micro.hpp"

#include "guest/kernel.hpp"
#include "sim/check.hpp"

namespace paratick::workload {

void install_sync_storm(guest::GuestKernel& kernel, const SyncStormSpec& spec) {
  PARATICK_CHECK(spec.threads >= 1 && spec.sync_rate_hz > 0.0);
  const auto iterations = static_cast<int>(spec.duration.seconds() * spec.sync_rate_hz);
  PARATICK_CHECK_MSG(iterations > 0, "duration too short for the sync rate");
  // Each period: compute `load` of the period, then block at the barrier
  // for the rest (the paper's W3: L = load, one group idle transition per
  // sync episode per thread).
  const double period_s = 1.0 / spec.sync_rate_hz;
  const auto compute_cycles = static_cast<std::int64_t>(
      period_s * spec.load * spec.cpu_freq.gigahertz() * 1e9);

  kernel.create_barrier(0, spec.threads);
  for (int t = 0; t < spec.threads; ++t) {
    Program prog;
    prog.compute_norm(compute_cycles, 0.10).barrier(0).repeat(iterations);
    kernel.add_task(make_task_body(prog), t % kernel.cpu_count());
  }
}

void install_tick_storm(guest::GuestKernel& kernel, const TickStormSpec& spec) {
  Program prog;
  prog.compute(spec.think_cycles).sleep(spec.sleep_interval).repeat(spec.iterations);
  kernel.add_task(make_task_body(prog), 0);
}

void install_server(guest::GuestKernel& kernel, const ServerSpec& spec) {
  PARATICK_CHECK(spec.workers >= 1 && spec.requests_per_worker > 0);
  for (int w = 0; w < spec.workers; ++w) {
    Program prog;
    prog.sleep_exp(spec.mean_interarrival)
        .compute(spec.service_cycles)
        .repeat(spec.requests_per_worker);
    kernel.add_task(make_task_body(prog), w % kernel.cpu_count());
  }
}

void install_pure_compute(guest::GuestKernel& kernel, const PureComputeSpec& spec) {
  PARATICK_CHECK(spec.chunks > 0);
  Program prog;
  prog.compute(spec.total_cycles / spec.chunks).repeat(spec.chunks);
  kernel.add_task(make_task_body(prog), 0);
}

}  // namespace paratick::workload
