// Micro-workloads for the paper's §3.3 scenarios (Table 1) and for tests.
#pragma once

#include <cstdint>

#include "sim/types.hpp"
#include "workload/program.hpp"

namespace paratick::guest {
class GuestKernel;
}  // namespace paratick::guest

namespace paratick::workload {

/// W3-style blocking-synchronization storm: `threads` tasks iterate
/// compute -> barrier so the group synchronizes `sync_rate_hz` times per
/// second, for roughly `duration` of simulated time.
struct SyncStormSpec {
  int threads = 16;
  double sync_rate_hz = 1000.0;  // barrier episodes per second
  sim::SimTime duration = sim::SimTime::sec(1);
  sim::CpuFrequency cpu_freq{2.0};
  double load = 0.5;  // fraction of each period spent computing
};
void install_sync_storm(guest::GuestKernel& kernel, const SyncStormSpec& spec);

/// A single task that sleeps at a fixed rate — churns the guest timer
/// subsystem (timer-wheel/hrtimer arming) without real work.
struct TickStormSpec {
  sim::SimTime sleep_interval = sim::SimTime::us(200);
  int iterations = 5000;
  std::int64_t think_cycles = 5'000;
};
void install_tick_storm(guest::GuestKernel& kernel, const TickStormSpec& spec);

/// Request/response server: each worker waits for a Poisson "request"
/// (exponential inter-arrival) and services it with a short compute
/// burst. The interesting metric is the wake-to-run latency tail, which
/// timer-management exits inflate on every request (§3.3's
/// microsecond-scale idle periods).
struct ServerSpec {
  int workers = 2;
  sim::SimTime mean_interarrival = sim::SimTime::us(500);
  std::int64_t service_cycles = 40'000;  // 20 us at 2 GHz
  int requests_per_worker = 2000;
};
void install_server(guest::GuestKernel& kernel, const ServerSpec& spec);

/// Pure sequential compute (calibration floor: no sync, no I/O).
struct PureComputeSpec {
  std::int64_t total_cycles = 200'000'000;
  int chunks = 200;
};
void install_pure_compute(guest::GuestKernel& kernel, const PureComputeSpec& spec);

}  // namespace paratick::workload
