#include "workload/parsec.hpp"

#include <algorithm>
#include <array>

#include "guest/kernel.hpp"
#include "sim/check.hpp"

namespace paratick::workload {

namespace {

constexpr std::int64_t kM = 1'000'000;
constexpr std::int64_t kK = 1'000;

ParsecProfile data_parallel(std::string_view name, int phases, std::int64_t phase,
                            double cv, int sync_ops, std::int64_t hold, int hot,
                            double io_prob, std::uint32_t io_block, double fault_prob) {
  ParsecProfile p;
  p.name = name;
  p.pipeline = false;
  p.phases = phases;
  p.phase_compute_cycles = phase;
  p.compute_cv = cv;
  p.sync_ops_per_phase = sync_ops;
  p.lock_hold_cycles = hold;
  p.hot_locks = hot;
  p.io_prob = io_prob;
  p.io_block_bytes = io_block;
  p.fault_prob = fault_prob;
  return p;
}

ParsecProfile pipeline(std::string_view name, int items, std::int64_t item,
                       std::int64_t consumer, double io_prob, std::uint32_t io_block,
                       double fault_prob, double seq_io_prob) {
  ParsecProfile p;
  p.name = name;
  p.pipeline = true;
  p.items_per_group = items;
  p.item_cycles = item;
  p.consumer_cycles = consumer;
  p.io_prob = io_prob;
  p.io_block_bytes = io_block;
  p.fault_prob = fault_prob;
  p.seq_io_prob = seq_io_prob;
  return p;
}

const std::array<ParsecProfile, 13> kSuite = {{
    // Data-parallel codes, ordered by rising sync intensity.
    data_parallel("blackscholes", 30, 12 * kM, 0.05, 0, 0, 1, 0.0, 0, 0.20),
    data_parallel("swaptions", 20, 15 * kM, 0.05, 0, 0, 1, 0.0, 0, 0.20),
    data_parallel("freqmine", 60, 5 * kM, 0.18, 4, 15 * kK, 2, 0.0, 0, 0.25),
    data_parallel("facesim", 80, 4 * kM, 0.15, 6, 12 * kK, 2, 0.0, 0, 0.25),
    data_parallel("canneal", 300, 900 * kK, 0.10, 8, 6 * kK, 2, 0.0, 0, 0.10),
    data_parallel("fluidanimate", 700, 500 * kK, 0.12, 8, 4 * kK, 2, 0.0, 0, 0.05),
    data_parallel("streamcluster", 900, 400 * kK, 0.10, 3, 6 * kK, 2, 0.0, 0, 0.05),
    data_parallel("raytrace", 150, 2500 * kK, 0.22, 10, 8 * kK, 2, 0.01, 16'384, 0.15),
    // Pipeline codes: 1 producer + 3 consumers per group of 4 threads.
    pipeline("bodytrack", 5000, 70 * kK, 25 * kK, 0.00, 65'536, 0.02, 0.12),
    pipeline("ferret", 7000, 55 * kK, 20 * kK, 0.005, 65'536, 0.02, 0.30),
    pipeline("dedup", 7500, 60 * kK, 22 * kK, 0.006, 262'144, 0.02, 0.50),
    pipeline("vips", 6000, 65 * kK, 24 * kK, 0.005, 131'072, 0.02, 0.40),
    pipeline("x264", 9000, 45 * kK, 16 * kK, 0.002, 65'536, 0.02, 0.20),
}};

}  // namespace

std::span<const ParsecProfile> parsec_suite() { return kSuite; }

const ParsecProfile& parsec_profile(std::string_view name) {
  for (const auto& p : kSuite) {
    if (p.name == name) return p;
  }
  PARATICK_CHECK_MSG(false, "unknown PARSEC benchmark");
  return kSuite[0];
}

namespace {

hw::IoRequest input_read(std::uint32_t bytes) {
  hw::IoRequest req;
  req.dir = hw::IoDir::kRead;
  req.pattern = hw::IoPattern::kSequential;
  req.bytes = bytes;
  return req;
}

Program sequential_program(const ParsecProfile& p) {
  Program prog;
  const double io_prob = std::max(p.io_prob, p.seq_io_prob);
  if (p.pipeline) {
    // One thread performs every stage's work per item, in order.
    prog.compute_exp(p.item_cycles + 3 * p.consumer_cycles);
    if (io_prob > 0.0) prog.io(input_read(p.io_block_bytes), io_prob);
    if (p.fault_prob > 0.0) prog.fault(p.fault_prob);
    prog.repeat(p.items_per_group);
    return prog;
  }
  const int chunks = p.sync_ops_per_phase + 1;
  const std::int64_t gap =
      (p.phase_compute_cycles - p.sync_ops_per_phase * p.lock_hold_cycles) / chunks;
  for (int s = 0; s < p.sync_ops_per_phase; ++s) {
    prog.compute_exp(gap);
    prog.critical(p.hot_locks, p.lock_hold_cycles);  // uncontended when alone
  }
  prog.compute_norm(gap, p.compute_cv);
  if (io_prob > 0.0) prog.io(input_read(p.io_block_bytes), io_prob);
  if (p.fault_prob > 0.0) prog.fault(p.fault_prob);
  prog.barrier(0);  // single-party barrier: immediate
  prog.repeat(p.phases);
  return prog;
}

Program barrier_program(const ParsecProfile& p, int nthreads, int thread_index) {
  Program prog;
  const int chunks = p.sync_ops_per_phase + 1;
  const std::int64_t gap =
      (p.phase_compute_cycles - p.sync_ops_per_phase * p.lock_hold_cycles) / chunks;
  PARATICK_CHECK_MSG(gap > 0, "profile over-commits compute to locks");
  // Lock granularity scales with parallelism (as real codes partition
  // their data), keeping per-lock contention constant across VM sizes.
  const int hot = std::max(p.hot_locks, p.hot_locks * nthreads / 4);
  for (int s = 0; s < p.sync_ops_per_phase; ++s) {
    prog.compute_exp(gap);
    prog.critical(hot, p.lock_hold_cycles);
  }
  prog.compute_norm(gap, p.compute_cv);
  if (thread_index == 0) {
    if (p.io_prob > 0.0) prog.io(input_read(p.io_block_bytes), p.io_prob);
  }
  if (p.fault_prob > 0.0) prog.fault(p.fault_prob);
  prog.barrier(0);
  prog.repeat(p.phases);
  return prog;
}

Program producer_program(const ParsecProfile& p, int group) {
  Program prog;
  prog.compute_exp(p.item_cycles);
  if (p.io_prob > 0.0) prog.io(input_read(p.io_block_bytes), p.io_prob);
  if (p.fault_prob > 0.0) prog.fault(p.fault_prob);
  prog.sem_post(group);
  prog.repeat(p.items_per_group);
  return prog;
}

Program consumer_program(const ParsecProfile& p, int group) {
  Program prog;
  prog.sem_wait(group);
  prog.compute_exp(p.consumer_cycles);
  if (p.fault_prob > 0.0) prog.fault(p.fault_prob);
  prog.repeat(p.items_per_group / 3);
  return prog;
}

}  // namespace

Program make_parsec_program(const ParsecProfile& profile, int nthreads,
                            int thread_index) {
  PARATICK_CHECK(nthreads >= 1 && thread_index >= 0 && thread_index < nthreads);
  if (nthreads == 1) return sequential_program(profile);
  if (!profile.pipeline) return barrier_program(profile, nthreads, thread_index);
  PARATICK_CHECK_MSG(nthreads % 4 == 0, "pipeline profiles need a multiple of 4 threads");
  const int group = thread_index / 4;
  const int role = thread_index % 4;
  return role == 0 ? producer_program(profile, group)
                   : consumer_program(profile, group);
}

void install_parsec(guest::GuestKernel& kernel, const ParsecProfile& profile,
                    int nthreads) {
  PARATICK_CHECK(nthreads >= 1 && nthreads <= kernel.cpu_count());
  if (!profile.pipeline || nthreads == 1) kernel.create_barrier(0, nthreads);
  for (int t = 0; t < nthreads; ++t) {
    kernel.add_task(make_task_body(make_parsec_program(profile, nthreads, t)),
                    t % kernel.cpu_count());
  }
}

}  // namespace paratick::workload
