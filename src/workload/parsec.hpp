// Behavioural profiles of the 13 PARSEC benchmarks (paper §6.1/§6.2).
//
// Each profile captures what determines timer-management overhead:
//
//  * data-parallel codes (blackscholes, fluidanimate, streamcluster, ...):
//    barrier-separated phases with imbalanced compute and short contended
//    critical sections — idle transitions come from barrier waits and
//    blocking locks;
//  * pipeline codes (dedup, ferret, vips, x264, ...): producer/consumer
//    groups over semaphores — consumers block per work item at high rate
//    while the producer (the critical path) rarely blocks. This is the
//    regime where the paper sees large throughput gains with little
//    execution-time change (§4.2/§6.2);
//  * I/O streaming (dedup, vips): the producer reads input blocks
//    synchronously as it goes.
//
// Parameters follow the published PARSEC characterization (Bienia & Li)
// for the relative sync intensity ordering across benchmarks.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "workload/program.hpp"

namespace paratick::guest {
class GuestKernel;
}  // namespace paratick::guest

namespace paratick::workload {

struct ParsecProfile {
  std::string_view name;
  bool pipeline = false;

  // --- data-parallel (barrier) shape ---
  int phases = 0;
  std::int64_t phase_compute_cycles = 0;  // mean per-thread compute per phase
  double compute_cv = 0.1;                // imbalance across threads
  int sync_ops_per_phase = 0;             // contended critical sections
  std::int64_t lock_hold_cycles = 0;
  int hot_locks = 1;

  // --- pipeline shape (groups of 4: 1 producer + 3 consumers) ---
  std::int64_t item_cycles = 0;      // producer compute per work item
  std::int64_t consumer_cycles = 0;  // consumer compute per item
  int items_per_group = 0;

  // --- common ---
  double io_prob = 0.0;              // probability of a read per iteration
  std::uint32_t io_block_bytes = 0;  // request size for those reads
  double fault_prob = 0.0;           // background-exit probability per iteration
  /// Sequential-mode I/O exposure: a single thread eats every input-read
  /// wait that the parallel pipeline overlaps with compute, so sequential
  /// runs see a higher per-iteration blocking probability (Figure 4's
  /// large per-benchmark variance comes from exactly this).
  double seq_io_prob = 0.0;
};

/// All 13 benchmarks, in the suite's canonical order.
[[nodiscard]] std::span<const ParsecProfile> parsec_suite();

/// Look up a profile by name; aborts on unknown names.
[[nodiscard]] const ParsecProfile& parsec_profile(std::string_view name);

/// Install `nthreads` tasks into the kernel. Pipeline profiles split the
/// threads into groups of four (1 producer + 3 consumers, paper-style
/// over-decomposition); with nthreads == 1 every profile degenerates into
/// the paper's sequential mode (same total work, one thread, no blocking
/// sync). nthreads must be 1 or a multiple of 4 for pipeline profiles.
void install_parsec(guest::GuestKernel& kernel, const ParsecProfile& profile,
                    int nthreads);

/// Exposed for tests: the per-thread program install_parsec builds.
[[nodiscard]] Program make_parsec_program(const ParsecProfile& profile, int nthreads,
                                          int thread_index);

}  // namespace paratick::workload
