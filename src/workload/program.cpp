#include "workload/program.hpp"

#include <memory>
#include <utility>

#include "sim/check.hpp"

namespace paratick::workload {

std::int64_t Program::mean_compute_cycles_per_iteration() const {
  std::int64_t sum = 0;
  for (const auto& op : ops_) {
    switch (op.kind) {
      case Op::Kind::kCompute:
      case Op::Kind::kComputeExp:
      case Op::Kind::kComputeNorm:
        sum += op.cycles;
        break;
      default:
        break;
    }
  }
  return sum;
}

namespace {

/// Interpreter state; shared_ptr-owned so continuations can outlive the
/// stack frame that created them.
struct Interp : std::enable_shared_from_this<Interp> {
  Program program;
  std::size_t pc = 0;
  int iteration = 0;

  explicit Interp(Program p) : program(std::move(p)) {}

  void step(guest::TaskApi& api) {
    if (pc >= program.ops().size()) {
      pc = 0;
      if (++iteration >= program.repeat_count()) {
        api.finish();
        return;
      }
    }
    const Op& op = program.ops()[pc++];
    auto self = shared_from_this();
    auto cont = [self, &api] { self->step(api); };

    if (op.prob < 1.0 && !api.rng().bernoulli(op.prob)) {
      cont();
      return;
    }

    switch (op.kind) {
      case Op::Kind::kCompute:
        api.compute(sim::Cycles{op.cycles}, std::move(cont));
        return;
      case Op::Kind::kComputeExp: {
        const double c = api.rng().exponential(static_cast<double>(op.cycles));
        api.compute(sim::Cycles{static_cast<std::int64_t>(c) + 1}, std::move(cont));
        return;
      }
      case Op::Kind::kComputeNorm: {
        const double mean = static_cast<double>(op.cycles);
        const double c = api.rng().normal(mean, mean * op.cv, 1.0);
        api.compute(sim::Cycles{static_cast<std::int64_t>(c)}, std::move(cont));
        return;
      }
      case Op::Kind::kBarrier:
        api.barrier_wait(op.sync_id, std::move(cont));
        return;
      case Op::Kind::kSemWait:
        api.sem_wait(op.sync_id, std::move(cont));
        return;
      case Op::Kind::kSemPost:
        api.sem_post(op.sync_id, std::move(cont));
        return;
      case Op::Kind::kCritical: {
        const int lock_id =
            static_cast<int>(api.rng().uniform_int(0, op.sync_id - 1));
        const sim::Cycles hold{op.cycles};
        api.mutex_lock(lock_id, [self, &api, lock_id, hold, cont] {
          api.compute(hold, [self, &api, lock_id, cont] {
            api.mutex_unlock(lock_id, cont);
          });
        });
        return;
      }
      case Op::Kind::kLock:
        api.mutex_lock(op.sync_id, std::move(cont));
        return;
      case Op::Kind::kUnlock:
        api.mutex_unlock(op.sync_id, std::move(cont));
        return;
      case Op::Kind::kIo:
        api.sync_io(op.io, std::move(cont));
        return;
      case Op::Kind::kSleep:
        api.sleep_for(op.duration, std::move(cont));
        return;
      case Op::Kind::kSleepExp:
        api.sleep_for(api.rng().exp_time(op.duration), std::move(cont));
        return;
      case Op::Kind::kFault:
        api.background_fault(std::move(cont));
        return;
    }
    PARATICK_CHECK_MSG(false, "unknown op kind");
  }
};

}  // namespace

std::function<void(guest::TaskApi&)> make_task_body(Program program) {
  PARATICK_CHECK_MSG(!program.empty(), "empty workload program");
  return [program = std::move(program)](guest::TaskApi& api) {
    auto interp = std::make_shared<Interp>(program);
    interp->step(api);
  };
}

}  // namespace paratick::workload
