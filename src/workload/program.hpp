// A small op language for workload behaviour, plus an interpreter that
// turns a Program into a guest task body.
//
// Workload models only need to reproduce the *timer-relevant* behaviour
// of the paper's benchmarks: compute-burst lengths, blocking-sync rates,
// I/O blocking patterns. A Program is a loopable list of such ops.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "guest/task.hpp"
#include "hw/block_device.hpp"
#include "sim/types.hpp"

namespace paratick::workload {

struct Op {
  enum class Kind : std::uint8_t {
    kCompute,     // fixed-length burst
    kComputeExp,  // exponentially distributed burst (mean = cycles)
    kComputeNorm, // normal burst (mean = cycles, stddev = cycles * cv)
    kBarrier,     // blocking barrier (sync_id)
    kLock,        // mutex acquire (sync_id)
    kUnlock,      // mutex release (sync_id)
    kCritical,    // lock a random mutex in [0, sync_id), hold `cycles`, unlock
    kSemWait,     // semaphore wait (sync_id)
    kSemPost,     // semaphore post (sync_id)
    kIo,          // synchronous block I/O
    kSleep,       // timed sleep
    kSleepExp,    // exponentially distributed sleep (mean = duration)
    kFault,       // background VM exit (page fault / cpuid noise)
  };

  Kind kind = Kind::kCompute;
  std::int64_t cycles = 0;
  double cv = 0.0;
  int sync_id = 0;
  hw::IoRequest io;
  sim::SimTime duration;
  /// Execute the op with this probability per iteration (1 = always).
  double prob = 1.0;
};

class Program {
 public:
  Program& compute(std::int64_t cycles) {
    ops_.push_back({Op::Kind::kCompute, cycles, 0.0, 0, {}, {}});
    return *this;
  }
  Program& compute_exp(std::int64_t mean_cycles) {
    ops_.push_back({Op::Kind::kComputeExp, mean_cycles, 0.0, 0, {}, {}});
    return *this;
  }
  Program& compute_norm(std::int64_t mean_cycles, double cv) {
    ops_.push_back({Op::Kind::kComputeNorm, mean_cycles, cv, 0, {}, {}});
    return *this;
  }
  Program& barrier(int id) {
    ops_.push_back({Op::Kind::kBarrier, 0, 0.0, id, {}, {}});
    return *this;
  }
  Program& lock(int id) {
    ops_.push_back({Op::Kind::kLock, 0, 0.0, id, {}, {}});
    return *this;
  }
  Program& unlock(int id) {
    ops_.push_back({Op::Kind::kUnlock, 0, 0.0, id, {}, {}});
    return *this;
  }
  /// Contended critical section: a uniformly random lock out of
  /// `hot_locks`, held for `hold_cycles`.
  Program& critical(int hot_locks, std::int64_t hold_cycles) {
    ops_.push_back({Op::Kind::kCritical, hold_cycles, 0.0, hot_locks, {}, {}});
    return *this;
  }
  Program& sem_wait(int id) {
    ops_.push_back({Op::Kind::kSemWait, 0, 0.0, id, {}, {}});
    return *this;
  }
  Program& sem_post(int id) {
    ops_.push_back({Op::Kind::kSemPost, 0, 0.0, id, {}, {}});
    return *this;
  }
  Program& io(const hw::IoRequest& req, double prob = 1.0) {
    ops_.push_back({Op::Kind::kIo, 0, 0.0, 0, req, {}, prob});
    return *this;
  }
  Program& sleep(sim::SimTime d) {
    ops_.push_back({Op::Kind::kSleep, 0, 0.0, 0, {}, d});
    return *this;
  }
  /// Poisson-process style wait: sleep for an Exp(mean = d) duration.
  Program& sleep_exp(sim::SimTime d) {
    ops_.push_back({Op::Kind::kSleepExp, 0, 0.0, 0, {}, d});
    return *this;
  }
  Program& fault(double prob = 1.0) {
    ops_.push_back({Op::Kind::kFault, 0, 0.0, 0, {}, {}, prob});
    return *this;
  }
  Program& repeat(int n) {
    repeat_ = n;
    return *this;
  }

  [[nodiscard]] const std::vector<Op>& ops() const { return ops_; }
  [[nodiscard]] int repeat_count() const { return repeat_; }
  [[nodiscard]] bool empty() const { return ops_.empty(); }

  /// Sum of deterministic + mean compute cycles over one iteration.
  [[nodiscard]] std::int64_t mean_compute_cycles_per_iteration() const;

 private:
  std::vector<Op> ops_;
  int repeat_ = 1;
};

/// Compile a Program into a task body for GuestKernel::add_task.
[[nodiscard]] std::function<void(guest::TaskApi&)> make_task_body(Program program);

}  // namespace paratick::workload
