#include "workload/tenant_traffic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "guest/kernel.hpp"
#include "sim/check.hpp"
#include "sim/rng.hpp"

namespace paratick::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586;
/// Floor on the diurnal trough so λ(t) never collapses to zero (an
/// amplitude of 1.0 would otherwise stall the Poisson process entirely).
constexpr double kMinRateScale = 0.05;

/// λ(t) / λ_base at guest time `t`.
double rate_scale_at(const TenantTrafficSpec& spec,
                     const std::vector<sim::SimTime>& flash_starts,
                     sim::SimTime t) {
  double scale = 1.0;
  if (spec.diurnal_amplitude > 0.0 &&
      spec.diurnal_period > sim::SimTime::zero()) {
    const double phase = kTwoPi * (t.seconds() / spec.diurnal_period.seconds());
    scale *= 1.0 + spec.diurnal_amplitude * std::sin(phase);
  }
  for (const sim::SimTime start : flash_starts) {
    if (t >= start && t < start + spec.flash_duration) {
      scale *= spec.flash_multiplier;
      break;
    }
  }
  return std::max(scale, kMinRateScale);
}

/// One open-loop request worker: sleep an Exp(1/λ(t)) inter-arrival,
/// service the request, repeat until the spec's horizon. Same
/// continuation-passing shape as the Program interpreter.
struct TenantWorker : std::enable_shared_from_this<TenantWorker> {
  TenantTrafficSpec spec;
  std::vector<sim::SimTime> flash_starts;

  TenantWorker(TenantTrafficSpec s, std::vector<sim::SimTime> f)
      : spec(s), flash_starts(std::move(f)) {}

  void step(guest::TaskApi& api) {
    if (api.now() >= spec.until) {
      api.finish();
      return;
    }
    const double scale = rate_scale_at(spec, flash_starts, api.now());
    const auto mean_ns = static_cast<std::int64_t>(std::llround(
        static_cast<double>(spec.mean_interarrival.nanoseconds()) / scale));
    const sim::SimTime wait =
        api.rng().exp_time(sim::SimTime::ns(std::max<std::int64_t>(mean_ns, 1)));
    auto self = shared_from_this();
    api.sleep_for(wait, [self, &api] {
      api.compute(sim::Cycles{self->spec.service_cycles},
                  [self, &api] { self->step(api); });
    });
  }
};

}  // namespace

void install_tenant_traffic(guest::GuestKernel& kernel,
                            const TenantTrafficSpec& spec) {
  PARATICK_CHECK_MSG(spec.workers >= 1, "tenant traffic needs >= 1 worker");
  PARATICK_CHECK_MSG(spec.until > sim::SimTime::zero(),
                     "tenant traffic horizon must be > 0");
  PARATICK_CHECK_MSG(spec.mean_interarrival > sim::SimTime::zero(),
                     "tenant mean inter-arrival must be > 0");
  PARATICK_CHECK_MSG(spec.diurnal_amplitude >= 0.0 &&
                         spec.diurnal_amplitude <= 1.0,
                     "diurnal amplitude must be in [0, 1]");
  PARATICK_CHECK_MSG(spec.flash_multiplier >= 1.0,
                     "flash multiplier must be >= 1");

  // Flash-crowd windows are a pure function of the spec: drawn from a
  // dedicated stream so adding a crowd never perturbs worker draws.
  std::vector<sim::SimTime> flash_starts;
  if (spec.flash_crowds > 0 && spec.flash_duration > sim::SimTime::zero()) {
    sim::Rng rng(spec.seed);
    const std::int64_t span =
        std::max<std::int64_t>(spec.until.nanoseconds() -
                                   spec.flash_duration.nanoseconds(),
                               1);
    flash_starts.reserve(static_cast<std::size_t>(spec.flash_crowds));
    for (int i = 0; i < spec.flash_crowds; ++i) {
      flash_starts.push_back(sim::SimTime::ns(rng.uniform_int(0, span - 1)));
    }
    std::sort(flash_starts.begin(), flash_starts.end());
  }

  for (int w = 0; w < spec.workers; ++w) {
    auto worker = std::make_shared<TenantWorker>(spec, flash_starts);
    kernel.add_task([worker](guest::TaskApi& api) { worker->step(api); },
                    w % kernel.cpu_count());
  }
}

}  // namespace paratick::workload
