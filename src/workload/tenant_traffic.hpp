// Bursty tenant traffic for the cluster consolidation scenarios.
//
// Each tenant VM runs `workers` request loops driven by a Poisson process
// whose rate λ(t) follows a compressed diurnal curve (sinusoid) with a
// few flash-crowd windows layered on top. The load is open-loop: request
// arrivals do not slow down when the VM is starved, so an overcommitted
// host shows up as steal time and wake-latency inflation — exactly the
// signal the steal-aware cluster scheduler consolidates on.
//
// Determinism: flash-crowd placement is pure in `spec.seed`, and each
// worker draws inter-arrivals from its own task rng, so a tenant's
// traffic is identical across tick modes, backends and engine threads.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace paratick::guest {
class GuestKernel;
}  // namespace paratick::guest

namespace paratick::workload {

struct TenantTrafficSpec {
  int workers = 2;
  /// Workers loop until the guest clock reaches this time, then finish.
  sim::SimTime until = sim::SimTime::sec(1);
  /// Base mean inter-arrival at λ(t) = λ_base (diurnal scale 1.0).
  sim::SimTime mean_interarrival = sim::SimTime::us(800);
  std::int64_t service_cycles = 40'000;  // 20 us at 2 GHz

  /// Diurnal curve: λ(t) = λ_base * (1 + amplitude * sin(2πt / period)).
  /// A real day compressed into `diurnal_period` of simulated time.
  double diurnal_amplitude = 0.5;
  sim::SimTime diurnal_period = sim::SimTime::ms(250);

  /// Flash crowds: `flash_crowds` windows of `flash_duration`, placed
  /// uniformly at random in [0, until) by `seed`, during which the
  /// arrival rate is multiplied by `flash_multiplier`.
  int flash_crowds = 2;
  sim::SimTime flash_duration = sim::SimTime::ms(10);
  double flash_multiplier = 8.0;

  /// Seeds flash-crowd placement only (worker draws use task rngs).
  std::uint64_t seed = 42;
};

void install_tenant_traffic(guest::GuestKernel& kernel,
                            const TenantTrafficSpec& spec);

}  // namespace paratick::workload
