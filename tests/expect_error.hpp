// Test helper: assert a statement throws sim::SimError whose formatted
// message contains `substr`. Replaces gtest EXPECT_DEATH now that failed
// PARATICK_CHECKs throw instead of aborting — an in-process throw is both
// faster (no fork) and checkable for the full error payload.
#pragma once

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "sim/error.hpp"

#define EXPECT_SIM_ERROR(stmt, substr)                                        \
  do {                                                                        \
    bool caught_ = false;                                                     \
    try {                                                                     \
      stmt;                                                                   \
    } catch (const ::paratick::sim::SimError& e_) {                           \
      caught_ = true;                                                         \
      EXPECT_NE(std::string(e_.what()).find(substr), std::string::npos)       \
          << "SimError message \"" << e_.what()                               \
          << "\" does not contain \"" << (substr) << "\"";                    \
    }                                                                         \
    EXPECT_TRUE(caught_) << #stmt " did not throw sim::SimError";             \
  } while (0)
