// A synchronous mock of TickCpu for unit-testing tick policies against
// the paper's Figures 1 and 3 without a full simulation.
#pragma once

#include <optional>
#include <vector>

#include "guest/cost_model.hpp"
#include "guest/tick_policy.hpp"

namespace paratick::guest::testing {

class MockTickCpu final : public TickCpu {
 public:
  // --- knobs the test sets ---
  sim::SimTime clock = sim::SimTime::zero();
  sim::SimTime period = sim::SimTime::ms(4);
  bool idle = false;
  int running = 1;
  IdleSnapshot snapshot;
  GuestCostModel cost_model;

  // --- recorded activity ---
  struct MsrWrite {
    sim::SimTime at;
    std::optional<sim::SimTime> deadline;  // nullopt = disarm
  };
  std::vector<MsrWrite> msr_writes;
  int tick_work_calls = 0;
  int hypercalls = 0;
  sim::SimTime declared_period;
  sim::Cycles kernel_cycles;

  // --- TickCpu ---
  [[nodiscard]] sim::SimTime now() const override { return clock; }
  [[nodiscard]] sim::SimTime tick_period() const override { return period; }
  [[nodiscard]] bool is_idle() const override { return idle; }
  [[nodiscard]] int nr_running() const override { return running; }
  [[nodiscard]] const GuestCostModel& costs() const override { return cost_model; }

  void do_tick_work(std::function<void()> done) override {
    ++tick_work_calls;
    done();
  }
  void kernel_work(sim::Cycles c, std::function<void()> done) override {
    kernel_cycles += c;
    done();
  }
  void write_tsc_deadline(std::optional<sim::SimTime> deadline,
                          std::function<void()> done) override {
    msr_writes.push_back({clock, deadline});
    done();
  }
  void paratick_hypercall(sim::SimTime declared, std::function<void()> done) override {
    ++hypercalls;
    declared_period = declared;
    done();
  }
  [[nodiscard]] IdleSnapshot idle_snapshot() const override { return snapshot; }
};

}  // namespace paratick::guest::testing
