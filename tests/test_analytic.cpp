// Tests of the closed-form §3.1/§3.2 models and the Table 1 values.
#include <gtest/gtest.h>

#include "expect_error.hpp"

#include "core/analytic.hpp"

namespace paratick::core {
namespace {

using sim::Frequency;
using sim::SimTime;

TEST(Analytic, PeriodicFormulaMatchesPaper31) {
  // exits = 2 * t * sum(n_vCPU * f_tick)
  const std::vector<AnalyticVm> vms{{16, 0.0, 0.0}};
  EXPECT_EQ(periodic_exits(SimTime::sec(10), Frequency{250.0}, vms), 80'000u);
}

TEST(Analytic, PeriodicIgnoresLoad) {
  const std::vector<AnalyticVm> idle{{8, 0.0, 0.0}};
  const std::vector<AnalyticVm> busy{{8, 1.0, 0.0}};
  const auto t = SimTime::sec(1);
  EXPECT_EQ(periodic_exits(t, Frequency{250.0}, idle),
            periodic_exits(t, Frequency{250.0}, busy));
}

TEST(Analytic, TicklessFormulaMatchesPaper32) {
  // exits = 2 * t * (L*n*f + transitions)
  const std::vector<AnalyticVm> vms{{16, 0.5, 1000.0}};
  EXPECT_EQ(tickless_exits(SimTime::sec(10), Frequency{250.0}, vms), 60'000u);
}

TEST(Analytic, TicklessIdleVmCostsNothing) {
  const std::vector<AnalyticVm> vms{{16, 0.0, 0.0}};
  EXPECT_EQ(tickless_exits(SimTime::sec(10), Frequency{250.0}, vms), 0u);
}

TEST(Analytic, MultipleVmsSum) {
  const std::vector<AnalyticVm> one{{16, 0.0, 0.0}};
  const std::vector<AnalyticVm> four(4, AnalyticVm{16, 0.0, 0.0});
  EXPECT_EQ(periodic_exits(SimTime::sec(10), Frequency{250.0}, four),
            4 * periodic_exits(SimTime::sec(10), Frequency{250.0}, one));
}

TEST(Analytic, ParatickBelowTicklessAlways) {
  for (double load : {0.0, 0.3, 0.9}) {
    for (double transitions : {0.0, 100.0, 10'000.0}) {
      const std::vector<AnalyticVm> vms{{16, load, transitions}};
      EXPECT_LE(paratick_exits(SimTime::sec(10), Frequency{250.0}, vms),
                tickless_exits(SimTime::sec(10), Frequency{250.0}, vms));
    }
  }
}

TEST(Analytic, CrossoverMatches33) {
  // "tickless preferable while T_idle > tick period / vCPUs-per-pCPU"
  EXPECT_EQ(crossover_idle_period(Frequency{250.0}, 1.0), SimTime::ms(4));
  EXPECT_EQ(crossover_idle_period(Frequency{250.0}, 4.0), SimTime::ms(1));
  EXPECT_EQ(crossover_idle_period(Frequency{1000.0}, 1.0), SimTime::ms(1));
}

TEST(Analytic, Table1PublishedValues) {
  const auto rows = table1_published();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].periodic, 40'000u);
  EXPECT_EQ(rows[0].tickless, 0u);
  EXPECT_EQ(rows[1].periodic, 160'000u);
  EXPECT_EQ(rows[1].tickless, 0u);
  EXPECT_EQ(rows[2].periodic, 40'000u);
  EXPECT_EQ(rows[2].tickless, 60'000u);
  EXPECT_EQ(rows[3].periodic, 160'000u);
  EXPECT_EQ(rows[3].tickless, 240'000u);
}

TEST(Analytic, Table1ReconstructionMatchesPublishedExactly) {
  const auto published = table1_published();
  const auto ours = table1_reconstructed();
  ASSERT_EQ(published.size(), ours.size());
  for (std::size_t i = 0; i < published.size(); ++i) {
    EXPECT_EQ(ours[i].periodic, published[i].periodic) << published[i].workload;
    EXPECT_EQ(ours[i].tickless, published[i].tickless) << published[i].workload;
  }
}

TEST(AnalyticDeath, CrossoverRequiresPositiveShare) {
  EXPECT_SIM_ERROR((void)crossover_idle_period(Frequency{250.0}, 0.0), "share");
}

}  // namespace
}  // namespace paratick::core
