#include <gtest/gtest.h>

#include "expect_error.hpp"

#include <vector>

#include "hw/block_device.hpp"
#include "sim/engine.hpp"

namespace paratick::hw {
namespace {

using sim::SimTime;

BlockDevice make_device(sim::Engine& e) {
  return BlockDevice(e, BlockDeviceSpec::sata_ssd(), sim::Rng{99});
}

TEST(BlockDeviceSpec, ProfilesAreOrdered) {
  const auto ssd = BlockDeviceSpec::sata_ssd();
  const auto nvme = BlockDeviceSpec::nvme();
  const auto hdd = BlockDeviceSpec::hdd();
  EXPECT_LT(nvme.read_latency, ssd.read_latency);
  EXPECT_LT(ssd.read_latency, hdd.read_latency);
  EXPECT_GT(nvme.read_bandwidth_gbps, ssd.read_bandwidth_gbps);
  EXPECT_GT(ssd.read_bandwidth_gbps, hdd.read_bandwidth_gbps);
}

TEST(BlockDevice, MeanServiceReadFasterThanWrite) {
  sim::Engine e;
  auto dev = make_device(e);
  EXPECT_LT(dev.mean_service_time(IoDir::kRead, IoPattern::kSequential, 4096),
            dev.mean_service_time(IoDir::kWrite, IoPattern::kSequential, 4096));
}

TEST(BlockDevice, RandomSlowerThanSequential) {
  sim::Engine e;
  auto dev = make_device(e);
  EXPECT_LT(dev.mean_service_time(IoDir::kRead, IoPattern::kSequential, 4096),
            dev.mean_service_time(IoDir::kRead, IoPattern::kRandom, 4096));
}

TEST(BlockDevice, LargerBlocksTakeLonger) {
  sim::Engine e;
  auto dev = make_device(e);
  SimTime last = SimTime::zero();
  for (std::uint32_t bytes : {4096u, 65536u, 262144u}) {
    const SimTime t = dev.mean_service_time(IoDir::kRead, IoPattern::kSequential, bytes);
    EXPECT_GT(t, last);
    last = t;
  }
}

TEST(BlockDevice, CompletionDeliversCookieAndCounts) {
  sim::Engine e;
  auto dev = make_device(e);
  std::vector<std::uint64_t> cookies;
  dev.set_completion_handler([&](const IoRequest& r) { cookies.push_back(r.cookie); });
  IoRequest req;
  req.cookie = 77;
  req.bytes = 8192;
  dev.submit(req);
  e.run();
  ASSERT_EQ(cookies.size(), 1u);
  EXPECT_EQ(cookies[0], 77u);
  EXPECT_EQ(dev.completed_requests(), 1u);
  EXPECT_EQ(dev.completed_bytes(), 8192u);
}

TEST(BlockDevice, FifoServiceOrder) {
  sim::Engine e;
  auto dev = make_device(e);
  std::vector<std::uint64_t> order;
  dev.set_completion_handler([&](const IoRequest& r) { order.push_back(r.cookie); });
  for (std::uint64_t i = 0; i < 5; ++i) {
    IoRequest req;
    req.cookie = i;
    dev.submit(req);
  }
  e.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(BlockDevice, SingleServerSerializesRequests) {
  sim::Engine e;
  auto dev = make_device(e);
  std::vector<SimTime> times;
  dev.set_completion_handler([&](const IoRequest&) { times.push_back(e.now()); });
  IoRequest req;
  dev.submit(req);
  dev.submit(req);
  EXPECT_EQ(dev.queue_depth(), 2u);
  e.run();
  ASSERT_EQ(times.size(), 2u);
  // Second completion at least one mean service after the first.
  const SimTime mean = dev.mean_service_time(IoDir::kRead, IoPattern::kSequential, 4096);
  EXPECT_GE((times[1] - times[0]).nanoseconds(), mean.nanoseconds() / 2);
}

TEST(BlockDevice, ResubmitFromCompletionHandler) {
  sim::Engine e;
  auto dev = make_device(e);
  int completions = 0;
  dev.set_completion_handler([&](const IoRequest& r) {
    if (++completions < 3) dev.submit(r);
  });
  IoRequest req;
  dev.submit(req);
  e.run();
  EXPECT_EQ(completions, 3);
}

TEST(BlockDevice, ServiceTimeStatsTracked) {
  sim::Engine e;
  auto dev = make_device(e);
  dev.set_completion_handler([](const IoRequest&) {});
  IoRequest req;
  for (int i = 0; i < 20; ++i) dev.submit(req);
  e.run();
  EXPECT_EQ(dev.service_times_us().count(), 20u);
  // Jittered around the 30 us read latency + transfer.
  EXPECT_NEAR(dev.service_times_us().mean(), 33.0, 10.0);
}

TEST(BlockDeviceDeath, ZeroByteRequestRejected) {
  sim::Engine e;
  auto dev = make_device(e);
  IoRequest req;
  req.bytes = 0;
  EXPECT_SIM_ERROR(dev.submit(req), "zero-byte");
}

}  // namespace
}  // namespace paratick::hw
