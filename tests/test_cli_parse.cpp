#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/cli_parse.hpp"
#include "core/sweep.hpp"
#include "expect_error.hpp"

namespace paratick::core {
namespace {

// ---- parse_u64_flag ------------------------------------------------------

TEST(ParseU64Flag, AcceptsPlainDecimal) {
  EXPECT_EQ(parse_u64_flag("-j", "4"), 4u);
  EXPECT_EQ(parse_u64_flag("--repeat", "0"), 0u);
  EXPECT_EQ(parse_u64_flag("--seed", "18446744073709551615"), ~0ull);
}

TEST(ParseU64Flag, Base0AcceptsHexAndOctal) {
  EXPECT_EQ(parse_u64_flag("--seed", "0xdead", ~0ull, 0), 0xdeadu);
  EXPECT_EQ(parse_u64_flag("--seed", "0XBEEF", ~0ull, 0), 0xbeefu);
  EXPECT_EQ(parse_u64_flag("--seed", "017", ~0ull, 0), 15u);
  // ...but base 10 does not: "0x" is trailing garbage there.
  EXPECT_SIM_ERROR((void)parse_u64_flag("-j", "0x10"), "not a valid integer");
}

TEST(ParseU64Flag, RejectsWhatStrtoulSilentlyAcceptedAsZero) {
  // The regression this helper exists for: all of these used to parse as
  // 0 via strtoul(text, nullptr, ...) and quietly reconfigure the sweep.
  EXPECT_SIM_ERROR((void)parse_u64_flag("-j", ""), "empty value");
  EXPECT_SIM_ERROR((void)parse_u64_flag("-j", "garbage"), "not a valid integer");
  EXPECT_SIM_ERROR((void)parse_u64_flag("--seed", "0xzz", ~0ull, 0),
                   "not a valid integer");
}

TEST(ParseU64Flag, RejectsTrailingGarbageAndWhitespace) {
  EXPECT_SIM_ERROR((void)parse_u64_flag("--repeat", "12abc"),
                   "not a valid integer");
  EXPECT_SIM_ERROR((void)parse_u64_flag("--repeat", "3 "),
                   "expected a non-negative integer");
  EXPECT_SIM_ERROR((void)parse_u64_flag("--repeat", " 3"),
                   "expected a non-negative integer");
  EXPECT_SIM_ERROR((void)parse_u64_flag("--repeat", "1\t2"),
                   "expected a non-negative integer");
}

TEST(ParseU64Flag, RejectsNegativesInsteadOfWrapping) {
  // strtoull("-3") wraps to 2^64-3; a thread/repeat count never means that.
  EXPECT_SIM_ERROR((void)parse_u64_flag("-j", "-3"),
                   "expected a non-negative integer");
  EXPECT_SIM_ERROR((void)parse_u64_flag("--seed", "-1", ~0ull, 0),
                   "expected a non-negative integer");
}

TEST(ParseU64Flag, RejectsOutOfRange) {
  EXPECT_SIM_ERROR((void)parse_u64_flag("--seed", "99999999999999999999999"),
                   "value out of range");
  EXPECT_SIM_ERROR((void)parse_u64_flag("--repeat", "4294967296", 0x7FFFFFFF),
                   "value out of range");
  EXPECT_EQ(parse_u64_flag("--repeat", "2147483647", 0x7FFFFFFF), 2147483647u);
}

TEST(ParseU64Flag, ErrorNamesTheFlagAndTheOffendingText) {
  try {
    (void)parse_u64_flag("--fork-batch", "nope");
    FAIL() << "expected SimError";
  } catch (const sim::SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--fork-batch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("\"nope\""), std::string::npos) << msg;
  }
}

// ---- parse_double_flag ---------------------------------------------------

TEST(ParseDoubleFlag, AcceptsFiniteValues) {
  EXPECT_DOUBLE_EQ(parse_double_flag("--run-timeout", "2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double_flag("--fault-timer-drop", "0.02"), 0.02);
  EXPECT_DOUBLE_EQ(parse_double_flag("--fault-steal", "1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(parse_double_flag("--run-timeout", "0"), 0.0);
  EXPECT_DOUBLE_EQ(parse_double_flag("--delta", "-0.5", -1.0), -0.5);
}

TEST(ParseDoubleFlag, RejectsGarbageEmptyAndTrailingJunk) {
  EXPECT_SIM_ERROR((void)parse_double_flag("--run-timeout", ""), "empty value");
  EXPECT_SIM_ERROR((void)parse_double_flag("--run-timeout", "fast"),
                   "not a valid number");
  EXPECT_SIM_ERROR((void)parse_double_flag("--run-timeout", "1.5s"),
                   "not a valid number");
}

TEST(ParseDoubleFlag, RejectsNonFiniteAndBelowMinimum) {
  EXPECT_SIM_ERROR((void)parse_double_flag("--run-timeout", "inf"),
                   "value out of range");
  EXPECT_SIM_ERROR((void)parse_double_flag("--run-timeout", "nan"),
                   "value out of range");
  EXPECT_SIM_ERROR((void)parse_double_flag("--fault-timer-drop", "-0.1"),
                   "value must not be negative");
  EXPECT_SIM_ERROR((void)parse_double_flag("--run-timeout", "1e999"),
                   "value out of range");
}

TEST(ParseChoiceFlag, ReturnsTheMatchingIndex) {
  EXPECT_EQ(parse_choice_flag("--lookahead-mode", "global",
                              {"global", "topology"}),
            0u);
  EXPECT_EQ(parse_choice_flag("--lookahead-mode", "topology",
                              {"global", "topology"}),
            1u);
}

TEST(ParseChoiceFlag, RejectsUnknownSpellingsListingTheChoices) {
  // Exact matches only: no prefixes, no case folding, no whitespace.
  EXPECT_SIM_ERROR((void)parse_choice_flag("--lookahead-mode", "sideways",
                                           {"global", "topology"}),
                   "expected one of global topology");
  EXPECT_SIM_ERROR((void)parse_choice_flag("--lookahead-mode", "topo",
                                           {"global", "topology"}),
                   "expected one of");
  EXPECT_SIM_ERROR((void)parse_choice_flag("--lookahead-mode", "Global",
                                           {"global", "topology"}),
                   "expected one of");
  EXPECT_SIM_ERROR((void)parse_choice_flag("--lookahead-mode", "",
                                           {"global", "topology"}),
                   "expected one of");
}

// ---- SweepCli end to end -------------------------------------------------

/// Build a mutable argv for SweepCli::parse.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    ptrs.push_back(const_cast<char*>("bench"));
    for (std::string& s : storage) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

TEST(SweepCliParse, AcceptsValidNumericFlags) {
  Argv a({"-j", "4", "--repeat", "3", "--seed", "0xdead", "--run-timeout",
          "1.5", "--fault-timer-drop", "0.25", "--record-trace",
          "--lookahead-mode", "topology", "--max-horizon-windows", "128",
          "extra"});
  const SweepCli cli = SweepCli::parse(a.argc(), a.argv());
  EXPECT_EQ(cli.threads, 4u);
  EXPECT_EQ(cli.repeat, 3);
  EXPECT_EQ(cli.lookahead_mode, sim::LookaheadMode::kTopology);
  EXPECT_EQ(cli.max_horizon_windows, 128u);
  ASSERT_TRUE(cli.root_seed.has_value());
  EXPECT_EQ(*cli.root_seed, 0xdeadu);
  EXPECT_DOUBLE_EQ(cli.run_timeout_sec, 1.5);
  ASSERT_EQ(cli.fault_overrides.size(), 1u);
  EXPECT_EQ(cli.fault_overrides[0].first, "timer-drop");
  EXPECT_TRUE(cli.record_trace);
  ASSERT_EQ(cli.positional.size(), 1u);
  EXPECT_EQ(cli.positional[0], "extra");
}

TEST(SweepCliParse, AcceptsDispatchFlags) {
  Argv a({"--dispatch", "--workers", "3", "--max-retries", "5", "--no-steal",
          "--lease", "2.5", "--retry-backoff", "0.125", "--heartbeat", "0.2",
          "--checkpoint", "ckpt.json", "--dispatch-cmd", "ssh -T n{cmd}",
          "--skip-corrupt"});
  const SweepCli cli = SweepCli::parse(a.argc(), a.argv());
  EXPECT_TRUE(cli.dispatch);
  EXPECT_EQ(cli.dispatch_workers, 3u);
  EXPECT_EQ(cli.max_retries, 5u);
  EXPECT_FALSE(cli.steal);
  EXPECT_DOUBLE_EQ(cli.lease_sec, 2.5);
  EXPECT_DOUBLE_EQ(cli.retry_backoff_sec, 0.125);
  EXPECT_DOUBLE_EQ(cli.heartbeat_sec, 0.2);
  EXPECT_EQ(cli.checkpoint_path, "ckpt.json");
  EXPECT_EQ(cli.dispatch_cmd, "ssh -T n{cmd}");
  EXPECT_TRUE(cli.skip_corrupt);
  // The dispatcher relaunches workers from the original argv; parse must
  // have kept a verbatim copy.
  ASSERT_EQ(cli.raw_args.size(), static_cast<std::size_t>(a.argc()));
  EXPECT_EQ(cli.raw_args[1], "--dispatch");
}

TEST(SweepCliParse, DispatchCannotCombineWithShardOrMerge) {
  {
    Argv a({"--dispatch", "--shard", "0/2"});
    EXPECT_EXIT((void)SweepCli::parse(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "cannot be combined");
  }
  {
    Argv a({"--dispatch", "--merge", "p0.json"});
    EXPECT_EXIT((void)SweepCli::parse(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "cannot be combined");
  }
}

TEST(SweepCliParse, BadNumbersExitWithCode2NotZero) {
  // The bug this PR fixes: `-j garbage` used to strtoul to 0 and run the
  // sweep single-threaded as if nothing happened.
  struct Case {
    std::vector<std::string> args;
    const char* why;
  };
  const Case cases[] = {
      {{"-j", "garbage"}, "not a valid integer"},
      {{"-j4x"}, "not a valid integer"},
      {{"--repeat", "-2"}, "non-negative"},
      {{"--seed", "0xzz"}, "not a valid integer"},
      {{"--seed", "99999999999999999999999"}, "out of range"},
      {{"--fork-batch", "1.5"}, "not a valid integer"},
      {{"--max-failures", ""}, "empty value"},
      {{"--run-timeout", "fast"}, "not a valid number"},
      {{"--fault-timer-drop", "-0.5"}, "negative"},
      {{"--shard", "banana"}, "shard"},
      {{"--workers", "many"}, "not a valid integer"},
      {{"--max-retries", "-1"}, "non-negative"},
      {{"--lease", "fast"}, "not a valid number"},
      {{"--retry-backoff", "0.1s"}, "not a valid number"},
      {{"--heartbeat", ""}, "empty value"},
      {{"--dispatch-test-kill", "2.5"}, "not a valid integer"},
      {{"--lookahead-mode", "sideways"}, "expected one of global topology"},
      {{"--lookahead-mode", "topo"}, "expected one of"},
      {{"--max-horizon-windows", "lots"}, "not a valid integer"},
      {{"--max-horizon-windows", "-1"}, "non-negative"},
  };
  for (const Case& c : cases) {
    Argv a(c.args);
    EXPECT_EXIT((void)SweepCli::parse(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), c.why)
        << "args: " << c.args.front();
  }
}

// ---- bench_cluster flags -------------------------------------------------
// The cluster bench parses its own flags out of the sweep CLI's
// positional residue with the same strict helpers; these pin down the
// (flag, bound) pairs it uses so garbage can't silently reshape the
// cluster under test.

TEST(ClusterFlags, AcceptsSaneValues) {
  EXPECT_EQ(parse_u64_flag("--hosts", "8", 64), 8u);
  EXPECT_EQ(parse_u64_flag("--vms-per-host", "32", 256), 32u);
  EXPECT_EQ(parse_u64_flag("--migration-blackout-us", "500", 1'000'000), 500u);
  EXPECT_EQ(parse_u64_flag("--migration-dirty-mcycles", "2", 1'000'000), 2u);
  EXPECT_DOUBLE_EQ(parse_double_flag("--overcommit", "2.5", 0.01), 2.5);
  EXPECT_DOUBLE_EQ(parse_double_flag("--rebalance-period", "0", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(parse_double_flag("--duration-ms", "100", 0.001), 100.0);
}

TEST(ClusterFlags, RejectsGarbageAndOutOfRange) {
  EXPECT_SIM_ERROR((void)parse_u64_flag("--hosts", "lots", 64),
                   "not a valid integer");
  EXPECT_SIM_ERROR((void)parse_u64_flag("--hosts", "65", 64), "out of range");
  EXPECT_SIM_ERROR((void)parse_u64_flag("--vms-per-host", "257", 256),
                   "out of range");
  EXPECT_SIM_ERROR((void)parse_u64_flag("--vms-per-host", "-4", 256),
                   "non-negative");
  EXPECT_SIM_ERROR((void)parse_u64_flag("--migration-blackout-us", "1e6",
                                        1'000'000),
                   "not a valid integer");
  EXPECT_SIM_ERROR((void)parse_double_flag("--overcommit", "fast", 0.01),
                   "not a valid number");
  EXPECT_SIM_ERROR((void)parse_double_flag("--overcommit", "-1", 0.01),
                   "negative");
  EXPECT_SIM_ERROR((void)parse_double_flag("--rebalance-period", "", 0.0),
                   "empty value");
  EXPECT_SIM_ERROR((void)parse_double_flag("--duration-ms", "10ms", 0.001),
                   "not a valid number");
}

}  // namespace
}  // namespace paratick::core
