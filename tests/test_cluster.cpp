// Cluster-layer tests: placement determinism, single-host equivalence
// with a plain core::System, steal-aware rebalancing, migration blackout
// accounting, and bit-identity across engine-thread counts and sweep
// fan-out.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "expect_error.hpp"

#include "core/cluster/cluster.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "core/system.hpp"
#include "workload/micro.hpp"
#include "workload/tenant_traffic.hpp"

namespace paratick::core {
namespace {

using sim::SimTime;

/// Mirrors Cluster's internal per-VM seed chain (salt "vmse"): the
/// single-host equivalence test below rebuilds the same VM by hand.
constexpr std::uint64_t kVmSeedSalt = 0x766d7365;

void busy_storm(guest::GuestKernel& k, double load) {
  workload::SyncStormSpec storm;
  storm.threads = 2;
  storm.sync_rate_hz = 400.0;
  storm.duration = SimTime::ms(100);
  storm.load = load;
  workload::install_sync_storm(k, storm);
}

ClusterSpec tenant_cluster(int hosts, int vms_per_host, std::uint64_t seed) {
  ClusterSpec cs;
  cs.hosts = hosts;
  cs.vms_per_host = vms_per_host;
  cs.vcpus_per_vm = 2;
  cs.machine = hw::MachineSpec::small(2);  // 2 VMs x 2 vCPUs -> 2x overcommit
  cs.guest.tick_mode = guest::TickMode::kParatick;
  cs.guest.steal.enabled = true;
  cs.duration = SimTime::ms(100);
  cs.seed = seed;
  cs.rebalance_period = SimTime::ms(5);
  cs.workload = [](guest::GuestKernel& k, int g) {
    workload::TenantTrafficSpec t;
    t.workers = 2;
    t.until = SimTime::ms(100);
    t.seed = derive_seed(321, static_cast<std::uint64_t>(g));
    workload::install_tenant_traffic(k, t);
  };
  return cs;
}

TEST(Cluster, PlacementAndResultsDeterministic) {
  ClusterResult a = Cluster(tenant_cluster(2, 2, 9)).run();
  ClusterResult b = Cluster(tenant_cluster(2, 2, 9)).run();
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.rebalance_rounds, b.rebalance_rounds);
  EXPECT_EQ(a.state_digest, b.state_digest);
  EXPECT_EQ(a.merged.exits_total, b.merged.exits_total);
  EXPECT_EQ(a.merged.events_executed, b.merged.events_executed);
  ASSERT_EQ(a.merged.vms.size(), b.merged.vms.size());
  for (std::size_t g = 0; g < a.merged.vms.size(); ++g) {
    EXPECT_EQ(a.merged.vms[g].exits_total, b.merged.vms[g].exits_total);
    EXPECT_EQ(a.merged.vms[g].steal_time.nanoseconds(),
              b.merged.vms[g].steal_time.nanoseconds());
  }
}

TEST(Cluster, RoundRobinPlacementCoversEveryHost) {
  ClusterSpec cs = tenant_cluster(3, 2, 5);
  cs.rebalance_period = SimTime::zero();  // place once, never move
  cs.duration = SimTime::ms(20);
  ClusterResult r = Cluster(std::move(cs)).run();
  ASSERT_EQ(r.placement.size(), 6u);
  std::set<int> used(r.placement.begin(), r.placement.end());
  EXPECT_EQ(used.size(), 3u);
  EXPECT_EQ(r.migrations, 0u);
}

// One host, one VM: the cluster adds no events of its own, so the run is
// bit-identical to the equivalent plain System with the same derived
// seeds. This is the contract that lets every single-host scenario fold
// into the cluster layer unchanged.
TEST(Cluster, SingleHostMatchesPlainSystemBitForBit) {
  const std::uint64_t seed = 42;
  ClusterSpec cs;
  cs.hosts = 1;
  cs.vms_per_host = 1;
  cs.vcpus_per_vm = 2;
  cs.machine = hw::MachineSpec::small(2);
  cs.guest.tick_mode = guest::TickMode::kDynticksIdle;
  cs.guest.steal.enabled = true;
  cs.duration = SimTime::ms(60);
  cs.seed = seed;
  cs.rebalance_period = SimTime::ms(5);  // irrelevant with one host
  cs.workload = [](guest::GuestKernel& k, int) { busy_storm(k, 0.4); };
  ClusterResult cr = Cluster(std::move(cs)).run();

  SystemSpec sys;
  sys.machine = hw::MachineSpec::small(2);
  sys.host.seed = derive_seed(seed, 0);
  sys.max_duration = SimTime::ms(60);
  sys.stop_when_done = false;
  VmSpec vm;
  vm.vcpus = 2;
  vm.guest.tick_mode = guest::TickMode::kDynticksIdle;
  vm.guest.steal.enabled = true;
  vm.guest.seed = derive_seed(derive_seed(derive_seed(seed, kVmSeedSalt), 0), 0);
  vm.partition_key = 0;
  vm.setup = [](guest::GuestKernel& k) { busy_storm(k, 0.4); };
  sys.vms.push_back(vm);
  System plain(std::move(sys));
  plain.power_on();
  plain.engine().run_until(SimTime::ms(60));
  const metrics::RunResult pr = plain.finish();

  EXPECT_EQ(cr.merged.exits_total, pr.exits_total);
  EXPECT_EQ(cr.merged.exits_timer_related, pr.exits_timer_related);
  EXPECT_EQ(cr.merged.events_executed, pr.events_executed);
  EXPECT_EQ(cr.merged.events_scheduled, pr.events_scheduled);
  ASSERT_EQ(cr.merged.vms.size(), 1u);
  ASSERT_EQ(pr.vms.size(), 1u);
  EXPECT_EQ(cr.merged.vms[0].exits_total, pr.vms[0].exits_total);
  EXPECT_EQ(cr.merged.vms[0].steal_time.nanoseconds(),
            pr.vms[0].steal_time.nanoseconds());
  ASSERT_TRUE(cr.merged.vms[0].steal_estimate && pr.vms[0].steal_estimate);
  EXPECT_EQ(cr.merged.vms[0].steal_estimate->nanoseconds(),
            pr.vms[0].steal_estimate->nanoseconds());
  EXPECT_EQ(cr.merged.vms[0].wakeup_latency_us.count(),
            pr.vms[0].wakeup_latency_us.count());
  EXPECT_EQ(cr.merged.vms[0].wakeup_latency_us.mean(),
            pr.vms[0].wakeup_latency_us.mean());
  EXPECT_EQ(cr.migrations, 0u);
}

// Two hosts, asymmetric load: both busy VMs start on host 0 (round-robin
// places even global indices there), the idle ones on host 1. The
// guests' own steal estimates must pull at least one busy VM off the hot
// host.
TEST(Cluster, RebalancingMovesLoadOffMostStolenHost) {
  ClusterSpec cs;
  cs.hosts = 2;
  cs.vms_per_host = 2;
  cs.vcpus_per_vm = 2;
  cs.machine = hw::MachineSpec::small(2);  // per-host 2x overcommit when hot
  cs.guest.tick_mode = guest::TickMode::kDynticksIdle;
  cs.guest.steal.enabled = true;
  cs.duration = SimTime::ms(100);
  cs.seed = 11;
  cs.rebalance_period = SimTime::ms(5);
  cs.workload = [](guest::GuestKernel& k, int g) {
    if (g % 2 == 0) busy_storm(k, 0.9);  // both busy VMs land on host 0
  };
  ClusterResult r = Cluster(std::move(cs)).run();
  EXPECT_GT(r.rebalance_rounds, 0u);
  EXPECT_GT(r.migrations, 0u);
  // The busy pair (global VMs 0 and 2) no longer shares host 0.
  EXPECT_FALSE(r.placement[0] == 0 && r.placement[2] == 0);
}

TEST(Cluster, MigrationBlackoutLandsInWakeLatency) {
  ClusterSpec cs = tenant_cluster(2, 2, 11);
  cs.guest.tick_mode = guest::TickMode::kDynticksIdle;
  cs.migration_blackout = SimTime::us(777);
  cs.workload = [](guest::GuestKernel& k, int g) {
    if (g % 2 == 0) busy_storm(k, 0.9);
  };
  ClusterResult r = Cluster(std::move(cs)).run();
  ASSERT_GT(r.migrations, 0u);
  // Each migration contributes one blackout-sized wake sample to the
  // migrated VM's merged distribution.
  double worst = 0.0;
  for (const auto& vm : r.merged.vms) {
    worst = std::max(worst, vm.wakeup_latency_us.max());
  }
  EXPECT_GE(worst, 777.0);
}

TEST(Cluster, EngineThreadCountDoesNotChangeResults) {
  ClusterSpec one = tenant_cluster(4, 2, 33);
  ClusterSpec four = tenant_cluster(4, 2, 33);
  one.engine_threads = 1;
  four.engine_threads = 4;
  ClusterResult a = Cluster(std::move(one)).run();
  ClusterResult b = Cluster(std::move(four)).run();
  EXPECT_EQ(a.state_digest, b.state_digest);
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.merged.exits_total, b.merged.exits_total);
  EXPECT_EQ(a.merged.events_executed, b.merged.events_executed);
  ASSERT_EQ(a.merged.vms.size(), b.merged.vms.size());
  for (std::size_t g = 0; g < a.merged.vms.size(); ++g) {
    EXPECT_EQ(a.merged.vms[g].exits_total, b.merged.vms[g].exits_total);
    EXPECT_EQ(a.merged.vms[g].steal_time.nanoseconds(),
              b.merged.vms[g].steal_time.nanoseconds());
    EXPECT_EQ(a.merged.vms[g].wakeup_latency_us.mean(),
              b.merged.vms[g].wakeup_latency_us.mean());
  }
}

SweepConfig cluster_sweep(unsigned threads) {
  SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(4);
  cfg.base.vcpus = 2;
  cfg.base.scenario.vm_copies = 2;
  cfg.base.max_duration = SimTime::ms(40);
  cfg.base.stop_when_done = false;
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  cfg.root_seed = 4242;
  cfg.threads = threads;
  cfg.base.scenario.run = [](const ExperimentSpec& exp, guest::TickMode mode) {
    ClusterSpec cs;
    cs.hosts = 2;
    cs.vms_per_host = exp.scenario.effective_copies();
    cs.vcpus_per_vm = exp.vcpus;
    cs.machine = exp.machine;
    cs.host = exp.host;
    cs.guest.tick_mode = mode;
    cs.guest.steal.enabled = true;
    cs.duration = exp.max_duration;
    cs.seed = exp.guest_seed;
    cs.rebalance_period = SimTime::ms(5);
    cs.workload = [until = exp.max_duration,
                   seed = exp.guest_seed](guest::GuestKernel& k, int g) {
      workload::TenantTrafficSpec t;
      t.workers = 2;
      t.until = until;
      t.seed = derive_seed(seed, static_cast<std::uint64_t>(g));
      workload::install_tenant_traffic(k, t);
    };
    return Cluster(std::move(cs)).run().merged;
  };
  return cfg;
}

TEST(ClusterSweep, WorkerThreadCountLeavesExportsByteIdentical) {
  const SweepResult serial = SweepRunner(cluster_sweep(1)).run();
  const SweepResult parallel = SweepRunner(cluster_sweep(4)).run();
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
}

TEST(ClusterSweep, ForkBackendLeavesExportsByteIdentical) {
  SweepConfig thread_cfg = cluster_sweep(2);
  SweepConfig fork_cfg = cluster_sweep(2);
  fork_cfg.backend = BackendKind::kFork;
  const SweepResult a = SweepRunner(std::move(thread_cfg)).run();
  const SweepResult b = SweepRunner(std::move(fork_cfg)).run();
  EXPECT_EQ(b.backend_name, "fork");
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(Cluster, RejectsNonsenseSpecs) {
  ClusterSpec bad = tenant_cluster(2, 2, 1);
  bad.hosts = 0;
  EXPECT_SIM_ERROR(Cluster{std::move(bad)}, "at least one host");
  ClusterSpec bad2 = tenant_cluster(2, 2, 1);
  bad2.migration_blackout = SimTime::zero();
  EXPECT_SIM_ERROR(Cluster{std::move(bad2)}, "migration blackout");
  ClusterSpec once = tenant_cluster(2, 2, 1);
  Cluster c(std::move(once));
  (void)c.run();
  EXPECT_SIM_ERROR((void)c.run(), "only run once");
}

}  // namespace
}  // namespace paratick::core
