#include <gtest/gtest.h>

#include "hw/deadline_timer.hpp"
#include "sim/engine.hpp"

namespace paratick::hw {
namespace {

using sim::SimTime;

TEST(DeadlineTimer, FiresAtDeadline) {
  sim::Engine e;
  SimTime fired_at = SimTime::zero();
  DeadlineTimer t(e, [&] { fired_at = e.now(); });
  t.arm(SimTime::us(50));
  EXPECT_TRUE(t.armed());
  e.run();
  EXPECT_EQ(fired_at, SimTime::us(50));
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(t.fire_count(), 1u);
}

TEST(DeadlineTimer, RearmReplacesDeadline) {
  sim::Engine e;
  int fires = 0;
  DeadlineTimer t(e, [&] { ++fires; });
  t.arm(SimTime::us(10));
  t.arm(SimTime::us(30));  // like writing TSC_DEADLINE again
  EXPECT_EQ(t.deadline(), SimTime::us(30));
  e.run();
  EXPECT_EQ(fires, 1);
}

TEST(DeadlineTimer, DisarmCancels) {
  sim::Engine e;
  int fires = 0;
  DeadlineTimer t(e, [&] { ++fires; });
  t.arm(SimTime::us(10));
  t.disarm();
  EXPECT_FALSE(t.armed());
  e.run();
  EXPECT_EQ(fires, 0);
}

TEST(DeadlineTimer, PastDeadlineFiresImmediatelyNext) {
  sim::Engine e;
  e.schedule_at(SimTime::us(100), [] {});
  e.run();
  int fires = 0;
  DeadlineTimer t(e, [&] { ++fires; });
  t.arm(SimTime::us(5));  // already in the past: fire "now", like real TSC
  EXPECT_EQ(t.deadline(), SimTime::us(100));
  e.run();
  EXPECT_EQ(fires, 1);
}

TEST(DeadlineTimer, CanRearmFromCallback) {
  sim::Engine e;
  int fires = 0;
  DeadlineTimer* tp = nullptr;
  DeadlineTimer t(e, [&] {
    if (++fires < 3) tp->arm(e.now() + SimTime::us(10));
  });
  tp = &t;
  t.arm(SimTime::us(10));
  e.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(e.now(), SimTime::us(30));
}

TEST(DeadlineTimer, DisarmIdempotent) {
  sim::Engine e;
  DeadlineTimer t(e, [] {});
  t.disarm();
  t.arm(SimTime::us(1));
  t.disarm();
  t.disarm();
  EXPECT_FALSE(t.armed());
}

}  // namespace
}  // namespace paratick::hw
